(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Sec. 5) plus the ablations DESIGN.md calls out, printing
   paper-shaped tables. See EXPERIMENTS.md for the experiment index and
   the measured-vs-paper discussion.

   Scaling: XROUTE_BENCH_SCALE (a float, default 1.0) multiplies the
   workload sizes; the defaults are chosen so the full run finishes in a
   few minutes on a laptop. The paper's original sizes correspond to
   roughly XROUTE_BENCH_SCALE=10 for the table-size experiments. *)

open Xroute_core
open Xroute_overlay
module Metrics = Xroute_obs.Metrics

let scale =
  match Sys.getenv_opt "XROUTE_BENCH_SCALE" with
  | Some s -> (try float_of_string s with _ -> 1.0)
  | None -> 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. scale))

(* ------------------------------------------------------------------ *)
(* Machine-readable reports: BENCH_5/6/7.json                          *)
(* ------------------------------------------------------------------ *)

(* Every experiment records (name, fields); the runner adds wall time.
   Written next to the printed tables so runs can be diffed/gated by
   tooling (schema documented in EXPERIMENTS.md). The match-scaling
   experiment writes to a second sink (schema xroute-bench/6) so its
   records can be regenerated without touching BENCH_5.json. *)
module Report = struct
  type value = F of float | I of int | B of bool

  let records : (string * (string * value) list) list ref = ref []
  let records6 : (string * (string * value) list) list ref = ref []
  let records7 : (string * (string * value) list) list ref = ref []
  let records8 : (string * (string * value) list) list ref = ref []
  let records9 : (string * (string * value) list) list ref = ref []
  let records10 : (string * (string * value) list) list ref = ref []

  (* Append fields to the experiment's record (merging by name; a
     re-recorded field replaces the old value rather than duplicating
     the JSON key). *)
  let record_in records name fields =
    match List.assoc_opt name !records with
    | Some existing ->
      let kept =
        List.filter (fun (k, _) -> not (List.mem_assoc k fields)) existing
      in
      records := (name, kept @ fields) :: List.remove_assoc name !records
    | None -> records := (name, fields) :: !records

  let record name fields = record_in records name fields
  let record6 name fields = record_in records6 name fields
  let record7 name fields = record_in records7 name fields
  let record8 name fields = record_in records8 name fields
  let record9 name fields = record_in records9 name fields
  let record10 name fields = record_in records10 name fields

  let render_value = function
    | F f -> if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
    | I i -> string_of_int i
    | B b -> if b then "true" else "false"

  let render_record (name, fields) =
    let body =
      List.map (fun (k, v) -> Printf.sprintf "%S:%s" k (render_value v)) fields
    in
    Printf.sprintf "{\"name\":%S,%s}" name (String.concat "," body)

  let write_sink ~schema path records =
    let oc = open_out path in
    Printf.fprintf oc "{\"schema\":%S,\"scale\":%.3f,\"experiments\":[%s]}\n" schema scale
      (String.concat "," (List.rev_map render_record records));
    close_out oc;
    Printf.printf "\nwrote %s (%d experiment records)\n%!" path (List.length records)

  let write path =
    write_sink ~schema:"xroute-bench/5" path !records;
    if !records6 <> [] then
      write_sink ~schema:"xroute-bench/6"
        (Option.value ~default:"BENCH_6.json" (Sys.getenv_opt "XROUTE_BENCH_JSON6"))
        !records6;
    if !records7 <> [] then
      write_sink ~schema:"xroute-bench/7"
        (Option.value ~default:"BENCH_7.json" (Sys.getenv_opt "XROUTE_BENCH_JSON7"))
        !records7;
    if !records8 <> [] then
      write_sink ~schema:"xroute-bench/8"
        (Option.value ~default:"BENCH_8.json" (Sys.getenv_opt "XROUTE_BENCH_JSON8"))
        !records8;
    if !records9 <> [] then
      write_sink ~schema:"xroute-bench/9"
        (Option.value ~default:"BENCH_9.json" (Sys.getenv_opt "XROUTE_BENCH_JSON9"))
        !records9;
    if !records10 <> [] then
      write_sink ~schema:"xroute-bench/10"
        (Option.value ~default:"BENCH_10.json" (Sys.getenv_opt "XROUTE_BENCH_JSON10"))
        !records10
end

(* Process peak RSS (VmHWM) in bytes, from /proc/self/status — a
   monotone high-water mark, so the scenario scale series runs its
   points in ascending order and each reading reflects the largest
   population simulated so far. *)
let peak_rss_bytes () =
  try
    let ic = open_in "/proc/self/status" in
    let rec find () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          close_in ic;
          let digits = String.to_seq line |> Seq.filter (fun c -> c >= '0' && c <= '9') in
          int_of_string (String.of_seq digits) * 1024
        end
        else find ()
      | exception End_of_file ->
        close_in ic;
        0
    in
    find ()
  with Sys_error _ -> 0

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let nitf = Lazy.force Xroute_dtd.Dtd_samples.nitf
let psd = Lazy.force Xroute_dtd.Dtd_samples.psd
let nitf_graph = Xroute_dtd.Dtd_graph.build nitf
let psd_graph = Xroute_dtd.Dtd_graph.build psd
let nitf_advs = Xroute_dtd.Dtd_paths.advertisements nitf_graph
let psd_advs = Xroute_dtd.Dtd_paths.advertisements psd_graph

let tree_of_xpes ?covers xpes =
  let tree : int Sub_tree.t = Sub_tree.create ?covers () in
  List.iteri (fun i x -> ignore (Sub_tree.insert tree x i)) xpes;
  tree

(* ------------------------------------------------------------------ *)
(* SRT root-element index vs flat list scan                            *)
(* ------------------------------------------------------------------ *)

(* A dissemination broker hosts the advertisement sets of every feed it
   serves; a subscription anchored at one feed's root element should not
   pay a match operation for every other feed's advertisements. The SRT
   differential builds the same table twice — indexed and flat — loads
   all four bundled feeds, pushes a subscription workload through
   [hops_for_sub] on both, and checks the routing decisions are
   byte-identical while counting the scans the index avoided. *)

let all_feed_advs =
  lazy
    (let book = Lazy.force Xroute_dtd.Dtd_samples.book in
     let insurance = Lazy.force Xroute_dtd.Dtd_samples.insurance in
     nitf_advs
     @ psd_advs
     @ Xroute_dtd.Dtd_paths.advertisements (Xroute_dtd.Dtd_graph.build book)
     @ Xroute_dtd.Dtd_paths.advertisements (Xroute_dtd.Dtd_graph.build insurance))

let srt_fill ~indexed advs =
  let srt = Rtable.Srt.create ~indexed () in
  List.iteri
    (fun i adv ->
      ignore
        (Rtable.Srt.add srt
           { Message.origin = 1; seq = i }
           adv
           (Rtable.Neighbor (i mod 4))))
    advs;
  srt

let decision_string hops =
  String.concat ";" (List.map (fun ep -> Format.asprintf "%a" Rtable.pp_endpoint ep) hops)

(* Run [xpes] through both SRT modes; returns
   (identical, ops_list, ops_indexed, wall_list_s, wall_indexed_s, indexed_srt). *)
let srt_differential ~advs xpes =
  let list_srt = srt_fill ~indexed:false advs in
  let idx_srt = srt_fill ~indexed:true advs in
  let run srt = time_it (fun () -> List.map (fun x -> decision_string (Rtable.Srt.hops_for_sub srt x)) xpes) in
  let list_decisions, t_list = run list_srt in
  let idx_decisions, t_idx = run idx_srt in
  let identical = List.for_all2 String.equal list_decisions idx_decisions in
  (identical, Rtable.Srt.match_ops list_srt, Rtable.Srt.match_ops idx_srt, t_list, t_idx, idx_srt)

let srt_index_bench () =
  section
    "SRT index - root-element buckets vs flat list scan\n\
     (Figure-6 workload: Set A at 10k XPEs, NITF; SRT holds the\n\
     advertisement sets of all four bundled feeds. Decisions must be\n\
     byte-identical; the index only avoids provably non-overlapping scans)";
  let advs = Lazy.force all_feed_advs in
  let count = scaled 10_000 in
  let xpes =
    Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params nitf)
      ~count ~seed:11 ()
  in
  let identical, ops_list, ops_idx, t_list, t_idx, idx_srt = srt_differential ~advs xpes in
  let saved_pct =
    100.0 *. float_of_int (ops_list - ops_idx) /. float_of_int (max 1 ops_list)
  in
  Printf.printf "%d advertisements (%d buckets, max occupancy %d, catch-all %d), %d XPEs\n"
    (Rtable.Srt.size idx_srt) (Rtable.Srt.bucket_count idx_srt)
    (Rtable.Srt.max_bucket_size idx_srt) (Rtable.Srt.catch_all_size idx_srt)
    (List.length xpes);
  Printf.printf "%-12s match_ops %10d  wall %8.1f ms\n" "flat list" ops_list (t_list *. 1000.0);
  Printf.printf "%-12s match_ops %10d  wall %8.1f ms  (%.1f%% scans avoided)\n" "indexed"
    ops_idx (t_idx *. 1000.0) saved_pct;
  Printf.printf "routing decisions identical: %b\n%!" identical;
  Report.record "srt-index"
    [
      ("advertisements", Report.I (Rtable.Srt.size idx_srt));
      ("xpes", Report.I (List.length xpes));
      ("srt_buckets", Report.I (Rtable.Srt.bucket_count idx_srt));
      ("srt_bucket_max", Report.I (Rtable.Srt.max_bucket_size idx_srt));
      ("srt_catch_all", Report.I (Rtable.Srt.catch_all_size idx_srt));
      ("match_ops_list", Report.I ops_list);
      ("match_ops_indexed", Report.I ops_idx);
      ("scans_avoided_pct", Report.F saved_pct);
      ("wall_ms_list", Report.F (t_list *. 1000.0));
      ("wall_ms_indexed", Report.F (t_idx *. 1000.0));
      ("decisions_identical", Report.B identical);
    ];
  if not identical then begin
    Printf.printf "ERROR: indexed SRT diverged from the flat list SRT\n";
    exit 1
  end;
  (* The same table seen from the small feed: PSD subscriptions skip the
     dominant NITF bucket, the situation the index is built for. *)
  let psd_xpes =
    Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params psd)
      ~count ~seed:13 ()
  in
  let identical_p, ops_list_p, ops_idx_p, t_list_p, t_idx_p, _ =
    srt_differential ~advs psd_xpes
  in
  let saved_pct_p =
    100.0 *. float_of_int (ops_list_p - ops_idx_p) /. float_of_int (max 1 ops_list_p)
  in
  Printf.printf "PSD subscriptions against the same table:\n";
  Printf.printf "%-12s match_ops %10d  wall %8.1f ms\n" "flat list" ops_list_p
    (t_list_p *. 1000.0);
  Printf.printf "%-12s match_ops %10d  wall %8.1f ms  (%.1f%% scans avoided)\n" "indexed"
    ops_idx_p (t_idx_p *. 1000.0) saved_pct_p;
  Printf.printf "routing decisions identical: %b\n%!" identical_p;
  Report.record "srt-index-psd"
    [
      ("xpes", Report.I (List.length psd_xpes));
      ("match_ops_list", Report.I ops_list_p);
      ("match_ops_indexed", Report.I ops_idx_p);
      ("scans_avoided_pct", Report.F saved_pct_p);
      ("wall_ms_list", Report.F (t_list_p *. 1000.0));
      ("wall_ms_indexed", Report.F (t_idx_p *. 1000.0));
      ("decisions_identical", Report.B identical_p);
    ];
  if not identical_p then begin
    Printf.printf "ERROR: indexed SRT diverged from the flat list SRT (PSD workload)\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Daemon throughput: loopback pub/sub burst over real sockets         *)
(* ------------------------------------------------------------------ *)

let daemon_throughput () =
  section
    "Daemon throughput - loopback pub/sub burst (2 brokers over TCP)\n\
     (exercises the daemon's buffered write path under publication\n\
     fan-out; throughput is end-to-end: publish, route, deliver)";
  let open Xroute_daemon in
  let d0 = Daemon.create ~id:0 ~port:0 ~neighbors:[ (1, ("127.0.0.1", 0)) ] () in
  let d1 =
    Daemon.create ~id:1 ~port:0 ~neighbors:[ (0, ("127.0.0.1", Daemon.port d0)) ] ()
  in
  let threads =
    List.map (fun d -> Thread.create (fun () -> Daemon.run ~timeout:0.005 d) ()) [ d0; d1 ]
  in
  Thread.delay 0.3;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/burst/item"));
  Thread.delay 0.2;
  ignore (Client.subscribe subscriber (Xroute_xpath.Xpe_parser.parse "/burst"));
  Thread.delay 0.2;
  let n = scaled 1000 in
  let doc = Xroute_xml.Xml_parser.parse "<burst><item/></burst>" in
  let t0 = Unix.gettimeofday () in
  for doc_id = 0 to n - 1 do
    ignore (Client.publish_doc publisher ~doc_id doc)
  done;
  let deadline = t0 +. 60.0 in
  let received = ref 0 in
  while !received < n && Unix.gettimeofday () < deadline do
    received := !received + List.length (Client.drain_deliveries ~timeout:0.2 subscriber)
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let per_sec = float_of_int !received /. wall in
  Printf.printf "%d publications published, %d delivered in %.2f s  (%.0f msgs/s end-to-end)\n%!"
    n !received wall per_sec;
  Client.close publisher;
  Client.close subscriber;
  List.iter Daemon.request_stop [ d0; d1 ];
  List.iter Thread.join threads;
  Report.record "daemon-throughput"
    [
      ("published", Report.I n);
      ("delivered", Report.I !received);
      ("burst_wall_ms", Report.F (wall *. 1000.0));
      ("msgs_per_sec", Report.F per_sec);
    ];
  if !received < n then begin
    Printf.printf "ERROR: daemon burst lost %d publications\n" (n - !received);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Saturation: pipelined multi-root burst against the sharded daemon   *)
(* ------------------------------------------------------------------ *)

(* The headline daemon experiment for the sharded engine: a 2-broker
   line saturated by four pipelined publishers (one advertisement root
   each, publications pre-framed and written in ~56 KB chunks so the
   event loop sees deep batches, not one line per syscall). The
   subscriber side holds a mixed selection — one shallow anchored XPE,
   one deep anchored XPE, one unanchored ("//...", replicated to every
   shard) — and one root is deliberately unsubscribed so selectivity is
   real. Run once at --domains 1 and once at --domains N; the delivered
   doc-id sets must be identical, and the sharded run's throughput is
   compared against the BENCH_2 seed baseline. *)

let saturation_run ?(telemetry = true) ~domains ~docs_per_root () =
  let open Xroute_daemon in
  let d0 =
    Daemon.create ~domains ~telemetry ~id:0 ~port:0
      ~neighbors:[ (1, ("127.0.0.1", 0)) ] ()
  in
  let d1 =
    Daemon.create ~domains ~telemetry ~id:1 ~port:0
      ~neighbors:[ (0, ("127.0.0.1", Daemon.port d0)) ] ()
  in
  let threads =
    List.map (fun d -> Thread.create (fun () -> Daemon.run ~timeout:0.005 d) ()) [ d0; d1 ]
  in
  Thread.delay 0.3;
  let roots = 4 in
  let publishers =
    List.init roots (fun k ->
        Client.connect ~client_id:(100 + k) ~host:"127.0.0.1" ~port:(Daemon.port d0))
  in
  List.iteri
    (fun k p ->
      ignore (Client.advertise p (Xroute_xpath.Adv.parse (Printf.sprintf "/burst%d/item%d" k k))))
    publishers;
  Thread.delay 0.3;
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  (* roots 0-2 subscribed (anchored shallow / anchored deep / unanchored),
     root 3 withheld *)
  ignore (Client.subscribe subscriber (Xroute_xpath.Xpe_parser.parse "/burst0"));
  ignore (Client.subscribe subscriber (Xroute_xpath.Xpe_parser.parse "/burst1/item1"));
  ignore (Client.subscribe subscriber (Xroute_xpath.Xpe_parser.parse "//item2"));
  Thread.delay 0.3;
  (* Pre-frame each publisher's burst into chunks of whole lines: the
     publisher writes a chunk per syscall, which is what lets a 1-core
     box saturate the daemon's batched read path. *)
  let chunks_for k =
    let doc =
      Xroute_xml.Xml_parser.parse (Printf.sprintf "<burst%d><item%d/></burst%d>" k k k)
    in
    let chunks = ref [] in
    let chunk = Buffer.create (1 lsl 16) in
    for i = 0 to docs_per_root - 1 do
      let doc_id = (k * 10_000_000) + i in
      List.iter
        (fun pub ->
          Buffer.add_string chunk
            ("M|" ^ Codec.encode (Message.Publish { pub; trail = []; ctx = None }) ^ "\n"))
        (Xroute_xml.Xml_paths.decompose ~doc_id doc);
      if Buffer.length chunk >= 56 * 1024 then begin
        chunks := Buffer.contents chunk :: !chunks;
        Buffer.clear chunk
      end
    done;
    if Buffer.length chunk > 0 then chunks := Buffer.contents chunk :: !chunks;
    List.rev !chunks
  in
  let bursts = List.mapi (fun k p -> (p, ref (chunks_for k))) publishers in
  let expected =
    List.concat_map
      (fun k -> List.init docs_per_root (fun i -> (k * 10_000_000) + i))
      [ 0; 1; 2 ]
  in
  let published = roots * docs_per_root in
  let t0 = Unix.gettimeofday () in
  (* round-robin one chunk per publisher so the roots interleave on the
     wire and every shard stays busy *)
  let remaining = ref true in
  while !remaining do
    remaining := false;
    List.iter
      (fun (p, chunks) ->
        match !chunks with
        | [] -> ()
        | c :: rest ->
          Client.send_line p c;
          chunks := rest;
          if rest <> [] then remaining := true)
      bursts
  done;
  let deadline = t0 +. 120.0 in
  let got = Hashtbl.create (List.length expected) in
  while Hashtbl.length got < List.length expected && Unix.gettimeofday () < deadline do
    List.iter
      (fun i -> Hashtbl.replace got i ())
      (Client.drain_deliveries ~timeout:0.2 subscriber)
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let delivered = List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) got []) in
  let per_sec = float_of_int (Hashtbl.length got) /. wall in
  let hops =
    Xroute_obs.Span.to_list (Daemon.spans d1)
    |> List.filter (fun (s : Xroute_obs.Span.span) -> s.name = "hop" && s.stop > s.start)
    |> List.map Xroute_obs.Span.duration
    |> List.sort compare
  in
  let percentile p =
    match hops with
    | [] -> 0.0
    | l ->
      let n = List.length l in
      List.nth l (min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  List.iter Client.close (subscriber :: publishers);
  List.iter Daemon.request_stop [ d0; d1 ];
  List.iter Thread.join threads;
  (published, delivered, expected, wall, per_sec, percentile 0.5, percentile 0.99)

let saturation () =
  section
    "Saturation - pipelined 4-root burst, sequential vs sharded daemon\n\
     (pre-framed publications written in 56KB chunks through a 2-broker\n\
     line; --domains 1 and --domains 4 must deliver identical doc-id\n\
     sets; sharded throughput is gated against the BENCH_2 baseline)";
  (* BENCH_2.json daemon-throughput msgs_per_sec (the seed's one-line-\
     per-write, 4KB-read event loop). *)
  let baseline = 1194.73 in
  let docs_per_root = scaled 5000 in
  let run domains =
    let published, delivered, expected, wall, per_sec, p50, p99 =
      saturation_run ~domains ~docs_per_root ()
    in
    Printf.printf
      "domains %d: %d published, %d/%d delivered in %.2f s  (%.0f msgs/s, hop p50 %.2f ms, p99 %.2f ms)\n%!"
      domains published (List.length delivered) (List.length expected) wall per_sec p50 p99;
    if delivered <> expected then begin
      Printf.printf "ERROR: saturation burst at %d domains lost or misrouted publications\n"
        domains;
      exit 1
    end;
    Report.record7
      (Printf.sprintf "saturation-domains-%d" domains)
      [
        ("domains", Report.I domains);
        ("roots", Report.I 4);
        ("published", Report.I published);
        ("delivered", Report.I (List.length delivered));
        ("burst_wall_ms", Report.F (wall *. 1000.0));
        ("msgs_per_sec", Report.F per_sec);
        ("p50_hop_ms", Report.F p50);
        ("p99_hop_ms", Report.F p99);
      ];
    (delivered, per_sec)
  in
  let delivered_seq, _ = run 1 in
  let delivered_sharded, per_sec_sharded = run 4 in
  let diffs =
    if delivered_seq = delivered_sharded then 0
    else begin
      (* symmetric difference of the two delivered-id sets *)
      let seen l =
        let h = Hashtbl.create 1024 in
        List.iter (fun i -> Hashtbl.replace h i ()) l;
        h
      in
      let in_seq = seen delivered_seq and in_sharded = seen delivered_sharded in
      List.length (List.filter (fun i -> not (Hashtbl.mem in_sharded i)) delivered_seq)
      + List.length (List.filter (fun i -> not (Hashtbl.mem in_seq i)) delivered_sharded)
    end
  in
  Printf.printf "decision diffs (domains 1 vs 4): %d;  speedup vs BENCH_2 baseline: %.1fx\n%!"
    diffs (per_sec_sharded /. baseline);
  Report.record7 "saturation-domains-4"
    [
      ("decision_diffs", Report.F (float_of_int diffs));
      ("decisions_identical", Report.B (diffs = 0));
      ("baseline_msgs_per_sec", Report.F baseline);
      ("speedup_vs_baseline", Report.F (per_sec_sharded /. baseline));
    ];
  if diffs <> 0 then begin
    Printf.printf "ERROR: sharded daemon diverged from the sequential daemon\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Concurrency audit sweep + tsync production overhead (BENCH_9)       *)
(* ------------------------------------------------------------------ *)

(* Two halves of the PR-9 claim. (a) The schedule explorer actually
   sweeps: the full conc-audit exploration is timed and its per-scenario
   schedule counts recorded (>= 1000 distinct schedules total, zero
   races, zero divergences on trunk). (b) The instrumentation is free in
   production: with no runtime installed every Tsync op is one ref read
   and a branch over the raw atomic, so re-running the BENCH_7 sharded
   saturation burst on the tsync'd pool must land within noise of the
   committed BENCH_7 number. *)
let conc_bench () =
  section
    "Concurrency audit - schedule exploration sweep + tsync overhead\n\
     (the --conc-audit sweep timed and sized; then the BENCH_7 sharded\n\
     saturation burst re-run over the instrumented-but-uninstalled pool,\n\
     gated against the committed BENCH_7 throughput)";
  let results, audit_wall = time_it (fun () -> Xroute_check.Conc.explore_scenarios ()) in
  let total = ref 0 and steps = ref 0 and races = ref 0 and fails = ref 0 in
  List.iter
    (fun (name, (e : Xroute_support.Tsync.Sched.exploration)) ->
      total := !total + e.distinct;
      steps := !steps + e.total_steps;
      races := !races + List.length e.race_witnesses;
      fails := !fails + List.length e.failure_witnesses;
      Printf.printf "%-18s %6d schedules  %8d steps  %d races  %d divergences\n%!" name
        e.distinct e.total_steps
        (List.length e.race_witnesses)
        (List.length e.failure_witnesses);
      Report.record9
        ("conc-" ^ name)
        [
          ("schedules", Report.I e.distinct);
          ("steps", Report.I e.total_steps);
          ("races", Report.I (List.length e.race_witnesses));
          ("divergences", Report.I (List.length e.failure_witnesses));
        ])
    results;
  Printf.printf "total: %d schedules, %d steps in %.1f ms\n%!" !total !steps
    (audit_wall *. 1000.0);
  Report.record9 "conc-audit"
    [
      ("scenarios", Report.I (List.length results));
      ("schedules_explored", Report.I !total);
      ("total_steps", Report.I !steps);
      ("races_found", Report.I !races);
      ("divergences_found", Report.I !fails);
      ("audit_wall_ms", Report.F (audit_wall *. 1000.0));
    ];
  if !races > 0 || !fails > 0 then begin
    Printf.printf "ERROR: conc audit found races/divergences on trunk\n";
    exit 1
  end;
  (* BENCH_7.json saturation-domains-4 msgs_per_sec: the same burst on
     the pre-tsync pool. *)
  let bench7_msgs_per_sec = 13908.8 in
  let docs_per_root = scaled 5000 in
  let published, delivered, expected, wall, per_sec, p50, p99 =
    saturation_run ~domains:4 ~docs_per_root ()
  in
  Printf.printf
    "tsync'd pool, domains 4: %d published, %d/%d delivered in %.2f s  (%.0f msgs/s,\n\
     hop p50 %.2f ms, p99 %.2f ms;  BENCH_7 committed %.0f msgs/s -> ratio %.2f)\n%!"
    published (List.length delivered) (List.length expected) wall per_sec p50 p99
    bench7_msgs_per_sec
    (per_sec /. bench7_msgs_per_sec);
  if delivered <> expected then begin
    Printf.printf "ERROR: tsync overhead burst lost or misrouted publications\n";
    exit 1
  end;
  Report.record9 "tsync-overhead"
    [
      ("domains", Report.I 4);
      ("published", Report.I published);
      ("delivered", Report.I (List.length delivered));
      ("burst_wall_ms", Report.F (wall *. 1000.0));
      ("msgs_per_sec", Report.F per_sec);
      ("p50_hop_ms", Report.F p50);
      ("p99_hop_ms", Report.F p99);
      ("bench7_msgs_per_sec", Report.F bench7_msgs_per_sec);
      ("ratio_vs_bench7", Report.F (per_sec /. bench7_msgs_per_sec));
    ]

(* ------------------------------------------------------------------ *)
(* Telemetry federation: sketch error, convergence, overhead (BENCH_10)*)
(* ------------------------------------------------------------------ *)

(* Three claims of the telemetry-federation PR, each committed as a
   BENCH_10 record. (a) The DDSketch-style quantile sketch stays within
   its advertised relative-error bound against exact order statistics on
   every seeded distribution shape the overlay actually produces. (b) A
   hop-bounded FEDSTATS pull over a line overlay converges: the merged
   view is exactly the union of the per-broker summaries — zero merge
   diffs — at every overlay size, and is idempotent under self-merge.
   (c) Telemetry is cheap: the BENCH_7 saturation burst re-run with the
   per-link health summary on vs off must land within 1.1x. *)
let obs_telemetry () =
  section
    "Telemetry federation - sketch error, FEDSTATS convergence, overhead\n\
     (sketch quantiles vs exact order statistics per distribution; the\n\
     sim FEDSTATS pull vs the union of broker healths at 3/5/7 brokers;\n\
     the BENCH_7 burst with --no-telemetry vs the default)";
  let module Sketch = Xroute_obs.Sketch in
  let module Health = Xroute_obs.Health in
  let module Prng = Xroute_support.Prng in
  let alpha = Sketch.default_alpha in
  let quantiles = [ 0.5; 0.9; 0.95; 0.99; 0.999 ] in
  let samples = scaled 20_000 in
  let prng = Prng.create 10 in
  let zipf = Xroute_support.Zipf.create ~n:1000 ~exponent:1.1 in
  let dists =
    [
      ("uniform", fun () -> 1.0 +. Prng.float prng 1000.0);
      ("exponential", fun () -> -50.0 *. log (1.0 -. Prng.unit_float prng));
      ("zipf", fun () -> float_of_int (1 + Xroute_support.Zipf.sample zipf prng));
      ( "latency-mix",
        fun () ->
          if Prng.bernoulli prng 0.05 then 100.0 +. Prng.float prng 900.0
          else 0.5 +. Prng.float prng 4.5 );
    ]
  in
  Printf.printf "sketch error (alpha %.3f, %d samples per distribution):\n" alpha samples;
  let worst = ref 0.0 in
  List.iter
    (fun (name, gen) ->
      let sketch = Sketch.create () in
      let raw = Array.init samples (fun _ -> gen ()) in
      Array.iter (Sketch.observe sketch) raw;
      let max_err =
        List.fold_left
          (fun acc q ->
            let exact = Xroute_support.Stats.percentile raw q in
            let est = Sketch.quantile sketch q in
            Float.max acc (Float.abs (est -. exact) /. Float.max 1e-12 (Float.abs exact)))
          0.0 quantiles
      in
      worst := Float.max !worst max_err;
      Printf.printf "  %-12s max rel error %.5f  (bound %.3f)\n%!" name max_err alpha;
      Report.record10
        ("sketch-error-" ^ name)
        [
          ("samples", Report.I samples);
          ("alpha", Report.F alpha);
          ("max_rel_error", Report.F max_err);
          ("within_bound", Report.B (max_err <= alpha +. 1e-9));
        ])
    dists;
  Report.record10 "sketch-error"
    [
      ("distributions", Report.I (List.length dists));
      ("alpha", Report.F alpha);
      ("max_rel_error", Report.F !worst);
      ("within_bound", Report.B (!worst <= alpha +. 1e-9));
    ];
  if !worst > alpha +. 1e-9 then begin
    Printf.printf "ERROR: sketch quantile outside the advertised bound\n";
    exit 1
  end;
  (* FEDSTATS convergence vs overlay size: publish down a line, pull the
     federated view from one end, and diff it origin-by-origin against
     the union of the brokers' own summaries. *)
  Printf.printf "\nFEDSTATS convergence (line overlays):\n";
  List.iter
    (fun brokers ->
      let net =
        Net.create
          ~config:{ Net.default_config with Net.latency = Latency.constant 1.0; seed = 10 }
          (Topology.line brokers)
      in
      let publisher = Net.add_client net ~broker:0 in
      let subscriber = Net.add_client net ~broker:(brokers - 1) in
      ignore (Net.advertise_dtd net publisher psd_advs);
      Net.run net;
      ignore
        (Net.subscribe net subscriber
           (Xroute_xpath.Xpe_parser.parse ("/" ^ Xroute_dtd.Dtd_ast.root psd)));
      Net.run net;
      let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:(scaled 20) ~seed:10 () in
      List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
      Net.run net;
      let view = Net.fedstats net ~root:0 () in
      let expected = Health.view_of (List.init brokers (Net.health net)) in
      let merge_diffs =
        List.fold_left
          (fun acc (origin, s) ->
            match List.assoc_opt origin view with
            | Some got when Health.encode_summary got = Health.encode_summary s -> acc
            | _ -> acc + 1)
          0 expected
      in
      let pubs_total = List.fold_left (fun acc (_, s) -> acc + Health.pubs s) 0 view in
      let idempotent = Health.view_equal (Health.merge_views view view) view in
      Printf.printf
        "  %d brokers: %d origins, %d merge diffs, %d pubs federated, idempotent %b\n%!"
        brokers (List.length view) merge_diffs pubs_total idempotent;
      Report.record10
        (Printf.sprintf "fed-convergence-%d" brokers)
        [
          ("brokers", Report.I brokers);
          ("origins", Report.I (List.length view));
          ("merge_diffs", Report.I merge_diffs);
          ("pubs_federated", Report.I pubs_total);
          ("idempotent", Report.B idempotent);
        ];
      if merge_diffs <> 0 || List.length view <> brokers then begin
        Printf.printf "ERROR: FEDSTATS view diverged from the union of broker healths\n";
        exit 1
      end)
    [ 3; 5; 7 ];
  (* Telemetry overhead: the BENCH_7 burst with the health summary on vs
     off (the daemon's --no-telemetry switch). Best of two runs per mode
     so the committed ratio reflects the shim cost, not scheduler
     noise. *)
  let docs_per_root = scaled 5000 in
  let best telemetry =
    let one () =
      let published, delivered, expected, _, per_sec, _, _ =
        saturation_run ~telemetry ~domains:4 ~docs_per_root ()
      in
      if delivered <> expected then begin
        Printf.printf "ERROR: telemetry overhead burst lost or misrouted publications\n";
        exit 1
      end;
      (published, per_sec)
    in
    let published, a = one () in
    let _, b = one () in
    (published, Float.max a b)
  in
  let published, per_sec_on = best true in
  let _, per_sec_off = best false in
  let ratio = per_sec_off /. per_sec_on in
  let bench7_msgs_per_sec = 13908.8 in
  Printf.printf
    "\ntelemetry overhead (BENCH_7 burst, domains 4, best of 2):\n\
    \  on  %8.0f msgs/s\n\
    \  off %8.0f msgs/s   ratio off/on %.3f  (gate <= 1.1)\n%!"
    per_sec_on per_sec_off ratio;
  Report.record10 "telemetry-overhead"
    [
      ("domains", Report.I 4);
      ("published", Report.I published);
      ("msgs_per_sec_on", Report.F per_sec_on);
      ("msgs_per_sec_off", Report.F per_sec_off);
      ("ratio_off_over_on", Report.F ratio);
      ("bench7_msgs_per_sec", Report.F bench7_msgs_per_sec);
      ("ratio_vs_bench7", Report.F (per_sec_on /. bench7_msgs_per_sec));
      ("within_gate", Report.B (ratio <= 1.1));
    ];
  if ratio > 1.1 then begin
    Printf.printf "ERROR: telemetry costs more than 10%% of burst throughput\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fault recovery: seeded outage plan, convergence after healing       *)
(* ------------------------------------------------------------------ *)

(* Set by --seed / --fault-plan (parsed in the entry point); the
   defaults match the convergence suite in test/test_fault.ml. *)
let fault_seed = ref 3
let fault_spec = ref Xroute_fault.Plan.default_spec

(* Crash brokers, break links, and drop clients on a seeded schedule
   while publications stream through the tree; once the plan heals, a
   post-heal publication batch must reach exactly the subscribers it
   reaches on an identical network that never saw a fault. *)
let fault_recovery () =
  let module Plan = Xroute_fault.Plan in
  let spec = !fault_spec and seed = !fault_seed in
  section
    (Printf.sprintf
       "Fault recovery - seeded fault plan on the 7-broker tree (seed %d)\n\
        (brokers crash and restart empty, links fail with requeue+backoff,\n\
        clients reconnect and replay their ledgers; post-heal deliveries\n\
        must match a fault-free control run)"
       seed);
  let levels = 3 in
  let topo = Topology.binary_tree ~levels in
  let subs_per_client = scaled 40 in
  let strategy = Option.get (Broker.strategy_of_name "with-Adv-with-Cov") in
  (* Deterministic in [seed]: the faulted run and the control run build
     byte-identical advertisement/subscription state. *)
  let build () =
    let config =
      { Net.default_config with Net.strategy; seed; latency = Latency.constant 2.0 }
    in
    let net = Net.create ~config topo in
    let publisher = Net.add_client net ~broker:0 in
    let leaves = Topology.binary_tree_leaves ~levels in
    let subs = List.map (fun b -> Net.add_client net ~broker:b) leaves in
    ignore (Net.advertise_dtd net publisher psd_advs);
    Net.run net;
    let prng = Xroute_support.Prng.create (seed + 99) in
    let params = Xroute_workload.Xpath_gen.default_params psd in
    List.iter
      (fun c ->
        let xpes =
          Xroute_workload.Xpath_gen.generate ~distinct:false params
            (Xroute_support.Prng.split prng) ~count:subs_per_client
        in
        List.iter (fun x -> ignore (Net.subscribe net c x)) xpes)
      subs;
    Net.run net;
    (net, publisher, subs)
  in
  let docs_during = Xroute_workload.Workload.documents ~dtd:psd ~count:(scaled 30) ~seed:61 () in
  let docs_after = Xroute_workload.Workload.documents ~dtd:psd ~count:(scaled 20) ~seed:62 () in
  (* Faulted run: publications spread across the fault horizon, then a
     post-heal batch once every fault window has closed. *)
  let net, publisher, subs = build () in
  let cids = List.map (fun c -> c.Net.cid) (publisher :: subs) in
  let plan =
    Plan.generate ~seed ~brokers:(Topology.broker_count topo)
      ~edges:(Topology.edges topo) ~clients:cids ~spec ()
  in
  let n_during = List.length docs_during in
  List.iteri
    (fun i d ->
      let at = plan.Plan.horizon *. float_of_int (i + 1) /. float_of_int (n_during + 1) in
      Sim.schedule (Net.sim net) ~delay:at (fun () ->
          ignore (Net.publish_doc net publisher ~doc_id:i d)))
    docs_during;
  Net.install_plan net plan;
  let (), wall_faulted = time_it (fun () -> Net.run net) in
  List.iteri
    (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:(10_000 + i) d))
    docs_after;
  Net.run net;
  let post_heal c =
    Hashtbl.fold
      (fun doc_id _ acc -> if doc_id >= 10_000 then doc_id :: acc else acc)
      c.Net.delivered []
    |> List.sort compare
  in
  let faulted_deliveries = List.map post_heal subs in
  (* Control: same seed, same subscriptions, no faults, only the
     post-heal batch. *)
  let control_net, control_pub, control_subs = build () in
  List.iteri
    (fun i d -> ignore (Net.publish_doc control_net control_pub ~doc_id:(10_000 + i) d))
    docs_after;
  Net.run control_net;
  let convergent = faulted_deliveries = List.map post_heal control_subs in
  let st = Net.fault_stats net in
  let mean l =
    if l = [] then 0.0 else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let fmax l = List.fold_left Float.max 0.0 l in
  let recovery = st.Net.recovery_times in
  let post_heal_total =
    List.fold_left (fun acc l -> acc + List.length l) 0 faulted_deliveries
  in
  Printf.printf
    "plan: %d events over %.0f ms virtual (%d crashes, %d link-downs, %d delays, %d dups, %d client-drops requested)\n"
    (List.length plan.Plan.events) plan.Plan.horizon spec.Plan.crashes
    spec.Plan.link_downs spec.Plan.link_delays spec.Plan.link_dups spec.Plan.client_drops;
  Printf.printf
    "faults:   %d crashes, %d restarts, %d requeued sends, %d duplicated deliveries\n"
    st.Net.crashes st.Net.restarts st.Net.requeues st.Net.dup_deliveries;
  Printf.printf
    "losses:   %d messages destroyed at dead brokers (%d publications dropped end-to-end)\n"
    st.Net.destroyed (Net.dropped_publications net);
  Printf.printf
    "recovery: %d episodes, mean %.1f ms, max %.1f ms virtual; %d ledger entries replayed\n"
    (List.length recovery) (mean recovery) (fmax recovery) st.Net.replayed;
  Printf.printf "post-heal: %d deliveries, %s the fault-free control\n%!" post_heal_total
    (if convergent then "identical to" else "DIVERGED from");
  Report.record "fault-recovery"
    [
      ("seed", Report.I seed);
      ("plan_events", Report.I (List.length plan.Plan.events));
      ("horizon_ms", Report.F plan.Plan.horizon);
      ("crashes", Report.I st.Net.crashes);
      ("restarts", Report.I st.Net.restarts);
      ("requeues", Report.I st.Net.requeues);
      ("dup_deliveries", Report.I st.Net.dup_deliveries);
      ("destroyed", Report.I st.Net.destroyed);
      ("destroyed_pubs", Report.I st.Net.destroyed_pubs);
      ("dropped_publications", Report.I (Net.dropped_publications net));
      ("client_disconnects", Report.I st.Net.client_disconnects);
      ("client_reconnects", Report.I st.Net.client_reconnects);
      ("replayed", Report.I st.Net.replayed);
      ("recovery_episodes", Report.I (List.length recovery));
      ("recovery_ms_mean", Report.F (mean recovery));
      ("recovery_ms_max", Report.F (fmax recovery));
      ("post_heal_deliveries", Report.I post_heal_total);
      ("convergent", Report.B convergent);
      ("faulted_wall_ms", Report.F (wall_faulted *. 1000.0));
    ];
  if not convergent then begin
    Printf.printf "ERROR: post-heal deliveries diverged from the fault-free control\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Figure 6: routing table size vs number of XPEs (Sets A and B)       *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section
    "Figure 6 - Routing table size vs #XPath queries (NITF)\n\
     (paper: covering compacts Set A by ~90% and Set B by ~50%;\n\
     without covering the table grows linearly)";
  let max_count = scaled 10_000 in
  let steps = List.init 5 (fun i -> max_count * (i + 1) / 5) in
  Printf.printf "%10s %14s %18s %18s\n" "#queries" "no covering" "Set A covering" "Set B covering";
  List.iter
    (fun count ->
      let set_a =
        Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params nitf)
          ~count ~seed:11 ()
      in
      let set_b =
        Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_b_params nitf)
          ~count ~seed:12 ()
      in
      let rts_a = List.length (Sub_tree.maximal (tree_of_xpes set_a)) in
      let rts_b = List.length (Sub_tree.maximal (tree_of_xpes set_b)) in
      if count = max_count then
        Report.record "fig6"
          [
            ("xpes", Report.I count);
            ("prt_size_no_cover", Report.I count);
            ("prt_size_set_a_cover", Report.I rts_a);
            ("prt_size_set_b_cover", Report.I rts_b);
          ];
      (* without covering the routing table holds every distinct XPE *)
      Printf.printf "%10d %14d %11d (-%2.0f%%) %11d (-%2.0f%%)\n%!" count count rts_a
        (100.0 *. float_of_int (count - rts_a) /. float_of_int (max 1 count))
        rts_b
        (100.0 *. float_of_int (List.length set_b - rts_b)
        /. float_of_int (max 1 (List.length set_b))))
    steps

(* ------------------------------------------------------------------ *)
(* Figure 7: covering vs perfect vs imperfect merging (Set B)          *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section
    "Figure 7 - Routing table size: covering vs merging (Set B, NITF)\n\
     (paper: perfect merging compacts the covered table to ~87%, \n\
     imperfect merging with D<=0.1 to ~67%)";
  let universe =
    Xroute_dtd.Dtd_paths.sample_paths ~count:30_000 ~max_depth:10
      (Xroute_support.Prng.create 99) nitf_graph
    |> List.sort_uniq Stdlib.compare
  in
  let max_count = scaled 10_000 in
  let steps = List.init 4 (fun i -> max_count * (i + 1) / 4) in
  Printf.printf "%10s %10s %16s %18s\n" "#queries" "covering" "perfect merging" "imperfect (D<=0.1)";
  List.iter
    (fun count ->
      let xpes =
        Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_b_params nitf)
          ~count ~seed:12 ()
      in
      let maximal = List.map Sub_tree.node_xpe (Sub_tree.maximal (tree_of_xpes xpes)) in
      let rts_cov = List.length maximal in
      let merged_size max_degree =
        let applied, kept = Merge.merge_set ~max_degree ~universe maximal in
        List.length applied + List.length kept
      in
      let rts_pm = merged_size 0.0 in
      let rts_ipm = merged_size 0.1 in
      Printf.printf "%10d %10d %10d (%3.0f%%) %10d (%3.0f%%)\n%!" (List.length xpes) rts_cov
        rts_pm
        (100.0 *. float_of_int rts_pm /. float_of_int (max 1 rts_cov))
        rts_ipm
        (100.0 *. float_of_int rts_ipm /. float_of_int (max 1 rts_cov)))
    steps

(* ------------------------------------------------------------------ *)
(* Figure 8: XPE processing time with/without covering                 *)
(* ------------------------------------------------------------------ *)

(* Processing an arriving XPE: with covering, check the tree first and
   only match uncovered XPEs against the advertisements; without, match
   every XPE against every advertisement. *)
let fig8 () =
  section
    "Figure 8 - XPE processing time, NITF vs PSD, covering on/off\n\
     (paper: covering improves NITF processing by up to 49.2%; NITF\n\
     benefits more because its advertisement set is far larger)";
  let total = scaled 5000 in
  let batch = max 1 (total / 10) in
  let process dtd_name advs params =
    let xpes =
      Xroute_workload.Workload.xpes ~params ~count:total ~seed:21 ()
    in
    let engine = Adv_match.Paper in
    (* without covering *)
    let (), t_nocov =
      time_it (fun () ->
          List.iter
            (fun xpe ->
              List.iter (fun adv -> ignore (Adv_match.overlaps ~engine xpe adv)) advs)
            xpes)
    in
    (* with covering *)
    let tree : int Sub_tree.t = Sub_tree.create () in
    let covered = ref 0 in
    let (), t_cov =
      time_it (fun () ->
          List.iteri
            (fun i xpe ->
              if Sub_tree.is_covered tree xpe then incr covered
              else
                List.iter (fun adv -> ignore (Adv_match.overlaps ~engine xpe adv)) advs;
              ignore (Sub_tree.insert tree xpe i))
            xpes)
    in
    Printf.printf
      "%-5s (%4d advs): no-cov %7.1f ms  with-cov %7.1f ms  (%4.1f%% faster; %2.0f%% covered)\n%!"
      dtd_name (List.length advs) (t_nocov *. 1000.0) (t_cov *. 1000.0)
      (100.0 *. (t_nocov -. t_cov) /. t_nocov)
      (100.0 *. float_of_int !covered /. float_of_int (List.length xpes));
    ignore batch
  in
  process "NITF" nitf_advs (Xroute_workload.Workload.set_a_params nitf);
  process "PSD" psd_advs (Xroute_workload.Workload.set_a_params psd)

(* ------------------------------------------------------------------ *)
(* Table 1: publication routing time                                   *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "Table 1 - Publication routing time per message (NITF, Sets A/B)\n\
     (paper: covering cuts Set A from 13.96 to 2.15 ms (-84.6%) and\n\
     Set B from 14.23 to 7.47 ms (-47.5%); merging improves it further)";
  let count = scaled 10_000 in
  let docs = Xroute_workload.Workload.documents ~dtd:nitf ~count:(scaled 100) ~seed:31 () in
  let pubs = Xroute_workload.Workload.publications_of_documents docs in
  let n_pubs = List.length pubs in
  let universe =
    Xroute_dtd.Dtd_paths.sample_paths ~count:30_000 ~max_depth:10
      (Xroute_support.Prng.create 99) nitf_graph
    |> List.sort_uniq Stdlib.compare
  in
  Printf.printf "%-20s %14s %14s   (%d XPEs, %d publications)\n" "Method" "Set A (ms)"
    "Set B (ms)" count n_pubs;
  let route_time tree =
    let (), t =
      time_it (fun () ->
          List.iter
            (fun (p : Xroute_xml.Xml_paths.publication) ->
              ignore (Sub_tree.match_path tree p.steps p.attrs))
            pubs)
    in
    t *. 1000.0 /. float_of_int n_pubs
  in
  let per_set params seed =
    let xpes = Xroute_workload.Workload.xpes ~params ~count ~seed () in
    let flat = let t : int Sub_tree.t = Sub_tree.create ~flat:true () in List.iteri (fun i x -> ignore (Sub_tree.insert t x i)) xpes; t in
    let covered = tree_of_xpes xpes in
    let maximal = List.map Sub_tree.node_xpe (Sub_tree.maximal covered) in
    let merged_tree max_degree =
      let applied, kept = Merge.merge_set ~max_degree ~universe maximal in
      tree_of_xpes (List.map (fun m -> m.Merge.xpe) applied @ kept)
    in
    let t_none = route_time flat in
    let t_cov = route_time covered in
    let t_pm = route_time (merged_tree 0.0) in
    let t_ipm = route_time (merged_tree 0.1) in
    (t_none, t_cov, t_pm, t_ipm)
  in
  let a = per_set (Xroute_workload.Workload.set_a_params nitf) 11 in
  let b = per_set (Xroute_workload.Workload.set_b_params nitf) 12 in
  let row name fa fb = Printf.printf "%-20s %14.4f %14.4f\n%!" name fa fb in
  let a1, a2, a3, a4 = a and b1, b2, b3, b4 = b in
  row "No Covering" a1 b1;
  row "Covering" a2 b2;
  row "Perfect Merging" a3 b3;
  row "Imperfect Merging" a4 b4;
  Printf.printf "Set A covering speedup: %.1f%%  (paper: 84.6%%)\n"
    (100.0 *. (a1 -. a2) /. a1);
  Printf.printf "Set B covering speedup: %.1f%%  (paper: 47.5%%)\n%!"
    (100.0 *. (b1 -. b2) /. b1)

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: network traffic and delay, 7 and 127 brokers        *)
(* ------------------------------------------------------------------ *)

let run_network ~levels ~subs_per_client ~doc_count strategy_name =
  let strategy = Option.get (Broker.strategy_of_name strategy_name) in
  let topo = Topology.binary_tree ~levels in
  let config = { Net.default_config with Net.strategy; latency = Latency.cluster } in
  let net = Net.create ~config topo in
  let prng = Xroute_support.Prng.create 404 in
  let publisher = Net.add_client net ~broker:0 in
  let leaves = Topology.binary_tree_leaves ~levels in
  let clients = List.map (fun b -> Net.add_client net ~broker:b) leaves in
  ignore (Net.advertise_dtd net publisher psd_advs);
  Net.run net;
  let params = Xroute_workload.Xpath_gen.default_params psd in
  List.iter
    (fun c ->
      let xpes =
        Xroute_workload.Xpath_gen.generate ~distinct:false params
          (Xroute_support.Prng.split prng) ~count:subs_per_client
      in
      List.iter (fun x -> ignore (Net.subscribe net c x)) xpes)
    clients;
  Net.run net;
  (match strategy.Broker.merging with
  | Broker.No_merging -> ()
  | _ ->
    Net.set_universe net
      (Xroute_dtd.Dtd_paths.enumerate_paths ~max_depth:10 ~max_count:3000 psd_graph);
    Net.merge_all net);
  let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:doc_count ~seed:51 () in
  let t_pub_start = Sim.now (Net.sim net) in
  List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
  Net.run net;
  ignore t_pub_start;
  (* Report from the metrics registry — the same surface a daemon
     exposes over STATS|. *)
  let reg = Net.aggregate_metrics net in
  let scalar name = Option.value ~default:0.0 (Metrics.scalar reg name) in
  let delay =
    match Metrics.find reg "xroute_net_delivery_delay_ms" with
    | Some (Metrics.Histogram h) -> (Metrics.summary h).Xroute_support.Stats.mean
    | _ -> 0.0
  in
  ( int_of_float (scalar "xroute_net_msgs_total"),
    delay,
    int_of_float (scalar "xroute_net_deliveries_total") )

let network_table ~levels ~subs_per_client ~doc_count title paper_hint =
  section (title ^ "\n" ^ paper_hint);
  Printf.printf "%-24s %16s %12s %12s\n" "Method" "Network Traffic" "Delay (ms)" "Deliveries";
  let base = ref 0 in
  List.iter
    (fun name ->
      let traffic, delay, deliveries =
        run_network ~levels ~subs_per_client ~doc_count name
      in
      if !base = 0 then base := traffic;
      Printf.printf "%-24s %16d %12.3f %12d   (%.1f%% of baseline)\n%!" name traffic delay
        deliveries
        (100.0 *. float_of_int traffic /. float_of_int !base))
    Broker.strategy_names

let table2 () =
  network_table ~levels:3 ~subs_per_client:(scaled 1000) ~doc_count:(scaled 50)
    "Table 2 - 7-broker network (PSD, 1000 XPEs per subscriber, 50 docs)"
    "(paper: adv+cov reduce traffic to ~66%; covering cuts delay ~4x;\n merging compacts further at slight traffic increase for IPM)"

let table3 () =
  (* The paper uses 1000 XPEs per subscriber; the flooding baselines make
     that a long run (every subscription crosses all 126 links and every
     publication is matched against every broker's full table), so the
     default is scaled down; XROUTE_BENCH_SCALE=10 restores paper size. *)
  network_table ~levels:7
    ~subs_per_client:(scaled 100)
    ~doc_count:(scaled 20)
    "Table 3 - 127-broker network (PSD, 100 XPEs per subscriber, 20 docs)"
    "(paper: adv+cov reduce traffic to ~50%; benefits grow with size)"

(* ------------------------------------------------------------------ *)
(* Figure 9: false positives vs imperfect degree                       *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section
    "Figure 9 - False positives vs imperfect merging degree (PSD)\n\
     (paper: false positives grow with the degree bound; D <= 0.1 keeps\n\
     them under ~2%)";
  (* Subscribers are interested in most-but-not-all children of each
     container element: the canonical situation where merging a sibling
     group to a wildcard overshoots by exactly the missing siblings.
     False positives are the *extra* in-network drops relative to a
     no-merging control (publications for which no subscriber exists at
     all are dropped at the publisher's edge in every strategy and do
     not count). *)
  let paths = Xroute_dtd.Dtd_paths.enumerate_paths ~max_depth:10 ~max_count:3000 psd_graph in
  let groups : (string, string array list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun path ->
      let n = Array.length path in
      if n >= 2 then begin
        let prefix = String.concat "/" (Array.to_list (Array.sub path 0 (n - 1))) in
        let existing = Option.value ~default:[] (Hashtbl.find_opt groups prefix) in
        Hashtbl.replace groups prefix (path :: existing)
      end)
    paths;
  let run merging =
    let strategy = { Broker.default_strategy with Broker.merging } in
    let topo = Topology.binary_tree ~levels:3 in
    let net = Net.create ~config:{ Net.default_config with Net.strategy } topo in
    let prng = Xroute_support.Prng.create 640 in
    let publisher = Net.add_client net ~broker:0 in
    let leaves = Topology.binary_tree_leaves ~levels:3 in
    let clients = List.map (fun b -> Net.add_client net ~broker:b) leaves in
    ignore (Net.advertise_dtd net publisher psd_advs);
    Net.run net;
    List.iter
      (fun c ->
        Hashtbl.iter
          (fun _prefix members ->
            if List.length members >= 3 then begin
              let members = Xroute_support.Prng.shuffle prng (Array.of_list members) in
              let drop = 1 + Xroute_support.Prng.int prng (Array.length members / 3 + 1) in
              Array.iteri
                (fun i path ->
                  if i >= drop then
                    ignore
                      (Net.subscribe net c
                         (Xroute_xpath.Xpe.absolute_of_names (Array.to_list path))))
                members
            end)
          groups)
      clients;
    Net.run net;
    Net.set_universe net paths;
    Net.merge_all net;
    let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:(scaled 40) ~seed:61 () in
    List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
    Net.run net;
    ((Net.traffic net).Net.pub, Net.dropped_publications net, Net.total_deliveries net)
  in
  let base_pubs, base_dropped, base_deliveries = run Broker.No_merging in
  Printf.printf "(control without merging: %d pub messages, %d edge drops)\n" base_pubs
    base_dropped;
  Printf.printf "%10s %18s %16s\n" "Degree" "pub messages" "false pos (%)";
  List.iter
    (fun degree ->
      let merging = if degree = 0.0 then Broker.Perfect else Broker.Imperfect degree in
      let pubs, dropped, deliveries = run merging in
      if deliveries <> base_deliveries then
        Printf.printf "WARNING: deliveries changed (%d vs %d)\n" deliveries base_deliveries;
      Printf.printf "%10.2f %18d %15.2f%%\n%!" degree pubs
        (100.0 *. float_of_int (max 0 (dropped - base_dropped)) /. float_of_int (max 1 pubs)))
    [ 0.0; 0.05; 0.1; 0.15; 0.2 ]

(* ------------------------------------------------------------------ *)
(* Figures 10 and 11: notification delay vs hops (PlanetLab model)     *)
(* ------------------------------------------------------------------ *)

let delay_vs_hops ~dtd ~advs ~doc_sizes title paper_hint =
  section (title ^ "\n" ^ paper_hint);
  let hops = [ 2; 3; 4; 5; 6 ] in
  Printf.printf "%8s" "size";
  List.iter (fun h -> Printf.printf "  %8s" (Printf.sprintf "%d hops" h)) hops;
  Printf.printf "\n";
  let subs_per_client = scaled 400 in
  List.iter
    (fun target_bytes ->
      let run_with use_cover =
        let strategy = { Broker.default_strategy with Broker.use_cover } in
        let config =
          { Net.default_config with Net.strategy; latency = Latency.planetlab; seed = 7 }
        in
        let topo = Topology.line 7 in
        let net = Net.create ~config topo in
        let publisher = Net.add_client net ~broker:0 in
        let subscribers = List.map (fun h -> (h, Net.add_client net ~broker:h)) hops in
        ignore (Net.advertise_dtd net publisher advs);
        Net.run net;
        let prng = Xroute_support.Prng.create 777 in
        let params = Xroute_workload.Workload.set_a_params dtd in
        List.iter
          (fun (_, c) ->
            List.iter
              (fun x -> ignore (Net.subscribe net c x))
              (Xroute_workload.Xpath_gen.generate ~distinct:false params
                 (Xroute_support.Prng.split prng) ~count:subs_per_client);
            (* one catch-all marker so every document is delivered *)
            ignore
              (Net.subscribe net c
                 (Xroute_xpath.Xpe_parser.parse ("/" ^ Xroute_dtd.Dtd_ast.root dtd))))
          subscribers;
        Net.run net;
        let gen_prng = Xroute_support.Prng.create 888 in
        let gparams = Xroute_workload.Xml_gen.default_params dtd in
        for doc_id = 0 to scaled 10 - 1 do
          let doc = Xroute_workload.Xml_gen.generate_sized gparams gen_prng ~target_bytes in
          ignore (Net.publish_doc net publisher ~doc_id doc)
        done;
        Net.run net;
        let delays = Net.delivery_delays net in
        List.map
          (fun (h, c) ->
            let ds =
              List.filter_map
                (fun (cid, _, d) -> if cid = c.Net.cid then Some d else None)
                delays
            in
            ( h,
              if ds = [] then nan
              else List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds) ))
          subscribers
      in
      let with_cov = run_with true in
      let without_cov = run_with false in
      Printf.printf "%5dK +cov" (target_bytes / 1024);
      List.iter (fun h -> Printf.printf "  %8.2f" (List.assoc h with_cov)) hops;
      Printf.printf "\n%5dK -cov" (target_bytes / 1024);
      List.iter (fun h -> Printf.printf "  %8.2f" (List.assoc h without_cov)) hops;
      Printf.printf "\n%!")
    doc_sizes

let fig10 () =
  delay_vs_hops ~dtd:psd ~advs:psd_advs
    ~doc_sizes:[ 2048; 10240; 20480 ]
    "Figure 10 - Notification delay vs hops, PSD documents (PlanetLab model)"
    "(paper: delay linear in hops; covering cuts it by up to 74%;\n larger documents take longer)"

let fig11 () =
  delay_vs_hops ~dtd:nitf ~advs:nitf_advs
    ~doc_sizes:[ 2048; 20480; 40960 ]
    "Figure 11 - Notification delay vs hops, NITF documents (PlanetLab model)"
    "(paper: same shape as Fig. 10 with larger documents and tables)"

(* ------------------------------------------------------------------ *)
(* Latency breakdown: per-stage percentiles from the causal spans      *)
(* ------------------------------------------------------------------ *)

(* The causal-span layer (lib/obs/span) decomposes every delivery into
   stage leaves — queue wait, SRT/PRT match, cover check, per-message
   processing, transmit, link, FIFO queueing, delivery. This experiment
   publishes a seeded workload down a 7-broker line under three
   strategies and reports p50/p95/p99 per stage: the view *behind* the
   aggregate delay numbers of Figures 10-11, showing covering cutting
   the match stages while the wire stages stay strategy-invariant.
   Virtual time, so every reported value is deterministic in the
   seeds. *)
let latency_breakdown () =
  section
    "Latency breakdown - per-stage p50/p95/p99 from causal spans\n\
     (7-broker line, PSD; stage leaves of the span trees the TRACE|\n\
     command exposes; no-optimization vs covering vs perfect merging)";
  let stages =
    [ "queue"; "srt_match"; "prt_match"; "cover"; "proc"; "transmit"; "link"; "deliver" ]
  in
  let run strategy_name =
    let strategy = Option.get (Broker.strategy_of_name strategy_name) in
    let spans = Xroute_obs.Span.create ~capacity:262_144 () in
    let config =
      { Net.default_config with Net.strategy; latency = Latency.planetlab; seed = 7 }
    in
    let net = Net.create ~config ~spans (Topology.line 7) in
    let publisher = Net.add_client net ~broker:0 in
    let subscriber = Net.add_client net ~broker:6 in
    ignore (Net.advertise_dtd net publisher psd_advs);
    Net.run net;
    let prng = Xroute_support.Prng.create 777 in
    let params = Xroute_workload.Workload.set_a_params psd in
    List.iter
      (fun x -> ignore (Net.subscribe net subscriber x))
      (Xroute_workload.Xpath_gen.generate ~distinct:false params
         (Xroute_support.Prng.split prng) ~count:(scaled 200));
    (* catch-all so every document is delivered end-to-end *)
    ignore
      (Net.subscribe net subscriber
         (Xroute_xpath.Xpe_parser.parse ("/" ^ Xroute_dtd.Dtd_ast.root psd)));
    Net.run net;
    (match strategy.Broker.merging with
    | Broker.No_merging -> ()
    | _ ->
      Net.set_universe net
        (Xroute_dtd.Dtd_paths.enumerate_paths ~max_depth:10 ~max_count:3000 psd_graph);
      Net.merge_all net);
    let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:(scaled 20) ~seed:51 () in
    List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
    Net.run net;
    let all = Xroute_obs.Span.to_list spans in
    let durations name =
      List.filter_map
        (fun (s : Xroute_obs.Span.span) ->
          if s.Xroute_obs.Span.name = name then Some (Xroute_obs.Span.duration s) else None)
        all
      |> Array.of_list
    in
    ( List.map (fun st -> (st, Xroute_support.Stats.summarize (durations st))) stages,
      Xroute_support.Stats.summarize (durations "pub") )
  in
  List.iter
    (fun strategy_name ->
      let per_stage, e2e = run strategy_name in
      Printf.printf "\n%s  (end-to-end: n=%d  p50 %.3f  p95 %.3f  p99 %.3f ms)\n" strategy_name
        e2e.Xroute_support.Stats.count e2e.Xroute_support.Stats.p50
        e2e.Xroute_support.Stats.p95 e2e.Xroute_support.Stats.p99;
      Printf.printf "%-12s %8s %10s %10s %10s\n" "stage" "n" "p50 (ms)" "p95 (ms)" "p99 (ms)";
      List.iter
        (fun (st, (s : Xroute_support.Stats.summary)) ->
          Printf.printf "%-12s %8d %10.4f %10.4f %10.4f\n%!" st s.count s.p50 s.p95 s.p99)
        per_stage;
      Report.record
        ("latency-breakdown-" ^ strategy_name)
        (List.concat_map
           (fun (st, (s : Xroute_support.Stats.summary)) ->
             [
               (st ^ "_n", Report.I s.count);
               (st ^ "_p50_ms", Report.F s.p50);
               (st ^ "_p95_ms", Report.F s.p95);
               (st ^ "_p99_ms", Report.F s.p99);
             ])
           (("e2e", e2e) :: per_stage)))
    [ "no-Adv-no-Cov"; "with-Adv-with-Cov"; "with-Adv-with-CovPM" ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_exact_cover () =
  section
    "Ablation - paper covering rules vs exact automata containment\n\
     (completeness buys extra table compaction at a CPU price)";
  let count = scaled 4000 in
  let xpes =
    Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_b_params nitf) ~count
      ~seed:71 ()
  in
  let run name covers =
    let (tree : int Sub_tree.t), t =
      time_it (fun () ->
          let tree = Sub_tree.create ~covers () in
          List.iteri (fun i x -> ignore (Sub_tree.insert tree x i)) xpes;
          tree)
    in
    Printf.printf "%-14s table=%6d  build time=%8.1f ms\n%!" name
      (List.length (Sub_tree.maximal tree))
      (t *. 1000.0)
  in
  run "paper rules" (fun a b -> Cover.covers a b);
  run "exact" (fun a b -> Cover.covers ~engine:Cover.Exact a b)

let ablation_yfilter () =
  section
    "Ablation - covering tree vs YFilter-style shared NFA (matching)\n\
     (the paper's table organization vs the classic NFA filter; Sec. 6\n\
     discussion. Build cost, table size and per-publication match time)";
  let count = scaled 10_000 in
  let xpes =
    Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params nitf) ~count
      ~seed:11 ()
  in
  let docs = Xroute_workload.Workload.documents ~dtd:nitf ~count:(scaled 60) ~seed:35 () in
  let pubs = Xroute_workload.Workload.publications_of_documents docs in
  let n_pubs = List.length pubs in
  (* covering tree *)
  let tree, t_tree_build = time_it (fun () -> tree_of_xpes xpes) in
  let (), t_tree_match =
    time_it (fun () ->
        List.iter
          (fun (p : Xroute_xml.Xml_paths.publication) ->
            ignore (Sub_tree.match_path tree p.steps p.attrs))
          pubs)
  in
  (* yfilter *)
  let yf, t_yf_build =
    time_it (fun () ->
        let yf : int Yfilter.t = Yfilter.create () in
        List.iteri (fun i x -> Yfilter.insert yf x i) xpes;
        yf)
  in
  let (), t_yf_match =
    time_it (fun () ->
        List.iter
          (fun (p : Xroute_xml.Xml_paths.publication) ->
            ignore (Yfilter.match_path yf p.steps p.attrs))
          pubs)
  in
  Printf.printf "%-16s build %8.1f ms  match %8.4f ms/pub  (state: %d nodes)\n"
    "covering tree" (t_tree_build *. 1000.)
    (t_tree_match *. 1000. /. float_of_int n_pubs)
    (Sub_tree.size tree);
  Printf.printf "%-16s build %8.1f ms  match %8.4f ms/pub  (state: %d NFA states)\n%!"
    "yfilter" (t_yf_build *. 1000.)
    (t_yf_match *. 1000. /. float_of_int n_pubs)
    (Yfilter.state_count yf)

let ablation_trail_routing () =
  section
    "Ablation - XTreeNet-style trail routing (match once, follow trails)\n\
     (interior brokers restrict matching to the trailed subtrees)";
  let run trail_routing =
    let strategy = { Broker.default_strategy with Broker.trail_routing } in
    let topo = Topology.line 7 in
    let net = Net.create ~config:{ Net.default_config with Net.strategy } topo in
    let publisher = Net.add_client net ~broker:0 in
    let subscriber = Net.add_client net ~broker:6 in
    ignore (Net.advertise_dtd net publisher psd_advs);
    Net.run net;
    let prng = Xroute_support.Prng.create 81 in
    let params = Xroute_workload.Xpath_gen.default_params psd in
    List.iter
      (fun x -> ignore (Net.subscribe net subscriber x))
      (Xroute_workload.Xpath_gen.generate ~distinct:false params prng ~count:(scaled 800));
    Net.run net;
    let work_before =
      Array.fold_left (fun acc b -> acc + Broker.work b) 0 (Net.brokers net)
    in
    let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:(scaled 40) ~seed:82 () in
    List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
    Net.run net;
    let work =
      Array.fold_left (fun acc b -> acc + Broker.work b) 0 (Net.brokers net) - work_before
    in
    (work, Net.total_deliveries net)
  in
  let w_plain, d_plain = run false in
  let w_trail, d_trail = run true in
  Printf.printf "plain:  match work %8d  deliveries %d\n" w_plain d_plain;
  Printf.printf "trails: match work %8d  deliveries %d  (%.1f%% less work)\n%!" w_trail d_trail
    (100.0 *. float_of_int (w_plain - w_trail) /. float_of_int (max 1 w_plain))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core algorithms                    *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "Micro-benchmarks (Bechamel; ns per operation)";
  let open Bechamel in
  let xp = Xroute_xpath.Xpe_parser.parse in
  let ad = Xroute_xpath.Adv.parse in
  let abs_xpe = xp "/nitf/body/*/block/p" in
  let rel_xpe = xp "block/p/em" in
  let des_xpe = xp "/nitf//block/*//em" in
  let rec_adv = ad "/nitf/body/body.content(/block)+/p/em" in
  let plain_adv = Xroute_xpath.Adv.of_names [ "nitf"; "body"; "body.content"; "block"; "p"; "em" ] in
  let plain_syms = Xroute_xpath.Adv.to_symbols plain_adv in
  let s1 = xp "/nitf/body/*//p" and s2 = xp "/nitf/body/body.content/block/p/em" in
  let tree = tree_of_xpes
      (Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params nitf)
         ~count:2000 ~seed:91 ()) in
  let path = [| "nitf"; "body"; "body.content"; "block"; "p"; "em" |] in
  let tests =
    [
      Test.make ~name:"AbsExprAndAdv"
        (Staged.stage (fun () -> Adv_match.abs_expr_and_adv abs_xpe.Xroute_xpath.Xpe.steps plain_syms));
      Test.make ~name:"RelExprAndAdv"
        (Staged.stage (fun () -> Adv_match.rel_expr_and_adv rel_xpe.Xroute_xpath.Xpe.steps plain_syms));
      Test.make ~name:"RelExprAndAdv-naive"
        (Staged.stage (fun () -> Adv_match.rel_expr_and_adv_naive rel_xpe.Xroute_xpath.Xpe.steps plain_syms));
      Test.make ~name:"DesExprAndAdv"
        (Staged.stage (fun () -> Adv_match.des_expr_and_adv des_xpe plain_syms));
      Test.make ~name:"RecAdvMatch"
        (Staged.stage (fun () -> Adv_match.expr_and_rec_adv abs_xpe rec_adv));
      Test.make ~name:"ExactOverlap(NFA)"
        (Staged.stage (fun () -> Adv_match.overlaps_exact abs_xpe rec_adv));
      Test.make ~name:"Cover.covers"
        (Staged.stage (fun () -> Cover.covers s1 s2));
      Test.make ~name:"Cover.covers-exact"
        (Staged.stage (fun () -> Cover.covers ~engine:Cover.Exact s1 s2));
      Test.make ~name:"SubTree.match(2k)"
        (Staged.stage (fun () -> Sub_tree.match_names tree path));
      Test.make ~name:"SubTree.is_covered(2k)"
        (Staged.stage (fun () -> Sub_tree.is_covered tree s2));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | _ -> nan
          in
          Printf.printf "%-28s %12.1f ns/op\n%!" name estimate)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Match scaling - flat scan vs covering tree vs shared-prefix NFA     *)
(* ------------------------------------------------------------------ *)

(* The PR-6 tentpole measurement: per-publication match cost as the PRT
   grows from 1k to 100k subscriptions, under the three engines the
   differential harness gates — the flat list (no covering, tree
   engine), the covering tree (pruned DFS), and the shared-prefix NFA.
   Decisions must be byte-identical across all three at every size; the
   NFA's per-publication cost must track its branching into the
   publication, not the table size. Records go to BENCH_6.json. *)

let prt_decision (prt : Rtable.Prt.t) (pub : Xroute_xml.Xml_paths.publication) =
  Rtable.Prt.match_pub prt pub
  |> List.map (fun (p : Rtable.Prt.payload) -> p.Rtable.Prt.id)
  |> List.sort_uniq compare
  |> List.map (fun (id : Message.sub_id) -> Printf.sprintf "%d.%d" id.origin id.seq)
  |> String.concat ";"

let match_scaling () =
  section
    "Match scaling - flat list vs covering tree vs shared-prefix NFA\n\
     (PRT publication matching as the table grows; Set A, NITF; the\n\
     three engines of the differential harness must agree decision-for-\n\
     decision while the NFA's cost stays flat in the table size)";
  let sizes = List.sort_uniq compare [ scaled 1_000; scaled 10_000; scaled 100_000 ] in
  let requested = List.fold_left max 1 sizes in
  let xpes =
    Array.of_list
      (Xroute_workload.Workload.xpes
         ~params:(Xroute_workload.Workload.set_a_params nitf) ~count:requested ~seed:71 ())
  in
  (* the generator caps at the DTD's distinct-XPE space *)
  let avail = Array.length xpes in
  if avail < requested then
    Printf.printf "(workload yields %d distinct XPEs for %d requested)\n" avail requested;
  let docs = Xroute_workload.Workload.documents ~dtd:nitf ~count:(scaled 10) ~seed:72 () in
  let pubs = Xroute_workload.Workload.publications_of_documents docs in
  let n_pubs = List.length pubs in
  let flat = Rtable.Prt.create ~flat:true ~engine:Rtable.Prt.Tree () in
  let tree = Rtable.Prt.create ~engine:Rtable.Prt.Tree () in
  let nfa = Rtable.Prt.create ~engine:Rtable.Prt.Nfa () in
  let inserted = ref 0 in
  let fill upto =
    for i = !inserted to min upto avail - 1 do
      let id : Message.sub_id = { origin = 1; seq = i } in
      ignore (Rtable.Prt.insert flat id xpes.(i) (Rtable.Client 0));
      ignore (Rtable.Prt.insert tree id xpes.(i) (Rtable.Client 0));
      ignore (Rtable.Prt.insert nfa id xpes.(i) (Rtable.Client 0))
    done;
    inserted := min upto avail
  in
  Printf.printf "%d publications from %d documents\n" n_pubs (scaled 10);
  Printf.printf "%-9s %-9s | %13s %13s %13s | %11s %11s %11s | %5s\n" "xpes" "(stored)"
    "flat ent/pub" "tree ent/pub" "nfa ent/pub" "flat ms/pub" "tree ms/pub" "nfa ms/pub"
    "diffs";
  let last_ratio = ref 0.0 in
  List.iter
    (fun size ->
      fill size;
      let run prt =
        let before = Rtable.Prt.match_checks prt in
        let decisions, wall = time_it (fun () -> List.map (prt_decision prt) pubs) in
        (decisions, Rtable.Prt.match_checks prt - before, wall)
      in
      let d_flat, ops_flat, t_flat = run flat in
      let d_tree, ops_tree, t_tree = run tree in
      let d_nfa, ops_nfa, t_nfa = run nfa in
      let diffs l = List.fold_left2 (fun n a b -> if String.equal a b then n else n + 1) 0 d_flat l in
      let decision_diffs = diffs d_tree + diffs d_nfa in
      let per ops = float_of_int ops /. float_of_int (max 1 n_pubs) in
      let ms t = t *. 1000.0 /. float_of_int (max 1 n_pubs) in
      let ratio = per ops_flat /. Float.max 1.0 (per ops_nfa) in
      last_ratio := ratio;
      Printf.printf
        "%-9d %-9d | %13.1f %13.1f %13.1f | %11.4f %11.4f %11.4f | %5d  (flat/nfa %.1fx)\n%!"
        size !inserted (per ops_flat) (per ops_tree) (per ops_nfa) (ms t_flat) (ms t_tree)
        (ms t_nfa) decision_diffs ratio;
      Report.record6
        (Printf.sprintf "match-scaling-%d" size)
        [
          ("xpes_requested", Report.I size);
          ("xpes_stored", Report.I !inserted);
          ("publications", Report.I n_pubs);
          ("entries_per_pub_flat", Report.F (per ops_flat));
          ("entries_per_pub_tree", Report.F (per ops_tree));
          ("entries_per_pub_nfa", Report.F (per ops_nfa));
          ("ms_per_pub_flat", Report.F (ms t_flat));
          ("ms_per_pub_tree", Report.F (ms t_tree));
          ("ms_per_pub_nfa", Report.F (ms t_nfa));
          ("nfa_states", Report.I (Rtable.Prt.nfa_states nfa));
          ("flat_over_nfa", Report.F ratio);
          ("decision_diffs", Report.I decision_diffs);
          ("decisions_identical", Report.B (decision_diffs = 0));
        ];
      if decision_diffs <> 0 then begin
        Printf.printf "match-scaling FAILED: %d decision diffs at %d XPEs\n" decision_diffs
          size;
        exit 1
      end)
    sizes;
  Report.record6 "match-scaling"
    [
      ("sizes", Report.I (List.length sizes));
      ("flat_over_nfa_at_max", Report.F !last_ratio);
    ]

(* ------------------------------------------------------------------ *)
(* Million-client scenario engine: sim-events/sec and peak RSS          *)
(* ------------------------------------------------------------------ *)

module Scenario = Xroute_workload.Scenario

(* Two halves, one experiment. First the trust gate: at small scale,
   every scenario kind runs on both simulator queue backends and the
   delivery ledgers must be byte-identical (full rows), with identical
   per-broker next-hop decisions and fault accounting — the differential
   that makes the large-scale numbers below meaningful. Then the scale
   series: the flash-crowd scenario at 10k/100k/1M virtual subscribers,
   reporting sim-events/sec and process peak RSS per point, so simulator
   performance is tracked by the same BENCH machinery as broker
   performance. Points run in ascending order (peak RSS is a high-water
   mark). *)
let scenario_scale () =
  section "Scenario engine: heap/list differential gate + scale series (BENCH_8.json)";
  Printf.printf "differential gate (1000 clients, full ledgers, all kinds):\n%!";
  let gate_failed = ref false in
  List.iter
    (fun kind ->
      let spec =
        {
          Scenario.default_spec with
          Scenario.kind;
          clients = 1_000;
          docs = 8;
          levels = 3;
          xpes = 64;
          batch = 128;
        }
      in
      let (a, _b, diffs), wall = time_it (fun () -> Scenario.differential ~ledger:`Full spec) in
      let name = Scenario.kind_to_string kind in
      Printf.printf "  %-8s deliveries=%-7d subs=%-6d diffs=%d (%.0f ms)\n%!" name
        a.Scenario.deliveries a.Scenario.subs_sent (List.length diffs) (wall *. 1000.0);
      if diffs <> [] then gate_failed := true;
      Report.record8
        (Printf.sprintf "scenario-differential-%s" name)
        [
          ("clients", Report.I spec.Scenario.clients);
          ("deliveries", Report.I a.Scenario.deliveries);
          ("subs", Report.I a.Scenario.subs_sent);
          ("unsubs", Report.I a.Scenario.unsubs_sent);
          ("ledger_diffs", Report.I (List.length diffs));
          ("ledgers_identical", Report.B (diffs = []));
        ])
    Scenario.all_kinds;
  if !gate_failed then begin
    Printf.printf "scenario-scale FAILED: heap/list ledger differential diverged\n";
    exit 1
  end;
  let points =
    [
      (scaled 10_000, 4, 8, 1_024);
      (scaled 100_000, 5, 6, 4_096);
      (scaled 1_000_000, 6, 4, 8_192);
    ]
  in
  Printf.printf "\nflash-crowd scale series:\n";
  Printf.printf "%-9s %-8s | %10s %12s %12s %10s | %9s\n" "clients" "brokers" "deliveries"
    "sim events" "events/sec" "wall s" "peakRSS MB";
  List.iter
    (fun (clients, levels, docs, batch) ->
      let spec =
        {
          Scenario.default_spec with
          Scenario.kind = Scenario.Flash_crowd;
          clients;
          docs;
          levels;
          batch;
        }
      in
      let o, wall =
        time_it (fun () -> Scenario.run ~ledger:`Digest ~decisions:false spec)
      in
      let rss = peak_rss_bytes () in
      let eps = float_of_int o.Scenario.events /. Float.max 1e-9 wall in
      Printf.printf "%-9d %-8d | %10d %12d %12.0f %10.2f | %9.1f\n%!" clients
        ((1 lsl levels) - 1) o.Scenario.deliveries o.Scenario.events eps wall
        (float_of_int rss /. 1.0e6);
      Report.record8
        (Printf.sprintf "scenario-scale-%d" clients)
        [
          ("clients", Report.I clients);
          ("brokers", Report.I ((1 lsl levels) - 1));
          ("docs", Report.I o.Scenario.docs_published);
          ("subs", Report.I o.Scenario.subs_sent);
          ("deliveries", Report.I o.Scenario.deliveries);
          ("events", Report.I o.Scenario.events);
          ("events_per_sec", Report.F eps);
          ("wall_s", Report.F wall);
          ("peak_rss_bytes", Report.I rss);
          ("prt_total", Report.I o.Scenario.prt_total);
          ("virtual_ms", Report.F o.Scenario.virtual_ms);
        ])
    points;
  Report.record8 "scenario-scale"
    [
      ("scale_points", Report.I (List.length points));
      ("max_clients", Report.I (List.fold_left (fun m (c, _, _, _) -> max m c) 0 points));
      ("differential_gate", Report.B (not !gate_failed));
    ]

(* ------------------------------------------------------------------ *)
(* Instrumentation smoke check (wired into dune runtest)               *)
(* ------------------------------------------------------------------ *)

(* Drive a tiny workload through the simulator and fail if any
   registered hot-path metric stays at zero — the canary for silently
   dead instrumentation. *)
let smoke () =
  let trace = Xroute_obs.Trace.create ~capacity:1024 () in
  let topo = Topology.line 3 in
  let net = Net.create ~trace topo in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:2 in
  ignore (Net.advertise_dtd net publisher psd_advs);
  Net.run net;
  let xpes =
    Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params psd)
      ~count:40 ~seed:5 ()
  in
  List.iter (fun x -> ignore (Net.subscribe net subscriber x)) xpes;
  (* catch-all so every document is delivered *)
  ignore
    (Net.subscribe net subscriber
       (Xroute_xpath.Xpe_parser.parse ("/" ^ Xroute_dtd.Dtd_ast.root psd)));
  Net.run net;
  let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:5 ~seed:6 () in
  List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
  Net.run net;
  let reg = Net.aggregate_metrics net in
  let hot_paths =
    [
      "xroute_broker_msgs_in_total";
      "xroute_broker_advs_in_total";
      "xroute_broker_subs_in_total";
      "xroute_broker_pubs_in_total";
      "xroute_broker_deliveries_total";
      "xroute_broker_forwarded_subs";
      "xroute_srt_size";
      "xroute_srt_buckets";
      "xroute_srt_bucket_max";
      "xroute_srt_match_ops_total";
      "xroute_srt_sub_match_ops";
      "xroute_prt_size";
      "xroute_prt_payloads";
      "xroute_prt_match_checks_total";
      "xroute_prt_cover_checks_total";
      "xroute_prt_pub_match_ops";
      "xroute_net_msgs_total";
      "xroute_net_msgs_adv_total";
      "xroute_net_msgs_sub_total";
      "xroute_net_msgs_pub_total";
      "xroute_net_deliveries_total";
      "xroute_net_hop_latency_ms";
      "xroute_net_delivery_delay_ms";
    ]
  in
  let dead =
    List.filter
      (fun name ->
        match Metrics.scalar reg name with Some v -> v = 0.0 | None -> true)
      hot_paths
  in
  Printf.printf "smoke: %d hot-path metrics checked, %d hops traced\n" (List.length hot_paths)
    (Xroute_obs.Trace.length trace);
  if Xroute_obs.Trace.length trace = 0 then begin
    Printf.printf "smoke FAILED: no hops traced\n";
    exit 1
  end;
  if dead <> [] then begin
    Printf.printf "smoke FAILED: metrics stuck at zero (or unregistered):\n";
    List.iter (fun n -> Printf.printf "  %s\n" n) dead;
    print_string (Metrics.to_prometheus reg);
    exit 1
  end;
  (* Indexed vs flat SRT: identical routing decisions, strictly fewer
     scans, on a seeded multi-feed workload. *)
  let advs = Lazy.force all_feed_advs in
  let xpes =
    Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params nitf)
      ~count:2000 ~seed:11 ()
  in
  let identical, ops_list, ops_idx, _, _, _ = srt_differential ~advs xpes in
  Printf.printf "smoke: SRT differential on %d XPEs x %d advs: list %d ops, indexed %d ops\n"
    (List.length xpes) (List.length advs) ops_list ops_idx;
  if not identical then begin
    Printf.printf "smoke FAILED: indexed SRT diverged from the flat list SRT\n";
    exit 1
  end;
  if ops_idx >= ops_list then begin
    Printf.printf "smoke FAILED: SRT index avoided no scans (%d >= %d)\n" ops_idx ops_list;
    exit 1
  end;
  (* NFA vs flat PRT: identical routing decisions on the PSD multi-feed
     corpus (PSD subscriptions; publications from the PSD feed plus a
     foreign feed, so the automaton also sees roots it stores nothing
     under). *)
  let prt_xpes =
    Xroute_workload.Workload.xpes ~params:(Xroute_workload.Workload.set_a_params psd)
      ~count:1500 ~seed:13 ()
  in
  let prt_flat = Rtable.Prt.create ~flat:true ~engine:Rtable.Prt.Tree () in
  let prt_nfa = Rtable.Prt.create ~engine:Rtable.Prt.Nfa () in
  List.iteri
    (fun i x ->
      let id : Message.sub_id = { origin = 2; seq = i } in
      ignore (Rtable.Prt.insert prt_flat id x (Rtable.Client 0));
      ignore (Rtable.Prt.insert prt_nfa id x (Rtable.Client 0)))
    prt_xpes;
  let corpus =
    Xroute_workload.Workload.publications_of_documents
      (Xroute_workload.Workload.documents ~dtd:psd ~count:8 ~seed:14 ()
      @ Xroute_workload.Workload.documents ~dtd:nitf ~count:4 ~seed:15 ())
  in
  let nfa_diffs =
    List.filter
      (fun pub -> not (String.equal (prt_decision prt_flat pub) (prt_decision prt_nfa pub)))
      corpus
  in
  Printf.printf "smoke: NFA vs flat PRT on %d XPEs x %d publications: %d decision diffs\n"
    (List.length prt_xpes) (List.length corpus) (List.length nfa_diffs);
  if nfa_diffs <> [] then begin
    Printf.printf "smoke FAILED: NFA match engine diverged from the flat PRT\n";
    List.iter
      (fun (pub : Xroute_xml.Xml_paths.publication) ->
        Printf.printf "  /%s\n" (String.concat "/" (Array.to_list pub.steps)))
      nfa_diffs;
    exit 1
  end;
  (match Rtable.Prt.nfa_invariants prt_nfa with
  | [] -> ()
  | problems ->
    Printf.printf "smoke FAILED: PRT NFA invariants violated:\n";
    List.iter (fun m -> Printf.printf "  %s\n" m) problems;
    exit 1);
  (* Shard gate: the domain pool's merged decisions must be
     byte-identical to the sequential NFA PRT on the same mixed
     anchored/unanchored subscription set. Reuses the NFA gate's 1500
     XPEs and 12-document corpus; publications are emitted through the
     seq-keyed reorder buffer in submission order, so the i-th emitted
     decision compares against the i-th sequential one. *)
  let module Pool = Xroute_daemon.Shard_pool in
  let pool = Pool.create ~domains:3 () in
  List.iteri
    (fun i x ->
      let id : Message.sub_id = { origin = 2; seq = i } in
      let seq = Pool.next_seq pool in
      Pool.subscribe pool ~stamp:seq id x (Rtable.Client 0);
      Pool.push_control pool ~seq (fun () -> ()))
    prt_xpes;
  let render (payloads : Rtable.Prt.payload list) =
    List.map (fun (p : Rtable.Prt.payload) -> p.Rtable.Prt.id) payloads
    |> List.sort_uniq compare
    |> List.map (fun (id : Message.sub_id) -> Printf.sprintf "%d.%d" id.origin id.seq)
    |> String.concat ";"
  in
  let pool_got = ref [] in
  let drain_pool () =
    Pool.drain pool ~publish:(fun ~seq:_ ~from:_ ~batch_t:_ outcome ->
        match outcome with
        | Pool.Routed { payloads; _ } -> pool_got := render payloads :: !pool_got
        | Pool.Undecodable _ -> pool_got := "<undecodable>" :: !pool_got)
  in
  let submitted =
    List.filter
      (fun pub ->
        let payload = Codec.encode (Message.Publish { pub; trail = []; ctx = None }) in
        match Pool.publish_root payload with
        | None -> false
        | Some root ->
          let seq = Pool.next_seq pool in
          while
            not (Pool.submit_publish pool ~seq ~from:(Rtable.Client 9) ~batch_t:0.0 ~payload ~root)
          do
            drain_pool ();
            Unix.sleepf 0.0002
          done;
          true)
      corpus
  in
  let shard_deadline = Unix.gettimeofday () +. 20.0 in
  while Pool.in_flight pool > 0 && Unix.gettimeofday () < shard_deadline do
    drain_pool ();
    if Pool.in_flight pool > 0 then Unix.sleepf 0.0002
  done;
  let stuck = Pool.in_flight pool in
  Pool.stop pool;
  if stuck > 0 then begin
    Printf.printf "smoke FAILED: shard pool left %d publications in flight\n" stuck;
    exit 1
  end;
  let sequential = List.map (prt_decision prt_nfa) submitted in
  let pooled = List.rev !pool_got in
  if List.length pooled <> List.length sequential then begin
    Printf.printf "smoke FAILED: shard pool emitted %d decisions for %d publications\n"
      (List.length pooled) (List.length sequential);
    exit 1
  end;
  let shard_diffs =
    List.fold_left2 (fun n a b -> if String.equal a b then n else n + 1) 0 sequential pooled
  in
  Printf.printf "smoke: shard pool vs sequential PRT on %d publications: %d decision diffs\n"
    (List.length submitted) shard_diffs;
  if shard_diffs <> 0 then begin
    Printf.printf "smoke FAILED: shard pool diverged from the sequential PRT\n";
    exit 1
  end;
  (* Fault gate: crash the relay broker of a line, publish into the
     outage (must be destroyed and accounted), restart it, and require
     the routing state to recover so the next publication is delivered
     and exactly one recovery episode is measured. *)
  let fnet =
    Net.create
      ~config:{ Net.default_config with Net.latency = Latency.constant 1.0 }
      (Topology.line 3)
  in
  let fpub = Net.add_client fnet ~broker:0 in
  let fsub = Net.add_client fnet ~broker:2 in
  ignore (Net.advertise fnet fpub (Xroute_xpath.Adv.parse "/x/y"));
  Net.run fnet;
  ignore (Net.subscribe fnet fsub (Xroute_xpath.Xpe_parser.parse "/x"));
  Net.run fnet;
  Net.crash_broker fnet 1;
  ignore (Net.publish_doc fnet fpub ~doc_id:1 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  Net.run fnet;
  Net.restart_broker fnet 1;
  Net.run fnet;
  ignore (Net.publish_doc fnet fpub ~doc_id:2 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  Net.run fnet;
  let fstats = Net.fault_stats fnet in
  if Hashtbl.mem fsub.Net.delivered 1 then begin
    Printf.printf "smoke FAILED: publication sent into the crash window was delivered\n";
    exit 1
  end;
  if not (Hashtbl.mem fsub.Net.delivered 2) then begin
    Printf.printf "smoke FAILED: no delivery after broker restart\n";
    exit 1
  end;
  if Net.dropped_publications fnet = 0 then begin
    Printf.printf "smoke FAILED: crash-destroyed publication not accounted as dropped\n";
    exit 1
  end;
  if List.length fstats.Net.recovery_times <> 1 then begin
    Printf.printf "smoke FAILED: expected 1 recovery episode, measured %d\n"
      (List.length fstats.Net.recovery_times);
    exit 1
  end;
  Printf.printf
    "smoke: fault gate ok (crash/restart recovered; %d msgs destroyed, %.1f ms recovery)\n"
    fstats.Net.destroyed
    (List.hd fstats.Net.recovery_times);
  (* Span gate: a traced publication must yield a complete, well-nested
     span tree whose stage leaves sum exactly to the measured
     end-to-end latency — the invariant the latency-breakdown
     experiment and the TRACE| command stand on. Single-path document
     on a line so the leaf-sum telescopes without fanout. *)
  let span_spans = Xroute_obs.Span.create () in
  let snet =
    Net.create
      ~config:{ Net.default_config with Net.latency = Latency.constant 1.0 }
      ~spans:span_spans (Topology.line 3)
  in
  let span_pub = Net.add_client snet ~broker:0 in
  let span_sub = Net.add_client snet ~broker:2 in
  ignore (Net.advertise snet span_pub (Xroute_xpath.Adv.parse "/x/y"));
  Net.run snet;
  ignore (Net.subscribe snet span_sub (Xroute_xpath.Xpe_parser.parse "/x"));
  Net.run snet;
  ignore (Net.publish_doc snet span_pub ~doc_id:7 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  Net.run snet;
  let sps = Xroute_obs.Span.spans_for span_spans ~trace:7 in
  if sps = [] then begin
    Printf.printf "smoke FAILED: traced publication produced no spans\n";
    exit 1
  end;
  (match Xroute_obs.Span.check_tree sps with
  | Ok () -> ()
  | Error e ->
    Printf.printf "smoke FAILED: span tree mis-nested: %s\n" e;
    print_string (Xroute_obs.Span.waterfall sps);
    exit 1);
  let span_delay =
    match Net.delivery_delays snet with
    | [ (_, 7, d) ] -> d
    | l ->
      Printf.printf "smoke FAILED: expected exactly one traced delivery, saw %d\n"
        (List.length l);
      exit 1
  in
  let leaf_sum = Xroute_obs.Span.stage_sum sps in
  if Float.abs (leaf_sum -. span_delay) > 1e-6 then begin
    Printf.printf "smoke FAILED: stage leaves sum to %.9f ms but delivery took %.9f ms\n"
      leaf_sum span_delay;
    print_string (Xroute_obs.Span.waterfall sps);
    exit 1
  end;
  Printf.printf "smoke: span gate ok (%d spans, leaf sum = end-to-end %.3f ms)\n"
    (List.length sps) span_delay;
  (* Scenario gate: the heap-backed event queue must produce a
     byte-identical delivery ledger to the sorted-list reference on a
     small flash-crowd scenario — the differential the million-client
     numbers in BENCH_8.json stand on. *)
  let scen_spec =
    {
      Scenario.default_spec with
      Scenario.clients = 300;
      docs = 5;
      levels = 3;
      xpes = 32;
      batch = 64;
      dtd = "book";
    }
  in
  let scen_a, _, scen_diffs = Scenario.differential ~ledger:`Full scen_spec in
  if scen_diffs <> [] then begin
    Printf.printf "smoke FAILED: scenario heap/list differential diverged (%s)\n"
      (String.concat ", " scen_diffs);
    exit 1
  end;
  if scen_a.Scenario.deliveries = 0 then begin
    Printf.printf "smoke FAILED: smoke scenario produced no deliveries\n";
    exit 1
  end;
  Printf.printf "smoke: scenario gate ok (%d deliveries, heap = list ledger)\n"
    scen_a.Scenario.deliveries;
  Printf.printf "smoke ok\n%!"

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("latency-breakdown", latency_breakdown);
    ("srt-index", srt_index_bench);
    ("daemon-throughput", daemon_throughput);
    ("saturation", saturation);
    ("conc", conc_bench);
    ("obs-telemetry", obs_telemetry);
    ("fault-recovery", fault_recovery);
    ("ablation-exact-cover", ablation_exact_cover);
    ("ablation-yfilter", ablation_yfilter);
    ("match-scaling", match_scaling);
    ("ablation-trail", ablation_trail_routing);
    ("micro", micro_benchmarks);
    ("scenario-scale", scenario_scale);
  ]

let () =
  if Array.exists (String.equal "--smoke") Sys.argv then begin
    smoke ();
    exit 0
  end;
  (* Consume --seed N and --fault-plan SPEC (they parameterise the
     fault-recovery experiment); everything left over is an
     experiment-name filter. *)
  let rec parse_args acc = function
    | [] -> List.rev acc
    | [ ("--seed" | "--fault-plan") as flag ] ->
      Printf.eprintf "%s needs a value\n" flag;
      exit 2
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n -> fault_seed := n
      | None ->
        Printf.eprintf "bad --seed %S (want an integer)\n" v;
        exit 2);
      parse_args acc rest
    | "--fault-plan" :: v :: rest ->
      (match Xroute_fault.Plan.spec_of_string v with
      | Ok spec -> fault_spec := spec
      | Error msg ->
        Printf.eprintf "bad --fault-plan %S: %s\n" v msg;
        exit 2);
      parse_args acc rest
    | name :: rest -> parse_args (name :: acc) rest
  in
  let names = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let only = if names = [] then None else Some names in
  let want name = match only with None -> true | Some l -> List.mem name l in
  Printf.printf "xroute experiment harness (scale %.2f; set XROUTE_BENCH_SCALE to change)\n" scale;
  Printf.printf "NITF advertisements: %d, PSD advertisements: %d (paper ratio: ~35x)\n%!"
    (List.length nitf_advs) (List.length psd_advs);
  List.iter
    (fun (name, f) ->
      if want name then begin
        let (), wall = time_it f in
        Report.record name [ ("wall_ms", Report.F (wall *. 1000.0)) ]
      end)
    experiments;
  Report.write
    (Option.value ~default:"BENCH_5.json" (Sys.getenv_opt "XROUTE_BENCH_JSON"));
  Printf.printf "\nDone.\n"
