(* xroute_check: static analyzer for the routing stack.

   Three analysis families, all run when none is selected explicitly:

   - workload  : dead / contradictory / shadowed subscriptions of a
                 DTD-driven workload against its advertisement set;
   - soundness : seeded differential audit of the paper's covering,
                 advertisement-covering and merging rules against the
                 exact automata engine (unsound = Error, incomplete =
                 Warning with rates);
   - audit     : routing-state invariants over converged simulated
                 churn networks — or over a live daemon with --connect.

   Four harness-integrity families ride along (also in the default
   set): --shard-audit checks the daemon's domain-pool PRT partition,
   --scenario-audit checks the scale harness itself — heap-vs-list
   queue differential, run-to-run determinism, liveness smells —
   --conc-audit replays the pool's lock-free core (SPSC rings, reorder
   buffer, counters) under a schedule-exploring cooperative scheduler
   with a vector-clock race detector, and --obs-audit checks the
   telemetry itself: sketch quantile accuracy against exact order
   statistics, counter monotonicity across snapshots, span/metric
   cross-consistency, and FEDSTATS federation laws.

   Exit codes are uniform across every family and both output modes:
   0 when the run produced no Error-severity finding (warnings and
   infos alone never fail), 1 on any Error, 2 on unusable invocations
   (bad DTD, bad seed list, unreachable daemon).

   The report prints as text (and as JSON with --json); the process
   exits 1 when any Error-severity finding is present. --self-audit is
   the fixed configuration the build's @lint alias runs. *)

open Cmdliner
module Finding = Xroute_check.Finding
module Soundness = Xroute_check.Soundness
module Check = Xroute_check.Check
module Broker = Xroute_core.Broker
module Net = Xroute_overlay.Net
module Topology = Xroute_overlay.Topology
module Prng = Xroute_support.Prng

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let load_dtd spec =
  match Xroute_dtd.Dtd_samples.by_name spec with
  | Some dtd -> Ok dtd
  | None -> (
    if Sys.file_exists spec then begin
      let ic = open_in_bin spec in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      match Xroute_dtd.Dtd_parser.parse_opt content with
      | Some dtd -> Ok dtd
      | None -> Error (Printf.sprintf "could not parse DTD file %s" spec)
    end
    else
      Error
        (Printf.sprintf "unknown DTD %s (samples: %s)" spec
           (String.concat ", " Xroute_dtd.Dtd_samples.names)))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("xroute_check: " ^ msg);
    exit 2

(* ---------------- workload analysis ---------------- *)

let workload_report dtd ~count ~clients ~seed =
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let params = Xroute_workload.Workload.set_b_params dtd in
  let xpes = Xroute_workload.Workload.xpes ~distinct:false ~params ~count ~seed () in
  let subs = List.mapi (fun i x -> (i mod max 1 clients, x)) xpes in
  let findings = Check.analyze_workload ~advs ~subs () in
  let by_code c = List.length (List.filter (fun f -> f.Finding.code = c) findings) in
  let f = float_of_int in
  Finding.report
    ~stats:
      [
        ("workload_subscriptions", f (List.length subs));
        ("workload_advertisements", f (List.length advs));
        ("workload_dead", f (by_code "dead-subscription"));
        ("workload_contradictory", f (by_code "contradictory-predicates"));
        ("workload_shadowed", f (by_code "shadowed-subscription"));
      ]
    findings

(* ---------------- routing-state audit (simulated) ---------------- *)

(* Build a binary-tree network, churn it with interleaved subscribes and
   unsubscribes, converge, run a merging pass where the strategy merges,
   and audit every broker against the client ledgers. *)
let churned_net dtd ~strategy ~seed ~ops =
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let levels = 3 in
  let topo = Topology.binary_tree ~levels in
  let net = Net.create ~config:{ Net.default_config with strategy; seed } topo in
  let publisher = Net.add_client net ~broker:0 in
  let leaves = Topology.binary_tree_leaves ~levels in
  let clients = List.map (fun b -> Net.add_client net ~broker:b) leaves in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  let params = Xroute_workload.Workload.set_b_params dtd in
  let prng = Prng.create ((seed * 7919) + 11) in
  let live = ref [] in
  for _ = 1 to ops do
    (if !live <> [] && Prng.bernoulli prng 0.35 then begin
       let c, id = List.nth !live (Prng.int prng (List.length !live)) in
       Net.unsubscribe net c id;
       live := List.filter (fun (_, i) -> i <> id) !live
     end
     else
       let c = Prng.choose_list prng clients in
       let x = Xroute_workload.Xpath_gen.generate_one params prng in
       live := (c, Net.subscribe net c x) :: !live);
    Net.run net
  done;
  Net.run net;
  (match strategy.Broker.merging with
  | Broker.No_merging -> ()
  | _ ->
    Net.set_universe net
      (Xroute_dtd.Dtd_paths.sample_paths ~count:2000 ~max_depth:10 (Prng.create 5) graph);
    Net.merge_all net;
    Net.run net);
  net

let audit_report dtd ~strategies ~seeds ~ops =
  let reports =
    List.concat_map
      (fun name ->
        let strategy =
          match Broker.strategy_of_name name with
          | Some s -> s
          | None -> or_die (Error ("unknown strategy " ^ name))
        in
        List.map
          (fun seed ->
            let net = churned_net dtd ~strategy ~seed ~ops in
            let findings = Check.audit_net net in
            Finding.report findings)
          seeds)
      strategies
  in
  let combined = Finding.concat reports in
  let f = float_of_int in
  {
    combined with
    Finding.stats =
      [
        ("audit_networks", f (List.length reports));
        ("audit_strategies", f (List.length strategies));
        ("audit_seeds", f (List.length seeds));
        ("audit_churn_ops", f ops);
        ("routing_violations", f (List.length combined.Finding.findings));
      ];
  }

(* ---------------- shard-integrity audit ---------------- *)

(* Drive an in-process domain pool (Xroute_daemon.Shard_pool) through
   seeded subscribe/unsubscribe/publish churn — the same glue the
   daemon's pool mode uses — then audit the partition at quiescence:
   anchored entries on their owner shard alone, unanchored entries
   replicated everywhere, no orphans, unique stamps, counters summing.
   --inject-shard-skew silently breaks shard 0 first; the audit must
   then report errors (the @lint mutation check). *)
let shard_audit_report ~domains ~seed ~ops ~inject =
  let module Pool = Xroute_daemon.Shard_pool in
  let module Message = Xroute_core.Message in
  let module Codec = Xroute_core.Codec in
  let xp = Xroute_xpath.Xpe_parser.parse in
  let broker = Broker.create ~id:0 ~neighbors:[ 1 ] () in
  let pool = Pool.create ~domains () in
  let drain () = Pool.drain pool ~publish:(fun ~seq:_ ~from:_ ~batch_t:_ _ -> ()) in
  let prng = Prng.create ((seed * 6271) + 3) in
  let sub_patterns =
    [ "/a/b"; "/a"; "/b"; "/c/d"; "/d/e"; "//b"; "//d"; "/*/c" ]
  in
  let docs =
    List.map Xroute_xml.Xml_parser.parse
      [ "<a><b/></a>"; "<b><c/></b>"; "<c><d/></c>"; "<d><e/></d>" ]
  in
  let from = Xroute_core.Rtable.Client 100 in
  let live = ref [] in
  let next_sub = ref 0 in
  let next_doc = ref 0 in
  for _ = 1 to ops do
    match Prng.int prng 5 with
    | 0 | 1 ->
      incr next_sub;
      let id = { Message.origin = 200; seq = !next_sub } in
      let xpe = xp (List.nth sub_patterns (Prng.int prng (List.length sub_patterns))) in
      let seq = Pool.next_seq pool in
      let before = Broker.prt_mem broker id in
      ignore (Broker.handle broker ~from (Message.Subscribe { id; xpe }));
      if (not before) && Broker.prt_mem broker id then begin
        Pool.subscribe pool ~stamp:seq id xpe from;
        live := id :: !live
      end;
      Pool.push_control pool ~seq (fun () -> ())
    | 2 when !live <> [] ->
      let id = List.nth !live (Prng.int prng (List.length !live)) in
      live := List.filter (fun i -> Message.compare_sub_id i id <> 0) !live;
      let seq = Pool.next_seq pool in
      ignore (Broker.handle broker ~from (Message.Unsubscribe { id }));
      if not (Broker.prt_mem broker id) then Pool.unsubscribe pool id;
      Pool.push_control pool ~seq (fun () -> ())
    | _ ->
      incr next_doc;
      List.iter
        (fun pub ->
          let payload = Codec.encode (Message.Publish { pub; trail = []; ctx = None }) in
          match Pool.publish_root payload with
          | None -> ()
          | Some root ->
            let seq = Pool.next_seq pool in
            while not (Pool.submit_publish pool ~seq ~from ~batch_t:0.0 ~payload ~root) do
              drain ();
              Unix.sleepf 0.0002
            done)
        (Xroute_xml.Xml_paths.decompose ~doc_id:!next_doc
           (List.nth docs (Prng.int prng (List.length docs))))
  done;
  let deadline = Unix.gettimeofday () +. 20.0 in
  while Pool.in_flight pool > 0 && Unix.gettimeofday () < deadline do
    drain ();
    Unix.sleepf 0.0002
  done;
  drain ();
  Pool.quiesce pool;
  if inject then Pool.corrupt_for_test pool;
  let subs =
    List.map
      (fun (id, xpe, _) -> (id, xpe))
      (Broker.audit_view broker).Broker.av_subs
  in
  let report = Check.audit_shards_report (Pool.view pool ~subs) in
  Pool.stop pool;
  report

(* ---------------- scenario-integrity audit ---------------- *)

(* Sweep every scenario kind at smoke scale: heap-vs-list differential,
   determinism replay, liveness smells. --inject-scenario-skew replays
   the list leg one seed off; the audit must then exit 1 (the @scenario
   mutation rule). *)
let scenario_audit_report ~clients ~seed ~inject =
  let module Scenario = Xroute_workload.Scenario in
  (* trimmed book-DTD spec: the audit exercises the harness (queues,
     ledger digests, generators), not nitf match throughput — the book
     grammar runs the same checks two orders of magnitude faster *)
  let specs =
    List.map
      (fun kind ->
        {
          Scenario.default_spec with
          Scenario.kind;
          clients;
          seed;
          docs = 6;
          xpes = 48;
          levels = 3;
          rounds = 2;
          channels = 4;
          dtd = "book";
        })
      Scenario.all_kinds
  in
  Check.audit_scenario_report ~inject specs

(* ---------------- concurrency audit ---------------- *)

(* Replay the shard pool's enqueue/match/drain core (the production
   Spsc + Reorder + Tsync code) under the schedule explorer. On
   failure, print each witness schedule prominently even in --quiet
   runs: the trace is what reproduces the bug. *)
let conc_audit_report ~depth ~random ~seed ~inject ~quiet =
  let depth = if depth <= 0 then None else Some depth in
  let report = Xroute_check.Conc.audit ?depth ~random ~seed ~inject () in
  if quiet && Finding.has_errors report then
    List.iter
      (fun (f : Finding.t) ->
        if f.severity = Finding.Error then
          Printf.eprintf "xroute_check: %s: %s\n  %s\n" f.code f.subject f.witness)
      report.Finding.findings;
  report

(* ---------------- observability audit ---------------- *)

(* Check the telemetry stack against ground truth: sketch quantiles vs
   exact order statistics, federation merge laws, and a 3-broker line
   overlay's counters/spans/health cross-checked against each other.
   --inject-obs-drift rolls one counter of the collected snapshot data
   back to zero; the audit must then exit 1 (the @obs mutation rule). *)
let obs_audit_report ~seed ~inject = Xroute_check.Obs.audit ~seed ~inject ()

(* ---------------- routing-state audit (live daemon) ---------------- *)

let severity_of_string = function
  | "error" -> Finding.Error
  | "warning" -> Finding.Warning
  | _ -> Finding.Info

let daemon_audit_report ~connect =
  let host, port =
    match String.rindex_opt connect ':' with
    | Some i -> (
      let host = String.sub connect 0 i in
      let port = String.sub connect (i + 1) (String.length connect - i - 1) in
      match int_of_string_opt port with
      | Some p -> ((if host = "" then "127.0.0.1" else host), p)
      | None -> or_die (Error ("bad --connect address " ^ connect)))
    | None -> or_die (Error ("bad --connect address " ^ connect ^ " (want host:port)"))
  in
  let client =
    try Xroute_daemon.Client.connect ~client_id:999_999 ~host ~port
    with Unix.Unix_error (e, _, _) ->
      or_die (Error (Printf.sprintf "cannot connect to %s:%d: %s" host port (Unix.error_message e)))
  in
  let result = Xroute_daemon.Client.audit client in
  Xroute_daemon.Client.close client;
  match result with
  | None -> or_die (Error "daemon audit timed out")
  | Some (errors, warnings, findings) ->
    let findings =
      List.map
        (fun (sev, code, subject, witness) ->
          Finding.make ~severity:(severity_of_string sev) ~family:"routing" ~code ~subject
            ~witness)
        findings
    in
    let f = float_of_int in
    Finding.report
      ~stats:
        [
          ("daemon_audit_errors", f errors);
          ("daemon_audit_warnings", f warnings);
        ]
      findings

(* ---------------- the command ---------------- *)

let parse_seeds s =
  let parts = String.split_on_char ',' s in
  let seeds = List.filter_map int_of_string_opt parts in
  if seeds = [] || List.length seeds <> List.length parts then
    or_die (Error ("bad --seeds list " ^ s))
  else seeds

let run dtd_spec workload soundness audit shard_audit scenario_audit conc_audit obs_audit
    self_audit seeds_str pairs count clients strategy_name ops domains scenario_clients
    conc_depth conc_random inject_unsound inject_shard_skew inject_scenario_skew
    inject_conc_race inject_obs_drift witness_incomplete json_path connect metrics quiet
    verbose =
  setup_logs verbose;
  let dtd = or_die (load_dtd dtd_spec) in
  let seeds = parse_seeds seeds_str in
  let none_selected =
    not
      (workload || soundness || audit || shard_audit || scenario_audit || conc_audit
     || obs_audit || connect <> None)
  in
  let all = self_audit || none_selected in
  let reports = ref [] in
  let add r = reports := r :: !reports in
  if workload || all then add (workload_report dtd ~count ~clients ~seed:(List.hd seeds));
  if soundness || all then begin
    let covers =
      if inject_unsound then Soundness.planted_unsound_covers else Xroute_core.Cover.covers_paper
    in
    add (Soundness.run ~covers ~seeds ~pairs_per_seed:pairs ~witness_incomplete ())
  end;
  if shard_audit || all then
    List.iter
      (fun seed -> add (shard_audit_report ~domains ~seed ~ops:(ops * 4) ~inject:inject_shard_skew))
      seeds;
  if scenario_audit || all then
    add
      (scenario_audit_report ~clients:scenario_clients ~seed:(List.hd seeds)
         ~inject:inject_scenario_skew);
  if conc_audit || all then
    add
      (conc_audit_report ~depth:conc_depth ~random:conc_random ~seed:(List.hd seeds)
         ~inject:inject_conc_race ~quiet);
  if obs_audit || all then
    add (obs_audit_report ~seed:(List.hd seeds) ~inject:inject_obs_drift);
  (match connect with
  | Some c -> add (daemon_audit_report ~connect:c)
  | None ->
    if audit || all then begin
      let strategies =
        if strategy_name = "all" then Broker.strategy_names else [ strategy_name ]
      in
      add (audit_report dtd ~strategies ~seeds ~ops)
    end);
  let report = Finding.concat (List.rev !reports) in
  if not quiet then print_string (Finding.to_text report);
  (match json_path with
  | Some "-" -> print_endline (Finding.to_json report)
  | Some path ->
    let oc = open_out path in
    output_string oc (Finding.to_json report);
    output_char oc '\n';
    close_out oc
  | None -> ());
  if metrics then begin
    let reg = Xroute_obs.Metrics.create () in
    let meters = Xroute_obs.Check_meters.create reg in
    Finding.record_meters meters report;
    print_string (Xroute_obs.Metrics.to_prometheus reg)
  end;
  if Finding.has_errors report then exit 1

let cmd =
  let doc =
    "Static analyzer: workload smells, covering/merging soundness, routing-state invariants."
  in
  let dtd_arg =
    let doc =
      "DTD to use: a bundled sample name (book, insurance, psd, nitf) or a path to a DTD file."
    in
    Arg.(value & opt string "book" & info [ "dtd" ] ~docv:"DTD" ~doc)
  in
  let workload_arg =
    Arg.(value & flag & info [ "workload" ] ~doc:"Run the workload analysis family.")
  in
  let soundness_arg =
    Arg.(value & flag & info [ "soundness" ] ~doc:"Run the soundness audit family.")
  in
  let audit_arg =
    Arg.(value & flag & info [ "audit" ] ~doc:"Run the routing-state audit family.")
  in
  let shard_audit_arg =
    Arg.(
      value & flag
      & info [ "shard-audit" ]
          ~doc:
            "Run the shard-integrity audit family: churn an in-process domain pool and \
             check the PRT partition invariants at quiescence.")
  in
  let scenario_audit_arg =
    Arg.(
      value & flag
      & info [ "scenario-audit" ]
          ~doc:
            "Run the scenario-integrity audit family: sweep every scenario kind at \
             smoke scale and check the heap-vs-list differential, run-to-run \
             determinism, and liveness smells.")
  in
  let conc_audit_arg =
    Arg.(
      value & flag
      & info [ "conc-audit" ]
          ~doc:
            "Run the concurrency audit family: replay the shard pool's lock-free core \
             (SPSC rings, reorder buffer, counters) under bounded-exhaustive plus \
             seeded-random schedules with a vector-clock race detector, checking every \
             schedule's decisions against the sequential engine.")
  in
  let obs_audit_arg =
    Arg.(
      value & flag
      & info [ "obs-audit" ]
          ~doc:
            "Run the observability audit family: sketch quantile accuracy against exact \
             order statistics on seeded distributions, federation merge laws \
             (commutative, associative, idempotent, codec round-trip), and a 3-broker \
             line overlay checked for counter monotonicity, gauge sanity, span/metric \
             cross-consistency and FEDSTATS view agreement.")
  in
  let self_audit_arg =
    Arg.(
      value & flag
      & info [ "self-audit" ]
          ~doc:"Run every family at the fixed configuration the @lint alias uses.")
  in
  let seeds_arg =
    Arg.(
      value & opt string "1,2,3,4"
      & info [ "seeds" ] ~docv:"N,N,..."
          ~doc:"Comma-separated seeds for the soundness corpora and the audited networks.")
  in
  let pairs_arg =
    Arg.(
      value & opt int 250
      & info [ "pairs" ] ~docv:"N" ~doc:"Soundness: covering pairs generated per seed.")
  in
  let count_arg =
    Arg.(
      value & opt int 60
      & info [ "count" ] ~docv:"N" ~doc:"Workload: subscriptions to generate.")
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Workload: clients the subscriptions spread over.")
  in
  let strategy_arg =
    let doc =
      Printf.sprintf "Audit: routing strategy, one of %s, or $(b,all)."
        (String.concat ", " Broker.strategy_names)
    in
    Arg.(value & opt string "all" & info [ "strategy" ] ~doc)
  in
  let ops_arg =
    Arg.(
      value & opt int 30
      & info [ "ops" ] ~docv:"N" ~doc:"Audit: churn operations per simulated network.")
  in
  let domains_arg =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Shard audit: worker domains in the churned pool.")
  in
  let scenario_clients_arg =
    Arg.(
      value & opt int 600
      & info [ "scenario-clients" ] ~docv:"N"
          ~doc:"Scenario audit: virtual clients per audited scenario.")
  in
  let conc_depth_arg =
    Arg.(
      value & opt int 0
      & info [ "conc-depth" ] ~docv:"N"
          ~doc:
            "Conc audit: override the bounded-exhaustive DFS depth for every scenario \
             (0 = per-scenario defaults).")
  in
  let conc_random_arg =
    Arg.(
      value & opt int 250
      & info [ "conc-random" ] ~docv:"N"
          ~doc:"Conc audit: seeded random schedules per scenario beyond the DFS sweep.")
  in
  let inject_conc_race_arg =
    Arg.(
      value & flag
      & info [ "inject-conc-race" ]
          ~doc:
            "Mutation check: plant an unsynchronized plain counter between a worker and \
             the drain thread in the pool models; the run must report a data race with a \
             witness schedule and exit 1.")
  in
  let inject_obs_drift_arg =
    Arg.(
      value & flag
      & info [ "inject-obs-drift" ]
          ~doc:
            "Mutation check: roll one counter of the collected snapshot data back to \
             zero before the monotonicity check; the run must report errors and exit 1.")
  in
  let inject_scenario_skew_arg =
    Arg.(
      value & flag
      & info [ "inject-scenario-skew" ]
          ~doc:
            "Mutation check: replay the list-queue leg of the scenario differential \
             one seed off; the run must report errors and exit 1.")
  in
  let inject_shard_skew_arg =
    Arg.(
      value & flag
      & info [ "inject-shard-skew" ]
          ~doc:
            "Mutation check: silently corrupt one shard's partition before the shard \
             audit; the run must report errors and exit 1.")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-unsound-cover" ]
          ~doc:
            "Mutation check: audit a deliberately unsound covering rule instead of the \
             paper's; the run must report errors and exit 1.")
  in
  let witness_incomplete_arg =
    Arg.(
      value & flag
      & info [ "witness-incomplete" ]
          ~doc:
            "Soundness: also report each incomplete pair (oracle contains, rule disagrees) \
             as an Info finding.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Write the JSON report to $(docv) ('-' = stdout).")
  in
  let connect_arg =
    Arg.(
      value & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Audit a live broker daemon over the wire (AUDIT|) instead of simulating.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Print the finding counters as a Prometheus exposition.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the text report.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log protocol-level events.")
  in
  Cmd.v
    (Cmd.info "xroute_check" ~version:"%%VERSION%%" ~doc)
    Term.(
      const run $ dtd_arg $ workload_arg $ soundness_arg $ audit_arg $ shard_audit_arg
      $ scenario_audit_arg $ conc_audit_arg $ obs_audit_arg $ self_audit_arg $ seeds_arg
      $ pairs_arg $ count_arg $ clients_arg $ strategy_arg $ ops_arg $ domains_arg
      $ scenario_clients_arg $ conc_depth_arg $ conc_random_arg $ inject_arg
      $ inject_shard_skew_arg $ inject_scenario_skew_arg $ inject_conc_race_arg
      $ inject_obs_drift_arg $ witness_incomplete_arg $ json_arg $ connect_arg
      $ metrics_arg $ quiet_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
