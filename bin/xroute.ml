(* Command-line interface to the XML/XPath routing library.

   Subcommands:
   - advs      : print the advertisement set derived from a DTD
   - gen-xpath : generate an XPath query workload
   - gen-xml   : generate XML documents from a DTD
   - match     : check subscription/advertisement overlap
   - cover     : check covering between two XPEs
   - simulate  : run a dissemination network simulation and report
                 traffic, table sizes and notification delay *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Log protocol-level events (broker message handling, deliveries)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let dtd_arg =
  let doc =
    "DTD to use: a bundled sample name (book, insurance, psd, nitf) or a path to a DTD file."
  in
  Arg.(value & opt string "psd" & info [ "dtd" ] ~docv:"DTD" ~doc)

let seed_arg =
  let doc = "Random seed (experiments are reproducible by seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let load_dtd spec =
  match Xroute_dtd.Dtd_samples.by_name spec with
  | Some dtd -> Ok dtd
  | None -> (
    if Sys.file_exists spec then begin
      let ic = open_in_bin spec in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      match Xroute_dtd.Dtd_parser.parse_opt content with
      | Some dtd -> Ok dtd
      | None -> Error (Printf.sprintf "could not parse DTD file %s" spec)
    end
    else
      Error
        (Printf.sprintf "unknown DTD %s (samples: %s)" spec
           (String.concat ", " Xroute_dtd.Dtd_samples.names)))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("xroute: " ^ msg);
    exit 1

(* ---------------- advs ---------------- *)

let advs_cmd =
  let run dtd_spec =
    let dtd = or_die (load_dtd dtd_spec) in
    let graph = Xroute_dtd.Dtd_graph.build dtd in
    let advs = Xroute_dtd.Dtd_paths.advertisements graph in
    Printf.printf "# %d elements, recursive: %b, %d advertisements\n"
      (Xroute_dtd.Dtd_ast.element_count dtd)
      (Xroute_dtd.Dtd_graph.is_recursive graph)
      (List.length advs);
    List.iter (fun a -> print_endline (Xroute_xpath.Adv.to_string a)) advs
  in
  let doc = "Print the advertisement set derived from a DTD (Sec. 3.1)." in
  Cmd.v (Cmd.info "advs" ~doc) Term.(const run $ dtd_arg)

(* ---------------- gen-xpath ---------------- *)

let gen_xpath_cmd =
  let count_arg =
    Arg.(value & opt int 20 & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of queries.")
  in
  let wildcard_arg =
    Arg.(value & opt float 0.2 & info [ "wildcard"; "W" ] ~doc:"Wildcard probability per step.")
  in
  let desc_arg =
    Arg.(value & opt float 0.2 & info [ "descendant"; "D" ] ~doc:"Descendant-operator probability.")
  in
  let run dtd_spec count seed wildcard desc =
    let dtd = or_die (load_dtd dtd_spec) in
    let params =
      {
        (Xroute_workload.Xpath_gen.default_params dtd) with
        Xroute_workload.Xpath_gen.wildcard_prob = wildcard;
        desc_prob = desc;
      }
    in
    let prng = Xroute_support.Prng.create seed in
    List.iter
      (fun x -> print_endline (Xroute_xpath.Xpe.to_string x))
      (Xroute_workload.Xpath_gen.generate params prng ~count)
  in
  let doc = "Generate an XPath subscription workload from a DTD." in
  Cmd.v (Cmd.info "gen-xpath" ~doc)
    Term.(const run $ dtd_arg $ count_arg $ seed_arg $ wildcard_arg $ desc_arg)

(* ---------------- gen-xml ---------------- *)

let gen_xml_cmd =
  let count_arg =
    Arg.(value & opt int 1 & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of documents.")
  in
  let size_arg =
    Arg.(value & opt int 0 & info [ "size" ] ~docv:"BYTES" ~doc:"Approximate target size.")
  in
  let run dtd_spec count seed size =
    let dtd = or_die (load_dtd dtd_spec) in
    let prng = Xroute_support.Prng.create seed in
    let params = Xroute_workload.Xml_gen.default_params dtd in
    for _ = 1 to count do
      let doc =
        if size > 0 then Xroute_workload.Xml_gen.generate_sized params prng ~target_bytes:size
        else Xroute_workload.Xml_gen.generate params prng
      in
      print_endline (Xroute_xml.Xml_printer.to_pretty_string doc)
    done
  in
  let doc = "Generate XML documents conforming to a DTD." in
  Cmd.v (Cmd.info "gen-xml" ~doc) Term.(const run $ dtd_arg $ count_arg $ seed_arg $ size_arg)

(* ---------------- match ---------------- *)

let match_cmd =
  let xpe_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"XPE") in
  let adv_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"ADV") in
  let run xpe_s adv_s =
    match (Xroute_xpath.Xpe_parser.parse_opt xpe_s, Xroute_xpath.Adv.parse_opt adv_s) with
    | Some xpe, Some adv ->
      let paper = Xroute_core.Adv_match.overlaps_paper xpe adv in
      let exact = Xroute_core.Adv_match.overlaps_exact xpe adv in
      Printf.printf "paper engine: %b\nexact engine: %b\n" paper exact;
      if paper <> exact then exit 2
    | None, _ ->
      prerr_endline "xroute: cannot parse the XPath expression";
      exit 1
    | _, None ->
      prerr_endline "xroute: cannot parse the advertisement";
      exit 1
  in
  let doc = "Check whether a subscription overlaps an advertisement (Sec. 3.2-3.3)." in
  Cmd.v (Cmd.info "match" ~doc) Term.(const run $ xpe_arg $ adv_arg)

(* ---------------- cover ---------------- *)

let cover_cmd =
  let s1_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"XPE1") in
  let s2_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"XPE2") in
  let run s1 s2 =
    match (Xroute_xpath.Xpe_parser.parse_opt s1, Xroute_xpath.Xpe_parser.parse_opt s2) with
    | Some x1, Some x2 ->
      Printf.printf "paper rules: %b\nexact:       %b\n" (Xroute_core.Cover.covers x1 x2)
        (Xroute_core.Cover.covers ~engine:Xroute_core.Cover.Exact x1 x2)
    | _ ->
      prerr_endline "xroute: cannot parse the XPath expressions";
      exit 1
  in
  let doc = "Check whether XPE1 covers XPE2 (Sec. 4.2)." in
  Cmd.v (Cmd.info "cover" ~doc) Term.(const run $ s1_arg $ s2_arg)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let strategy_arg =
    let doc =
      Printf.sprintf "Routing strategy: one of %s."
        (String.concat ", " Xroute_core.Broker.strategy_names)
    in
    Arg.(value & opt string "with-Adv-with-Cov" & info [ "strategy" ] ~doc)
  in
  let levels_arg =
    Arg.(value & opt int 3 & info [ "levels" ] ~doc:"Binary-tree depth (3 = 7 brokers, 7 = 127).")
  in
  let subs_arg =
    Arg.(value & opt int 100 & info [ "subs" ] ~doc:"Subscriptions per leaf subscriber.")
  in
  let docs_arg = Arg.(value & opt int 20 & info [ "docs" ] ~doc:"Documents to publish.") in
  let run dtd_spec strategy_name levels subs docs_n seed verbose =
    setup_logs verbose;
    let dtd = or_die (load_dtd dtd_spec) in
    let strategy =
      match Xroute_core.Broker.strategy_of_name strategy_name with
      | Some s -> s
      | None ->
        prerr_endline ("xroute: unknown strategy " ^ strategy_name);
        exit 1
    in
    let graph = Xroute_dtd.Dtd_graph.build dtd in
    let advs = Xroute_dtd.Dtd_paths.advertisements graph in
    let topo = Xroute_overlay.Topology.binary_tree ~levels in
    let net =
      Xroute_overlay.Net.create
        ~config:{ Xroute_overlay.Net.default_config with strategy; seed }
        topo
    in
    let prng = Xroute_support.Prng.create seed in
    let publisher = Xroute_overlay.Net.add_client net ~broker:0 in
    let leaves = Xroute_overlay.Topology.binary_tree_leaves ~levels in
    let clients = List.map (fun b -> Xroute_overlay.Net.add_client net ~broker:b) leaves in
    ignore (Xroute_overlay.Net.advertise_dtd net publisher advs);
    Xroute_overlay.Net.run net;
    let params = Xroute_workload.Xpath_gen.default_params dtd in
    List.iter
      (fun c ->
        List.iter
          (fun x -> ignore (Xroute_overlay.Net.subscribe net c x))
          (Xroute_workload.Xpath_gen.generate ~distinct:false params
             (Xroute_support.Prng.split prng) ~count:subs))
      clients;
    Xroute_overlay.Net.run net;
    (match strategy.Xroute_core.Broker.merging with
    | Xroute_core.Broker.No_merging -> ()
    | _ ->
      Xroute_overlay.Net.set_universe net
        (Xroute_dtd.Dtd_paths.sample_paths ~count:3000 ~max_depth:10
           (Xroute_support.Prng.create 5) graph);
      Xroute_overlay.Net.merge_all net);
    let documents = Xroute_workload.Workload.documents ~dtd ~count:docs_n ~seed () in
    List.iteri
      (fun i d -> ignore (Xroute_overlay.Net.publish_doc net publisher ~doc_id:i d))
      documents;
    Xroute_overlay.Net.run net;
    let traffic = Xroute_overlay.Net.traffic net in
    Printf.printf "strategy:        %s\n" strategy_name;
    Printf.printf "brokers:         %d\n" (Xroute_overlay.Topology.broker_count topo);
    Printf.printf "subscribers:     %d x %d subscriptions\n" (List.length clients) subs;
    Printf.printf "traffic:         %d messages (adv %d, sub %d, unsub %d, pub %d)\n"
      (Xroute_overlay.Net.total_traffic net)
      traffic.Xroute_overlay.Net.adv traffic.Xroute_overlay.Net.sub
      traffic.Xroute_overlay.Net.unsub traffic.Xroute_overlay.Net.pub;
    Printf.printf "routing tables:  %d PRT entries, %d SRT entries (all brokers)\n"
      (Xroute_overlay.Net.total_prt_size net)
      (Xroute_overlay.Net.total_srt_size net);
    Printf.printf "deliveries:      %d documents\n" (Xroute_overlay.Net.total_deliveries net);
    Printf.printf "mean delay:      %.3f ms\n" (Xroute_overlay.Net.mean_delivery_delay net);
    Printf.printf "false positives: %d publications dropped in-network\n"
      (Xroute_overlay.Net.dropped_publications net)
  in
  let doc = "Run a dissemination-network simulation and report the paper's metrics." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ dtd_arg $ strategy_arg $ levels_arg $ subs_arg $ docs_arg $ seed_arg
      $ verbose_arg)

(* ---------------- scenario ---------------- *)

let scenario_cmd =
  let module Scenario = Xroute_workload.Scenario in
  let spec_arg =
    let doc =
      "Scenario spec as k=v,k=v: kind (flash|diurnal|churn|fanout), clients, docs, \
       levels, xpes, batch, rounds, channels, seed, dtd. Unmentioned keys keep \
       defaults, e.g. $(b,kind=churn,clients=100000,seed=7)."
    in
    Arg.(value & opt string "" & info [ "spec" ] ~docv:"SPEC" ~doc)
  in
  let queue_arg =
    Arg.(
      value & opt string "heap"
      & info [ "queue" ] ~docv:"heap|list" ~doc:"Simulator event-queue backend.")
  in
  let differential_arg =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Run the spec on both queue backends and compare delivery ledgers, \
             decisions and fault accounting; exit 1 on any discrepancy.")
  in
  let run spec_str queue_name differential verbose =
    setup_logs verbose;
    let spec =
      match Scenario.spec_of_string spec_str with
      | Ok s -> s
      | Error msg ->
        prerr_endline ("xroute: " ^ msg);
        exit 1
    in
    let print_outcome (o : Scenario.outcome) =
      Printf.printf "scenario:       %s (seed %d, dtd %s)\n"
        (Scenario.kind_to_string o.Scenario.spec.Scenario.kind)
        o.Scenario.spec.Scenario.seed o.Scenario.spec.Scenario.dtd;
      Printf.printf "queue:          %s\n"
        (match o.Scenario.queue with `Heap -> "heap" | `List -> "list");
      Printf.printf "clients:        %d (%d subs, %d unsubs)\n"
        o.Scenario.spec.Scenario.clients o.Scenario.subs_sent o.Scenario.unsubs_sent;
      Printf.printf "published:      %d documents\n" o.Scenario.docs_published;
      Printf.printf "deliveries:     %d\n" o.Scenario.deliveries;
      Printf.printf "events:         %d (virtual clock %.3f ms)\n" o.Scenario.events
        o.Scenario.virtual_ms;
      Printf.printf "ledger digest:  %Lx\n" o.Scenario.ledger_digest;
      Printf.printf "routing tables: %d PRT, %d SRT entries\n" o.Scenario.prt_total
        o.Scenario.srt_total;
      Printf.printf "faults:         %s\n" o.Scenario.fault_line
    in
    if differential then begin
      let a, b, diffs = Scenario.differential spec in
      print_outcome a;
      print_newline ();
      print_outcome b;
      print_newline ();
      if diffs = [] then print_endline "differential: queue backends agree"
      else begin
        List.iter (fun d -> print_endline ("differential: " ^ d)) diffs;
        exit 1
      end
    end
    else begin
      let queue =
        match queue_name with
        | "heap" -> `Heap
        | "list" -> `List
        | q ->
          prerr_endline ("xroute: unknown queue backend " ^ q ^ " (want heap or list)");
          exit 1
      in
      print_outcome (Scenario.run ~queue spec)
    end
  in
  let doc =
    "Run a scale-parameterized scenario (flash crowd, diurnal, churn, fan-out) on the \
     simulator, or differentially across both event-queue backends."
  in
  Cmd.v (Cmd.info "scenario" ~doc)
    Term.(const run $ spec_arg $ queue_arg $ differential_arg $ verbose_arg)

let () =
  let doc = "XML/XPath content-based routing (ICDCS 2008 reproduction)" in
  let info = Cmd.info "xroute" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            advs_cmd;
            gen_xpath_cmd;
            gen_xml_cmd;
            match_cmd;
            cover_cmd;
            simulate_cmd;
            scenario_cmd;
          ]))
