(* Broker daemon: host one content-based XML router over TCP.

   Example 3-broker line on one machine:

     xroute_brokerd --id 0 --port 7000 --neighbor 1:127.0.0.1:7001 &
     xroute_brokerd --id 1 --port 7001 --neighbor 0:127.0.0.1:7000 \
                    --neighbor 2:127.0.0.1:7002 &
     xroute_brokerd --id 2 --port 7002 --neighbor 1:127.0.0.1:7001 &

   Clients connect with xroute_client (or any implementation of the
   line protocol documented in Xroute_daemon.Daemon). *)

open Cmdliner

let parse_neighbor s =
  match String.split_on_char ':' s with
  | [ id; host; port ] -> (
    match (int_of_string_opt id, int_of_string_opt port) with
    | Some id, Some port -> Ok (id, (host, port))
    | _ -> Error (`Msg (Printf.sprintf "bad neighbor %S (want id:host:port)" s)))
  | _ -> Error (`Msg (Printf.sprintf "bad neighbor %S (want id:host:port)" s))

let neighbor_conv = Arg.conv (parse_neighbor, fun ppf (id, (h, p)) -> Format.fprintf ppf "%d:%s:%d" id h p)

let run id port neighbors strategy_name no_srt_index match_engine_name flight_dir domains no_telemetry verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
  let match_engine =
    match Xroute_core.Rtable.Prt.match_engine_of_string match_engine_name with
    | Some e -> e
    | None ->
      prerr_endline ("xroute_brokerd: unknown match engine " ^ match_engine_name ^ " (want nfa or tree)");
      exit 1
  in
  let strategy =
    match Xroute_core.Broker.strategy_of_name strategy_name with
    | Some s -> { s with Xroute_core.Broker.srt_index = not no_srt_index; match_engine }
    | None ->
      prerr_endline ("xroute_brokerd: unknown strategy " ^ strategy_name);
      exit 1
  in
  let daemon =
    match
      Xroute_daemon.Daemon.create ~strategy ?flight_dir ~domains ~telemetry:(not no_telemetry)
        ~id ~port ~neighbors ()
    with
    | d -> d
    | exception Invalid_argument msg ->
      prerr_endline ("xroute_brokerd: " ^ msg);
      exit 1
  in
  Printf.printf "broker %d listening on port %d (strategy %s, %d domain%s)\n%!" id
    (Xroute_daemon.Daemon.port daemon) strategy_name domains (if domains = 1 then "" else "s");
  let stop _ = Xroute_daemon.Daemon.request_stop daemon in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Xroute_daemon.Daemon.run daemon

let cmd =
  let id_arg = Arg.(required & opt (some int) None & info [ "id" ] ~doc:"Broker id (unique).") in
  let port_arg = Arg.(value & opt int 0 & info [ "port" ] ~doc:"Listening port (0 = pick).") in
  let neighbors_arg =
    Arg.(value & opt_all neighbor_conv [] & info [ "neighbor" ] ~docv:"ID:HOST:PORT"
           ~doc:"A neighbor broker (repeatable).")
  in
  let strategy_arg =
    Arg.(value & opt string "with-Adv-with-Cov" & info [ "strategy" ]
           ~doc:(Printf.sprintf "Routing strategy: %s."
                   (String.concat ", " Xroute_core.Broker.strategy_names)))
  in
  let no_srt_index_arg =
    Arg.(value & flag & info [ "no-srt-index" ]
           ~doc:"Disable the SRT root-element index (flat list scan; same routing \
                 decisions, more match operations — for benchmarking).")
  in
  let match_engine_arg =
    Arg.(value & opt string "nfa" & info [ "match-engine" ] ~docv:"ENGINE"
           ~doc:"PRT publication matcher: $(b,nfa) (shared-prefix automaton, the \
                 default) or $(b,tree) (covering-tree scan). Identical routing \
                 decisions either way — the opt-out exists for differential \
                 testing and benchmarking.")
  in
  let flight_dir_arg =
    Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Enable the flight recorder: dump spans, metrics and rates to \
                 $(docv) when an AUDIT reports an error-severity finding.")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Shard publication matching across $(docv) worker domains (default 1 = \
                 sequential). Routing decisions and emitted bytes are identical to the \
                 sequential engine; requires the nfa match engine and no trail routing.")
  in
  let no_telemetry_arg =
    Arg.(value & flag & info [ "no-telemetry" ]
           ~doc:"Disable the per-link health summary (the FEDSTATS data source): skips \
                 every health-recording call on the hot path — for measuring the \
                 telemetry overhead (BENCH_10). The broker still answers FEDSTATS, \
                 with an empty summary.")
  in
  let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.") in
  Cmd.v
    (Cmd.info "xroute_brokerd" ~version:"1.0.0" ~doc:"Content-based XML router daemon")
    Term.(const run $ id_arg $ port_arg $ neighbors_arg $ strategy_arg $ no_srt_index_arg
          $ match_engine_arg $ flight_dir_arg $ domains_arg $ no_telemetry_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
