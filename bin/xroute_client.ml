(* Interactive client for the broker daemon: subscribe, advertise and
   publish from the command line.

     xroute_client --port 7002 --id 42 subscribe '//section/para'
     xroute_client --port 7002 --id 42 listen '//section/para'
     xroute_client --port 7000 --id 7 advertise-dtd book
     xroute_client --port 7000 --id 7 publish doc.xml
     xroute_client --port 7000 stats --format json *)

open Cmdliner

let connect_args =
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Broker host.") in
  let port = Arg.(required & opt (some int) None & info [ "port" ] ~doc:"Broker port.") in
  let id = Arg.(value & opt int (Unix.getpid ()) & info [ "id" ] ~doc:"Client id.") in
  Term.(const (fun h p i -> (h, p, i)) $ host $ port $ id)

(* Connection failures — at dial time or mid-session once the reconnect
   budget runs out — surface as one clean diagnostic line and exit 1,
   never as a raw Unix_error backtrace. *)
let with_client (host, port, id) f =
  match Xroute_daemon.Client.connect ~client_id:id ~host ~port with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "xroute_client: cannot reach broker %s:%d (%s)\n" host port
      (Unix.error_message e);
    exit 1
  | c -> (
    try Fun.protect ~finally:(fun () -> Xroute_daemon.Client.close c) (fun () -> f c)
    with Xroute_daemon.Client.Unavailable reason ->
      Printf.eprintf "xroute_client: %s\n" reason;
      exit 1)

let subscribe_cmd =
  let xpe_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"XPE") in
  let run conn xpe_s =
    match Xroute_xpath.Xpe_parser.parse_opt xpe_s with
    | None ->
      prerr_endline "xroute_client: cannot parse the XPE";
      exit 1
    | Some xpe ->
      with_client conn (fun c ->
          let id = Xroute_daemon.Client.subscribe c xpe in
          Printf.printf "subscribed as %d.%d\n" id.Xroute_core.Message.origin
            id.Xroute_core.Message.seq)
  in
  Cmd.v (Cmd.info "subscribe" ~doc:"Register an XPath subscription and exit.")
    Term.(const run $ connect_args $ xpe_arg)

let listen_cmd =
  let xpe_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"XPE") in
  let run conn xpe_s =
    match Xroute_xpath.Xpe_parser.parse_opt xpe_s with
    | None ->
      prerr_endline "xroute_client: cannot parse the XPE";
      exit 1
    | Some xpe ->
      with_client conn (fun c ->
          ignore (Xroute_daemon.Client.subscribe c xpe);
          Printf.printf "listening for %s (ctrl-c to stop)\n%!" xpe_s;
          let rec loop () =
            (match Xroute_daemon.Client.recv ~timeout:3600.0 c with
            | Some (Xroute_core.Message.Publish { pub; _ }) ->
              Printf.printf "doc %d: %s\n%!" pub.doc_id
                (Xroute_xml.Xml_paths.publication_to_string pub)
            | Some _ | None -> ());
            loop ()
          in
          loop ())
  in
  Cmd.v (Cmd.info "listen" ~doc:"Subscribe and print notifications forever.")
    Term.(const run $ connect_args $ xpe_arg)

let advertise_dtd_cmd =
  let dtd_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DTD") in
  let run conn dtd_spec =
    match Xroute_dtd.Dtd_samples.by_name dtd_spec with
    | None ->
      prerr_endline ("xroute_client: unknown sample DTD " ^ dtd_spec);
      exit 1
    | Some dtd ->
      with_client conn (fun c ->
          let advs = Xroute_dtd.Dtd_paths.advertisements (Xroute_dtd.Dtd_graph.build dtd) in
          List.iter (fun a -> ignore (Xroute_daemon.Client.advertise c a)) advs;
          Printf.printf "advertised %d patterns from %s\n" (List.length advs) dtd_spec)
  in
  Cmd.v (Cmd.info "advertise-dtd" ~doc:"Advertise every pattern of a sample DTD.")
    Term.(const run $ connect_args $ dtd_arg)

let publish_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.xml") in
  let doc_id_arg = Arg.(value & opt int 1 & info [ "doc-id" ] ~doc:"Document id.") in
  let run conn file doc_id =
    let ic = open_in_bin file in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Xroute_xml.Xml_parser.parse_opt content with
    | None ->
      prerr_endline "xroute_client: cannot parse the document";
      exit 1
    | Some doc ->
      with_client conn (fun c ->
          let n = Xroute_daemon.Client.publish_doc c ~doc_id doc in
          Printf.printf "published doc %d as %d path publications\n" doc_id n)
  in
  Cmd.v (Cmd.info "publish" ~doc:"Publish an XML document.")
    Term.(const run $ connect_args $ file_arg $ doc_id_arg)

let stats_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
      & info [ "format" ] ~docv:"FMT" ~doc:"Exposition format: $(b,prom) or $(b,json).")
  in
  let run conn format =
    with_client conn (fun c ->
        match Xroute_daemon.Client.stats ~format c with
        | Some body -> print_string body
        | None ->
          prerr_endline "xroute_client: no STATS reply from the daemon";
          exit 1)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Dump the daemon's metrics registry (Prometheus text or JSON).")
    Term.(const run $ connect_args $ format_arg)

let top_cmd =
  let ttl_arg =
    Arg.(
      value & opt int 8
      & info [ "ttl" ] ~docv:"N"
          ~doc:"Hop bound for the federation pull (how far past the connected broker to \
                reach).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the overlay view as JSON.")
  in
  let run conn ttl json =
    with_client conn (fun c ->
        match Xroute_daemon.Client.fedstats ~ttl c with
        | Some view ->
          if json then print_endline (Xroute_obs.Health.view_to_json view)
          else print_string (Xroute_obs.Health.render_top view)
        | None ->
          prerr_endline "xroute_client: no FEDSTATS reply from the daemon";
          exit 1)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Single-shot overlay health dashboard: pull the federated per-broker \
             summaries (hop-latency/queue/backlog quantiles, per-link rates) via \
             FEDSTATS and render them.")
    Term.(const run $ connect_args $ ttl_arg $ json_arg)

let trace_cmd =
  let key_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"TRACE-ID") in
  let host_arg = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Broker host.") in
  let ports_arg =
    Arg.(non_empty & opt_all int [] & info [ "port" ] ~docv:"PORT"
           ~doc:"A broker port (repeatable — spans fetched from every daemon are merged \
                 into one cross-broker trace).")
  in
  let id_arg = Arg.(value & opt int (Unix.getpid ()) & info [ "id" ] ~doc:"Client id.") in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("waterfall", `Waterfall); ("chrome", `Chrome) ]) `Waterfall
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output: $(b,waterfall) (indented text) or $(b,chrome) (trace-event JSON \
                for Perfetto / chrome://tracing).")
  in
  let run key host ports id format =
    let spans =
      List.concat_map
        (fun port ->
          let c = Xroute_daemon.Client.connect ~client_id:id ~host ~port in
          Fun.protect
            ~finally:(fun () -> Xroute_daemon.Client.close c)
            (fun () ->
              match Xroute_daemon.Client.trace c key with
              | Some spans -> spans
              | None ->
                Printf.eprintf "xroute_client: no TRACE reply from port %d\n" port;
                []))
        ports
    in
    if spans = [] then begin
      prerr_endline "xroute_client: no spans for that trace";
      exit 1
    end;
    match format with
    | `Waterfall -> print_string (Xroute_obs.Span.waterfall spans)
    | `Chrome -> print_endline (Xroute_obs.Span.to_chrome spans)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Fetch one publication's causal spans from the daemons and render the \
             hop-by-hop latency decomposition.")
    Term.(const run $ key_arg $ host_arg $ ports_arg $ id_arg $ format_arg)

let () =
  let info = Cmd.info "xroute_client" ~version:"1.0.0" ~doc:"Client for the XML router daemon" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            subscribe_cmd;
            listen_cmd;
            advertise_dtd_cmd;
            publish_cmd;
            stats_cmd;
            top_cmd;
            trace_cmd;
          ]))
