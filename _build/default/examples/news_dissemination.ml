(* News dissemination over a 127-broker overlay with the NITF-like DTD:
   the setting of the paper's large-scale experiments. One news agency
   publishes; subscribers across the edge register overlapping interests;
   the example reports how covering and merging compact the routing state
   and what the traffic looks like under two routing strategies.

   Run with: dune exec examples/news_dissemination.exe *)

open Xroute_overlay

let run strategy_name =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.nitf in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let strategy = Option.get (Xroute_core.Broker.strategy_of_name strategy_name) in
  let topo = Topology.binary_tree ~levels:7 in
  let net = Net.create ~config:{ Net.default_config with Net.strategy } topo in
  let agency = Net.add_client net ~broker:0 in
  ignore (Net.advertise_dtd net agency advs);
  Net.run net;
  (* Subscribers at every fourth leaf, each with a bundle of interests
     generated from the DTD (high-overlap population). *)
  let prng = Xroute_support.Prng.create 2008 in
  let params = Xroute_workload.Workload.set_a_params dtd in
  let leaves = Topology.binary_tree_leaves ~levels:7 in
  let subscribers =
    List.filteri (fun i _ -> i mod 4 = 0) leaves
    |> List.map (fun b ->
           let c = Net.add_client net ~broker:b in
           List.iter
             (fun x -> ignore (Net.subscribe net c x))
             (Xroute_workload.Xpath_gen.generate ~distinct:false params
                (Xroute_support.Prng.split prng) ~count:50);
           c)
  in
  Net.run net;
  (* Publish a morning's worth of wire stories. *)
  let docs = Xroute_workload.Workload.documents ~dtd ~count:20 ~seed:630 () in
  List.iteri (fun i d -> ignore (Net.publish_doc net agency ~doc_id:i d)) docs;
  Net.run net;
  let delivered =
    List.fold_left (fun acc c -> acc + Hashtbl.length c.Net.delivered) 0 subscribers
  in
  Printf.printf "%-22s traffic %7d msgs | PRT total %6d | deliveries %4d | delay %6.3f ms\n%!"
    strategy_name (Net.total_traffic net) (Net.total_prt_size net) delivered
    (Net.mean_delivery_delay net);
  (strategy_name, Net.total_traffic net, delivered)

let () =
  Printf.printf "News dissemination, 127 brokers, NITF-like DTD\n\n";
  let results = List.map run [ "no-Adv-no-Cov"; "with-Adv-with-Cov" ] in
  match results with
  | [ (_, t_base, d_base); (_, t_opt, d_opt) ] ->
    Printf.printf "\nadvertisements + covering carry the same %d deliveries with %.1f%% less traffic\n"
      d_opt
      (100.0 *. float_of_int (t_base - t_opt) /. float_of_int t_base);
    assert (d_base = d_opt);
    assert (t_opt < t_base);
    print_endline "news_dissemination OK"
  | _ -> assert false
