(* Protein Sequence Database feed: the paper's non-recursive workload.
   This example works at the library level rather than the network
   level — it derives the PSD advertisement set, shows matching and
   covering decisions on concrete expressions (comparing the paper's
   algorithms with the exact automata engine), and runs a merging pass
   with its imperfect-degree accounting.

   Run with: dune exec examples/protein_feed.exe *)

open Xroute_core
open Xroute_xpath

let xp = Xpe_parser.parse

let () =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.psd in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  Printf.printf "PSD DTD: %d elements, recursive: %b, %d advertisements\n\n"
    (Xroute_dtd.Dtd_ast.element_count dtd)
    (Xroute_dtd.Dtd_graph.is_recursive graph)
    (List.length advs);

  (* 1. Matching: where would these laboratory subscriptions be routed? *)
  let subscriptions =
    [
      "/ProteinDatabase/ProteinEntry/protein/name";
      "//reference/refinfo/authors/author";
      "/ProteinDatabase/*/sequence";
      "keywords/keyword";
      "//xref/db";
    ]
  in
  Printf.printf "subscription -> overlapping advertisements (paper engine = exact engine)\n";
  List.iter
    (fun s ->
      let xpe = xp s in
      let hits = List.filter (Adv_match.overlaps_paper xpe) advs in
      let exact_hits = List.filter (Adv_match.overlaps_exact xpe) advs in
      assert (List.length hits = List.length exact_hits);
      Printf.printf "  %-46s %d advs\n" s (List.length hits))
    subscriptions;

  (* 2. Covering: the relations that compact routing tables. *)
  Printf.printf "\ncovering relations (Sec. 4.2):\n";
  List.iter
    (fun (s1, s2) ->
      Printf.printf "  %-34s covers %-40s ? %b\n" s1 s2 (Cover.covers (xp s1) (xp s2)))
    [
      ("/ProteinDatabase/ProteinEntry", "/ProteinDatabase/ProteinEntry/protein");
      ("//refinfo//author", "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author");
      ("/*/ProteinEntry/protein/name", "/ProteinDatabase/ProteinEntry/protein/name");
      ("/ProteinDatabase/*/sequence", "/ProteinDatabase/ProteinEntry/summary");
    ];

  (* 3. A subscription tree compacting a laboratory's interest set. *)
  let prng = Xroute_support.Prng.create 17 in
  let params = Xroute_workload.Workload.set_a_params dtd in
  let lab_interests = Xroute_workload.Xpath_gen.generate params prng ~count:800 in
  let tree : int Sub_tree.t = Sub_tree.create () in
  List.iteri (fun i x -> ignore (Sub_tree.insert tree x i)) lab_interests;
  let maximal = Sub_tree.maximal tree in
  Printf.printf "\n%d lab subscriptions -> %d forwarded after covering (%.0f%% compaction)\n"
    (List.length lab_interests) (List.length maximal)
    (100.0
    *. float_of_int (List.length lab_interests - List.length maximal)
    /. float_of_int (List.length lab_interests));

  (* 4. Merging with DTD-derived imperfect degrees. *)
  let universe = Xroute_dtd.Dtd_paths.enumerate_paths ~max_depth:10 ~max_count:20_000 graph in
  let forwarded = List.map Sub_tree.node_xpe maximal in
  let perfect, _ = Merge.merge_set ~max_degree:0.0 ~universe forwarded in
  let imperfect, _ = Merge.merge_set ~max_degree:0.1 ~universe forwarded in
  Printf.printf "perfect mergers: %d, imperfect (D<=0.1): %d\n" (List.length perfect)
    (List.length imperfect);
  List.iteri
    (fun i (m : Merge.merger) ->
      if i < 3 then
        Printf.printf "  e.g. %s <- %d subscriptions (degree %.3f)\n" (Xpe.to_string m.xpe)
          (List.length m.originals) m.degree)
    imperfect;

  (* 5. Every merger is verified exactly: no subscriber loses documents. *)
  List.iter
    (fun (m : Merge.merger) ->
      List.iter
        (fun o -> assert (Xroute_automata.Lang.xpe_contains m.xpe o))
        m.originals)
    (perfect @ imperfect);
  print_endline "\nprotein_feed OK"
