(* The paper's motivating scenario (Sec. 1): a globally operating
   insurance company links its branch offices with an overlay of
   content-based XML routers. Claims, bids and requests-for-proposal are
   submitted anywhere and routed to currently-online experts whose
   interests — expressed as XPath filters over the claim structure,
   including attribute constraints like incident kind and language — the
   documents match.

   Run with: dune exec examples/insurance_claims.exe *)

open Xroute_overlay

let xp = Xroute_xpath.Xpe_parser.parse

let claim ~kind ~urgency ~language ~city =
  Xroute_xml.Xml_parser.parse
    (Printf.sprintf
       {|<insurance><claim urgency=%S>
           <claimant><person><name>Client</name><language>%s</language></person>
                     <contact><email>client@example.com</email></contact></claimant>
           <policy><holder>ACME</holder><coverage>collision</coverage></policy>
           <incident kind=%S><date>2008-06-17</date>
             <location><city>%s</city><country>CA</country></location>
             <description>...</description>
             <damage><item>bumper</item><amount>1200</amount></damage>
           </incident>
         </claim></insurance>|}
       urgency language kind city)

let () =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.insurance in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  Printf.printf "insurance DTD: %d elements -> %d advertisements\n"
    (Xroute_dtd.Dtd_ast.element_count dtd)
    (List.length advs);

  (* Brokers: headquarters (0) plus regional offices; the intake portal
     publishes at headquarters, experts sit at the edges. *)
  let topo = Topology.binary_tree ~levels:3 in
  let net = Net.create topo in
  let intake = Net.add_client net ~broker:0 in
  ignore (Net.advertise_dtd net intake advs);
  Net.run net;

  (* Experts register their specialities as XPath filters. *)
  let experts =
    [
      ("auto expert (Toronto office)", 3, "/insurance/claim/incident[@kind='auto']");
      ("home expert (Montreal office)", 4, "/insurance/claim/incident[@kind='home']");
      ("urgent-claims manager", 5, "/insurance/claim[@urgency='high']");
      ("french-speaking adjuster", 6, "//person/language"); (* any doc naming a language *)
    ]
  in
  let expert_clients =
    List.map
      (fun (name, broker, filter) ->
        let c = Net.add_client net ~broker in
        ignore (Net.subscribe net c (xp filter));
        (name, filter, c))
      experts
  in
  Net.run net;

  (* Claims come in from the field. *)
  let claims =
    [
      (1, claim ~kind:"auto" ~urgency:"normal" ~language:"fr" ~city:"Quebec");
      (2, claim ~kind:"home" ~urgency:"high" ~language:"en" ~city:"Toronto");
      (3, claim ~kind:"travel" ~urgency:"normal" ~language:"en" ~city:"Ottawa");
    ]
  in
  List.iter (fun (doc_id, doc) -> ignore (Net.publish_doc net intake ~doc_id doc)) claims;
  Net.run net;

  Printf.printf "\n%-32s %-44s %s\n" "expert" "filter" "claims received";
  List.iter
    (fun (name, filter, c) ->
      let docs =
        List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) c.Net.delivered [])
      in
      Printf.printf "%-32s %-44s %s\n" name filter
        (String.concat ", " (List.map string_of_int docs)))
    expert_clients;
  Printf.printf "\nnetwork: %d messages total, %d in-network false positives\n"
    (Net.total_traffic net) (Net.dropped_publications net);

  (* Sanity: routing semantics. *)
  let find name =
    let _, _, c = List.find (fun (n, _, _) -> n = name) expert_clients in
    List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) c.Net.delivered [])
  in
  assert (find "auto expert (Toronto office)" = [ 1 ]);
  assert (find "home expert (Montreal office)" = [ 2 ]);
  assert (find "urgent-claims manager" = [ 2 ]);
  assert (find "french-speaking adjuster" = [ 1; 2; 3 ]);
  print_endline "insurance_claims OK"
