(* Quickstart: the smallest end-to-end use of the library.

   Build a 7-broker overlay, derive advertisements from a DTD, register
   XPath subscriptions at the leaves, publish a document at the root and
   watch it arrive.

   Run with: dune exec examples/quickstart.exe *)

open Xroute_overlay

let () =
  (* 1. A DTD describes what the publisher will emit; its advertisement
        set is derived automatically (Sec. 3.1 of the paper). *)
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  Printf.printf "The book DTD yields %d advertisements, e.g. %s\n" (List.length advs)
    (Xroute_xpath.Adv.to_string (List.hd advs));

  (* 2. A complete binary tree of 7 content-based routers. *)
  let topo = Topology.binary_tree ~levels:3 in
  let net = Net.create topo in

  (* 3. A publisher at the root broker announces the DTD. *)
  let publisher = Net.add_client net ~broker:0 in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;

  (* 4. Subscribers at leaf brokers register XPath expressions. *)
  let alice = Net.add_client net ~broker:3 in
  let bob = Net.add_client net ~broker:6 in
  ignore (Net.subscribe net alice (Xroute_xpath.Xpe_parser.parse "/book/title"));
  ignore (Net.subscribe net bob (Xroute_xpath.Xpe_parser.parse "//section/para"));
  Net.run net;

  (* 5. The publisher emits documents; the network routes each
        root-to-leaf path towards matching subscriptions only. *)
  let with_para =
    Xroute_xml.Xml_parser.parse
      "<book><title>Routing XML</title><author><name>G. Li</name></author>\
       <chapter><title>Intro</title><section><title>1.1</title><para>Hello.</para></section>\
       </chapter></book>"
  in
  let without_para =
    Xroute_xml.Xml_parser.parse
      "<book><title>Covering</title><author><name>S. Hou</name></author>\
       <chapter><title>Intro</title><section><title>2.1</title></section></chapter></book>"
  in
  ignore (Net.publish_doc net publisher ~doc_id:1 with_para);
  ignore (Net.publish_doc net publisher ~doc_id:2 without_para);
  Net.run net;

  (* 6. Check what arrived. *)
  let received c = List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) c.Net.delivered []) in
  Printf.printf "alice (/book/title)    received docs: %s\n"
    (String.concat ", " (List.map string_of_int (received alice)));
  Printf.printf "bob   (//section/para) received docs: %s\n"
    (String.concat ", " (List.map string_of_int (received bob)));
  Printf.printf "network traffic: %d messages, mean delay %.3f ms\n" (Net.total_traffic net)
    (Net.mean_delivery_delay net);
  assert (received alice = [ 1; 2 ]);
  assert (received bob = [ 1 ]);
  print_endline "quickstart OK"
