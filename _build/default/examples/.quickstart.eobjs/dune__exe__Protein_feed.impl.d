examples/protein_feed.ml: Adv_match Cover Lazy List Merge Printf Sub_tree Xpe Xpe_parser Xroute_automata Xroute_core Xroute_dtd Xroute_support Xroute_workload Xroute_xpath
