examples/protein_feed.mli:
