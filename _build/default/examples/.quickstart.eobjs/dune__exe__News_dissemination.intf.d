examples/news_dissemination.mli:
