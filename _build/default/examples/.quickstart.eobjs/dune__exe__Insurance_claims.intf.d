examples/insurance_claims.mli:
