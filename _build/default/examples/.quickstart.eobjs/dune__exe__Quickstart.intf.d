examples/quickstart.mli:
