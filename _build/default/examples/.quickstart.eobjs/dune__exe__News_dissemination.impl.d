examples/news_dissemination.ml: Hashtbl Lazy List Net Option Printf Topology Xroute_core Xroute_dtd Xroute_overlay Xroute_support Xroute_workload
