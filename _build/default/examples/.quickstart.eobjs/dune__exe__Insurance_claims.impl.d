examples/insurance_claims.ml: Hashtbl Lazy List Net Printf String Topology Xroute_dtd Xroute_overlay Xroute_xml Xroute_xpath
