bin/xroute_client.ml: Arg Cmd Cmdliner Fun List Printf Term Unix Xroute_core Xroute_daemon Xroute_dtd Xroute_xml Xroute_xpath
