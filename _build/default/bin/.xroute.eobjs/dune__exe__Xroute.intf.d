bin/xroute.mli:
