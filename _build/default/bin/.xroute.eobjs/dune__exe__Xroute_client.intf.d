bin/xroute_client.mli:
