bin/xroute.ml: Arg Cmd Cmdliner Fmt_tty List Logs Printf String Sys Term Xroute_core Xroute_dtd Xroute_overlay Xroute_support Xroute_workload Xroute_xml Xroute_xpath
