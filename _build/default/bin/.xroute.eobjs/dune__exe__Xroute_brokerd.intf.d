bin/xroute_brokerd.mli:
