bin/xroute_brokerd.ml: Arg Cmd Cmdliner Fmt_tty Format Logs Printf String Sys Term Xroute_core Xroute_daemon
