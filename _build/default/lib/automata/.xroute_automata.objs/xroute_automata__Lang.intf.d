lib/automata/lang.mli: Xroute_xpath
