lib/automata/lang.ml: Hashtbl List Nfa Queue Regex Set String Xroute_xpath
