lib/automata/regex.mli: Format Xroute_xpath
