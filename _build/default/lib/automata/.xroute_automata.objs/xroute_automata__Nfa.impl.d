lib/automata/nfa.ml: Array Int List Queue Regex Set String
