lib/automata/regex.ml: Array Format List Set String Xroute_xpath
