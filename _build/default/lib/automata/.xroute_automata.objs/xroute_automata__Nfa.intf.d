lib/automata/nfa.mli: Regex Set
