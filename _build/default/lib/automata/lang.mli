(** Exact decision procedures on the path languages of XPEs and
    advertisements (at the element-name level; attribute predicates are
    invisible here). *)

(** Exact subscription/advertisement overlap: [P(adv) ∩ P(xpe) ≠ ∅]. *)
val xpe_overlaps_adv : Xroute_xpath.Xpe.t -> Xroute_xpath.Adv.t -> bool

(** Exact XPE containment: [P(s1) ⊇ P(s2)]. *)
val xpe_contains : Xroute_xpath.Xpe.t -> Xroute_xpath.Xpe.t -> bool

(** Exact advertisement containment: [P(a1) ⊇ P(a2)]. *)
val adv_contains : Xroute_xpath.Adv.t -> Xroute_xpath.Adv.t -> bool

(** Do two XPE languages overlap? *)
val xpe_overlaps : Xroute_xpath.Xpe.t -> Xroute_xpath.Xpe.t -> bool

(** Language equivalence of two XPEs. *)
val xpe_equiv : Xroute_xpath.Xpe.t -> Xroute_xpath.Xpe.t -> bool
