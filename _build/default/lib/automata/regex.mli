(** Regular expressions over element names with a wildcard letter: the
    shared syntax from which XPE and advertisement automata are built.
    [Any] matches every element name (the alphabet of XML names is
    treated symbolically). *)

type label = Exact of string | Any

type t =
  | Eps  (** the empty string *)
  | Sym of label
  | Seq of t list
  | Alt of t list
  | Star of t
  | Plus of t

val eps : t
val sym : label -> t
val exact : string -> t
val any : t

(** Smart constructors; [seq []] is {!eps}.
    @raise Invalid_argument on [alt []]. *)
val seq : t list -> t

val alt : t list -> t
val star : t -> t
val plus : t -> t

(** Element names mentioned, sorted and distinct. *)
val names : t -> string list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Path language of an XPE under publication-matching semantics
    (anchoring, gaps for [//], trailing gap for the prefix rule). *)
val of_xpe : Xroute_xpath.Xpe.t -> t

(** Path language of an advertisement (full-length match). *)
val of_adv : Xroute_xpath.Adv.t -> t

(** A fixed path as a literal sequence. *)
val of_path : string array -> t
