(* Exact decision procedures on the path languages of XPEs and
   advertisements.

   [overlap] (intersection non-emptiness) and [contains] (language
   inclusion) are the semantic ground truth against which the paper's
   matching and covering algorithms are property-tested; [contains] also
   powers the optional exact covering engine ablated in the benchmarks.

   Inclusion is decided by determinizing over the finite alphabet of
   names mentioned by either side plus one representative "fresh" letter
   standing for every other name — wildcard edges treat all letters
   alike, so one representative suffices. *)

type letter = Name of string | Fresh

let letter_name = function Name n -> n | Fresh -> "\x00fresh\x00"

(* Deterministic simulation: the set of NFA states after reading a
   letter. *)
let dstep nfa set letter = Nfa.closure nfa (Nfa.step nfa set (letter_name letter))

(* L(a) ⊇ L(b): search for a word accepted by [b] but not by [a] via BFS
   over pairs (subset of a's states, subset of b's states). *)
let nfa_contains ~alphabet a b =
  let module Key = struct
    type t = Nfa.Int_set.t * Nfa.Int_set.t

    let compare (x1, y1) (x2, y2) =
      match Nfa.Int_set.compare x1 x2 with 0 -> Nfa.Int_set.compare y1 y2 | c -> c
  end in
  let module Seen = Set.Make (Key) in
  let seen = ref Seen.empty in
  let queue = Queue.create () in
  let push pair =
    if not (Seen.mem pair !seen) then begin
      seen := Seen.add pair !seen;
      Queue.push pair queue
    end
  in
  push (Nfa.start_set a, Nfa.start_set b);
  let exception Counterexample in
  try
    while not (Queue.is_empty queue) do
      let sa, sb = Queue.pop queue in
      if Nfa.is_accepting b sb && not (Nfa.is_accepting a sa) then raise Counterexample;
      if not (Nfa.Int_set.is_empty sb) then
        List.iter
          (fun letter ->
            let sb' = dstep b sb letter in
            if not (Nfa.Int_set.is_empty sb') then push (dstep a sa letter, sb'))
          alphabet
    done;
    true
  with Counterexample -> false

let alphabet_of regexes =
  let names = List.concat_map Regex.names regexes in
  let module S = Set.Make (String) in
  let distinct = S.elements (List.fold_left (fun acc n -> S.add n acc) S.empty names) in
  Fresh :: List.map (fun n -> Name n) distinct

(* ---------------- Cached compilation ---------------- *)

(* XPE/advertisement automata are requested repeatedly by the routing
   layer; memoize by printed form. *)
let xpe_cache : (string, Nfa.t) Hashtbl.t = Hashtbl.create 256
let adv_cache : (string, Nfa.t) Hashtbl.t = Hashtbl.create 256

let nfa_of_xpe xpe =
  let key = Xroute_xpath.Xpe.to_string xpe in
  match Hashtbl.find_opt xpe_cache key with
  | Some nfa -> nfa
  | None ->
    let nfa = Nfa.of_regex (Regex.of_xpe xpe) in
    Hashtbl.replace xpe_cache key nfa;
    nfa

let nfa_of_adv adv =
  let key = Xroute_xpath.Adv.to_string adv in
  match Hashtbl.find_opt adv_cache key with
  | Some nfa -> nfa
  | None ->
    let nfa = Nfa.of_regex (Regex.of_adv adv) in
    Hashtbl.replace adv_cache key nfa;
    nfa

(* ---------------- Public decisions ---------------- *)

(* P(adv) ∩ P(xpe) ≠ ∅ — the exact version of the paper's
   subscription/advertisement matching. *)
let xpe_overlaps_adv xpe adv = Nfa.intersect_nonempty (nfa_of_xpe xpe) (nfa_of_adv adv)

(* P(s1) ⊇ P(s2) at the element-name level — exact XPE containment
   (attribute predicates are ignored; callers must handle them). *)
let xpe_contains s1 s2 =
  let r1 = Regex.of_xpe s1 and r2 = Regex.of_xpe s2 in
  nfa_contains ~alphabet:(alphabet_of [ r1; r2 ]) (Nfa.of_regex r1) (Nfa.of_regex r2)

(* P(a1) ⊇ P(a2) for advertisements. *)
let adv_contains a1 a2 =
  let r1 = Regex.of_adv a1 and r2 = Regex.of_adv a2 in
  nfa_contains ~alphabet:(alphabet_of [ r1; r2 ]) (Nfa.of_regex r1) (Nfa.of_regex r2)

(* Do two XPE languages overlap? *)
let xpe_overlaps s1 s2 = Nfa.intersect_nonempty (nfa_of_xpe s1) (nfa_of_xpe s2)

(* Language equivalence of two XPEs. *)
let xpe_equiv s1 s2 = xpe_contains s1 s2 && xpe_contains s2 s1
