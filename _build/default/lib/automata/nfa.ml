(* Thompson-style NFA over the symbolic alphabet of element names.

   States are integers; transitions carry a {!Regex.label} ([Exact name]
   or [Any]); epsilon edges come from the construction. The automata here
   are tiny (XPEs and advertisements have around ten steps), so adjacency
   lists and set-based closures are plenty fast. *)

module Int_set = Set.Make (Int)

type t = {
  state_count : int;
  start : int;
  accept : int;
  (* edges.(q) = outgoing labelled transitions of q *)
  edges : (Regex.label * int) list array;
  epsilons : int list array;
}

(* Builder with mutable accumulation. *)
type builder = {
  mutable next : int;
  mutable trans : (int * Regex.label * int) list;
  mutable eps : (int * int) list;
}

let new_state b =
  let s = b.next in
  b.next <- s + 1;
  s

let add_edge b q label q' = b.trans <- (q, label, q') :: b.trans
let add_eps b q q' = b.eps <- (q, q') :: b.eps

(* Compile [regex] between a fresh pair of (entry, exit) states. *)
let rec compile b regex =
  match regex with
  | Regex.Eps ->
    let entry = new_state b and exit = new_state b in
    add_eps b entry exit;
    (entry, exit)
  | Regex.Sym label ->
    let entry = new_state b and exit = new_state b in
    add_edge b entry label exit;
    (entry, exit)
  | Regex.Seq rs ->
    let entry = new_state b in
    let final =
      List.fold_left
        (fun prev r ->
          let e, x = compile b r in
          add_eps b prev e;
          x)
        entry rs
    in
    (entry, final)
  | Regex.Alt rs ->
    let entry = new_state b and exit = new_state b in
    List.iter
      (fun r ->
        let e, x = compile b r in
        add_eps b entry e;
        add_eps b x exit)
      rs;
    (entry, exit)
  | Regex.Star r ->
    let entry = new_state b and exit = new_state b in
    let e, x = compile b r in
    add_eps b entry e;
    add_eps b x exit;
    add_eps b entry exit;
    add_eps b x e;
    (entry, exit)
  | Regex.Plus r ->
    let e, x = compile b r in
    add_eps b x e;
    (e, x)

let of_regex regex =
  let b = { next = 0; trans = []; eps = [] } in
  let start, accept = compile b regex in
  let edges = Array.make b.next [] in
  List.iter (fun (q, label, q') -> edges.(q) <- (label, q') :: edges.(q)) b.trans;
  let epsilons = Array.make b.next [] in
  List.iter (fun (q, q') -> epsilons.(q) <- q' :: epsilons.(q)) b.eps;
  { state_count = b.next; start; accept; edges; epsilons }

let state_count t = t.state_count

(* Epsilon closure of a state set. *)
let closure t set =
  let rec go frontier acc =
    match frontier with
    | [] -> acc
    | q :: rest ->
      let nexts = List.filter (fun q' -> not (Int_set.mem q' acc)) t.epsilons.(q) in
      go (nexts @ rest) (List.fold_left (fun acc q' -> Int_set.add q' acc) acc nexts)
  in
  go (Int_set.elements set) set

let label_admits label name =
  match label with Regex.Any -> true | Regex.Exact n -> String.equal n name

(* One step of the subset simulation on a concrete name. *)
let step t set name =
  Int_set.fold
    (fun q acc ->
      List.fold_left
        (fun acc (label, q') -> if label_admits label name then Int_set.add q' acc else acc)
        acc t.edges.(q))
    set Int_set.empty

let accepts t path =
  let init = closure t (Int_set.singleton t.start) in
  let final =
    Array.fold_left (fun set name -> closure t (step t set name)) init path
  in
  Int_set.mem t.accept final

(* Do two labels admit a common name? (The alphabet is infinite, so
   Any/Any always overlaps.) *)
let labels_overlap a b =
  match (a, b) with
  | Regex.Any, _ | _, Regex.Any -> true
  | Regex.Exact x, Regex.Exact y -> String.equal x y

(* Intersection non-emptiness by BFS over the product of the two NFAs.
   Exact: decides whether some path is accepted by both. *)
let intersect_nonempty a b =
  let module Pair_set = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let close (qa, qb) =
    let ca = closure a (Int_set.singleton qa) in
    let cb = closure b (Int_set.singleton qb) in
    Int_set.fold
      (fun x acc -> Int_set.fold (fun y acc -> Pair_set.add (x, y) acc) cb acc)
      ca Pair_set.empty
  in
  let seen = ref Pair_set.empty in
  let queue = Queue.create () in
  let push pair =
    Pair_set.iter
      (fun p ->
        if not (Pair_set.mem p !seen) then begin
          seen := Pair_set.add p !seen;
          Queue.push p queue
        end)
      (close pair)
  in
  push (a.start, b.start);
  let exception Found in
  try
    while not (Queue.is_empty queue) do
      let qa, qb = Queue.pop queue in
      if qa = a.accept && qb = b.accept then raise Found;
      List.iter
        (fun (la, qa') ->
          List.iter
            (fun (lb, qb') -> if labels_overlap la lb then push (qa', qb'))
            b.edges.(qb))
        a.edges.(qa)
    done;
    false
  with Found -> true

let start_set t = closure t (Int_set.singleton t.start)

let is_accepting t set = Int_set.mem t.accept set
