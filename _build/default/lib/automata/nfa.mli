(** Thompson-style NFA over the symbolic alphabet of element names. *)

type t

val of_regex : Regex.t -> t

val state_count : t -> int

(** Does the automaton accept this concrete path? *)
val accepts : t -> string array -> bool

(** Exact intersection non-emptiness over the infinite name alphabet:
    is there a path accepted by both automata? *)
val intersect_nonempty : t -> t -> bool

(**/**)

module Int_set : Set.S with type elt = int

(** Exposed for {!Lang}'s subset construction. *)
val closure : t -> Int_set.t -> Int_set.t

val step : t -> Int_set.t -> string -> Int_set.t
val start_set : t -> Int_set.t
val is_accepting : t -> Int_set.t -> bool
