(** Merging of XPEs (Sec. 4.3): replace sets of subscriptions by a more
    general merger, with the imperfect degree measuring the false
    positives introduced relative to a DTD-derived path universe. *)

open Xroute_xpath

type merger = {
  xpe : Xpe.t;  (** the merged subscription *)
  originals : Xpe.t list;  (** pairwise distinct, all covered by [xpe] *)
  degree : float;  (** imperfect degree over the universe supplied *)
}

(** [imperfect_degree ~universe m originals] =
    [|P(m) - ∪P(si)| / |P(m)|] measured on the finite [universe] of
    paths. [0.] when the merger matches nothing in the universe. *)
val imperfect_degree : universe:string array list -> Xpe.t -> Xpe.t list -> float

(** Verified merge candidates among the given XPEs (rules 1-3; each
    candidate provably covers its originals). *)
val candidates : ?enable_rule3:bool -> Xpe.t list -> (Xpe.t * Xpe.t list) list

(** [merge_set ~max_degree ~universe xpes] greedily applies candidates
    whose degree stays within [max_degree] ([0.] = perfect merging only);
    each original joins at most one merger. Returns the applied mergers
    and the surviving unmerged XPEs. *)
val merge_set :
  ?enable_rule3:bool ->
  max_degree:float ->
  universe:string array list ->
  Xpe.t list ->
  merger list * Xpe.t list
