lib/core/adv_match.ml: Adv Array Hashtbl List String Xpe Xroute_automata Xroute_xpath
