lib/core/cover.ml: Adv Array List String Xpe Xroute_automata Xroute_xpath
