lib/core/message.ml: Adv Array Format List String Xpe Xroute_xml Xroute_xpath
