lib/core/cover.mli: Adv Xpe Xroute_xpath
