lib/core/adv_match.mli: Adv Xpe Xroute_xpath
