lib/core/codec.mli: Format Message
