lib/core/message.mli: Adv Format Xpe Xroute_xml Xroute_xpath
