lib/core/broker.mli: Message Rtable Xroute_obs
