lib/core/broker.mli: Message Rtable
