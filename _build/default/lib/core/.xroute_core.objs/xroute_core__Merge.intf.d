lib/core/merge.mli: Xpe Xroute_xpath
