lib/core/codec.ml: Adv Array Buffer Char Format List Message Printf Result String Xpe Xpe_parser Xroute_xml Xroute_xpath
