lib/core/merge.ml: Array Cover Hashtbl List Option Printf Scanf Set String Xpe Xpe_eval Xroute_xpath
