lib/core/sub_tree.ml: Array Cover Format Hashtbl List Option Xpe Xpe_eval Xroute_xpath
