lib/core/sub_tree.mli: Xpe Xroute_xpath
