lib/core/yfilter.mli: Xpe Xroute_xpath
