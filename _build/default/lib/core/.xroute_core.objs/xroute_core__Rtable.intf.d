lib/core/rtable.mli: Adv Adv_match Format Map Message Sub_tree Xpe Xroute_xml Xroute_xpath
