lib/core/rtable.ml: Adv Adv_match Cover Format List Map Message Sub_tree Xpe_eval Xroute_xml Xroute_xpath
