lib/core/yfilter.ml: Array Hashtbl List String Xpe Xpe_eval Xroute_xpath
