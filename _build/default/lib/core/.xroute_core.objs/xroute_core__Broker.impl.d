lib/core/broker.ml: Adv_match Cover List Logs Merge Message Option Rtable Sub_tree Xpe Xroute_xpath
