lib/core/broker.ml: Adv_match Cover Fun List Logs Merge Message Option Rtable Sub_tree Sys Xpe Xroute_obs Xroute_xpath
