(* Routing tables of a content-based XML router (Sec. 2.1).

   The subscription routing table (SRT) stores <advertisement, last-hop>
   tuples: a subscription is forwarded to the last hops of the
   advertisements it overlaps. The publication routing table (PRT)
   stores <subscription, last-hop> tuples: a publication is forwarded to
   the last hops of the subscriptions it matches. The PRT is a
   {!Sub_tree}, so covering-based compaction and pruned matching come
   from the data structure; disabling covering just plugs in a constant-
   false covering predicate, degrading the tree to a flat list. *)

open Xroute_xpath

type endpoint = Neighbor of int | Client of int

let endpoint_equal a b =
  match (a, b) with
  | Neighbor x, Neighbor y | Client x, Client y -> x = y
  | Neighbor _, Client _ | Client _, Neighbor _ -> false

let pp_endpoint ppf = function
  | Neighbor b -> Format.fprintf ppf "broker:%d" b
  | Client c -> Format.fprintf ppf "client:%d" c

(* ------------------------------------------------------------------ *)
(* Subscription routing table                                          *)
(* ------------------------------------------------------------------ *)

module Srt = struct
  type entry = { id : Message.sub_id; adv : Adv.t; hop : endpoint }

  type t = {
    mutable entries : entry list;
    use_cover : bool; (* advertisement covering (extension) *)
    engine : Adv_match.engine;
    mutable match_ops : int;
  }

  let create ?(use_cover = false) ?(engine = Adv_match.Paper) () =
    { entries = []; use_cover; engine; match_ops = 0 }

  let size t = List.length t.entries
  let match_ops t = t.match_ops
  let entries t = t.entries

  let mem t id = List.exists (fun e -> Message.compare_sub_id e.id id = 0) t.entries

  (* Store an advertisement. With advertisement covering enabled, an
     entry covered by an existing same-hop advertisement is redundant:
     subscriptions overlapping it also overlap the coverer and are routed
     to the same hop. Returns [`Stored]/[`Covered of coverer_id]. *)
  let add t id adv hop =
    if mem t id then `Duplicate
    else begin
      let coverer =
        if not t.use_cover then None
        else
          List.find_opt
            (fun e -> endpoint_equal e.hop hop && Cover.adv_covers e.adv adv)
            t.entries
      in
      match coverer with
      | Some e -> `Covered e.id
      | None ->
        t.entries <- { id; adv; hop } :: t.entries;
        `Stored
    end

  let remove t id =
    let removed, kept =
      List.partition (fun e -> Message.compare_sub_id e.id id = 0) t.entries
    in
    t.entries <- kept;
    match removed with e :: _ -> Some e.hop | [] -> None

  (* Last hops of the advertisements overlapping the subscription. *)
  let hops_for_sub t xpe =
    let hops =
      List.filter_map
        (fun e ->
          t.match_ops <- t.match_ops + 1;
          if Adv_match.overlaps ~engine:t.engine xpe e.adv then Some e.hop else None)
        t.entries
    in
    List.fold_left (fun acc h -> if List.exists (endpoint_equal h) acc then acc else h :: acc) [] hops

  (* Advertisements (ids) from a given hop. *)
  let ids_from t hop =
    List.filter_map
      (fun e -> if endpoint_equal e.hop hop then Some e.id else None)
      t.entries
end

(* ------------------------------------------------------------------ *)
(* Publication routing table                                           *)
(* ------------------------------------------------------------------ *)

module Prt = struct
  type payload = { id : Message.sub_id; hop : endpoint }

  module Id_map = Map.Make (struct
    type t = Message.sub_id

    let compare = Message.compare_sub_id
  end)

  type t = {
    tree : payload Sub_tree.t;
    mutable by_id : (payload Sub_tree.node * payload) Id_map.t;
  }

  let create ?flat ?covers () =
    { tree = Sub_tree.create ?flat ?covers (); by_id = Id_map.empty }

  let size t = Sub_tree.size t.tree
  let tree t = t.tree
  let mem t id = Id_map.mem id t.by_id
  let find t id = Id_map.find_opt id t.by_id

  (* Is a new subscription covered by a stored one? (Checked before
     insertion; equality counts as covered.) *)
  let is_covered t xpe = Sub_tree.is_covered t.tree xpe

  (* Maximal stored subscriptions covered by [xpe] — the ones whose
     forwarding becomes redundant when [xpe] is forwarded. *)
  let covered_maximal t xpe =
    Sub_tree.covered_roots t.tree xpe
    |> List.concat_map (fun node ->
           List.map (fun p -> (node, p)) (Sub_tree.node_payloads node))

  let insert t id xpe hop =
    let payload = { id; hop } in
    let node = Sub_tree.insert t.tree xpe payload in
    t.by_id <- Id_map.add id (node, payload) t.by_id;
    (node, payload)

  let remove t id =
    match Id_map.find_opt id t.by_id with
    | None -> None
    | Some (node, payload) ->
      let was_maximal = List.exists (fun n -> n == node) (Sub_tree.maximal t.tree) in
      let children = Sub_tree.node_children node in
      let last_payload = match Sub_tree.node_payloads node with [ _ ] -> true | _ -> false in
      Sub_tree.remove_payload t.tree node payload;
      t.by_id <- Id_map.remove id t.by_id;
      Some (payload, node, was_maximal && last_payload, children)

  (* Publication matching: endpoints of matching subscriptions. *)
  let match_pub t (pub : Xroute_xml.Xml_paths.publication) =
    Sub_tree.match_path t.tree pub.steps pub.attrs

  (* Matching restricted to the subtrees of the given subscription ids
     (trail routing): sound because a publication failing a node cannot
     match anything the node covers. *)
  let match_pub_from t ids (pub : Xroute_xml.Xml_paths.publication) =
    let acc = ref [] in
    let rec go node =
      if Xpe_eval.matches_steps (Sub_tree.node_xpe node) pub.steps pub.attrs then begin
        acc := List.rev_append (Sub_tree.node_payloads node) !acc;
        List.iter go (Sub_tree.node_children node)
      end
    in
    List.iter
      (fun id -> match Id_map.find_opt id t.by_id with Some (node, _) -> go node | None -> ())
      ids;
    List.rev !acc

  let match_checks t = Sub_tree.match_checks t.tree
  let cover_checks t = Sub_tree.cover_checks t.tree

  (* Total stored payloads ([size] counts distinct XPEs). *)
  let payload_count t = Sub_tree.payload_count t.tree
end
