(** Subscription/advertisement matching (Sec. 3.2-3.3): does
    [P(xpe) ∩ P(adv) ≠ ∅]? *)

open Xroute_xpath

(** Fig. 2(b) overlap rule for one advertisement symbol and one
    subscription node test. *)
val test_overlap : Adv.symbol -> Xpe.nodetest -> bool

(** Absolute simple XPE (given as its steps) against the symbols of a
    non-recursive advertisement; the caller checks the length
    precondition. *)
val abs_expr_and_adv : Xpe.step list -> Adv.symbol array -> bool

(** Relative simple XPE: naive O(n·k) reference. *)
val rel_expr_and_adv_naive : Xpe.step list -> Adv.symbol array -> bool

(** Relative simple XPE: liberal-border shifting with re-verification
    (the sound variant of the paper's KMP optimization). *)
val rel_expr_and_adv : Xpe.step list -> Adv.symbol array -> bool

(** XPE with descendant operators: greedy segment matching. *)
val des_expr_and_adv : Xpe.t -> Adv.symbol array -> bool

(** Any XPE against the symbols of one fixed-length advertisement path. *)
val expr_and_adv : Xpe.t -> Adv.symbol array -> bool

(** Any XPE against a recursive advertisement, via bounded unrolling (the
    general form of the paper's recursive matching algorithms). *)
val expr_and_rec_adv : Xpe.t -> Adv.t -> bool

(** The paper's complete matching pipeline. *)
val overlaps_paper : Xpe.t -> Adv.t -> bool

(** Exact automata-based overlap (ablation / oracle). *)
val overlaps_exact : Xpe.t -> Adv.t -> bool

type engine = Paper | Exact

(** [overlaps ?engine xpe adv] — defaults to the paper engine. *)
val overlaps : ?engine:engine -> Xpe.t -> Adv.t -> bool
