(** Covering detection between XPEs (Sec. 4.2): [covers s1 s2] soundly
    decides [P(s1) ⊇ P(s2)]. The paper's algorithms are deliberately
    incomplete in places (safe for routing: missed covering costs
    compactness, never correctness); the [Exact] engine decides true
    containment via the automata library. *)

open Xroute_xpath

(** Positional covering rule on node tests: [*] covers anything, a name
    covers only itself. *)
val test_covers : Xpe.nodetest -> Xpe.nodetest -> bool

(** Step covering: node test plus predicate subset (fewer predicates
    select more). *)
val step_covers : Xpe.step -> Xpe.step -> bool

(** Two absolute simple XPEs (AbsSimCov). *)
val abs_sim_cov : Xpe.t -> Xpe.t -> bool

(** Relative simple [s1] against simple [s2] (RelSimCov). *)
val rel_sim_cov : Xpe.t -> Xpe.t -> bool

(** XPEs with descendant operators (DesCov): order-preserving placement
    of [s1]'s segments with the wildcard-overhang special case. *)
val des_cov : Xpe.t -> Xpe.t -> bool

(** The paper's dispatching pipeline. *)
val covers_paper : Xpe.t -> Xpe.t -> bool

(** Automata-based containment (exact for predicate-free XPEs; falls
    back to the paper rules otherwise). *)
val covers_exact : Xpe.t -> Xpe.t -> bool

type engine = Paper | Exact

(** [covers ?engine s1 s2] — defaults to the paper engine. *)
val covers : ?engine:engine -> Xpe.t -> Xpe.t -> bool

(** Covering between advertisements: positional rules for non-recursive
    ones (same-length requirement — advertisements match full paths),
    exact containment for recursive ones. *)
val adv_covers : Adv.t -> Adv.t -> bool
