(** Routing tables of a content-based XML router (Sec. 2.1): the
    subscription routing table (SRT) maps advertisements to last hops;
    the publication routing table (PRT) maps subscriptions to last hops
    and is backed by the covering {!Sub_tree}. *)

open Xroute_xpath

(** A routing next/last hop: a neighbor broker or a local client. *)
type endpoint = Neighbor of int | Client of int

val endpoint_equal : endpoint -> endpoint -> bool
val pp_endpoint : Format.formatter -> endpoint -> unit

module Srt : sig
  type entry = { id : Message.sub_id; adv : Adv.t; hop : endpoint }
  type t

  (** [create ~use_cover ~engine ()] — [use_cover] enables advertisement
      covering (same-hop covered advertisements are suppressed). *)
  val create : ?use_cover:bool -> ?engine:Adv_match.engine -> unit -> t

  val size : t -> int

  (** Matching operations performed so far (metrics). *)
  val match_ops : t -> int

  val entries : t -> entry list
  val mem : t -> Message.sub_id -> bool

  (** Store an advertisement; [`Covered id] means a same-hop coverer
      makes it redundant, [`Duplicate] that the id is already stored. *)
  val add :
    t -> Message.sub_id -> Adv.t -> endpoint -> [ `Stored | `Covered of Message.sub_id | `Duplicate ]

  (** Remove by id, returning the stored hop. *)
  val remove : t -> Message.sub_id -> endpoint option

  (** Last hops of the advertisements overlapping a subscription
      (deduplicated) — where the subscription must be forwarded. *)
  val hops_for_sub : t -> Xpe.t -> endpoint list

  (** Advertisement ids stored from a given hop. *)
  val ids_from : t -> endpoint -> Message.sub_id list
end

module Prt : sig
  type payload = { id : Message.sub_id; hop : endpoint }

  module Id_map : Map.S with type key = Message.sub_id

  type t

  val create : ?flat:bool -> ?covers:(Xpe.t -> Xpe.t -> bool) -> unit -> t
  val size : t -> int
  val tree : t -> payload Sub_tree.t
  val mem : t -> Message.sub_id -> bool
  val find : t -> Message.sub_id -> (payload Sub_tree.node * payload) option

  (** Is the XPE covered by a stored subscription? *)
  val is_covered : t -> Xpe.t -> bool

  (** Maximal stored subscriptions covered by the XPE, with their
      payloads. *)
  val covered_maximal : t -> Xpe.t -> (payload Sub_tree.node * payload) list

  val insert : t -> Message.sub_id -> Xpe.t -> endpoint -> payload Sub_tree.node * payload

  (** Remove by id; returns [(payload, node, node_removed_from_maximal,
      promoted_children)]. *)
  val remove :
    t ->
    Message.sub_id ->
    (payload * payload Sub_tree.node * bool * payload Sub_tree.node list) option

  (** Payloads of subscriptions matching a publication. *)
  val match_pub : t -> Xroute_xml.Xml_paths.publication -> payload list

  (** Matching restricted to the subtrees of the given ids (trail
      routing); sound by the covering-pruning argument. *)
  val match_pub_from : t -> Message.sub_id list -> Xroute_xml.Xml_paths.publication -> payload list

  val match_checks : t -> int
  val cover_checks : t -> int

  (** Total stored payloads ({!size} counts distinct XPEs). *)
  val payload_count : t -> int
end
