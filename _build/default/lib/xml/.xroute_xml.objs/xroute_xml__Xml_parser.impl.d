lib/xml/xml_parser.ml: Buffer Char List Printf String Xml_tree
