lib/xml/xml_paths.mli: Format Xml_tree
