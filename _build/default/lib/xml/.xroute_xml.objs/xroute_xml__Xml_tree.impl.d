lib/xml/xml_tree.ml: List Set String
