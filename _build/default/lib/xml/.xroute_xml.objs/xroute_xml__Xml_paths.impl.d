lib/xml/xml_paths.ml: Array Format Hashtbl List Printf String Xml_printer Xml_tree
