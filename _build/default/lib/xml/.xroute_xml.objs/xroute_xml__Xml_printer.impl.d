lib/xml/xml_printer.ml: Buffer Format List String Xml_tree
