lib/xml/xml_printer.mli: Format Xml_tree
