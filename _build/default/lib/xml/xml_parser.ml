(* Hand-written recursive-descent XML parser.

   Supports the subset of XML needed by the dissemination network and its
   workload generators: prolog, comments, processing instructions, DOCTYPE
   declarations (the internal subset is captured verbatim so it can be fed
   to the DTD parser), elements, attributes, character data, CDATA sections
   and the predefined / numeric entity references.

   The parser reports errors with line/column positions. It is not a
   validating parser; well-formedness (tag balance, attribute uniqueness)
   is checked, validity against a DTD is the job of Xroute_dtd. *)

exception Parse_error of { line : int; col : int; message : string }

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

type parsed = {
  root : Xml_tree.t;
  doctype_name : string option;
  internal_subset : string option;
}

let error st message = raise (Parse_error { line = st.line; col = st.col; message })

let eof st = st.pos >= String.length st.input

let peek st = if eof st then '\000' else st.input.[st.pos]

let peek2 st = if st.pos + 1 >= String.length st.input then '\000' else st.input.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    (if st.input.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st <> c then error st (Printf.sprintf "expected %C, found %C" c (peek st));
  advance st

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let skip_string st s =
  if not (looking_at st s) then error st (Printf.sprintf "expected %S" s);
  String.iter (fun _ -> advance st) s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then
    error st (Printf.sprintf "expected a name, found %C" (peek st));
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Entity reference after the '&' has been consumed. *)
let parse_entity st =
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then error st "unterminated entity reference";
  let entity = String.sub st.input start (st.pos - start) in
  expect st ';';
  match entity with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
    if String.length entity > 1 && entity.[0] = '#' then begin
      let code =
        try
          if String.length entity > 2 && (entity.[1] = 'x' || entity.[1] = 'X') then
            int_of_string ("0x" ^ String.sub entity 2 (String.length entity - 2))
          else int_of_string (String.sub entity 1 (String.length entity - 1))
        with Failure _ -> error st (Printf.sprintf "bad character reference &%s;" entity)
      in
      if code < 0 || code > 0x10FFFF then error st "character reference out of range";
      (* Encode the code point as UTF-8. *)
      let buf = Buffer.create 4 in
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end;
      Buffer.contents buf
    end
    else error st (Printf.sprintf "unknown entity &%s;" entity)

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (parse_entity st);
      go ()
    end
    else if peek st = '<' then error st "'<' is not allowed in attribute values"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let key = parse_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = parse_attr_value st in
      if List.mem_assoc key acc then
        error st (Printf.sprintf "duplicate attribute %S" key);
      go ((key, value) :: acc)
    end
    else List.rev acc
  in
  go []

let skip_comment st =
  skip_string st "<!--";
  let rec go () =
    if eof st then error st "unterminated comment"
    else if looking_at st "-->" then skip_string st "-->"
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_pi st =
  skip_string st "<?";
  let rec go () =
    if eof st then error st "unterminated processing instruction"
    else if looking_at st "?>" then skip_string st "?>"
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_cdata st =
  skip_string st "<![CDATA[";
  let buf = Buffer.create 32 in
  let rec go () =
    if eof st then error st "unterminated CDATA section"
    else if looking_at st "]]>" then skip_string st "]]>"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* <!DOCTYPE name [internal subset]> after "<!DOCTYPE" is recognized. *)
let parse_doctype st =
  skip_string st "<!DOCTYPE";
  skip_space st;
  let name = parse_name st in
  skip_space st;
  (* Skip an optional external id without interpreting it. *)
  let rec skip_external () =
    if peek st <> '[' && peek st <> '>' && not (eof st) then begin
      (if peek st = '"' || peek st = '\'' then begin
         let q = peek st in
         advance st;
         while (not (eof st)) && peek st <> q do advance st done;
         if eof st then error st "unterminated literal in DOCTYPE";
         advance st
       end
       else advance st);
      skip_external ()
    end
  in
  skip_external ();
  let subset =
    if peek st = '[' then begin
      advance st;
      let start = st.pos in
      let depth = ref 0 in
      let rec go () =
        if eof st then error st "unterminated internal DTD subset"
        else if peek st = '[' then begin incr depth; advance st; go () end
        else if peek st = ']' then
          if !depth = 0 then ()
          else begin decr depth; advance st; go () end
        else begin advance st; go () end
      in
      go ();
      let subset = String.sub st.input start (st.pos - start) in
      expect st ']';
      Some subset
    end
    else None
  in
  skip_space st;
  expect st '>';
  (name, subset)

let rec parse_misc st =
  skip_space st;
  if looking_at st "<!--" then begin
    skip_comment st;
    parse_misc st
  end
  else if looking_at st "<?" then begin
    skip_pi st;
    parse_misc st
  end

let rec parse_element st =
  expect st '<';
  let tag = parse_name st in
  let attrs = parse_attributes st in
  skip_space st;
  if looking_at st "/>" then begin
    skip_string st "/>";
    Xml_tree.element ~attrs tag []
  end
  else begin
    expect st '>';
    let text = Buffer.create 16 in
    let rec content children =
      if eof st then error st (Printf.sprintf "unterminated element <%s>" tag)
      else if looking_at st "</" then begin
        skip_string st "</";
        let closing = parse_name st in
        if closing <> tag then
          error st (Printf.sprintf "mismatched closing tag </%s>, expected </%s>" closing tag);
        skip_space st;
        expect st '>';
        List.rev children
      end
      else if looking_at st "<!--" then begin
        skip_comment st;
        content children
      end
      else if looking_at st "<![CDATA[" then begin
        Buffer.add_string text (parse_cdata st);
        content children
      end
      else if looking_at st "<?" then begin
        skip_pi st;
        content children
      end
      else if peek st = '<' then begin
        let child = parse_element st in
        content (child :: children)
      end
      else if peek st = '&' then begin
        advance st;
        Buffer.add_string text (parse_entity st);
        content children
      end
      else begin
        Buffer.add_char text (peek st);
        advance st;
        content children
      end
    in
    let children = content [] in
    Xml_tree.element ~attrs ~text:(String.trim (Buffer.contents text)) tag children
  end

let parse_full input =
  let st = { input; pos = 0; line = 1; col = 1 } in
  parse_misc st;
  let doctype_name, internal_subset =
    if looking_at st "<!DOCTYPE" then begin
      let name, subset = parse_doctype st in
      (Some name, subset)
    end
    else (None, None)
  in
  parse_misc st;
  if eof st || peek st <> '<' then error st "expected root element";
  if peek2 st = '!' || peek2 st = '?' then error st "expected root element";
  let root = parse_element st in
  parse_misc st;
  if not (eof st) then error st "trailing content after root element";
  { root; doctype_name; internal_subset }

let parse input = (parse_full input).root

let parse_opt input = try Some (parse input) with Parse_error _ -> None

let error_message = function
  | Parse_error { line; col; message } ->
    Some (Printf.sprintf "XML parse error at line %d, column %d: %s" line col message)
  | _ -> None
