(* XML serialization. [to_string] produces compact output whose size is the
   "document size" used by the notification-delay experiments; [pp] produces
   indented output for humans. *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let rec add_node buf node =
  let open Xml_tree in
  Buffer.add_char buf '<';
  Buffer.add_string buf (name node);
  add_attrs buf (attrs node);
  match (children node, text node) with
  | [], "" -> Buffer.add_string buf "/>"
  | children_list, txt ->
    Buffer.add_char buf '>';
    if txt <> "" then Buffer.add_string buf (escape_text txt);
    List.iter (add_node buf) children_list;
    Buffer.add_string buf "</";
    Buffer.add_string buf (name node);
    Buffer.add_char buf '>'

let to_string node =
  let buf = Buffer.create 256 in
  add_node buf node;
  Buffer.contents buf

(* Serialized byte size without materializing the string. *)
let byte_size node =
  let rec go acc node =
    let open Xml_tree in
    let attr_len =
      List.fold_left
        (fun acc (k, v) -> acc + 4 + String.length k + String.length (escape_attr v))
        0 (attrs node)
    in
    match (children node, text node) with
    | [], "" -> acc + 3 + String.length (name node) + attr_len
    | children_list, txt ->
      let acc = acc + 5 + (2 * String.length (name node)) + attr_len in
      let acc = acc + String.length (escape_text txt) in
      List.fold_left go acc children_list
  in
  go 0 node

let rec pp ?(indent = 0) ppf node =
  let open Xml_tree in
  let pad = String.make indent ' ' in
  match (children node, text node) with
  | [], "" ->
    Format.fprintf ppf "%s<%s%t/>" pad (name node) (fun ppf ->
        List.iter (fun (k, v) -> Format.fprintf ppf " %s=\"%s\"" k (escape_attr v)) (attrs node))
  | [], txt ->
    Format.fprintf ppf "%s<%s%t>%s</%s>" pad (name node)
      (fun ppf ->
        List.iter (fun (k, v) -> Format.fprintf ppf " %s=\"%s\"" k (escape_attr v)) (attrs node))
      (escape_text txt) (name node)
  | children_list, txt ->
    Format.fprintf ppf "%s<%s%t>" pad (name node) (fun ppf ->
        List.iter (fun (k, v) -> Format.fprintf ppf " %s=\"%s\"" k (escape_attr v)) (attrs node));
    if txt <> "" then Format.fprintf ppf "@\n%s %s" pad (escape_text txt);
    List.iter (fun c -> Format.fprintf ppf "@\n%a" (pp ~indent:(indent + 2)) c) children_list;
    Format.fprintf ppf "@\n%s</%s>" pad (name node)

let to_pretty_string node = Format.asprintf "%a" (pp ~indent:0) node
