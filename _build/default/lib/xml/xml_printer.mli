(** XML serialization. *)

(** Compact single-line serialization; inverse of [Xml_parser.parse] up to
    whitespace normalization. *)
val to_string : Xml_tree.t -> string

(** Byte length of {!to_string} without building the string. This is the
    document size used by the delay experiments. *)
val byte_size : Xml_tree.t -> int

(** Indented serialization for humans. *)
val pp : ?indent:int -> Format.formatter -> Xml_tree.t -> unit

val to_pretty_string : Xml_tree.t -> string
