(** Hand-written XML parser (well-formedness only; DTD validation lives in
    [Xroute_dtd]). *)

exception Parse_error of { line : int; col : int; message : string }

type parsed = {
  root : Xml_tree.t;
  doctype_name : string option;  (** root name declared by [<!DOCTYPE ...>] *)
  internal_subset : string option;
      (** raw internal DTD subset, parseable by [Xroute_dtd.Dtd_parser] *)
}

(** Parse a document, returning the root plus DOCTYPE information.
    @raise Parse_error on malformed input. *)
val parse_full : string -> parsed

(** Parse a document and return its root element.
    @raise Parse_error on malformed input. *)
val parse : string -> Xml_tree.t

(** Like {!parse} but returns [None] on malformed input. *)
val parse_opt : string -> Xml_tree.t option

(** Human-readable rendering of a {!Parse_error}; [None] for other
    exceptions. *)
val error_message : exn -> string option
