(* Validation of XML documents against a DTD.

   The dissemination network assumes publishers emit documents
   conforming to the DTD their advertisements were derived from
   (Sec. 3.1); this module checks that assumption. Content models are
   matched against the child-element sequence by backtracking (the
   models are tiny); attribute lists are checked for required/fixed/
   enumerated constraints. *)

type error = {
  element : string; (* element where the violation occurred *)
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "<%s>: %s" e.element e.message

let error_to_string e = Format.asprintf "%a" pp_error e

(* Does the particle match exactly the sequence of child names?
   Continuation-passing backtracking; [k] receives the remaining
   suffix. *)
let rec match_particle (p : Dtd_ast.particle) names (k : string list -> bool) =
  match p with
  | Dtd_ast.Elem e -> (
    match names with n :: rest when String.equal n e -> k rest | _ -> false)
  | Dtd_ast.Seq ps ->
    let rec go ps names =
      match ps with [] -> k names | p :: rest -> match_particle p names (fun left -> go rest left)
    in
    go ps names
  | Dtd_ast.Choice ps -> List.exists (fun p -> match_particle p names k) ps
  | Dtd_ast.Opt p -> match_particle p names k || k names
  | Dtd_ast.Star p ->
    let rec loop names =
      k names
      || match_particle p names (fun left -> if List.length left < List.length names then loop left else false)
    in
    loop names
  | Dtd_ast.Plus p ->
    match_particle p names (fun left ->
        let rec loop names =
          k names
          || match_particle p names (fun left' ->
                 if List.length left' < List.length names then loop left' else false)
        in
        loop left)

let particle_matches p names = match_particle p names (fun rest -> rest = [])

(* Check one element's attributes against its declaration. *)
let check_attrs (decl : Dtd_ast.element_decl) (node : Xroute_xml.Xml_tree.t) =
  let errors = ref [] in
  let err fmt =
    Format.kasprintf
      (fun message -> errors := { element = decl.el_name; message } :: !errors)
      fmt
  in
  let present = Xroute_xml.Xml_tree.attrs node in
  (* declared constraints *)
  List.iter
    (fun (a : Dtd_ast.attr_decl) ->
      match List.assoc_opt a.attr_name present with
      | None -> (
        match a.attr_default with
        | Dtd_ast.Required -> err "missing required attribute %s" a.attr_name
        | Dtd_ast.Implied | Dtd_ast.Fixed _ | Dtd_ast.Default _ -> ())
      | Some value -> (
        (match a.attr_type with
        | Dtd_ast.Enum allowed when not (List.mem value allowed) ->
          err "attribute %s has value %S, allowed: %s" a.attr_name value
            (String.concat " | " allowed)
        | Dtd_ast.Enum _ | Dtd_ast.Cdata | Dtd_ast.Id | Dtd_ast.Idref | Dtd_ast.Nmtoken -> ());
        match a.attr_default with
        | Dtd_ast.Fixed fixed when not (String.equal value fixed) ->
          err "attribute %s must be fixed to %S" a.attr_name fixed
        | Dtd_ast.Fixed _ | Dtd_ast.Required | Dtd_ast.Implied | Dtd_ast.Default _ -> ()))
    decl.attrs;
  (* undeclared attributes *)
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (a : Dtd_ast.attr_decl) -> a.attr_name = name) decl.attrs) then
        err "undeclared attribute %s" name)
    present;
  List.rev !errors

(* Check one element's content against its declaration. *)
let check_content (decl : Dtd_ast.element_decl) (node : Xroute_xml.Xml_tree.t) =
  let child_names = List.map Xroute_xml.Xml_tree.name (Xroute_xml.Xml_tree.children node) in
  let text = Xroute_xml.Xml_tree.text node in
  let fail message = [ { element = decl.el_name; message } ] in
  match decl.content with
  | Dtd_ast.Any -> []
  | Dtd_ast.Empty ->
    if child_names <> [] then fail "EMPTY element has children"
    else if text <> "" then fail "EMPTY element has character data"
    else []
  | Dtd_ast.Pcdata ->
    if child_names <> [] then fail "PCDATA element has element children" else []
  | Dtd_ast.Mixed allowed ->
    List.filter_map
      (fun n ->
        if List.mem n allowed then None
        else Some { element = decl.el_name; message = Printf.sprintf "element %s not allowed in mixed content" n })
      child_names
  | Dtd_ast.Children p ->
    if text <> "" then fail "element content cannot carry character data"
    else if particle_matches p child_names then []
    else
      fail
        (Printf.sprintf "children (%s) do not match content model %s"
           (String.concat ", " child_names)
           (Dtd_ast.particle_to_string p))

(* Validate a whole document. *)
let validate (dtd : Dtd_ast.t) (root : Xroute_xml.Xml_tree.t) =
  let errors = ref [] in
  let add es = errors := List.rev_append es !errors in
  if not (String.equal (Xroute_xml.Xml_tree.name root) (Dtd_ast.root dtd)) then
    add
      [
        {
          element = Xroute_xml.Xml_tree.name root;
          message =
            Printf.sprintf "root element is %s, DTD expects %s" (Xroute_xml.Xml_tree.name root)
              (Dtd_ast.root dtd);
        };
      ];
  let rec walk node =
    (match Dtd_ast.find dtd (Xroute_xml.Xml_tree.name node) with
    | None ->
      add
        [ { element = Xroute_xml.Xml_tree.name node; message = "element is not declared" } ]
    | Some decl ->
      add (check_content decl node);
      add (check_attrs decl node));
    List.iter walk (Xroute_xml.Xml_tree.children node)
  in
  walk root;
  List.rev !errors

let is_valid dtd root = validate dtd root = []
