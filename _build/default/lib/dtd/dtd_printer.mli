(** Serialization of a DTD back to declaration syntax (inverse of
    {!Dtd_parser} up to parameter-entity expansion). *)

val attr_type_to_string : Dtd_ast.attr_type -> string
val attr_default_to_string : Dtd_ast.attr_default -> string
val element_decl_to_string : Dtd_ast.element_decl -> string

(** The full DTD, one declaration per line. *)
val to_string : Dtd_ast.t -> string

val pp : Format.formatter -> Dtd_ast.t -> unit
