(** Parser for DTD internal-subset syntax: [<!ELEMENT>], [<!ATTLIST>],
    comments and parameter entities. *)

exception Parse_error of { pos : int; message : string }

(** [parse ?root input] parses a sequence of declarations. The document
    root defaults to the first declared element.
    @raise Parse_error on syntax errors, duplicate or dangling element
    declarations. *)
val parse : ?root:string -> string -> Dtd_ast.t

val parse_opt : ?root:string -> string -> Dtd_ast.t option

(** Human-readable rendering of a {!Parse_error}; [None] otherwise. *)
val error_message : exn -> string option
