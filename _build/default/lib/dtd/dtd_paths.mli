(** Root-to-leaf path enumeration and advertisement generation from DTDs
    (Sec. 3.1 of the paper). *)

(** All root-to-leaf name paths of length at most [max_depth] (cycles
    unrolled up to the bound), capped at [max_count] paths. Exponential in
    [max_depth]; intended for oracles and small DTDs. *)
val enumerate_paths :
  ?max_count:int -> max_depth:int -> Dtd_graph.t -> string array list

(** [sample_paths ~count ~max_depth prng graph] draws random root-to-leaf
    paths by uniform walks (used as a path universe on large DTDs). *)
val sample_paths :
  count:int -> max_depth:int -> Xroute_support.Prng.t -> Dtd_graph.t -> string array list

(** Generate the advertisement set of a DTD: one (possibly recursive)
    advertisement per simple root-to-leaf path shape, with repeatable
    segments wrapped in [(...)+] groups; see the module implementation
    notes for the supported fragment. [max_choices] caps the number of
    advertisements emitted per path when loop intervals cross. *)
val advertisements : ?max_choices:int -> Dtd_graph.t -> Xroute_xpath.Adv.t list

(** Paths (up to [max_depth], at most [max_count]) not matched by any of
    the advertisements; empty when generation was exact for this DTD. *)
val validate :
  ?max_depth:int -> ?max_count:int -> Dtd_graph.t -> Xroute_xpath.Adv.t list ->
  string array list

(** True when every root-to-leaf path of the document is matched by some
    advertisement. *)
val covers_document :
  Dtd_graph.t -> Xroute_xpath.Adv.t list -> Xroute_xml.Xml_tree.t -> bool
