(* Serialization of a DTD back to declaration syntax — the inverse of
   {!Dtd_parser} (up to parameter-entity expansion, which the parser
   splices in). Lets programmatically-built or transformed DTDs be
   written out for external tools and round-trip tests. *)

let attr_type_to_string = function
  | Dtd_ast.Cdata -> "CDATA"
  | Dtd_ast.Id -> "ID"
  | Dtd_ast.Idref -> "IDREF"
  | Dtd_ast.Nmtoken -> "NMTOKEN"
  | Dtd_ast.Enum values -> "(" ^ String.concat " | " values ^ ")"

let attr_default_to_string = function
  | Dtd_ast.Required -> "#REQUIRED"
  | Dtd_ast.Implied -> "#IMPLIED"
  | Dtd_ast.Fixed v -> Printf.sprintf "#FIXED %S" v
  | Dtd_ast.Default v -> Printf.sprintf "%S" v

(* Content model in declaration syntax. A bare element reference must be
   parenthesized at the top level of <!ELEMENT>. *)
let content_decl_string content =
  match content with
  | Dtd_ast.Empty -> "EMPTY"
  | Dtd_ast.Any -> "ANY"
  | Dtd_ast.Pcdata -> "(#PCDATA)"
  | Dtd_ast.Mixed names -> "(#PCDATA | " ^ String.concat " | " names ^ ")*"
  | Dtd_ast.Children p -> (
    match p with
    | Dtd_ast.Elem _ | Dtd_ast.Opt (Dtd_ast.Elem _) | Dtd_ast.Star (Dtd_ast.Elem _)
    | Dtd_ast.Plus (Dtd_ast.Elem _) -> (
      (* wrap a bare (possibly modified) element reference *)
      match p with
      | Dtd_ast.Elem n -> "(" ^ n ^ ")"
      | Dtd_ast.Opt (Dtd_ast.Elem n) -> "(" ^ n ^ ")?"
      | Dtd_ast.Star (Dtd_ast.Elem n) -> "(" ^ n ^ ")*"
      | Dtd_ast.Plus (Dtd_ast.Elem n) -> "(" ^ n ^ ")+"
      | _ -> assert false)
    | _ -> Dtd_ast.particle_to_string p)

let element_decl_to_string (d : Dtd_ast.element_decl) =
  Printf.sprintf "<!ELEMENT %s %s>" d.el_name (content_decl_string d.content)

let attlist_to_string (d : Dtd_ast.element_decl) =
  match d.attrs with
  | [] -> None
  | attrs ->
    Some
      (Printf.sprintf "<!ATTLIST %s %s>" d.el_name
         (String.concat " "
            (List.map
               (fun (a : Dtd_ast.attr_decl) ->
                 Printf.sprintf "%s %s %s" a.attr_name (attr_type_to_string a.attr_type)
                   (attr_default_to_string a.attr_default))
               attrs)))

let to_string dtd =
  let buf = Buffer.create 1024 in
  Dtd_ast.fold
    (fun d () ->
      Buffer.add_string buf (element_decl_to_string d);
      Buffer.add_char buf '\n';
      match attlist_to_string d with
      | Some line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      | None -> ())
    dtd ();
  Buffer.contents buf

let pp ppf dtd = Format.pp_print_string ppf (to_string dtd)
