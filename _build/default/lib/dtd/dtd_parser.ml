(* Parser for DTD (internal-subset) syntax.

   Handles <!ELEMENT>, <!ATTLIST>, comments, processing instructions and
   parameter entities (<!ENTITY % name "...">, expanded textually at use
   sites %name;) — enough to parse real-world DTDs in the NITF style,
   which lean heavily on parameter entities for shared content models. *)

exception Parse_error of { pos : int; message : string }

type state = {
  mutable input : string;
  mutable pos : int;
  entities : (string, string) Hashtbl.t;
}

let error st message = raise (Parse_error { pos = st.pos; message })

let eof st = st.pos >= String.length st.input

let peek st = if eof st then '\000' else st.input.[st.pos]

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let skip_string st s =
  if not (looking_at st s) then error st (Printf.sprintf "expected %S" s);
  st.pos <- st.pos + String.length s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* Skip whitespace; expand parameter-entity references (%name; — no space
   after the percent sign, which distinguishes them from <!ENTITY % ...>
   declarations) by splicing their replacement text into the input. *)
let rec skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done;
  let next = if st.pos + 1 < String.length st.input then st.input.[st.pos + 1] else '\000' in
  let name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  if peek st = '%' && name_start next then begin
    expand_entity st;
    skip_space st
  end

and expand_entity st =
  advance st (* '%' *);
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then error st "unterminated parameter entity reference";
  let name = String.sub st.input start (st.pos - start) in
  advance st (* ';' *);
  match Hashtbl.find_opt st.entities name with
  | None -> error st (Printf.sprintf "undefined parameter entity %%%s;" name)
  | Some replacement ->
    let before = String.sub st.input 0 (st.pos - (String.length name + 2)) in
    let after = String.sub st.input st.pos (String.length st.input - st.pos) in
    st.input <- before ^ " " ^ replacement ^ " " ^ after;
    st.pos <- String.length before

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let parse_name st =
  skip_space st;
  if not (is_name_start (peek st)) then
    error st (Printf.sprintf "expected a name, found %C" (peek st));
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_quoted st =
  skip_space st;
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected quoted literal";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    advance st
  done;
  if eof st then error st "unterminated literal";
  let s = String.sub st.input start (st.pos - start) in
  advance st;
  s

(* Content particle grammar (after an opening '(' is consumed, [parse_group]
   handles both sequences and choices). *)
let rec parse_cp st =
  skip_space st;
  let base =
    if peek st = '(' then begin
      advance st;
      parse_group st
    end
    else Dtd_ast.Elem (parse_name st)
  in
  parse_modifier st base

and parse_modifier st base =
  match peek st with
  | '?' ->
    advance st;
    Dtd_ast.Opt base
  | '*' ->
    advance st;
    Dtd_ast.Star base
  | '+' ->
    advance st;
    Dtd_ast.Plus base
  | _ -> base

and parse_group st =
  let first = parse_cp st in
  skip_space st;
  match peek st with
  | ')' ->
    advance st;
    (* A single-item group: keep it as a Seq of one for faithfulness. *)
    Dtd_ast.Seq [ first ]
  | ',' ->
    let rec items acc =
      skip_space st;
      match peek st with
      | ',' ->
        advance st;
        items (parse_cp st :: acc)
      | ')' ->
        advance st;
        List.rev acc
      | c -> error st (Printf.sprintf "expected ',' or ')', found %C" c)
    in
    Dtd_ast.Seq (items [ first ])
  | '|' ->
    let rec items acc =
      skip_space st;
      match peek st with
      | '|' ->
        advance st;
        items (parse_cp st :: acc)
      | ')' ->
        advance st;
        List.rev acc
      | c -> error st (Printf.sprintf "expected '|' or ')', found %C" c)
    in
    Dtd_ast.Choice (items [ first ])
  | c -> error st (Printf.sprintf "expected ',', '|' or ')', found %C" c)

let parse_content st =
  skip_space st;
  if looking_at st "EMPTY" then begin
    skip_string st "EMPTY";
    Dtd_ast.Empty
  end
  else if looking_at st "ANY" then begin
    skip_string st "ANY";
    Dtd_ast.Any
  end
  else if peek st = '(' then begin
    advance st;
    skip_space st;
    if looking_at st "#PCDATA" then begin
      skip_string st "#PCDATA";
      skip_space st;
      if peek st = ')' then begin
        advance st;
        (* Optional '*' after (#PCDATA) is legal. *)
        if peek st = '*' then advance st;
        Dtd_ast.Pcdata
      end
      else begin
        let rec names acc =
          skip_space st;
          match peek st with
          | '|' ->
            advance st;
            names (parse_name st :: acc)
          | ')' ->
            advance st;
            List.rev acc
          | c -> error st (Printf.sprintf "expected '|' or ')' in mixed content, found %C" c)
        in
        let ns = names [] in
        if peek st <> '*' then error st "mixed content must end with ')*'";
        advance st;
        Dtd_ast.Mixed ns
      end
    end
    else Dtd_ast.Children (parse_modifier st (parse_group st))
  end
  else error st "expected a content model"

let parse_attr_type st =
  skip_space st;
  if looking_at st "CDATA" then begin
    skip_string st "CDATA";
    Dtd_ast.Cdata
  end
  else if looking_at st "IDREF" then begin
    skip_string st "IDREF";
    Dtd_ast.Idref
  end
  else if looking_at st "ID" then begin
    skip_string st "ID";
    Dtd_ast.Id
  end
  else if looking_at st "NMTOKEN" then begin
    skip_string st "NMTOKEN";
    Dtd_ast.Nmtoken
  end
  else if peek st = '(' then begin
    advance st;
    let rec values acc =
      skip_space st;
      let v = parse_name st in
      skip_space st;
      match peek st with
      | '|' ->
        advance st;
        values (v :: acc)
      | ')' ->
        advance st;
        List.rev (v :: acc)
      | c -> error st (Printf.sprintf "expected '|' or ')' in enumeration, found %C" c)
    in
    Dtd_ast.Enum (values [])
  end
  else error st "expected an attribute type"

let parse_attr_default st =
  skip_space st;
  if looking_at st "#REQUIRED" then begin
    skip_string st "#REQUIRED";
    Dtd_ast.Required
  end
  else if looking_at st "#IMPLIED" then begin
    skip_string st "#IMPLIED";
    Dtd_ast.Implied
  end
  else if looking_at st "#FIXED" then begin
    skip_string st "#FIXED";
    Dtd_ast.Fixed (parse_quoted st)
  end
  else Dtd_ast.Default (parse_quoted st)

let skip_comment st =
  skip_string st "<!--";
  let rec go () =
    if eof st then error st "unterminated comment"
    else if looking_at st "-->" then skip_string st "-->"
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_pi st =
  skip_string st "<?";
  let rec go () =
    if eof st then error st "unterminated processing instruction"
    else if looking_at st "?>" then skip_string st "?>"
    else begin
      advance st;
      go ()
    end
  in
  go ()

type raw = {
  mutable order : string list; (* element names, declaration order (reversed) *)
  contents : (string, Dtd_ast.content) Hashtbl.t;
  attlists : (string, Dtd_ast.attr_decl list) Hashtbl.t;
}

let parse_declaration st raw =
  if looking_at st "<!--" then skip_comment st
  else if looking_at st "<?" then skip_pi st
  else if looking_at st "<!ELEMENT" then begin
    skip_string st "<!ELEMENT";
    let name = parse_name st in
    let content = parse_content st in
    skip_space st;
    skip_string st ">";
    if Hashtbl.mem raw.contents name then
      error st (Printf.sprintf "duplicate declaration of element %S" name);
    Hashtbl.replace raw.contents name content;
    raw.order <- name :: raw.order
  end
  else if looking_at st "<!ATTLIST" then begin
    skip_string st "<!ATTLIST";
    let el = parse_name st in
    let rec attrs acc =
      skip_space st;
      if peek st = '>' then begin
        advance st;
        List.rev acc
      end
      else begin
        let attr_name = parse_name st in
        let attr_type = parse_attr_type st in
        let attr_default = parse_attr_default st in
        attrs ({ Dtd_ast.attr_name; attr_type; attr_default } :: acc)
      end
    in
    let decls = attrs [] in
    let existing = Option.value ~default:[] (Hashtbl.find_opt raw.attlists el) in
    Hashtbl.replace raw.attlists el (existing @ decls)
  end
  else if looking_at st "<!ENTITY" then begin
    skip_string st "<!ENTITY";
    skip_space st;
    if peek st <> '%' then error st "only parameter entities are supported";
    advance st;
    let name = parse_name st in
    let value = parse_quoted st in
    skip_space st;
    skip_string st ">";
    (* First declaration binds, per the XML spec. *)
    if not (Hashtbl.mem st.entities name) then Hashtbl.replace st.entities name value
  end
  else error st (Printf.sprintf "unexpected input at %C" (peek st))

let parse ?root input =
  let st = { input; pos = 0; entities = Hashtbl.create 8 } in
  let raw = { order = []; contents = Hashtbl.create 16; attlists = Hashtbl.create 8 } in
  let rec loop () =
    skip_space st;
    if not (eof st) then begin
      parse_declaration st raw;
      loop ()
    end
  in
  loop ();
  let order = List.rev raw.order in
  let root =
    match (root, order) with
    | Some r, _ -> r
    | None, first :: _ -> first
    | None, [] -> error st "no element declarations"
  in
  let decls =
    List.map
      (fun name ->
        {
          Dtd_ast.el_name = name;
          content = Hashtbl.find raw.contents name;
          attrs = Option.value ~default:[] (Hashtbl.find_opt raw.attlists name);
        })
      order
  in
  (* Check that referenced elements are declared. *)
  List.iter
    (fun d ->
      List.iter
        (fun child ->
          if not (Hashtbl.mem raw.contents child) then
            error st
              (Printf.sprintf "element %S references undeclared element %S" d.Dtd_ast.el_name
                 child))
        (Dtd_ast.content_elements d.Dtd_ast.content))
    decls;
  Dtd_ast.create ~root decls

let parse_opt ?root input =
  try Some (parse ?root input) with Parse_error _ | Invalid_argument _ -> None

let error_message = function
  | Parse_error { pos; message } ->
    Some (Printf.sprintf "DTD parse error at offset %d: %s" pos message)
  | _ -> None
