lib/dtd/dtd_paths.ml: Array Dtd_ast Dtd_graph List Set String Xroute_support Xroute_xml Xroute_xpath
