lib/dtd/dtd_paths.mli: Dtd_graph Xroute_support Xroute_xml Xroute_xpath
