lib/dtd/dtd_samples.ml: Dtd_parser Lazy Printf
