lib/dtd/dtd_parser.ml: Dtd_ast Hashtbl List Option Printf String
