lib/dtd/dtd_parser.mli: Dtd_ast
