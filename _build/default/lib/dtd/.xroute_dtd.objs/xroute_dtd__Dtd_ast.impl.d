lib/dtd/dtd_ast.ml: Format Hashtbl List Map Printf String
