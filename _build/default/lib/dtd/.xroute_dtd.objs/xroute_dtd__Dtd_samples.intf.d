lib/dtd/dtd_samples.mli: Dtd_ast
