lib/dtd/dtd_validate.mli: Dtd_ast Format Xroute_xml
