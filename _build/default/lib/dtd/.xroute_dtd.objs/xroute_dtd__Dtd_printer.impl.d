lib/dtd/dtd_printer.ml: Buffer Dtd_ast Format List Printf String
