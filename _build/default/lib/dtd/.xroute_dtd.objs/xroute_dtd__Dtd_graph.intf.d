lib/dtd/dtd_graph.mli: Dtd_ast
