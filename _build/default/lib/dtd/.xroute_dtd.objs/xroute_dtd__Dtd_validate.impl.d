lib/dtd/dtd_validate.ml: Dtd_ast Format List Printf String Xroute_xml
