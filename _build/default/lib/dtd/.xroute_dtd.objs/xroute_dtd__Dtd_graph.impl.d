lib/dtd/dtd_graph.ml: Dtd_ast Hashtbl List Map Option Set String
