lib/dtd/dtd_ast.mli: Format Map
