lib/dtd/dtd_printer.mli: Dtd_ast Format
