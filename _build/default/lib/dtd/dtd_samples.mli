(** Bundled sample DTDs: [nitf] (large, recursive) and [psd]
    (non-recursive) stand in for the DTDs of the paper's evaluation;
    [book] and [insurance] serve the examples and tests. *)

val book_source : string
val insurance_source : string
val psd_source : string
val nitf_source : string

val book : Dtd_ast.t lazy_t
val insurance : Dtd_ast.t lazy_t
val psd : Dtd_ast.t lazy_t
val nitf : Dtd_ast.t lazy_t

(** Look a sample up by name ("book", "insurance", "psd", "nitf"). *)
val by_name : string -> Dtd_ast.t option

val names : string list
