(* Bundled sample DTDs.

   The paper evaluates on the NITF (News Industry Text Format) DTD — large
   and recursive — and the PSD (Protein Sequence Database) DTD — smaller
   and non-recursive, observing that NITF yields roughly 35x more
   advertisements than PSD. The original DTDs are not redistributable
   here, so these are synthetic stand-ins with the same character: [nitf]
   is recursive (self-recursive containers plus a nested list cycle) with a
   rich vocabulary; [psd] is non-recursive; the advertisement-set size
   ratio is of the same order as the paper reports.

   [book] and [insurance] are small DTDs used by the examples and tests. *)

let book_source =
  {|
<!-- A small teaching DTD. -->
<!ELEMENT book (title, author+, chapter+, index?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (name, affiliation?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT chapter (title, section+)>
<!ELEMENT section (title, para*, section*)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT index (entry*)>
<!ELEMENT entry (#PCDATA)>
<!ATTLIST book isbn CDATA #REQUIRED lang (en | fr | de) "en">
<!ATTLIST chapter number NMTOKEN #IMPLIED>
|}

let insurance_source =
  {|
<!-- Insurance message DTD for the paper's motivating scenario: claims,
     bids and requests for proposal routed to matching experts. -->
<!ELEMENT insurance (claim | bid | rfp)>
<!ELEMENT claim (claimant, policy, incident, assessment?)>
<!ELEMENT claimant (person, contact)>
<!ELEMENT person (name, language?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT language (#PCDATA)>
<!ELEMENT contact (email | phone | address)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT policy (holder, coverage+)>
<!ELEMENT holder (#PCDATA)>
<!ELEMENT coverage (#PCDATA)>
<!ELEMENT incident (date, location, description, damage*)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT location (city, country)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT damage (item, amount)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT assessment (expert, verdict)>
<!ELEMENT expert (person)>
<!ELEMENT verdict (#PCDATA)>
<!ELEMENT bid (bidder, policy, amount)>
<!ELEMENT bidder (person, contact)>
<!ELEMENT rfp (requester, coverage+, deadline)>
<!ELEMENT requester (person, contact)>
<!ELEMENT deadline (#PCDATA)>
<!ATTLIST claim urgency (low | normal | high) "normal" currency CDATA #IMPLIED>
<!ATTLIST incident kind (auto | home | health | travel) #REQUIRED>
|}

let psd_source =
  {|
<!-- Protein Sequence Database-like DTD: non-recursive, moderate size. -->
<!ENTITY % evidence "evidence-code, citation?">
<!ELEMENT ProteinDatabase (ProteinEntry+)>
<!ELEMENT ProteinEntry (header, protein, organism, reference+, genetics?, classification?, keywords?, feature*, dbrefs?, summary, sequence)>
<!ELEMENT header (uid, accession+, created_date, seq-rev_date, ann-rev_date)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT created_date (#PCDATA)>
<!ELEMENT seq-rev_date (#PCDATA)>
<!ELEMENT ann-rev_date (#PCDATA)>
<!ELEMENT protein (name, alt-name*, contains?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT alt-name (#PCDATA)>
<!ELEMENT contains (#PCDATA)>
<!ELEMENT organism (source, common?, formal-names?)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT formal-names (formal-name+)>
<!ELEMENT formal-name (#PCDATA)>
<!ELEMENT reference (refinfo, accinfo*)>
<!ELEMENT refinfo (authors, citation, volume?, year, pages?, title?, xrefs?)>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT xrefs (xref+)>
<!ELEMENT xref (db, uid)>
<!ELEMENT db (#PCDATA)>
<!ELEMENT accinfo (accession, mol-type?, seq-spec?, %evidence;)>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT seq-spec (#PCDATA)>
<!ELEMENT evidence-code (#PCDATA)>
<!ELEMENT genetics (gene+, introns?)>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT introns (#PCDATA)>
<!ELEMENT classification (superfamily?, family*)>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT family (#PCDATA)>
<!ELEMENT keywords (keyword+)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature (feature-type, description?, seq-spec, status?)>
<!ELEMENT feature-type (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT dbrefs (genbank?, embl?, ddbj?, pir?, swissprot?, trembl?, pdb?, prosite?, interpro?, pfam?, prints?, prodom?, smart?, omim?, kegg?, go?, ec?, mgd?, sgd?, flybase?)>
<!ELEMENT genbank (#PCDATA)>
<!ELEMENT embl (#PCDATA)>
<!ELEMENT ddbj (#PCDATA)>
<!ELEMENT pir (#PCDATA)>
<!ELEMENT swissprot (#PCDATA)>
<!ELEMENT trembl (#PCDATA)>
<!ELEMENT pdb (#PCDATA)>
<!ELEMENT prosite (#PCDATA)>
<!ELEMENT interpro (#PCDATA)>
<!ELEMENT pfam (#PCDATA)>
<!ELEMENT prints (#PCDATA)>
<!ELEMENT prodom (#PCDATA)>
<!ELEMENT smart (#PCDATA)>
<!ELEMENT omim (#PCDATA)>
<!ELEMENT kegg (#PCDATA)>
<!ELEMENT go (#PCDATA)>
<!ELEMENT ec (#PCDATA)>
<!ELEMENT mgd (#PCDATA)>
<!ELEMENT sgd (#PCDATA)>
<!ELEMENT flybase (#PCDATA)>
<!ELEMENT summary (length, type)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST ProteinEntry id CDATA #REQUIRED>
<!ATTLIST sequence checksum CDATA #IMPLIED>
|}

let nitf_source =
  {|
<!-- NITF-like news DTD: large vocabulary, recursive content containers.
     Recursion: block nests within itself, list/list.item form a nested
     cycle (list.item repeats within a list, lists nest within items),
     and q quotes nest within themselves, yielding simple-, series- and
     embedded-recursive advertisements. -->
<!ENTITY % inline "p | em | strong | a | br | q | person | org | location | money | num | chron | copyrite | classifier | virtloc | alt-code">
<!ENTITY % blocks "block | list | table | media | quote | pre | hr | bq | fn | ol | dl">
<!ELEMENT nitf (head, body)>
<!ELEMENT head (title?, meta*, tobject?, iim?, docdata?, pubdata*, revision-history?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT tobject (tobject.property*, tobject.subject*)>
<!ELEMENT tobject.property EMPTY>
<!ELEMENT tobject.subject (subject-code?, subject-matter?, subject-detail?)>
<!ELEMENT subject-code (#PCDATA)>
<!ELEMENT subject-matter (#PCDATA)>
<!ELEMENT subject-detail (#PCDATA)>
<!ELEMENT iim (ds*)>
<!ELEMENT ds EMPTY>
<!ELEMENT docdata (doc-id?, urgency?, fixture?, date-issue?, date-release?, date-expire?, doc-scope*, series?, ed-msg?, du-key?, doc-copyright?, key-list?, identified-content?, del-list?)>
<!ELEMENT doc-id EMPTY>
<!ELEMENT urgency EMPTY>
<!ELEMENT fixture EMPTY>
<!ELEMENT date-issue EMPTY>
<!ELEMENT date-release EMPTY>
<!ELEMENT date-expire EMPTY>
<!ELEMENT doc-scope EMPTY>
<!ELEMENT series EMPTY>
<!ELEMENT ed-msg (#PCDATA)>
<!ELEMENT du-key EMPTY>
<!ELEMENT doc-copyright (copyrite.year?, copyrite.holder?)>
<!ELEMENT key-list (keyword*)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT identified-content (person | org | location | event | function | object)*>
<!ELEMENT del-list (from-src*)>
<!ELEMENT from-src (#PCDATA)>
<!ELEMENT event (event.name?, event.code?, event.date?)>
<!ELEMENT event.name (#PCDATA)>
<!ELEMENT event.code (#PCDATA)>
<!ELEMENT event.date (#PCDATA)>
<!ELEMENT function (#PCDATA)>
<!ELEMENT object (object.title?, object.code?)>
<!ELEMENT object.title (#PCDATA)>
<!ELEMENT object.code (#PCDATA)>
<!ELEMENT pubdata EMPTY>
<!ELEMENT revision-history (revision+)>
<!ELEMENT revision (#PCDATA)>
<!ELEMENT body (body.head?, body.content*, body.end?)>
<!ELEMENT body.head (hedline?, note*, rights?, byline*, distributor?, dateline*, abstract*, series?)>
<!ELEMENT hedline (hl1, hl2*)>
<!ELEMENT hl1 (#PCDATA)>
<!ELEMENT hl2 (#PCDATA)>
<!ELEMENT note (p*)>
<!ELEMENT rights (rights.owner?, rights.startdate?, rights.enddate?, rights.agent?, rights.geography?, rights.type?, rights.limitations?)>
<!ELEMENT rights.owner (#PCDATA)>
<!ELEMENT rights.startdate (#PCDATA)>
<!ELEMENT rights.enddate (#PCDATA)>
<!ELEMENT rights.agent (#PCDATA)>
<!ELEMENT rights.geography (#PCDATA)>
<!ELEMENT rights.type (#PCDATA)>
<!ELEMENT rights.limitations (#PCDATA)>
<!ELEMENT byline (person?, byttl?, location?, virtloc?)>
<!ELEMENT byttl (#PCDATA)>
<!ELEMENT distributor (org?)>
<!ELEMENT dateline (location?, story.date?)>
<!ELEMENT story.date (#PCDATA)>
<!ELEMENT abstract (p*)>
<!ELEMENT body.content (%blocks;)*>
<!ELEMENT block (tagline?, (%blocks; | %inline;)*)>
<!ELEMENT tagline (#PCDATA)>
<!ELEMENT p (#PCDATA | em | strong | a | q | person | org | location | money | num | chron | classifier | virtloc | alt-code)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT strong (#PCDATA)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT br EMPTY>
<!ELEMENT q (#PCDATA | q)*>
<!ELEMENT person (name.given?, name.family?, function?, title?)>
<!ELEMENT name.given (#PCDATA)>
<!ELEMENT name.family (#PCDATA)>
<!ELEMENT org (org.name?, org.id?, org.value?)>
<!ELEMENT org.name (#PCDATA)>
<!ELEMENT org.id (#PCDATA)>
<!ELEMENT org.value (#PCDATA)>
<!ELEMENT location (sublocation?, city?, state?, region?, country?)>
<!ELEMENT sublocation (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT money (amount?, currency?)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT currency (#PCDATA)>
<!ELEMENT num (frac?, sub?, sup?)>
<!ELEMENT frac (frac-num, frac-sep?, frac-den)>
<!ELEMENT frac-num (#PCDATA)>
<!ELEMENT frac-sep (#PCDATA)>
<!ELEMENT frac-den (#PCDATA)>
<!ELEMENT sub (#PCDATA)>
<!ELEMENT sup (#PCDATA)>
<!ELEMENT chron EMPTY>
<!ELEMENT copyrite (copyrite.year?, copyrite.holder?)>
<!ELEMENT copyrite.year (#PCDATA)>
<!ELEMENT copyrite.holder (#PCDATA)>
<!ELEMENT classifier (#PCDATA)>
<!ELEMENT virtloc (#PCDATA)>
<!ELEMENT alt-code (#PCDATA)>
<!ELEMENT list (list.item+)>
<!ELEMENT list.item (p | list | list.item)*>
<!ELEMENT ol (li+)>
<!ELEMENT li (p | em | strong | a)*>
<!ELEMENT dl (dt | dd)+>
<!ELEMENT dt (#PCDATA)>
<!ELEMENT dd (p | em | strong)*>
<!ELEMENT table (caption?, colgroup*, thead?, tbody?, tr*)>
<!ELEMENT caption (#PCDATA)>
<!ELEMENT colgroup (col*)>
<!ELEMENT col EMPTY>
<!ELEMENT thead (tr+)>
<!ELEMENT tbody (tr+)>
<!ELEMENT tr (th | td)+>
<!ELEMENT th (#PCDATA | em | strong | num)*>
<!ELEMENT td (#PCDATA | em | strong | num | money | chron)*>
<!ELEMENT media (media-reference+, media-caption*, media-producer?, media-metadata*)>
<!ELEMENT media-reference EMPTY>
<!ELEMENT media-caption (p*)>
<!ELEMENT media-producer (#PCDATA)>
<!ELEMENT media-metadata EMPTY>
<!ELEMENT quote (p | list)*>
<!ELEMENT bq (p*, credit?)>
<!ELEMENT credit (#PCDATA | person | org)*>
<!ELEMENT fn (p*)>
<!ELEMENT pre (#PCDATA)>
<!ELEMENT hr EMPTY>
<!ELEMENT body.end (tagline?, bibliography?)>
<!ELEMENT bibliography (#PCDATA)>
<!ATTLIST nitf version CDATA #IMPLIED change.date CDATA #IMPLIED>
<!ATTLIST urgency ed-urg NMTOKEN #IMPLIED>
<!ATTLIST media media-type (text | audio | image | video | data) #REQUIRED>
<!ATTLIST block style CDATA #IMPLIED>
<!ATTLIST tobject tobject.type (news | analysis | feature) "news">
<!ATTLIST date-issue norm CDATA #IMPLIED>
|}

let parse_exn name source =
  match Dtd_parser.parse_opt source with
  | Some dtd -> dtd
  | None -> failwith (Printf.sprintf "Dtd_samples: bundled DTD %S does not parse" name)

let book = lazy (parse_exn "book" book_source)
let insurance = lazy (parse_exn "insurance" insurance_source)
let psd = lazy (parse_exn "psd" psd_source)
let nitf = lazy (parse_exn "nitf" nitf_source)

let by_name = function
  | "book" -> Some (Lazy.force book)
  | "insurance" -> Some (Lazy.force insurance)
  | "psd" -> Some (Lazy.force psd)
  | "nitf" -> Some (Lazy.force nitf)
  | _ -> None

let names = [ "book"; "insurance"; "psd"; "nitf" ]
