(** Element-reference graph of a DTD: edges are the "may appear as a direct
    child of" relation. Supports recursion detection and path
    enumeration. *)

type t

val build : Dtd_ast.t -> t
val dtd : t -> Dtd_ast.t

(** Direct child elements of an element (declaration order). [Any] content
    yields every declared element. *)
val children : t -> string -> string list

val is_reachable : t -> string -> bool
val reachable_elements : t -> string list

(** Elements on some cycle of the reference graph. *)
val recursive_elements : t -> string list

val is_recursive_element : t -> string -> bool

(** True when a recursive element is reachable from the root — the paper's
    notion of a recursive DTD. *)
val is_recursive : t -> bool

val unreachable_elements : t -> string list

(** Reachable elements that can legally terminate a root-to-leaf path. *)
val leaf_elements : t -> string list
