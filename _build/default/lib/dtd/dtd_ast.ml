(* Document Type Definition model.

   A DTD declares, for each element, a content model constraining its
   children, plus attribute lists. The dissemination network uses DTDs as
   the source of advertisements: the DTD determines every root-to-leaf
   element path a conforming document can exhibit (Sec. 3.1). *)

module String_map = Map.Make (String)

(* Content particle of an element declaration. *)
type particle =
  | Elem of string
  | Seq of particle list  (* (a, b, c) *)
  | Choice of particle list  (* (a | b | c) *)
  | Opt of particle  (* p? *)
  | Star of particle  (* p* *)
  | Plus of particle  (* p+ *)

type content =
  | Empty  (* EMPTY *)
  | Any  (* ANY *)
  | Pcdata  (* (#PCDATA) *)
  | Mixed of string list  (* (#PCDATA | a | b)* *)
  | Children of particle

type attr_type = Cdata | Id | Idref | Nmtoken | Enum of string list

type attr_default = Required | Implied | Fixed of string | Default of string

type attr_decl = { attr_name : string; attr_type : attr_type; attr_default : attr_default }

type element_decl = { el_name : string; content : content; attrs : attr_decl list }

type t = {
  root : string;  (* document element; first declared element by convention *)
  elements : element_decl String_map.t;
}

let create ~root decls =
  let elements =
    List.fold_left (fun acc d -> String_map.add d.el_name d acc) String_map.empty decls
  in
  if not (String_map.mem root elements) then
    invalid_arg (Printf.sprintf "Dtd_ast.create: root element %S is not declared" root);
  { root; elements }

let root t = t.root

let find t name = String_map.find_opt name t.elements

let element_names t = List.map fst (String_map.bindings t.elements)

let element_count t = String_map.cardinal t.elements

let fold f t acc = String_map.fold (fun _ d acc -> f d acc) t.elements acc

(* Element names referenced by a particle, in first-occurrence order. *)
let particle_elements particle =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      acc := n :: !acc
    end
  in
  let rec go = function
    | Elem n -> add n
    | Seq ps | Choice ps -> List.iter go ps
    | Opt p | Star p | Plus p -> go p
  in
  go particle;
  List.rev !acc

(* Child element names allowed directly under [decl]. For [Any], the
   caller must substitute the full element list. *)
let content_elements = function
  | Empty | Pcdata | Any -> []
  | Mixed names -> names
  | Children p -> particle_elements p

(* Can the element legally have no element children (making it a path
   leaf)? A particle is "nullable" when it can match the empty sequence;
   Mixed content can always be text-only. *)
let rec particle_nullable = function
  | Elem _ -> false
  | Seq ps -> List.for_all particle_nullable ps
  | Choice ps -> List.exists particle_nullable ps
  | Opt _ | Star _ -> true
  | Plus p -> particle_nullable p

let can_be_leaf decl =
  match decl.content with
  | Empty | Pcdata | Any -> true
  | Mixed _ -> true
  | Children p -> particle_nullable p

let particle_to_string particle =
  let rec go = function
    | Elem n -> n
    | Seq ps -> "(" ^ String.concat ", " (List.map go ps) ^ ")"
    | Choice ps -> "(" ^ String.concat " | " (List.map go ps) ^ ")"
    | Opt p -> go p ^ "?"
    | Star p -> go p ^ "*"
    | Plus p -> go p ^ "+"
  in
  go particle

let content_to_string = function
  | Empty -> "EMPTY"
  | Any -> "ANY"
  | Pcdata -> "(#PCDATA)"
  | Mixed names -> "(#PCDATA | " ^ String.concat " | " names ^ ")*"
  | Children p -> particle_to_string p

let pp ppf t =
  String_map.iter
    (fun _ d -> Format.fprintf ppf "<!ELEMENT %s %s>@\n" d.el_name (content_to_string d.content))
    t.elements
