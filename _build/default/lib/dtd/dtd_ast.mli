(** Document Type Definition model. *)

module String_map : Map.S with type key = string

type particle =
  | Elem of string
  | Seq of particle list  (** [(a, b, c)] *)
  | Choice of particle list  (** [(a | b | c)] *)
  | Opt of particle  (** [p?] *)
  | Star of particle  (** [p*] *)
  | Plus of particle  (** [p+] *)

type content =
  | Empty
  | Any
  | Pcdata
  | Mixed of string list  (** [(#PCDATA | a | b)*] *)
  | Children of particle

type attr_type = Cdata | Id | Idref | Nmtoken | Enum of string list

type attr_default = Required | Implied | Fixed of string | Default of string

type attr_decl = { attr_name : string; attr_type : attr_type; attr_default : attr_default }

type element_decl = { el_name : string; content : content; attrs : attr_decl list }

type t

(** @raise Invalid_argument if [root] is not among the declarations. *)
val create : root:string -> element_decl list -> t

val root : t -> string
val find : t -> string -> element_decl option
val element_names : t -> string list
val element_count : t -> int
val fold : (element_decl -> 'a -> 'a) -> t -> 'a -> 'a

(** Element names referenced by a particle, first-occurrence order. *)
val particle_elements : particle -> string list

(** Child element names allowed directly under a content model ([]
    for [Empty]/[Pcdata]/[Any]). *)
val content_elements : content -> string list

(** Can the particle match the empty sequence? *)
val particle_nullable : particle -> bool

(** Can the element legally have no element children (i.e. be a leaf of a
    root-to-leaf path)? *)
val can_be_leaf : element_decl -> bool

val particle_to_string : particle -> string
val content_to_string : content -> string
val pp : Format.formatter -> t -> unit
