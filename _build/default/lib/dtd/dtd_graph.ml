(* Element-reference graph of a DTD.

   Nodes are declared elements; there is an edge a -> b when b may appear
   as a direct child of a. The graph drives recursion detection ("a DTD is
   recursive if it contains elements that are defined in terms of the
   elements themselves", Sec. 3.1) and the path enumeration behind
   advertisement generation. *)

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type t = {
  dtd : Dtd_ast.t;
  children : string list String_map.t; (* direct child elements, decl order *)
  reachable : String_set.t; (* elements reachable from the root *)
  recursive_elements : String_set.t; (* elements on some cycle *)
}

let children_of dtd decl =
  match decl.Dtd_ast.content with
  | Dtd_ast.Any -> Dtd_ast.element_names dtd
  | content -> Dtd_ast.content_elements content

let build dtd =
  let children =
    Dtd_ast.fold
      (fun decl acc -> String_map.add decl.Dtd_ast.el_name (children_of dtd decl) acc)
      dtd String_map.empty
  in
  let children_list name = Option.value ~default:[] (String_map.find_opt name children) in
  (* Reachability from the root. *)
  let reachable = ref String_set.empty in
  let rec visit name =
    if not (String_set.mem name !reachable) then begin
      reachable := String_set.add name !reachable;
      List.iter visit (children_list name)
    end
  in
  visit (Dtd_ast.root dtd);
  (* Tarjan's strongly-connected components; an element is recursive when
     its SCC has more than one node, or it has a self-edge. *)
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let recursive = ref String_set.empty in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (children_list v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* v is the root of an SCC; pop it. *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      let scc = pop [] in
      let is_cyclic =
        match scc with
        | [ single ] -> List.exists (String.equal single) (children_list single)
        | _ -> true
      in
      if is_cyclic then List.iter (fun w -> recursive := String_set.add w !recursive) scc
    end
  in
  List.iter
    (fun name -> if not (Hashtbl.mem index name) then strongconnect name)
    (Dtd_ast.element_names dtd);
  { dtd; children; reachable = !reachable; recursive_elements = !recursive }

let dtd t = t.dtd

let children t name = Option.value ~default:[] (String_map.find_opt name t.children)

let is_reachable t name = String_set.mem name t.reachable

let reachable_elements t = String_set.elements t.reachable

let recursive_elements t = String_set.elements t.recursive_elements

let is_recursive_element t name = String_set.mem name t.recursive_elements

(* A DTD is recursive when a recursive element is reachable from the
   root. *)
let is_recursive t =
  String_set.exists (fun e -> String_set.mem e t.reachable) t.recursive_elements

(* Elements declared but unreachable from the root (usually a DTD
   authoring mistake; reported by the CLI). *)
let unreachable_elements t =
  List.filter (fun e -> not (String_set.mem e t.reachable)) (Dtd_ast.element_names t.dtd)

(* Leaves: reachable elements that can close a root-to-leaf path. *)
let leaf_elements t =
  List.filter
    (fun e ->
      String_set.mem e t.reachable
      &&
      match Dtd_ast.find t.dtd e with Some d -> Dtd_ast.can_be_leaf d | None -> false)
    (Dtd_ast.element_names t.dtd)
