(** Validation of XML documents against a DTD: root element, content
    models (by backtracking over the particle), and attribute
    constraints (required, fixed, enumerations, undeclared). *)

type error = { element : string; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Does the particle match exactly this child-name sequence? *)
val particle_matches : Dtd_ast.particle -> string list -> bool

(** All violations, document order; empty for a valid document. *)
val validate : Dtd_ast.t -> Xroute_xml.Xml_tree.t -> error list

val is_valid : Dtd_ast.t -> Xroute_xml.Xml_tree.t -> bool
