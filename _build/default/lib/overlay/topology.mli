(** Broker overlay topologies: the paper's 7- and 127-broker complete
    binary trees, plus lines, stars and random trees. *)

type t

(** [build n edges] — undirected graph on brokers [0..n-1].
    @raise Invalid_argument on out-of-range or self edges. *)
val build : int -> (int * int) list -> t

(** Complete binary tree with [levels] levels: [2^levels - 1] brokers
    (3 levels = the paper's 7-broker overlay, 7 levels = 127). *)
val binary_tree : levels:int -> t

(** Leaf brokers of {!binary_tree}. *)
val binary_tree_leaves : levels:int -> int list

val line : int -> t
val star : int -> t

(** Random tree: each broker attaches to a uniformly chosen earlier
    one. *)
val random_tree : Xroute_support.Prng.t -> int -> t

val broker_count : t -> int
val edges : t -> (int * int) list
val neighbors : t -> int -> int list

(** BFS shortest path, endpoints included; [] when disconnected. *)
val path : t -> int -> int -> int list

(** Hop distance; -1 when disconnected. *)
val distance : t -> int -> int -> int

val is_connected : t -> bool
val diameter : t -> int
