(** Discrete-event simulation engine: closures ordered by (virtual time,
    insertion sequence); time is in milliseconds. *)

type t

val create : unit -> t

(** Current virtual time (ms). *)
val now : t -> float

val pending : t -> int
val executed : t -> int

(** Schedule an action [delay] ms from now.
    @raise Invalid_argument on negative delays. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** Run until the queue drains.
    @raise Failure when [max_events] is exceeded (runaway guard). *)
val run : ?max_events:int -> t -> unit

(** Advance the clock without executing anything. *)
val advance_to : t -> float -> unit
