(* Broker overlay topologies.

   The paper's evaluation uses complete binary trees of 7 and 127 brokers
   (each broker connected to 2 subordinate brokers, subscribers on the
   leaves); lines and stars support the hop-count experiments and tests,
   and random trees exercise robustness. *)

type t = {
  broker_count : int;
  edges : (int * int) list; (* undirected, i < j *)
  adjacency : int list array;
}

let build broker_count edges =
  let adjacency = Array.make broker_count [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || b < 0 || a >= broker_count || b >= broker_count || a = b then
        invalid_arg "Topology.build: edge out of range";
      adjacency.(a) <- b :: adjacency.(a);
      adjacency.(b) <- a :: adjacency.(b))
    edges;
  Array.iteri (fun i l -> adjacency.(i) <- List.sort_uniq compare l) adjacency;
  { broker_count; edges; adjacency }

(* Complete binary tree with [levels] levels: 2^levels - 1 brokers,
   node i has children 2i+1 and 2i+2. levels=3 gives the paper's
   7-broker overlay, levels=7 the 127-broker one. *)
let binary_tree ~levels =
  if levels < 1 then invalid_arg "Topology.binary_tree: levels must be >= 1";
  let n = (1 lsl levels) - 1 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then edges := (i, l) :: !edges;
    if r < n then edges := (i, r) :: !edges
  done;
  build n !edges

(* Indices of the leaf brokers of [binary_tree ~levels]. *)
let binary_tree_leaves ~levels =
  let n = (1 lsl levels) - 1 in
  let first_leaf = (1 lsl (levels - 1)) - 1 in
  List.init (n - first_leaf) (fun k -> first_leaf + k)

let line n =
  if n < 1 then invalid_arg "Topology.line: need at least one broker";
  build n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Topology.star: need at least one broker";
  build n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

(* Random tree: broker i >= 1 attaches to a uniformly chosen earlier
   broker. *)
let random_tree prng n =
  if n < 1 then invalid_arg "Topology.random_tree: need at least one broker";
  let edges = List.init (max 0 (n - 1)) (fun i -> (Xroute_support.Prng.int prng (i + 1), i + 1)) in
  build n edges

let broker_count t = t.broker_count
let edges t = t.edges
let neighbors t b = t.adjacency.(b)

(* BFS shortest path (list of brokers, endpoints included). *)
let path t src dst =
  if src = dst then [ src ]
  else begin
    let prev = Array.make t.broker_count (-1) in
    let visited = Array.make t.broker_count false in
    let q = Queue.create () in
    visited.(src) <- true;
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let b = Queue.pop q in
      List.iter
        (fun n ->
          if not visited.(n) then begin
            visited.(n) <- true;
            prev.(n) <- b;
            if n = dst then found := true;
            Queue.push n q
          end)
        t.adjacency.(b)
    done;
    if not !found then []
    else begin
      let rec walk acc b = if b = src then src :: acc else walk (b :: acc) prev.(b) in
      walk [] dst
    end
  end

(* Number of overlay hops between two brokers. *)
let distance t src dst =
  match path t src dst with [] -> -1 | p -> List.length p - 1

let is_connected t =
  t.broker_count <= 1
  ||
  let reachable = List.length (List.filter (fun b -> distance t 0 b >= 0) (List.init t.broker_count Fun.id)) in
  reachable = t.broker_count

let diameter t =
  let d = ref 0 in
  for i = 0 to t.broker_count - 1 do
    for j = i + 1 to t.broker_count - 1 do
      d := max !d (distance t i j)
    done
  done;
  !d
