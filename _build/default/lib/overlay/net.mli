(** The dissemination network: brokers wired over a topology, clients at
    the edge, and a discrete-event simulation of message exchange.

    Each delivery costs link latency + per-byte transmission + the
    receiving broker's processing time, the latter proportional to the
    match/cover operations actually performed — so smaller routing
    tables mean lower notification delay, the mechanism behind the
    paper's Figures 10-11. *)

open Xroute_core

type config = {
  strategy : Broker.strategy;
  latency : Latency.model;
  per_match_cost : float;  (** ms per match/cover operation *)
  per_msg_cost : float;  (** fixed per-message processing, ms *)
  per_byte_cost : float;  (** transmission, ms per byte *)
  client_link : float;  (** client-to-home-broker latency, ms *)
  seed : int;
}

val default_config : config

type client = {
  cid : int;
  home : int;  (** broker id *)
  delivered : (int, float) Hashtbl.t;  (** doc_id -> first delivery time *)
  mutable path_messages : int;  (** path publications received *)
}

type traffic = {
  mutable adv : int;
  mutable unadv : int;
  mutable sub : int;
  mutable unsub : int;
  mutable pub : int;
}

type t

(** [create ?trace topo] — pass a [Xroute_obs.Trace.t] to record every
    broker visit (id, virtual time, queue depth, match ops charged). *)
val create : ?config:config -> ?trace:Xroute_obs.Trace.t -> Topology.t -> t

val topology : t -> Topology.t
val sim : t -> Sim.t
val broker : t -> int -> Broker.t
val brokers : t -> Broker.t array
val clients : t -> client list

val add_client : t -> broker:int -> client
val find_client : t -> int -> client option

(** Client operations; all enqueue work — call {!run} to execute. *)

val advertise : t -> client -> Xroute_xpath.Adv.t -> Message.sub_id
val advertise_dtd : t -> client -> Xroute_xpath.Adv.t list -> Message.sub_id list
val subscribe : t -> client -> Xroute_xpath.Xpe.t -> Message.sub_id
val unsubscribe : t -> client -> Message.sub_id -> unit
val unadvertise : t -> client -> Message.sub_id -> unit

(** Decompose a document at the edge and publish its paths; returns the
    number of path publications. *)
val publish_doc : t -> client -> doc_id:int -> Xroute_xml.Xml_tree.t -> int

(** Replay pre-extracted path publications. *)
val publish_paths : t -> client -> Xroute_xml.Xml_paths.publication list -> unit

(** Run the simulation to quiescence. *)
val run : t -> unit

(** Run a merging pass on every broker and deliver what it emits. *)
val merge_all : t -> unit

(** Hand the DTD-derived path universe to every broker (for merging). *)
val set_universe : t -> string array list -> unit

(** {2 Metrics} *)

(** Messages received by brokers, by kind. *)
val traffic : t -> traffic

val total_traffic : t -> int

(** (client, doc, delay-ms) per first delivery. *)
val delivery_delays : t -> (int * int * float) list

val mean_delivery_delay : t -> float
val total_prt_size : t -> int
val total_srt_size : t -> int

(** Distinct (client, document) deliveries. *)
val total_deliveries : t -> int

(** Publications that reached a broker and produced no output — the
    in-network false positives under imperfect merging. *)
val dropped_publications : t -> int

(** Network-level metrics registry (traffic counters, per-hop latency
    and delivery-delay histograms); always live. *)
val metrics : t -> Xroute_obs.Metrics.t

(** The hop trace passed to {!create}, if any. *)
val trace : t -> Xroute_obs.Trace.t option

(** Refresh every broker's derived gauges. *)
val refresh_metrics : t -> unit

(** One registry totalling the network registry and all (refreshed)
    broker registries. *)
val aggregate_metrics : t -> Xroute_obs.Metrics.t
