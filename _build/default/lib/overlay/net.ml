(* The dissemination network: brokers wired over a topology, clients at
   the edge, and a discrete-event simulation of message exchange.

   Modeling (see DESIGN.md): each message delivery costs the link's
   latency (from the configured model), a per-byte transmission charge
   (so bigger documents travel slower) and the receiving broker's
   processing time, which is proportional to the number of match/cover
   operations the broker actually performed — the quantity covering
   optimizations reduce. Notification delay therefore shrinks when
   routing tables shrink, reproducing the mechanism behind the paper's
   Figures 10 and 11. *)

open Xroute_core

let log_src = Logs.Src.create "xroute.net" ~doc:"Dissemination network simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  strategy : Broker.strategy;
  latency : Latency.model;
  per_match_cost : float; (* ms per match/cover operation *)
  per_msg_cost : float; (* fixed per-message processing, ms *)
  per_byte_cost : float; (* transmission, ms per byte *)
  client_link : float; (* client <-> home broker latency, ms *)
  seed : int;
}

let default_config =
  {
    strategy = Broker.default_strategy;
    latency = Latency.cluster;
    per_match_cost = 0.0002;
    per_msg_cost = 0.005;
    per_byte_cost = 0.0001;
    client_link = 0.05;
    seed = 42;
  }

type client = {
  cid : int;
  home : int; (* broker id *)
  delivered : (int, float) Hashtbl.t; (* doc_id -> first delivery time *)
  mutable path_messages : int; (* path publications received *)
}

type traffic = {
  mutable adv : int;
  mutable unadv : int;
  mutable sub : int;
  mutable unsub : int;
  mutable pub : int;
}

module M = Xroute_obs.Metrics
module Trace = Xroute_obs.Trace

(* Network-level metric handles (the per-broker ones live in Broker). *)
type net_meters = {
  nm_adv : M.counter;
  nm_unadv : M.counter;
  nm_sub : M.counter;
  nm_unsub : M.counter;
  nm_pub : M.counter;
  nm_total : M.counter;
  nm_deliveries : M.counter;
  nm_hop_latency : M.histogram; (* full per-hop cost, ms *)
  nm_delivery_delay : M.histogram; (* emit-to-first-delivery, ms *)
}

let make_net_meters reg =
  {
    nm_adv = M.counter reg ~help:"Advertise messages received by brokers" "xroute_net_msgs_adv_total";
    nm_unadv =
      M.counter reg ~help:"Unadvertise messages received by brokers" "xroute_net_msgs_unadv_total";
    nm_sub = M.counter reg ~help:"Subscribe messages received by brokers" "xroute_net_msgs_sub_total";
    nm_unsub =
      M.counter reg ~help:"Unsubscribe messages received by brokers" "xroute_net_msgs_unsub_total";
    nm_pub = M.counter reg ~help:"Publish messages received by brokers" "xroute_net_msgs_pub_total";
    nm_total = M.counter reg ~help:"Messages received by brokers" "xroute_net_msgs_total";
    nm_deliveries =
      M.counter reg ~help:"First-time (client, doc) deliveries" "xroute_net_deliveries_total";
    nm_hop_latency =
      M.histogram reg ~help:"Per-hop cost: processing + transmission + link (ms)"
        "xroute_net_hop_latency_ms";
    nm_delivery_delay =
      M.histogram reg ~help:"Emit-to-first-delivery delay (ms)" "xroute_net_delivery_delay_ms";
  }

type t = {
  topo : Topology.t;
  config : config;
  sim : Sim.t;
  prng : Xroute_support.Prng.t;
  latency_table : (int * int, float) Hashtbl.t;
  brokers : Broker.t array;
  mutable clients : client list;
  mutable next_cid : int;
  mutable next_seq : int;
  traffic : traffic; (* messages received by brokers, by kind *)
  pub_emit : (int, float) Hashtbl.t; (* doc_id -> emit time *)
  mutable delivery_delays : (int * int * float) list; (* client, doc, delay *)
  metrics : M.t; (* network-level registry; brokers own theirs *)
  nm : net_meters;
  trace : Trace.t option; (* per-hop delivery traces when enabled *)
}

let create ?(config = default_config) ?trace topo =
  let prng = Xroute_support.Prng.create config.seed in
  let latency_table = Latency.assign config.latency prng topo in
  let brokers =
    Array.init (Topology.broker_count topo) (fun b ->
        Broker.create ~strategy:config.strategy ~id:b ~neighbors:(Topology.neighbors topo b) ())
  in
  let metrics = M.create () in
  {
    topo;
    config;
    sim = Sim.create ();
    prng;
    latency_table;
    brokers;
    clients = [];
    next_cid = 0;
    next_seq = 0;
    traffic = { adv = 0; unadv = 0; sub = 0; unsub = 0; pub = 0 };
    pub_emit = Hashtbl.create 64;
    delivery_delays = [];
    metrics;
    nm = make_net_meters metrics;
    trace;
  }

let topology t = t.topo
let sim t = t.sim
let broker t b = t.brokers.(b)
let brokers t = t.brokers
let clients t = t.clients

let fresh_sub_id t ~origin =
  t.next_seq <- t.next_seq + 1;
  { Message.origin; seq = t.next_seq }

let add_client t ~broker =
  if broker < 0 || broker >= Array.length t.brokers then invalid_arg "Net.add_client";
  let c = { cid = t.next_cid; home = broker; delivered = Hashtbl.create 16; path_messages = 0 } in
  t.next_cid <- t.next_cid + 1;
  t.clients <- c :: t.clients;
  c

let find_client t cid = List.find_opt (fun c -> c.cid = cid) t.clients

let count_traffic t (msg : Message.t) =
  M.incr t.nm.nm_total;
  match msg with
  | Message.Advertise _ ->
    t.traffic.adv <- t.traffic.adv + 1;
    M.incr t.nm.nm_adv
  | Message.Unadvertise _ ->
    t.traffic.unadv <- t.traffic.unadv + 1;
    M.incr t.nm.nm_unadv
  | Message.Subscribe _ ->
    t.traffic.sub <- t.traffic.sub + 1;
    M.incr t.nm.nm_sub
  | Message.Unsubscribe _ ->
    t.traffic.unsub <- t.traffic.unsub + 1;
    M.incr t.nm.nm_unsub
  | Message.Publish _ ->
    t.traffic.pub <- t.traffic.pub + 1;
    M.incr t.nm.nm_pub

(* Trace correlation key and kind of a message. *)
let msg_kind (msg : Message.t) =
  match msg with
  | Message.Advertise _ -> "adv"
  | Message.Unadvertise _ -> "unadv"
  | Message.Subscribe _ -> "sub"
  | Message.Unsubscribe _ -> "unsub"
  | Message.Publish _ -> "pub"

let msg_key (msg : Message.t) =
  match msg with
  | Message.Publish { pub; _ } -> pub.doc_id
  | Message.Advertise { id; _ }
  | Message.Unadvertise { id }
  | Message.Subscribe { id; _ }
  | Message.Unsubscribe { id } ->
    Trace.key_of_id ~origin:id.origin ~seq:id.seq

let total_traffic t =
  t.traffic.adv + t.traffic.unadv + t.traffic.sub + t.traffic.unsub + t.traffic.pub

let traffic t = t.traffic

(* Client-side reception. *)
let client_receive t c (msg : Message.t) =
  match msg with
  | Message.Publish { pub; _ } ->
    c.path_messages <- c.path_messages + 1;
    if not (Hashtbl.mem c.delivered pub.doc_id) then begin
      let now = Sim.now t.sim in
      Hashtbl.replace c.delivered pub.doc_id now;
      M.incr t.nm.nm_deliveries;
      Log.debug (fun m -> m "client %d received doc %d at t=%.3fms" c.cid pub.doc_id now);
      match Hashtbl.find_opt t.pub_emit pub.doc_id with
      | Some emitted ->
        t.delivery_delays <- (c.cid, pub.doc_id, now -. emitted) :: t.delivery_delays;
        M.observe t.nm.nm_delivery_delay (now -. emitted)
      | None -> ()
    end
  | Message.Advertise _ | Message.Unadvertise _ | Message.Subscribe _ | Message.Unsubscribe _ ->
    () (* control messages are broker-internal *)

(* Deliver [msg] to broker [b]; schedule whatever it emits. *)
let rec broker_receive t ~from b (msg : Message.t) =
  count_traffic t msg;
  let broker = t.brokers.(b) in
  let w0 = Broker.work broker in
  let outs = Broker.handle broker ~from msg in
  let work = Broker.work broker - w0 in
  (match t.trace with
  | Some trace ->
    Trace.record trace ~kind:(msg_kind msg) ~key:(msg_key msg) ~broker:b
      ~time:(Sim.now t.sim) ~queue_depth:(Sim.pending t.sim) ~match_ops:work
  | None -> ());
  let processing =
    t.config.per_msg_cost +. (float_of_int work *. t.config.per_match_cost)
  in
  List.iter (fun (ep, m) -> send t ~src:b ~processing ep m) outs

and send t ~src ~processing ep (msg : Message.t) =
  let size_cost = float_of_int (Message.wire_size msg) *. t.config.per_byte_cost in
  match ep with
  | Rtable.Neighbor n ->
    let link = Latency.link_delay t.config.latency t.latency_table t.prng src n in
    M.observe t.nm.nm_hop_latency (processing +. size_cost +. link);
    Sim.schedule t.sim
      ~delay:(processing +. size_cost +. link)
      (fun () -> broker_receive t ~from:(Rtable.Neighbor src) n msg)
  | Rtable.Client cid ->
    M.observe t.nm.nm_hop_latency (processing +. size_cost +. t.config.client_link);
    Sim.schedule t.sim
      ~delay:(processing +. size_cost +. t.config.client_link)
      (fun () ->
        match find_client t cid with
        | Some c -> client_receive t c msg
        | None -> ())

(* Client-originated injection. *)
let inject t (c : client) msg =
  Sim.schedule t.sim ~delay:t.config.client_link (fun () ->
      broker_receive t ~from:(Rtable.Client c.cid) c.home msg)

(* ------------------------------------------------------------------ *)
(* Client operations                                                   *)
(* ------------------------------------------------------------------ *)

let advertise t c adv =
  let id = fresh_sub_id t ~origin:c.cid in
  inject t c (Message.Advertise { id; adv });
  id

let advertise_dtd t c advs = List.map (fun adv -> advertise t c adv) advs

let subscribe t c xpe =
  let id = fresh_sub_id t ~origin:c.cid in
  inject t c (Message.Subscribe { id; xpe });
  id

let unsubscribe t c id = inject t c (Message.Unsubscribe { id })

let unadvertise t c id = inject t c (Message.Unadvertise { id })

(* Publish a document: decompose into path publications at the edge. *)
let publish_doc t c ~doc_id root =
  Hashtbl.replace t.pub_emit doc_id (Sim.now t.sim);
  let pubs = Xroute_xml.Xml_paths.decompose ~doc_id root in
  List.iter (fun pub -> inject t c (Message.Publish { pub; trail = [] })) pubs;
  List.length pubs

(* Publish pre-extracted path publications (workload replay). *)
let publish_paths t c pubs =
  List.iter
    (fun (pub : Xroute_xml.Xml_paths.publication) ->
      if not (Hashtbl.mem t.pub_emit pub.doc_id) then
        Hashtbl.replace t.pub_emit pub.doc_id (Sim.now t.sim);
      inject t c (Message.Publish { pub; trail = [] }))
    pubs

(* Run the simulation to quiescence. *)
let run t = Sim.run t.sim

(* Run a merging pass on every broker and deliver what it emits. *)
let merge_all t =
  Array.iteri
    (fun b broker ->
      let outs = Broker.merge_pass broker in
      List.iter (fun (ep, m) -> send t ~src:b ~processing:0.0 ep m) outs)
    t.brokers;
  run t

let set_universe t universe = Array.iter (fun b -> Broker.set_universe b universe) t.brokers

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* (client, doc, delay-ms) notifications recorded so far. *)
let delivery_delays t = t.delivery_delays

let mean_delivery_delay t =
  match t.delivery_delays with
  | [] -> 0.0
  | l ->
    List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 l /. float_of_int (List.length l)

(* Total routing table entries across brokers. *)
let total_prt_size t = Array.fold_left (fun acc b -> acc + Broker.prt_size b) 0 t.brokers
let total_srt_size t = Array.fold_left (fun acc b -> acc + Broker.srt_size b) 0 t.brokers

let total_deliveries t =
  List.fold_left (fun acc c -> acc + Hashtbl.length c.delivered) 0 t.clients

(* Publications that reached a broker with no matching subscription:
   with merging these are the in-network false positives. *)
let dropped_publications t =
  Array.fold_left (fun acc b -> acc + (Broker.counters b).pubs_dropped) 0 t.brokers

(* ------------------------------------------------------------------ *)
(* Registry and traces                                                 *)
(* ------------------------------------------------------------------ *)

let metrics t = t.metrics
let trace t = t.trace

(* Refresh every broker's gauges (the network registry is always live). *)
let refresh_metrics t = Array.iter Broker.refresh_metrics t.brokers

(* One registry totalling the network registry and all broker
   registries; refreshes broker gauges first. *)
let aggregate_metrics t =
  refresh_metrics t;
  M.aggregate (t.metrics :: Array.to_list (Array.map Broker.metrics t.brokers))
