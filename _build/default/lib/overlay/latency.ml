(* Link latency models (milliseconds).

   The paper deploys on a local 20-node cluster and on PlanetLab. The
   cluster model uses small, nearly uniform latencies; the PlanetLab
   model draws per-link latencies from a long-tailed Pareto distribution
   (wide-area RTTs are heavy-tailed) and keeps them fixed for the run,
   with the documented 15-ish percent per-measurement jitter. *)

type model = {
  sample_link : Xroute_support.Prng.t -> float; (* base latency of a new link *)
  jitter : float; (* multiplicative jitter amplitude per message, e.g. 0.15 *)
}

let constant ms = { sample_link = (fun _ -> ms); jitter = 0.0 }

(* Local cluster: ~0.1-0.25 ms, negligible jitter. *)
let cluster = { sample_link = (fun prng -> 0.1 +. Xroute_support.Prng.float prng 0.15); jitter = 0.02 }

(* PlanetLab-like: Pareto with minimum 0.4 ms and tail index 1.8, capped;
   15% jitter as the paper reports for its PlanetLab runs. *)
let planetlab =
  {
    sample_link =
      (fun prng -> min 5.0 (Xroute_support.Prng.pareto prng ~alpha:1.8 ~xm:0.4));
    jitter = 0.15;
  }

(* Fix a latency per undirected link of the topology. *)
let assign model prng topo =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let key = (min a b, max a b) in
      Hashtbl.replace table key (model.sample_link prng))
    (Topology.edges topo);
  table

(* Latency of one message over a link, with per-message jitter. *)
let link_delay model table prng a b =
  let key = (min a b, max a b) in
  let base = match Hashtbl.find_opt table key with Some l -> l | None -> 0.1 in
  if model.jitter <= 0.0 then base
  else begin
    let f = 1.0 +. ((Xroute_support.Prng.unit_float prng -. 0.5) *. 2.0 *. model.jitter) in
    base *. f
  end
