(** Link latency models (ms): near-uniform cluster links and a
    long-tailed PlanetLab-like model with per-message jitter. *)

type model = {
  sample_link : Xroute_support.Prng.t -> float;  (** base latency of a link *)
  jitter : float;  (** multiplicative per-message jitter amplitude *)
}

val constant : float -> model
val cluster : model
val planetlab : model

(** Fix a base latency for every link of the topology. *)
val assign : model -> Xroute_support.Prng.t -> Topology.t -> (int * int, float) Hashtbl.t

(** Latency of one message over a link, jitter applied. *)
val link_delay : model -> (int * int, float) Hashtbl.t -> Xroute_support.Prng.t -> int -> int -> float
