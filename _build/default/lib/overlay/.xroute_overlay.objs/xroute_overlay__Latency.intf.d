lib/overlay/latency.mli: Hashtbl Topology Xroute_support
