lib/overlay/latency.ml: Hashtbl List Topology Xroute_support
