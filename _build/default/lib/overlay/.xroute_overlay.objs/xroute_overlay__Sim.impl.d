lib/overlay/sim.ml: Xroute_support
