lib/overlay/sim.mli:
