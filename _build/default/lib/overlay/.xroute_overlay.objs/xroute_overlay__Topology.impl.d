lib/overlay/topology.ml: Array Fun List Queue Xroute_support
