lib/overlay/net.ml: Array Broker Hashtbl Latency List Logs Message Rtable Sim Topology Xroute_core Xroute_obs Xroute_support Xroute_xml
