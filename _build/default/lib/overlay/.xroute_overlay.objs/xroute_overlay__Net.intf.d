lib/overlay/net.mli: Broker Hashtbl Latency Message Sim Topology Xroute_core Xroute_obs Xroute_xml Xroute_xpath
