lib/overlay/topology.mli: Xroute_support
