(* Discrete-event simulation engine.

   Events are closures ordered by (virtual time, insertion sequence);
   the sequence number makes simultaneous events deterministic. Virtual
   time is in milliseconds. *)

type event = { time : float; seq : int; action : unit -> unit }

type t = {
  queue : event Xroute_support.Heap.t;
  mutable now : float;
  mutable next_seq : int;
  mutable executed : int;
}

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () =
  let dummy = { time = 0.0; seq = -1; action = ignore } in
  {
    queue = Xroute_support.Heap.create ~capacity:1024 ~cmp:compare_event ~dummy ();
    now = 0.0;
    next_seq = 0;
    executed = 0;
  }

let now t = t.now
let pending t = Xroute_support.Heap.length t.queue
let executed t = t.executed

(* Schedule [action] to run [delay] ms from the current virtual time. *)
let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  let ev = { time = t.now +. delay; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  Xroute_support.Heap.push t.queue ev

(* Run until the queue drains (or [max_events] is hit, a runaway guard). *)
let run ?(max_events = 50_000_000) t =
  let rec loop budget =
    if budget <= 0 then failwith "Sim.run: event budget exhausted (runaway simulation?)"
    else
      match Xroute_support.Heap.pop_min t.queue with
      | None -> ()
      | Some ev ->
        t.now <- max t.now ev.time;
        t.executed <- t.executed + 1;
        ev.action ();
        loop (budget - 1)
  in
  loop max_events

(* Advance virtual time to at least [time] even with an empty queue. *)
let advance_to t time = if time > t.now then t.now <- time
