(** Parser for XPEs, inverse of [Xpe.to_string]. *)

exception Parse_error of { pos : int; message : string }

(** @raise Parse_error on syntax errors. *)
val parse : string -> Xpe.t

val parse_opt : string -> Xpe.t option

(** Human-readable rendering of a {!Parse_error}; [None] for other
    exceptions. *)
val error_message : exn -> string option
