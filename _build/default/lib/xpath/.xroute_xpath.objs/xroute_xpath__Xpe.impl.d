lib/xpath/xpe.ml: Bool Buffer Format Hashtbl List Printf String
