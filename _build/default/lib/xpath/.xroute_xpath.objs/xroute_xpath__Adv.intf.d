lib/xpath/adv.mli: Format Xpe
