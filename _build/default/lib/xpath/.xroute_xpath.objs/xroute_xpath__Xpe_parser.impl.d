lib/xpath/xpe_parser.ml: List Printf String Xpe
