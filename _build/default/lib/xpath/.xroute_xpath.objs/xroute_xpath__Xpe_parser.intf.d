lib/xpath/xpe_parser.mli: Xpe
