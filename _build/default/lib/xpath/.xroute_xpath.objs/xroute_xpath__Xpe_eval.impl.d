lib/xpath/xpe_eval.ml: Array List String Xpe Xroute_xml
