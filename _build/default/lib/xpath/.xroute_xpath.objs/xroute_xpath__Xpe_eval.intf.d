lib/xpath/xpe_eval.mli: Xpe Xroute_xml
