lib/xpath/xpe.mli: Format
