lib/xpath/adv.ml: Array Buffer Format Hashtbl List Printf Stdlib String Xpe
