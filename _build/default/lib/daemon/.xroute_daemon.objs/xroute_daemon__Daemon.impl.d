lib/daemon/daemon.ml: Array Broker Buffer Bytes Codec List Logs Message Printf Rtable String Unix Xroute_core Xroute_obs
