lib/daemon/client.mli: Message Xroute_core Xroute_xml Xroute_xpath
