lib/daemon/daemon.mli: Xroute_core
