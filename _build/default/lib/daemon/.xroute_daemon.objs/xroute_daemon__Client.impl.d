lib/daemon/client.ml: Array Buffer Bytes Codec Hashtbl List Message Printf String Unix Xroute_core Xroute_xml
