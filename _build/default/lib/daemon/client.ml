(* Blocking TCP client for the broker daemon: connects to a broker,
   identifies itself, and exchanges codec-framed messages. Used by the
   command-line tools, the examples and the end-to-end network test. *)

open Xroute_core

type t = {
  fd : Unix.file_descr;
  client_id : int;
  mutable next_seq : int;
  inbuf : Buffer.t;
}

let send_line t line =
  let data = line ^ "\n" in
  let rec write off =
    if off < String.length data then begin
      let n = Unix.write_substring t.fd data off (String.length data - off) in
      write (off + n)
    end
  in
  write 0

let connect ~client_id ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  Unix.connect fd (Unix.ADDR_INET (addr, port));
  let t = { fd; client_id; next_seq = 0; inbuf = Buffer.create 256 } in
  send_line t (Printf.sprintf "HELLO|client|%d" client_id);
  t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t =
  t.next_seq <- t.next_seq + 1;
  { Message.origin = t.client_id; seq = t.next_seq }

let send t msg = send_line t ("M|" ^ Codec.encode msg)

let advertise t adv =
  let id = fresh_id t in
  send t (Message.Advertise { id; adv });
  id

let subscribe t xpe =
  let id = fresh_id t in
  send t (Message.Subscribe { id; xpe });
  id

let unsubscribe t id = send t (Message.Unsubscribe { id })
let unadvertise t id = send t (Message.Unadvertise { id })

(* Publish a document: decomposed at the client edge, as in the paper. *)
let publish_doc t ~doc_id root =
  let pubs = Xroute_xml.Xml_paths.decompose ~doc_id root in
  List.iter (fun pub -> send t (Message.Publish { pub; trail = [] })) pubs;
  List.length pubs

(* Next raw protocol line, waiting until [deadline]; [None] on timeout
   or connection close. *)
let next_line t ~deadline =
  let line_from_buffer () =
    let data = Buffer.contents t.inbuf in
    match String.index_opt data '\n' with
    | Some i ->
      let line = String.sub data 0 i in
      Buffer.clear t.inbuf;
      Buffer.add_string t.inbuf (String.sub data (i + 1) (String.length data - i - 1));
      Some line
    | None -> None
  in
  let rec go () =
    match line_from_buffer () with
    | Some line -> Some line
    | None ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else begin
        match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> None
        | _ -> (
          let buf = Bytes.create 4096 in
          match Unix.read t.fd buf 0 4096 with
          | 0 -> None
          | n ->
            Buffer.add_subbytes t.inbuf buf 0 n;
            go ())
      end
  in
  go ()

(* Receive the next message, waiting up to [timeout] seconds; [None] on
   timeout. *)
let recv ?(timeout = 1.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match next_line t ~deadline with
    | None -> None
    | Some line -> (
      match String.split_on_char '|' line with
      | "M" :: _ -> (
        match Codec.decode (String.sub line 2 (String.length line - 2)) with
        | Ok msg -> Some msg
        | Error _ -> go ())
      | _ -> go () (* control line; skip *))
  in
  go ()

(* Request the broker's metrics exposition (STATS|); the framed reply
   (STATS|BEGIN, S| lines, STATS|END) is reassembled into one string.
   Routed messages arriving while the reply streams are discarded. *)
let stats ?(timeout = 2.0) ?(format = `Prom) t =
  send_line t ("STATS|" ^ match format with `Json -> "json" | `Prom -> "prom");
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 1024 in
  let rec go () =
    match next_line t ~deadline with
    | None -> None
    | Some line -> (
      match String.split_on_char '|' line with
      | "STATS" :: "END" :: _ -> Some (Buffer.contents buf)
      | "S" :: _ ->
        Buffer.add_string buf (String.sub line 2 (String.length line - 2));
        Buffer.add_char buf '\n';
        go ()
      | _ -> go () (* BEGIN frame or unrelated traffic *))
  in
  go ()

(* Collect distinct delivered doc ids until [timeout] seconds pass
   without a new message. *)
let drain_deliveries ?(timeout = 0.5) t =
  let docs = Hashtbl.create 8 in
  let rec go () =
    match recv ~timeout t with
    | Some (Message.Publish { pub; _ }) ->
      Hashtbl.replace docs pub.doc_id ();
      go ()
    | Some _ -> go ()
    | None -> ()
  in
  go ();
  List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) docs [])
