(** Metrics registry: named counters, gauges and histograms with
    Prometheus-style text and JSON exposition.

    Naming convention: [xroute_<subsystem>_<metric>], with [_total] for
    monotonic counters and [_ms] for millisecond-valued histograms.
    Every broker owns a registry; {!aggregate} totals them. *)

type counter
type gauge
type histogram
type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(** A registry. *)
type t

val create : unit -> t

(** [counter t name] registers (or returns the already-registered)
    counter. @raise Invalid_argument when [name] exists with another
    type. Same contract for {!gauge} and {!histogram}. *)
val counter : t -> ?help:string -> string -> counter

val gauge : t -> ?help:string -> string -> gauge

(** [cap] bounds the retained samples (default 65536); the observation
    count and sum keep growing past it. *)
val histogram : t -> ?help:string -> ?cap:int -> string -> histogram

val incr : counter -> unit

(** Monotonic increment. @raise Invalid_argument on a negative amount. *)
val add : counter -> int -> unit

(** Mirror a pre-existing cumulative source into the counter; never
    moves the value backwards. *)
val counter_set : counter -> int -> unit

val value : counter -> int

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** Retained samples, oldest first. *)
val samples : histogram -> float array

(** Summary of the retained samples ({!Xroute_support.Stats.summarize}). *)
val summary : histogram -> Xroute_support.Stats.summary

(** Observations ever made (may exceed the retained count). *)
val observations : histogram -> int

val sum : histogram -> float

(** Registered metrics as [(name, help, metric)], sorted by name. *)
val metrics : t -> (string * string * metric) list

val metric_name : metric -> string
val find : t -> string -> metric option

(** One scalar per metric: counter value, gauge value, or histogram
    observation count. [None] when unregistered. *)
val scalar : t -> string -> float option

(** Merge registries: counters and gauges sum; histograms pool their
    retained samples. *)
val aggregate : t list -> t

(** Prometheus text exposition (counters, gauges, and histograms as
    summaries with p50/p95/p99 quantiles). *)
val to_prometheus : t -> string

(** Single-line JSON exposition. *)
val to_json : t -> string
