lib/obs/metrics.mli: Xroute_support
