lib/obs/metrics.ml: Array Buffer Char Float List Printf String Xroute_support
