lib/obs/trace.ml: Array Format List
