(* Hop tracing: a bounded record of each message's path through the
   overlay. Every broker visit appends one hop — broker id, time
   (virtual ms in the simulator, wall ms in the daemon), the event-queue
   depth at that moment and the match operations the visit charged — so
   a delivery can be replayed hop by hop when a delay number looks
   wrong.

   The buffer is a ring: with capacity [n], only the newest [n] hops are
   retained ([length] keeps counting). Messages are correlated by an
   integer [key]: publications use their [doc_id]; control messages fold
   their subscription id into one integer ({!key_of_id}). *)

type hop = {
  seq : int; (* global record order, 0-based *)
  kind : string; (* "adv" | "unadv" | "sub" | "unsub" | "pub" *)
  key : int; (* correlates the hops of one message *)
  broker : int;
  time : float; (* ms, virtual or wall *)
  queue_depth : int; (* pending events / connections backlog *)
  match_ops : int; (* match/cover operations this visit charged *)
}

type t = {
  capacity : int;
  ring : hop option array;
  mutable total : int; (* hops ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; total = 0 }

let length t = t.total
let capacity t = t.capacity

let record t ~kind ~key ~broker ~time ~queue_depth ~match_ops =
  let hop = { seq = t.total; kind; key; broker; time; queue_depth; match_ops } in
  t.ring.(t.total mod t.capacity) <- Some hop;
  t.total <- t.total + 1

(* Retained hops, oldest first. *)
let to_list t =
  let n = min t.total t.capacity in
  let start = t.total - n in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some hop -> hop
      | None -> assert false)

(* The retained path of one message, oldest first. *)
let hops_for t ~key = List.filter (fun h -> h.key = key) (to_list t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.total <- 0

(* Fold a subscription id (origin, seq) into a correlation key. *)
let key_of_id ~origin ~seq = (origin * 1_000_003) + seq

let pp_hop ppf h =
  Format.fprintf ppf "#%d %s key=%d broker=%d t=%.3fms q=%d ops=%d" h.seq h.kind
    h.key h.broker h.time h.queue_depth h.match_ops
