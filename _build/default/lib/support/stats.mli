(** Descriptive statistics for the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val mean : float array -> float

(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    samples. *)
val stddev : float array -> float

(** Nearest-rank percentile; [q] in [0, 1]. *)
val percentile : float array -> float -> float

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** [reduction ~before ~after] is the percentage reduction from [before]
    to [after]. *)
val reduction : before:float -> after:float -> float
