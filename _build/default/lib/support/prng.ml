(* Deterministic pseudo-random number generator based on splitmix64.

   The workload generators and the simulator must produce identical streams
   across OCaml versions and platforms, so we do not rely on [Stdlib.Random]
   (whose algorithm changed between releases). Splitmix64 is tiny, passes
   BigCrush, and supports cheap stream splitting. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Core splitmix64 step: advance the state and mix the output. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent generator; used to give each broker / generator its
   own stream so that adding one consumer does not shift every other one. *)
let split t =
  let seed = next_int64 t in
  { state = Int64.mul seed 0x2545F4914F6CDD1DL }

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits62 t in
    let v = r mod bound in
    if r - v > (max_int / 2) * 2 - bound then go () else v
  in
  go ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound <= 0.0 then invalid_arg "Prng.float: bound must be positive";
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, uniform in [0, 1). *)
  r /. 9007199254740992.0 *. bound

let unit_float t = float t 1.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = unit_float t < p

(* Uniformly pick an element of a non-empty array. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | l -> List.nth l (int t (List.length l))

(* In-place Fisher-Yates shuffle. *)
let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t arr =
  let arr' = Array.copy arr in
  shuffle_in_place t arr';
  arr'

(* Exponentially distributed float with the given mean, for link latencies. *)
let exponential t ~mean =
  let u = unit_float t in
  -. mean *. log (1.0 -. u)

(* Pareto distribution; [alpha] controls the tail, [xm] is the minimum.
   Used for PlanetLab-like long-tailed latencies. *)
let pareto t ~alpha ~xm =
  let u = unit_float t in
  xm /. ((1.0 -. u) ** (1.0 /. alpha))
