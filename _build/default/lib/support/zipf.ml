(* Zipf-distributed sampler over ranks 0..n-1.

   The XPath workload generator skews element choices with a Zipf law so
   that subscription sets exhibit the overlap ("covering rate") the paper's
   Sets A and B require. Sampling uses the inverse-CDF over precomputed
   cumulative weights: O(log n) per draw, exact for any exponent. *)

type t = {
  cumulative : float array; (* cumulative.(i) = P(rank <= i) *)
  n : int;
}

let create ~n ~exponent =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if exponent < 0.0 then invalid_arg "Zipf.create: exponent must be >= 0";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { cumulative; n }

let support t = t.n

(* Binary search for the first index whose cumulative weight exceeds [u]. *)
let sample t prng =
  let u = Prng.unit_float prng in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if rank = 0 then t.cumulative.(0)
  else t.cumulative.(rank) -. t.cumulative.(rank - 1)
