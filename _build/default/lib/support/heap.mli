(** Array-backed binary min-heap with an explicit comparison function.

    Used as the event queue of the discrete-event simulator
    ({!Xroute_overlay.Sim}). *)

type 'a t

(** [create ~cmp ~dummy ()] makes an empty heap. [dummy] is a placeholder
    value used to fill unused slots (it is never returned). *)
val create : ?capacity:int -> cmp:('a -> 'a -> int) -> dummy:'a -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** Smallest element, if any, without removing it. *)
val peek_min : 'a t -> 'a option

(** Remove and return the smallest element. *)
val pop_min : 'a t -> 'a option

val clear : 'a t -> unit

(** Contents in ascending order; the heap is left untouched. *)
val to_list : 'a t -> 'a list
