(** Deterministic splitmix64 pseudo-random number generator.

    All randomized components of the repository (workload generators,
    topologies, the latency model) draw from this generator so that every
    experiment is reproducible bit-for-bit from its seed, independently of
    the OCaml version. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [split t] derives a statistically independent generator and advances
    [t]. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound), without modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [lo, hi] inclusive. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** Uniform in [0, 1). *)
val unit_float : t -> float

val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** Uniform element of a non-empty list. *)
val choose_list : t -> 'a list -> 'a

val shuffle_in_place : t -> 'a array -> unit

(** Functional Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> 'a array

(** Exponential variate with the given mean. *)
val exponential : t -> mean:float -> float

(** Pareto variate with tail index [alpha] and minimum [xm]. *)
val pareto : t -> alpha:float -> xm:float -> float
