lib/support/heap.mli:
