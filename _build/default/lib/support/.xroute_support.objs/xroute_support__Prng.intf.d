lib/support/prng.mli:
