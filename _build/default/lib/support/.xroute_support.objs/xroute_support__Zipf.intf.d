lib/support/zipf.mli: Prng
