lib/support/zipf.ml: Array Prng
