(* Descriptive statistics over float samples, used by the experiment
   harness to report means, percentiles and confidence-style spreads. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean samples =
  match Array.length samples with
  | 0 -> 0.0
  | n -> Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let stddev samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sqrt (ss /. float_of_int (n - 1))
  end

(* Nearest-rank percentile on a sorted copy. [q] in [0, 1]. *)
let percentile samples q =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let summarize samples =
  let n = Array.length samples in
  if n = 0 then
    { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let pct q =
      let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))
    in
    {
      count = n;
      mean = mean samples;
      stddev = stddev samples;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = pct 0.50;
      p95 = pct 0.95;
      p99 = pct 0.99;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

(* Ratio formatted as a percentage change, e.g. reduction of table sizes. *)
let reduction ~before ~after =
  if before = 0.0 then 0.0 else (before -. after) /. before *. 100.0
