(** Zipf-distributed sampler over ranks [0..n-1].

    [exponent = 0.] degenerates to the uniform distribution; larger
    exponents concentrate mass on low ranks. *)

type t

val create : n:int -> exponent:float -> t

(** Number of ranks. *)
val support : t -> int

(** Draw a rank in [0..n-1]. *)
val sample : t -> Prng.t -> int

(** Probability mass of a rank. *)
val probability : t -> int -> float
