(* Array-backed binary min-heap, parameterized by an explicit comparison.

   This is the event queue of the discrete-event simulator: the hot path is
   [push]/[pop_min] with float keys, so we avoid a functor and polymorphic
   compare and store the ordering as a closure. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  cmp : 'a -> 'a -> int;
  dummy : 'a;
}

let create ?(capacity = 16) ~cmp ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; size = 0; cmp; dummy }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let data' = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data' 0 t.size;
  t.data <- data'

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && t.cmp t.data.(l) t.data.(i) < 0 then l else i in
  let smallest = if r < t.size && t.cmp t.data.(r) t.data.(smallest) < 0 then r else smallest in
  if smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(smallest);
    t.data.(smallest) <- tmp;
    sift_down t smallest
  end

let push t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_min t = if t.size = 0 then None else Some t.data.(0)

let pop_min t =
  if t.size = 0 then None
  else begin
    let min = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- t.dummy;
    if t.size > 0 then sift_down t 0;
    Some min
  end

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

(* Sorted (ascending) list of the heap contents; does not disturb [t]. *)
let to_list t =
  let copy = { t with data = Array.copy t.data } in
  let rec drain acc = match pop_min copy with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
