(** Canned workloads mirroring the paper's evaluation setups: Set A
    (high covering rate) and Set B (moderate covering rate) XPE
    populations, document workloads, and the covering-rate metric. *)

(** Generator parameters tuned for a ~90% covering rate at 10-20k
    queries. *)
val set_a_params : Xroute_dtd.Dtd_ast.t -> Xpath_gen.params

(** Generator parameters tuned for a ~50-60% covering rate. *)
val set_b_params : Xroute_dtd.Dtd_ast.t -> Xpath_gen.params

val xpes :
  ?distinct:bool -> params:Xpath_gen.params -> count:int -> seed:int -> unit ->
  Xroute_xpath.Xpe.t list

val documents :
  dtd:Xroute_dtd.Dtd_ast.t -> count:int -> seed:int -> ?max_levels:int -> ?target_bytes:int ->
  unit -> Xroute_xml.Xml_tree.t list

val publications_of_documents :
  Xroute_xml.Xml_tree.t list -> Xroute_xml.Xml_paths.publication list

(** Fraction of a population removed from the routing table by covering
    (the paper's covering rate). *)
val covering_rate : ?covers:(Xroute_xpath.Xpe.t -> Xroute_xpath.Xpe.t -> bool) ->
  Xroute_xpath.Xpe.t list -> float
