lib/workload/xml_gen.mli: Xroute_dtd Xroute_support Xroute_xml
