lib/workload/workload.ml: List Xml_gen Xpath_gen Xroute_core Xroute_support Xroute_xml
