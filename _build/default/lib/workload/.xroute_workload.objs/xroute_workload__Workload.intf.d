lib/workload/workload.mli: Xpath_gen Xroute_dtd Xroute_xml Xroute_xpath
