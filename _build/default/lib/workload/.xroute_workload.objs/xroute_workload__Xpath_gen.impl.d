lib/workload/xpath_gen.ml: Hashtbl List Option Printf Xpe Xroute_dtd Xroute_support Xroute_xpath
