lib/workload/xpath_gen.mli: Xroute_dtd Xroute_support Xroute_xpath
