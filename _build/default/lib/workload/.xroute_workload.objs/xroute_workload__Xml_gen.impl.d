lib/workload/xml_gen.ml: Buffer Hashtbl List Printf Xroute_dtd Xroute_support Xroute_xml
