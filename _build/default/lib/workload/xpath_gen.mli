(** XPath query workload generator (after Diao et al.'s generator used
    by the paper): random DTD walks decorated with wildcards (W),
    descendant operators (DO), optional relativity and attribute
    predicates, with Zipf-skewed element choices. *)

type params = {
  dtd : Xroute_dtd.Dtd_ast.t;
  max_depth : int;  (** maximum number of location steps (paper: 10) *)
  min_depth : int;
  wildcard_prob : float;  (** W: a step's name test becomes [*] *)
  desc_prob : float;  (** DO: a step's operator becomes [//] *)
  relative_prob : float;  (** the XPE keeps no root anchoring *)
  pred_prob : float;  (** a step gains an attribute predicate *)
  skew : float;  (** Zipf exponent over child choices (0 = uniform) *)
  max_wildcards : int;
      (** cap on [*] steps per query: a handful of heavily starred
          queries would cover whole workloads *)
}

val default_params : Xroute_dtd.Dtd_ast.t -> params

(** One random XPE. *)
val generate_one : ?attempts:int -> params -> Xroute_support.Prng.t -> Xroute_xpath.Xpe.t

(** [count] XPEs; with [distinct] (the paper's setting) duplicates are
    re-drawn, giving up after a bounded number of attempts (the result
    may then be shorter than [count]). *)
val generate :
  ?distinct:bool -> params -> Xroute_support.Prng.t -> count:int -> Xroute_xpath.Xpe.t list
