(* XML document generator driven by a DTD, after the IBM XML Generator
   used by the paper: documents are random derivations of the DTD's
   content models, with a maximum nesting level (the paper uses 10, in
   line with the maximum XPE length) and controllable repetition counts
   and target sizes. *)

type params = {
  dtd : Xroute_dtd.Dtd_ast.t;
  max_levels : int; (* maximum element nesting depth (paper: 10) *)
  max_repeats : int; (* cap on * / + repetitions *)
  text_chunk : int; (* bytes of character data per text leaf *)
}

let default_params dtd = { dtd; max_levels = 10; max_repeats = 3; text_chunk = 24 }

(* Minimal element-subtree depth, for forced termination at the level
   cap: at the cap we always pick the shallowest alternative. *)
let min_depths dtd =
  let table = Hashtbl.create 64 in
  let rec depth name visiting =
    match Hashtbl.find_opt table name with
    | Some d -> d
    | None ->
      if List.mem name visiting then 1_000_000 (* cycle: unbounded through here *)
      else begin
        let d =
          match Xroute_dtd.Dtd_ast.find dtd name with
          | None -> 1
          | Some decl ->
            if Xroute_dtd.Dtd_ast.can_be_leaf decl then 1
            else begin
              (* must produce at least one child: the cheapest one *)
              let children = Xroute_dtd.Dtd_ast.content_elements decl.content in
              1
              + List.fold_left
                  (fun acc c -> min acc (depth c (name :: visiting)))
                  999_999 children
            end
        in
        Hashtbl.replace table name d;
        d
      end
  in
  Xroute_dtd.Dtd_ast.fold (fun decl () -> ignore (depth decl.el_name [])) dtd ();
  fun name -> match Hashtbl.find_opt table name with Some d -> d | None -> 1

let words =
  [|
    "data"; "item"; "value"; "report"; "alpha"; "beta"; "gamma"; "delta"; "omega"; "node";
    "path"; "query"; "route"; "press"; "market"; "update"; "daily"; "note"; "entry"; "text";
  |]

let random_text prng n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Xroute_support.Prng.choose prng words)
  done;
  Buffer.sub buf 0 n

(* Attribute values honouring the declaration. *)
let gen_attrs params prng name =
  match Xroute_dtd.Dtd_ast.find params.dtd name with
  | None -> []
  | Some decl ->
    List.filter_map
      (fun (a : Xroute_dtd.Dtd_ast.attr_decl) ->
        let include_it =
          match a.attr_default with
          | Xroute_dtd.Dtd_ast.Required -> true
          | Xroute_dtd.Dtd_ast.Fixed _ -> true
          | Xroute_dtd.Dtd_ast.Implied | Xroute_dtd.Dtd_ast.Default _ ->
            Xroute_support.Prng.bernoulli prng 0.5
        in
        if not include_it then None
        else begin
          let value =
            match (a.attr_default, a.attr_type) with
            | Xroute_dtd.Dtd_ast.Fixed v, _ -> v
            | _, Xroute_dtd.Dtd_ast.Enum values -> Xroute_support.Prng.choose_list prng values
            | _, (Xroute_dtd.Dtd_ast.Cdata | Xroute_dtd.Dtd_ast.Nmtoken) ->
              Xroute_support.Prng.choose prng words
            | _, (Xroute_dtd.Dtd_ast.Id | Xroute_dtd.Dtd_ast.Idref) ->
              Printf.sprintf "id%d" (Xroute_support.Prng.int prng 100000)
          in
          Some (a.attr_name, value)
        end)
      decl.attrs

let generate params prng =
  let dtd = params.dtd in
  let min_depth = min_depths dtd in
  let repeats ~at_least =
    if at_least > 0 then Xroute_support.Prng.int_in_range prng ~lo:1 ~hi:(max 1 params.max_repeats)
    else Xroute_support.Prng.int_in_range prng ~lo:0 ~hi:params.max_repeats
  in
  let rec element name level =
    let decl = Xroute_dtd.Dtd_ast.find dtd name in
    let attrs = gen_attrs params prng name in
    let forced = level >= params.max_levels in
    let children, text =
      match decl with
      | None -> ([], "")
      | Some d -> (
        match d.content with
        | Xroute_dtd.Dtd_ast.Empty -> ([], "")
        | Xroute_dtd.Dtd_ast.Pcdata -> ([], random_text prng params.text_chunk)
        | Xroute_dtd.Dtd_ast.Any -> ([], random_text prng params.text_chunk)
        | Xroute_dtd.Dtd_ast.Mixed names ->
          let picks =
            if forced then []
            else
              List.filter
                (fun n -> min_depth n + level < params.max_levels + 2
                          && Xroute_support.Prng.bernoulli prng 0.4)
                names
          in
          (List.map (fun n -> element n (level + 1)) picks, random_text prng params.text_chunk)
        | Xroute_dtd.Dtd_ast.Children p -> (particle p level ~forced, ""))
    in
    Xroute_xml.Xml_tree.element ~attrs ~text name children
  and particle p level ~forced =
    match p with
    | Xroute_dtd.Dtd_ast.Elem name -> [ element name (level + 1) ]
    | Xroute_dtd.Dtd_ast.Seq ps -> List.concat_map (fun q -> particle q level ~forced) ps
    | Xroute_dtd.Dtd_ast.Choice ps ->
      let pick =
        if forced then begin
          (* shallowest alternative *)
          let cost q =
            match Xroute_dtd.Dtd_ast.particle_elements q with
            | [] -> 0
            | names -> List.fold_left (fun acc n -> min acc (min_depth n)) 999_999 names
          in
          List.fold_left
            (fun best q -> match best with
              | None -> Some q
              | Some b -> if cost q < cost b then Some q else best)
            None ps
        end
        else (match ps with [] -> None | _ -> Some (Xroute_support.Prng.choose_list prng ps))
      in
      (match pick with None -> [] | Some q -> particle q level ~forced)
    | Xroute_dtd.Dtd_ast.Opt q ->
      if forced || Xroute_support.Prng.bool prng then
        if forced then [] else particle q level ~forced
      else []
    | Xroute_dtd.Dtd_ast.Star q ->
      if forced then []
      else begin
        let n = repeats ~at_least:0 in
        List.concat (List.init n (fun _ -> particle q level ~forced))
      end
    | Xroute_dtd.Dtd_ast.Plus q ->
      let n = if forced then 1 else repeats ~at_least:1 in
      List.concat (List.init n (fun _ -> particle q level ~forced))
  in
  element (Xroute_dtd.Dtd_ast.root dtd) 1

(* Generate a document close to [target_bytes]: derive a skeleton, then
   top leaf texts up (or regenerate bigger) until the serialized size is
   within ~10% of the target. *)
let generate_sized params prng ~target_bytes =
  let doc = generate params prng in
  let current = Xroute_xml.Xml_printer.byte_size doc in
  if current >= target_bytes then doc
  else begin
    (* Distribute the missing bytes over the text leaves. *)
    let leaves = ref 0 in
    let () =
      Xroute_xml.Xml_tree.fold
        (fun () n -> if Xroute_xml.Xml_tree.children n = [] then incr leaves)
        () doc
    in
    let missing = target_bytes - current in
    let per_leaf = if !leaves = 0 then missing else missing / max 1 !leaves in
    let rec pad node =
      let open Xroute_xml.Xml_tree in
      match children node with
      | [] ->
        let extra = random_text prng (max 1 per_leaf) in
        element ~attrs:(attrs node) ~text:(text node ^ " " ^ extra) (name node) []
      | kids -> element ~attrs:(attrs node) ~text:(text node) (name node) (List.map pad kids)
    in
    pad doc
  end
