(** XML document generator driven by a DTD (after the IBM XML Generator
    used by the paper): random derivations of the content models with a
    nesting cap and controllable sizes. *)

type params = {
  dtd : Xroute_dtd.Dtd_ast.t;
  max_levels : int;  (** maximum element nesting depth (paper: 10) *)
  max_repeats : int;  (** cap on [*] / [+] repetitions *)
  text_chunk : int;  (** bytes of character data per text leaf *)
}

val default_params : Xroute_dtd.Dtd_ast.t -> params

(** One random conforming document. *)
val generate : params -> Xroute_support.Prng.t -> Xroute_xml.Xml_tree.t

(** A document of roughly [target_bytes] serialized size (leaf texts are
    padded). *)
val generate_sized :
  params -> Xroute_support.Prng.t -> target_bytes:int -> Xroute_xml.Xml_tree.t
