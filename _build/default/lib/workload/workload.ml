(* Canned workloads mirroring the paper's evaluation setups.

   Set A and Set B are NITF XPE populations whose generator knobs (W, DO,
   skew) are tuned so that covering removes roughly 90% and 50% of the
   subscriptions respectively (Sec. 5, "Routing Table Size"). The
   document workloads bound nesting to 10 levels, matching the maximum
   XPE length. *)

(* High overlap (~90% of the population covered at 20k queries): mixed
   lengths create prefix covering, moderate wildcards add pattern
   covering. *)
let set_a_params dtd =
  {
    (Xpath_gen.default_params dtd) with
    Xpath_gen.wildcard_prob = 0.10;
    desc_prob = 0.02;
    min_depth = 6;
    max_depth = 8;
    relative_prob = 0.0;
    skew = 0.0;
    max_wildcards = 2;
  }

(* Lower overlap (~55-60% covered): uniform-length queries cannot cover
   each other through prefixes, so only wildcard-superset patterns
   remain comparable. *)
let set_b_params dtd =
  {
    (Xpath_gen.default_params dtd) with
    Xpath_gen.wildcard_prob = 0.30;
    desc_prob = 0.0;
    min_depth = 7;
    max_depth = 7;
    relative_prob = 0.0;
    skew = 0.0;
    max_wildcards = 3;
  }

let xpes ?(distinct = true) ~params ~count ~seed () =
  let prng = Xroute_support.Prng.create seed in
  Xpath_gen.generate ~distinct params prng ~count

(* Documents and their extracted path publications. *)
let documents ~dtd ~count ~seed ?(max_levels = 10) ?(target_bytes = 0) () =
  let prng = Xroute_support.Prng.create seed in
  let params = { (Xml_gen.default_params dtd) with Xml_gen.max_levels } in
  List.init count (fun _ ->
      if target_bytes > 0 then Xml_gen.generate_sized params prng ~target_bytes
      else Xml_gen.generate params prng)

let publications_of_documents docs =
  List.concat (List.mapi (fun doc_id doc -> Xroute_xml.Xml_paths.decompose ~doc_id doc) docs)

(* The fraction of XPEs removed from a routing table by covering: insert
   everything into a subscription tree and compare the maximal fringe
   with the population (the paper's covering rate for Sets A and B). *)
let covering_rate ?covers xpes =
  match xpes with
  | [] -> 0.0
  | _ ->
    let tree : int Xroute_core.Sub_tree.t = Xroute_core.Sub_tree.create ?covers () in
    List.iteri (fun i xpe -> ignore (Xroute_core.Sub_tree.insert tree xpe i)) xpes;
    let maximal = List.length (Xroute_core.Sub_tree.maximal tree) in
    let total = List.length xpes in
    float_of_int (total - maximal) /. float_of_int total
