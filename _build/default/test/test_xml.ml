(* Tests for the XML library: tree, parser, printer, path decomposition. *)

open Xroute_xml

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let parse = Xml_parser.parse

(* ---------------- Tree ---------------- *)

let sample_tree =
  Xml_tree.element "a"
    [
      Xml_tree.element "b" [ Xml_tree.leaf "c"; Xml_tree.leaf "d" ];
      Xml_tree.leaf ~attrs:[ ("k", "v") ] "e";
    ]

let test_tree_accessors () =
  check cs "name" "a" (Xml_tree.name sample_tree);
  check ci "children" 2 (List.length (Xml_tree.children sample_tree));
  check ci "size" 5 (Xml_tree.size sample_tree);
  check ci "depth" 3 (Xml_tree.depth sample_tree)

let test_tree_attr () =
  let e = List.nth (Xml_tree.children sample_tree) 1 in
  check (Alcotest.option cs) "attr found" (Some "v") (Xml_tree.attr e "k");
  check (Alcotest.option cs) "attr missing" None (Xml_tree.attr e "nope")

let test_tree_equal () =
  check cb "reflexive" true (Xml_tree.equal sample_tree sample_tree);
  check cb "differs" false (Xml_tree.equal sample_tree (Xml_tree.leaf "a"))

let test_tree_element_names () =
  check (Alcotest.list cs) "sorted distinct" [ "a"; "b"; "c"; "d"; "e" ]
    (Xml_tree.element_names sample_tree)

let test_tree_fold () =
  let count = Xml_tree.fold (fun acc _ -> acc + 1) 0 sample_tree in
  check ci "fold visits all" 5 count

(* ---------------- Parser ---------------- *)

let test_parse_minimal () =
  let t = parse "<a/>" in
  check cs "name" "a" (Xml_tree.name t);
  check ci "no children" 0 (List.length (Xml_tree.children t))

let test_parse_nested () =
  let t = parse "<a><b><c/></b><d/></a>" in
  check ci "two children" 2 (List.length (Xml_tree.children t));
  check cs "first child" "b" (Xml_tree.name (List.hd (Xml_tree.children t)))

let test_parse_attributes () =
  let t = parse {|<a x="1" y="two"><b z='3'/></a>|} in
  check (Alcotest.option cs) "x" (Some "1") (Xml_tree.attr t "x");
  check (Alcotest.option cs) "y" (Some "two") (Xml_tree.attr t "y");
  let b = List.hd (Xml_tree.children t) in
  check (Alcotest.option cs) "single quotes" (Some "3") (Xml_tree.attr b "z")

let test_parse_text () =
  let t = parse "<a>hello world</a>" in
  check cs "text" "hello world" (Xml_tree.text t)

let test_parse_entities () =
  let t = parse "<a>&lt;&amp;&gt;&quot;&apos;</a>" in
  check cs "entities" "<&>\"'" (Xml_tree.text t);
  let t = parse {|<a k="&lt;x&gt;"/>|} in
  check (Alcotest.option cs) "attr entities" (Some "<x>") (Xml_tree.attr t "k")

let test_parse_numeric_entities () =
  let t = parse "<a>&#65;&#x42;</a>" in
  check cs "numeric" "AB" (Xml_tree.text t);
  let t = parse "<a>&#233;</a>" in
  check cs "utf8 2-byte" "\xc3\xa9" (Xml_tree.text t)

let test_parse_cdata () =
  let t = parse "<a><![CDATA[<not> &parsed;]]></a>" in
  check cs "cdata" "<not> &parsed;" (Xml_tree.text t)

let test_parse_comments_and_pi () =
  let t = parse "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi data?></a>" in
  check ci "one child" 1 (List.length (Xml_tree.children t))

let test_parse_doctype () =
  let p = Xml_parser.parse_full "<!DOCTYPE book [<!ELEMENT book (#PCDATA)>]><book/>" in
  check (Alcotest.option cs) "doctype name" (Some "book") p.Xml_parser.doctype_name;
  check cb "subset captured" true
    (match p.Xml_parser.internal_subset with
    | Some s -> String.length s > 0 && String.length s < 40
    | None -> false)

let test_parse_doctype_external () =
  let p = Xml_parser.parse_full {|<!DOCTYPE a SYSTEM "a.dtd"><a/>|} in
  check (Alcotest.option cs) "name" (Some "a") p.Xml_parser.doctype_name;
  check cb "no subset" true (p.Xml_parser.internal_subset = None)

let expect_error input =
  match Xml_parser.parse_opt input with
  | Some _ -> Alcotest.failf "expected parse error for %S" input
  | None -> ()

let test_parse_errors () =
  List.iter expect_error
    [
      "";
      "<a>";
      "<a></b>";
      "<a><b></a></b>";
      "<a x=1/>";
      "<a x=\"1\" x=\"2\"/>";
      "<a>&unknown;</a>";
      "<a/><b/>";
      "text only";
      "<a><![CDATA[open</a>";
    ]

let test_parse_error_position () =
  try
    ignore (parse "<a>\n<b></c>\n</a>");
    Alcotest.fail "expected error"
  with Xml_parser.Parse_error { line; _ } -> check ci "line number" 2 line

let test_parse_whitespace_trim () =
  let t = parse "<a>\n  spaced  \n</a>" in
  check cs "trimmed" "spaced" (Xml_tree.text t)

(* ---------------- Printer ---------------- *)

let test_print_roundtrip () =
  let docs =
    [
      "<a/>";
      "<a><b/><c/></a>";
      {|<a k="v"><b>text</b></a>|};
      "<a>x&lt;y</a>";
    ]
  in
  List.iter
    (fun src ->
      let t = parse src in
      let printed = Xml_printer.to_string t in
      let t' = parse printed in
      check cb ("roundtrip " ^ src) true (Xml_tree.equal t t'))
    docs

let test_print_escaping () =
  let t = Xml_tree.leaf ~text:"a<b&c" ~attrs:[ ("k", "v\"w<") ] "e" in
  let s = Xml_printer.to_string t in
  let t' = parse s in
  check cs "text survives" "a<b&c" (Xml_tree.text t');
  check (Alcotest.option cs) "attr survives" (Some "v\"w<") (Xml_tree.attr t' "k")

let test_byte_size_matches () =
  let docs = [ "<a/>"; "<a><b>text</b><c k=\"v\"/></a>"; "<a>x&amp;y</a>" ] in
  List.iter
    (fun src ->
      let t = parse src in
      check ci ("byte_size " ^ src) (String.length (Xml_printer.to_string t))
        (Xml_printer.byte_size t))
    docs

let test_pretty_parses_back () =
  let t = parse "<a><b><c>x</c></b><d/></a>" in
  let pretty = Xml_printer.to_pretty_string t in
  match Xml_parser.parse_opt pretty with
  | Some t' -> check cs "root survives" (Xml_tree.name t) (Xml_tree.name t')
  | None -> Alcotest.fail "pretty output does not parse"

(* ---------------- Paths ---------------- *)

let test_paths_basic () =
  let t = parse "<a><b><c/><d/></b><e/></a>" in
  let pubs = Xml_paths.decompose ~doc_id:7 t in
  let strings =
    List.map (fun (p : Xml_paths.publication) -> String.concat "/" (Array.to_list p.steps)) pubs
  in
  check (Alcotest.list cs) "paths" [ "a/b/c"; "a/b/d"; "a/e" ] strings;
  List.iter (fun (p : Xml_paths.publication) -> check ci "doc id" 7 p.Xml_paths.doc_id) pubs

let test_paths_dedup () =
  let t = parse "<a><b><c/></b><b><c/></b></a>" in
  check ci "deduped" 1 (List.length (Xml_paths.decompose ~doc_id:0 t));
  check ci "raw kept" 2 (List.length (Xml_paths.decompose ~dedup:false ~doc_id:0 t));
  check ci "path_count" 2 (Xml_paths.path_count t);
  check ci "distinct" 1 (Xml_paths.distinct_path_count t)

let test_paths_single_node () =
  let pubs = Xml_paths.decompose ~doc_id:0 (Xml_tree.leaf "solo") in
  check ci "one path" 1 (List.length pubs);
  check ci "length 1" 1 (Array.length (List.hd pubs).Xml_paths.steps)

let test_paths_attrs_carried () =
  let t = parse {|<a k="1"><b m="2"><c/></b></a>|} in
  let pub = List.hd (Xml_paths.decompose ~doc_id:0 t) in
  check (Alcotest.list (Alcotest.pair cs cs)) "attrs at 0" [ ("k", "1") ] pub.Xml_paths.attrs.(0);
  check (Alcotest.list (Alcotest.pair cs cs)) "attrs at 1" [ ("m", "2") ] pub.Xml_paths.attrs.(1);
  check (Alcotest.list (Alcotest.pair cs cs)) "attrs at 2" [] pub.Xml_paths.attrs.(2)

let test_paths_ids_sequential () =
  let t = parse "<a><b/><c/><d/></a>" in
  let ids = List.map (fun (p : Xml_paths.publication) -> p.Xml_paths.path_id)
      (Xml_paths.decompose ~doc_id:0 t) in
  check (Alcotest.list ci) "sequential" [ 0; 1; 2 ] ids

let test_publication_of_string () =
  let p = Xml_paths.publication_of_string "/a/b/c" in
  check ci "3 steps" 3 (Array.length p.Xml_paths.steps);
  check cs "step 1" "b" p.Xml_paths.steps.(1);
  Alcotest.check_raises "empty step"
    (Invalid_argument "publication_of_string: empty step in \"a//b\"") (fun () ->
      ignore (Xml_paths.publication_of_string "/a//b"))

let test_doc_size_on_pubs () =
  let t = parse "<a><b>hello</b></a>" in
  let pub = List.hd (Xml_paths.decompose ~doc_id:0 t) in
  check ci "doc size recorded" (Xml_printer.byte_size t) pub.Xml_paths.doc_size

let () =
  Alcotest.run "xml"
    [
      ( "tree",
        [
          Alcotest.test_case "accessors" `Quick test_tree_accessors;
          Alcotest.test_case "attr" `Quick test_tree_attr;
          Alcotest.test_case "equal" `Quick test_tree_equal;
          Alcotest.test_case "element_names" `Quick test_tree_element_names;
          Alcotest.test_case "fold" `Quick test_tree_fold;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "nested" `Quick test_parse_nested;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "text" `Quick test_parse_text;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "numeric entities" `Quick test_parse_numeric_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_parse_comments_and_pi;
          Alcotest.test_case "doctype" `Quick test_parse_doctype;
          Alcotest.test_case "doctype external" `Quick test_parse_doctype_external;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          Alcotest.test_case "whitespace trim" `Quick test_parse_whitespace_trim;
        ] );
      ( "printer",
        [
          Alcotest.test_case "roundtrip" `Quick test_print_roundtrip;
          Alcotest.test_case "escaping" `Quick test_print_escaping;
          Alcotest.test_case "byte_size" `Quick test_byte_size_matches;
          Alcotest.test_case "pretty parses back" `Quick test_pretty_parses_back;
        ] );
      ( "paths",
        [
          Alcotest.test_case "basic" `Quick test_paths_basic;
          Alcotest.test_case "dedup" `Quick test_paths_dedup;
          Alcotest.test_case "single node" `Quick test_paths_single_node;
          Alcotest.test_case "attrs carried" `Quick test_paths_attrs_carried;
          Alcotest.test_case "ids sequential" `Quick test_paths_ids_sequential;
          Alcotest.test_case "of_string" `Quick test_publication_of_string;
          Alcotest.test_case "doc size" `Quick test_doc_size_on_pubs;
        ] );
    ]
