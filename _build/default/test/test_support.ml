(* Tests for the support library: PRNG, heap, Zipf, stats. *)

open Xroute_support

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 1234 and b = Prng.create 1234 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  check cb "different seeds diverge" true (!same < 4)

let test_prng_int_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    check cb "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_bad_bound () =
  let p = Prng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_prng_int_in_range () =
  let p = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.int_in_range p ~lo:5 ~hi:9 in
    check cb "in closed range" true (v >= 5 && v <= 9)
  done

let test_prng_int_covers_values () =
  let p = Prng.create 3 in
  let seen = Array.make 10 false in
  for _ = 1 to 5000 do
    seen.(Prng.int p 10) <- true
  done;
  check cb "all residues reached" true (Array.for_all Fun.id seen)

let test_prng_float_bounds () =
  let p = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.unit_float p in
    check cb "unit interval" true (v >= 0.0 && v < 1.0)
  done

let test_prng_float_mean () =
  let p = Prng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.unit_float p
  done;
  let mean = !sum /. float_of_int n in
  check cb "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_prng_bernoulli_extremes () =
  let p = Prng.create 17 in
  for _ = 1 to 100 do
    check cb "p=0 never" false (Prng.bernoulli p 0.0)
  done;
  for _ = 1 to 100 do
    check cb "p=1 always" true (Prng.bernoulli p 1.0)
  done

let test_prng_split_independent () =
  let p = Prng.create 21 in
  let q = Prng.split p in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 p = Prng.next_int64 q then incr same
  done;
  check cb "split streams diverge" true (!same < 4)

let test_prng_copy () =
  let p = Prng.create 23 in
  ignore (Prng.next_int64 p);
  let q = Prng.copy p in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 p) (Prng.next_int64 q)

let test_prng_shuffle_permutation () =
  let p = Prng.create 29 in
  let arr = Array.init 50 Fun.id in
  let shuffled = Prng.shuffle p arr in
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  check (Alcotest.array ci) "same multiset" arr sorted;
  check cb "original untouched" true (arr = Array.init 50 Fun.id)

let test_prng_choose () =
  let p = Prng.create 31 in
  for _ = 1 to 100 do
    let v = Prng.choose p [| 1; 2; 3 |] in
    check cb "member" true (List.mem v [ 1; 2; 3 ])
  done

let test_prng_exponential_positive () =
  let p = Prng.create 37 in
  for _ = 1 to 1000 do
    check cb "non-negative" true (Prng.exponential p ~mean:2.0 >= 0.0)
  done

let test_prng_pareto_min () =
  let p = Prng.create 41 in
  for _ = 1 to 1000 do
    check cb "at least xm" true (Prng.pareto p ~alpha:1.5 ~xm:0.4 >= 0.4)
  done

(* ---------------- Heap ---------------- *)

let int_heap () = Heap.create ~cmp:compare ~dummy:0 ()

let test_heap_empty () =
  let h = int_heap () in
  check cb "is_empty" true (Heap.is_empty h);
  check ci "length" 0 (Heap.length h);
  check (Alcotest.option ci) "peek" None (Heap.peek_min h);
  check (Alcotest.option ci) "pop" None (Heap.pop_min h)

let test_heap_sorts () =
  let h = int_heap () in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ] in
  List.iter (Heap.push h) input;
  let rec drain acc =
    match Heap.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check (Alcotest.list ci) "ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain [])

let test_heap_duplicates () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 2; 2; 1; 1; 3 ];
  check (Alcotest.list ci) "dups kept" [ 1; 1; 2; 2; 3 ] (Heap.to_list h);
  check ci "length" 5 (Heap.length h)

let test_heap_growth () =
  let h = Heap.create ~capacity:2 ~cmp:compare ~dummy:0 () in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  check ci "all stored" 1000 (Heap.length h);
  check (Alcotest.option ci) "min" (Some 1) (Heap.peek_min h)

let test_heap_to_list_preserves () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 2; 6 ];
  ignore (Heap.to_list h);
  check ci "untouched" 3 (Heap.length h)

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  check cb "cleared" true (Heap.is_empty h)

let test_heap_interleaved () =
  let h = int_heap () in
  Heap.push h 5;
  Heap.push h 1;
  check (Alcotest.option ci) "pop 1" (Some 1) (Heap.pop_min h);
  Heap.push h 3;
  check (Alcotest.option ci) "pop 3" (Some 3) (Heap.pop_min h);
  check (Alcotest.option ci) "pop 5" (Some 5) (Heap.pop_min h)

let test_heap_random_model () =
  let p = Prng.create 99 in
  let h = int_heap () in
  let model = ref [] in
  for _ = 1 to 2000 do
    if Prng.bool p || !model = [] then begin
      let v = Prng.int p 1000 in
      Heap.push h v;
      model := v :: !model
    end
    else begin
      let expected = List.fold_left min max_int !model in
      (match Heap.pop_min h with
      | Some got -> check ci "model min" expected got
      | None -> Alcotest.fail "heap empty but model is not");
      let rec remove_one = function
        | [] -> []
        | x :: rest -> if x = expected then rest else x :: remove_one rest
      in
      model := remove_one !model
    end
  done

(* ---------------- Zipf ---------------- *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~exponent:0.0 in
  for i = 0 to 3 do
    check cb "uniform mass" true (abs_float (Zipf.probability z i -. 0.25) < 1e-9)
  done

let test_zipf_mass_sums_to_one () =
  let z = Zipf.create ~n:10 ~exponent:1.2 in
  let total = ref 0.0 in
  for i = 0 to 9 do
    total := !total +. Zipf.probability z i
  done;
  check cb "sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_monotone () =
  let z = Zipf.create ~n:8 ~exponent:1.0 in
  for i = 0 to 6 do
    check cb "non-increasing" true (Zipf.probability z i >= Zipf.probability z (i + 1) -. 1e-12)
  done

let test_zipf_sample_range () =
  let z = Zipf.create ~n:5 ~exponent:1.5 in
  let p = Prng.create 55 in
  for _ = 1 to 5000 do
    let v = Zipf.sample z p in
    check cb "in support" true (v >= 0 && v < 5)
  done

let test_zipf_sample_skew () =
  let z = Zipf.create ~n:10 ~exponent:2.0 in
  let p = Prng.create 57 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z p in
    counts.(v) <- counts.(v) + 1
  done;
  check cb "rank 0 dominates" true (counts.(0) > counts.(9) * 4)

let test_zipf_single () =
  let z = Zipf.create ~n:1 ~exponent:1.0 in
  let p = Prng.create 59 in
  check ci "only rank" 0 (Zipf.sample z p);
  check cf "prob 1" 1.0 (Zipf.probability z 0)

(* ---------------- Stats ---------------- *)

let test_stats_mean () =
  check cf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check cf "empty" 0.0 (Stats.mean [||])

let test_stats_stddev () =
  check cf "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  let sd = Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check cb "known value" true (abs_float (sd -. 2.13808993) < 1e-6)

let test_stats_percentile () =
  let data = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check cf "p50" 50.0 (Stats.percentile data 0.5);
  check cf "p99" 99.0 (Stats.percentile data 0.99);
  check cf "p100" 100.0 (Stats.percentile data 1.0)

let test_stats_summary () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  check ci "count" 3 s.Stats.count;
  check cf "min" 1.0 s.Stats.min;
  check cf "max" 3.0 s.Stats.max;
  check cf "mean" 2.0 s.Stats.mean

let test_stats_reduction () =
  check cf "90 percent" 90.0 (Stats.reduction ~before:100.0 ~after:10.0);
  check cf "zero before" 0.0 (Stats.reduction ~before:0.0 ~after:10.0)

let () =
  Alcotest.run "support"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_prng_int_rejects_bad_bound;
          Alcotest.test_case "int_in_range" `Quick test_prng_int_in_range;
          Alcotest.test_case "int covers values" `Quick test_prng_int_covers_values;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
          Alcotest.test_case "pareto min" `Quick test_prng_pareto_min;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "to_list preserves" `Quick test_heap_to_list_preserves;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "random model" `Quick test_heap_random_model;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "mass sums to one" `Quick test_zipf_mass_sums_to_one;
          Alcotest.test_case "monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "sample range" `Quick test_zipf_sample_range;
          Alcotest.test_case "sample skew" `Quick test_zipf_sample_skew;
          Alcotest.test_case "single rank" `Quick test_zipf_single;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "reduction" `Quick test_stats_reduction;
        ] );
    ]
