(* Tests for Merge: the paper's merging rules, imperfect degree, and the
   greedy merge pass. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

let xp = Xpe_parser.parse

let universe_of strings =
  List.map
    (fun s -> Array.of_list (String.split_on_char '/' (String.sub s 1 (String.length s - 1))))
    strings

let find_candidate cands merged =
  List.find_opt (fun (m, _) -> Xpe.to_string m = merged) cands

(* ---------------- Rule 1 ---------------- *)

let test_rule1_element_difference () =
  (* Sec. 4.3: a/*/c/d and a/*/c/e merge to a/*/c/*. *)
  let cands = Merge.candidates (List.map xp [ "a/*/c/d"; "a/*/c/e" ]) in
  match find_candidate cands "a/*/c/*" with
  | Some (_, originals) -> check ci "both absorbed" 2 (List.length originals)
  | None -> Alcotest.fail "expected the paper's rule-1 merger a/*/c/*"

let test_rule1_many_candidates () =
  let cands = Merge.candidates (List.map xp [ "/a/b/a"; "/a/b/b"; "/a/b/d" ]) in
  match find_candidate cands "/a/b/*" with
  | Some (_, originals) -> check ci "three absorbed" 3 (List.length originals)
  | None -> Alcotest.fail "expected /a/b/*"

let test_rule1_needs_two () =
  let cands = Merge.candidates [ xp "/a/b" ] in
  check ci "no candidates from one" 0 (List.length cands)

let test_rule1_respects_relativity () =
  (* A relative and an absolute XPE never merge positionally. *)
  let cands = Merge.candidates (List.map xp [ "/a/b"; "a/c" ]) in
  check cb "no cross-relativity merger" true
    (List.for_all (fun (m, _) -> Xpe.to_string m <> "a/*" && Xpe.to_string m <> "/a/*") cands)

(* ---------------- Rule 2 ---------------- *)

let test_rule2_operator_and_element () =
  (* Sec. 4.3: /a/c/+/* and /a//c/+/c -> /a//c/+/* (writing + for the
     wildcard step kept literal). *)
  let cands = Merge.candidates (List.map xp [ "/a/c/*/*"; "/a//c/*/c" ]) in
  match find_candidate cands "/a//c/*/*" with
  | Some _ -> ()
  | None -> Alcotest.fail "expected the paper's rule-2 merger /a//c/*/*"

(* ---------------- Rule 3 ---------------- *)

let test_rule3_infix_replacement () =
  let cands = Merge.candidates (List.map xp [ "/a/x/y/d"; "/a/q/d" ]) in
  check cb "prefix//suffix offered" true
    (match find_candidate cands "/a//d" with Some _ -> true | None -> false)

let test_rule3_disabled () =
  let cands = Merge.candidates ~enable_rule3:false (List.map xp [ "/a/x/y/d"; "/a/q/d" ]) in
  check cb "disabled" true (find_candidate cands "/a//d" = None)

(* ---------------- Coverage verification ---------------- *)

let test_all_candidates_cover_originals () =
  let xpes = List.map xp [ "/a/b/c"; "/a/b/d"; "/a/c/c"; "/a//d"; "b/c"; "b/d"; "/a/*/c" ] in
  let cands = Merge.candidates xpes in
  check cb "have candidates" true (cands <> []);
  List.iter
    (fun (m, originals) ->
      List.iter
        (fun o ->
          check cb
            (Printf.sprintf "%s covers %s" (Xpe.to_string m) (Xpe.to_string o))
            true
            (Xroute_automata.Lang.xpe_contains m o))
        originals)
    cands

(* ---------------- Imperfect degree ---------------- *)

let test_degree_perfect () =
  (* universe where the merger is exactly the union *)
  let universe = universe_of [ "/a/b/c"; "/a/b/d" ] in
  let m = xp "/a/b/*" in
  let originals = List.map xp [ "/a/b/c"; "/a/b/d" ] in
  check cf "perfect" 0.0 (Merge.imperfect_degree ~universe m originals)

let test_degree_paper_example () =
  (* Sec. 4.3: merging s1 = /a/*/c/d, s2 = /a/*/c/e into /a/*/c/* when
     the DTD allows a,b,c,d,e at the fourth position gives 60% false
     positives at that position. *)
  let universe =
    universe_of [ "/a/x/c/a"; "/a/x/c/b"; "/a/x/c/c"; "/a/x/c/d"; "/a/x/c/e" ]
  in
  let m = xp "/a/*/c/*" in
  let originals = List.map xp [ "/a/*/c/d"; "/a/*/c/e" ] in
  check cf "3 of 5" 0.6 (Merge.imperfect_degree ~universe m originals)

let test_degree_empty_universe () =
  check cf "empty universe treated as perfect" 0.0
    (Merge.imperfect_degree ~universe:[] (xp "/a/*") [ xp "/a/b" ])

(* ---------------- merge_set ---------------- *)

let test_merge_set_perfect_only () =
  let universe = universe_of [ "/a/b/c"; "/a/b/d"; "/a/c/x"; "/a/c/y"; "/a/c/z" ] in
  let xpes = List.map xp [ "/a/b/c"; "/a/b/d"; "/a/c/x"; "/a/c/y" ] in
  let applied, kept = Merge.merge_set ~max_degree:0.0 ~universe xpes in
  (* /a/b/* is perfect (c,d are the only b-children in the universe);
     /a/c/* is imperfect (z exists). *)
  check ci "one perfect merger" 1 (List.length applied);
  check ci "two kept" 2 (List.length kept);
  let m = List.hd applied in
  check Alcotest.string "tightest merger" "/a/b/*" (Xpe.to_string m.Merge.xpe);
  check cf "degree zero" 0.0 m.Merge.degree

let test_merge_set_imperfect () =
  let universe = universe_of [ "/a/b/c"; "/a/b/d"; "/a/c/x"; "/a/c/y"; "/a/c/z" ] in
  let xpes = List.map xp [ "/a/b/c"; "/a/b/d"; "/a/c/x"; "/a/c/y" ] in
  let applied, kept = Merge.merge_set ~max_degree:0.4 ~universe xpes in
  check ci "two mergers" 2 (List.length applied);
  check ci "none kept" 0 (List.length kept)

let test_merge_set_disjoint_consumption () =
  (* Each original joins at most one merger. *)
  let universe = universe_of [ "/a/b/c"; "/a/b/d"; "/a/b/e" ] in
  let xpes = List.map xp [ "/a/b/c"; "/a/b/d"; "/a/b/e" ] in
  let applied, kept = Merge.merge_set ~max_degree:0.0 ~universe xpes in
  let absorbed = List.concat_map (fun m -> m.Merge.originals) applied in
  check ci "every original exactly once" (List.length xpes)
    (List.length absorbed + List.length kept);
  check ci "no duplicates" (List.length absorbed)
    (List.length (List.sort_uniq Xpe.compare absorbed))

let test_merge_set_threshold_zero_blocks_imperfect () =
  let universe = universe_of [ "/a/c/x"; "/a/c/y"; "/a/c/z" ] in
  let xpes = List.map xp [ "/a/c/x"; "/a/c/y" ] in
  let applied, kept = Merge.merge_set ~max_degree:0.0 ~universe xpes in
  check ci "nothing merged" 0 (List.length applied);
  check ci "all kept" 2 (List.length kept)

let test_merge_set_scales () =
  (* Hash-based discovery stays fast on thousands of XPEs. *)
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.psd in
  let prng = Xroute_support.Prng.create 31337 in
  let params = Xroute_workload.Xpath_gen.default_params dtd in
  let xpes = Xroute_workload.Xpath_gen.generate params prng ~count:2000 in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let universe = Xroute_dtd.Dtd_paths.enumerate_paths ~max_depth:10 ~max_count:2000 graph in
  let t0 = Unix.gettimeofday () in
  let applied, _ = Merge.merge_set ~max_degree:0.1 ~universe xpes in
  let elapsed = Unix.gettimeofday () -. t0 in
  check cb "some mergers found" true (List.length applied > 0);
  (* generous bound: the suite may run under heavy CPU contention *)
  check cb "fast enough (<90s)" true (elapsed < 90.0)

let () =
  Alcotest.run "merge"
    [
      ( "rule1",
        [
          Alcotest.test_case "element difference" `Quick test_rule1_element_difference;
          Alcotest.test_case "many" `Quick test_rule1_many_candidates;
          Alcotest.test_case "needs two" `Quick test_rule1_needs_two;
          Alcotest.test_case "relativity" `Quick test_rule1_respects_relativity;
        ] );
      ("rule2", [ Alcotest.test_case "operator+element" `Quick test_rule2_operator_and_element ]);
      ( "rule3",
        [
          Alcotest.test_case "infix" `Quick test_rule3_infix_replacement;
          Alcotest.test_case "disabled" `Quick test_rule3_disabled;
        ] );
      ("soundness", [ Alcotest.test_case "mergers cover originals" `Quick test_all_candidates_cover_originals ]);
      ( "degree",
        [
          Alcotest.test_case "perfect" `Quick test_degree_perfect;
          Alcotest.test_case "paper 60%" `Quick test_degree_paper_example;
          Alcotest.test_case "empty universe" `Quick test_degree_empty_universe;
        ] );
      ( "merge_set",
        [
          Alcotest.test_case "perfect only" `Quick test_merge_set_perfect_only;
          Alcotest.test_case "imperfect" `Quick test_merge_set_imperfect;
          Alcotest.test_case "disjoint consumption" `Quick test_merge_set_disjoint_consumption;
          Alcotest.test_case "zero threshold" `Quick test_merge_set_threshold_zero_blocks_imperfect;
          Alcotest.test_case "scales" `Slow test_merge_set_scales;
        ] );
    ]
