test/test_merge.ml: Alcotest Array Lazy List Merge Printf String Unix Xpe Xpe_parser Xroute_automata Xroute_core Xroute_dtd Xroute_support Xroute_workload Xroute_xpath
