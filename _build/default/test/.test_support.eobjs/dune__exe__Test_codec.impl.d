test/test_codec.ml: Adv Alcotest Array Codec List Message QCheck QCheck_alcotest Xpe Xpe_parser Xroute_core Xroute_xml Xroute_xpath
