test/test_xpath.ml: Adv Alcotest Array List String Xpe Xpe_eval Xpe_parser Xroute_xml Xroute_xpath
