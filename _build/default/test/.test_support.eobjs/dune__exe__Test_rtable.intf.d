test/test_rtable.mli:
