test/test_subtree.mli:
