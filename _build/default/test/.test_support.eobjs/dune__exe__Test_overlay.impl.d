test/test_overlay.ml: Alcotest Array Hashtbl Latency Lazy List Net Option Sim String Topology Xroute_core Xroute_dtd Xroute_overlay Xroute_support Xroute_workload Xroute_xml Xroute_xpath
