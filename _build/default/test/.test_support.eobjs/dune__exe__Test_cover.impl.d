test/test_cover.ml: Adv Alcotest Cover List Xpe Xpe_parser Xroute_automata Xroute_core Xroute_support Xroute_xpath
