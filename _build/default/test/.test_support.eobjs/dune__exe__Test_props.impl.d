test/test_props.ml: Adv Alcotest Array List Option QCheck QCheck_alcotest String Xpe Xpe_eval Xpe_parser Xroute_automata Xroute_core Xroute_obs Xroute_overlay Xroute_support Xroute_xml Xroute_xpath
