test/test_daemon.ml: Alcotest Client Daemon List String Thread Xroute_core Xroute_daemon Xroute_xml Xroute_xpath
