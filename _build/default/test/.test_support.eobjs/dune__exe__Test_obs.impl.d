test/test_obs.ml: Alcotest Array List Metrics String Trace Xroute_obs Xroute_overlay Xroute_support
