test/test_differential.ml: Alcotest Array Lazy List Message Printf Rtable String Xpe Xpe_eval Xroute_core Xroute_dtd Xroute_workload Xroute_xml Xroute_xpath Yfilter
