test/test_fuzz.ml: Alcotest Hashtbl Lazy List Net Option Topology Xroute_core Xroute_dtd Xroute_overlay Xroute_support Xroute_workload Xroute_xpath
