test/test_broker.ml: Adv Alcotest Array Broker List Message Rtable String Xpe_parser Xroute_core Xroute_xml Xroute_xpath
