test/test_integration.ml: Alcotest Hashtbl Lazy List Net Printf Topology Xroute_core Xroute_dtd Xroute_overlay Xroute_support Xroute_workload Xroute_xml Xroute_xpath
