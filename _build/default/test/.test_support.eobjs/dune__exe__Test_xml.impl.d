test/test_xml.ml: Alcotest Array List String Xml_parser Xml_paths Xml_printer Xml_tree Xroute_xml
