test/test_yfilter.ml: Alcotest Array List String Sub_tree Xpe Xpe_parser Xroute_core Xroute_support Xroute_xpath Yfilter
