test/test_dtd.ml: Alcotest Array Dtd_ast Dtd_graph Dtd_parser Dtd_paths Dtd_printer Dtd_samples Dtd_validate Hashtbl List Option String Xroute_dtd Xroute_support Xroute_xml Xroute_xpath
