test/test_support.ml: Alcotest Array Fun Heap List Prng Stats Xroute_support Zipf
