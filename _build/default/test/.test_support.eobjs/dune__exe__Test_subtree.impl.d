test/test_subtree.ml: Alcotest Array List String Sub_tree Xpe Xpe_parser Xroute_core Xroute_support Xroute_xpath
