test/test_workload.ml: Alcotest Lazy List Printf Workload Xml_gen Xpath_gen Xroute_dtd Xroute_support Xroute_workload Xroute_xml Xroute_xpath
