test/test_match.ml: Adv Adv_match Alcotest Array List String Xpe Xpe_parser Xroute_core Xroute_support Xroute_xpath
