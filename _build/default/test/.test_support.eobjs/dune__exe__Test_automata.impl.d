test/test_automata.ml: Adv Alcotest Array Lang List Nfa Printf Regex String Xpe_eval Xpe_parser Xroute_automata Xroute_xpath
