test/test_rtable.ml: Adv Adv_match Alcotest List Message Rtable Sub_tree Xpe Xpe_parser Xroute_core Xroute_xml Xroute_xpath
