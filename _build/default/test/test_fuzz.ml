(* Protocol fuzzing: random interleavings of advertise / subscribe /
   unsubscribe / publish over random topologies, for every routing
   strategy, checked against a centralized oracle.

   The oracle knows every active subscription directly; at quiescence,
   a client must have received exactly the documents that match at least
   one of the subscriptions it held when the document was published and
   whose publisher had advertised a covering advertisement set. *)

open Xroute_overlay

let check = Alcotest.check
let cb = Alcotest.bool

(* One fuzzing round. *)
let run_round ~seed ~strategy_name =
  let prng = Xroute_support.Prng.create seed in
  let dtd =
    Xroute_support.Prng.choose_list prng
      [ Lazy.force Xroute_dtd.Dtd_samples.book; Lazy.force Xroute_dtd.Dtd_samples.insurance ]
  in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let strategy = Option.get (Xroute_core.Broker.strategy_of_name strategy_name) in
  let topo =
    match Xroute_support.Prng.int prng 3 with
    | 0 -> Topology.binary_tree ~levels:3
    | 1 -> Topology.line (2 + Xroute_support.Prng.int prng 5)
    | _ -> Topology.random_tree prng (3 + Xroute_support.Prng.int prng 8)
  in
  let net = Net.create ~config:{ Net.default_config with Net.strategy; seed } topo in
  let n_brokers = Topology.broker_count topo in
  let publisher = Net.add_client net ~broker:(Xroute_support.Prng.int prng n_brokers) in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  let clients =
    List.init 3 (fun _ -> Net.add_client net ~broker:(Xroute_support.Prng.int prng n_brokers))
  in
  let params = Xroute_workload.Xpath_gen.default_params dtd in
  (* oracle state: active subscriptions per client; expected deliveries *)
  let subs : (int * Xroute_core.Message.sub_id * Xroute_xpath.Xpe.t) list ref = ref [] in
  let expected : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let gen_prng = Xroute_support.Prng.create (seed + 1) in
  let doc_counter = ref 0 in
  for _ = 1 to 40 do
    (match Xroute_support.Prng.int prng 4 with
    | 0 | 1 ->
      (* subscribe a random client; sometimes duplicate an existing XPE
         (shared-node / survivor interplay) *)
      let c = Xroute_support.Prng.choose_list prng clients in
      let xpe =
        match !subs with
        | (_, _, existing) :: _ when Xroute_support.Prng.bernoulli prng 0.3 -> existing
        | _ -> Xroute_workload.Xpath_gen.generate_one params prng
      in
      let id = Net.subscribe net c xpe in
      subs := (c.Net.cid, id, xpe) :: !subs
    | 2 ->
      (* unsubscribe something, if any *)
      (match !subs with
      | [] -> ()
      | l ->
        let cid, id, _ = List.nth l (Xroute_support.Prng.int prng (List.length l)) in
        (match List.find_opt (fun (c : Net.client) -> c.Net.cid = cid) clients with
        | Some c -> Net.unsubscribe net c id
        | None -> ());
        subs := List.filter (fun (_, i, _) -> Xroute_core.Message.compare_sub_id i id <> 0) l)
    | _ ->
      (* publish a random document; record oracle expectations against
         the subscriptions active right now *)
      let doc =
        Xroute_workload.Xml_gen.generate (Xroute_workload.Xml_gen.default_params dtd) gen_prng
      in
      let doc_id = !doc_counter in
      incr doc_counter;
      List.iter
        (fun (cid, _, xpe) ->
          if
            Xroute_xpath.Xpe_eval.matches_document xpe doc
            && (match List.find_opt (fun (c : Net.client) -> c.Net.cid = cid) clients with
               | Some c -> c.Net.cid <> publisher.Net.cid || c.Net.home <> publisher.Net.home
               | None -> false)
          then Hashtbl.replace expected (cid, doc_id) ())
        !subs;
      ignore (Net.publish_doc net publisher ~doc_id doc));
    (* settle the network between operations so the oracle's notion of
       "active at publication time" matches the network's *)
    Net.run net
  done;
  Net.run net;
  (* compare *)
  let got : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (c : Net.client) ->
      Hashtbl.iter (fun doc _ -> Hashtbl.replace got (c.Net.cid, doc) ()) c.Net.delivered)
    clients;
  let missing = ref [] in
  Hashtbl.iter (fun k () -> if not (Hashtbl.mem got k) then missing := k :: !missing) expected;
  let spurious = ref [] in
  Hashtbl.iter (fun k () -> if not (Hashtbl.mem expected k) then spurious := k :: !spurious) got;
  (!missing, !spurious)

let test_strategy strategy_name () =
  for seed = 1 to 25 do
    let missing, spurious = run_round ~seed ~strategy_name in
    if missing <> [] then
      Alcotest.failf "seed %d: %d expected deliveries missing (e.g. client %d doc %d)" seed
        (List.length missing)
        (fst (List.hd missing))
        (snd (List.hd missing));
    if spurious <> [] then
      Alcotest.failf "seed %d: %d spurious deliveries (e.g. client %d doc %d)" seed
        (List.length spurious)
        (fst (List.hd spurious))
        (snd (List.hd spurious))
  done;
  check cb "ran" true true

let () =
  Alcotest.run "fuzz"
    [
      ( "protocol vs oracle",
        List.map
          (fun name -> Alcotest.test_case name `Slow (test_strategy name))
          Xroute_core.Broker.strategy_names );
    ]
