(* End-to-end integration tests: full DTD-to-delivery pipelines over
   multi-broker overlays, exercising the system as the examples and
   benchmarks use it. *)

open Xroute_overlay

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let xp = Xroute_xpath.Xpe_parser.parse

(* Full pipeline on the insurance DTD over the 7-broker tree: the
   motivating scenario of the paper's introduction. *)
let test_insurance_pipeline () =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.insurance in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let topo = Topology.binary_tree ~levels:3 in
  let net = Net.create topo in
  let broker_office = Net.add_client net ~broker:0 in
  let expert_auto = Net.add_client net ~broker:3 in
  let expert_home = Net.add_client net ~broker:6 in
  ignore (Net.advertise_dtd net broker_office advs);
  Net.run net;
  (* the auto expert wants auto incidents; the home expert, home ones *)
  ignore (Net.subscribe net expert_auto (xp "/insurance/claim/incident[@kind='auto']"));
  ignore (Net.subscribe net expert_home (xp "/insurance/claim/incident[@kind='home']"));
  Net.run net;
  let claim kind =
    Xroute_xml.Xml_parser.parse
      (Printf.sprintf
         {|<insurance><claim urgency="high"><claimant><person><name>N</name></person><contact><email>e</email></contact></claimant><policy><holder>H</holder><coverage>c1</coverage></policy><incident kind="%s"><date>d</date><location><city>T</city><country>CA</country></location><description>x</description></incident></claim></insurance>|}
         kind)
  in
  ignore (Net.publish_doc net broker_office ~doc_id:1 (claim "auto"));
  ignore (Net.publish_doc net broker_office ~doc_id:2 (claim "home"));
  ignore (Net.publish_doc net broker_office ~doc_id:3 (claim "travel"));
  Net.run net;
  let got c = List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) c.Net.delivered []) in
  check (Alcotest.list ci) "auto expert got doc 1" [ 1 ] (got expert_auto);
  check (Alcotest.list ci) "home expert got doc 2" [ 2 ] (got expert_home)

(* News dissemination over the 127-broker tree with the NITF-like DTD:
   subscriptions at every leaf, one publisher; exercises recursive
   advertisements end to end. *)
let test_nitf_127_brokers () =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.nitf in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let topo = Topology.binary_tree ~levels:7 in
  let net = Net.create topo in
  let publisher = Net.add_client net ~broker:0 in
  let leaves = Topology.binary_tree_leaves ~levels:7 in
  (* a subscriber on every 8th leaf keeps the test quick *)
  let subscribers =
    List.filteri (fun i _ -> i mod 8 = 0) leaves
    |> List.map (fun b -> Net.add_client net ~broker:b)
  in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  List.iter
    (fun c ->
      ignore (Net.subscribe net c (xp "/nitf/body/body.content//p"));
      ignore (Net.subscribe net c (xp "//hl1")))
    subscribers;
  Net.run net;
  let docs = Xroute_workload.Workload.documents ~dtd ~count:5 ~seed:3 () in
  List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
  Net.run net;
  (* at least one document must reach every subscriber (every generated
     document has a body; most have headlines or paragraphs) *)
  let reached =
    List.filter (fun c -> Hashtbl.length c.Net.delivered > 0) subscribers
  in
  check cb "most subscribers reached" true
    (List.length reached >= List.length subscribers / 2);
  (* all subscribers with equal subscriptions got identical doc sets *)
  let doc_sets =
    List.map
      (fun c -> List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) c.Net.delivered []))
      subscribers
  in
  (match doc_sets with
  | first :: rest -> List.iter (fun s -> check cb "same docs everywhere" true (s = first)) rest
  | [] -> ());
  (* routing state exists on interior brokers *)
  check cb "interior brokers hold routing state" true (Net.total_prt_size net > 0)

(* Unsubscription: deliveries stop, tables shrink back. *)
let test_unsubscribe_lifecycle () =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let topo = Topology.line 4 in
  let net = Net.create topo in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:3 in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  let sub_id = Net.subscribe net subscriber (xp "/book/title") in
  Net.run net;
  let table_with_sub = Net.total_prt_size net in
  check cb "tables populated" true (table_with_sub >= 4);
  ignore (Net.publish_doc net publisher ~doc_id:1
            (Xroute_xml.Xml_parser.parse "<book><title>t</title><author><name>n</name></author><chapter><title>c</title><section><title>s</title></section></chapter></book>"));
  Net.run net;
  check ci "delivered before unsub" 1 (Net.total_deliveries net);
  Net.unsubscribe net subscriber sub_id;
  Net.run net;
  check ci "tables empty after unsub" 0 (Net.total_prt_size net);
  ignore (Net.publish_doc net publisher ~doc_id:2
            (Xroute_xml.Xml_parser.parse "<book><title>t2</title><author><name>n</name></author><chapter><title>c</title><section><title>s</title></section></chapter></book>"));
  Net.run net;
  check ci "no further delivery" 1 (Net.total_deliveries net)

(* Late advertiser: subscriptions registered before any advertisement
   reach a publisher that advertises afterwards. *)
let test_late_advertiser () =
  let topo = Topology.line 3 in
  let net = Net.create topo in
  let subscriber = Net.add_client net ~broker:2 in
  ignore (Net.subscribe net subscriber (xp "/a/b"));
  Net.run net;
  let publisher = Net.add_client net ~broker:0 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/b"));
  Net.run net;
  ignore (Net.publish_doc net publisher ~doc_id:5 (Xroute_xml.Xml_parser.parse "<a><b/></a>"));
  Net.run net;
  check ci "delivered despite late adv" 1 (Net.total_deliveries net)

(* Two publishers with different DTDs: subscriptions only travel towards
   the relevant one (advertisement-based routing at work). *)
let test_selective_routing_two_publishers () =
  let topo = Topology.line 5 in
  let net = Net.create topo in
  let pub_book = Net.add_client net ~broker:0 in
  let pub_psd = Net.add_client net ~broker:4 in
  let subscriber = Net.add_client net ~broker:2 in
  let book_graph = Xroute_dtd.Dtd_graph.build (Lazy.force Xroute_dtd.Dtd_samples.book) in
  let psd_graph = Xroute_dtd.Dtd_graph.build (Lazy.force Xroute_dtd.Dtd_samples.psd) in
  ignore (Net.advertise_dtd net pub_book (Xroute_dtd.Dtd_paths.advertisements book_graph));
  ignore (Net.advertise_dtd net pub_psd (Xroute_dtd.Dtd_paths.advertisements psd_graph));
  Net.run net;
  ignore (Net.subscribe net subscriber (xp "/book/title"));
  Net.run net;
  (* broker 3 (towards the PSD publisher) must not hold the book sub *)
  check ci "book sub absent towards psd" 0
    (Xroute_core.Broker.prt_size (Net.broker net 3));
  check cb "book sub present towards book" true
    (Xroute_core.Broker.prt_size (Net.broker net 1) > 0)

(* The XTreeNet-style trail ablation delivers identically. *)
let test_trail_routing_equivalence () =
  let run trail_routing =
    let strategy = { Xroute_core.Broker.default_strategy with Xroute_core.Broker.trail_routing } in
    let topo = Topology.binary_tree ~levels:3 in
    let net = Net.create ~config:{ Net.default_config with Net.strategy } topo in
    let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
    let graph = Xroute_dtd.Dtd_graph.build dtd in
    let publisher = Net.add_client net ~broker:0 in
    let leaves = Topology.binary_tree_leaves ~levels:3 in
    let subs = List.map (fun b -> Net.add_client net ~broker:b) leaves in
    ignore (Net.advertise_dtd net publisher (Xroute_dtd.Dtd_paths.advertisements graph));
    Net.run net;
    let prng = Xroute_support.Prng.create 55 in
    let params = Xroute_workload.Xpath_gen.default_params dtd in
    List.iter
      (fun c ->
        List.iter (fun x -> ignore (Net.subscribe net c x))
          (Xroute_workload.Xpath_gen.generate params prng ~count:10))
      subs;
    Net.run net;
    let docs = Xroute_workload.Workload.documents ~dtd ~count:6 ~seed:12 () in
    List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
    Net.run net;
    List.concat_map
      (fun (c : Net.client) ->
        Hashtbl.fold (fun doc _ acc -> (c.Net.cid, doc) :: acc) c.Net.delivered [])
      (Net.clients net)
    |> List.sort compare
  in
  let plain = run false and trails = run true in
  check cb "same deliveries" true (plain = trails);
  check cb "something delivered" true (plain <> [])

(* Documents assembled from path publications: a subscriber receives the
   doc id exactly once regardless of how many of its paths match. *)
let test_document_dedup () =
  let topo = Topology.line 2 in
  let net = Net.create topo in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:1 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/b"));
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/c"));
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/d"));
  Net.run net;
  ignore (Net.subscribe net subscriber (xp "/a"));
  Net.run net;
  ignore (Net.publish_doc net publisher ~doc_id:42
            (Xroute_xml.Xml_parser.parse "<a><b/><c/><d/></a>"));
  Net.run net;
  let c = List.hd (Net.clients net) in
  let c = if c.Net.cid = subscriber.Net.cid then c else List.nth (Net.clients net) 1 in
  check ci "doc delivered once" 1 (Hashtbl.length c.Net.delivered);
  check ci "but three path messages" 3 c.Net.path_messages

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "insurance scenario" `Quick test_insurance_pipeline;
          Alcotest.test_case "nitf over 127 brokers" `Slow test_nitf_127_brokers;
          Alcotest.test_case "unsubscribe lifecycle" `Quick test_unsubscribe_lifecycle;
          Alcotest.test_case "late advertiser" `Quick test_late_advertiser;
          Alcotest.test_case "selective routing" `Quick test_selective_routing_two_publishers;
          Alcotest.test_case "trail routing equivalence" `Quick test_trail_routing_equivalence;
          Alcotest.test_case "document dedup" `Quick test_document_dedup;
        ] );
    ]
