(* Focused tests for the routing tables (SRT and PRT) complementing the
   protocol-level broker tests. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let xp = Xpe_parser.parse
let ad = Adv.parse
let sid o s = { Message.origin = o; seq = s }
let n i = Rtable.Neighbor i
let c i = Rtable.Client i

let pub s = Xroute_xml.Xml_paths.publication_of_string s

(* ---------------- endpoints ---------------- *)

let test_endpoint_equal () =
  check cb "same neighbor" true (Rtable.endpoint_equal (n 1) (n 1));
  check cb "diff neighbor" false (Rtable.endpoint_equal (n 1) (n 2));
  check cb "kind mismatch" false (Rtable.endpoint_equal (n 1) (c 1));
  check cb "same client" true (Rtable.endpoint_equal (c 3) (c 3))

(* ---------------- SRT ---------------- *)

let test_srt_recursive_advertisements () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a(/b)+/c") (n 4));
  check ci "deep sub routed" 1 (List.length (Rtable.Srt.hops_for_sub srt (xp "/a/b/b/b/c")));
  check ci "mismatch not" 0 (List.length (Rtable.Srt.hops_for_sub srt (xp "/a/c/c")))

let test_srt_ids_from () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 2) (ad "/b") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 3) (ad "/c") (n 2));
  check ci "two from n1" 2 (List.length (Rtable.Srt.ids_from srt (n 1)));
  check ci "one from n2" 1 (List.length (Rtable.Srt.ids_from srt (n 2)));
  check ci "none from n3" 0 (List.length (Rtable.Srt.ids_from srt (n 3)))

let test_srt_match_ops_counted () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 2) (ad "/b") (n 2));
  let before = Rtable.Srt.match_ops srt in
  ignore (Rtable.Srt.hops_for_sub srt (xp "/a"));
  check ci "one op per entry" 2 (Rtable.Srt.match_ops srt - before)

let test_srt_exact_engine () =
  let srt = Rtable.Srt.create ~engine:Adv_match.Exact () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a/b") (n 1));
  check ci "exact engine works" 1 (List.length (Rtable.Srt.hops_for_sub srt (xp "//b")))

let test_srt_remove_missing () =
  let srt = Rtable.Srt.create () in
  check cb "remove absent" true (Rtable.Srt.remove srt (sid 9 9) = None)

(* ---------------- PRT ---------------- *)

let test_prt_ids_and_find () =
  let prt = Rtable.Prt.create () in
  let _ = Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1) in
  check cb "mem" true (Rtable.Prt.mem prt (sid 2 1));
  check cb "not mem" false (Rtable.Prt.mem prt (sid 2 2));
  (match Rtable.Prt.find prt (sid 2 1) with
  | Some (node, payload) ->
    check cb "node holds xpe" true (Xpe.equal (Sub_tree.node_xpe node) (xp "/a"));
    check cb "payload hop" true (Rtable.endpoint_equal payload.Rtable.Prt.hop (n 1))
  | None -> Alcotest.fail "find failed")

let test_prt_equal_xpes_one_node () =
  let prt = Rtable.Prt.create () in
  let n1, _ = Rtable.Prt.insert prt (sid 2 1) (xp "/a/b") (n 1) in
  let n2, _ = Rtable.Prt.insert prt (sid 3 1) (xp "/a/b") (n 2) in
  check cb "shared node" true (n1 == n2);
  check ci "size counts distinct XPEs" 1 (Rtable.Prt.size prt);
  check ci "payloads kept" 2 (Sub_tree.payload_count (Rtable.Prt.tree prt));
  (* publication matches both hops *)
  check ci "two payloads" 2 (List.length (Rtable.Prt.match_pub prt (pub "/a/b")))

let test_prt_remove_keeps_sharing () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  ignore (Rtable.Prt.insert prt (sid 3 1) (xp "/a") (n 2));
  (match Rtable.Prt.remove prt (sid 2 1) with
  | Some (_, _, was_sole, _) -> check cb "not sole payload" false was_sole
  | None -> Alcotest.fail "remove failed");
  check ci "node still present" 1 (Rtable.Prt.size prt);
  check ci "still matches" 1 (List.length (Rtable.Prt.match_pub prt (pub "/a/b")))

let test_prt_covering_queries () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  ignore (Rtable.Prt.insert prt (sid 2 2) (xp "/a/b") (n 2));
  check cb "covered" true (Rtable.Prt.is_covered prt (xp "/a/b/c"));
  check cb "not covered" false (Rtable.Prt.is_covered prt (xp "/z"));
  check ci "covered maximal" 1 (List.length (Rtable.Prt.covered_maximal prt (xp "/*")))

let test_prt_flat_mode () =
  let prt = Rtable.Prt.create ~flat:true () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  ignore (Rtable.Prt.insert prt (sid 2 2) (xp "/a/b") (n 2));
  check cb "flat: no covering" false (Rtable.Prt.is_covered prt (xp "/a/b"));
  check ci "flat: still matches" 2 (List.length (Rtable.Prt.match_pub prt (pub "/a/b")))

let test_prt_attr_matching () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a[@k='v']") (c 1));
  let p_ok =
    { (pub "/a/b") with Xroute_xml.Xml_paths.attrs = [| [ ("k", "v") ]; [] |] }
  in
  let p_bad =
    { (pub "/a/b") with Xroute_xml.Xml_paths.attrs = [| [ ("k", "w") ]; [] |] }
  in
  check ci "attr match" 1 (List.length (Rtable.Prt.match_pub prt p_ok));
  check ci "attr mismatch" 0 (List.length (Rtable.Prt.match_pub prt p_bad))

let test_prt_counters_move () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  let m0 = Rtable.Prt.match_checks prt in
  ignore (Rtable.Prt.match_pub prt (pub "/a/b"));
  check cb "match checks counted" true (Rtable.Prt.match_checks prt > m0)

let () =
  Alcotest.run "rtable"
    [
      ("endpoints", [ Alcotest.test_case "equality" `Quick test_endpoint_equal ]);
      ( "srt",
        [
          Alcotest.test_case "recursive advs" `Quick test_srt_recursive_advertisements;
          Alcotest.test_case "ids_from" `Quick test_srt_ids_from;
          Alcotest.test_case "match ops" `Quick test_srt_match_ops_counted;
          Alcotest.test_case "exact engine" `Quick test_srt_exact_engine;
          Alcotest.test_case "remove missing" `Quick test_srt_remove_missing;
        ] );
      ( "prt",
        [
          Alcotest.test_case "ids and find" `Quick test_prt_ids_and_find;
          Alcotest.test_case "equal xpes share" `Quick test_prt_equal_xpes_one_node;
          Alcotest.test_case "remove sharing" `Quick test_prt_remove_keeps_sharing;
          Alcotest.test_case "covering queries" `Quick test_prt_covering_queries;
          Alcotest.test_case "flat mode" `Quick test_prt_flat_mode;
          Alcotest.test_case "attribute matching" `Quick test_prt_attr_matching;
          Alcotest.test_case "counters" `Quick test_prt_counters_move;
        ] );
    ]
