(* Tests for the workload generators. *)

open Xroute_workload

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let dtd = Lazy.force Xroute_dtd.Dtd_samples.psd
let nitf = Lazy.force Xroute_dtd.Dtd_samples.nitf

(* ---------------- Xpath_gen ---------------- *)

let test_xpath_gen_count_and_distinct () =
  let prng = Xroute_support.Prng.create 1 in
  let xpes = Xpath_gen.generate (Xpath_gen.default_params dtd) prng ~count:500 in
  check ci "count" 500 (List.length xpes);
  let distinct = List.sort_uniq Xroute_xpath.Xpe.compare xpes in
  check ci "distinct" 500 (List.length distinct)

let test_xpath_gen_depth_bounds () =
  let prng = Xroute_support.Prng.create 2 in
  let params = { (Xpath_gen.default_params dtd) with Xpath_gen.min_depth = 2; max_depth = 6 } in
  let xpes = Xpath_gen.generate params prng ~count:300 in
  List.iter
    (fun x ->
      let l = Xroute_xpath.Xpe.length x in
      check cb "length bounded" true (l >= 1 && l <= 6))
    xpes

let test_xpath_gen_wildcard_knob () =
  let prng = Xroute_support.Prng.create 3 in
  let none =
    Xpath_gen.generate
      { (Xpath_gen.default_params dtd) with Xpath_gen.wildcard_prob = 0.0 }
      prng ~count:200
  in
  check cb "no wildcards at W=0" true
    (List.for_all (fun x -> not (Xroute_xpath.Xpe.has_wildcard x)) none);
  let many =
    Xpath_gen.generate
      { (Xpath_gen.default_params dtd) with Xpath_gen.wildcard_prob = 0.9 }
      prng ~count:200
  in
  check cb "mostly wildcards at W=0.9" true
    (List.length (List.filter Xroute_xpath.Xpe.has_wildcard many) > 150)

let test_xpath_gen_desc_knob () =
  let prng = Xroute_support.Prng.create 4 in
  let none =
    Xpath_gen.generate
      { (Xpath_gen.default_params dtd) with Xpath_gen.desc_prob = 0.0; relative_prob = 0.0 }
      prng ~count:200
  in
  check cb "simple at DO=0" true (List.for_all Xroute_xpath.Xpe.is_simple none)

let test_xpath_gen_relative_knob () =
  let prng = Xroute_support.Prng.create 5 in
  let all_rel =
    Xpath_gen.generate
      { (Xpath_gen.default_params dtd) with Xpath_gen.relative_prob = 1.0 }
      prng ~count:100
  in
  check cb "relative generated" true
    (List.exists Xroute_xpath.Xpe.is_relative all_rel)

let test_xpath_gen_queries_match_dtd () =
  (* Wildcard-free absolute queries walk real DTD paths, so each name
     appears in the DTD. *)
  let prng = Xroute_support.Prng.create 6 in
  let params =
    { (Xpath_gen.default_params dtd) with Xpath_gen.wildcard_prob = 0.0; relative_prob = 0.0 }
  in
  let xpes = Xpath_gen.generate params prng ~count:100 in
  List.iter
    (fun x ->
      List.iter
        (fun n ->
          check cb ("declared name " ^ n) true (Xroute_dtd.Dtd_ast.find dtd n <> None))
        (Xroute_xpath.Xpe.names x))
    xpes

let test_xpath_gen_deterministic () =
  let a = Xpath_gen.generate (Xpath_gen.default_params dtd) (Xroute_support.Prng.create 9) ~count:50 in
  let b = Xpath_gen.generate (Xpath_gen.default_params dtd) (Xroute_support.Prng.create 9) ~count:50 in
  check cb "same seed, same workload" true (List.for_all2 Xroute_xpath.Xpe.equal a b)

let test_xpath_gen_predicates () =
  let insurance = Lazy.force Xroute_dtd.Dtd_samples.insurance in
  let prng = Xroute_support.Prng.create 10 in
  let params = { (Xpath_gen.default_params insurance) with Xpath_gen.pred_prob = 0.8 } in
  let xpes = Xpath_gen.generate ~distinct:false params prng ~count:300 in
  check cb "some predicates" true (List.exists Xroute_xpath.Xpe.has_predicates xpes)

(* ---------------- Xml_gen ---------------- *)

let test_xml_gen_valid_paths () =
  (* Generated documents only contain DTD-derivable paths: the
     advertisement set covers every one of them. *)
  let graph = Xroute_dtd.Dtd_graph.build nitf in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let prng = Xroute_support.Prng.create 20 in
  for _ = 1 to 10 do
    let doc = Xml_gen.generate (Xml_gen.default_params nitf) prng in
    check cb "document covered by advertisements" true
      (Xroute_dtd.Dtd_paths.covers_document graph advs doc)
  done

let test_xml_gen_depth_bound () =
  let prng = Xroute_support.Prng.create 21 in
  for _ = 1 to 10 do
    let doc = Xml_gen.generate { (Xml_gen.default_params nitf) with Xml_gen.max_levels = 6 } prng in
    check cb "depth bounded (soft)" true (Xroute_xml.Xml_tree.depth doc <= 8)
  done

let test_xml_gen_root () =
  let prng = Xroute_support.Prng.create 22 in
  let doc = Xml_gen.generate (Xml_gen.default_params dtd) prng in
  check Alcotest.string "root element" "ProteinDatabase" (Xroute_xml.Xml_tree.name doc)

let test_xml_gen_sized () =
  let prng = Xroute_support.Prng.create 23 in
  List.iter
    (fun target ->
      let doc = Xml_gen.generate_sized (Xml_gen.default_params nitf) prng ~target_bytes:target in
      let size = Xroute_xml.Xml_printer.byte_size doc in
      check cb (Printf.sprintf "size %d close to %d" size target) true (size >= target * 9 / 10))
    [ 2048; 10240; 20480 ]

let test_xml_gen_required_attrs () =
  let insurance = Lazy.force Xroute_dtd.Dtd_samples.insurance in
  let prng = Xroute_support.Prng.create 24 in
  for _ = 1 to 20 do
    let doc = Xml_gen.generate (Xml_gen.default_params insurance) prng in
    Xroute_xml.Xml_tree.fold
      (fun () node ->
        if Xroute_xml.Xml_tree.name node = "incident" then
          check cb "required kind attr present" true
            (Xroute_xml.Xml_tree.attr node "kind" <> None))
      () doc
  done

let test_xml_gen_documents_valid () =
  (* Generated documents validate against their DTD. *)
  List.iter
    (fun d ->
      let prng = Xroute_support.Prng.create 26 in
      for _ = 1 to 10 do
        let doc = Xml_gen.generate (Xml_gen.default_params d) prng in
        match Xroute_dtd.Dtd_validate.validate d doc with
        | [] -> ()
        | e :: _ ->
          Alcotest.failf "generated document invalid: %s"
            (Xroute_dtd.Dtd_validate.error_to_string e)
      done)
    [ dtd; nitf; Lazy.force Xroute_dtd.Dtd_samples.book;
      Lazy.force Xroute_dtd.Dtd_samples.insurance ]

let test_xml_gen_parses_back () =
  let prng = Xroute_support.Prng.create 25 in
  let doc = Xml_gen.generate (Xml_gen.default_params nitf) prng in
  let s = Xroute_xml.Xml_printer.to_string doc in
  match Xroute_xml.Xml_parser.parse_opt s with
  | Some _ -> ()
  | None -> Alcotest.fail "generated document does not reparse"

(* ---------------- Workload presets ---------------- *)

let test_covering_rates_ordered () =
  (* The covering rate is density-dependent; the sets are tuned for the
     population sizes the benchmarks use (about 10k queries). *)
  let seed = 123 in
  let a =
    Workload.covering_rate
      (Workload.xpes ~params:(Workload.set_a_params nitf) ~count:10_000 ~seed ())
  in
  let b =
    Workload.covering_rate
      (Workload.xpes ~params:(Workload.set_b_params nitf) ~count:10_000 ~seed ())
  in
  check cb (Printf.sprintf "set A (%.2f) more covered than set B (%.2f)" a b) true (a > b +. 0.1);
  check cb "set A high" true (a > 0.7);
  check cb "set B moderate" true (b > 0.25 && b < 0.8)

let test_publications_of_documents () =
  let docs = Workload.documents ~dtd ~count:3 ~seed:9 () in
  let pubs = Workload.publications_of_documents docs in
  check cb "pubs extracted" true (List.length pubs > 3);
  List.iter
    (fun (p : Xroute_xml.Xml_paths.publication) ->
      check cb "doc ids in range" true (p.doc_id >= 0 && p.doc_id < 3))
    pubs

let () =
  Alcotest.run "workload"
    [
      ( "xpath_gen",
        [
          Alcotest.test_case "count and distinct" `Quick test_xpath_gen_count_and_distinct;
          Alcotest.test_case "depth bounds" `Quick test_xpath_gen_depth_bounds;
          Alcotest.test_case "wildcard knob" `Quick test_xpath_gen_wildcard_knob;
          Alcotest.test_case "descendant knob" `Quick test_xpath_gen_desc_knob;
          Alcotest.test_case "relative knob" `Quick test_xpath_gen_relative_knob;
          Alcotest.test_case "names from DTD" `Quick test_xpath_gen_queries_match_dtd;
          Alcotest.test_case "deterministic" `Quick test_xpath_gen_deterministic;
          Alcotest.test_case "predicates" `Quick test_xpath_gen_predicates;
        ] );
      ( "xml_gen",
        [
          Alcotest.test_case "valid paths" `Quick test_xml_gen_valid_paths;
          Alcotest.test_case "depth bound" `Quick test_xml_gen_depth_bound;
          Alcotest.test_case "root" `Quick test_xml_gen_root;
          Alcotest.test_case "sized" `Quick test_xml_gen_sized;
          Alcotest.test_case "required attrs" `Quick test_xml_gen_required_attrs;
          Alcotest.test_case "documents valid" `Quick test_xml_gen_documents_valid;
          Alcotest.test_case "reparses" `Quick test_xml_gen_parses_back;
        ] );
      ( "presets",
        [
          Alcotest.test_case "covering rates" `Slow test_covering_rates_ordered;
          Alcotest.test_case "publications" `Quick test_publications_of_documents;
        ] );
    ]
