(* Tests for the observability library: metrics registry semantics,
   hop tracing, and golden tests for both exposition formats. *)

open Xroute_obs

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9
let cs = Alcotest.string

(* ---------------- counters ---------------- *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  check ci "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  check ci "incr and add accumulate" 7 (Metrics.value c)

let test_counter_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  Metrics.add c 3;
  check cb "negative add raises" true
    (try
       Metrics.add c (-1);
       false
     with Invalid_argument _ -> true);
  check ci "value unchanged after rejected add" 3 (Metrics.value c);
  (* mirror semantics: external cumulative sources only move forward *)
  Metrics.counter_set c 10;
  check ci "counter_set advances" 10 (Metrics.value c);
  Metrics.counter_set c 4;
  check ci "counter_set never regresses" 10 (Metrics.value c)

let test_registration_idempotent () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "xroute_test_events_total" in
  Metrics.incr a;
  let b = Metrics.counter reg "xroute_test_events_total" in
  Metrics.incr b;
  check ci "same handle" 2 (Metrics.value a);
  check ci "one registration" 1 (List.length (Metrics.metrics reg));
  check cb "type conflict raises" true
    (try
       ignore (Metrics.gauge reg "xroute_test_events_total");
       false
     with Invalid_argument _ -> true)

(* ---------------- gauges ---------------- *)

let test_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "xroute_test_depth" in
  check cf "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 2.5;
  check cf "set" 2.5 (Metrics.gauge_value g);
  Metrics.set_int g 7;
  check cf "set_int" 7.0 (Metrics.gauge_value g);
  Metrics.set_int g 3;
  check cf "gauges may go down" 3.0 (Metrics.gauge_value g)

(* ---------------- histograms ---------------- *)

let test_histogram_summary_matches_stats () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  let prng = Xroute_support.Prng.create 99 in
  let values = Array.init 500 (fun _ -> Xroute_support.Prng.float prng 100.0) in
  Array.iter (Metrics.observe h) values;
  let expect = Xroute_support.Stats.summarize values in
  let got = Metrics.summary h in
  check ci "count" expect.count got.count;
  check cf "mean" expect.mean got.mean;
  check cf "p50" expect.p50 got.p50;
  check cf "p95" expect.p95 got.p95;
  check cf "p99" expect.p99 got.p99;
  check cf "sum matches" (Array.fold_left ( +. ) 0.0 values) (Metrics.sum h)

let test_histogram_cap () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~cap:10 "xroute_test_latency_ms" in
  for i = 1 to 25 do
    Metrics.observe h (float_of_int i)
  done;
  check ci "retains at most cap samples" 10 (Array.length (Metrics.samples h));
  check ci "total counts past the cap" 25 (Metrics.observations h);
  check cf "sum counts past the cap" 325.0 (Metrics.sum h)

(* Interleaved updates from simulator callbacks: events scheduled out of
   order must still produce a consistent registry. *)
let test_interleaved_sim_updates () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  let sim = Xroute_overlay.Sim.create () in
  (* schedule in shuffled order; the sim executes by virtual time *)
  List.iter
    (fun delay ->
      Xroute_overlay.Sim.schedule sim ~delay (fun () ->
          Metrics.incr c;
          Metrics.observe h (Xroute_overlay.Sim.now sim)))
    [ 5.0; 1.0; 9.0; 3.0; 7.0; 2.0; 8.0; 4.0; 10.0; 6.0 ];
  Xroute_overlay.Sim.run sim;
  check ci "every callback counted" 10 (Metrics.value c);
  check ci "every callback observed" 10 (Metrics.observations h);
  check cf "sum of virtual times" 55.0 (Metrics.sum h);
  let s = Metrics.summary h in
  check cf "min is earliest event" 1.0 s.min;
  check cf "max is latest event" 10.0 s.max

(* ---------------- lookup and aggregation ---------------- *)

let test_scalar_and_find () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  let g = Metrics.gauge reg "xroute_test_depth" in
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  Metrics.add c 4;
  Metrics.set g 1.5;
  Metrics.observe h 3.0;
  Metrics.observe h 9.0;
  check cb "counter scalar" true (Metrics.scalar reg "xroute_test_events_total" = Some 4.0);
  check cb "gauge scalar" true (Metrics.scalar reg "xroute_test_depth" = Some 1.5);
  check cb "histogram scalar is count" true
    (Metrics.scalar reg "xroute_test_latency_ms" = Some 2.0);
  check cb "missing scalar" true (Metrics.scalar reg "nope" = None);
  check cb "find missing" true (Metrics.find reg "nope" = None)

let test_aggregate () =
  let mk cv gv hs =
    let reg = Metrics.create () in
    Metrics.add (Metrics.counter reg "xroute_test_events_total") cv;
    Metrics.set (Metrics.gauge reg "xroute_test_depth") gv;
    let h = Metrics.histogram reg "xroute_test_latency_ms" in
    List.iter (Metrics.observe h) hs;
    reg
  in
  let a = mk 3 1.0 [ 1.0; 2.0 ] in
  let b = mk 4 2.5 [ 10.0 ] in
  let agg = Metrics.aggregate [ a; b ] in
  check cb "counters sum" true (Metrics.scalar agg "xroute_test_events_total" = Some 7.0);
  check cb "gauges sum" true (Metrics.scalar agg "xroute_test_depth" = Some 3.5);
  (match Metrics.find agg "xroute_test_latency_ms" with
  | Some (Metrics.Histogram h) ->
    check ci "samples pooled" 3 (Metrics.observations h);
    check cf "sums pooled" 13.0 (Metrics.sum h)
  | _ -> Alcotest.fail "aggregated histogram missing")

(* ---------------- golden expositions ---------------- *)

(* These pin the exact exposition byte-for-byte: the daemon streams it
   over the wire and external scrapers parse it, so format drift is an
   interface break, not a cosmetic change. *)
let golden_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"Messages handled." "xroute_test_msgs_total" in
  Metrics.add c 42;
  let g = Metrics.gauge reg ~help:"Table size." "xroute_test_size" in
  Metrics.set g 17.5;
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  reg

let test_golden_prometheus () =
  let expect =
    String.concat "\n"
      [
        "# TYPE xroute_test_latency_ms summary";
        "xroute_test_latency_ms{quantile=\"0.5\"} 2";
        "xroute_test_latency_ms{quantile=\"0.95\"} 4";
        "xroute_test_latency_ms{quantile=\"0.99\"} 4";
        "xroute_test_latency_ms_sum 10";
        "xroute_test_latency_ms_count 4";
        "# HELP xroute_test_msgs_total Messages handled.";
        "# TYPE xroute_test_msgs_total counter";
        "xroute_test_msgs_total 42";
        "# HELP xroute_test_size Table size.";
        "# TYPE xroute_test_size gauge";
        "xroute_test_size 17.5";
        "";
      ]
  in
  check cs "prometheus text" expect (Metrics.to_prometheus (golden_registry ()))

let test_golden_json () =
  let expect =
    "{\"metrics\":["
    ^ "{\"name\":\"xroute_test_latency_ms\",\"help\":\"\",\"type\":\"histogram\",\
       \"count\":4,\"sum\":10,\"mean\":2.5,\"min\":1,\"max\":4,\"p50\":2,\"p95\":4,\"p99\":4},"
    ^ "{\"name\":\"xroute_test_msgs_total\",\"help\":\"Messages handled.\",\
       \"type\":\"counter\",\"value\":42},"
    ^ "{\"name\":\"xroute_test_size\",\"help\":\"Table size.\",\"type\":\"gauge\",\
       \"value\":17.5}]}"
  in
  check cs "json" expect (Metrics.to_json (golden_registry ()))

(* ---------------- hop trace ---------------- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  check cb "zero capacity raises" true
    (try
       ignore (Trace.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true);
  for i = 0 to 9 do
    Trace.record tr ~kind:"pub" ~key:i ~broker:(i mod 3) ~time:(float_of_int i)
      ~queue_depth:i ~match_ops:0
  done;
  check ci "length counts all records" 10 (Trace.length tr);
  check ci "capacity" 4 (Trace.capacity tr);
  let retained = Trace.to_list tr in
  check ci "retains only the newest" 4 (List.length retained);
  check cb "oldest first" true
    (List.map (fun h -> h.Trace.key) retained = [ 6; 7; 8; 9 ]);
  Trace.clear tr;
  check ci "clear resets" 0 (Trace.length tr)

let test_trace_hops_for () =
  let tr = Trace.create () in
  let key = Trace.key_of_id ~origin:3 ~seq:7 in
  Trace.record tr ~kind:"sub" ~key ~broker:0 ~time:0.0 ~queue_depth:1 ~match_ops:2;
  Trace.record tr ~kind:"pub" ~key:99 ~broker:0 ~time:1.0 ~queue_depth:0 ~match_ops:0;
  Trace.record tr ~kind:"sub" ~key ~broker:1 ~time:2.0 ~queue_depth:0 ~match_ops:5;
  let hops = Trace.hops_for tr ~key in
  check ci "both hops of the message" 2 (List.length hops);
  check cb "ordered by record time" true
    (List.map (fun h -> h.Trace.broker) hops = [ 0; 1 ]);
  check cb "distinct ids get distinct keys" true
    (Trace.key_of_id ~origin:3 ~seq:7 <> Trace.key_of_id ~origin:7 ~seq:3)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "registration idempotent" `Quick test_registration_idempotent;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram summary = Stats.summarize" `Quick
            test_histogram_summary_matches_stats;
          Alcotest.test_case "histogram cap" `Quick test_histogram_cap;
          Alcotest.test_case "interleaved sim updates" `Quick test_interleaved_sim_updates;
          Alcotest.test_case "scalar and find" `Quick test_scalar_and_find;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "golden prometheus" `Quick test_golden_prometheus;
          Alcotest.test_case "golden json" `Quick test_golden_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_trace_ring;
          Alcotest.test_case "hops_for" `Quick test_trace_hops_for;
        ] );
    ]
