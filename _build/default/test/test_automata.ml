(* Tests for the symbolic automata library: regex construction, NFA
   acceptance, overlap and containment — including the paper's worked
   examples. *)

open Xroute_automata
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool

let xp = Xpe_parser.parse
let ad = Adv.parse
let path s = Array.of_list (String.split_on_char '/' s)

(* ---------------- Regex / NFA acceptance ---------------- *)

let accepts regex p = Nfa.accepts (Nfa.of_regex regex) (path p)

let test_nfa_literal () =
  let r = Regex.seq [ Regex.exact "a"; Regex.exact "b" ] in
  check cb "accepts" true (accepts r "a/b");
  check cb "rejects prefix" false (accepts r "a");
  check cb "rejects longer" false (accepts r "a/b/c")

let test_nfa_star () =
  let r = Regex.seq [ Regex.exact "a"; Regex.star (Regex.exact "b") ] in
  check cb "zero" true (accepts r "a");
  check cb "many" true (accepts r "a/b/b/b");
  check cb "wrong" false (accepts r "a/c")

let test_nfa_plus () =
  let r = Regex.plus (Regex.exact "a") in
  check cb "one" true (accepts r "a");
  check cb "three" true (accepts r "a/a/a");
  check cb "zero rejected" false (Nfa.accepts (Nfa.of_regex r) [||])

let test_nfa_alt () =
  let r = Regex.alt [ Regex.exact "a"; Regex.exact "b" ] in
  check cb "left" true (accepts r "a");
  check cb "right" true (accepts r "b");
  check cb "other" false (accepts r "c")

let test_nfa_any () =
  let r = Regex.seq [ Regex.any; Regex.exact "b" ] in
  check cb "wildcard" true (accepts r "zzz/b");
  check cb "wrong tail" false (accepts r "zzz/c")

let test_nfa_eps () =
  check cb "empty word" true (Nfa.accepts (Nfa.of_regex Regex.eps) [||]);
  check cb "nonempty rejected" false (accepts Regex.eps "a")

(* ---------------- XPE language ---------------- *)

let xpe_lang_accepts s p = Nfa.accepts (Nfa.of_regex (Regex.of_xpe (xp s))) (path p)

let test_xpe_language_matches_eval () =
  (* The automata view must agree with the direct evaluator. *)
  let xpes = [ "/a/b"; "//b"; "/a//c"; "a/b"; "/*"; "/a/*//b"; "b//c" ] in
  let paths = [ "a"; "a/b"; "a/b/c"; "b"; "b/c"; "a/c/b"; "a/b/c/b"; "c" ] in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          check cb
            (Printf.sprintf "%s vs %s" s p)
            (Xpe_eval.matches_names (xp s) (path p))
            (xpe_lang_accepts s p))
        paths)
    xpes

(* ---------------- Adv language ---------------- *)

let test_adv_language_matches_eval () =
  let advs = [ "/a/b"; "(/a)+"; "/a(/b)+/c"; "/a(/b(/c)+)+"; "/a/*" ] in
  let paths = [ "a"; "a/a"; "a/b"; "a/b/c"; "a/b/b/c"; "a/b/c/b/c"; "a/q" ] in
  List.iter
    (fun s ->
      let adv = ad s in
      let nfa = Nfa.of_regex (Regex.of_adv adv) in
      List.iter
        (fun p ->
          check cb
            (Printf.sprintf "%s vs %s" s p)
            (Adv.matches_names adv (path p))
            (Nfa.accepts nfa (path p)))
        paths)
    advs

(* ---------------- Overlap (paper Sec. 3 examples) ---------------- *)

let test_overlap_paper_examples () =
  (* Sec. 3.2: a = /b/*/*/c/c/d, s = /*/c/*/b/c do not overlap. *)
  check cb "AbsExprAndAdv example" false
    (Lang.xpe_overlaps_adv (xp "/*/c/*/b/c") (ad "/b/*/*/c/c/d"));
  (* Sec. 3.2: a = /a/*/e/*/d/*/c/b and s = * /a//d/*/c//b overlap. *)
  check cb "DesExprAndAdv example" true
    (Lang.xpe_overlaps_adv (xp "*/a//d/*/c//b") (ad "/a/*/e/*/d/*/c/b"));
  (* Sec. 3.3: a = /a/*/c(/e/d)+/*/c/e and s = /*/a/c/*/d/e/d/* overlap
     with the recursive pattern repeated twice. *)
  check cb "recursive example" true
    (Lang.xpe_overlaps_adv (xp "/*/a/c/*/d/e/d/*") (ad "/a/*/c(/e/d)+/*/c/e"))

let test_overlap_basic () =
  check cb "prefix overlap" true (Lang.xpe_overlaps_adv (xp "/a/b") (ad "/a/b/c"));
  check cb "xpe longer" false (Lang.xpe_overlaps_adv (xp "/a/b/c/d") (ad "/a/b/c"));
  check cb "disjoint roots" false (Lang.xpe_overlaps_adv (xp "/x") (ad "/a/b"));
  check cb "wildcards" true (Lang.xpe_overlaps_adv (xp "/*/*") (ad "/a/b"));
  check cb "recursive unbounded" true (Lang.xpe_overlaps_adv (xp "/a/b/b/b/b/b") (ad "/a(/b)+"))

let test_overlap_relative () =
  check cb "infix" true (Lang.xpe_overlaps_adv (xp "b/c") (ad "/a/b/c"));
  check cb "no fit" false (Lang.xpe_overlaps_adv (xp "c/b") (ad "/a/b/c"))

(* ---------------- Containment ---------------- *)

let contains a b = Lang.xpe_contains (xp a) (xp b)

let test_containment_basic () =
  check cb "shorter covers longer" true (contains "/a" "/a/b");
  check cb "longer not covers" false (contains "/a/b" "/a");
  check cb "wildcard covers name" true (contains "/*/b" "/a/b");
  check cb "name not covers wildcard" false (contains "/a/b" "/*/b");
  check cb "reflexive" true (contains "/a//b" "/a//b")

let test_containment_descendant () =
  check cb "// covers /" true (contains "/a//c" "/a/b/c");
  check cb "// covers deep" true (contains "//c" "/a/b/c");
  check cb "/ not covers //" false (contains "/a/b/c" "/a//c");
  check cb "// self" true (contains "/a//b" "/a/b");
  check cb "gap mismatch" false (contains "/a//d" "/a/b/c/e")

let test_containment_relative () =
  check cb "relative covers absolute" true (contains "a" "/a");
  check cb "relative covers deeper" true (contains "b" "/a/b");
  check cb "star covers relative" true (contains "/*" "d/a");
  check cb "relative not covers unrelated" false (contains "b" "/a/c")

let test_containment_star_gap () =
  (* /a/* requires a path of length >= 2 under a; /a//b guarantees it. *)
  check cb "star under a" true (contains "/a/*" "/a//b");
  check cb "two stars need depth 3" false (contains "/a/*/*" "/a//b")

let test_adv_containment () =
  check cb "same" true (Lang.adv_contains (ad "/a/b") (ad "/a/b"));
  check cb "wildcard covers" true (Lang.adv_contains (ad "/a/*") (ad "/a/b"));
  check cb "length matters" false (Lang.adv_contains (ad "/a") (ad "/a/b"));
  check cb "plus covers one rep" true (Lang.adv_contains (ad "/a(/b)+") (ad "/a/b"));
  check cb "plus covers many" true (Lang.adv_contains (ad "/a(/b)+") (ad "/a/b/b/b"));
  check cb "one rep not covers plus" false (Lang.adv_contains (ad "/a/b") (ad "/a(/b)+"))

let test_xpe_overlap_symmetric () =
  let pairs = [ ("/a/b", "/a//b"); ("/a", "/b"); ("//c", "/a/b/c"); ("a/b", "/x/a/b") ] in
  List.iter
    (fun (s1, s2) ->
      check cb
        (Printf.sprintf "sym %s %s" s1 s2)
        (Lang.xpe_overlaps (xp s1) (xp s2))
        (Lang.xpe_overlaps (xp s2) (xp s1)))
    pairs

let test_xpe_equiv () =
  check cb "relative vs //" true (Lang.xpe_equiv (xp "a/b") (xp "//a/b"));
  check cb "not equiv" false (Lang.xpe_equiv (xp "/a") (xp "//a"))

(* Containment validated against brute-force enumeration over a small
   alphabet. *)
let test_containment_brute_force () =
  let alphabet = [ "a"; "b"; "c" ] in
  let rec all_paths n =
    if n = 0 then [ [] ]
    else
      let shorter = all_paths (n - 1) in
      shorter @ List.concat_map (fun p -> List.map (fun x -> x :: p) alphabet)
                  (List.filter (fun p -> List.length p = n - 1) shorter)
  in
  let universe = List.filter (fun p -> p <> []) (all_paths 4) in
  let xpes = [ "/a"; "/a/b"; "//b"; "/a//c"; "a"; "b/c"; "/*"; "/*/b"; "/a/*" ] in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          let semantic =
            List.for_all
              (fun p ->
                let arr = Array.of_list p in
                (not (Xpe_eval.matches_names (xp s2) arr))
                || Xpe_eval.matches_names (xp s1) arr)
              universe
          in
          let exact = contains s1 s2 in
          (* exact containment implies containment on the finite sample *)
          if exact then
            check cb (Printf.sprintf "%s contains %s (sampled)" s1 s2) true semantic)
        xpes)
    xpes

let () =
  Alcotest.run "automata"
    [
      ( "nfa",
        [
          Alcotest.test_case "literal" `Quick test_nfa_literal;
          Alcotest.test_case "star" `Quick test_nfa_star;
          Alcotest.test_case "plus" `Quick test_nfa_plus;
          Alcotest.test_case "alt" `Quick test_nfa_alt;
          Alcotest.test_case "any" `Quick test_nfa_any;
          Alcotest.test_case "eps" `Quick test_nfa_eps;
        ] );
      ( "languages",
        [
          Alcotest.test_case "xpe language = eval" `Quick test_xpe_language_matches_eval;
          Alcotest.test_case "adv language = eval" `Quick test_adv_language_matches_eval;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "paper examples" `Quick test_overlap_paper_examples;
          Alcotest.test_case "basic" `Quick test_overlap_basic;
          Alcotest.test_case "relative" `Quick test_overlap_relative;
          Alcotest.test_case "symmetric" `Quick test_xpe_overlap_symmetric;
        ] );
      ( "containment",
        [
          Alcotest.test_case "basic" `Quick test_containment_basic;
          Alcotest.test_case "descendant" `Quick test_containment_descendant;
          Alcotest.test_case "relative" `Quick test_containment_relative;
          Alcotest.test_case "star gap" `Quick test_containment_star_gap;
          Alcotest.test_case "advertisements" `Quick test_adv_containment;
          Alcotest.test_case "equivalence" `Quick test_xpe_equiv;
          Alcotest.test_case "brute force" `Quick test_containment_brute_force;
        ] );
    ]
