(* Tests for the YFilter-style NFA index: hand-picked behaviors plus
   randomized equivalence with the linear reference matcher. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let ci = Alcotest.int

let xp = Xpe_parser.parse
let path s = Array.of_list (String.split_on_char '/' s)

let index_of xpes =
  let t : int Yfilter.t = Yfilter.create () in
  List.iteri (fun i x -> Yfilter.insert t (xp x) i) xpes;
  t

let matches t p = List.sort compare (Yfilter.match_names t (path p))

let test_basic () =
  let t = index_of [ "/a/b"; "/a/c"; "/x" ] in
  check (Alcotest.list ci) "ab" [ 0 ] (matches t "a/b");
  check (Alcotest.list ci) "prefix" [ 0 ] (matches t "a/b/z");
  check (Alcotest.list ci) "x" [ 2 ] (matches t "x");
  check (Alcotest.list ci) "none" [] (matches t "q")

let test_wildcards_and_desc () =
  let t = index_of [ "/*/b"; "//c"; "/a//d"; "b/c" ] in
  check (Alcotest.list ci) "star" [ 0 ] (matches t "q/b");
  check (Alcotest.list ci) "desc deep" [ 1 ] (matches t "x/y/c");
  check (Alcotest.list ci) "a..d" [ 2 ] (matches t "a/x/y/d");
  check (Alcotest.list ci) "relative infix" [ 0; 1; 3 ] (matches t "a/b/c");
  check (Alcotest.list ci) "relative and desc" [ 1; 3 ] (matches t "b/c")

let test_child_edges_do_not_refire () =
  (* /a//b/c : after //b matches, /c must follow IMMEDIATELY after that
     b; a c appearing later must not be accepted from a stale state. *)
  let t = index_of [ "/a//b/c" ] in
  check (Alcotest.list ci) "direct" [ 0 ] (matches t "a/x/b/c");
  check (Alcotest.list ci) "gap breaks child edge" [] (matches t "a/x/b/x/c");
  (* but a later b re-arms it *)
  check (Alcotest.list ci) "re-armed" [ 0 ] (matches t "a/x/b/x/b/c")

let test_prefix_sharing () =
  let t = index_of [ "/a/b/c"; "/a/b/d"; "/a/b"; "/a/q" ] in
  (* states: root, a, b, c, d, q = 6 *)
  check ci "states shared" 6 (Yfilter.state_count t);
  check ci "size" 4 (Yfilter.size t);
  check (Alcotest.list ci) "all under ab" [ 0; 2 ] (matches t "a/b/c")

let test_duplicate_xpes_accumulate () =
  let t : int Yfilter.t = Yfilter.create () in
  Yfilter.insert t (xp "/a") 1;
  Yfilter.insert t (xp "/a") 2;
  check ci "two payloads" 2 (Yfilter.size t);
  check (Alcotest.list ci) "both match" [ 1; 2 ] (matches t "a")

let test_remove () =
  let t : int Yfilter.t = Yfilter.create () in
  Yfilter.insert t (xp "/a") 1;
  Yfilter.insert t (xp "/a") 2;
  Yfilter.insert t (xp "/a/b") 3;
  Yfilter.remove t (xp "/a") (fun p -> p = 1);
  check ci "one gone" 2 (Yfilter.size t);
  check (Alcotest.list ci) "match after remove" [ 2 ] (matches t "a");
  Yfilter.remove t (xp "/a") (fun _ -> true);
  check (Alcotest.list ci) "all gone" [] (matches t "a");
  check (Alcotest.list ci) "sibling untouched" [ 3 ] (matches t "a/b")

let test_state_count_after_remove () =
  let t : int Yfilter.t = Yfilter.create () in
  Yfilter.insert t (xp "/a/b/c") 1;
  Yfilter.insert t (xp "/a/q") 2;
  (* root, a, b, c, q *)
  check ci "live states" 5 (Yfilter.state_count t);
  check ci "allocated states" 5 (Yfilter.allocated_states t);
  Yfilter.remove t (xp "/a/b/c") (fun _ -> true);
  (* eager pruning: the b and c states die with their payload, and the
     allocation counter follows the live count *)
  check ci "live shrinks after remove" 3 (Yfilter.state_count t);
  check ci "allocated shrinks too" 3 (Yfilter.allocated_states t);
  Yfilter.remove t (xp "/a/q") (fun _ -> true);
  check ci "only the root is live" 1 (Yfilter.state_count t);
  check ci "only the root is allocated" 1 (Yfilter.allocated_states t)

(* Insert+remove cycles must land exactly on the fresh-build automaton:
   no leaked states, and the invariant audit stays clean throughout. *)
let test_churn_returns_to_fresh_build () =
  let base = [ "/a/b/c"; "/a/b/d"; "//x/y"; "/*/q" ] in
  let fresh = index_of base in
  let fresh_states = Yfilter.state_count fresh in
  let t : int Yfilter.t = Yfilter.create () in
  List.iteri (fun i x -> Yfilter.insert t (xp x) i) base;
  let extra = [ "/a/b/c/deep/er"; "/zz//ww"; "/a/b"; "//x/y/z[@k='v']" ] in
  for round = 1 to 3 do
    List.iteri (fun i x -> Yfilter.insert t (xp x) (100 + i)) extra;
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "round %d: invariants hold while grown" round)
      []
      (Yfilter.check_invariants t);
    List.iter (fun x -> Yfilter.remove t (xp x) (fun p -> p >= 100)) extra;
    check ci
      (Printf.sprintf "round %d: states back to fresh build" round)
      fresh_states (Yfilter.state_count t);
    check ci
      (Printf.sprintf "round %d: allocation counter agrees" round)
      fresh_states (Yfilter.allocated_states t);
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "round %d: invariants hold after churn" round)
      []
      (Yfilter.check_invariants t)
  done

let test_predicates_rechecked () =
  let t : int Yfilter.t = Yfilter.create () in
  Yfilter.insert t (xp "/a/b[@k='v']") 1;
  let p = path "a/b" in
  check (Alcotest.list ci) "pred ok" [ 1 ]
    (Yfilter.match_path t p [| []; [ ("k", "v") ] |]);
  check (Alcotest.list ci) "pred fails" [] (Yfilter.match_path t p [| []; [ ("k", "w") ] |])

(* Predicates do not take part in the automaton, so a predicate XPE
   shares its whole trail with a predicate-free twin: the NFA accepts
   both, and only the lazy exact-evaluator re-check separates them. *)
let test_predicates_shared_prefix () =
  let t : int Yfilter.t = Yfilter.create () in
  Yfilter.insert t (xp "/a/b") 1;
  Yfilter.insert t (xp "/a/b[@k='v']") 2;
  Yfilter.insert t (xp "/a/b[@k='v'][@m='n']") 3;
  (* one shared trail: root, a, b — predicates add no states *)
  check ci "predicates add no states" 3 (Yfilter.state_count t);
  let p = path "a/b" in
  (* NFA accepts all three; the re-check rejects the predicate XPEs *)
  check (Alcotest.list ci) "nfa accepts, evaluator rejects" [ 1 ]
    (Yfilter.match_path t p [| []; [] |]);
  check (Alcotest.list ci) "one predicate satisfied" [ 1; 2 ]
    (List.sort compare (Yfilter.match_path t p [| []; [ ("k", "v") ] |]));
  check (Alcotest.list ci) "both predicates satisfied" [ 1; 2; 3 ]
    (List.sort compare (Yfilter.match_path t p [| []; [ ("k", "v"); ("m", "n") ] |]));
  (* removing the predicate-free twin must keep the shared trail alive
     for the predicate XPEs *)
  Yfilter.remove t (xp "/a/b") (fun _ -> true);
  check ci "shared trail survives" 3 (Yfilter.state_count t);
  check (Alcotest.list ci) "predicate XPEs still reachable" [ 2 ]
    (Yfilter.match_path t p [| []; [ ("k", "v") ] |])

let test_to_list () =
  let t = index_of [ "/a"; "/a/b" ] in
  check ci "pairs" 2 (List.length (Yfilter.to_list t))

(* Randomized equivalence with the linear matcher over Sub_tree. *)
let test_equivalence_random () =
  let prng = Xroute_support.Prng.create 424242 in
  let alphabet = [| "a"; "b"; "c" |] in
  let random_xpe () =
    let len = 1 + Xroute_support.Prng.int prng 4 in
    let relative = Xroute_support.Prng.bernoulli prng 0.2 in
    let steps =
      List.init len (fun i ->
          let test =
            if Xroute_support.Prng.bernoulli prng 0.3 then Xpe.Star
            else Xpe.Name (Xroute_support.Symbol.intern (Xroute_support.Prng.choose prng alphabet))
          in
          let axis =
            if i = 0 && relative then Xpe.Child
            else if Xroute_support.Prng.bernoulli prng 0.3 then Xpe.Desc
            else Xpe.Child
          in
          Xpe.step axis test)
    in
    Xpe.make ~relative steps
  in
  for _round = 1 to 30 do
    let xpes = List.init (1 + Xroute_support.Prng.int prng 60) (fun _ -> random_xpe ()) in
    let yf : int Yfilter.t = Yfilter.create () in
    let tree : int Sub_tree.t = Sub_tree.create () in
    List.iteri
      (fun i x ->
        Yfilter.insert yf x i;
        ignore (Sub_tree.insert tree x i))
      xpes;
    for _ = 1 to 40 do
      let len = 1 + Xroute_support.Prng.int prng 6 in
      let p = Array.init len (fun _ -> Xroute_support.Prng.choose prng alphabet) in
      let attrs = Array.make len [] in
      let via_yf = List.sort compare (Yfilter.match_path yf p attrs) in
      let via_tree = List.sort compare (Sub_tree.match_path_linear tree p attrs) in
      if via_yf <> via_tree then
        Alcotest.failf "yfilter differs on %s: yf=[%s] tree=[%s] (xpes: %s)"
          (String.concat "/" (Array.to_list p))
          (String.concat ";" (List.map string_of_int via_yf))
          (String.concat ";" (List.map string_of_int via_tree))
          (String.concat " " (List.map Xpe.to_string xpes))
    done
  done

let () =
  Alcotest.run "yfilter"
    [
      ( "behavior",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "wildcards and desc" `Quick test_wildcards_and_desc;
          Alcotest.test_case "child edges do not refire" `Quick test_child_edges_do_not_refire;
          Alcotest.test_case "prefix sharing" `Quick test_prefix_sharing;
          Alcotest.test_case "duplicates" `Quick test_duplicate_xpes_accumulate;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "state count after remove" `Quick test_state_count_after_remove;
          Alcotest.test_case "churn returns to fresh build" `Quick test_churn_returns_to_fresh_build;
          Alcotest.test_case "predicates" `Quick test_predicates_rechecked;
          Alcotest.test_case "predicates share prefixes" `Quick test_predicates_shared_prefix;
          Alcotest.test_case "to_list" `Quick test_to_list;
        ] );
      ("equivalence", [ Alcotest.test_case "random vs linear" `Quick test_equivalence_random ]);
    ]
