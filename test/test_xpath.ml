(* Tests for the XPath library: XPE model, parser, evaluator and the
   advertisement type. *)

open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let xp = Xpe_parser.parse

(* ---------------- Xpe model ---------------- *)

let test_make_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Xpe.make: an XPE needs at least one step")
    (fun () -> ignore (Xpe.make []))

let test_make_rejects_relative_desc () =
  Alcotest.check_raises "relative //"
    (Invalid_argument "Xpe.make: a relative XPE cannot start with //") (fun () ->
      ignore (Xpe.make ~relative:true [ Xpe.step Xpe.Desc (Xpe.test_of_string "a") ]))

let test_roundtrip_to_string () =
  let cases =
    [ "/a/b/c"; "//a/b"; "/a//b"; "a/b"; "/*/b"; "/a/*//c"; "b"; "/a/b[@x='1']/c"; "*/a" ]
  in
  List.iter (fun s -> check cs ("roundtrip " ^ s) s (Xpe.to_string (xp s))) cases

let test_properties () =
  check cb "absolute" true (Xpe.is_absolute (xp "/a/b"));
  check cb "// is absolute" true (Xpe.is_absolute (xp "//a"));
  check cb "relative" true (Xpe.is_relative (xp "a/b"));
  check cb "simple" true (Xpe.is_simple (xp "/a/*/b"));
  check cb "not simple" false (Xpe.is_simple (xp "/a//b"));
  check cb "wildcard" true (Xpe.has_wildcard (xp "/a/*"));
  check cb "no wildcard" false (Xpe.has_wildcard (xp "/a/b"));
  check ci "length" 3 (Xpe.length (xp "/a/b/c"));
  check cb "preds" true (Xpe.has_predicates (xp "/a[@x='1']"))

let test_semantic_steps_relative () =
  match Xpe.semantic_steps (xp "a/b") with
  | { Xpe.axis = Xpe.Desc; _ } :: { Xpe.axis = Xpe.Child; _ } :: [] -> ()
  | _ -> Alcotest.fail "relative XPE should start with a semantic Desc"

let test_split_on_desc () =
  let seg_names segs =
    List.map
      (fun seg ->
        String.concat ","
          (List.map
             (fun (s : Xpe.step) ->
               Xpe.test_to_string s.test)
             seg))
      segs
  in
  check (Alcotest.list cs) "three segments" [ "a,b"; "c,*"; "d" ]
    (seg_names (Xpe.split_on_desc (xp "/a/b//c/*//d")));
  check (Alcotest.list cs) "leading //" [ "a" ] (seg_names (Xpe.split_on_desc (xp "//a")));
  check cb "anchored" true (Xpe.first_segment_anchored (xp "/a/b"));
  check cb "not anchored (//)" false (Xpe.first_segment_anchored (xp "//a"));
  check cb "not anchored (relative)" false (Xpe.first_segment_anchored (xp "a/b"))

let test_compare_total_order () =
  let xs = List.map xp [ "/a"; "/a/b"; "a"; "//a"; "/*" ] in
  List.iter
    (fun x ->
      check ci "reflexive" 0 (Xpe.compare x x);
      List.iter
        (fun y ->
          check ci "antisymmetric" 0 (compare (Xpe.compare x y) (-Xpe.compare y x)))
        xs)
    xs

let test_names () =
  check (Alcotest.list cs) "names" [ "a"; "c" ] (Xpe.names (xp "/a/*/c"))

(* ---------------- Parser errors ---------------- *)

let test_parser_errors () =
  List.iter
    (fun input ->
      match Xpe_parser.parse_opt input with
      | Some _ -> Alcotest.failf "expected parse error for %S" input
      | None -> ())
    [ ""; "/"; "//"; "/a/"; "/a//"; "/a b"; "/a["; "/a[@x]"; "/a[@x='1'"; "/a[y='1']"; "/1a" ]

(* ---------------- Evaluation ---------------- *)

let path s = Array.of_list (String.split_on_char '/' s)

let matches xpe p = Xpe_eval.matches_names (xp xpe) (path p)

let test_eval_absolute () =
  check cb "exact" true (matches "/a/b" "a/b");
  check cb "prefix" true (matches "/a/b" "a/b/c");
  check cb "too short path" false (matches "/a/b/c" "a/b");
  check cb "wrong root" false (matches "/b" "a/b");
  check cb "wildcard" true (matches "/*/b" "a/b");
  check cb "wildcard consumes" false (matches "/a/*" "a")

let test_eval_descendant () =
  check cb "// gap" true (matches "/a//c" "a/b/c");
  check cb "// zero gap" true (matches "/a//c" "a/c");
  check cb "// strict below root" false (matches "/a//a" "a");
  check cb "leading //" true (matches "//c" "a/b/c");
  check cb "double //" true (matches "/a//b//c" "a/x/b/y/c");
  check cb "// order" false (matches "/a//c//b" "a/b/c")

let test_eval_relative () =
  check cb "infix" true (matches "b/c" "a/b/c");
  check cb "at start" true (matches "a/b" "a/b");
  check cb "not contiguous" false (matches "a/c" "a/b/c");
  check cb "relative single" true (matches "c" "a/b/c")

let test_eval_backtracking () =
  (* First // placement fails, a later one succeeds. *)
  check cb "backtracks" true (matches "/a//b/c" "a/b/x/b/c");
  check cb "backtracks deep" true (matches "//b//b" "a/b/a/b")

let test_eval_predicates () =
  let xpe = xp "/a/b[@lang='en']" in
  let steps = [| "a"; "b" |] in
  let with_attr = [| []; [ ("lang", "en") ] |] in
  let wrong = [| []; [ ("lang", "fr") ] |] in
  let missing = [| []; [] |] in
  check cb "pred ok" true (Xpe_eval.matches_steps xpe steps with_attr);
  check cb "pred wrong value" false (Xpe_eval.matches_steps xpe steps wrong);
  check cb "pred missing" false (Xpe_eval.matches_steps xpe steps missing)

let test_eval_document () =
  let doc = Xroute_xml.Xml_parser.parse "<a><b><c/></b><d/></a>" in
  check cb "doc match" true (Xpe_eval.matches_document (xp "/a/b/c") doc);
  check cb "doc match //" true (Xpe_eval.matches_document (xp "//d") doc);
  check cb "doc no match" false (Xpe_eval.matches_document (xp "/a/c") doc)

let test_eval_filter () =
  let pubs =
    List.map Xroute_xml.Xml_paths.publication_of_string [ "/a/b"; "/a/c"; "/b/c" ]
  in
  check ci "filtered" 2 (List.length (Xpe_eval.filter (xp "/a") pubs))

(* ---------------- Advertisements ---------------- *)

let ad = Adv.parse

let test_adv_roundtrip () =
  let cases = [ "/a/b/c"; "(/a)+"; "/a(/b/c)+/d"; "/a(/b(/c)+)+/d"; "/a(/b)+(/c)+/d"; "/a/*" ] in
  List.iter (fun s -> check cs ("roundtrip " ^ s) s (Adv.to_string (ad s))) cases

let test_adv_shapes () =
  let shape s = Adv.shape (ad s) in
  check cb "non-recursive" true (shape "/a/b" = Adv.Non_recursive);
  check cb "simple" true (shape "/a(/b)+/c" = Adv.Simple_recursive);
  check cb "series" true (shape "/a(/b)+(/c)+/d" = Adv.Series_recursive);
  check cb "embedded" true (shape "/a(/b(/c)+)+/d" = Adv.Embedded_recursive)

let test_adv_lengths () =
  check ci "length" 3 (Adv.length (ad "/a/b/c"));
  check ci "min_length" 3 (Adv.min_length (ad "/a(/b)+/c"));
  check ci "groups" 2 (Adv.group_count (ad "/a(/b(/c)+)+"));
  Alcotest.check_raises "length of recursive"
    (Invalid_argument "Adv.length: recursive advertisement") (fun () ->
      ignore (Adv.length (ad "(/a)+")))

let test_adv_normalization () =
  (* Adjacent literals fuse; empty groups vanish. *)
  let a = Adv.make [ Adv.Lit [| Xpe.test_of_string "a" |]; Adv.Lit [| Xpe.test_of_string "b" |] ] in
  check cs "fused" "/a/b" (Adv.to_string a);
  Alcotest.check_raises "empty adv" (Invalid_argument "Adv.make: empty advertisement")
    (fun () -> ignore (Adv.make [ Adv.Lit [||] ]))

let test_adv_matches_names () =
  let a = ad "/a(/b/c)+/d" in
  check cb "one rep" true (Adv.matches_names a (path "a/b/c/d"));
  check cb "two reps" true (Adv.matches_names a (path "a/b/c/b/c/d"));
  check cb "zero reps" false (Adv.matches_names a (path "a/d"));
  check cb "partial rep" false (Adv.matches_names a (path "a/b/c/b/d"));
  check cb "full length only" false (Adv.matches_names a (path "a/b/c/d/e"))

let test_adv_matches_wildcard () =
  let a = ad "/a/*/c" in
  check cb "star" true (Adv.matches_names a (path "a/x/c"));
  check cb "wrong len" false (Adv.matches_names a (path "a/x/c/d"))

let test_adv_matches_embedded () =
  let a = ad "/r(/a(/b)+)+/z" in
  check cb "a b z" true (Adv.matches_names a (path "r/a/b/z"));
  check cb "a b b a b z" true (Adv.matches_names a (path "r/a/b/b/a/b/z"));
  check cb "needs inner" false (Adv.matches_names a (path "r/a/a/b/z"))

let test_adv_expand () =
  let a = ad "/a(/b)+/c" in
  let expansions = Adv.expand ~max_reps:3 a in
  check ci "three expansions" 3 (List.length expansions);
  let lengths = List.sort compare (List.map Array.length expansions) in
  check (Alcotest.list ci) "lengths" [ 3; 4; 5 ] lengths

let test_adv_expand_budget () =
  let a = ad "/r(/a(/b)+)+/z" in
  let expansions = Adv.expand_budget ~budget:4 a in
  (* all expansions must themselves match the advertisement *)
  List.iter
    (fun exp ->
      let names = Array.map Xpe.test_to_string exp in
      check cb "expansion matches adv" true (Adv.matches_names a names))
    expansions;
  check cb "several" true (List.length expansions >= 3)

(* The ?max_paths guard: an embedded-recursive advertisement blows up
   exponentially in max_reps, and the cap must trip *before* the list is
   materialized (the predicted count comes from the structure alone). *)
let test_adv_expand_cap () =
  let a = ad "/x(/a(/b)+/c)+/y" in
  let predicted = Adv.count_expansions ~max_reps:4 a in
  let all = Adv.expand ~max_reps:4 a in
  check ci "count matches materialization" (List.length all) predicted;
  (* raising form *)
  (match Adv.expand ~max_paths:(predicted - 1) ~max_reps:4 a with
  | _ -> Alcotest.fail "expected Expansion_limit"
  | exception Adv.Expansion_limit { cap; count } ->
    check ci "cap echoed" (predicted - 1) cap;
    check ci "count echoed" predicted count);
  (* a generous cap changes nothing *)
  check ci "under cap intact" predicted
    (List.length (Adv.expand ~max_paths:(predicted + 1) ~max_reps:4 a));
  (* truncating form: flagged prefix of the full expansion *)
  let cut, truncated = Adv.expand_capped ~max_paths:5 ~max_reps:4 a in
  check cb "truncation flagged" true truncated;
  check ci "exactly max_paths kept" 5 (List.length cut);
  List.iter
    (fun e -> check cb "kept expansion is one of the full set" true (List.mem e all))
    cut;
  let whole, flag = Adv.expand_capped ~max_paths:predicted ~max_reps:4 a in
  check cb "no truncation at the exact cap" false flag;
  check ci "full set at the exact cap" predicted (List.length whole);
  (* every truncated expansion still matches the advertisement *)
  List.iter
    (fun e ->
      let names = Array.map Xpe.test_to_string e in
      check cb "truncated expansion matches adv" true (Adv.matches_names a names))
    cut

let test_adv_of_names () =
  let a = Adv.of_names [ "a"; "*"; "c" ] in
  check cs "wildcard parsed" "/a/*/c" (Adv.to_string a);
  check cb "non-recursive match" true
    (Adv.non_recursive_matches_names (Adv.to_symbols a) (path "a/q/c"))

let test_adv_compare () =
  check ci "equal" 0 (Adv.compare (ad "/a(/b)+") (ad "/a(/b)+"));
  check cb "distinct" true (Adv.compare (ad "/a/b") (ad "/a(/b)+") <> 0)

let test_adv_parse_errors () =
  List.iter
    (fun input ->
      match Adv.parse_opt input with
      | Some _ -> Alcotest.failf "expected adv parse error for %S" input
      | None -> ())
    [ ""; "/a("; "/a()+"; "/a(/b)"; "/a(/b)*"; "a/b"; "/a/"; "/a(/b)+x" ]

let () =
  Alcotest.run "xpath"
    [
      ( "model",
        [
          Alcotest.test_case "make rejects empty" `Quick test_make_rejects_empty;
          Alcotest.test_case "make rejects relative //" `Quick test_make_rejects_relative_desc;
          Alcotest.test_case "to_string roundtrip" `Quick test_roundtrip_to_string;
          Alcotest.test_case "properties" `Quick test_properties;
          Alcotest.test_case "semantic steps" `Quick test_semantic_steps_relative;
          Alcotest.test_case "split on desc" `Quick test_split_on_desc;
          Alcotest.test_case "compare" `Quick test_compare_total_order;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "absolute" `Quick test_eval_absolute;
          Alcotest.test_case "descendant" `Quick test_eval_descendant;
          Alcotest.test_case "relative" `Quick test_eval_relative;
          Alcotest.test_case "backtracking" `Quick test_eval_backtracking;
          Alcotest.test_case "predicates" `Quick test_eval_predicates;
          Alcotest.test_case "documents" `Quick test_eval_document;
          Alcotest.test_case "filter" `Quick test_eval_filter;
        ] );
      ( "adv",
        [
          Alcotest.test_case "roundtrip" `Quick test_adv_roundtrip;
          Alcotest.test_case "shapes" `Quick test_adv_shapes;
          Alcotest.test_case "lengths" `Quick test_adv_lengths;
          Alcotest.test_case "normalization" `Quick test_adv_normalization;
          Alcotest.test_case "matches_names" `Quick test_adv_matches_names;
          Alcotest.test_case "wildcard" `Quick test_adv_matches_wildcard;
          Alcotest.test_case "embedded" `Quick test_adv_matches_embedded;
          Alcotest.test_case "expand" `Quick test_adv_expand;
          Alcotest.test_case "expand budget" `Quick test_adv_expand_budget;
          Alcotest.test_case "expand cap" `Quick test_adv_expand_cap;
          Alcotest.test_case "of_names" `Quick test_adv_of_names;
          Alcotest.test_case "compare" `Quick test_adv_compare;
          Alcotest.test_case "parse errors" `Quick test_adv_parse_errors;
        ] );
    ]
