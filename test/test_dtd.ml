(* Tests for the DTD library: parser, graph analysis, path enumeration
   and advertisement generation. *)

open Xroute_dtd

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let parse = Dtd_parser.parse

(* ---------------- Parser ---------------- *)

let test_parse_element_kinds () =
  let dtd =
    parse
      {|<!ELEMENT a (b, c?, d*)><!ELEMENT b EMPTY><!ELEMENT c ANY>
        <!ELEMENT d (#PCDATA)>|}
  in
  check cs "root is first" "a" (Dtd_ast.root dtd);
  check ci "element count" 4 (Dtd_ast.element_count dtd);
  (match Dtd_ast.find dtd "b" with
  | Some { Dtd_ast.content = Dtd_ast.Empty; _ } -> ()
  | _ -> Alcotest.fail "b should be EMPTY");
  (match Dtd_ast.find dtd "c" with
  | Some { Dtd_ast.content = Dtd_ast.Any; _ } -> ()
  | _ -> Alcotest.fail "c should be ANY");
  match Dtd_ast.find dtd "d" with
  | Some { Dtd_ast.content = Dtd_ast.Pcdata; _ } -> ()
  | _ -> Alcotest.fail "d should be PCDATA"

let test_parse_mixed () =
  let dtd = parse {|<!ELEMENT a (#PCDATA | b | c)*><!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY>|} in
  match Dtd_ast.find dtd "a" with
  | Some { Dtd_ast.content = Dtd_ast.Mixed names; _ } ->
    check (Alcotest.list cs) "mixed names" [ "b"; "c" ] names
  | _ -> Alcotest.fail "a should be mixed"

let test_parse_nested_groups () =
  let dtd = parse {|<!ELEMENT a ((b | c), (d, e)+)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>
                    <!ELEMENT d EMPTY><!ELEMENT e EMPTY>|} in
  match Dtd_ast.find dtd "a" with
  | Some { Dtd_ast.content = Dtd_ast.Children p; _ } ->
    check (Alcotest.list cs) "referenced" [ "b"; "c"; "d"; "e" ] (Dtd_ast.particle_elements p)
  | _ -> Alcotest.fail "a should have children"

let test_parse_attlist () =
  let dtd =
    parse
      {|<!ELEMENT a EMPTY>
        <!ATTLIST a x CDATA #REQUIRED y (u | v) "u" z NMTOKEN #IMPLIED>|}
  in
  match Dtd_ast.find dtd "a" with
  | Some { Dtd_ast.attrs; _ } ->
    check ci "three attrs" 3 (List.length attrs);
    let y = List.find (fun (d : Dtd_ast.attr_decl) -> d.attr_name = "y") attrs in
    (match y.Dtd_ast.attr_type with
    | Dtd_ast.Enum [ "u"; "v" ] -> ()
    | _ -> Alcotest.fail "y should be an enum");
    (match y.Dtd_ast.attr_default with
    | Dtd_ast.Default "u" -> ()
    | _ -> Alcotest.fail "y default should be u")
  | None -> Alcotest.fail "a missing"

let test_parse_parameter_entities () =
  let dtd =
    parse
      {|<!ENTITY % kids "b | c">
        <!ELEMENT a (%kids;)*>
        <!ELEMENT b EMPTY><!ELEMENT c EMPTY>|}
  in
  match Dtd_ast.find dtd "a" with
  | Some { Dtd_ast.content = Dtd_ast.Children p; _ } ->
    check (Alcotest.list cs) "expanded" [ "b"; "c" ] (Dtd_ast.particle_elements p)
  | _ -> Alcotest.fail "a should reference b and c"

let test_parse_comments () =
  let dtd = parse {|<!-- top --><!ELEMENT a EMPTY><!-- tail -->|} in
  check ci "one element" 1 (Dtd_ast.element_count dtd)

let expect_error input =
  match Dtd_parser.parse_opt input with
  | Some _ -> Alcotest.failf "expected DTD error for %S" input
  | None -> ()

let test_parse_errors () =
  List.iter expect_error
    [
      "";
      "<!ELEMENT a (b)>";               (* dangling reference *)
      "<!ELEMENT a EMPTY><!ELEMENT a EMPTY>"; (* duplicate *)
      "<!ELEMENT a (b,>";
      "<!ELEMENT a (#PCDATA | b)>";      (* mixed must close with )* *)
      "<!ELEMENT a (%nope;)>";           (* undefined entity *)
    ]

let test_parse_explicit_root () =
  let dtd = parse ~root:"b" "<!ELEMENT a EMPTY><!ELEMENT b (a)>" in
  check cs "chosen root" "b" (Dtd_ast.root dtd)

let test_samples_parse () =
  List.iter
    (fun name ->
      match Dtd_samples.by_name name with
      | Some _ -> ()
      | None -> Alcotest.failf "sample %s missing" name)
    Dtd_samples.names

(* ---------------- Nullability / leaves ---------------- *)

let test_nullable () =
  let open Dtd_ast in
  check cb "star" true (particle_nullable (Star (Elem "x")));
  check cb "opt" true (particle_nullable (Opt (Elem "x")));
  check cb "elem" false (particle_nullable (Elem "x"));
  check cb "seq of nullables" true (particle_nullable (Seq [ Star (Elem "x"); Opt (Elem "y") ]));
  check cb "seq with required" false (particle_nullable (Seq [ Star (Elem "x"); Elem "y" ]));
  check cb "choice" true (particle_nullable (Choice [ Elem "x"; Star (Elem "y") ]));
  check cb "plus of nullable" true (particle_nullable (Plus (Opt (Elem "x"))))

(* ---------------- Graph ---------------- *)

let graph_of src = Dtd_graph.build (parse src)

let test_graph_children () =
  let g = graph_of "<!ELEMENT a (b, c)><!ELEMENT b (c*)><!ELEMENT c EMPTY>" in
  check (Alcotest.list cs) "a kids" [ "b"; "c" ] (Dtd_graph.children g "a");
  check (Alcotest.list cs) "c kids" [] (Dtd_graph.children g "c")

let test_graph_recursion_self () =
  let g = graph_of "<!ELEMENT a (a | b)*><!ELEMENT b EMPTY>" in
  check cb "recursive" true (Dtd_graph.is_recursive g);
  check cb "a recursive" true (Dtd_graph.is_recursive_element g "a");
  check cb "b not" false (Dtd_graph.is_recursive_element g "b")

let test_graph_recursion_mutual () =
  let g = graph_of "<!ELEMENT a (b?)><!ELEMENT b (a?)>" in
  check cb "recursive" true (Dtd_graph.is_recursive g);
  check cb "both" true
    (Dtd_graph.is_recursive_element g "a" && Dtd_graph.is_recursive_element g "b")

let test_graph_non_recursive () =
  let g = graph_of "<!ELEMENT a (b)><!ELEMENT b (c)><!ELEMENT c EMPTY>" in
  check cb "not recursive" false (Dtd_graph.is_recursive g);
  check (Alcotest.list cs) "no recursive elements" [] (Dtd_graph.recursive_elements g)

let test_graph_unreachable () =
  let g = graph_of "<!ELEMENT a (b)><!ELEMENT b EMPTY><!ELEMENT orphan EMPTY>" in
  check (Alcotest.list cs) "orphan flagged" [ "orphan" ] (Dtd_graph.unreachable_elements g);
  check cb "a reachable" true (Dtd_graph.is_reachable g "a");
  check cb "orphan not" false (Dtd_graph.is_reachable g "orphan")

let test_graph_unreachable_cycle_not_recursive_dtd () =
  (* A cycle among unreachable elements does not make the DTD recursive. *)
  let g = graph_of "<!ELEMENT a (b)><!ELEMENT b EMPTY><!ELEMENT u (v)><!ELEMENT v (u?)>" in
  check cb "cycle exists" true (Dtd_graph.recursive_elements g <> []);
  check cb "dtd not recursive" false (Dtd_graph.is_recursive g)

let test_graph_leaves () =
  let g = graph_of "<!ELEMENT a (b)><!ELEMENT b (c+)><!ELEMENT c (#PCDATA)>" in
  (* a cannot be a leaf (requires b); b requires c; c can. *)
  check (Alcotest.list cs) "leaves" [ "c" ] (Dtd_graph.leaf_elements g)

let test_samples_recursion_classification () =
  let recursive name =
    Dtd_graph.is_recursive (Dtd_graph.build (Option.get (Dtd_samples.by_name name)))
  in
  check cb "nitf recursive" true (recursive "nitf");
  check cb "book recursive" true (recursive "book");
  check cb "psd non-recursive" false (recursive "psd");
  check cb "insurance non-recursive" false (recursive "insurance")

(* ---------------- Paths & advertisements ---------------- *)

let test_enumerate_paths_simple () =
  let g = graph_of "<!ELEMENT a (b | c)><!ELEMENT b (#PCDATA)><!ELEMENT c (d)><!ELEMENT d EMPTY>" in
  let paths = Dtd_paths.enumerate_paths ~max_depth:5 g in
  let strings = List.map (fun p -> String.concat "/" (Array.to_list p)) paths in
  check (Alcotest.list cs) "paths" [ "a/b"; "a/c/d" ] (List.sort compare strings)

let test_enumerate_paths_depth_bound () =
  let g = graph_of "<!ELEMENT a (a | b)*><!ELEMENT b EMPTY>" in
  let paths = Dtd_paths.enumerate_paths ~max_depth:3 g in
  check cb "depth bounded" true
    (List.for_all (fun p -> Array.length p <= 3) paths);
  (* a, a/b, a/a, a/a/b, a/a/a ... within depth 3: a; a/a; a/a/a; a/b; a/a/b *)
  check ci "count" 5 (List.length paths)

let test_enumerate_max_count () =
  let g = graph_of "<!ELEMENT a (a | b)*><!ELEMENT b EMPTY>" in
  check ci "capped" 3 (List.length (Dtd_paths.enumerate_paths ~max_count:3 ~max_depth:8 g))

let test_sample_paths_valid () =
  let g = Dtd_graph.build (Option.get (Dtd_samples.by_name "nitf")) in
  let prng = Xroute_support.Prng.create 5 in
  let paths = Dtd_paths.sample_paths ~count:50 ~max_depth:10 prng g in
  check ci "count" 50 (List.length paths);
  List.iter
    (fun p ->
      check cb "starts at root" true (p.(0) = "nitf");
      check cb "bounded" true (Array.length p <= 10))
    paths

let test_advertisements_non_recursive () =
  let g = graph_of "<!ELEMENT a (b | c)><!ELEMENT b (#PCDATA)><!ELEMENT c (d)><!ELEMENT d EMPTY>" in
  let advs = Dtd_paths.advertisements g in
  let strings = List.sort compare (List.map Xroute_xpath.Adv.to_string advs) in
  check (Alcotest.list cs) "advs" [ "/a/b"; "/a/c/d" ] strings;
  check cb "none recursive" true (List.for_all (fun a -> not (Xroute_xpath.Adv.is_recursive a)) advs)

let test_advertisements_self_loop () =
  let g = graph_of "<!ELEMENT a (a | b)*><!ELEMENT b EMPTY>" in
  let advs = Dtd_paths.advertisements g in
  let strings = List.sort compare (List.map Xroute_xpath.Adv.to_string advs) in
  check (Alcotest.list cs) "advs" [ "(/a)+"; "(/a)+/b" ] strings

let test_advertisements_two_cycle () =
  let g = graph_of "<!ELEMENT a (b?)><!ELEMENT b (a | c)?><!ELEMENT c EMPTY>" in
  let advs = Dtd_paths.advertisements g in
  let strings = List.sort compare (List.map Xroute_xpath.Adv.to_string advs) in
  (* paths: a; a b; a b a b ...; exits at a, b, and c below b *)
  check cb "has recursive" true (List.exists Xroute_xpath.Adv.is_recursive advs);
  check cb "covers a/b/c paths" true
    (List.exists (fun a -> Xroute_xpath.Adv.matches_names a [| "a"; "b"; "c" |]) advs);
  check cb "covers unrolled" true
    (List.exists
       (fun a -> Xroute_xpath.Adv.matches_names a [| "a"; "b"; "a"; "b"; "c" |])
       advs);
  ignore strings

let test_advertisements_validate_samples () =
  List.iter
    (fun name ->
      let g = Dtd_graph.build (Option.get (Dtd_samples.by_name name)) in
      let advs = Dtd_paths.advertisements g in
      let missing = Dtd_paths.validate ~max_depth:8 ~max_count:100_000 g advs in
      check ci (name ^ " fully covered") 0 (List.length missing))
    Dtd_samples.names

let test_advertisements_no_false_paths () =
  (* Every expansion of every generated advertisement is a DTD path. *)
  let g = graph_of "<!ELEMENT a (b, c?)><!ELEMENT b (b?)><!ELEMENT c EMPTY>" in
  let advs = Dtd_paths.advertisements g in
  let paths = Dtd_paths.enumerate_paths ~max_depth:8 g in
  let path_set = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace path_set (String.concat "/" (Array.to_list p)) ()) paths;
  List.iter
    (fun adv ->
      List.iter
        (fun exp ->
          let names =
            Array.map
              (function
                | Xroute_xpath.Xpe.Name n -> Xroute_support.Symbol.name n
                | Xroute_xpath.Xpe.Star -> "*")
              exp
          in
          let key = String.concat "/" (Array.to_list names) in
          if Array.length names <= 8 then
            check cb ("adv path is a DTD path: " ^ key) true (Hashtbl.mem path_set key))
        (Xroute_xpath.Adv.expand ~max_reps:3 adv))
    advs

let test_adv_count_ratio () =
  (* The NITF-like DTD yields an advertisement set much larger than the
     PSD-like one (the paper reports a 35x ratio for the real DTDs). *)
  let count name =
    List.length
      (Dtd_paths.advertisements (Dtd_graph.build (Option.get (Dtd_samples.by_name name))))
  in
  let nitf = count "nitf" and psd = count "psd" in
  check cb "nitf much larger" true (nitf > 5 * psd)

let test_covers_document () =
  let dtd = Option.get (Dtd_samples.by_name "book") in
  let g = Dtd_graph.build dtd in
  let advs = Dtd_paths.advertisements g in
  let doc =
    Xroute_xml.Xml_parser.parse
      "<book><title/><author><name/></author><chapter><title/><section><title/><para/></section></chapter></book>"
  in
  check cb "covered" true (Dtd_paths.covers_document g advs doc);
  let alien = Xroute_xml.Xml_parser.parse "<book><alien/></book>" in
  check cb "alien not covered" false (Dtd_paths.covers_document g advs alien)

(* ---------------- Printer ---------------- *)

let test_printer_roundtrip_samples () =
  List.iter
    (fun name ->
      let dtd = Option.get (Dtd_samples.by_name name) in
      let printed = Dtd_printer.to_string dtd in
      match Dtd_parser.parse_opt ~root:(Dtd_ast.root dtd) printed with
      | None -> Alcotest.failf "printed %s does not reparse" name
      | Some dtd' ->
        check ci (name ^ " same element count") (Dtd_ast.element_count dtd)
          (Dtd_ast.element_count dtd');
        (* semantic check: identical advertisement sets *)
        let advs d = List.map Xroute_xpath.Adv.to_string
            (Dtd_paths.advertisements (Dtd_graph.build d)) in
        check (Alcotest.list cs) (name ^ " same advertisements")
          (List.sort compare (advs dtd)) (List.sort compare (advs dtd')))
    Dtd_samples.names

let test_printer_attlist () =
  let dtd = parse {|<!ELEMENT a EMPTY><!ATTLIST a k (x | y) #REQUIRED f CDATA #FIXED "v">|} in
  let printed = Dtd_printer.to_string dtd in
  match Dtd_parser.parse_opt printed with
  | None -> Alcotest.failf "attlist did not reparse: %s" printed
  | Some dtd' -> (
    match Dtd_ast.find dtd' "a" with
    | Some { Dtd_ast.attrs = [ k; f ]; _ } ->
      check cb "enum kept" true (k.Dtd_ast.attr_type = Dtd_ast.Enum [ "x"; "y" ]);
      check cb "fixed kept" true (f.Dtd_ast.attr_default = Dtd_ast.Fixed "v")
    | _ -> Alcotest.fail "attributes lost")

(* ---------------- Validator ---------------- *)

let test_validate_ok () =
  let dtd = parse "<!ELEMENT a (b, c?)><!ELEMENT b EMPTY><!ELEMENT c (#PCDATA)>" in
  let ok = Xroute_xml.Xml_parser.parse "<a><b/><c>t</c></a>" in
  check cb "valid" true (Dtd_validate.is_valid dtd ok);
  let ok2 = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  check cb "optional omitted" true (Dtd_validate.is_valid dtd ok2)

let test_validate_content_errors () =
  let dtd = parse "<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>" in
  let bad_order = Xroute_xml.Xml_parser.parse "<a><c/><b/></a>" in
  check cb "wrong order" false (Dtd_validate.is_valid dtd bad_order);
  let missing = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  check cb "missing child" false (Dtd_validate.is_valid dtd missing);
  let undeclared = Xroute_xml.Xml_parser.parse "<a><b/><c/><z/></a>" in
  check cb "undeclared element" false (Dtd_validate.is_valid dtd undeclared)

let test_validate_empty_and_pcdata () =
  let dtd = parse "<!ELEMENT a (b)><!ELEMENT b EMPTY>" in
  let with_text = Xroute_xml.Xml_parser.parse "<a><b>text</b></a>" in
  check cb "EMPTY with text" false (Dtd_validate.is_valid dtd with_text);
  let dtd2 = parse "<!ELEMENT a (#PCDATA)>" in
  check cb "pcdata text ok" true
    (Dtd_validate.is_valid dtd2 (Xroute_xml.Xml_parser.parse "<a>hello</a>"));
  check cb "pcdata child bad" false
    (Dtd_validate.is_valid dtd2 (Xroute_xml.Xml_parser.parse "<a><a/></a>"))

let test_validate_mixed () =
  let dtd = parse "<!ELEMENT a (#PCDATA | b)*><!ELEMENT b (#PCDATA)><!ELEMENT z EMPTY>" in
  check cb "mixed ok" true
    (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse "<a>x<b>y</b>z</a>"));
  check cb "mixed wrong child" false
    (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse "<a><z/></a>"))

let test_validate_attrs () =
  let dtd =
    parse
      {|<!ELEMENT a EMPTY>
        <!ATTLIST a k (x | y) #REQUIRED f CDATA #FIXED "v">|}
  in
  check cb "required+fixed ok" true
    (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse {|<a k="x" f="v"/>|}));
  check cb "missing required" false
    (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse {|<a f="v"/>|}));
  check cb "bad enum value" false
    (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse {|<a k="z"/>|}));
  check cb "wrong fixed" false
    (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse {|<a k="x" f="w"/>|}));
  check cb "undeclared attr" false
    (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse {|<a k="x" q="1"/>|}))

let test_validate_wrong_root () =
  let dtd = parse "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>" in
  check cb "wrong root" false (Dtd_validate.is_valid dtd (Xroute_xml.Xml_parser.parse "<b/>"));
  match Dtd_validate.validate dtd (Xroute_xml.Xml_parser.parse "<b/>") with
  | e :: _ -> check cb "error mentions root" true
                (String.length (Dtd_validate.error_to_string e) > 0)
  | [] -> Alcotest.fail "expected error"

let test_particle_matches () =
  let open Dtd_ast in
  check cb "star empty" true (Dtd_validate.particle_matches (Star (Elem "x")) []);
  check cb "star many" true (Dtd_validate.particle_matches (Star (Elem "x")) [ "x"; "x" ]);
  check cb "plus needs one" false (Dtd_validate.particle_matches (Plus (Elem "x")) []);
  check cb "choice" true (Dtd_validate.particle_matches (Choice [ Elem "x"; Elem "y" ]) [ "y" ]);
  check cb "seq backtracking" true
    (Dtd_validate.particle_matches
       (Seq [ Star (Elem "x"); Elem "x" ])
       [ "x"; "x"; "x" ]);
  check cb "nullable star no loop" true
    (Dtd_validate.particle_matches (Star (Opt (Elem "x"))) [ "x" ])

let () =
  Alcotest.run "dtd"
    [
      ( "parser",
        [
          Alcotest.test_case "element kinds" `Quick test_parse_element_kinds;
          Alcotest.test_case "mixed" `Quick test_parse_mixed;
          Alcotest.test_case "nested groups" `Quick test_parse_nested_groups;
          Alcotest.test_case "attlist" `Quick test_parse_attlist;
          Alcotest.test_case "parameter entities" `Quick test_parse_parameter_entities;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "explicit root" `Quick test_parse_explicit_root;
          Alcotest.test_case "samples parse" `Quick test_samples_parse;
          Alcotest.test_case "nullability" `Quick test_nullable;
        ] );
      ( "graph",
        [
          Alcotest.test_case "children" `Quick test_graph_children;
          Alcotest.test_case "self recursion" `Quick test_graph_recursion_self;
          Alcotest.test_case "mutual recursion" `Quick test_graph_recursion_mutual;
          Alcotest.test_case "non recursive" `Quick test_graph_non_recursive;
          Alcotest.test_case "unreachable" `Quick test_graph_unreachable;
          Alcotest.test_case "unreachable cycle" `Quick test_graph_unreachable_cycle_not_recursive_dtd;
          Alcotest.test_case "leaves" `Quick test_graph_leaves;
          Alcotest.test_case "samples classified" `Quick test_samples_recursion_classification;
        ] );
      ( "paths",
        [
          Alcotest.test_case "enumerate simple" `Quick test_enumerate_paths_simple;
          Alcotest.test_case "depth bound" `Quick test_enumerate_paths_depth_bound;
          Alcotest.test_case "max count" `Quick test_enumerate_max_count;
          Alcotest.test_case "sample walks" `Quick test_sample_paths_valid;
        ] );
      ( "printer",
        [
          Alcotest.test_case "samples roundtrip" `Quick test_printer_roundtrip_samples;
          Alcotest.test_case "attlist" `Quick test_printer_attlist;
        ] );
      ( "validate",
        [
          Alcotest.test_case "ok" `Quick test_validate_ok;
          Alcotest.test_case "content errors" `Quick test_validate_content_errors;
          Alcotest.test_case "empty and pcdata" `Quick test_validate_empty_and_pcdata;
          Alcotest.test_case "mixed" `Quick test_validate_mixed;
          Alcotest.test_case "attributes" `Quick test_validate_attrs;
          Alcotest.test_case "wrong root" `Quick test_validate_wrong_root;
          Alcotest.test_case "particles" `Quick test_particle_matches;
        ] );
      ( "advertisements",
        [
          Alcotest.test_case "non recursive" `Quick test_advertisements_non_recursive;
          Alcotest.test_case "self loop" `Quick test_advertisements_self_loop;
          Alcotest.test_case "two cycle" `Quick test_advertisements_two_cycle;
          Alcotest.test_case "samples validate" `Slow test_advertisements_validate_samples;
          Alcotest.test_case "no false paths" `Quick test_advertisements_no_false_paths;
          Alcotest.test_case "nitf/psd ratio" `Quick test_adv_count_ratio;
          Alcotest.test_case "covers document" `Quick test_covers_document;
        ] );
    ]
