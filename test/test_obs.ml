(* Tests for the observability library: metrics registry semantics,
   hop tracing, and golden tests for both exposition formats. *)

open Xroute_obs

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9
let cs = Alcotest.string

(* ---------------- counters ---------------- *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  check ci "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  check ci "incr and add accumulate" 7 (Metrics.value c)

let test_counter_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  Metrics.add c 3;
  check cb "negative add raises" true
    (try
       Metrics.add c (-1);
       false
     with Invalid_argument _ -> true);
  check ci "value unchanged after rejected add" 3 (Metrics.value c);
  (* mirror semantics: external cumulative sources only move forward *)
  Metrics.counter_set c 10;
  check ci "counter_set advances" 10 (Metrics.value c);
  Metrics.counter_set c 4;
  check ci "counter_set never regresses" 10 (Metrics.value c)

let test_registration_idempotent () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "xroute_test_events_total" in
  Metrics.incr a;
  let b = Metrics.counter reg "xroute_test_events_total" in
  Metrics.incr b;
  check ci "same handle" 2 (Metrics.value a);
  check ci "one registration" 1 (List.length (Metrics.metrics reg));
  check cb "type conflict raises" true
    (try
       ignore (Metrics.gauge reg "xroute_test_events_total");
       false
     with Invalid_argument _ -> true)

(* ---------------- gauges ---------------- *)

let test_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "xroute_test_depth" in
  check cf "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 2.5;
  check cf "set" 2.5 (Metrics.gauge_value g);
  Metrics.set_int g 7;
  check cf "set_int" 7.0 (Metrics.gauge_value g);
  Metrics.set_int g 3;
  check cf "gauges may go down" 3.0 (Metrics.gauge_value g)

(* ---------------- histograms ---------------- *)

let test_histogram_summary_matches_stats () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  let prng = Xroute_support.Prng.create 99 in
  let values = Array.init 500 (fun _ -> Xroute_support.Prng.float prng 100.0) in
  Array.iter (Metrics.observe h) values;
  let expect = Xroute_support.Stats.summarize values in
  let got = Metrics.summary h in
  check ci "count" expect.count got.count;
  check cf "mean" expect.mean got.mean;
  check cf "p50" expect.p50 got.p50;
  check cf "p95" expect.p95 got.p95;
  check cf "p99" expect.p99 got.p99;
  check cf "sum matches" (Array.fold_left ( +. ) 0.0 values) (Metrics.sum h)

let test_histogram_cap () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~cap:10 "xroute_test_latency_ms" in
  for i = 1 to 25 do
    Metrics.observe h (float_of_int i)
  done;
  check ci "retains at most cap samples" 10 (Array.length (Metrics.samples h));
  check ci "total counts past the cap" 25 (Metrics.observations h);
  check cf "sum counts past the cap" 325.0 (Metrics.sum h)

(* Interleaved updates from simulator callbacks: events scheduled out of
   order must still produce a consistent registry. *)
let test_interleaved_sim_updates () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  let sim = Xroute_overlay.Sim.create () in
  (* schedule in shuffled order; the sim executes by virtual time *)
  List.iter
    (fun delay ->
      Xroute_overlay.Sim.schedule sim ~delay (fun () ->
          Metrics.incr c;
          Metrics.observe h (Xroute_overlay.Sim.now sim)))
    [ 5.0; 1.0; 9.0; 3.0; 7.0; 2.0; 8.0; 4.0; 10.0; 6.0 ];
  Xroute_overlay.Sim.run sim;
  check ci "every callback counted" 10 (Metrics.value c);
  check ci "every callback observed" 10 (Metrics.observations h);
  check cf "sum of virtual times" 55.0 (Metrics.sum h);
  let s = Metrics.summary h in
  check cf "min is earliest event" 1.0 s.min;
  check cf "max is latest event" 10.0 s.max

(* ---------------- lookup and aggregation ---------------- *)

let test_scalar_and_find () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  let g = Metrics.gauge reg "xroute_test_depth" in
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  Metrics.add c 4;
  Metrics.set g 1.5;
  Metrics.observe h 3.0;
  Metrics.observe h 9.0;
  check cb "counter scalar" true (Metrics.scalar reg "xroute_test_events_total" = Some 4.0);
  check cb "gauge scalar" true (Metrics.scalar reg "xroute_test_depth" = Some 1.5);
  check cb "histogram scalar is count" true
    (Metrics.scalar reg "xroute_test_latency_ms" = Some 2.0);
  check cb "missing scalar" true (Metrics.scalar reg "nope" = None);
  check cb "find missing" true (Metrics.find reg "nope" = None)

let test_aggregate () =
  let mk cv gv hs =
    let reg = Metrics.create () in
    Metrics.add (Metrics.counter reg "xroute_test_events_total") cv;
    Metrics.set (Metrics.gauge reg "xroute_test_depth") gv;
    let h = Metrics.histogram reg "xroute_test_latency_ms" in
    List.iter (Metrics.observe h) hs;
    reg
  in
  let a = mk 3 1.0 [ 1.0; 2.0 ] in
  let b = mk 4 2.5 [ 10.0 ] in
  let agg = Metrics.aggregate [ a; b ] in
  check cb "counters sum" true (Metrics.scalar agg "xroute_test_events_total" = Some 7.0);
  check cb "gauges sum" true (Metrics.scalar agg "xroute_test_depth" = Some 3.5);
  (match Metrics.find agg "xroute_test_latency_ms" with
  | Some (Metrics.Histogram h) ->
    check ci "samples pooled" 3 (Metrics.observations h);
    check cf "sums pooled" 13.0 (Metrics.sum h)
  | _ -> Alcotest.fail "aggregated histogram missing")

(* Aggregation must survive capped histograms: the pooled registry keeps
   only each source's retained samples, but the observation count and
   sum must stay the true totals, not the retained ones. *)
let test_aggregate_capped_histograms () =
  let mk n base =
    let reg = Metrics.create () in
    let h = Metrics.histogram reg ~cap:4 "xroute_test_latency_ms" in
    for i = 1 to n do
      Metrics.observe h (base +. float_of_int i)
    done;
    reg
  in
  let a = mk 10 0.0 (* retains 4 of 10, sum 55 *) in
  let b = mk 6 100.0 (* retains 4 of 6, sum 621 *) in
  match Metrics.find (Metrics.aggregate [ a; b ]) "xroute_test_latency_ms" with
  | Some (Metrics.Histogram h) ->
    check ci "true observation total past both caps" 16 (Metrics.observations h);
    check cf "true sum past both caps" 676.0 (Metrics.sum h);
    check cb "retained pool still bounded by the cap" true
      (Array.length (Metrics.samples h) <= 4)
  | _ -> Alcotest.fail "aggregated histogram missing"

(* counter_set mirrors an external cumulative source; after aggregation
   the merged value exceeds any single source, and a later mirror of one
   source must not drag it back down. *)
let test_aggregate_counter_set_no_regression () =
  let mk v =
    let reg = Metrics.create () in
    Metrics.add (Metrics.counter reg "xroute_test_events_total") v;
    reg
  in
  match Metrics.find (Metrics.aggregate [ mk 3; mk 4 ]) "xroute_test_events_total" with
  | Some (Metrics.Counter c) ->
    check ci "aggregated" 7 (Metrics.value c);
    Metrics.counter_set c 5;
    check ci "mirror below the merged total is ignored" 7 (Metrics.value c);
    Metrics.counter_set c 9;
    check ci "mirror above it advances" 9 (Metrics.value c)
  | _ -> Alcotest.fail "aggregated counter missing"

let test_aggregate_preserves_help () =
  let mk () =
    let reg = Metrics.create () in
    ignore (Metrics.counter reg ~help:"Messages handled." "xroute_test_msgs_total");
    ignore (Metrics.gauge reg ~help:"Table size." "xroute_test_size");
    ignore (Metrics.histogram reg ~help:"Latency." "xroute_test_latency_ms");
    reg
  in
  let agg = Metrics.aggregate [ mk (); mk () ] in
  let helps = List.map (fun (n, h, _) -> (n, h)) (Metrics.metrics agg) in
  List.iter
    (fun pair -> check cb "help text survives aggregation" true (List.mem pair helps))
    [
      ("xroute_test_msgs_total", "Messages handled.");
      ("xroute_test_size", "Table size.");
      ("xroute_test_latency_ms", "Latency.");
    ];
  let prom = Metrics.to_prometheus agg in
  check cb "HELP lines in the merged exposition" true
    (let needle = "# HELP xroute_test_msgs_total Messages handled." in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length prom && (String.sub prom i n = needle || scan (i + 1))
     in
     scan 0)

(* ---------------- golden expositions ---------------- *)

(* These pin the exact exposition byte-for-byte: the daemon streams it
   over the wire and external scrapers parse it, so format drift is an
   interface break, not a cosmetic change. *)
let golden_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"Messages handled." "xroute_test_msgs_total" in
  Metrics.add c 42;
  let g = Metrics.gauge reg ~help:"Table size." "xroute_test_size" in
  Metrics.set g 17.5;
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  reg

let test_golden_prometheus () =
  let expect =
    String.concat "\n"
      [
        "# TYPE xroute_test_latency_ms summary";
        "xroute_test_latency_ms{quantile=\"0.5\"} 2";
        "xroute_test_latency_ms{quantile=\"0.95\"} 4";
        "xroute_test_latency_ms{quantile=\"0.99\"} 4";
        "xroute_test_latency_ms_sum 10";
        "xroute_test_latency_ms_count 4";
        "# HELP xroute_test_msgs_total Messages handled.";
        "# TYPE xroute_test_msgs_total counter";
        "xroute_test_msgs_total 42";
        "# HELP xroute_test_size Table size.";
        "# TYPE xroute_test_size gauge";
        "xroute_test_size 17.5";
        "";
      ]
  in
  check cs "prometheus text" expect (Metrics.to_prometheus (golden_registry ()))

let test_golden_json () =
  let expect =
    "{\"metrics\":["
    ^ "{\"name\":\"xroute_test_latency_ms\",\"help\":\"\",\"type\":\"histogram\",\
       \"count\":4,\"sum\":10,\"mean\":2.5,\"min\":1,\"max\":4,\"p50\":2,\"p95\":4,\"p99\":4},"
    ^ "{\"name\":\"xroute_test_msgs_total\",\"help\":\"Messages handled.\",\
       \"type\":\"counter\",\"value\":42},"
    ^ "{\"name\":\"xroute_test_size\",\"help\":\"Table size.\",\"type\":\"gauge\",\
       \"value\":17.5}]}"
  in
  check cs "json" expect (Metrics.to_json (golden_registry ()))

(* ---------------- hop trace ---------------- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  check cb "zero capacity raises" true
    (try
       ignore (Trace.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true);
  for i = 0 to 9 do
    Trace.record tr ~kind:"pub" ~key:i ~broker:(i mod 3) ~time:(float_of_int i)
      ~queue_depth:i ~match_ops:0
  done;
  check ci "length counts all records" 10 (Trace.length tr);
  check ci "capacity" 4 (Trace.capacity tr);
  let retained = Trace.to_list tr in
  check ci "retains only the newest" 4 (List.length retained);
  check cb "oldest first" true
    (List.map (fun h -> h.Trace.key) retained = [ 6; 7; 8; 9 ]);
  Trace.clear tr;
  check ci "clear resets" 0 (Trace.length tr)

let test_trace_hops_for () =
  let tr = Trace.create () in
  let key = Trace.key_of_id ~origin:3 ~seq:7 in
  Trace.record tr ~kind:"sub" ~key ~broker:0 ~time:0.0 ~queue_depth:1 ~match_ops:2;
  Trace.record tr ~kind:"pub" ~key:99 ~broker:0 ~time:1.0 ~queue_depth:0 ~match_ops:0;
  Trace.record tr ~kind:"sub" ~key ~broker:1 ~time:2.0 ~queue_depth:0 ~match_ops:5;
  let hops = Trace.hops_for tr ~key in
  check ci "both hops of the message" 2 (List.length hops);
  check cb "ordered by record time" true
    (List.map (fun h -> h.Trace.broker) hops = [ 0; 1 ]);
  check cb "distinct ids get distinct keys" true
    (Trace.key_of_id ~origin:3 ~seq:7 <> Trace.key_of_id ~origin:7 ~seq:3)

(* The per-key bucket index: looking up one message's path must cost its
   own hop count, no matter how much unrelated traffic the ring holds. *)
let test_trace_lookup_cost_independent () =
  let tr = Trace.create ~capacity:8192 () in
  let key = 424242 in
  for i = 0 to 2 do
    Trace.record tr ~kind:"pub" ~key ~broker:i ~time:(float_of_int i) ~queue_depth:0
      ~match_ops:0
  done;
  for i = 0 to 4999 do
    Trace.record tr ~kind:"pub" ~key:i ~broker:0 ~time:10.0 ~queue_depth:0 ~match_ops:0
  done;
  check ci "path found under noise" 3 (List.length (Trace.hops_for tr ~key));
  check ci "lookup cost = this key's hops, not ring size" 3 (Trace.last_lookup_cost tr)

(* ---------------- causal spans ---------------- *)

let test_span_tree_and_stage_sum () =
  let t = Span.create () in
  let root = Span.start_span t ~trace:7 ~name:"pub" ~broker:(-1) ~at:0.0 () in
  let hop = Span.start_span t ~parent:root.Span.id ~trace:7 ~name:"hop" ~broker:0 ~at:0.0 () in
  ignore
    (Span.record t ~parent:hop.Span.id ~trace:7 ~name:"queue" ~broker:0 ~start:0.0
       ~stop:1.0 ());
  ignore
    (Span.record t ~parent:hop.Span.id ~trace:7 ~name:"proc" ~broker:0 ~start:1.0
       ~stop:3.0 ());
  Span.finish hop ~at:3.0;
  Span.extend root ~at:3.0;
  let spans = Span.spans_for t ~trace:7 in
  check ci "four spans in the trace" 4 (List.length spans);
  (match Span.check_tree spans with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("well-formed tree rejected: " ^ e));
  check cf "stage leaves sum to end-to-end" 3.0 (Span.stage_sum spans);
  check cb "root_for finds the root" true
    (match Span.root_for t ~trace:7 with Some r -> r.Span.id = root.Span.id | None -> false);
  check cb "extend never moves stop back" true
    (Span.extend root ~at:1.0;
     root.Span.stop = 3.0)

let test_span_check_tree_rejects () =
  let expect_error label spans =
    check cb label true (Result.is_error (Span.check_tree spans))
  in
  let mk () =
    let t = Span.create () in
    let root = Span.start_span t ~trace:1 ~name:"pub" ~broker:(-1) ~at:0.0 () in
    let hop = Span.start_span t ~parent:root.Span.id ~trace:1 ~name:"hop" ~broker:0 ~at:0.0 () in
    Span.finish hop ~at:3.0;
    Span.extend root ~at:3.0;
    (t, root, hop)
  in
  (* leaf escaping its parent's interval *)
  let t, _, hop = mk () in
  ignore
    (Span.record t ~parent:hop.Span.id ~trace:1 ~name:"proc" ~broker:0 ~start:1.0
       ~stop:5.0 ());
  expect_error "leaf past its parent" (Span.to_list t);
  (* two roots in one trace *)
  let t, _, _ = mk () in
  ignore (Span.record t ~trace:1 ~name:"pub" ~broker:(-1) ~start:0.0 ~stop:1.0 ());
  expect_error "second root" (Span.to_list t);
  (* dangling parent *)
  let t, _, _ = mk () in
  ignore (Span.record t ~parent:999 ~trace:1 ~name:"proc" ~broker:0 ~start:0.0 ~stop:1.0 ());
  expect_error "unresolved parent" (Span.to_list t);
  (* negative duration *)
  let t, _, hop = mk () in
  ignore
    (Span.record t ~parent:hop.Span.id ~trace:1 ~name:"proc" ~broker:0 ~start:2.0
       ~stop:1.0 ());
  expect_error "span ends before it starts" (Span.to_list t);
  (* an INTERIOR child may start after its parent ended: a hop chained
     across daemons, where the message was in flight when the upstream
     hop closed *)
  let t, _, hop = mk () in
  let hop2 = Span.start_span t ~parent:hop.Span.id ~trace:1 ~name:"hop" ~broker:1 ~at:5.0 () in
  ignore
    (Span.record t ~parent:hop2.Span.id ~trace:1 ~name:"proc" ~broker:1 ~start:5.0
       ~stop:6.0 ());
  Span.finish hop2 ~at:6.0;
  check cb "late interior hop accepted (in-flight gap)" true
    (Result.is_ok (Span.check_tree (Span.to_list t)))

let test_span_ring_and_lookup_cost () =
  let t = Span.create ~capacity:64 () in
  for i = 0 to 199 do
    ignore (Span.record t ~trace:2 ~name:"hop" ~broker:0 ~start:(float_of_int i)
              ~stop:(float_of_int i) ())
  done;
  ignore (Span.record t ~trace:1 ~name:"pub" ~broker:(-1) ~start:500.0 ~stop:500.0 ());
  ignore (Span.record t ~trace:1 ~name:"hop" ~broker:0 ~start:500.0 ~stop:501.0 ());
  check ci "length counts all spans ever" 202 (Span.length t);
  check ci "ring retains capacity" 64 (List.length (Span.to_list t));
  check ci "trace bucket intact under noise" 2
    (List.length (Span.spans_for t ~trace:1));
  check ci "lookup cost = this trace's spans" 2 (Span.last_lookup_cost t);
  check cb "evicted spans are unfindable" true (Span.find t 1 = None);
  Span.clear t;
  check ci "clear resets" 0 (Span.length t)

let test_span_wire_roundtrip () =
  let t = Span.create () in
  let nasty = "hop|with\npipes\rand 100% escapes" in
  let s =
    Span.record t ~parent:3 ~trace:9 ~name:nasty ~broker:2
      ~meta:[ ("k|ey", "v|al\nue"); ("pct", "100%") ]
      ~start:1.5 ~stop:2.5 ()
  in
  match Span.of_wire_line (Span.to_wire_line s) with
  | None -> Alcotest.fail "wire line did not parse back"
  | Some s' ->
    check ci "id" s.Span.id s'.Span.id;
    check ci "trace" 9 s'.Span.trace;
    check cb "parent" true (s'.Span.parent = Some 3);
    check cs "hostile name intact" nasty s'.Span.name;
    check ci "broker" 2 s'.Span.broker;
    check cf "start" 1.5 s'.Span.start;
    check cf "stop" 2.5 s'.Span.stop;
    check cb "hostile meta intact" true (s'.Span.meta = s.Span.meta)

(* ---------------- monotonic clock ---------------- *)

let test_mono_never_decreases () =
  (* the anchor sample (100) is taken by create; then the source steps
     backwards from 105 to 50 *)
  let readings = ref [ 100.0; 105.0; 50.0; 52.0 ] in
  let source () =
    match !readings with
    | [] -> 60.0
    | x :: rest ->
      readings := rest;
      x
  in
  let m = Xroute_support.Mono.create ~source () in
  check cf "advances with the source" 105.0 (Xroute_support.Mono.now m);
  check cf "backward step held at the last reading" 105.0 (Xroute_support.Mono.now m);
  check cf "resumes at the source's rate" 107.0 (Xroute_support.Mono.now m);
  check cf "compensation accounted" 55.0 (Xroute_support.Mono.offset m)

(* ---------------- timeseries ---------------- *)

let test_timeseries_deltas_and_rates () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "xroute_test_events_total" in
  let g = Metrics.gauge reg "xroute_test_depth" in
  let ts = Timeseries.create ~capacity:4 reg in
  check cb "no deltas before two snapshots" true (Timeseries.deltas ts = []);
  Metrics.add c 10;
  Metrics.set g 2.0;
  Timeseries.snapshot ts ~at:1000.0;
  Metrics.add c 5;
  Metrics.set g 1.0;
  Timeseries.snapshot ts ~at:3000.0;
  check cf "counter delta" 5.0 (List.assoc "xroute_test_events_total" (Timeseries.deltas ts));
  check cf "gauge delta may be negative" (-1.0)
    (List.assoc "xroute_test_depth" (Timeseries.deltas ts));
  check cf "rate is per second" 2.5
    (List.assoc "xroute_test_events_total" (Timeseries.rates ts));
  for i = 1 to 6 do
    Timeseries.snapshot ts ~at:(3000.0 +. float_of_int i)
  done;
  check ci "snapshots ever" 8 (Timeseries.length ts);
  check ci "ring retains capacity" 4 (List.length (Timeseries.to_list ts));
  check cb "last is the newest" true
    (match Timeseries.last ts with Some s -> s.Timeseries.at = 3006.0 | None -> false)

(* ---------------- flight recorder ---------------- *)

let test_recorder_dump () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xroute-flight-test-%d" (Unix.getpid ()))
  in
  let r = Recorder.create ~dir () in
  let t = Span.create () in
  ignore (Span.record t ~trace:1 ~name:"hop" ~broker:0 ~start:0.0 ~stop:1.0 ());
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "xroute_test_events_total") 3;
  (match
     Recorder.trigger r ~reason:"Broker 2 crashed!" ~at:123.0 ~metrics:reg
       ~spans:(Span.to_list t)
       ~rates:[ ("xroute_test_events_total", 1.5) ]
       ()
   with
  | Error e -> Alcotest.fail ("dump failed: " ^ e)
  | Ok path ->
    check cb "dump file exists" true (Sys.file_exists path);
    check cb "path recorded newest-first" true (Recorder.dumps r = [ path ]);
    let ic = open_in_bin path in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Xroute_support.Json.parse body with
    | Error e -> Alcotest.fail ("dump is not JSON: " ^ e)
    | Ok j ->
      let str k = Option.bind (Xroute_support.Json.member k j) Xroute_support.Json.to_str in
      check cb "flight schema" true (str "schema" = Some "xroute-flight/1");
      check cb "reason embedded" true (str "reason" = Some "Broker 2 crashed!");
      check cb "spans field is a chrome trace object" true
        (match Xroute_support.Json.member "spans" j with
        | Some spans -> Xroute_support.Json.member "traceEvents" spans <> None
        | None -> false));
    Sys.remove path);
  (try Sys.rmdir dir with Sys_error _ -> ());
  (* a broken directory is reported, never raised *)
  let bad = Recorder.create ~dir:"/dev/null/nope" () in
  check cb "broken dir reported as Error" true
    (match bad |> fun b -> Recorder.trigger b ~reason:"x" ~at:0.0 () with
    | Error _ -> true
    | Ok _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "registration idempotent" `Quick test_registration_idempotent;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram summary = Stats.summarize" `Quick
            test_histogram_summary_matches_stats;
          Alcotest.test_case "histogram cap" `Quick test_histogram_cap;
          Alcotest.test_case "interleaved sim updates" `Quick test_interleaved_sim_updates;
          Alcotest.test_case "scalar and find" `Quick test_scalar_and_find;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "aggregate capped histograms" `Quick
            test_aggregate_capped_histograms;
          Alcotest.test_case "aggregate then counter_set" `Quick
            test_aggregate_counter_set_no_regression;
          Alcotest.test_case "aggregate preserves help" `Quick test_aggregate_preserves_help;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "golden prometheus" `Quick test_golden_prometheus;
          Alcotest.test_case "golden json" `Quick test_golden_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_trace_ring;
          Alcotest.test_case "hops_for" `Quick test_trace_hops_for;
          Alcotest.test_case "lookup cost independent of noise" `Quick
            test_trace_lookup_cost_independent;
        ] );
      ( "span",
        [
          Alcotest.test_case "tree and stage sum" `Quick test_span_tree_and_stage_sum;
          Alcotest.test_case "check_tree rejects malformed trees" `Quick
            test_span_check_tree_rejects;
          Alcotest.test_case "ring and lookup cost" `Quick test_span_ring_and_lookup_cost;
          Alcotest.test_case "wire round-trip" `Quick test_span_wire_roundtrip;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic under backward steps" `Quick test_mono_never_decreases ] );
      ( "timeseries",
        [ Alcotest.test_case "deltas and rates" `Quick test_timeseries_deltas_and_rates ] );
      ( "recorder",
        [ Alcotest.test_case "dump and error path" `Quick test_recorder_dump ] );
    ]
