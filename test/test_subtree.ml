(* Tests for Sub_tree: insertion cases, covering queries, removal,
   publication matching with pruning, super pointers and invariants. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let xp = Xpe_parser.parse
let path s = Array.of_list (String.split_on_char '/' s)

let tree_of xpes =
  let t : int Sub_tree.t = Sub_tree.create () in
  List.iteri (fun i s -> ignore (Sub_tree.insert t (xp s) i)) xpes;
  t

let assert_invariants t =
  match Sub_tree.check_invariants t with
  | [] -> ()
  | errs -> Alcotest.failf "invariants violated: %s" (String.concat "; " errs)

let maximal_strings t =
  List.sort compare (List.map (fun n -> Xpe.to_string (Sub_tree.node_xpe n)) (Sub_tree.maximal t))

let test_empty () =
  let t : int Sub_tree.t = Sub_tree.create () in
  check ci "size" 0 (Sub_tree.size t);
  check ci "depth" 0 (Sub_tree.depth t);
  check cb "not covered" false (Sub_tree.is_covered t (xp "/a"));
  check (Alcotest.list ci) "no match" [] (Sub_tree.match_names t (path "a"))

let test_insert_sibling () =
  let t = tree_of [ "/a/b"; "/a/c" ] in
  check ci "size" 2 (Sub_tree.size t);
  check (Alcotest.list Alcotest.string) "both maximal" [ "/a/b"; "/a/c" ] (maximal_strings t);
  assert_invariants t

let test_insert_case3_descend () =
  (* covered subscription goes below its coverer *)
  let t = tree_of [ "/a"; "/a/b" ] in
  check (Alcotest.list Alcotest.string) "one maximal" [ "/a" ] (maximal_strings t);
  check ci "depth" 2 (Sub_tree.depth t);
  assert_invariants t

let test_insert_case2_reparent () =
  (* a later, more general subscription adopts existing ones *)
  let t = tree_of [ "/a/b"; "/a/c"; "/a" ] in
  check (Alcotest.list Alcotest.string) "general on top" [ "/a" ] (maximal_strings t);
  check ci "depth" 2 (Sub_tree.depth t);
  assert_invariants t

let test_insert_equal_shares_node () =
  let t : int Sub_tree.t = Sub_tree.create () in
  let n1 = Sub_tree.insert t (xp "/a/b") 1 in
  let n2 = Sub_tree.insert t (xp "/a/b") 2 in
  check cb "same node" true (n1 == n2);
  check ci "size counts node once" 1 (Sub_tree.size t);
  check ci "payloads accumulate" 2 (List.length (Sub_tree.node_payloads n1));
  assert_invariants t

let test_paper_figure4 () =
  (* The subscription population of the paper's Figure 4. *)
  let xpes =
    [ "/a"; "/a/b"; "/a/b/a"; "/a/c"; "/a/b/b"; "/a/b/d"; "/a/c/d"; "/*/b"; "/*/b//c";
      "d/a"; "/b"; "/b/d"; "/b/e"; "/b/d/a"; "/b/e/c/f"; "/a/*/d" ]
  in
  let t = tree_of xpes in
  check ci "all stored" (List.length xpes) (Sub_tree.size t);
  assert_invariants t;
  (* /a covers its subtree *)
  let covered = Sub_tree.covered_nodes t (xp "/a") in
  let covered_strs = List.map (fun n -> Xpe.to_string (Sub_tree.node_xpe n)) covered in
  List.iter
    (fun s -> check cb ("/a covers " ^ s) true (List.mem s covered_strs))
    [ "/a/b"; "/a/b/a"; "/a/c"; "/a/c/d"; "/a/*/d" ]

let test_is_covered () =
  let t = tree_of [ "/a"; "/b/c" ] in
  check cb "covered by /a" true (Sub_tree.is_covered t (xp "/a/x/y"));
  check cb "equal counts" true (Sub_tree.is_covered t (xp "/a"));
  check cb "not covered" false (Sub_tree.is_covered t (xp "/b"))

let test_covered_roots () =
  let t = tree_of [ "/a/b"; "/a/c"; "/x" ] in
  let roots = Sub_tree.covered_roots t (xp "/a") in
  check ci "two covered" 2 (List.length roots)

let test_find_equal () =
  let t = tree_of [ "/a"; "/a/b"; "/c" ] in
  (match Sub_tree.find_equal t (xp "/a/b") with
  | Some n -> check Alcotest.string "found" "/a/b" (Xpe.to_string (Sub_tree.node_xpe n))
  | None -> Alcotest.fail "should find equal node");
  check cb "absent" true (Sub_tree.find_equal t (xp "/z") = None)

let test_remove_promotes_children () =
  let t : int Sub_tree.t = Sub_tree.create () in
  let top = Sub_tree.insert t (xp "/a") 0 in
  ignore (Sub_tree.insert t (xp "/a/b") 1);
  ignore (Sub_tree.insert t (xp "/a/c") 2);
  Sub_tree.remove_node t top;
  check ci "two remain" 2 (Sub_tree.size t);
  check (Alcotest.list Alcotest.string) "promoted" [ "/a/b"; "/a/c" ] (maximal_strings t);
  assert_invariants t

let test_remove_payload_keeps_shared_node () =
  let t : int Sub_tree.t = Sub_tree.create () in
  let n = Sub_tree.insert t (xp "/a") 1 in
  ignore (Sub_tree.insert t (xp "/a") 2);
  let p1 = List.nth (Sub_tree.node_payloads n) 0 in
  Sub_tree.remove_payload t n p1;
  check ci "node survives" 1 (Sub_tree.size t);
  let p2 = List.nth (Sub_tree.node_payloads n) 0 in
  Sub_tree.remove_payload t n p2;
  check ci "node gone" 0 (Sub_tree.size t)

let test_match_basic () =
  let t = tree_of [ "/a/b"; "/a/c"; "//d" ] in
  check (Alcotest.list ci) "matches ab" [ 0 ] (Sub_tree.match_names t (path "a/b"));
  check (Alcotest.list ci) "matches d" [ 2 ] (Sub_tree.match_names t (path "x/d"));
  check (Alcotest.list ci) "no match" [] (Sub_tree.match_names t (path "q"))

let test_match_collects_nested () =
  let t = tree_of [ "/a"; "/a/b"; "/a/b/c" ] in
  check (Alcotest.list ci) "all on path" [ 0; 1; 2 ] (List.sort compare (Sub_tree.match_names t (path "a/b/c")));
  check (Alcotest.list ci) "prefix only" [ 0 ] (Sub_tree.match_names t (path "a/x"))

let test_match_pruning_agrees_with_linear () =
  let prng = Xroute_support.Prng.create 8080 in
  let alphabet = [| "a"; "b"; "c" |] in
  let random_xpe () =
    let len = 1 + Xroute_support.Prng.int prng 3 in
    let steps =
      List.init len (fun _ ->
          let test =
            if Xroute_support.Prng.bernoulli prng 0.3 then Xpe.Star
            else Xpe.Name (Xroute_support.Symbol.intern (Xroute_support.Prng.choose prng alphabet))
          in
          let axis = if Xroute_support.Prng.bernoulli prng 0.25 then Xpe.Desc else Xpe.Child in
          Xpe.step axis test)
    in
    match steps with
    | { Xpe.axis = Xpe.Desc; _ } :: _ -> Xpe.make steps
    | _ -> Xpe.make ~relative:(Xroute_support.Prng.bernoulli prng 0.2) steps
  in
  let t : int Sub_tree.t = Sub_tree.create () in
  for i = 1 to 150 do
    ignore (Sub_tree.insert t (random_xpe ()) i)
  done;
  assert_invariants t;
  for _ = 1 to 200 do
    let len = 1 + Xroute_support.Prng.int prng 4 in
    let p = Array.init len (fun _ -> Xroute_support.Prng.choose prng alphabet) in
    let attrs = Array.make len [] in
    let pruned = List.sort compare (Sub_tree.match_path t p attrs) in
    let linear = List.sort compare (Sub_tree.match_path_linear t p attrs) in
    if pruned <> linear then
      Alcotest.failf "pruned matching differs on %s" (String.concat "/" (Array.to_list p))
  done

let test_match_checks_reduced_by_pruning () =
  (* Covering-organized trees do less match work than a flat scan. *)
  let xpes = [ "/a"; "/a/b"; "/a/b/c"; "/a/b/d"; "/x"; "/x/y"; "/x/y/z" ] in
  let t = tree_of xpes in
  let before = Sub_tree.match_checks t in
  ignore (Sub_tree.match_names t (path "q/r"));
  let pruned_work = Sub_tree.match_checks t - before in
  check cb "only maximal nodes tested" true (pruned_work <= 2)

let test_super_pointer_api () =
  let t : int Sub_tree.t = Sub_tree.create () in
  let a = Sub_tree.insert t (xp "/*/b") 0 in
  let b = Sub_tree.insert t (xp "/a/b/c") 1 in
  (* /*/b covers /a/b... record the cross-tree relation explicitly *)
  Sub_tree.add_super a b;
  check ci "super recorded" 1 (List.length (Sub_tree.node_supers a));
  Sub_tree.add_super a b;
  check ci "idempotent" 1 (List.length (Sub_tree.node_supers a));
  (* removal of the target drops the pointer *)
  Sub_tree.remove_node t b;
  check ci "super dropped" 0 (List.length (Sub_tree.node_supers a))

let test_insert_random_invariants () =
  let prng = Xroute_support.Prng.create 2024 in
  let alphabet = [| "a"; "b" |] in
  let t : int Sub_tree.t = Sub_tree.create () in
  for i = 1 to 300 do
    let len = 1 + Xroute_support.Prng.int prng 3 in
    let steps =
      List.init len (fun _ ->
          let test =
            if Xroute_support.Prng.bernoulli prng 0.4 then Xpe.Star
            else Xpe.Name (Xroute_support.Symbol.intern (Xroute_support.Prng.choose prng alphabet))
          in
          Xpe.step Xpe.Child test)
    in
    ignore (Sub_tree.insert t (Xpe.make steps) i);
    if i mod 50 = 0 then assert_invariants t
  done;
  assert_invariants t;
  (* and random removals keep it healthy *)
  let nodes = Sub_tree.to_list t in
  List.iteri (fun i n -> if i mod 3 = 0 then Sub_tree.remove_node t n) nodes;
  assert_invariants t

let test_cover_checks_counted () =
  let t = tree_of [ "/a"; "/a/b" ] in
  check cb "cover checks counted" true (Sub_tree.cover_checks t > 0)

let test_no_cover_predicate_flat () =
  (* Flat mode is the no-covering baseline. *)
  let t : int Sub_tree.t = Sub_tree.create ~flat:true () in
  ignore (Sub_tree.insert t (xp "/a") 0);
  ignore (Sub_tree.insert t (xp "/a/b") 1);
  ignore (Sub_tree.insert t (xp "/a/b/c") 2);
  check ci "flat" 1 (Sub_tree.depth t);
  check ci "all maximal" 3 (List.length (Sub_tree.maximal t));
  check cb "nothing covered" false (Sub_tree.is_covered t (xp "/a/b"))

let () =
  Alcotest.run "sub_tree"
    [
      ( "insert",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "siblings" `Quick test_insert_sibling;
          Alcotest.test_case "descend (case 3)" `Quick test_insert_case3_descend;
          Alcotest.test_case "reparent (case 2)" `Quick test_insert_case2_reparent;
          Alcotest.test_case "equal shares node" `Quick test_insert_equal_shares_node;
          Alcotest.test_case "paper figure 4" `Quick test_paper_figure4;
          Alcotest.test_case "random invariants" `Quick test_insert_random_invariants;
        ] );
      ( "queries",
        [
          Alcotest.test_case "is_covered" `Quick test_is_covered;
          Alcotest.test_case "covered_roots" `Quick test_covered_roots;
          Alcotest.test_case "find_equal" `Quick test_find_equal;
          Alcotest.test_case "cover checks counted" `Quick test_cover_checks_counted;
        ] );
      ( "remove",
        [
          Alcotest.test_case "promotes children" `Quick test_remove_promotes_children;
          Alcotest.test_case "shared node payloads" `Quick test_remove_payload_keeps_shared_node;
          Alcotest.test_case "super pointers" `Quick test_super_pointer_api;
        ] );
      ( "match",
        [
          Alcotest.test_case "basic" `Quick test_match_basic;
          Alcotest.test_case "nested" `Quick test_match_collects_nested;
          Alcotest.test_case "pruned = linear (random)" `Quick test_match_pruning_agrees_with_linear;
          Alcotest.test_case "pruning saves work" `Quick test_match_checks_reduced_by_pruning;
          Alcotest.test_case "flat baseline" `Quick test_no_cover_predicate_flat;
        ] );
    ]
