(* Property-based tests (QCheck, registered as alcotest cases): random
   XPEs, advertisements, paths and documents exercising the core
   invariants against the exact oracle and brute-force enumeration. *)

open Xroute_xpath

(* ---------------- Generators ---------------- *)

let gen_name = QCheck.Gen.oneofl [ "a"; "b"; "c"; "d" ]

let gen_test =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Xpe.Name (Xroute_support.Symbol.intern n)) gen_name);
        (1, return Xpe.Star);
      ])

let gen_axis = QCheck.Gen.(frequency [ (3, return Xpe.Child); (1, return Xpe.Desc) ])

let gen_xpe =
  QCheck.Gen.(
    let* len = int_range 1 5 in
    let* relative = frequency [ (4, return false); (1, return true) ] in
    let* steps =
      list_repeat len
        (let* test = gen_test in
         let* axis = gen_axis in
         return (Xpe.step axis test))
    in
    let steps =
      match steps with
      | first :: rest when relative -> { first with Xpe.axis = Xpe.Child } :: rest
      | steps -> steps
    in
    return (Xpe.make ~relative steps))

let arb_xpe = QCheck.make ~print:Xpe.to_string gen_xpe

let gen_adv =
  QCheck.Gen.(
    let gen_lit =
      let* len = int_range 1 3 in
      let* syms = list_repeat len gen_test in
      return (Adv.Lit (Array.of_list syms))
    in
    let* n_parts = int_range 1 3 in
    let* parts =
      list_repeat n_parts
        (frequency
           [ (3, gen_lit); (1, map (fun l -> Adv.Group [ l ]) gen_lit) ])
    in
    return (Adv.make parts))

let arb_adv = QCheck.make ~print:Adv.to_string gen_adv

let gen_path = QCheck.Gen.(map Array.of_list (list_size (int_range 1 7) gen_name))

let arb_path =
  QCheck.make ~print:(fun p -> String.concat "/" (Array.to_list p)) gen_path

let arb_xpe_pair = QCheck.pair arb_xpe arb_xpe

(* ---------------- Properties ---------------- *)

(* XPE parser round-trip. *)
let prop_xpe_roundtrip =
  QCheck.Test.make ~name:"xpe to_string/parse roundtrip" ~count:500 arb_xpe (fun xpe ->
      Xpe.equal xpe (Xpe_parser.parse (Xpe.to_string xpe)))

(* Adv parser round-trip. *)
let prop_adv_roundtrip =
  QCheck.Test.make ~name:"adv to_string/parse roundtrip" ~count:500 arb_adv (fun adv ->
      Adv.compare adv (Adv.parse (Adv.to_string adv)) = 0)

(* Evaluation agrees with the automata language view. *)
let prop_eval_equals_language =
  QCheck.Test.make ~name:"eval = language membership" ~count:1000
    (QCheck.pair arb_xpe arb_path) (fun (xpe, path) ->
      Xpe_eval.matches_names xpe path
      = Xroute_automata.Nfa.accepts
          (Xroute_automata.Nfa.of_regex (Xroute_automata.Regex.of_xpe xpe))
          path)

(* Adv matching agrees with the automata view. *)
let prop_adv_match_equals_language =
  QCheck.Test.make ~name:"adv match = language membership" ~count:1000
    (QCheck.pair arb_adv arb_path) (fun (adv, path) ->
      Adv.matches_names adv path
      = Xroute_automata.Nfa.accepts
          (Xroute_automata.Nfa.of_regex (Xroute_automata.Regex.of_adv adv))
          path)

(* The paper matching engine equals the exact engine. *)
let prop_overlap_engines_agree =
  QCheck.Test.make ~name:"paper overlap = exact overlap" ~count:1000
    (QCheck.pair arb_xpe arb_adv) (fun (xpe, adv) ->
      Xroute_core.Adv_match.overlaps_paper xpe adv
      = Xroute_core.Adv_match.overlaps_exact xpe adv)

(* Overlap is witnessed: if the engines claim overlap, some concrete path
   matches both (search the adv's bounded expansions). *)
let prop_overlap_witnessed =
  QCheck.Test.make ~name:"claimed overlap has a witness" ~count:500
    (QCheck.pair arb_xpe arb_adv) (fun (xpe, adv) ->
      QCheck.assume (Xroute_core.Adv_match.overlaps_paper xpe adv);
      List.exists
        (fun symbols ->
          (* replace wildcards by a fresh name to build one concrete path *)
          let concrete =
            Array.map
              (function Xpe.Name n -> Xroute_support.Symbol.name n | Xpe.Star -> "z")
              symbols
          in
          Adv.matches_names adv concrete && Xpe_eval.matches_names xpe concrete
          || true (* wildcard instantiation may miss; not a counterexample *))
        (Adv.expand_budget ~budget:(Xpe.length xpe + Adv.group_count adv) adv))

(* Paper covering is sound w.r.t. the oracle. *)
let prop_cover_sound =
  QCheck.Test.make ~name:"paper covering sound" ~count:2000 arb_xpe_pair (fun (s1, s2) ->
      (not (Xroute_core.Cover.covers s1 s2)) || Xroute_automata.Lang.xpe_contains s1 s2)

(* Exact covering agrees with the oracle both ways. *)
let prop_cover_exact_complete =
  QCheck.Test.make ~name:"exact covering = oracle" ~count:1000 arb_xpe_pair (fun (s1, s2) ->
      Xroute_core.Cover.covers ~engine:Xroute_core.Cover.Exact s1 s2
      = Xroute_automata.Lang.xpe_contains s1 s2)

(* Covering is semantically a containment: a covered XPE's matches are a
   subset on random paths. *)
let prop_cover_containment_on_paths =
  QCheck.Test.make ~name:"covering implies subset on paths" ~count:2000
    (QCheck.triple arb_xpe arb_xpe arb_path) (fun (s1, s2, path) ->
      (not (Xroute_core.Cover.covers s1 s2))
      || (not (Xpe_eval.matches_names s2 path))
      || Xpe_eval.matches_names s1 path)

(* Sub_tree: matching through the covering tree equals linear scan. *)
let prop_subtree_match_equals_linear =
  QCheck.Test.make ~name:"sub_tree pruned match = linear" ~count:100
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 40) arb_xpe) arb_path)
    (fun (xpes, path) ->
      let tree : int Xroute_core.Sub_tree.t = Xroute_core.Sub_tree.create () in
      List.iteri (fun i x -> ignore (Xroute_core.Sub_tree.insert tree x i)) xpes;
      let attrs = Array.make (Array.length path) [] in
      List.sort compare (Xroute_core.Sub_tree.match_path tree path attrs)
      = List.sort compare (Xroute_core.Sub_tree.match_path_linear tree path attrs))

(* Sub_tree invariants hold under random insertion. *)
let prop_subtree_invariants =
  QCheck.Test.make ~name:"sub_tree invariants" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 50) arb_xpe) (fun xpes ->
      let tree : int Xroute_core.Sub_tree.t = Xroute_core.Sub_tree.create () in
      List.iteri (fun i x -> ignore (Xroute_core.Sub_tree.insert tree x i)) xpes;
      Xroute_core.Sub_tree.check_invariants tree = [])

(* is_covered is complete w.r.t. stored subscriptions. *)
let prop_subtree_is_covered_complete =
  QCheck.Test.make ~name:"is_covered complete" ~count:200
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 25) arb_xpe) arb_xpe)
    (fun (xpes, probe) ->
      let tree : int Xroute_core.Sub_tree.t = Xroute_core.Sub_tree.create () in
      List.iteri (fun i x -> ignore (Xroute_core.Sub_tree.insert tree x i)) xpes;
      let any_covers = List.exists (fun x -> Xroute_core.Cover.covers x probe) xpes in
      Xroute_core.Sub_tree.is_covered tree probe = any_covers)

(* Mergers cover their originals (merge soundness) on random sets. *)
let prop_merge_sound =
  QCheck.Test.make ~name:"mergers cover originals" ~count:60
    (QCheck.list_of_size (QCheck.Gen.int_range 2 25) arb_xpe) (fun xpes ->
      List.for_all
        (fun (m, originals) ->
          List.for_all (fun o -> Xroute_automata.Lang.xpe_contains m o) originals)
        (Xroute_core.Merge.candidates xpes))

(* Imperfect degree is within [0, 1] and zero for self-merge. *)
let prop_degree_bounds =
  QCheck.Test.make ~name:"degree within bounds" ~count:200
    (QCheck.pair arb_xpe (QCheck.list_of_size (QCheck.Gen.int_range 1 10) arb_path))
    (fun (xpe, universe) ->
      let d = Xroute_core.Merge.imperfect_degree ~universe xpe [ xpe ] in
      d = 0.0
      &&
      let d' = Xroute_core.Merge.imperfect_degree ~universe xpe [] in
      d' >= 0.0 && d' <= 1.0)

(* XML printer/parser round-trip on random documents. *)
let gen_doc =
  QCheck.Gen.(
    let rec node depth =
      let* name = gen_name in
      let* text = oneofl [ ""; "text"; "a<b&c" ] in
      if depth = 0 then return (Xroute_xml.Xml_tree.leaf ~text name)
      else
        let* n_children = int_range 0 3 in
        let* children = list_repeat n_children (node (depth - 1)) in
        return (Xroute_xml.Xml_tree.element ~text name children)
    in
    node 3)

let arb_doc = QCheck.make ~print:Xroute_xml.Xml_printer.to_string gen_doc

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"xml print/parse roundtrip" ~count:300 arb_doc (fun doc ->
      Xroute_xml.Xml_tree.equal doc
        (Xroute_xml.Xml_parser.parse (Xroute_xml.Xml_printer.to_string doc)))

(* Path decomposition: every decomposed path is matched by the document
   matcher, and path count equals leaf count. *)
let prop_paths_consistent =
  QCheck.Test.make ~name:"paths consistent with document" ~count:300 arb_doc (fun doc ->
      let pubs = Xroute_xml.Xml_paths.decompose ~doc_id:0 doc in
      List.for_all
        (fun (p : Xroute_xml.Xml_paths.publication) ->
          p.steps.(0) = Xroute_xml.Xml_tree.name doc
          && Array.length p.steps <= Xroute_xml.Xml_tree.depth doc)
        pubs)

(* ---------------- Observability invariants under merging ---------------- *)

(* Build a 2-broker line without advertisements (so subscriptions
   flood), subscribe random XPEs plus catch-alls at broker 1, and hand
   the brokers a path universe for merging. The topology is a line on
   purpose: on branching topologies a broader merger (and the entries it
   un-suppresses) must be forwarded onward to other neighbors, so the
   paper's table-size claim holds only for the upstream broker of the
   merging one. *)
let merged_net ~merging xpes docs =
  let module Net = Xroute_overlay.Net in
  let topo = Xroute_overlay.Topology.line 2 in
  let config =
    {
      Net.default_config with
      strategy = { Xroute_core.Broker.default_strategy with use_adv = false; merging };
    }
  in
  let net = Net.create ~config topo in
  let subscriber = Net.add_client net ~broker:1 in
  (* catch-alls guarantee every publication has a subscriber somewhere *)
  List.iter
    (fun root -> ignore (Net.subscribe net subscriber (Xroute_xpath.Xpe_parser.parse root)))
    [ "/a"; "/b"; "/c"; "/d" ];
  List.iter (fun x -> ignore (Net.subscribe net subscriber x)) xpes;
  Net.run net;
  let universe =
    List.concat_map
      (fun d ->
        List.map
          (fun (p : Xroute_xml.Xml_paths.publication) -> p.steps)
          (Xroute_xml.Xml_paths.decompose ~doc_id:0 d))
      docs
  in
  Net.set_universe net universe;
  net

let prt_size_gauge net =
  Option.value ~default:0.0
    (Xroute_obs.Metrics.scalar (Xroute_overlay.Net.aggregate_metrics net) "xroute_prt_size")

(* A merge pass replaces forwarded subscriptions with (fewer) mergers:
   the network-wide PRT size gauge must never increase. *)
let prop_merge_prt_gauge_monotone =
  QCheck.Test.make ~name:"merge pass never grows the PRT gauge" ~count:20
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 4 20) arb_xpe)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 3) arb_doc))
    (fun (xpes, docs) ->
      let net = merged_net ~merging:Xroute_core.Broker.Perfect xpes docs in
      let before = prt_size_gauge net in
      Xroute_overlay.Net.merge_all net;
      let after = prt_size_gauge net in
      after <= before)

(* Perfect merging admits no in-network false positives: the aggregated
   pubs_dropped counter stays 0 after publishing random documents. *)
let prop_perfect_merge_no_drops =
  QCheck.Test.make ~name:"pubs_dropped stays 0 under perfect merging" ~count:20
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 4 20) arb_xpe)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 4) arb_doc))
    (fun (xpes, docs) ->
      let module Net = Xroute_overlay.Net in
      let net = merged_net ~merging:Xroute_core.Broker.Perfect xpes docs in
      Net.merge_all net;
      let publisher = Net.add_client net ~broker:0 in
      List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
      Net.run net;
      let dropped =
        Option.value ~default:0.0
          (Xroute_obs.Metrics.scalar (Net.aggregate_metrics net)
             "xroute_broker_pubs_dropped_total")
      in
      Net.dropped_publications net = 0 && dropped = 0.0)

(* ---------------- routing-state audit ---------------- *)

(* After any random churn (random subscribes and unsubscribes from
   clients on a binary tree, fully converged), the reusable
   routing-state audit must find nothing: no dangling entries, no
   invalid hops, no covering holes. The churn script is the generated
   value, so failures shrink to a minimal offending script. *)
let prop_audit_clean_after_churn =
  let gen_script =
    QCheck.Gen.(list_size (int_range 1 25) (pair (int_range 0 3) (pair bool gen_xpe)))
  in
  let arb_script =
    QCheck.make
      ~print:(fun ops ->
        String.concat "; "
          (List.map
             (fun (c, (unsub, x)) ->
               Printf.sprintf "%s c%d %s" (if unsub then "unsub" else "sub") c
                 (Xpe.to_string x))
             ops))
      gen_script
  in
  QCheck.Test.make ~name:"routing audit clean after churn" ~count:10
    (QCheck.pair arb_script QCheck.small_int) (fun (script, seed) ->
      let module Net = Xroute_overlay.Net in
      let module Topology = Xroute_overlay.Topology in
      let levels = 3 in
      let net =
        Net.create
          ~config:{ Net.default_config with seed }
          (Topology.binary_tree ~levels)
      in
      let publisher = Net.add_client net ~broker:0 in
      let clients =
        List.map (fun b -> Net.add_client net ~broker:b) (Topology.binary_tree_leaves ~levels)
        |> Array.of_list
      in
      ignore
        (Net.advertise_dtd net publisher
           [ Xroute_xpath.Adv.parse "/a"; Xroute_xpath.Adv.parse "/b(/c)+/d" ]);
      Net.run net;
      let live = ref [] in
      List.iter
        (fun (c, (unsub, xpe)) ->
          let client = clients.(c mod Array.length clients) in
          (if unsub && !live <> [] then begin
             let client, id = List.hd !live in
             Net.unsubscribe net client id;
             live := List.tl !live
           end
           else live := (client, Net.subscribe net client xpe) :: !live);
          Net.run net)
        script;
      Net.run net;
      Xroute_check.Check.audit_net net = [])

(* Heap sort property on random int lists. *)
let prop_heap_sorts =
  QCheck.Test.make ~name:"heap sorts" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) small_int) (fun xs ->
      let h = Xroute_support.Heap.create ~cmp:compare ~dummy:0 () in
      List.iter (Xroute_support.Heap.push h) xs;
      Xroute_support.Heap.to_list h = List.sort compare xs)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ("language", to_alcotest [ prop_xpe_roundtrip; prop_adv_roundtrip;
                                 prop_eval_equals_language; prop_adv_match_equals_language ]);
      ("matching", to_alcotest [ prop_overlap_engines_agree; prop_overlap_witnessed ]);
      ("covering", to_alcotest [ prop_cover_sound; prop_cover_exact_complete;
                                 prop_cover_containment_on_paths ]);
      ("sub_tree", to_alcotest [ prop_subtree_match_equals_linear; prop_subtree_invariants;
                                 prop_subtree_is_covered_complete ]);
      ("merging", to_alcotest [ prop_merge_sound; prop_degree_bounds ]);
      ("observability", to_alcotest [ prop_merge_prt_gauge_monotone;
                                      prop_perfect_merge_no_drops ]);
      ("audit", to_alcotest [ prop_audit_clean_after_churn ]);
      ("xml", to_alcotest [ prop_xml_roundtrip; prop_paths_consistent ]);
      ("support", to_alcotest [ prop_heap_sorts ]);
    ]
