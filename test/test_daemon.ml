(* End-to-end test of the TCP deployment: real broker daemons on
   loopback sockets, driven in background threads; clients advertise,
   subscribe and publish over the wire. *)

open Xroute_daemon

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let xp = Xroute_xpath.Xpe_parser.parse

(* Start a line of [n] daemons on free ports; returns (daemons, threads).
   Daemons are created in id order so each knows the already-bound port
   of its lower neighbor (which it dials); the higher neighbor dials us,
   so its address may be a placeholder. *)
let start_line n =
  let daemons = ref [] in
  for i = 0 to n - 1 do
    let lower =
      if i = 0 then []
      else [ (i - 1, ("127.0.0.1", Daemon.port (List.nth !daemons (i - 1)))) ]
    in
    let higher = if i < n - 1 then [ (i + 1, ("127.0.0.1", 0)) ] else [] in
    let d = Daemon.create ~id:i ~port:0 ~neighbors:(lower @ higher) () in
    daemons := !daemons @ [ d ]
  done;
  let threads =
    List.map (fun d -> Thread.create (fun () -> Daemon.run ~timeout:0.01 d) ()) !daemons
  in
  (!daemons, threads)

let stop_all (daemons, threads) =
  List.iter Daemon.request_stop daemons;
  List.iter Thread.join threads

let test_end_to_end () =
  let daemons, threads = start_line 3 in
  let d0 = List.nth daemons 0 and d2 = List.nth daemons 2 in
  (* give the daemons a moment to interconnect *)
  Thread.delay 0.3;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d2) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/c"));
  Thread.delay 0.3;
  ignore (Client.subscribe subscriber (xp "/a/b"));
  Thread.delay 0.3;
  let doc = Xroute_xml.Xml_parser.parse "<a><b/><c/></a>" in
  ignore (Client.publish_doc publisher ~doc_id:7 doc);
  let docs = Client.drain_deliveries ~timeout:1.0 subscriber in
  check (Alcotest.list ci) "doc delivered over TCP" [ 7 ] docs;
  (* a non-matching publication is not delivered *)
  ignore (Client.publish_doc publisher ~doc_id:8 (Xroute_xml.Xml_parser.parse "<a><c/></a>"));
  let docs = Client.drain_deliveries ~timeout:0.6 subscriber in
  check (Alcotest.list ci) "non-matching withheld" [] docs;
  Client.close publisher;
  Client.close subscriber;
  stop_all (daemons, threads)

let test_unsubscribe_over_wire () =
  let daemons, threads = start_line 2 in
  let d0 = List.nth daemons 0 and d1 = List.nth daemons 1 in
  Thread.delay 0.2;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/x/y"));
  Thread.delay 0.2;
  let sub = Client.subscribe subscriber (xp "/x") in
  Thread.delay 0.2;
  ignore (Client.publish_doc publisher ~doc_id:1 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  check (Alcotest.list ci) "delivered" [ 1 ] (Client.drain_deliveries ~timeout:0.8 subscriber);
  Client.unsubscribe subscriber sub;
  Thread.delay 0.2;
  ignore (Client.publish_doc publisher ~doc_id:2 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  check (Alcotest.list ci) "stopped after unsubscribe" []
    (Client.drain_deliveries ~timeout:0.6 subscriber);
  (* broker table is clean again *)
  check ci "prt empty" 0 (Xroute_core.Broker.prt_size (Daemon.broker d1));
  Client.close publisher;
  Client.close subscriber;
  stop_all (daemons, threads)

let test_two_subscribers_fanout () =
  let daemons, threads = start_line 3 in
  Thread.delay 0.3;
  let d0 = List.nth daemons 0 and d1 = List.nth daemons 1 and d2 = List.nth daemons 2 in
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let s1 = Client.connect ~client_id:201 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  let s2 = Client.connect ~client_id:202 ~host:"127.0.0.1" ~port:(Daemon.port d2) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/n/t"));
  Thread.delay 0.2;
  ignore (Client.subscribe s1 (xp "//t"));
  ignore (Client.subscribe s2 (xp "/n"));
  Thread.delay 0.3;
  ignore (Client.publish_doc publisher ~doc_id:5 (Xroute_xml.Xml_parser.parse "<n><t/></n>"));
  check (Alcotest.list ci) "s1 got it" [ 5 ] (Client.drain_deliveries ~timeout:0.8 s1);
  check (Alcotest.list ci) "s2 got it" [ 5 ] (Client.drain_deliveries ~timeout:0.8 s2);
  check cb "interior broker holds state" true (Xroute_core.Broker.prt_size (Daemon.broker d1) > 0);
  Client.close publisher; Client.close s1; Client.close s2;
  stop_all (daemons, threads)

(* A burst of publications exercises the daemon's queued write path:
   many deliveries pile onto one client connection faster than the
   socket drains, so the daemon must carry the backlog across partial
   writes without losing or duplicating anything. *)
let test_burst_write_path () =
  let daemons, threads = start_line 2 in
  let d0 = List.nth daemons 0 and d1 = List.nth daemons 1 in
  Thread.delay 0.2;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  Thread.delay 0.2;
  ignore (Client.subscribe subscriber (xp "/a"));
  Thread.delay 0.3;
  let n = 200 in
  let doc = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  for i = 0 to n - 1 do
    ignore (Client.publish_doc publisher ~doc_id:i doc)
  done;
  let deadline = Unix.gettimeofday () +. 20.0 in
  let got = Hashtbl.create n in
  let rec drain () =
    List.iter
      (fun d -> Hashtbl.replace got d ())
      (Client.drain_deliveries ~timeout:0.5 subscriber);
    if Hashtbl.length got < n && Unix.gettimeofday () < deadline then drain ()
  in
  drain ();
  let delivered = List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) got []) in
  check (Alcotest.list ci) "every burst doc delivered exactly once"
    (List.init n Fun.id) delivered;
  Client.close publisher;
  Client.close subscriber;
  stop_all (daemons, threads)

(* Kill the broker daemon mid-session and bring a fresh one up on the
   same port: both clients must survive via reconnect-with-backoff (the
   subscriber rides out a window of ECONNREFUSED dials while the new
   process comes up), the subscription must be replayed from the client
   ledger without any manual re-subscribe, and a publication issued
   after the restart must reach the subscriber. Publications are
   at-most-once across the failure, so the publisher retries. *)
let test_broker_restart () =
  let d = Daemon.create ~id:0 ~port:0 ~neighbors:[] () in
  let port = Daemon.port d in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/x/y"));
  ignore (Client.subscribe subscriber (xp "/x"));
  Thread.delay 0.2;
  let doc = Xroute_xml.Xml_parser.parse "<x><y/></x>" in
  ignore (Client.publish_doc publisher ~doc_id:1 doc);
  check (Alcotest.list ci) "delivered before the restart" [ 1 ]
    (Client.drain_deliveries ~timeout:0.8 subscriber);
  (* kill the daemon *)
  Daemon.request_stop d;
  Thread.join th;
  (* restart it on the same port after a delay, while the subscriber is
     already draining — its redial loop must back off through the
     refused connections until the new process listens *)
  let d2 = ref None in
  let th2 =
    Thread.create
      (fun () ->
        Thread.delay 0.4;
        let d = Daemon.create ~id:0 ~port ~neighbors:[] () in
        d2 := Some d;
        Daemon.run ~timeout:0.01 d)
      ()
  in
  ignore (Client.drain_deliveries ~timeout:2.0 subscriber);
  check cb "subscriber reconnected" true (Client.reconnects subscriber >= 1);
  let restarted =
    match !d2 with Some d -> d | None -> Alcotest.fail "restarted daemon missing"
  in
  check cb "subscription replayed from the ledger" true
    (Xroute_core.Broker.prt_size (Daemon.broker restarted) > 0);
  (* the publisher's first write after the death can vanish into the
     half-closed socket, so retry until the subscriber sees the doc *)
  let rec publish_until k =
    if k > 20 then Alcotest.fail "doc 2 never delivered after restart";
    ignore (Client.publish_doc publisher ~doc_id:2 doc);
    if not (List.mem 2 (Client.drain_deliveries ~timeout:0.5 subscriber)) then
      publish_until (k + 1)
  in
  publish_until 0;
  check cb "publisher reconnected" true (Client.reconnects publisher >= 1);
  Client.close publisher;
  Client.close subscriber;
  Daemon.request_stop restarted;
  Thread.join th2

(* Force every queued write down to one byte per syscall: the daemon's
   partial-write bookkeeping (chunk queue + offset) must still deliver
   every framed message intact. *)
let test_one_byte_write_chunks () =
  let d = Daemon.create ~max_write_chunk:1 ~id:0 ~port:0 ~neighbors:[] () in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let port = Daemon.port d in
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  ignore (Client.subscribe subscriber (xp "/a"));
  Thread.delay 0.2;
  let n = 8 in
  let doc = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  for i = 0 to n - 1 do
    ignore (Client.publish_doc publisher ~doc_id:i doc)
  done;
  let deadline = Unix.gettimeofday () +. 15.0 in
  let got = Hashtbl.create n in
  let rec drain () =
    List.iter (fun i -> Hashtbl.replace got i ()) (Client.drain_deliveries ~timeout:0.5 subscriber);
    if Hashtbl.length got < n && Unix.gettimeofday () < deadline then drain ()
  in
  drain ();
  check (Alcotest.list ci) "every doc intact through 1-byte writes" (List.init n Fun.id)
    (List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) got []));
  Client.close publisher;
  Client.close subscriber;
  Daemon.request_stop d;
  Thread.join th

(* ---------------- line buffering ---------------- *)

(* Linebuf is the daemon's (and client's) inbound accumulator; its
   contract: bytes in, complete lines out, partial tail retained. *)
let test_linebuf_basics () =
  let lb = Linebuf.create ~initial:4 () in
  Linebuf.add_string lb "one\ntw";
  check (Alcotest.option Alcotest.string) "first line" (Some "one") (Linebuf.next_line lb);
  check (Alcotest.option Alcotest.string) "partial held" None (Linebuf.next_line lb);
  Linebuf.add_string lb "o\nthree\n";
  check (Alcotest.option Alcotest.string) "split line reassembled" (Some "two")
    (Linebuf.next_line lb);
  check (Alcotest.option Alcotest.string) "third" (Some "three") (Linebuf.next_line lb);
  check (Alcotest.option Alcotest.string) "drained" None (Linebuf.next_line lb);
  Linebuf.add_string lb "stale";
  Linebuf.clear lb;
  Linebuf.add_string lb "fresh\n";
  check (Alcotest.option Alcotest.string) "clear drops the partial" (Some "fresh")
    (Linebuf.next_line lb)

(* The regression this buffer exists for: the old Buffer-based path
   re-copied the whole accumulation on every read, so a 1MB burst
   arriving in tiny reads cost O(n^2) — minutes for this input. Feeding
   1MB one byte at a time must stay linear (well under a second). *)
let test_linebuf_byte_at_a_time () =
  let line = String.make 63 'x' in
  let n_lines = 16 * 1024 in (* 16K lines x 64 bytes = 1MB *)
  let data = String.concat "" (List.init n_lines (fun _ -> line ^ "\n")) in
  let lb = Linebuf.create () in
  let got = ref 0 in
  let t0 = Unix.gettimeofday () in
  String.iter
    (fun c ->
      Linebuf.add_string lb (String.make 1 c);
      match Linebuf.next_line lb with
      | Some l ->
        check Alcotest.string "line intact" line l;
        incr got
      | None -> ())
    data;
  let elapsed = Unix.gettimeofday () -. t0 in
  check ci "every line extracted" n_lines !got;
  check ci "buffer fully consumed" 0 (Linebuf.length lb);
  check cb (Printf.sprintf "1MB byte-at-a-time is linear (%.2fs)" elapsed) true
    (elapsed < 5.0)

(* ---------------- duplicate HELLO ---------------- *)

(* A peer re-identifying as an endpoint that already has a live
   connection must evict the stale one — otherwise conn_for picks
   whichever sits first and silently splits the endpoint's traffic
   between two sockets. The classic trigger is a client reconnecting
   before the daemon notices the old socket died. *)
let test_duplicate_hello_reconnect () =
  let d = Daemon.create ~id:0 ~port:0 ~neighbors:[] () in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let port = Daemon.port d in
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port in
  let sub1 = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  ignore (Client.subscribe sub1 (xp "/a"));
  Thread.delay 0.2;
  let doc = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  ignore (Client.publish_doc publisher ~doc_id:1 doc);
  check (Alcotest.list ci) "first connection serves deliveries" [ 1 ]
    (Client.drain_deliveries ~timeout:0.8 sub1);
  (* same client id walks in on a second TCP connection *)
  let sub2 = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port in
  Thread.delay 0.3;
  ignore (Client.publish_doc publisher ~doc_id:2 doc);
  check (Alcotest.list ci) "deliveries follow the fresh connection" [ 2 ]
    (Client.drain_deliveries ~timeout:0.8 sub2);
  (* and the stale socket was actually closed by the daemon: reading it
     raw (no reconnect machinery) hits EOF *)
  Client.close publisher;
  Client.close sub1;
  Client.close sub2;
  Daemon.request_stop d;
  Thread.join th

(* ---------------- inbound burst ---------------- *)

(* A publisher that writes a ~1MB pile of publication lines in a few
   big bursts while the daemon is throttled to 1-byte output writes:
   the inbound path (batched reads + Linebuf) must keep up and every
   matching publication must come out intact on the slow side. *)
let test_large_inbound_burst () =
  let d = Daemon.create ~max_write_chunk:1 ~id:0 ~port:0 ~neighbors:[] () in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let port = Daemon.port d in
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  (* only /a/b publications match: most of the burst is inbound-only *)
  ignore (Client.subscribe subscriber (xp "/a/b"));
  Thread.delay 0.2;
  let matching i =
    let pubs =
      Xroute_xml.Xml_paths.decompose ~doc_id:i (Xroute_xml.Xml_parser.parse "<a><b/></a>")
    in
    String.concat ""
      (List.map
         (fun pub ->
           "M|" ^ Xroute_core.Codec.encode (Xroute_core.Message.Publish { pub; trail = []; ctx = None }) ^ "\n")
         pubs)
  in
  let filler i =
    let pubs =
      Xroute_xml.Xml_paths.decompose ~doc_id:i
        (Xroute_xml.Xml_parser.parse "<z><y/><y/><y/><y/></z>")
    in
    String.concat ""
      (List.map
         (fun pub ->
           "M|" ^ Xroute_core.Codec.encode (Xroute_core.Message.Publish { pub; trail = []; ctx = None }) ^ "\n")
         pubs)
  in
  (* ~1MB of wire bytes: 24 matching docs in a sea of non-matching ones *)
  let n_match = 24 in
  let burst = Buffer.create (1 lsl 20) in
  let doc_id = ref 0 in
  while Buffer.length burst < 1 lsl 20 do
    incr doc_id;
    if !doc_id mod 200 = 0 && !doc_id / 200 <= n_match then
      Buffer.add_string burst (matching !doc_id)
    else Buffer.add_string burst (filler !doc_id)
  done;
  let expected =
    List.filter (fun i -> i mod 200 = 0 && i / 200 <= n_match) (List.init !doc_id (fun i -> i + 1))
  in
  (* one send_line call = one big write (the client loops on partial
     writes); the trailing empty line it adds is ignored by the daemon *)
  Client.send_line publisher (Buffer.contents burst);
  let deadline = Unix.gettimeofday () +. 30.0 in
  let got = Hashtbl.create 64 in
  let rec drain () =
    List.iter (fun i -> Hashtbl.replace got i ()) (Client.drain_deliveries ~timeout:0.5 subscriber);
    if Hashtbl.length got < List.length expected && Unix.gettimeofday () < deadline then drain ()
  in
  drain ();
  check (Alcotest.list ci) "every matching doc survived the 1MB burst" expected
    (List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) got []));
  Client.close publisher;
  Client.close subscriber;
  Daemon.request_stop d;
  Thread.join th

(* ---------------- multi-domain daemon ---------------- *)

(* The same end-to-end script against a sequential daemon and a
   4-domain daemon: deliveries must be identical, and the sharded
   daemon must expose its per-shard gauges over STATS|. *)
let run_script_against ~domains =
  let d = Daemon.create ~domains ~id:0 ~port:0 ~neighbors:[] () in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let port = Daemon.port d in
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port in
  let s1 = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port in
  let s2 = Client.connect ~client_id:201 ~host:"127.0.0.1" ~port in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/c/d"));
  ignore (Client.subscribe s1 (xp "/a"));
  ignore (Client.subscribe s2 (xp "//d"));
  Thread.delay 0.3;
  let docs =
    [ (1, "<a><b/></a>"); (2, "<c><d/></c>"); (3, "<a><b/><b/></a>"); (4, "<q><r/></q>") ]
  in
  List.iter
    (fun (i, body) ->
      ignore (Client.publish_doc publisher ~doc_id:i (Xroute_xml.Xml_parser.parse body)))
    docs;
  let got1 = Client.drain_deliveries ~timeout:1.0 s1 in
  let got2 = Client.drain_deliveries ~timeout:1.0 s2 in
  let stats = Client.stats ~format:`Prom s1 in
  Client.close publisher;
  Client.close s1;
  Client.close s2;
  Daemon.request_stop d;
  Thread.join th;
  (got1, got2, stats)

let test_domains_end_to_end () =
  let seq1, seq2, _ = run_script_against ~domains:1 in
  let par1, par2, stats = run_script_against ~domains:4 in
  check (Alcotest.list ci) "s1 deliveries identical across engines" seq1 par1;
  check (Alcotest.list ci) "s2 deliveries identical across engines" seq2 par2;
  check (Alcotest.list ci) "s1 saw the /a docs" [ 1; 3 ] par1;
  check (Alcotest.list ci) "s2 saw the //d doc" [ 2 ] par2;
  (match stats with
  | None -> Alcotest.fail "no STATS reply from the sharded daemon"
  | Some body ->
    check cb "per-shard gauges exposed" true
      (let has s =
         let n = String.length body and m = String.length s in
         let rec go i = i + m <= n && (String.sub body i m = s || go (i + 1)) in
         go 0
       in
       has "xroute_shard_0_entries" && has "xroute_shard_3_entries"
       && has "xroute_pool_pubs_routed"));
  (* the pool rejects configurations it cannot merge deterministically *)
  check cb "tree engine rejected" true
    (match
       Daemon.create
         ~strategy:{ Xroute_core.Broker.default_strategy with match_engine = Xroute_core.Rtable.Prt.Tree }
         ~domains:2 ~id:9 ~port:0 ~neighbors:[] ()
     with
    | exception Invalid_argument _ -> true
    | d ->
      Daemon.request_stop d;
      false)

(* Parse a Prometheus text exposition into (base-metric-name, value)
   pairs; comment lines skipped, quantile labels stripped. *)
let parse_prom body =
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         if line = "" || String.length line >= 1 && line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some i ->
             let key = String.sub line 0 i in
             let name =
               match String.index_opt key '{' with
               | Some j -> String.sub key 0 j
               | None -> key
             in
             let v = float_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
             Some (name, v))

let metric_value metrics name =
  List.fold_left (fun acc (n, v) -> if n = name then acc +. v else acc) 0.0
    (List.filter (fun (n, _) -> n = name) metrics)

let test_stats_over_wire () =
  let daemons, threads = start_line 2 in
  let d0 = List.nth daemons 0 and d1 = List.nth daemons 1 in
  Thread.delay 0.2;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  Thread.delay 0.2;
  ignore (Client.subscribe subscriber (xp "/a/b"));
  Thread.delay 0.2;
  ignore (Client.publish_doc publisher ~doc_id:3 (Xroute_xml.Xml_parser.parse "<a><b/></a>"));
  check (Alcotest.list ci) "delivered" [ 3 ] (Client.drain_deliveries ~timeout:0.8 subscriber);
  let body_of c =
    match Client.stats c with
    | Some body -> body
    | None -> Alcotest.fail "no STATS reply"
  in
  let pub_side = parse_prom (body_of publisher) in
  let sub_side = parse_prom (body_of subscriber) in
  (* both brokers processed traffic *)
  check cb "publisher broker msgs_in > 0" true
    (metric_value pub_side "xroute_broker_msgs_in_total" > 0.0);
  check cb "subscriber broker msgs_in > 0" true
    (metric_value sub_side "xroute_broker_msgs_in_total" > 0.0);
  check cb "delivery counted at the subscriber's broker" true
    (metric_value sub_side "xroute_broker_deliveries_total" > 0.0);
  check cb "publication counted at the publisher's broker" true
    (metric_value pub_side "xroute_broker_pubs_in_total" > 0.0);
  (* the exposition is broad: >= 10 distinct names spanning SRT, PRT,
     matching and delivery *)
  let names = List.sort_uniq compare (List.map fst sub_side) in
  check cb ">= 10 distinct metric names" true (List.length names >= 10);
  List.iter
    (fun family ->
      check cb (family ^ " family present") true
        (List.exists
           (fun n ->
             String.length n >= String.length family
             && String.sub n 0 (String.length family) = family)
           names))
    [ "xroute_srt_"; "xroute_prt_"; "xroute_broker_deliveries"; "xroute_broker_msgs_in" ];
  check cb "match work was recorded" true
    (metric_value sub_side "xroute_prt_match_checks_total" > 0.0);
  (* the JSON exposition answers too *)
  (match Client.stats ~format:`Json publisher with
  | Some body ->
    check cb "json body shape" true
      (String.length body >= 12 && String.sub body 0 12 = {|{"metrics":[|})
  | None -> Alcotest.fail "no JSON STATS reply");
  Client.close publisher;
  Client.close subscriber;
  stop_all (daemons, threads)

(* AUDIT| over the wire: a healthy daemon reports no findings; after a
   fake non-neighbor broker plants a PRT entry, the audit reports the
   invalid last hop as an error. *)
let test_audit_over_wire () =
  let daemons, threads = start_line 2 in
  let d0 = List.nth daemons 0 and d1 = List.nth daemons 1 in
  Thread.delay 0.2;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  Thread.delay 0.2;
  ignore (Client.subscribe subscriber (xp "/a/b"));
  Thread.delay 0.2;
  (match Client.audit subscriber with
  | Some (errors, warnings, findings) ->
    check ci "clean broker: no errors" 0 errors;
    check ci "clean broker: no warnings" 0 warnings;
    check ci "clean broker: no findings" 0 (List.length findings)
  | None -> Alcotest.fail "no AUDIT reply");
  (* corrupt broker 1's PRT: identify as non-neighbor broker 99 and
     subscribe, leaving an entry whose last hop is not a neighbor *)
  let intruder = Client.connect ~client_id:0 ~host:"127.0.0.1" ~port:(Daemon.port d1) in
  Client.send_line intruder "HELLO|broker|99";
  Client.send intruder
    (Xroute_core.Message.Subscribe { id = { origin = 990; seq = 1 }; xpe = xp "/z" });
  Thread.delay 0.2;
  (match Client.audit subscriber with
  | Some (errors, _warnings, findings) ->
    check cb "corruption: errors reported" true (errors > 0);
    check cb "invalid-last-hop finding" true
      (List.exists (fun (sev, code, _, _) -> sev = "error" && code = "invalid-last-hop") findings)
  | None -> Alcotest.fail "no AUDIT reply after corruption");
  Client.close intruder;
  Client.close publisher;
  Client.close subscriber;
  stop_all (daemons, threads)

(* ---------------- causal tracing over the wire ---------------- *)

module Span = Xroute_obs.Span

(* A publication crossing three daemons must leave one merged span tree:
   a single trace id, a hop span at every broker with its per-stage
   leaves, parented across process boundaries, renderable as a waterfall
   and as valid Chrome trace-event JSON. *)
let test_trace_over_wire () =
  let daemons, threads = start_line 3 in
  let d0 = List.nth daemons 0 and d2 = List.nth daemons 2 in
  Thread.delay 0.3;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d2) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  Thread.delay 0.3;
  ignore (Client.subscribe subscriber (xp "/a/b"));
  Thread.delay 0.3;
  ignore (Client.publish_doc publisher ~doc_id:42 (Xroute_xml.Xml_parser.parse "<a><b/></a>"));
  check (Alcotest.list ci) "delivered" [ 42 ]
    (Client.drain_deliveries ~timeout:1.0 subscriber);
  (* fetch the doc's spans from every daemon and merge *)
  let spans =
    List.concat_map
      (fun d ->
        let c = Client.connect ~client_id:300 ~host:"127.0.0.1" ~port:(Daemon.port d) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.trace c 42 with
            | Some spans -> spans
            | None -> Alcotest.fail "no TRACE reply"))
      daemons
  in
  check cb "one trace id across all brokers" true
    (spans <> [] && List.for_all (fun s -> s.Span.trace = 42) spans);
  let hops = List.filter (fun s -> s.Span.name = "hop") spans in
  check (Alcotest.list ci) "a hop span at every broker" [ 0; 1; 2 ]
    (List.sort_uniq compare (List.map (fun s -> s.Span.broker) hops));
  check ci "exactly one root" 1
    (List.length (List.filter (fun s -> s.Span.parent = None) spans));
  (* the hop chain is parented across process boundaries *)
  let ids = List.map (fun s -> s.Span.id) spans in
  check cb "every parent resolves in the merged set" true
    (List.for_all
       (fun s -> match s.Span.parent with None -> true | Some p -> List.mem p ids)
       spans);
  check cb "per-stage leaves present" true
    (List.exists (fun s -> s.Span.name = "parse") spans
    && List.exists (fun s -> s.Span.name = "match") spans);
  (match Span.check_tree spans with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("merged trace mis-nested: " ^ e));
  check cb "waterfall renders" true (String.length (Span.waterfall spans) > 0);
  (match Xroute_support.Json.parse (Span.to_chrome spans) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("chrome export invalid: " ^ e));
  Client.close publisher;
  Client.close subscriber;
  stop_all (daemons, threads)

(* ---------------- federated health over the wire ---------------- *)

module Health = Xroute_obs.Health

(* FEDSTATS across a 3-broker line: the client pulls one overlay view
   through its home broker, which fans sub-pulls out to the neighbors
   and merges. The merged view must be exactly the union of per-broker
   summaries, idempotent under self-merge, and hop-bounded by ttl. *)
let test_fedstats_over_wire () =
  let daemons, threads = start_line 3 in
  let d0 = List.nth daemons 0 and d2 = List.nth daemons 2 in
  Thread.delay 0.3;
  let publisher = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port:(Daemon.port d0) in
  let subscriber = Client.connect ~client_id:200 ~host:"127.0.0.1" ~port:(Daemon.port d2) in
  ignore (Client.advertise publisher (Xroute_xpath.Adv.parse "/a/b"));
  Thread.delay 0.3;
  ignore (Client.subscribe subscriber (xp "/a/b"));
  Thread.delay 0.3;
  let doc = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  for i = 1 to 5 do
    ignore (Client.publish_doc publisher ~doc_id:i doc)
  done;
  check (Alcotest.list ci) "docs delivered" [ 1; 2; 3; 4; 5 ]
    (Client.drain_deliveries ~timeout:1.0 subscriber);
  let view =
    match Client.fedstats publisher with
    | Some v -> v
    | None -> Alcotest.fail "no FEDSTATS reply"
  in
  check (Alcotest.list ci) "every origin federated" [ 0; 1; 2 ] (List.map fst view);
  (* the merged view is the union of the per-broker summaries: each
     origin's publication count equals that daemon's own health (traffic
     has quiesced, so the counts are stable) *)
  List.iteri
    (fun b d ->
      match List.assoc_opt b view with
      | Some s ->
        check ci
          (Printf.sprintf "broker %d pubs federated intact" b)
          (Health.pubs (Daemon.health d))
          (Health.pubs s)
      | None -> Alcotest.fail (Printf.sprintf "origin %d missing" b))
    daemons;
  check cb "overlay saw publish traffic" true
    (List.fold_left (fun acc (_, s) -> acc + Health.pubs s) 0 view > 0);
  check cb "self-merge is the identity" true
    (Health.view_equal (Health.merge_views view view) view);
  (match Client.fedstats ~ttl:0 publisher with
  | Some v -> check (Alcotest.list ci) "ttl=0: own summary only" [ 0 ] (List.map fst v)
  | None -> Alcotest.fail "no ttl=0 FEDSTATS reply");
  (match Client.fedstats ~ttl:1 publisher with
  | Some v -> check (Alcotest.list ci) "ttl=1: one hop out" [ 0; 1 ] (List.map fst v)
  | None -> Alcotest.fail "no ttl=1 FEDSTATS reply");
  Client.close publisher;
  Client.close subscriber;
  stop_all (daemons, threads)

(* A broker death mid-session must surface as Client.Unavailable — a
   clean, named failure after the redial budget — never a raw
   Unix_error; and the same client must recover once a broker listens
   on the port again. *)
let test_stats_unavailable_after_death () =
  let d = Daemon.create ~id:0 ~port:0 ~neighbors:[] () in
  let port = Daemon.port d in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let c = Client.connect ~client_id:100 ~host:"127.0.0.1" ~port in
  check cb "stats answers while alive" true (Client.stats c <> None);
  Daemon.request_stop d;
  Thread.join th;
  Client.set_reconnect_wait c 0.4;
  let saw_unavailable = ref false in
  (try
     (* first call eats the EOF and times out; a later send hits the
        closed socket and must raise the clean exception *)
     for _ = 1 to 3 do
       match Client.stats ~timeout:0.6 c with
       | Some _ -> Alcotest.fail "stats answered from a dead broker"
       | None -> ()
     done
   with
  | Client.Unavailable _ -> saw_unavailable := true
  | Unix.Unix_error (e, _, _) ->
    Alcotest.failf "raw Unix_error leaked to the caller: %s" (Unix.error_message e));
  check cb "death surfaced as Client.Unavailable" true !saw_unavailable;
  (* a fresh broker on the same port: the same client session recovers *)
  let d2 = Daemon.create ~id:0 ~port ~neighbors:[] () in
  let th2 = Thread.create (fun () -> Daemon.run ~timeout:0.01 d2) () in
  Client.set_reconnect_wait c 8.0;
  check cb "stats answers after the broker returns" true (Client.stats c <> None);
  Client.close c;
  Daemon.request_stop d2;
  Thread.join th2

(* ---------------- framed multi-line responses ---------------- *)

let test_framing_escape_roundtrip () =
  let cases = [ ""; "plain"; "a|b"; "a\nb\rc"; "100%"; "%7C"; "|%|\n%0A" ] in
  List.iter
    (fun s ->
      check Alcotest.string "escape/unescape round-trips" s
        (Framing.unescape (Framing.escape s)))
    cases;
  check cb "escaped text is pipe- and newline-free" true
    (List.for_all
       (fun s ->
         let e = Framing.escape s in
         not (String.contains e '|' || String.contains e '\n' || String.contains e '\r'))
       cases);
  (* unescape is total: malformed escapes pass through unchanged *)
  check Alcotest.string "malformed escape passes through" "%zz" (Framing.unescape "%zz");
  check Alcotest.string "trailing percent passes through" "a%" (Framing.unescape "a%")

(* The TRACE frame must carry payloads containing the frame's own
   delimiters: plant a span whose name and meta embed '|', newlines and
   '%', then fetch it over the wire. *)
let test_trace_framing_hostile_payload () =
  let d = Daemon.create ~id:0 ~port:0 ~neighbors:[] () in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let nasty = "stage|with\npipes\rand 100% escapes" in
  let meta = [ ("k|ey", "v|al\nue"); ("pct", "100%") ] in
  let planted =
    Span.record (Daemon.spans d) ~trace:77 ~name:nasty ~broker:0 ~meta ~start:1.0
      ~stop:2.0 ()
  in
  let c = Client.connect ~client_id:1 ~host:"127.0.0.1" ~port:(Daemon.port d) in
  (match Client.trace c 77 with
  | Some [ got ] ->
    check ci "id intact" planted.Span.id got.Span.id;
    check Alcotest.string "hostile name intact" nasty got.Span.name;
    check cb "hostile meta intact" true (got.Span.meta = meta)
  | Some l -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l))
  | None -> Alcotest.fail "no TRACE reply");
  (* STATS still answers on the same connection: framing state is clean *)
  check cb "connection still usable after TRACE" true (Client.stats c <> None);
  Client.close c;
  Daemon.request_stop d;
  Thread.join th

(* ---------------- flight recorder ---------------- *)

(* An error-severity AUDIT finding must leave a post-mortem on disk:
   corrupt the PRT via a fake non-neighbor broker, audit, then check the
   daemon's recorder wrote a parseable xroute-flight/1 dump. *)
let test_flight_recorder_on_audit_error () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xroute-flight-daemon-%d" (Unix.getpid ()))
  in
  let d = Daemon.create ~id:0 ~port:0 ~neighbors:[] ~flight_dir:dir () in
  let th = Thread.create (fun () -> Daemon.run ~timeout:0.01 d) () in
  let intruder = Client.connect ~client_id:0 ~host:"127.0.0.1" ~port:(Daemon.port d) in
  Client.send_line intruder "HELLO|broker|99";
  Client.send intruder
    (Xroute_core.Message.Subscribe { id = { origin = 990; seq = 1 }; xpe = xp "/z" });
  Thread.delay 0.2;
  let observer = Client.connect ~client_id:1 ~host:"127.0.0.1" ~port:(Daemon.port d) in
  (match Client.audit observer with
  | Some (errors, _, _) -> check cb "audit reports errors" true (errors > 0)
  | None -> Alcotest.fail "no AUDIT reply");
  let recorder =
    match Daemon.recorder d with
    | Some r -> r
    | None -> Alcotest.fail "flight_dir did not enable the recorder"
  in
  (match Xroute_obs.Recorder.dumps recorder with
  | [] -> Alcotest.fail "no flight dump after an error-severity audit"
  | path :: _ ->
    let ic = open_in_bin path in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Xroute_support.Json.parse body with
    | Error e -> Alcotest.fail ("flight dump is not JSON: " ^ e)
    | Ok j ->
      let str k =
        Option.bind (Xroute_support.Json.member k j) Xroute_support.Json.to_str
      in
      check cb "flight schema" true (str "schema" = Some "xroute-flight/1");
      check cb "reason names the audit" true
        (match str "reason" with
        | Some r -> List.exists (fun w -> w = "audit") (String.split_on_char ' ' r)
        | None -> false));
    Sys.remove path);
  (try Sys.rmdir dir with Sys_error _ -> ());
  Client.close intruder;
  Client.close observer;
  Daemon.request_stop d;
  Thread.join th

let () =
  Alcotest.run "daemon"
    [
      ( "tcp",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "unsubscribe" `Quick test_unsubscribe_over_wire;
          Alcotest.test_case "fanout" `Quick test_two_subscribers_fanout;
          Alcotest.test_case "burst write path" `Quick test_burst_write_path;
          Alcotest.test_case "stats over the wire" `Quick test_stats_over_wire;
          Alcotest.test_case "audit over the wire" `Quick test_audit_over_wire;
          Alcotest.test_case "broker restart mid-session" `Quick test_broker_restart;
          Alcotest.test_case "1-byte write chunks" `Quick test_one_byte_write_chunks;
          Alcotest.test_case "duplicate HELLO evicts the stale conn" `Quick
            test_duplicate_hello_reconnect;
          Alcotest.test_case "1MB inbound burst" `Quick test_large_inbound_burst;
        ] );
      ( "linebuf",
        [
          Alcotest.test_case "basics" `Quick test_linebuf_basics;
          Alcotest.test_case "1MB one byte at a time" `Quick test_linebuf_byte_at_a_time;
        ] );
      ( "domains",
        [
          Alcotest.test_case "end to end, sharded vs sequential" `Quick
            test_domains_end_to_end;
        ] );
      ( "fedstats",
        [
          Alcotest.test_case "federated view over the wire, 3 brokers" `Quick
            test_fedstats_over_wire;
          Alcotest.test_case "broker death surfaces as Unavailable" `Quick
            test_stats_unavailable_after_death;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "trace over the wire, 3 brokers" `Quick test_trace_over_wire;
          Alcotest.test_case "framing escape round-trip" `Quick
            test_framing_escape_roundtrip;
          Alcotest.test_case "hostile payload through TRACE" `Quick
            test_trace_framing_hostile_payload;
          Alcotest.test_case "flight dump on audit error" `Quick
            test_flight_recorder_on_audit_error;
        ] );
    ]
