(* Tests for the broker state machine: advertisement flooding,
   subscription routing with/without advertisements and covering,
   unsubscription, publication forwarding, merging, and the routing
   tables behind them. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let xp = Xpe_parser.parse
let ad = Adv.parse

let sid origin seq = { Message.origin; seq }

let neighbor n = Rtable.Neighbor n
let client c = Rtable.Client c

let pub ?(doc_id = 0) s = Xroute_xml.Xml_paths.publication_of_string ~doc_id s

let msgs_to ep outs = List.filter (fun (e, _) -> Rtable.endpoint_equal e ep) outs

let count_kind kind outs =
  List.length
    (List.filter
       (fun (_, m) ->
         match (m, kind) with
         | Message.Advertise _, `Adv
         | Message.Subscribe _, `Sub
         | Message.Unsubscribe _, `Unsub
         | Message.Publish _, `Pub
         | Message.Unadvertise _, `Unadv ->
           true
         | _ -> false)
       outs)

(* ---------------- Rtable.Srt ---------------- *)

let test_srt_add_and_match () =
  let srt = Rtable.Srt.create () in
  (match Rtable.Srt.add srt (sid 1 1) (ad "/a/b") (neighbor 7) with
  | `Stored -> ()
  | _ -> Alcotest.fail "expected Stored");
  check ci "size" 1 (Rtable.Srt.size srt);
  check ci "hops for matching sub" 1 (List.length (Rtable.Srt.hops_for_sub srt (xp "/a")));
  check ci "hops for non-matching" 0 (List.length (Rtable.Srt.hops_for_sub srt (xp "/x")))

let test_srt_duplicate () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a") (neighbor 1));
  (match Rtable.Srt.add srt (sid 1 1) (ad "/a") (neighbor 2) with
  | `Duplicate -> ()
  | _ -> Alcotest.fail "expected Duplicate")

let test_srt_adv_covering () =
  let srt = Rtable.Srt.create ~use_cover:true () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a/*") (neighbor 1));
  (* covered, same hop: suppressed *)
  (match Rtable.Srt.add srt (sid 1 2) (ad "/a/b") (neighbor 1) with
  | `Covered id -> check ci "coverer id" 1 id.Message.seq
  | _ -> Alcotest.fail "expected Covered");
  (* covered but different hop: stored (needed for routing) *)
  (match Rtable.Srt.add srt (sid 1 3) (ad "/a/b") (neighbor 2) with
  | `Stored -> ()
  | _ -> Alcotest.fail "expected Stored for different hop");
  check ci "size" 2 (Rtable.Srt.size srt)

let test_srt_remove () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a") (neighbor 3));
  (match Rtable.Srt.remove srt (sid 1 1) with
  | Some h -> check cb "hop returned" true (Rtable.endpoint_equal h (neighbor 3))
  | None -> Alcotest.fail "expected removal");
  check ci "empty" 0 (Rtable.Srt.size srt)

let test_srt_hops_dedup () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a/b") (neighbor 5));
  ignore (Rtable.Srt.add srt (sid 1 2) (ad "/a/c") (neighbor 5));
  check ci "one hop" 1 (List.length (Rtable.Srt.hops_for_sub srt (xp "/a")))

(* ---------------- Rtable.Prt ---------------- *)

let test_prt_insert_match () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a/b") (client 9));
  let matches = Rtable.Prt.match_pub prt (pub "/a/b/c") in
  check ci "one match" 1 (List.length matches);
  check cb "client hop" true
    (Rtable.endpoint_equal (List.hd matches).Rtable.Prt.hop (client 9))

let test_prt_remove_reports_promotions () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (neighbor 1));
  ignore (Rtable.Prt.insert prt (sid 2 2) (xp "/a/b") (neighbor 2));
  match Rtable.Prt.remove prt (sid 2 1) with
  | Some (_, _, was_sole_maximal, children) ->
    check cb "was maximal" true was_sole_maximal;
    check ci "one child promoted" 1 (List.length children)
  | None -> Alcotest.fail "expected removal"

let test_prt_match_from_trail () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (neighbor 1));
  ignore (Rtable.Prt.insert prt (sid 2 2) (xp "/a/b") (neighbor 2));
  ignore (Rtable.Prt.insert prt (sid 2 3) (xp "/x") (neighbor 3));
  let from_root = Rtable.Prt.match_pub prt (pub "/a/b") in
  let from_trail = Rtable.Prt.match_pub_from prt [ sid 2 1 ] (pub "/a/b") in
  check ci "trail finds the subtree" (List.length from_root) (List.length from_trail)

(* ---------------- Broker: advertisements ---------------- *)

let make_broker ?(strategy = Broker.default_strategy) ~id ~neighbors () =
  Broker.create ~strategy ~id ~neighbors ()

let test_adv_flooding () =
  let b = make_broker ~id:0 ~neighbors:[ 1; 2; 3 ] () in
  let outs = Broker.handle b ~from:(neighbor 1) (Message.Advertise { id = sid 9 1; adv = ad "/a" }) in
  (* flooded to 2 and 3, not back to 1 *)
  check ci "two floods" 2 (count_kind `Adv outs);
  check ci "not back" 0 (List.length (msgs_to (neighbor 1) outs));
  (* duplicate suppressed *)
  let outs2 = Broker.handle b ~from:(neighbor 2) (Message.Advertise { id = sid 9 1; adv = ad "/a" }) in
  check ci "duplicate ignored" 0 (List.length outs2)

let test_adv_triggers_sub_forwarding () =
  (* A subscription stored before the advertisement is forwarded towards
     the advertiser when the advertisement arrives. *)
  let b = make_broker ~id:0 ~neighbors:[ 1; 2 ] () in
  let outs0 = Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a/b" }) in
  check ci "nowhere to go yet" 0 (count_kind `Sub outs0);
  let outs = Broker.handle b ~from:(neighbor 1) (Message.Advertise { id = sid 9 1; adv = ad "/a/b/c" }) in
  let subs = msgs_to (neighbor 1) outs in
  check cb "sub forwarded to advertiser" true
    (List.exists (fun (_, m) -> match m with Message.Subscribe _ -> true | _ -> false) subs)

let test_unadvertise_floods () =
  let b = make_broker ~id:0 ~neighbors:[ 1; 2 ] () in
  ignore (Broker.handle b ~from:(neighbor 1) (Message.Advertise { id = sid 9 1; adv = ad "/a" }));
  let outs = Broker.handle b ~from:(neighbor 1) (Message.Unadvertise { id = sid 9 1 }) in
  check ci "flooded" 1 (count_kind `Unadv outs);
  check ci "srt empty" 0 (Broker.srt_size b)

(* ---------------- Broker: subscriptions ---------------- *)

let test_sub_flooding_without_adv () =
  let strategy = { Broker.default_strategy with Broker.use_adv = false } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1; 2; 3 ] () in
  let outs = Broker.handle b ~from:(neighbor 1) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }) in
  check ci "flooded to others" 2 (count_kind `Sub outs)

let test_sub_covering_suppression () =
  let strategy = { Broker.default_strategy with Broker.use_adv = false } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }));
  let outs = Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 2; xpe = xp "/a/b" }) in
  check ci "covered sub not forwarded" 0 (count_kind `Sub outs);
  check ci "but stored" 2 (Broker.prt_size b)

let test_sub_covering_displaces () =
  let strategy = { Broker.default_strategy with Broker.use_adv = false } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a/b" }));
  let outs = Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 2; xpe = xp "/a" }) in
  (* the general sub is forwarded and the covered one unsubscribed *)
  check ci "forwarded" 1 (count_kind `Sub outs);
  check ci "old unsubscribed" 1 (count_kind `Unsub outs)

let test_sub_no_covering_everything_forwarded () =
  let strategy = { Broker.default_strategy with Broker.use_adv = false; use_cover = false } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }));
  let outs = Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 2; xpe = xp "/a/b" }) in
  check ci "still forwarded" 1 (count_kind `Sub outs)

let test_sub_adv_routing_selective () =
  let b = make_broker ~id:0 ~neighbors:[ 1; 2 ] () in
  ignore (Broker.handle b ~from:(neighbor 1) (Message.Advertise { id = sid 9 1; adv = ad "/a/x" }));
  ignore (Broker.handle b ~from:(neighbor 2) (Message.Advertise { id = sid 9 2; adv = ad "/b/y" }));
  let outs = Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }) in
  check ci "routed to matching advertiser only" 1 (count_kind `Sub outs);
  check ci "towards broker 1" 1 (List.length (msgs_to (neighbor 1) outs))

let test_unsubscribe_propagates_and_promotes () =
  let strategy = { Broker.default_strategy with Broker.use_adv = false } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }));
  ignore (Broker.handle b ~from:(client 6) (Message.Subscribe { id = sid 6 1; xpe = xp "/a/b" }));
  let outs = Broker.handle b ~from:(client 5) (Message.Unsubscribe { id = sid 5 1 }) in
  (* the unsub travels upstream, and the previously covered /a/b is
     promoted and forwarded *)
  check ci "unsub upstream" 1 (count_kind `Unsub outs);
  check ci "promotion forwarded" 1 (count_kind `Sub outs);
  check ci "prt shrunk" 1 (Broker.prt_size b)

let test_unsubscribe_shared_xpe_survivor () =
  (* Two clients hold the same XPE; only the first is forwarded. When it
     unsubscribes, the survivor must take over the next hops. *)
  let strategy = { Broker.default_strategy with Broker.use_adv = false } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }));
  let outs2 = Broker.handle b ~from:(client 6) (Message.Subscribe { id = sid 6 1; xpe = xp "/a" }) in
  check ci "second copy suppressed" 0 (count_kind `Sub outs2);
  let outs = Broker.handle b ~from:(client 5) (Message.Unsubscribe { id = sid 5 1 }) in
  check ci "departing copy unsubscribed upstream" 1 (count_kind `Unsub outs);
  check ci "survivor re-forwarded" 1 (count_kind `Sub outs);
  (* publications still reach the survivor *)
  let pouts = Broker.handle b ~from:(neighbor 1) (Message.Publish { pub = pub "/a/b"; trail = []; ctx = None }) in
  check ci "delivered to survivor" 1 (count_kind `Pub pouts)

(* ---------------- Broker: publications ---------------- *)

let test_pub_forwarding () =
  let b = make_broker ~id:0 ~neighbors:[ 1; 2 ] () in
  ignore (Broker.handle b ~from:(neighbor 1) (Message.Subscribe { id = sid 5 1; xpe = xp "/a/b" }));
  ignore (Broker.handle b ~from:(client 7) (Message.Subscribe { id = sid 7 1; xpe = xp "/a" }));
  let outs = Broker.handle b ~from:(neighbor 2) (Message.Publish { pub = pub "/a/b/c"; trail = []; ctx = None }) in
  check ci "two targets" 2 (count_kind `Pub outs);
  check ci "to broker 1" 1 (List.length (msgs_to (neighbor 1) outs));
  check ci "to client 7" 1 (List.length (msgs_to (client 7) outs))

let test_pub_not_backwards () =
  let b = make_broker ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(neighbor 1) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }));
  let outs = Broker.handle b ~from:(neighbor 1) (Message.Publish { pub = pub "/a/b"; trail = []; ctx = None }) in
  check ci "never back to sender" 0 (List.length outs)

let test_pub_dropped_counted () =
  let b = make_broker ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(neighbor 1) (Message.Publish { pub = pub "/zzz"; trail = []; ctx = None }));
  check ci "dropped" 1 (Broker.counters b).Broker.pubs_dropped

let test_pub_trail_routing () =
  let strategy = { Broker.default_strategy with Broker.trail_routing = true } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1; 2 ] () in
  ignore (Broker.handle b ~from:(neighbor 1) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }));
  let outs = Broker.handle b ~from:(neighbor 2) (Message.Publish { pub = pub "/a/b"; trail = []; ctx = None }) in
  (match outs with
  | [ (ep, Message.Publish { trail; _ }) ] ->
    check cb "to neighbor 1" true (Rtable.endpoint_equal ep (neighbor 1));
    check ci "trail carries sub id" 1 (List.length trail)
  | _ -> Alcotest.fail "expected one publish with trail");
  (* the downstream broker uses the trail *)
  let b2 = make_broker ~strategy ~id:1 ~neighbors:[ 0 ] () in
  ignore (Broker.handle b2 ~from:(client 3) (Message.Subscribe { id = sid 5 1; xpe = xp "/a" }));
  let outs2 =
    Broker.handle b2 ~from:(neighbor 0) (Message.Publish { pub = pub "/a/b"; trail = [ sid 5 1 ]; ctx = None })
  in
  check ci "delivered via trail" 1 (count_kind `Pub outs2)

(* ---------------- Broker: merging ---------------- *)

let test_merge_pass_emits () =
  let strategy = { Broker.default_strategy with Broker.use_adv = false; merging = Broker.Perfect } in
  let b = make_broker ~strategy ~id:0 ~neighbors:[ 1 ] () in
  Broker.set_universe b
    (List.map
       (fun s -> Array.of_list (String.split_on_char '/' s))
       [ "a/b/c"; "a/b/d" ]);
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a/b/c" }));
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 2; xpe = xp "/a/b/d" }));
  let outs = Broker.merge_pass b in
  check ci "merger subscribed" 1 (count_kind `Sub outs);
  check ci "originals unsubscribed" 2 (count_kind `Unsub outs);
  (* publications still delivered to the exact clients *)
  let pouts = Broker.handle b ~from:(neighbor 1) (Message.Publish { pub = pub "/a/b/c"; trail = []; ctx = None }) in
  check ci "still delivered" 1 (count_kind `Pub pouts)

let test_merge_pass_disabled () =
  let b = make_broker ~id:0 ~neighbors:[ 1 ] () in
  ignore (Broker.handle b ~from:(client 5) (Message.Subscribe { id = sid 5 1; xpe = xp "/a/b/c" }));
  check ci "no merging" 0 (List.length (Broker.merge_pass b))

let test_strategy_names_roundtrip () =
  List.iter
    (fun name ->
      match Broker.strategy_of_name name with
      | Some _ -> ()
      | None -> Alcotest.failf "unknown strategy %s" name)
    Broker.strategy_names;
  check cb "unknown rejected" true (Broker.strategy_of_name "bogus" = None)

let () =
  Alcotest.run "broker"
    [
      ( "srt",
        [
          Alcotest.test_case "add and match" `Quick test_srt_add_and_match;
          Alcotest.test_case "duplicate" `Quick test_srt_duplicate;
          Alcotest.test_case "adv covering" `Quick test_srt_adv_covering;
          Alcotest.test_case "remove" `Quick test_srt_remove;
          Alcotest.test_case "hops dedup" `Quick test_srt_hops_dedup;
        ] );
      ( "prt",
        [
          Alcotest.test_case "insert/match" `Quick test_prt_insert_match;
          Alcotest.test_case "remove promotions" `Quick test_prt_remove_reports_promotions;
          Alcotest.test_case "trail matching" `Quick test_prt_match_from_trail;
        ] );
      ( "advertisements",
        [
          Alcotest.test_case "flooding" `Quick test_adv_flooding;
          Alcotest.test_case "triggers sub forwarding" `Quick test_adv_triggers_sub_forwarding;
          Alcotest.test_case "unadvertise" `Quick test_unadvertise_floods;
        ] );
      ( "subscriptions",
        [
          Alcotest.test_case "flooding" `Quick test_sub_flooding_without_adv;
          Alcotest.test_case "covering suppression" `Quick test_sub_covering_suppression;
          Alcotest.test_case "covering displaces" `Quick test_sub_covering_displaces;
          Alcotest.test_case "no covering" `Quick test_sub_no_covering_everything_forwarded;
          Alcotest.test_case "adv routing selective" `Quick test_sub_adv_routing_selective;
          Alcotest.test_case "unsubscribe promotes" `Quick test_unsubscribe_propagates_and_promotes;
          Alcotest.test_case "shared-xpe survivor" `Quick test_unsubscribe_shared_xpe_survivor;
        ] );
      ( "publications",
        [
          Alcotest.test_case "forwarding" `Quick test_pub_forwarding;
          Alcotest.test_case "not backwards" `Quick test_pub_not_backwards;
          Alcotest.test_case "dropped counted" `Quick test_pub_dropped_counted;
          Alcotest.test_case "trail routing" `Quick test_pub_trail_routing;
        ] );
      ( "merging",
        [
          Alcotest.test_case "merge pass" `Quick test_merge_pass_emits;
          Alcotest.test_case "disabled" `Quick test_merge_pass_disabled;
        ] );
      ("strategies", [ Alcotest.test_case "names" `Quick test_strategy_names_roundtrip ]);
    ]
