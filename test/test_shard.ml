(* Differential test of the sharded matching pool (Shard_pool): the
   same wire-line script fed to (a) a broker driven sequentially and
   (b) a broker driven through the pool glue must produce exactly the
   same rendered output stream and the same counters, for every domain
   count — the byte-identical-decisions contract that lets --domains N
   replace the sequential engine.

   The pool glue here replicates lib/daemon's handle_line_pool: raw
   publication lines are classified by root and shipped to their owner
   shard, control lines run their state transition at arrival and park
   their outputs in the reorder buffer. Also covered: the shard
   partition audit (Check.audit_shards) on healthy pools, on handcrafted
   violations, and on a pool broken by the mutation hook (must fail). *)

open Xroute_core
open Xroute_daemon
module Prng = Xroute_support.Prng
module Check = Xroute_check.Check
module Finding = Xroute_check.Finding

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let xp = Xroute_xpath.Xpe_parser.parse

(* ---------------- script generation ---------------- *)

(* One script step: a raw protocol line as some endpoint. *)
type step = { from : Rtable.endpoint; line : string }

let encode msg = "M|" ^ Codec.encode msg

let docs =
  [
    "<a><b/><c/></a>";
    "<a><b><d/></b></a>";
    "<b><c/></b>";
    "<c><d/><d/></c>";
    "<d><e><f/></e></d>";
    "<e/>";
  ]
  |> List.map Xroute_xml.Xml_parser.parse

let sub_patterns =
  [
    "/a/b"; "/a"; "/b"; "/c/d"; "/d/e/f"; "/e";
    (* unanchored: replicated to every shard *)
    "//b"; "//d"; "/*/c";
  ]

let adv_patterns = [ "/a/b"; "/a/c"; "/b/c"; "/c/d"; "/d/e/f"; "/e"; "/a/b/d" ]

(* A deterministic churn script: advertisements, subscriptions (some
   later unsubscribed), publications (documents decomposed into one line
   per path, as the client edge does), and an undecodable publication
   line sprinkled in. *)
let make_script ~seed ~steps =
  let rng = Prng.create seed in
  let next_doc = ref 0 in
  let live_subs = ref [] in
  let next_sub = ref 0 in
  let script = ref [] in
  let push from line = script := { from; line } :: !script in
  let client rng = Rtable.Client (100 + Prng.int rng 4) in
  (* advertise everything up front so subscriptions propagate the same
     way on both sides regardless of strategy *)
  List.iteri
    (fun i p ->
      push (Rtable.Client 100)
        (encode
           (Message.Advertise
              { id = { Message.origin = 100; seq = 1000 + i }; adv = Xroute_xpath.Adv.parse p })))
    adv_patterns;
  for _ = 1 to steps do
    match Prng.int rng 10 with
    | 0 | 1 | 2 ->
      (* subscribe *)
      let pat = List.nth sub_patterns (Prng.int rng (List.length sub_patterns)) in
      let from = client rng in
      incr next_sub;
      let id = { Message.origin = 200; seq = !next_sub } in
      live_subs := (id, from) :: !live_subs;
      push from (encode (Message.Subscribe { id; xpe = xp pat }))
    | 3 -> (
      (* unsubscribe an earlier subscription, from the same endpoint *)
      match !live_subs with
      | [] -> ()
      | subs ->
        let id, from = List.nth subs (Prng.int rng (List.length subs)) in
        live_subs := List.filter (fun (i, _) -> Message.compare_sub_id i id <> 0) subs;
        push from (encode (Message.Unsubscribe { id })))
    | 4 ->
      (* a malformed publication line: both sides must shrug it off
         without disturbing the stream *)
      push (Rtable.Client 100) "M|1|P|garbage"
    | _ ->
      (* publish: one line per decomposed path *)
      let doc = List.nth docs (Prng.int rng (List.length docs)) in
      incr next_doc;
      let from = client rng in
      List.iter
        (fun pub -> push from (encode (Message.Publish { pub; trail = []; ctx = None })))
        (Xroute_xml.Xml_paths.decompose ~doc_id:!next_doc doc)
  done;
  List.rev !script

(* ---------------- the two engines ---------------- *)

let render outs =
  List.map
    (fun (ep, msg) -> Format.asprintf "%a > %s" Rtable.pp_endpoint ep (Codec.encode msg))
    outs

let payload_of line = String.sub line 2 (String.length line - 2)

(* Reference: decode and handle each line at arrival, sequentially. *)
let run_sequential script =
  let broker = Broker.create ~id:0 ~neighbors:[ 1 ] () in
  let out = ref [] in
  List.iter
    (fun { from; line } ->
      match Codec.decode (payload_of line) with
      | Ok msg -> out := List.rev_append (render (Broker.handle broker ~from msg)) !out
      | Error _ -> ())
    script;
  (broker, List.rev !out)

(* Pool glue, mirroring Daemon.handle_line_pool: publications classified
   by root and matched on their owner shard, control lines handled at
   arrival with emission parked in the reorder buffer. *)
let run_pooled ?ingress_capacity ~domains script =
  let broker = Broker.create ~id:0 ~neighbors:[ 1 ] () in
  let pool = Shard_pool.create ?ingress_capacity ~domains () in
  let out = ref [] in
  let record outs = out := List.rev_append (render outs) !out in
  let publish ~seq:_ ~from ~batch_t:_ outcome =
    match (outcome : Shard_pool.outcome) with
    | Shard_pool.Undecodable _ -> ()
    | Shard_pool.Routed { pub; ctx; payloads; ops; _ } ->
      record (Broker.route_publication broker ~from ~pub ~ctx ~payloads ~match_ops:ops)
  in
  let drain () = Shard_pool.drain pool ~publish in
  List.iter
    (fun { from; line } ->
      let payload = payload_of line in
      match Shard_pool.publish_root payload with
      | Some root ->
        let seq = Shard_pool.next_seq pool in
        while
          not (Shard_pool.submit_publish pool ~seq ~from ~batch_t:0.0 ~payload ~root)
        do
          drain ();
          Unix.sleepf 0.0002
        done
      | None -> (
        let seq = Shard_pool.next_seq pool in
        match Codec.decode payload with
        | Ok msg ->
          let interesting_id =
            match msg with
            | Message.Subscribe { id; _ } | Message.Unsubscribe { id } -> Some id
            | _ -> None
          in
          let before =
            match interesting_id with Some id -> Broker.prt_mem broker id | None -> false
          in
          let outs = Broker.handle broker ~from msg in
          (match msg with
          | Message.Subscribe { id; xpe } ->
            if (not before) && Broker.prt_mem broker id then
              Shard_pool.subscribe pool ~stamp:seq id xpe from
          | Message.Unsubscribe { id } ->
            if before && not (Broker.prt_mem broker id) then Shard_pool.unsubscribe pool id
          | _ -> ());
          Shard_pool.push_control pool ~seq (fun () -> record outs)
        | Error _ -> Shard_pool.push_control pool ~seq (fun () -> ())))
    script;
  (* settle: everything submitted must come back out *)
  let deadline = Unix.gettimeofday () +. 20.0 in
  while Shard_pool.in_flight pool > 0 && Unix.gettimeofday () < deadline do
    drain ();
    Unix.sleepf 0.0002
  done;
  drain ();
  check ci "pool drained completely" 0 (Shard_pool.in_flight pool);
  (broker, pool, List.rev !out)

(* ---------------- differential matrix ---------------- *)

let counters_triple broker =
  let c = Broker.counters broker in
  (c.Broker.msgs_in, c.Broker.pubs_in, c.Broker.deliveries)

let run_matrix_case ~seed ~domains () =
  let script = make_script ~seed ~steps:120 in
  let seq_broker, expected = run_sequential script in
  let pool_broker, pool, got = run_pooled ~domains script in
  check ci "same output count" (List.length expected) (List.length got);
  List.iteri
    (fun i (e, g) ->
      if e <> g then
        Alcotest.failf "output %d diverged:\n  sequential: %s\n  pooled:     %s" i e g)
    (List.combine expected got);
  check (Alcotest.triple ci ci ci) "same counters" (counters_triple seq_broker)
    (counters_triple pool_broker);
  (* the partition must audit clean at quiescence *)
  Shard_pool.quiesce pool;
  let subs =
    List.map (fun (id, xpe, _) -> (id, xpe)) (Broker.audit_view pool_broker).Broker.av_subs
  in
  let findings = Check.audit_shards (Shard_pool.view pool ~subs) in
  List.iter
    (fun (f : Finding.t) -> Printf.printf "  shard finding: %s %s\n%!" f.code f.witness)
    findings;
  check ci "shard audit clean" 0 (List.length findings);
  Shard_pool.stop pool

let test_matrix () =
  List.iter
    (fun seed ->
      List.iter (fun domains -> run_matrix_case ~seed ~domains ()) [ 1; 2; 4 ])
    [ 7; 42; 1001 ]

(* Backpressure: with the ingress rings shrunk to 2 slots, a
   publication-heavy script keeps every ring permanently near-full, so
   submit_publish fails and the daemon-style drain-and-retry loop runs
   constantly. The contract under pressure is the same as at rest: no
   publication dropped, none reordered — the pooled output stream and
   counters stay byte-identical to the sequential engine's. *)
let test_backpressure_tiny_ring () =
  List.iter
    (fun domains ->
      (* step mix is ~60% publishes, each decomposing into several
         path-publication lines: hundreds of submissions through rings
         that hold two *)
      let script = make_script ~seed:90210 ~steps:140 in
      let seq_broker, expected = run_sequential script in
      let pool_broker, pool, got =
        run_pooled ~ingress_capacity:2 ~domains script
      in
      check cb "enough pressure to mean anything" true (List.length expected > 50);
      check ci "no publication dropped" (List.length expected) (List.length got);
      List.iteri
        (fun i (e, g) ->
          if e <> g then
            Alcotest.failf "under backpressure, output %d diverged:\n  sequential: %s\n  pooled:     %s"
              i e g)
        (List.combine expected got);
      check (Alcotest.triple ci ci ci) "counters survive backpressure"
        (counters_triple seq_broker) (counters_triple pool_broker);
      Shard_pool.quiesce pool;
      let subs =
        List.map (fun (id, xpe, _) -> (id, xpe)) (Broker.audit_view pool_broker).Broker.av_subs
      in
      check ci "partition clean after backpressure" 0
        (List.length (Check.audit_shards (Shard_pool.view pool ~subs)));
      Shard_pool.stop pool)
    [ 1; 3 ]

(* The mutation hook must be caught: a silently broken partition is
   exactly what the audit family exists to detect. *)
let test_corruption_caught () =
  let script = make_script ~seed:5 ~steps:80 in
  let pool_broker, pool, _ = run_pooled ~domains:3 script in
  Shard_pool.quiesce pool;
  let subs =
    List.map (fun (id, xpe, _) -> (id, xpe)) (Broker.audit_view pool_broker).Broker.av_subs
  in
  check ci "healthy first" 0 (List.length (Check.audit_shards (Shard_pool.view pool ~subs)));
  Shard_pool.corrupt_for_test pool;
  let findings = Check.audit_shards (Shard_pool.view pool ~subs) in
  check cb "corruption detected" true (findings <> []);
  check cb "all error severity" true
    (List.for_all (fun (f : Finding.t) -> f.Finding.severity = Finding.Error) findings);
  Shard_pool.stop pool

(* ---------------- audit unit tests on handcrafted views ---------------- *)

let id n = { Message.origin = 9; seq = n }

let clean_view =
  {
    Check.shv_domains = 2;
    shv_entries = [ (0, [ (id 1, 10); (id 3, 30) ]); (1, [ (id 2, 20); (id 3, 30) ]) ];
    shv_subs = [ (id 1, Some 0); (id 2, Some 1); (id 3, None) ];
    shv_shard_pubs = [ (0, 4); (1, 3) ];
    shv_pool_pubs = 7;
  }

let codes findings = List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.code) findings)

let test_audit_units () =
  check (Alcotest.list Alcotest.string) "clean view" [] (codes (Check.audit_shards clean_view));
  (* anchored entry on the wrong shard *)
  check (Alcotest.list Alcotest.string) "ownership"
    [ "shard-ownership" ]
    (codes
       (Check.audit_shards
          {
            clean_view with
            shv_entries = [ (0, [ (id 3, 30) ]); (1, [ (id 1, 10); (id 2, 20); (id 3, 30) ]) ];
          }));
  (* unanchored entry missing from one shard *)
  check (Alcotest.list Alcotest.string) "replication"
    [ "shard-replication" ]
    (codes
       (Check.audit_shards
          {
            clean_view with
            shv_entries = [ (0, [ (id 1, 10); (id 3, 30) ]); (1, [ (id 2, 20) ]) ];
          }));
  (* shard entry absent from the authoritative table *)
  check (Alcotest.list Alcotest.string) "orphan"
    [ "shard-orphan" ]
    (codes
       (Check.audit_shards
          {
            clean_view with
            shv_entries =
              [ (0, [ (id 1, 10); (id 3, 30); (id 4, 40) ]); (1, [ (id 2, 20); (id 3, 30) ]) ];
          }));
  (* two entries of one shard sharing a stamp *)
  check (Alcotest.list Alcotest.string) "stamp"
    [ "shard-stamp" ]
    (codes
       (Check.audit_shards
          {
            clean_view with
            shv_entries = [ (0, [ (id 1, 10); (id 3, 10) ]); (1, [ (id 2, 20); (id 3, 30) ]) ];
          }));
  (* per-shard counters out of step with the pool gauge *)
  check (Alcotest.list Alcotest.string) "counter drift"
    [ "shard-counter-drift" ]
    (codes (Check.audit_shards { clean_view with shv_pool_pubs = 9 }));
  (* the report carries the shard statistics *)
  let report = Check.audit_shards_report clean_view in
  check cb "stats present" true
    (List.mem_assoc "shards_audited" report.Finding.stats
    && List.mem_assoc "sharded_subscriptions" report.Finding.stats)

(* ---------------- stress: churn + faults across domain counts -------- *)

(* A longer adversarial script — heavy subscribe/unsubscribe churn
   interleaved with publications and decode garbage — run at every
   domain count and compared output-for-output against the sequential
   engine. This is the deterministic multi-domain stress gate. *)
let test_stress_churn () =
  List.iter
    (fun seed ->
      let script = make_script ~seed ~steps:400 in
      let _, expected = run_sequential script in
      List.iter
        (fun domains ->
          let _, pool, got = run_pooled ~domains script in
          if expected <> got then
            Alcotest.failf "stress seed %d domains %d: %d vs %d outputs diverged" seed
              domains (List.length expected) (List.length got);
          Shard_pool.stop pool)
        [ 2; 3; 4 ])
    [ 11; 23 ]

let () =
  Alcotest.run "shard"
    [
      ( "pool",
        [
          Alcotest.test_case "differential matrix" `Quick test_matrix;
          Alcotest.test_case "backpressure on tiny rings" `Quick test_backpressure_tiny_ring;
          Alcotest.test_case "stress churn across domains" `Quick test_stress_churn;
        ] );
      ( "audit",
        [
          Alcotest.test_case "handcrafted views" `Quick test_audit_units;
          Alcotest.test_case "mutation caught" `Quick test_corruption_caught;
        ] );
    ]
