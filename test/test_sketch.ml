(* Tests for the mergeable quantile sketch and the health summaries
   built on it: the relative-error bound on seeded distributions
   (including Zipf ranks), the merge algebra the FEDSTATS federation
   relies on, the canonical wire encoding, the capped-histogram
   quantile fix in Metrics, and the Health view merge. *)

open Xroute_obs
open Xroute_support

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let cf = Alcotest.float 1e-9

(* ---------------- relative-error bound ---------------- *)

let distributions ~samples ~seed =
  let prng = Prng.create seed in
  let zipf = Zipf.create ~n:500 ~exponent:1.2 in
  let gen name f = (name, Array.init samples (fun _ -> f ())) in
  [
    gen "uniform" (fun () -> 1.0 +. Prng.float prng 1000.0);
    gen "exponential" (fun () -> -50.0 *. log (1.0 -. Prng.unit_float prng));
    gen "zipf" (fun () -> float_of_int (1 + Zipf.sample zipf prng));
    gen "latency-mix" (fun () ->
        if Prng.bernoulli prng 0.05 then 100.0 +. Prng.float prng 900.0
        else 0.5 +. Prng.float prng 4.5);
  ]

let test_accuracy_bound () =
  List.iter
    (fun seed ->
      List.iter
        (fun (name, xs) ->
          let sk = Sketch.create () in
          Array.iter (Sketch.observe sk) xs;
          List.iter
            (fun q ->
              let exact = Stats.percentile xs q in
              let est = Sketch.quantile sk q in
              let rel = abs_float (est -. exact) /. abs_float exact in
              if rel > Sketch.alpha sk +. 1e-9 then
                Alcotest.failf "%s seed %d q=%g: sketch %g vs exact %g (rel %.5f)" name
                  seed q est exact rel)
            [ 0.5; 0.9; 0.95; 0.99 ])
        (distributions ~samples:2000 ~seed))
    [ 1; 2; 3; 4; 5 ]

(* ---------------- merge algebra ---------------- *)

let chunks ~seed n =
  let prng = Prng.create seed in
  List.init n (fun _ ->
      let s = Sketch.create () in
      for _ = 1 to 500 do
        Sketch.observe s (0.01 +. Prng.float prng 200.0)
      done;
      s)

let test_merge_commutative () =
  match chunks ~seed:11 2 with
  | [ a; b ] ->
    check cs "a+b = b+a"
      (Sketch.encode (Sketch.merge a b))
      (Sketch.encode (Sketch.merge b a))
  | _ -> assert false

let test_merge_associative () =
  match chunks ~seed:12 3 with
  | [ a; b; c ] ->
    let l = Sketch.merge (Sketch.merge a b) c in
    let r = Sketch.merge a (Sketch.merge b c) in
    check ci "count" (Sketch.count l) (Sketch.count r);
    List.iter
      (fun q ->
        check cf (Printf.sprintf "q=%g" q) (Sketch.quantile l q) (Sketch.quantile r q))
      [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]
  | _ -> assert false

let test_merge_deterministic () =
  (* Folding the same sketches in any order gives the same buckets:
     counts are ints, so the bucket tables agree exactly; quantiles
     must too. *)
  let sks = chunks ~seed:13 5 in
  let fwd = List.fold_left (fun acc s -> Sketch.merge acc s) (Sketch.create ()) sks in
  let bwd =
    List.fold_left (fun acc s -> Sketch.merge s acc) (Sketch.create ()) (List.rev sks)
  in
  check ci "count" (Sketch.count fwd) (Sketch.count bwd);
  List.iter
    (fun q ->
      check cf (Printf.sprintf "q=%g" q) (Sketch.quantile fwd q) (Sketch.quantile bwd q))
    [ 0.5; 0.95; 0.99 ]

let test_merge_alpha_mismatch () =
  let a = Sketch.create ~alpha:0.01 () and b = Sketch.create ~alpha:0.02 () in
  check cb "mismatched alphas raise" true
    (try
       ignore (Sketch.merge a b);
       false
     with Invalid_argument _ -> true)

(* ---------------- wire encoding ---------------- *)

(* Pinned canonical encoding: alpha, count, zero-bucket count, sum, min,
   max as hex floats, then the positive and mirrored-negative bucket
   tables. A platform where the log/ceil bucket indexing diverged would
   break this golden — which is the point: summaries must be
   byte-identical across brokers for the federation merge tie-break. *)
let golden = "sk1;0x1.47ae147ae147bp-7;5;1;0x1p+2;-0x1.8p+1;0x1p+2;0:1,35:1,70:1;55:1"

let test_encode_golden () =
  let s = Sketch.create () in
  List.iter (Sketch.observe s) [ 1.0; 2.0; 4.0; 0.0; -3.0 ];
  check cs "canonical encoding" golden (Sketch.encode s);
  match Sketch.decode golden with
  | None -> Alcotest.fail "golden does not decode"
  | Some d ->
    check cb "decode(golden) = original" true (Sketch.equal d s);
    check ci "count" 5 (Sketch.count d);
    check cf "min" (-3.0) (Sketch.min_value d);
    check cf "max" 4.0 (Sketch.max_value d);
    (* rank ceil(0.5*5)=3 -> third smallest (1.0), within 1% *)
    check cb "median within bound" true
      (abs_float (Sketch.quantile d 0.5 -. 1.0) <= 0.01 +. 1e-9)

let test_roundtrip_random () =
  List.iter
    (fun seed ->
      let prng = Prng.create (seed * 97) in
      let s = Sketch.create () in
      for _ = 1 to 300 do
        Sketch.observe s (Prng.float prng 2000.0 -. 500.0)
      done;
      match Sketch.decode (Sketch.encode s) with
      | Some d -> check cs "roundtrip" (Sketch.encode s) (Sketch.encode d)
      | None -> Alcotest.fail "encoding did not decode")
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_decode_rejects_garbage () =
  List.iter
    (fun s -> check cb s true (Sketch.decode s = None))
    [
      "";
      "nonsense";
      "sk2;0x1p-7;0;0;0x0p+0;infinity;-infinity;;";
      "sk1;0x0p+0;0;0;0x0p+0;infinity;-infinity;;" (* alpha = 0 *);
      "sk1;0x1.47ae147ae147bp-7;-1;0;0x0p+0;infinity;-infinity;;" (* count < 0 *);
      "sk1;0x1.47ae147ae147bp-7;1;0;0x0p+0;0x1p+0;0x1p+0;0:0;" (* bucket n = 0 *);
    ]

(* ---------------- edge cases ---------------- *)

let test_edges () =
  let s = Sketch.create () in
  check cf "empty quantile" 0.0 (Sketch.quantile s 0.5);
  Sketch.observe s 0.0;
  Sketch.observe s 1e-12;
  check cf "zero bucket estimates 0" 0.0 (Sketch.quantile s 0.5);
  Sketch.observe s (-7.0);
  check cf "negative min exact" (-7.0) (Sketch.min_value s);
  check cb "negative estimate within bound" true
    (abs_float (Sketch.quantile s 0.0 +. 7.0) <= 0.07 +. 1e-9);
  check cb "NaN raises" true
    (try
       Sketch.observe s Float.nan;
       false
     with Invalid_argument _ -> true);
  check cb "q out of range raises" true
    (try
       ignore (Sketch.quantile s 1.5);
       false
     with Invalid_argument _ -> true);
  Sketch.clear s;
  check ci "clear empties" 0 (Sketch.count s);
  check cf "alpha survives clear" 0.01 (Sketch.alpha s)

(* ---------------- Metrics: capped histogram quantiles ---------------- *)

(* The satellite fix this PR ships: a histogram past its sample cap used
   to compute quantiles from the truncated prefix — ascending input made
   every quantile report one of the cap smallest values. Quantiles now
   come from the sketch once the cap is exceeded. *)
let test_capped_histogram_unbiased () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~cap:64 "xroute_test_latency_ms" in
  for i = 1 to 10_000 do
    Metrics.observe h (float_of_int i)
  done;
  check ci "retained samples capped" 64 (Array.length (Metrics.samples h));
  let s = Metrics.summary h in
  check ci "count exact past cap" 10_000 s.Stats.count;
  check cf "min exact" 1.0 s.Stats.min;
  check cf "max exact" 10_000.0 s.Stats.max;
  check cb "p50 unbiased" true (abs_float (s.Stats.p50 -. 5000.0) /. 5000.0 <= 0.011);
  check cb "p99 unbiased" true (abs_float (s.Stats.p99 -. 9900.0) /. 9900.0 <= 0.011);
  check cb "arbitrary quantile unbiased" true
    (abs_float (Metrics.quantile h 0.9 -. 9000.0) /. 9000.0 <= 0.011)

let test_uncapped_histogram_exact () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "xroute_test_latency_ms" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let s = Metrics.summary h in
  let want = Stats.summarize (Metrics.samples h) in
  check cf "p50 exact under cap" want.Stats.p50 s.Stats.p50;
  check cf "p95 exact under cap" want.Stats.p95 s.Stats.p95;
  check cf "p99 exact under cap" want.Stats.p99 s.Stats.p99;
  check cf "stddev exact under cap" want.Stats.stddev s.Stats.stddev

(* ---------------- Health summaries and views ---------------- *)

let test_health_roundtrip () =
  let h = Health.create 7 in
  Health.record_pub h;
  Health.record_hop_latency h 1.5;
  Health.record_queue_depth h 3.0;
  Health.record_backlog h 128.0;
  Health.record_send h ~peer:3;
  Health.record_send h ~peer:9;
  Health.record_link_drop h ~peer:9;
  Health.record_link_latency h ~peer:3 0.25;
  Health.tick h ~now:0.0;
  Health.tick h ~now:1000.0;
  let line = Health.encode_summary h in
  match Health.decode_summary line with
  | None -> Alcotest.fail "summary does not decode"
  | Some d ->
    check cs "roundtrip" line (Health.encode_summary d);
    check ci "origin" 7 (Health.origin d);
    check ci "epoch" 2 (Health.epoch d);
    check ci "pubs" 1 (Health.pubs d);
    check ci "links" 2 (List.length (Health.links d))

let test_view_merge () =
  let stale = Health.create 1 in
  Health.record_pub stale;
  Health.tick stale ~now:0.0;
  let fresh = Health.create 1 in
  Health.record_pub fresh;
  Health.record_pub fresh;
  Health.tick fresh ~now:0.0;
  Health.tick fresh ~now:500.0;
  let other = Health.create 2 in
  Health.tick other ~now:0.0;
  let a = Health.view_of [ stale; other ] in
  let b = Health.view_of [ fresh ] in
  let merged = Health.merge_views a b in
  check ci "origins union" 2 (List.length merged);
  (match List.assoc_opt 1 merged with
  | Some s -> check ci "freshest epoch wins" 2 (Health.pubs s)
  | None -> Alcotest.fail "origin 1 lost");
  check cb "commutative" true (Health.view_equal merged (Health.merge_views b a));
  check cb "idempotent" true
    (Health.view_equal merged (Health.merge_views merged merged));
  match Health.decode_view (Health.encode_view merged) with
  | Some v -> check cb "view roundtrip" true (Health.view_equal v merged)
  | None -> Alcotest.fail "view does not decode"

let () =
  Alcotest.run "sketch"
    [
      ( "accuracy",
        [
          Alcotest.test_case "relative-error bound on seeded distributions" `Quick
            test_accuracy_bound;
        ] );
      ( "merge",
        [
          Alcotest.test_case "commutative" `Quick test_merge_commutative;
          Alcotest.test_case "associative" `Quick test_merge_associative;
          Alcotest.test_case "fold-order independent" `Quick test_merge_deterministic;
          Alcotest.test_case "alpha mismatch raises" `Quick test_merge_alpha_mismatch;
        ] );
      ( "codec",
        [
          Alcotest.test_case "golden encoding" `Quick test_encode_golden;
          Alcotest.test_case "random roundtrip" `Quick test_roundtrip_random;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "edge cases" `Quick test_edges;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "capped histogram quantiles unbiased" `Quick
            test_capped_histogram_unbiased;
          Alcotest.test_case "uncapped histogram exact" `Quick
            test_uncapped_histogram_exact;
        ] );
      ( "health",
        [
          Alcotest.test_case "summary roundtrip" `Quick test_health_roundtrip;
          Alcotest.test_case "view merge laws" `Quick test_view_merge;
        ] );
    ]
