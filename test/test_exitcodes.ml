(* Pins the analyzer's exit-code contract per family, in both output
   modes: 0 when no Error-severity finding was produced (warnings and
   infos alone never fail the process), 1 on any Error, identically
   with the text report and with --json. Each family is exercised at
   its cheapest configuration; the families with a mutation switch are
   also driven to their must-fail side. *)

(* Resolve the analyzer next to this test binary so the pin works both
   under `dune runtest` (cwd = test dir) and `dune exec` (cwd = root). *)
let exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/xroute_check.exe"

(* Exit code of the analyzer under [args], output discarded. *)
let code args =
  let cmd = Printf.sprintf "%s %s >/dev/null 2>&1" exe args in
  match Sys.command cmd with
  | 0 -> 0
  | n -> n

let check_both name expected args =
  Alcotest.(check int) (name ^ " (text)") expected (code args);
  Alcotest.(check int) (name ^ " (json)") expected (code (args ^ " --json -"))

(* Clean runs: family-by-family, warnings allowed, errors not expected
   on trunk. The workload family in particular always produces Warning
   findings on the default corpus — the strongest pin that warnings
   alone exit 0. *)
let test_clean_workload () = check_both "workload" 0 "--workload --quiet"

let test_clean_soundness () =
  check_both "soundness" 0 "--soundness --seeds 1 --pairs 25 --quiet"

let test_clean_audit () =
  check_both "audit" 0 "--audit --strategy with-Adv-with-Cov --seeds 1 --ops 8 --quiet"

let test_clean_shard () =
  check_both "shard-audit" 0 "--shard-audit --seeds 1 --ops 8 --domains 2 --quiet"

let test_clean_conc () =
  check_both "conc-audit" 0 "--conc-audit --conc-depth 3 --conc-random 5 --quiet"

let test_clean_obs () = check_both "obs-audit" 0 "--obs-audit --quiet"

(* Must-fail runs: every planted defect exits 1 in both modes. *)
let test_inject_soundness () =
  check_both "soundness inject" 1
    "--soundness --inject-unsound-cover --seeds 1 --pairs 25 --quiet"

let test_inject_shard () =
  check_both "shard inject" 1
    "--shard-audit --inject-shard-skew --seeds 1 --ops 8 --domains 2 --quiet"

let test_inject_conc () =
  check_both "conc inject" 1
    "--conc-audit --inject-conc-race --conc-depth 3 --conc-random 5 --quiet"

let test_inject_obs () =
  check_both "obs inject" 1 "--obs-audit --inject-obs-drift --quiet"

(* Unusable invocations are 2, not 1: distinguishable from findings. *)
let test_usage_errors () =
  Alcotest.(check int) "bad dtd" 2 (code "--workload --dtd /does/not/exist --quiet");
  Alcotest.(check int) "bad seeds" 2 (code "--soundness --seeds nope --quiet")

let () =
  (* The scenario family's exit codes are pinned by the @scenario alias
     (clean rule + must-fail rule); repeating its sweep here would
     double the suite's slowest stage for no new information. *)
  Alcotest.run "exitcodes"
    [
      ( "exitcodes",
        [
          Alcotest.test_case "workload clean = 0" `Quick test_clean_workload;
          Alcotest.test_case "soundness clean = 0" `Quick test_clean_soundness;
          Alcotest.test_case "audit clean = 0" `Quick test_clean_audit;
          Alcotest.test_case "shard-audit clean = 0" `Quick test_clean_shard;
          Alcotest.test_case "conc-audit clean = 0" `Quick test_clean_conc;
          Alcotest.test_case "obs-audit clean = 0" `Quick test_clean_obs;
          Alcotest.test_case "soundness inject = 1" `Quick test_inject_soundness;
          Alcotest.test_case "shard inject = 1" `Quick test_inject_shard;
          Alcotest.test_case "conc inject = 1" `Quick test_inject_conc;
          Alcotest.test_case "obs inject = 1" `Quick test_inject_obs;
          Alcotest.test_case "usage errors = 2" `Quick test_usage_errors;
        ] );
    ]
