(* The conc-audit family end to end: the shard-pool models stay clean
   (no race, no divergence from the sequential engine) across the whole
   bounded-exhaustive + random sweep, the sweep is big enough to mean
   something (>= 1000 distinct schedules, the BENCH_9 floor), it is
   deterministic, and the planted unsynchronized counter is caught with
   a printed witness schedule. *)

module Conc = Xroute_check.Conc
module Finding = Xroute_check.Finding

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let stat name (r : Finding.report) =
  match List.assoc_opt name r.stats with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "stat %s missing" name

let test_trunk_clean () =
  let r = Conc.audit () in
  check cb "no errors" false (Finding.has_errors r);
  check ci "no races" 0 (stat "conc_races" r);
  check ci "no divergences" 0 (stat "conc_divergences" r);
  check ci "three scenarios" 3 (stat "conc_scenarios" r);
  check cb "acceptance floor: >= 1000 schedules" true (stat "conc_schedules" r >= 1000);
  check cb "steps accumulate" true (stat "conc_steps" r > stat "conc_schedules" r)

let test_deterministic () =
  (* Shrunk sweep twice: identical stats, byte-identical JSON. *)
  let r1 = Conc.audit ~depth:4 ~random:20 ~seed:5 () in
  let r2 = Conc.audit ~depth:4 ~random:20 ~seed:5 () in
  check ci "schedules" (stat "conc_schedules" r1) (stat "conc_schedules" r2);
  check ci "steps" (stat "conc_steps" r1) (stat "conc_steps" r2);
  check Alcotest.string "json identical" (Finding.to_json r1) (Finding.to_json r2)

let test_per_scenario_stats () =
  let r = Conc.audit ~depth:4 ~random:10 () in
  List.iter
    (fun key ->
      check cb (key ^ " present and positive") true (stat key r > 0))
    [
      "conc_schedules_spsc_ring_wrap";
      "conc_schedules_pool_1worker";
      "conc_schedules_pool_2worker";
    ]

let test_inject_detected () =
  let r = Conc.audit ~depth:4 ~random:10 ~inject:true () in
  check cb "errors raised" true (Finding.has_errors r);
  check cb "races counted" true (stat "conc_races" r > 0);
  let race_findings =
    List.filter (fun (f : Finding.t) -> f.code = "conc-race") r.findings
  in
  check cb "conc-race finding present" true (race_findings <> []);
  List.iter
    (fun (f : Finding.t) ->
      check cb "witness carries a schedule" true
        (String.length f.witness > 0
        && String.sub f.witness 0 17 = "witness schedule ");
      check cb "names the planted location" true
        (let sub = "injected.race_counter" in
         let n = String.length f.subject and m = String.length sub in
         let rec scan i = i + m <= n && (String.sub f.subject i m = sub || scan (i + 1)) in
         scan 0))
    race_findings

let test_explore_scenarios_shape () =
  let rs = Conc.explore_scenarios ~depth:3 ~random:5 () in
  check ci "three scenarios" 3 (List.length rs);
  List.iter
    (fun (name, (e : Xroute_support.Tsync.Sched.exploration)) ->
      check cb (name ^ " explored") true (e.distinct > 0);
      check ci (name ^ " clean") 0
        (List.length e.race_witnesses + List.length e.failure_witnesses))
    rs

let () =
  Alcotest.run "conc"
    [
      ( "conc",
        [
          Alcotest.test_case "trunk clean at full sweep" `Quick test_trunk_clean;
          Alcotest.test_case "audit deterministic" `Quick test_deterministic;
          Alcotest.test_case "per-scenario stats" `Quick test_per_scenario_stats;
          Alcotest.test_case "planted race detected" `Quick test_inject_detected;
          Alcotest.test_case "explore_scenarios shape" `Quick test_explore_scenarios_shape;
        ] );
    ]
