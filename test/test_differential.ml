(* Differential testing of the three matching engines on seeded
   workloads: the direct XPE evaluator (Xpe_eval), the covering-tree
   publication routing table (Rtable.Prt / Sub_tree) and the YFilter
   NFA index must agree on the matched subscription set for every
   publication. Any disagreement is shrunk to a minimal (XPE, path)
   pair and printed before failing. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check

(* ---------------- oracles ---------------- *)

(* Direct evaluation: the semantics every index must reproduce. *)
let direct_matches xpes (pub : Xroute_xml.Xml_paths.publication) =
  List.mapi (fun i x -> (i, x)) xpes
  |> List.filter_map (fun (i, x) ->
         if Xpe_eval.matches_steps x pub.steps pub.attrs then Some i else None)

let sort_uniq is = List.sort_uniq compare is

(* Index a population: subscription [i] becomes id [{origin = 1; seq = i}]. *)
let build_prt ?flat ?engine xpes =
  let prt = Rtable.Prt.create ?flat ?engine () in
  List.iteri
    (fun i x -> ignore (Rtable.Prt.insert prt { Message.origin = 1; seq = i } x (Rtable.Client 0)))
    xpes;
  prt

let build_yfilter xpes =
  let yf = Yfilter.create () in
  List.iteri (fun i x -> Yfilter.insert yf x i) xpes;
  yf

let prt_matches prt (pub : Xroute_xml.Xml_paths.publication) =
  Rtable.Prt.match_pub prt pub
  |> List.map (fun (p : Rtable.Prt.payload) -> p.id.Message.seq)
  |> sort_uniq

let yf_matches yf (pub : Xroute_xml.Xml_paths.publication) =
  Yfilter.match_path yf pub.steps pub.attrs |> sort_uniq

(* ---------------- shrinking ---------------- *)

let path_of_steps steps = "/" ^ String.concat "/" (Array.to_list steps)

(* Shrink a disagreement on one XPE to the shortest path prefix that
   still disagrees, re-indexing just that XPE. *)
let shrink_path engine_name engine_of_xpe xpe (pub : Xroute_xml.Xml_paths.publication) =
  let disagrees steps attrs =
    let expect = Xpe_eval.matches_steps xpe steps attrs in
    engine_of_xpe xpe steps attrs <> expect
  in
  let n = Array.length pub.steps in
  let best = ref (pub.steps, pub.attrs) in
  (try
     for len = 1 to n do
       let steps = Array.sub pub.steps 0 len and attrs = Array.sub pub.attrs 0 len in
       if disagrees steps attrs then begin
         best := (steps, attrs);
         raise Exit
       end
     done
   with Exit -> ());
  let steps, _ = !best in
  Printf.printf "  engine %s, xpe %s, shrunk path %s (full: %s)\n%!" engine_name
    (Xpe.to_string xpe) (path_of_steps steps) (path_of_steps pub.steps)

let prt_single xpe steps attrs =
  let prt = build_prt [ xpe ] in
  Rtable.Prt.match_pub prt
    (Xroute_xml.Xml_paths.make ~doc_id:0 ~path_id:0 ~steps ~attrs ~doc_size:0 ~path_count:1)
  <> []

let prt_tree_single xpe steps attrs =
  let prt = build_prt ~engine:Rtable.Prt.Tree [ xpe ] in
  Rtable.Prt.match_pub prt
    (Xroute_xml.Xml_paths.make ~doc_id:0 ~path_id:0 ~steps ~attrs ~doc_size:0 ~path_count:1)
  <> []

let yf_single xpe steps attrs =
  let yf = build_yfilter [ xpe ] in
  Yfilter.match_path yf steps attrs <> []

let report_mismatch ~round xpes pub ~expect ~engine_name ~got ~single =
  let diff =
    List.filter (fun i -> not (List.mem i got)) expect
    @ List.filter (fun i -> not (List.mem i expect)) got
  in
  Printf.printf "mismatch in %s: %s on publication %s\n%!" round engine_name
    (path_of_steps pub.Xroute_xml.Xml_paths.steps);
  List.iter (fun i -> shrink_path engine_name single (List.nth xpes i) pub) (sort_uniq diff);
  List.length diff

(* ---------------- the sweep ---------------- *)

(* One workload round: generate a seeded XPE population and document
   set, index the population in both engines, and compare the matched
   id set against direct evaluation for every (publication, engine)
   pair. Returns the number of compared (publication, xpe) pairs. *)
let run_round ~name ~dtd ~params ~xpe_count ~xpe_seed ~doc_count ~doc_seed () =
  let xpes = Xroute_workload.Workload.xpes ~params ~count:xpe_count ~seed:xpe_seed () in
  let docs = Xroute_workload.Workload.documents ~dtd ~count:doc_count ~seed:doc_seed () in
  let pubs = Xroute_workload.Workload.publications_of_documents docs in
  (* NFA engine (the default), the covering-tree opt-out, and the raw
     automaton: each must agree with direct evaluation *)
  let prt = build_prt xpes in
  let prt_tree = build_prt ~engine:Rtable.Prt.Tree xpes in
  let yf = build_yfilter xpes in
  let mismatches = ref 0 in
  List.iter
    (fun pub ->
      let expect = sort_uniq (direct_matches xpes pub) in
      let from_prt = prt_matches prt pub in
      let from_tree = prt_matches prt_tree pub in
      let from_yf = yf_matches yf pub in
      if from_prt <> expect then
        mismatches :=
          !mismatches
          + report_mismatch ~round:name xpes pub ~expect ~engine_name:"prt-nfa" ~got:from_prt
              ~single:prt_single;
      if from_tree <> expect then
        mismatches :=
          !mismatches
          + report_mismatch ~round:name xpes pub ~expect ~engine_name:"prt-tree"
              ~got:from_tree ~single:prt_tree_single;
      if from_yf <> expect then
        mismatches :=
          !mismatches
          + report_mismatch ~round:name xpes pub ~expect ~engine_name:"yfilter" ~got:from_yf
              ~single:yf_single)
    pubs;
  check Alcotest.int (name ^ ": engines agree with direct evaluation") 0 !mismatches;
  List.length pubs * List.length xpes

let psd = Lazy.force Xroute_dtd.Dtd_samples.psd
let nitf = Lazy.force Xroute_dtd.Dtd_samples.nitf

let rounds =
  [
    ("psd set A", psd, Xroute_workload.Workload.set_a_params psd, 60, 11, 8, 12);
    ("psd set B", psd, Xroute_workload.Workload.set_b_params psd, 60, 21, 8, 22);
    ("nitf set A", nitf, Xroute_workload.Workload.set_a_params nitf, 50, 31, 6, 32);
    ("nitf set B", nitf, Xroute_workload.Workload.set_b_params nitf, 50, 41, 6, 42);
  ]

let test_sweep () =
  let pairs =
    List.fold_left
      (fun acc (name, dtd, params, xpe_count, xpe_seed, doc_count, doc_seed) ->
        acc + run_round ~name ~dtd ~params ~xpe_count ~xpe_seed ~doc_count ~doc_seed ())
      0 rounds
  in
  Printf.printf "differential sweep: %d (publication, xpe) pairs compared\n%!" pairs;
  check Alcotest.bool "at least 1000 seeded pairs" true (pairs >= 1000)

(* The flat (covering-free) PRT must agree too: covering-based pruning
   may not change the matched set. *)
let test_flat_prt_agrees () =
  let params = Xroute_workload.Workload.set_a_params psd in
  let xpes = Xroute_workload.Workload.xpes ~params ~count:40 ~seed:51 () in
  let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:5 ~seed:52 () in
  let pubs = Xroute_workload.Workload.publications_of_documents docs in
  let tree = build_prt ~engine:Rtable.Prt.Tree xpes in
  let flat = build_prt ~flat:true ~engine:Rtable.Prt.Tree xpes in
  let nfa = build_prt ~engine:Rtable.Prt.Nfa xpes in
  let flat_nfa = build_prt ~flat:true ~engine:Rtable.Prt.Nfa xpes in
  List.iter
    (fun pub ->
      let expect = prt_matches flat pub in
      check Alcotest.(list int) "flat and covering PRT agree" expect (prt_matches tree pub);
      check Alcotest.(list int) "NFA engine agrees" expect (prt_matches nfa pub);
      check Alcotest.(list int) "flat NFA engine agrees" expect (prt_matches flat_nfa pub))
    pubs

(* Engine switching under churn: insert, remove a random half, insert
   more — the NFA and tree engines must agree decision-for-decision,
   and the automaton must shrink back when subscriptions go. *)
let test_nfa_engine_after_churn () =
  let params = Xroute_workload.Workload.set_a_params psd in
  let xpes = Xroute_workload.Workload.xpes ~params ~count:60 ~seed:61 () in
  let docs = Xroute_workload.Workload.documents ~dtd:psd ~count:5 ~seed:62 () in
  let pubs = Xroute_workload.Workload.publications_of_documents docs in
  let nfa = Rtable.Prt.create ~engine:Rtable.Prt.Nfa () in
  let tree = Rtable.Prt.create ~engine:Rtable.Prt.Tree () in
  let insert prt i x =
    ignore (Rtable.Prt.insert prt { Message.origin = 1; seq = i } x (Rtable.Client 0))
  in
  let survivors = List.filteri (fun i _ -> i mod 2 = 0) xpes in
  let fresh = Rtable.Prt.create ~engine:Rtable.Prt.Nfa () in
  List.iteri (fun i x -> insert fresh (2 * i) x) survivors;
  List.iteri (fun i x -> insert nfa i x; insert tree i x) xpes;
  List.iteri
    (fun i _ ->
      if i mod 2 = 1 then begin
        ignore (Rtable.Prt.remove nfa { Message.origin = 1; seq = i });
        ignore (Rtable.Prt.remove tree { Message.origin = 1; seq = i })
      end)
    xpes;
  (* removal shrank the automaton to exactly the fresh-build size *)
  check Alcotest.int "automaton shrank to fresh-build size"
    (Rtable.Prt.nfa_states fresh) (Rtable.Prt.nfa_states nfa);
  check Alcotest.(list string) "NFA/ledger agreement" [] (Rtable.Prt.nfa_invariants nfa);
  List.iter
    (fun pub ->
      check
        Alcotest.(list int)
        "NFA and tree engines agree after churn" (prt_matches tree pub)
        (prt_matches nfa pub))
    pubs

let () =
  Alcotest.run "differential"
    [
      ( "engines",
        [
          Alcotest.test_case "seeded sweep" `Quick test_sweep;
          Alcotest.test_case "flat PRT agrees" `Quick test_flat_prt_agrees;
          Alcotest.test_case "NFA engine after churn" `Quick test_nfa_engine_after_churn;
        ] );
    ]
