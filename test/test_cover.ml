(* Tests for Cover: the paper's covering algorithms. The key property is
   soundness — [covers s1 s2] must imply P(s1) ⊇ P(s2) — checked both on
   hand-picked cases and randomly against the exact automata oracle.
   Incompleteness (missing some true covering) is allowed and expected
   in the places the paper calls out. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool

let xp = Xpe_parser.parse

let covers a b = Cover.covers (xp a) (xp b)

(* ---------------- AbsSimCov ---------------- *)

let test_abs_sim_basic () =
  check cb "equal" true (covers "/a/b" "/a/b");
  check cb "shorter covers" true (covers "/a" "/a/b");
  check cb "longer never" false (covers "/a/b" "/a");
  check cb "wildcard covers name" true (covers "/*/b" "/a/b");
  check cb "name not covers wildcard" false (covers "/a/b" "/*/b");
  check cb "diverging" false (covers "/a/b" "/a/c")

let test_abs_sim_wildcards () =
  check cb "all stars" true (covers "/*/*" "/a/b/c");
  check cb "star prefix" true (covers "/*" "/a");
  check cb "fig4 example" true (covers "/a/b" "/a/b/a")

(* ---------------- RelSimCov ---------------- *)

let test_rel_sim () =
  check cb "relative covers absolute" true (covers "a" "/a");
  check cb "relative inside" true (covers "b/c" "/a/b/c");
  check cb "relative covers relative" true (covers "b" "a/b");
  check cb "must fit" false (covers "b/c/d" "/a/b/c");
  check cb "overhang not allowed" false (covers "b/*" "/a/b");
  check cb "paper: absolute never covers relative" false (covers "/a" "a")

(* ---------------- DesCov ---------------- *)

let test_des_cov_paper_examples () =
  (* Sec. 4.2: s1 = /*/a//*/c covers s2 = /a/a/*//c/e/c/d. *)
  check cb "paper example 1" true (covers "/*/a//*/c" "/a/a/*//c/e/c/d");
  (* Sec. 4.2: s1 = /*/a//*/c does not cover s2 = /a/a/*//c/b/d. *)
  check cb "paper example 2" false (covers "/*/a//*/c" "/a/a/*//c/b/d");
  (* Sec. 4.2 special case: s1 = /a/*//*/d covers s2 = /a//b/c/d. *)
  check cb "paper wildcard overhang" true (covers "/a/*//*/d" "/a//b/c/d")

let test_des_cov_basic () =
  check cb "// covers /" true (covers "/a//c" "/a/b/c");
  check cb "// covers self" true (covers "/a//c" "/a//c");
  check cb "// not covers shorter" false (covers "/a//c" "/a");
  check cb "/ not covers //" false (covers "/a/b/c" "/a//c");
  check cb "// chain" true (covers "//c" "/a/b/c");
  check cb "// chain relative" true (covers "//b" "a/b")

let test_des_cov_segments () =
  check cb "two segments" true (covers "/a//c/d" "/a/b/c/d");
  check cb "segment gap" false (covers "/a//c/e" "/a/b/c/d/e");
  check cb "suffix anywhere" true (covers "//d" "/a//b/c/d")

let test_des_cov_length_guard () =
  check cb "longer s1 never covers" false (covers "/a//b//c//d" "/a/b/c")

(* ---------------- Predicates ---------------- *)

let test_predicate_covering () =
  check cb "pred-free covers pred" true (covers "/a/b" "/a/b[@x='1']");
  check cb "pred not covers pred-free" false (covers "/a/b[@x='1']" "/a/b");
  check cb "same pred" true (covers "/a/b[@x='1']" "/a/b[@x='1']");
  check cb "different value" false (covers "/a/b[@x='1']" "/a/b[@x='2']");
  check cb "subset of preds" true (covers "/a/b[@x='1']" "/a/b[@x='1'][@y='2']");
  check cb "wildcard with pred" false (covers "/*[@x='1']" "/a")

(* ---------------- Exact engine ---------------- *)

let test_exact_engine () =
  let ce a b = Cover.covers ~engine:Cover.Exact (xp a) (xp b) in
  (* Exact engine finds relations the paper rules miss. *)
  check cb "absolute star covers relative" true (ce "/*" "d/a");
  check cb "paper misses it" false (covers "/*" "d/a");
  check cb "still rejects wrong" false (ce "/a/b" "/a/c")

(* ---------------- Adv covering ---------------- *)

let ad = Adv.parse

let test_adv_covering () =
  check cb "same" true (Cover.adv_covers (ad "/a/b") (ad "/a/b"));
  check cb "wildcard" true (Cover.adv_covers (ad "/a/*") (ad "/a/b"));
  check cb "length differs" false (Cover.adv_covers (ad "/a") (ad "/a/b"));
  check cb "prefix semantics do not apply" false (Cover.adv_covers (ad "/a/b") (ad "/a/b/c"));
  check cb "recursive covers unrolled" true (Cover.adv_covers (ad "/a(/b)+") (ad "/a/b/b"));
  check cb "unrolled not covers recursive" false (Cover.adv_covers (ad "/a/b") (ad "/a(/b)+"))

(* ---------------- Random soundness vs oracle ---------------- *)

let random_xpe prng =
  let alphabet = [| "a"; "b"; "c" |] in
  let len = 1 + Xroute_support.Prng.int prng 4 in
  let relative = Xroute_support.Prng.bernoulli prng 0.2 in
  let steps =
    List.init len (fun i ->
        let test =
          if Xroute_support.Prng.bernoulli prng 0.35 then Xpe.Star
          else Xpe.Name (Xroute_support.Symbol.intern (Xroute_support.Prng.choose prng alphabet))
        in
        let axis =
          if i = 0 && relative then Xpe.Child
          else if Xroute_support.Prng.bernoulli prng 0.3 then Xpe.Desc
          else Xpe.Child
        in
        Xpe.step axis test)
  in
  Xpe.make ~relative steps

let test_paper_covering_sound_random () =
  let prng = Xroute_support.Prng.create 90210 in
  let false_positives = ref [] in
  let hits = ref 0 in
  for _ = 1 to 4000 do
    let s1 = random_xpe prng and s2 = random_xpe prng in
    if Cover.covers s1 s2 then begin
      incr hits;
      if not (Xroute_automata.Lang.xpe_contains s1 s2) then
        false_positives := (Xpe.to_string s1, Xpe.to_string s2) :: !false_positives
    end
  done;
  (match !false_positives with
  | [] -> ()
  | (a, b) :: _ ->
    Alcotest.failf "unsound covering: %s claimed to cover %s (%d unsound of %d claims)" a b
      (List.length !false_positives) !hits);
  check cb "claims exist" true (!hits > 50)

(* The exact engine must agree with the oracle in both directions. *)
let test_exact_covering_complete_random () =
  let prng = Xroute_support.Prng.create 1833 in
  for _ = 1 to 1500 do
    let s1 = random_xpe prng and s2 = random_xpe prng in
    let exact = Cover.covers ~engine:Cover.Exact s1 s2 in
    let oracle = Xroute_automata.Lang.xpe_contains s1 s2 in
    if exact <> oracle then
      Alcotest.failf "exact engine differs from oracle: %s vs %s (%b/%b)" (Xpe.to_string s1)
        (Xpe.to_string s2) exact oracle
  done

(* Transitivity spot-check: the data structure relies on it. *)
let test_covering_transitive_random () =
  let prng = Xroute_support.Prng.create 5150 in
  for _ = 1 to 2000 do
    let a = random_xpe prng and b = random_xpe prng and c = random_xpe prng in
    if
      Cover.covers ~engine:Cover.Exact a b
      && Cover.covers ~engine:Cover.Exact b c
      && not (Cover.covers ~engine:Cover.Exact a c)
    then
      Alcotest.failf "containment not transitive: %s %s %s" (Xpe.to_string a) (Xpe.to_string b)
        (Xpe.to_string c)
  done

(* Pinned Paper-vs-Exact disagreement corpus, harvested with
   `xroute_check --soundness --witness-incomplete`. Each pair is a true
   containment (the exact engine and the automata oracle agree) that the
   paper's syntactic rules miss — incompleteness the paper accepts, and
   exactly the gap the soundness audit quantifies. Pinning them guards
   two regressions at once: the paper rules must never start *claiming*
   unsoundly, and the exact engine must keep deciding these pairs. *)
let disagreement_corpus =
  [
    ("/*", "a/c");
    ("/*", "c/c/c/*");
    ("/*", "//d//*");
    ("/*", "b/b/d//a");
    ("/*", "a/d/*//*");
    ("/*//c", "a/c/d");
    ("/*//*", "*/c/c");
    ("/*/*", "//c/*/c/*/d");
    ("/*//*/*", "//a/d/c");
    ("/*/*//d", "//c/a/d/b/d");
    ("//*/b/b", "*/*//b/b//b");
    ("/*/*/*//*", "//d//a//d//c");
  ]

let test_paper_exact_disagreements () =
  List.iter
    (fun (s1, s2) ->
      let a = xp s1 and b = xp s2 in
      check cb
        (Printf.sprintf "exact: %s covers %s" s1 s2)
        true (Cover.covers_exact a b);
      check cb
        (Printf.sprintf "oracle: L(%s) contains L(%s)" s1 s2)
        true
        (Xroute_automata.Lang.xpe_contains a b);
      check cb
        (Printf.sprintf "paper stays incomplete on %s vs %s" s1 s2)
        false (Cover.covers_paper a b))
    disagreement_corpus

let () =
  Alcotest.run "cover"
    [
      ( "abs_sim",
        [
          Alcotest.test_case "basic" `Quick test_abs_sim_basic;
          Alcotest.test_case "wildcards" `Quick test_abs_sim_wildcards;
        ] );
      ("rel_sim", [ Alcotest.test_case "basic" `Quick test_rel_sim ]);
      ( "des",
        [
          Alcotest.test_case "paper examples" `Quick test_des_cov_paper_examples;
          Alcotest.test_case "basic" `Quick test_des_cov_basic;
          Alcotest.test_case "segments" `Quick test_des_cov_segments;
          Alcotest.test_case "length guard" `Quick test_des_cov_length_guard;
        ] );
      ("predicates", [ Alcotest.test_case "covering" `Quick test_predicate_covering ]);
      ("exact engine", [ Alcotest.test_case "extra relations" `Quick test_exact_engine ]);
      ( "disagreements",
        [ Alcotest.test_case "pinned paper-vs-exact corpus" `Quick test_paper_exact_disagreements ] );
      ("advertisements", [ Alcotest.test_case "covering" `Quick test_adv_covering ]);
      ( "random",
        [
          Alcotest.test_case "paper covering is sound" `Slow test_paper_covering_sound_random;
          Alcotest.test_case "exact = oracle" `Slow test_exact_covering_complete_random;
          Alcotest.test_case "transitivity" `Slow test_covering_transitive_random;
        ] );
    ]
