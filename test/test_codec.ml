(* Tests for the wire codec: hand-written cases, error handling, and a
   QCheck round-trip property. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string

let sid o s = { Message.origin = o; seq = s }

let roundtrip msg =
  match Codec.decode (Codec.encode msg) with
  | Ok msg' -> Message.to_string msg' = Message.to_string msg
  | Error _ -> false

let test_advertise () =
  let msg = Message.Advertise { id = sid 3 7; adv = Adv.parse "/a/b(/c)+/d" } in
  check cb "roundtrip" true (roundtrip msg);
  check cs "wire form" "1|A|3.7|/a/b(/c)+/d" (Codec.encode msg)

let test_subscribe () =
  let msg = Message.Subscribe { id = sid 1 2; xpe = Xpe_parser.parse "/a/*//b[@k='v']" } in
  check cb "roundtrip" true (roundtrip msg)

let test_unsubscribe_unadvertise () =
  check cb "unsub" true (roundtrip (Message.Unsubscribe { id = sid 9 1 }));
  check cb "unadv" true (roundtrip (Message.Unadvertise { id = sid 9 2 }))

let test_publish () =
  let pub =
    (Xroute_xml.Xml_paths.make ~doc_id:5 ~path_id:2
       ~steps:[| "a"; "b"; "c" |]
       ~attrs:[| [ ("k", "v") ]; []; [ ("x", "1"); ("y", "2") ] |]
       ~doc_size:123 ~path_count:4)
  in
  let msg = Message.Publish { pub; trail = [ sid 1 1; sid 2 2 ]; ctx = None } in
  match Codec.decode (Codec.encode msg) with
  | Ok (Message.Publish { pub = p; trail; _ }) ->
    check cb "steps" true (p.steps = [| "a"; "b"; "c" |]);
    check cb "attrs" true (p.attrs.(2) = [ ("x", "1"); ("y", "2") ]);
    check cb "meta" true (p.doc_id = 5 && p.path_id = 2 && p.doc_size = 123 && p.path_count = 4);
    check cb "trail" true (List.length trail = 2)
  | _ -> Alcotest.fail "publish did not roundtrip"

let test_escaping () =
  let pub =
    (Xroute_xml.Xml_paths.make ~doc_id:1 ~path_id:0
       ~steps:[| "we|ird"; "na,me"; "e=q;x%" |]
       ~attrs:[| []; [ ("k|1", "v,2") ]; [] |]
       ~doc_size:9 ~path_count:1)
  in
  let msg = Message.Publish { pub; trail = []; ctx = None } in
  match Codec.decode (Codec.encode msg) with
  | Ok (Message.Publish { pub = p; _ }) ->
    check cb "weird names survive" true (p.steps = pub.steps);
    check cb "weird attrs survive" true (p.attrs.(1) = [ ("k|1", "v,2") ])
  | _ -> Alcotest.fail "escaped publish did not roundtrip"

let test_decode_errors () =
  List.iter
    (fun line ->
      match Codec.decode line with
      | Ok _ -> Alcotest.failf "expected decode error for %S" line
      | Error _ -> ())
    [
      "";
      "junk";
      "2|S|1.1|/a";            (* wrong version *)
      "1|X|1.1|/a";            (* unknown kind *)
      "1|S|11|/a";             (* malformed id *)
      "1|S|1.1|not an xpe[";   (* malformed xpe *)
      "1|A|1.1|(/a";           (* malformed adv *)
      "1|P|1.2.3|/a";          (* malformed pub header *)
      "1|P|1.2.3.4||a,b|x";    (* attr block mismatch: 1 pos for 2 steps *)
      "1|S|1.1|%G1";           (* malformed escape *)
    ]

(* QCheck round-trip over random messages. *)
let gen_name = QCheck.Gen.oneofl [ "a"; "b"; "w|x"; "y,z"; "p%q" ]

let gen_msg =
  QCheck.Gen.(
    let* kind = int_range 0 4 in
    let* o = int_range 0 1000 and* q = int_range 0 1000 in
    let id = sid o q in
    match kind with
    | 0 ->
      let* len = int_range 1 4 in
      let* names = list_repeat len (oneofl [ "a"; "b"; "c" ]) in
      return (Message.Advertise { id; adv = Adv.of_names names })
    | 1 -> return (Message.Unadvertise { id })
    | 2 ->
      let* len = int_range 1 4 in
      let* names = list_repeat len (oneofl [ "a"; "b"; "*" ]) in
      return (Message.Subscribe { id; xpe = Xpe.absolute_of_names names })
    | 3 -> return (Message.Unsubscribe { id })
    | _ ->
      let* len = int_range 1 5 in
      let* steps = list_repeat len gen_name in
      let* with_attr = bool in
      let steps = Array.of_list steps in
      let attrs =
        Array.mapi (fun i _ -> if with_attr && i = 0 then [ ("k|ey", "v,al") ] else []) steps
      in
      let* doc_id = int_range 0 100 and* path_id = int_range 0 100 in
      let* with_ctx = bool in
      let* parent_span = int_range 0 1000 in
      let ctx =
        if with_ctx then Some { Message.trace = doc_id; parent_span } else None
      in
      return
        (Message.Publish
           {
             pub =
               (Xroute_xml.Xml_paths.make ~doc_id ~path_id ~steps ~attrs
                  ~doc_size:10 ~path_count:2);
             trail = [ id ];
             ctx;
           }))

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip" ~count:1000
    (QCheck.make ~print:Message.to_string gen_msg)
    roundtrip

let () =
  Alcotest.run "codec"
    [
      ( "cases",
        [
          Alcotest.test_case "advertise" `Quick test_advertise;
          Alcotest.test_case "subscribe" `Quick test_subscribe;
          Alcotest.test_case "unsub/unadv" `Quick test_unsubscribe_unadvertise;
          Alcotest.test_case "publish" `Quick test_publish;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
