(* Fault-injection convergence suite.

   Property: after every fault of a seeded plan (broker crash/restart,
   link outage/extra-delay/duplication, client disconnect) has healed
   and the simulation quiesced, the network must be indistinguishable
   from a fresh fault-free network holding the surviving subscriptions:
   same client deliveries AND the same per-publication routing decision
   at every broker. Plus: recovery must leave no dangling state — every
   SRT/PRT entry anywhere in the network belongs to a live client
   ledger (nothing survives from a dead broker's past or a revoked
   subscription).

   Faults interleave with a churn script (subscribe/unsubscribe ops
   scheduled inside the sim across the plan's horizon), so recovery is
   exercised against a moving subscription population, not a frozen
   one. Constant link latency keeps message order deterministic. *)

open Xroute_overlay
open Xroute_core
module Plan = Xroute_fault.Plan

let check = Alcotest.check
let ci = Alcotest.int

let xp = Xroute_xpath.Xpe_parser.parse

type op =
  | Sub of int * Xroute_xpath.Xpe.t * int (* client index, xpe, tag *)
  | Unsub of int * int (* client index, tag *)

(* Deterministic op script over [nclients] subscribers (as in
   test_churn.ml). *)
let gen_script ~seed ~nclients ~nops params =
  let prng = Xroute_support.Prng.create seed in
  let live = Array.make nclients [] in
  let tag = ref 0 in
  let ops = ref [] in
  for _ = 1 to nops do
    let c = Xroute_support.Prng.int prng nclients in
    if live.(c) <> [] && Xroute_support.Prng.bernoulli prng 0.4 then begin
      let k = Xroute_support.Prng.int prng (List.length live.(c)) in
      let victim = List.nth live.(c) k in
      live.(c) <- List.filteri (fun i _ -> i <> k) live.(c);
      ops := Unsub (c, victim) :: !ops
    end
    else begin
      let xpe = Xroute_workload.Xpath_gen.generate_one params prng in
      live.(c) <- live.(c) @ [ !tag ];
      ops := Sub (c, xpe, !tag) :: !ops;
      incr tag
    end
  done;
  List.rev !ops

let levels = 3 (* the paper's 7-broker complete binary tree *)

let build_net ~seed ~strategy_name =
  let topo = Topology.binary_tree ~levels in
  let strategy = Option.get (Broker.strategy_of_name strategy_name) in
  let config =
    { Net.default_config with Net.strategy; seed; latency = Latency.constant 2.0 }
  in
  let net = Net.create ~config topo in
  let publisher = Net.add_client net ~broker:0 in
  let subscribers =
    Array.of_list
      (List.map (fun b -> Net.add_client net ~broker:b) (Topology.binary_tree_leaves ~levels))
  in
  (net, publisher, subscribers)

(* Publish [docs], then snapshot (per-subscriber sorted deliveries,
   per-broker per-path-publication routing decisions). Decisions are
   read by replaying each path publication through [Broker.handle] from
   a phantom endpoint and recording the emitted next hops — ids are
   deliberately excluded (the fresh network assigns different ones);
   what must converge is where each publication goes. *)
let snapshot net publisher subscribers docs =
  List.iteri (fun i doc -> ignore (Net.publish_doc net publisher ~doc_id:i doc)) docs;
  Net.run net;
  let deliveries =
    Array.to_list subscribers
    |> List.map (fun (c : Net.client) ->
           List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) c.Net.delivered []))
  in
  let pubs =
    List.concat (List.mapi (fun i doc -> Xroute_xml.Xml_paths.decompose ~doc_id:i doc) docs)
  in
  let phantom = Rtable.Client (-1) in
  let decisions =
    Array.to_list (Net.brokers net)
    |> List.concat_map (fun b ->
           List.concat
             (List.mapi
                (fun j (pub : Xroute_xml.Xml_paths.publication) ->
                  Broker.handle b ~from:phantom (Message.Publish { pub; trail = []; ctx = None })
                  |> List.map (fun (ep, _) ->
                         Format.asprintf "b%d p%d -> %a" (Broker.id b) j Rtable.pp_endpoint ep)
                  |> List.sort compare)
                pubs))
  in
  (deliveries, decisions)

(* Run the op script interleaved with the fault plan, all inside one
   simulation run: op [i] fires at the (i+1)-th fraction of the plan
   horizon, so operations land before, during and after fault windows. *)
let run_faulted ~seed ~strategy_name ~advs ~spec ops docs =
  let net, publisher, subscribers = build_net ~seed ~strategy_name in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  let cids = List.map (fun (c : Net.client) -> c.Net.cid) (publisher :: Array.to_list subscribers) in
  let topo = Net.topology net in
  let plan =
    Plan.generate ~seed:(seed + 7000) ~brokers:(Topology.broker_count topo)
      ~edges:(Topology.edges topo) ~clients:cids ~spec ()
  in
  Net.install_plan net plan;
  let nops = List.length ops in
  let ids = Hashtbl.create 64 in
  List.iteri
    (fun i op ->
      let at = plan.Plan.horizon *. float_of_int (i + 1) /. float_of_int (nops + 1) in
      Sim.schedule (Net.sim net) ~delay:at (fun () ->
          match op with
          | Sub (c, xpe, tag) -> Hashtbl.replace ids tag (Net.subscribe net subscribers.(c) xpe)
          | Unsub (c, tag) -> Net.unsubscribe net subscribers.(c) (Hashtbl.find ids tag)))
    ops;
  Net.run net;
  (net, publisher, subscribers, snapshot net publisher subscribers docs)

(* Fresh fault-free network holding only the surviving subscriptions
   (read from the faulted run's client ledgers, in registration
   order). *)
let run_fresh ~seed ~strategy_name ~advs ~ledgers docs =
  let net, publisher, subscribers = build_net ~seed ~strategy_name in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  Array.iteri
    (fun i xpes -> List.iter (fun xpe -> ignore (Net.subscribe net subscribers.(i) xpe)) xpes)
    ledgers;
  Net.run net;
  snapshot net publisher subscribers docs

(* Crash recovery must rebuild state, not leak it. The inline
   dangling-entry scan that used to live here became the reusable
   routing-state audit (Xroute_check.Check), which also checks table
   integrity, last-hop validity, and covered-set consistency. *)
let check_clean_audit ~seed ~strategy_name net =
  match Xroute_check.Check.audit_net net with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d %s: %s (%s)" seed strategy_name
      f.Xroute_check.Finding.subject f.Xroute_check.Finding.witness

let strategies = [ "with-Adv-with-Cov"; "no-Adv-with-Cov"; "with-Adv-no-Cov" ]

let run_round ~seed ~strategy_name =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let advs = Xroute_dtd.Dtd_paths.advertisements (Xroute_dtd.Dtd_graph.build dtd) in
  let params = Xroute_workload.Workload.set_a_params dtd in
  let ops = gen_script ~seed ~nclients:4 ~nops:18 params in
  let docs = Xroute_workload.Workload.documents ~dtd ~count:10 ~seed:(seed + 1000) () in
  let spec = Plan.default_spec in
  let net, _publisher, subscribers, faulted =
    run_faulted ~seed ~strategy_name ~advs ~spec ops docs
  in
  (* the plan must actually have fired in full *)
  let st = Net.fault_stats net in
  check ci (Printf.sprintf "seed %d %s: crashes" seed strategy_name) spec.Plan.crashes
    st.Net.crashes;
  check ci (Printf.sprintf "seed %d %s: restarts" seed strategy_name) spec.Plan.crashes
    st.Net.restarts;
  check ci
    (Printf.sprintf "seed %d %s: recovery episodes measured" seed strategy_name)
    st.Net.restarts
    (List.length st.Net.recovery_times);
  check ci (Printf.sprintf "seed %d %s: client drops" seed strategy_name)
    spec.Plan.client_drops st.Net.client_disconnects;
  let ledgers =
    Array.map (fun (c : Net.client) -> List.rev_map snd c.Net.sub_ledger) subscribers
  in
  let fresh = run_fresh ~seed ~strategy_name ~advs ~ledgers docs in
  let f_del, f_dec = faulted and g_del, g_dec = fresh in
  if f_del <> g_del then
    Alcotest.failf "seed %d %s: post-recovery deliveries differ from fresh network" seed
      strategy_name;
  if f_dec <> g_dec then
    Alcotest.failf "seed %d %s: post-recovery routing decisions differ from fresh network"
      seed strategy_name;
  check_clean_audit ~seed ~strategy_name net

let test_convergence_sweep () =
  List.iter
    (fun strategy_name ->
      for seed = 1 to 4 do
        run_round ~seed ~strategy_name
      done)
    strategies

(* Deterministic core: crash the relay broker of a line, restart it,
   and the surviving subscription must keep delivering — through
   routing state that was rebuilt by the neighbors, not resurrected. *)
let test_crash_recovery_line () =
  let strategy = Option.get (Broker.strategy_of_name "with-Adv-with-Cov") in
  let config =
    { Net.default_config with Net.strategy; latency = Latency.constant 2.0 }
  in
  let net = Net.create ~config (Topology.line 3) in
  let publisher = Net.add_client net ~broker:0 in
  let s = Net.add_client net ~broker:2 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/x/y"));
  Net.run net;
  ignore (Net.subscribe net s (xp "/x"));
  Net.run net;
  let prt_before = Broker.prt_size (Net.broker net 1) in
  check Alcotest.bool "relay broker holds the subscription" true (prt_before > 0);
  Net.crash_broker net 1;
  check Alcotest.bool "broker 1 down" false (Net.broker_alive net 1);
  Net.restart_broker net 1;
  Net.run net;
  check Alcotest.bool "broker 1 back" true (Net.broker_alive net 1);
  check ci "relay PRT rebuilt" prt_before (Broker.prt_size (Net.broker net 1));
  ignore (Net.publish_doc net publisher ~doc_id:1 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  Net.run net;
  check ci "delivered after recovery" 1 (Hashtbl.length s.Net.delivered);
  let st = Net.fault_stats net in
  check ci "one crash" 1 st.Net.crashes;
  check ci "one recovery episode" 1 (List.length st.Net.recovery_times)

(* A subscription revoked while its client was disconnected must be
   reconciled away on reconnect (the broker never saw the
   unsubscribe). *)
let test_reconcile_after_reconnect () =
  let strategy = Option.get (Broker.strategy_of_name "with-Adv-with-Cov") in
  let config =
    { Net.default_config with Net.strategy; latency = Latency.constant 2.0 }
  in
  let net = Net.create ~config (Topology.line 2) in
  let publisher = Net.add_client net ~broker:0 in
  let s = Net.add_client net ~broker:1 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/x/y"));
  Net.run net;
  let sub = Net.subscribe net s (xp "/x") in
  Net.run net;
  Net.disconnect_client net s;
  Net.unsubscribe net s sub (* lost: the client is offline *);
  Net.run net;
  check Alcotest.bool "broker still holds the revoked sub" true
    (Broker.prt_size (Net.broker net 1) > 0);
  Net.reconnect_client net s;
  Net.run net;
  check ci "reconnect reconciled the revoked sub away" 0 (Broker.prt_size (Net.broker net 1));
  ignore (Net.publish_doc net publisher ~doc_id:9 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  Net.run net;
  check ci "no delivery after revocation" 0 (Hashtbl.length s.Net.delivered)

(* The generator is a pure function of its seed. *)
let test_plan_determinism () =
  let gen seed =
    Plan.generate ~seed ~brokers:7
      ~edges:(Topology.edges (Topology.binary_tree ~levels:3))
      ~clients:[ 0; 1; 2 ] ()
  in
  check Alcotest.bool "same seed, same plan" true (gen 11 = gen 11);
  check Alcotest.bool "different seeds differ" true (gen 11 <> gen 12);
  let plan = gen 11 in
  let spec = Plan.default_spec in
  check ci "event count" (spec.crashes + spec.link_downs + spec.link_delays + spec.link_dups + spec.client_drops)
    (List.length plan.Plan.events)

let test_spec_parser () =
  (match Plan.spec_of_string "crashes=3,link-downs=0,mean-down=120" with
  | Ok spec ->
    check ci "crashes" 3 spec.Plan.crashes;
    check ci "link-downs" 0 spec.Plan.link_downs;
    check (Alcotest.float 0.001) "mean-down" 120.0 spec.Plan.mean_down_ms;
    check ci "defaults kept" Plan.default_spec.Plan.link_dups spec.Plan.link_dups
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  (match Plan.spec_of_string "bogus=1" with
  | Ok _ -> Alcotest.fail "bogus key accepted"
  | Error _ -> ())

let () =
  Alcotest.run "fault"
    [
      ( "recovery",
        [
          Alcotest.test_case "crash recovery on a line" `Quick test_crash_recovery_line;
          Alcotest.test_case "reconnect reconciles revoked subs" `Quick
            test_reconcile_after_reconnect;
          Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
          Alcotest.test_case "spec parser" `Quick test_spec_parser;
          Alcotest.test_case "convergence sweep (12 plans x 3 strategies)" `Quick
            test_convergence_sweep;
        ] );
    ]
