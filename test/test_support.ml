(* Tests for the support library: PRNG, heap, Zipf, stats. *)

open Xroute_support

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 1234 and b = Prng.create 1234 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  check cb "different seeds diverge" true (!same < 4)

let test_prng_int_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    check cb "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_bad_bound () =
  let p = Prng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_prng_int_in_range () =
  let p = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.int_in_range p ~lo:5 ~hi:9 in
    check cb "in closed range" true (v >= 5 && v <= 9)
  done

let test_prng_int_covers_values () =
  let p = Prng.create 3 in
  let seen = Array.make 10 false in
  for _ = 1 to 5000 do
    seen.(Prng.int p 10) <- true
  done;
  check cb "all residues reached" true (Array.for_all Fun.id seen)

let test_prng_float_bounds () =
  let p = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.unit_float p in
    check cb "unit interval" true (v >= 0.0 && v < 1.0)
  done

let test_prng_float_mean () =
  let p = Prng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.unit_float p
  done;
  let mean = !sum /. float_of_int n in
  check cb "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_prng_bernoulli_extremes () =
  let p = Prng.create 17 in
  for _ = 1 to 100 do
    check cb "p=0 never" false (Prng.bernoulli p 0.0)
  done;
  for _ = 1 to 100 do
    check cb "p=1 always" true (Prng.bernoulli p 1.0)
  done

let test_prng_split_independent () =
  let p = Prng.create 21 in
  let q = Prng.split p in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 p = Prng.next_int64 q then incr same
  done;
  check cb "split streams diverge" true (!same < 4)

let test_prng_copy () =
  let p = Prng.create 23 in
  ignore (Prng.next_int64 p);
  let q = Prng.copy p in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 p) (Prng.next_int64 q)

let test_prng_shuffle_permutation () =
  let p = Prng.create 29 in
  let arr = Array.init 50 Fun.id in
  let shuffled = Prng.shuffle p arr in
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  check (Alcotest.array ci) "same multiset" arr sorted;
  check cb "original untouched" true (arr = Array.init 50 Fun.id)

let test_prng_choose () =
  let p = Prng.create 31 in
  for _ = 1 to 100 do
    let v = Prng.choose p [| 1; 2; 3 |] in
    check cb "member" true (List.mem v [ 1; 2; 3 ])
  done

let test_prng_exponential_positive () =
  let p = Prng.create 37 in
  for _ = 1 to 1000 do
    check cb "non-negative" true (Prng.exponential p ~mean:2.0 >= 0.0)
  done

let test_prng_pareto_min () =
  let p = Prng.create 41 in
  for _ = 1 to 1000 do
    check cb "at least xm" true (Prng.pareto p ~alpha:1.5 ~xm:0.4 >= 0.4)
  done

(* ---------------- Heap ---------------- *)

let int_heap () = Heap.create ~cmp:compare ~dummy:0 ()

let test_heap_empty () =
  let h = int_heap () in
  check cb "is_empty" true (Heap.is_empty h);
  check ci "length" 0 (Heap.length h);
  check (Alcotest.option ci) "peek" None (Heap.peek_min h);
  check (Alcotest.option ci) "pop" None (Heap.pop_min h)

let test_heap_sorts () =
  let h = int_heap () in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ] in
  List.iter (Heap.push h) input;
  let rec drain acc =
    match Heap.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check (Alcotest.list ci) "ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain [])

let test_heap_duplicates () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 2; 2; 1; 1; 3 ];
  check (Alcotest.list ci) "dups kept" [ 1; 1; 2; 2; 3 ] (Heap.to_list h);
  check ci "length" 5 (Heap.length h)

let test_heap_growth () =
  let h = Heap.create ~capacity:2 ~cmp:compare ~dummy:0 () in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  check ci "all stored" 1000 (Heap.length h);
  check (Alcotest.option ci) "min" (Some 1) (Heap.peek_min h)

let test_heap_to_list_preserves () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 2; 6 ];
  ignore (Heap.to_list h);
  check ci "untouched" 3 (Heap.length h)

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  check cb "cleared" true (Heap.is_empty h)

let test_heap_interleaved () =
  let h = int_heap () in
  Heap.push h 5;
  Heap.push h 1;
  check (Alcotest.option ci) "pop 1" (Some 1) (Heap.pop_min h);
  Heap.push h 3;
  check (Alcotest.option ci) "pop 3" (Some 3) (Heap.pop_min h);
  check (Alcotest.option ci) "pop 5" (Some 5) (Heap.pop_min h)

let test_heap_random_model () =
  let p = Prng.create 99 in
  let h = int_heap () in
  let model = ref [] in
  for _ = 1 to 2000 do
    if Prng.bool p || !model = [] then begin
      let v = Prng.int p 1000 in
      Heap.push h v;
      model := v :: !model
    end
    else begin
      let expected = List.fold_left min max_int !model in
      (match Heap.pop_min h with
      | Some got -> check ci "model min" expected got
      | None -> Alcotest.fail "heap empty but model is not");
      let rec remove_one = function
        | [] -> []
        | x :: rest -> if x = expected then rest else x :: remove_one rest
      in
      model := remove_one !model
    end
  done

(* ---------------- Zipf ---------------- *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~exponent:0.0 in
  for i = 0 to 3 do
    check cb "uniform mass" true (abs_float (Zipf.probability z i -. 0.25) < 1e-9)
  done

let test_zipf_mass_sums_to_one () =
  let z = Zipf.create ~n:10 ~exponent:1.2 in
  let total = ref 0.0 in
  for i = 0 to 9 do
    total := !total +. Zipf.probability z i
  done;
  check cb "sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_monotone () =
  let z = Zipf.create ~n:8 ~exponent:1.0 in
  for i = 0 to 6 do
    check cb "non-increasing" true (Zipf.probability z i >= Zipf.probability z (i + 1) -. 1e-12)
  done

let test_zipf_sample_range () =
  let z = Zipf.create ~n:5 ~exponent:1.5 in
  let p = Prng.create 55 in
  for _ = 1 to 5000 do
    let v = Zipf.sample z p in
    check cb "in support" true (v >= 0 && v < 5)
  done

let test_zipf_sample_skew () =
  let z = Zipf.create ~n:10 ~exponent:2.0 in
  let p = Prng.create 57 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z p in
    counts.(v) <- counts.(v) + 1
  done;
  check cb "rank 0 dominates" true (counts.(0) > counts.(9) * 4)

let test_zipf_single () =
  let z = Zipf.create ~n:1 ~exponent:1.0 in
  let p = Prng.create 59 in
  check ci "only rank" 0 (Zipf.sample z p);
  check cf "prob 1" 1.0 (Zipf.probability z 0)

(* ---------------- Stats ---------------- *)

let test_stats_mean () =
  check cf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check cf "empty" 0.0 (Stats.mean [||])

let test_stats_stddev () =
  check cf "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  let sd = Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check cb "known value" true (abs_float (sd -. 2.13808993) < 1e-6)

let test_stats_percentile () =
  let data = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check cf "p50" 50.0 (Stats.percentile data 0.5);
  check cf "p99" 99.0 (Stats.percentile data 0.99);
  check cf "p100" 100.0 (Stats.percentile data 1.0)

let test_stats_summary () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  check ci "count" 3 s.Stats.count;
  check cf "min" 1.0 s.Stats.min;
  check cf "max" 3.0 s.Stats.max;
  check cf "mean" 2.0 s.Stats.mean

let test_stats_reduction () =
  check cf "90 percent" 90.0 (Stats.reduction ~before:100.0 ~after:10.0);
  check cf "zero before" 0.0 (Stats.reduction ~before:0.0 ~after:10.0)

(* ---------------- Equeue (simulator event heap) ---------------- *)

(* Pushed actions record a tag when fired, so pop order is observable. *)
let tagged fired tag () = fired := tag :: !fired

let eq_drain fired q =
  let rec go acc =
    let time = Equeue.min_time q in
    if Equeue.pop_with q (fun t act ->
           act ();
           match time with
           | Some t' when t' = t -> ()
           | _ -> Alcotest.fail "min_time disagrees with popped time")
    then
      match !fired with
      | tag :: _ -> go (tag :: acc)
      | [] -> Alcotest.fail "popped action did not fire"
    else List.rev acc
  in
  go []

let test_equeue_empty () =
  let q = Equeue.create () in
  check cb "is_empty" true (Equeue.is_empty q);
  check ci "length" 0 (Equeue.length q);
  check (Alcotest.option cf) "min_time" None (Equeue.min_time q);
  check cb "pop on empty" false (Equeue.pop_with q (fun _ _ -> Alcotest.fail "called"))

let test_equeue_orders_by_time () =
  let q = Equeue.create () in
  let fired = ref [] in
  List.iteri
    (fun i t -> Equeue.push q ~time:t (tagged fired i))
    [ 5.0; 1.0; 9.0; 3.0; 7.0; 0.5; 4.0 ];
  (* indices sorted by their times: 0.5 1 3 4 5 7 9 *)
  check (Alcotest.list ci) "time order" [ 5; 1; 3; 6; 0; 4; 2 ] (eq_drain fired q)

(* Equal timestamps pop in insertion order — the covering race in the
   overlay (an unsubscribe overtaking its subscribe on a FIFO link)
   depends on this. *)
let test_equeue_fifo_stability () =
  let q = Equeue.create ~capacity:4 () in
  let fired = ref [] in
  for i = 0 to 99 do
    Equeue.push q ~time:1.0 (tagged fired i)
  done;
  Equeue.push q ~time:0.5 (tagged fired 1000);
  check (Alcotest.list ci) "FIFO under ties"
    (1000 :: List.init 100 Fun.id)
    (eq_drain fired q);
  (* and the assigned sequence numbers are strictly increasing in
     to_sorted_list order for a fresh tie-heavy queue *)
  for i = 0 to 49 do
    Equeue.push q ~time:2.0 (tagged fired i)
  done;
  let seqs = List.map (fun (_, s, _) -> s) (Equeue.to_sorted_list q) in
  check cb "seqs strictly increasing" true
    (List.for_all2 (fun a b -> a < b) (List.filteri (fun i _ -> i < 49) seqs) (List.tl seqs))

let test_equeue_to_sorted_list_nondestructive () =
  let q = Equeue.create () in
  List.iter (fun t -> Equeue.push q ~time:t ignore) [ 3.0; 1.0; 2.0 ];
  let times = List.map (fun (t, _, _) -> t) (Equeue.to_sorted_list q) in
  check (Alcotest.list cf) "pop order" [ 1.0; 2.0; 3.0 ] times;
  check ci "queue untouched" 3 (Equeue.length q)

let test_equeue_clear_and_reuse () =
  let q = Equeue.create ~capacity:2 () in
  for i = 0 to 9 do
    Equeue.push q ~time:(float_of_int i) ignore
  done;
  Equeue.clear q;
  check cb "cleared" true (Equeue.is_empty q);
  let fired = ref [] in
  Equeue.push q ~time:2.0 (tagged fired 2);
  Equeue.push q ~time:1.0 (tagged fired 1);
  check (Alcotest.list ci) "reusable after clear" [ 1; 2 ] (eq_drain fired q)

(* Seeded random insert/pop interleavings against a sorted-list oracle.
   Times are drawn from a tiny set so timestamp ties are the common
   case, exercising the FIFO tie-break continuously. *)
let test_equeue_random_vs_oracle () =
  List.iter
    (fun seed ->
      let p = Prng.create seed in
      let q = Equeue.create ~capacity:1 () in
      let oracle = ref [] (* (time, push index), kept in pop order *) in
      let fired = ref [] in
      let pushes = ref 0 in
      (* stable insert: after all entries with time <= t *)
      let rec ins t tag = function
        | [] -> [ (t, tag) ]
        | (t0, g0) :: rest when t0 <= t -> (t0, g0) :: ins t tag rest
        | later -> (t, tag) :: later
      in
      for _ = 1 to 3000 do
        if Prng.bool p || !oracle = [] then begin
          let time = float_of_int (Prng.int p 8) in
          let tag = !pushes in
          incr pushes;
          Equeue.push q ~time (tagged fired tag);
          oracle := ins time tag !oracle
        end
        else begin
          let expect_t, expect_tag = List.hd !oracle in
          oracle := List.tl !oracle;
          let ok =
            Equeue.pop_with q (fun t act ->
                act ();
                if t <> expect_t then
                  Alcotest.failf "seed %d: popped time %g, oracle %g" seed t expect_t)
          in
          check cb "pop succeeded" true ok;
          match !fired with
          | tag :: _ ->
            if tag <> expect_tag then
              Alcotest.failf "seed %d: popped tag %d, oracle %d (FIFO violation)" seed tag
                expect_tag
          | [] -> Alcotest.fail "nothing fired"
        end
      done;
      check ci "length agrees with oracle" (List.length !oracle) (Equeue.length q))
    [ 7; 42; 1234 ]

(* ---------------- Pool (arena + free list) ---------------- *)

let test_arena_rows_and_growth () =
  (* chunk_rows=4 forces several chunk boundaries *)
  let a = Pool.Arena.create ~chunk_rows:4 () in
  for i = 0 to 25 do
    let idx = Pool.Arena.add a i (i * 10) (float_of_int i /. 2.0) in
    check ci "dense index" i idx
  done;
  check ci "length" 26 (Pool.Arena.length a);
  for i = 0 to 25 do
    check ci "get_a" i (Pool.Arena.get_a a i);
    check ci "get_b" (i * 10) (Pool.Arena.get_b a i);
    check cf "get_time" (float_of_int i /. 2.0) (Pool.Arena.get_time a i)
  done;
  let seen = ref [] in
  Pool.Arena.iter a (fun x _ _ -> seen := x :: !seen);
  check (Alcotest.list ci) "iter in insertion order" (List.init 26 Fun.id) (List.rev !seen);
  (match Pool.Arena.get_a a 26 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds row not rejected")

let test_arena_digest_incremental () =
  let a = Pool.Arena.create ~chunk_rows:8 () in
  let h = ref Pool.Arena.digest_empty in
  let rows = [ (1, 2, 0.5); (3, 4, 1.5); (5, 6, 2.5); (1, 2, 0.5) ] in
  List.iter
    (fun (x, y, t) ->
      ignore (Pool.Arena.add a x y t);
      h := Pool.Arena.digest_row !h x y t)
    rows;
  check Alcotest.int64 "incremental = whole-arena"
    (Pool.Arena.digest a)
    (Pool.Arena.digest_close !h (List.length rows));
  (* order sensitivity: swapping two rows must change the digest *)
  let b = Pool.Arena.create ~chunk_rows:8 () in
  List.iter
    (fun (x, y, t) -> ignore (Pool.Arena.add b x y t))
    [ (3, 4, 1.5); (1, 2, 0.5); (5, 6, 2.5); (1, 2, 0.5) ];
  check cb "order-sensitive" false (Pool.Arena.digest a = Pool.Arena.digest b);
  Pool.Arena.clear a;
  check ci "clear empties" 0 (Pool.Arena.length a);
  check Alcotest.int64 "empty digest" (Pool.Arena.digest_close Pool.Arena.digest_empty 0)
    (Pool.Arena.digest a)

let test_free_pool () =
  let pool = Pool.Free.create ~make:(fun () -> ref 0) ~reset:(fun r -> r := 0) () in
  let x = Pool.Free.acquire pool in
  x := 41;
  check ci "live" 1 (Pool.Free.live pool);
  check ci "created" 1 (Pool.Free.created pool);
  Pool.Free.release pool x;
  check ci "released" 0 (Pool.Free.live pool);
  let y = Pool.Free.acquire pool in
  check cb "recycled" true (x == y);
  check ci "reset ran" 0 !y;
  check ci "no fresh make" 1 (Pool.Free.created pool);
  let z = Pool.Free.acquire pool in
  check cb "fresh when empty" false (y == z);
  check ci "created grew" 2 (Pool.Free.created pool)

let () =
  Alcotest.run "support"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_prng_int_rejects_bad_bound;
          Alcotest.test_case "int_in_range" `Quick test_prng_int_in_range;
          Alcotest.test_case "int covers values" `Quick test_prng_int_covers_values;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
          Alcotest.test_case "pareto min" `Quick test_prng_pareto_min;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "to_list preserves" `Quick test_heap_to_list_preserves;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "random model" `Quick test_heap_random_model;
        ] );
      ( "equeue",
        [
          Alcotest.test_case "empty" `Quick test_equeue_empty;
          Alcotest.test_case "orders by time" `Quick test_equeue_orders_by_time;
          Alcotest.test_case "FIFO stability" `Quick test_equeue_fifo_stability;
          Alcotest.test_case "to_sorted_list nondestructive" `Quick
            test_equeue_to_sorted_list_nondestructive;
          Alcotest.test_case "clear and reuse" `Quick test_equeue_clear_and_reuse;
          Alcotest.test_case "random vs oracle" `Quick test_equeue_random_vs_oracle;
        ] );
      ( "pool",
        [
          Alcotest.test_case "arena rows and growth" `Quick test_arena_rows_and_growth;
          Alcotest.test_case "arena digest incremental" `Quick test_arena_digest_incremental;
          Alcotest.test_case "free pool" `Quick test_free_pool;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "mass sums to one" `Quick test_zipf_mass_sums_to_one;
          Alcotest.test_case "monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "sample range" `Quick test_zipf_sample_range;
          Alcotest.test_case "sample skew" `Quick test_zipf_sample_skew;
          Alcotest.test_case "single rank" `Quick test_zipf_single;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "reduction" `Quick test_stats_reduction;
        ] );
    ]
