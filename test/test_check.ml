(* Tests for the static analyzer (lib/check) — and the repo's standing
   soundness gate: every `dune runtest` sweeps the paper's covering /
   advertisement-covering / merging rules against the exact automata
   oracle over the seeded corpora, audits converged churn networks under
   all six strategies for routing-state invariant violations, and proves
   by mutation that a planted unsound rule is caught. *)

open Xroute_core
open Xroute_xpath
module Finding = Xroute_check.Finding
module Soundness = Xroute_check.Soundness
module Check = Xroute_check.Check
module Net = Xroute_overlay.Net
module Topology = Xroute_overlay.Topology
module Prng = Xroute_support.Prng

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let xp = Xpe_parser.parse
let seeds = [ 1; 2; 3; 4 ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let stat (r : Finding.report) name =
  match List.assoc_opt name r.Finding.stats with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "report lacks stat %s" name

(* ---------------- soundness gate ---------------- *)

(* The paper rules: incomplete by design, but never unsound. *)
let test_soundness_paper_rules () =
  let r = Soundness.run ~seeds () in
  check ci "no unsound covering decision" 0 (stat r "cover_unsound");
  check ci "no unsound adv-covering decision" 0 (stat r "adv_cover_unsound");
  check ci "no unsound merger" 0 (stat r "merge_unsound");
  check cb "no error findings" false (Finding.has_errors r);
  check cb "corpus is non-trivial" true (stat r "cover_contained" > 0);
  check cb "incompleteness rate reported" true
    (List.mem_assoc "cover_incomplete_rate" r.Finding.stats)

(* The exact engine must coincide with the oracle on the predicate-free
   corpora: no unsound decision and no missed containment either. *)
let test_soundness_exact_engine () =
  let r = Soundness.run ~covers:Cover.covers_exact ~seeds () in
  check ci "exact engine unsound" 0 (stat r "cover_unsound");
  check ci "exact engine incomplete" 0 (stat r "cover_incomplete")

(* Mutation check: a deliberately unsound rule must be caught. *)
let test_soundness_mutation () =
  let r = Soundness.run ~covers:Soundness.planted_unsound_covers ~seeds:[ 1 ] ~pairs_per_seed:100 () in
  check cb "planted unsoundness detected" true (Finding.has_errors r);
  check cb "unsound pairs counted" true (stat r "cover_unsound" > 0);
  check cb "witness findings emitted" true
    (List.exists (fun f -> f.Finding.code = "unsound-cover") r.Finding.findings)

(* ---------------- workload analysis ---------------- *)

let test_workload_dead () =
  let advs = [ Adv.parse "/inventory/item" ] in
  let subs = [ (1, xp "/catalog/book"); (2, xp "/inventory/item") ] in
  let fs = Check.analyze_workload ~advs ~subs () in
  check ci "one dead subscription" 1
    (List.length (List.filter (fun f -> f.Finding.code = "dead-subscription") fs));
  (* without advertisements the check cannot run *)
  check ci "skipped without advs" 0
    (List.length
       (List.filter
          (fun f -> f.Finding.code = "dead-subscription")
          (Check.analyze_workload ~subs ())))

let test_workload_contradictory () =
  let subs = [ (1, xp "/a[@x='1'][@x='2']/b"); (2, xp "/a[@x='1'][@y='2']") ] in
  let fs = Check.analyze_workload ~subs () in
  let hits = List.filter (fun f -> f.Finding.code = "contradictory-predicates") fs in
  check ci "one contradiction" 1 (List.length hits);
  check cb "witness names both values" true
    (let w = (List.hd hits).Finding.witness in
     let has s = contains w s in
     has "\"1\"" && has "\"2\"")

let test_workload_shadowed () =
  let subs = [ (1, xp "/a"); (1, xp "/a/b"); (2, xp "/a/b"); (1, xp "/a") ] in
  let fs = Check.analyze_workload ~subs () in
  let hits = List.filter (fun f -> f.Finding.code = "shadowed-subscription") fs in
  (* #1 strictly covered by #0 (same client); #2 belongs to another
     client; #3 equals #0 — covered but not strictly, so not reported *)
  check ci "one shadowed subscription" 1 (List.length hits);
  check cb "the shadowed one is #1" true
    (contains (List.hd hits).Finding.subject "#1")

(* ---------------- routing-state audit ---------------- *)

(* A churned binary-tree network: interleaved subscribes/unsubscribes,
   converged, plus a merging pass where the strategy merges. *)
let churned_net ~strategy ~seed =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let levels = 3 in
  let net = Net.create ~config:{ Net.default_config with strategy; seed } (Topology.binary_tree ~levels) in
  let publisher = Net.add_client net ~broker:0 in
  let clients =
    List.map (fun b -> Net.add_client net ~broker:b) (Topology.binary_tree_leaves ~levels)
  in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  let params = Xroute_workload.Workload.set_b_params dtd in
  let prng = Prng.create ((seed * 7919) + 11) in
  let live = ref [] in
  for _ = 1 to 20 do
    (if !live <> [] && Prng.bernoulli prng 0.35 then begin
       let c, id = List.nth !live (Prng.int prng (List.length !live)) in
       Net.unsubscribe net c id;
       live := List.filter (fun (_, i) -> i <> id) !live
     end
     else
       let c = Prng.choose_list prng clients in
       let x = Xroute_workload.Xpath_gen.generate_one params prng in
       live := (c, Net.subscribe net c x) :: !live);
    Net.run net
  done;
  (match strategy.Broker.merging with
  | Broker.No_merging -> ()
  | _ ->
    Net.set_universe net
      (Xroute_dtd.Dtd_paths.sample_paths ~count:2000 ~max_depth:10 (Prng.create 5) graph);
    Net.merge_all net;
    Net.run net);
  net

(* The standing gate: zero invariant violations across all strategies
   and seeds after churn + convergence. *)
let test_audit_sweep () =
  List.iter
    (fun name ->
      let strategy = Option.get (Broker.strategy_of_name name) in
      List.iter
        (fun seed ->
          let net = churned_net ~strategy ~seed in
          match Check.audit_net net with
          | [] -> ()
          | f :: _ ->
            Alcotest.failf "seed %d %s: %s (%s)" seed name f.Finding.subject
              f.Finding.witness)
        seeds)
    Broker.strategy_names

let test_audit_report_stats () =
  let strategy = Option.get (Broker.strategy_of_name "with-Adv-with-Cov") in
  let net = churned_net ~strategy ~seed:1 in
  let r = Check.audit_net_report net in
  check ci "seven brokers audited" 7 (stat r "brokers_audited");
  check ci "no violations" 0 (stat r "routing_violations")

(* Corruption must be caught: a subscription learned from a non-neighbor
   "broker 99" leaves a PRT entry whose last hop is invalid. *)
let test_audit_catches_corruption () =
  let b = Broker.create ~id:0 ~neighbors:[ 1 ] () in
  ignore
    (Broker.handle b ~from:(Rtable.Neighbor 99)
       (Message.Subscribe { id = { origin = 990; seq = 1 }; xpe = xp "/a/b" }));
  let fs = Check.audit_broker b in
  check cb "invalid last hop reported" true
    (List.exists (fun f -> f.Finding.code = "invalid-last-hop") fs);
  check cb "error severity" true
    (List.exists (fun f -> f.Finding.severity = Finding.Error) fs)

(* The NFA must-fail mutation: a planted dead automaton state (which
   eager pruning could never leave behind) must surface as an
   [nfa-integrity] error. *)
let test_audit_catches_nfa_orphan () =
  let b = Broker.create ~id:0 ~neighbors:[ 1 ] () in
  ignore
    (Broker.handle b ~from:(Rtable.Client 7)
       (Message.Subscribe { id = { origin = 7; seq = 1 }; xpe = xp "/a/b" }));
  check ci "clean before the mutation" 0
    (List.length
       (List.filter (fun f -> f.Finding.code = "nfa-integrity") (Check.audit_broker b)));
  Broker.corrupt_nfa_for_test b;
  let fs = Check.audit_broker b in
  let nfa_errors =
    List.filter
      (fun f -> f.Finding.code = "nfa-integrity" && f.Finding.severity = Finding.Error)
      fs
  in
  check cb "planted orphan state reported" true (nfa_errors <> [])

(* A clean broker audits clean, including against explicit ledgers. *)
let test_audit_clean_broker () =
  let b = Broker.create ~id:0 ~neighbors:[ 1 ] () in
  let id : Message.sub_id = { origin = 7; seq = 1 } in
  ignore (Broker.handle b ~from:(Rtable.Client 7) (Message.Subscribe { id; xpe = xp "/a" }));
  check ci "clean" 0 (List.length (Check.audit_broker ~live_advs:[] ~live_subs:[ id ] b));
  check ci "dangling against an empty ledger" 1
    (List.length
       (List.filter
          (fun f -> f.Finding.code = "dangling-prt-entry")
          (Check.audit_broker ~live_advs:[] ~live_subs:[] b)))

(* ---------------- report plumbing ---------------- *)

let test_report_rendering () =
  let f1 = Finding.make ~severity:Finding.Warning ~family:"workload" ~code:"w" ~subject:"s" ~witness:"x" in
  let f2 = Finding.make ~severity:Finding.Error ~family:"routing" ~code:"e" ~subject:"t\"q" ~witness:"" in
  let r = Finding.report ~stats:[ ("k", 0.5) ] [ f1; f2 ] in
  check ci "errors" 1 (Finding.errors r);
  check ci "warnings" 1 (Finding.warnings r);
  check cb "has_errors" true (Finding.has_errors r);
  (match Finding.by_severity r with
  | a :: _ -> check cb "errors first" true (a.Finding.severity = Finding.Error)
  | [] -> Alcotest.fail "empty");
  let text = Finding.to_text r in
  check cb "text totals" true (contains text "1 errors, 1 warnings");
  let json = Finding.to_json r in
  check cb "json escapes quotes" true (contains json "t\\\"q");
  check cb "json stats" true (contains json "\"k\": 0.5");
  check cb "json counts" true (contains json "\"errors\": 1");
  let empty = Finding.concat [] in
  check cb "concat of nothing is clean" false (Finding.has_errors empty)

let test_report_meters () =
  let reg = Xroute_obs.Metrics.create () in
  let meters = Xroute_obs.Check_meters.create reg in
  let r =
    Finding.report
      [ Finding.make ~severity:Finding.Error ~family:"routing" ~code:"e" ~subject:"s" ~witness:"" ]
  in
  Finding.record_meters meters r;
  Finding.record_meters meters Finding.empty;
  check (Alcotest.option (Alcotest.float 0.0)) "runs counted" (Some 2.0)
    (Xroute_obs.Metrics.scalar reg "xroute_check_runs_total");
  check (Alcotest.option (Alcotest.float 0.0)) "errors accumulated" (Some 1.0)
    (Xroute_obs.Metrics.scalar reg "xroute_check_errors_total");
  check (Alcotest.option (Alcotest.float 0.0)) "last run clean" (Some 0.0)
    (Xroute_obs.Metrics.scalar reg "xroute_check_last_errors")

let () =
  Alcotest.run "check"
    [
      ( "soundness",
        [
          Alcotest.test_case "paper rules never unsound" `Quick test_soundness_paper_rules;
          Alcotest.test_case "exact engine = oracle" `Quick test_soundness_exact_engine;
          Alcotest.test_case "mutation is caught" `Quick test_soundness_mutation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "dead" `Quick test_workload_dead;
          Alcotest.test_case "contradictory" `Quick test_workload_contradictory;
          Alcotest.test_case "shadowed" `Quick test_workload_shadowed;
        ] );
      ( "audit",
        [
          Alcotest.test_case "all strategies converge clean" `Quick test_audit_sweep;
          Alcotest.test_case "report stats" `Quick test_audit_report_stats;
          Alcotest.test_case "corruption caught" `Quick test_audit_catches_corruption;
          Alcotest.test_case "NFA orphan caught" `Quick test_audit_catches_nfa_orphan;
          Alcotest.test_case "clean broker, dangling ledger" `Quick test_audit_clean_broker;
        ] );
      ( "report",
        [
          Alcotest.test_case "rendering" `Quick test_report_rendering;
          Alcotest.test_case "meters" `Quick test_report_meters;
        ] );
    ]
