(* Focused tests for the routing tables (SRT and PRT) complementing the
   protocol-level broker tests. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let xp = Xpe_parser.parse
let ad = Adv.parse
let sid o s = { Message.origin = o; seq = s }
let n i = Rtable.Neighbor i
let c i = Rtable.Client i

let pub s = Xroute_xml.Xml_paths.publication_of_string s

(* ---------------- endpoints ---------------- *)

let test_endpoint_equal () =
  check cb "same neighbor" true (Rtable.endpoint_equal (n 1) (n 1));
  check cb "diff neighbor" false (Rtable.endpoint_equal (n 1) (n 2));
  check cb "kind mismatch" false (Rtable.endpoint_equal (n 1) (c 1));
  check cb "same client" true (Rtable.endpoint_equal (c 3) (c 3))

(* ---------------- SRT ---------------- *)

let test_srt_recursive_advertisements () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a(/b)+/c") (n 4));
  check ci "deep sub routed" 1 (List.length (Rtable.Srt.hops_for_sub srt (xp "/a/b/b/b/c")));
  check ci "mismatch not" 0 (List.length (Rtable.Srt.hops_for_sub srt (xp "/a/c/c")))

let test_srt_ids_from () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 2) (ad "/b") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 3) (ad "/c") (n 2));
  check ci "two from n1" 2 (List.length (Rtable.Srt.ids_from srt (n 1)));
  check ci "one from n2" 1 (List.length (Rtable.Srt.ids_from srt (n 2)));
  check ci "none from n3" 0 (List.length (Rtable.Srt.ids_from srt (n 3)))

let test_srt_match_ops_counted () =
  (* match_ops charges one op per entry actually scanned: the root
     index narrows a rooted subscription to its own bucket, while the
     flat table pays for every entry. *)
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 2) (ad "/b") (n 2));
  let before = Rtable.Srt.match_ops srt in
  ignore (Rtable.Srt.hops_for_sub srt (xp "/a"));
  check ci "indexed: only the /a bucket scanned" 1 (Rtable.Srt.match_ops srt - before);
  let flat = Rtable.Srt.create ~indexed:false () in
  ignore (Rtable.Srt.add flat (sid 1 1) (ad "/a") (n 1));
  ignore (Rtable.Srt.add flat (sid 1 2) (ad "/b") (n 2));
  let before = Rtable.Srt.match_ops flat in
  ignore (Rtable.Srt.hops_for_sub flat (xp "/a"));
  check ci "flat: one op per entry" 2 (Rtable.Srt.match_ops flat - before)

let test_srt_exact_engine () =
  let srt = Rtable.Srt.create ~engine:Adv_match.Exact () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a/b") (n 1));
  check ci "exact engine works" 1 (List.length (Rtable.Srt.hops_for_sub srt (xp "//b")))

let test_srt_remove_missing () =
  let srt = Rtable.Srt.create () in
  check cb "remove absent" true (Rtable.Srt.remove srt (sid 9 9) = None)

let ep = Alcotest.testable Rtable.pp_endpoint Rtable.endpoint_equal

(* hops_for_sub deduplicates preserving first-occurrence order: entries
   are scanned newest-first, so the hop of the newest matching
   advertisement comes first and later duplicates are dropped (they must
   not reorder the list, as the old reversing fold did). *)
let test_srt_hops_first_occurrence_order () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a/b") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 2) (ad "/a/c") (n 2));
  ignore (Rtable.Srt.add srt (sid 1 3) (ad "/a/d") (n 1));
  check (Alcotest.list ep) "newest-first, dedup keeps first" [ n 1; n 2 ]
    (Rtable.Srt.hops_for_sub srt (xp "/a"));
  (* same table built without the index scans in the same order *)
  let flat = Rtable.Srt.create ~indexed:false () in
  ignore (Rtable.Srt.add flat (sid 1 1) (ad "/a/b") (n 1));
  ignore (Rtable.Srt.add flat (sid 1 2) (ad "/a/c") (n 2));
  ignore (Rtable.Srt.add flat (sid 1 3) (ad "/a/d") (n 1));
  check (Alcotest.list ep) "flat mode identical" [ n 1; n 2 ]
    (Rtable.Srt.hops_for_sub flat (xp "/a"))

(* The root-element index partitions advertisements by first symbol;
   a rooted subscription only pays for its own bucket plus the
   catch-all (star / recursive-rooted advertisements). *)
let test_srt_index_skips_foreign_buckets () =
  let srt = Rtable.Srt.create () in
  ignore (Rtable.Srt.add srt (sid 1 1) (ad "/a/b") (n 1));
  ignore (Rtable.Srt.add srt (sid 1 2) (ad "/b/c") (n 2));
  ignore (Rtable.Srt.add srt (sid 1 3) (ad "/*/c") (n 3));
  check cb "indexed" true (Rtable.Srt.indexed srt);
  check ci "buckets" 2 (Rtable.Srt.bucket_count srt);
  check ci "catch-all holds star root" 1 (Rtable.Srt.catch_all_size srt);
  check ci "max bucket" 1 (Rtable.Srt.max_bucket_size srt);
  let before = Rtable.Srt.match_ops srt in
  ignore (Rtable.Srt.hops_for_sub srt (xp "/a/b"));
  check ci "rooted sub skips /b bucket" 2 (Rtable.Srt.match_ops srt - before);
  let before = Rtable.Srt.match_ops srt in
  ignore (Rtable.Srt.hops_for_sub srt (xp "//c"));
  check ci "desc-first sub scans everything" 3 (Rtable.Srt.match_ops srt - before);
  (* flat mode charges every entry every time *)
  let flat = Rtable.Srt.create ~indexed:false () in
  ignore (Rtable.Srt.add flat (sid 1 1) (ad "/a/b") (n 1));
  ignore (Rtable.Srt.add flat (sid 1 2) (ad "/b/c") (n 2));
  ignore (Rtable.Srt.add flat (sid 1 3) (ad "/*/c") (n 3));
  check ci "flat: no buckets" 0 (Rtable.Srt.bucket_count flat);
  let before = Rtable.Srt.match_ops flat in
  ignore (Rtable.Srt.hops_for_sub flat (xp "/a/b"));
  check ci "flat scans all" 3 (Rtable.Srt.match_ops flat - before)

(* Seeded differential: indexed and flat SRTs over the same random
   advertisement mix (rooted, star-rooted, recursive) must return
   identical hop lists for every subscription shape — including after
   removals — while the indexed table performs strictly fewer match
   operations. *)
let test_srt_indexed_vs_list_differential () =
  let prng = Xroute_support.Prng.create 77 in
  let names = [| "a"; "b"; "c"; "d"; "e" |] in
  let random_adv i =
    let root =
      if Xroute_support.Prng.bernoulli prng 0.15 then "*"
      else Xroute_support.Prng.choose prng names
    in
    let depth = 1 + Xroute_support.Prng.int prng 3 in
    let rest = List.init depth (fun _ -> "/" ^ Xroute_support.Prng.choose prng names) in
    let s = "/" ^ root ^ String.concat "" rest in
    let s =
      if Xroute_support.Prng.bernoulli prng 0.2 then
        s ^ "(/" ^ Xroute_support.Prng.choose prng names ^ ")+"
      else s
    in
    (sid 1 i, ad s, n (Xroute_support.Prng.int prng 4))
  in
  let advs = List.init 120 random_adv in
  let subs =
    List.init 80 (fun _ ->
        match Xroute_support.Prng.int prng 4 with
        | 0 -> xp ("//" ^ Xroute_support.Prng.choose prng names)
        | 1 -> xp ("/*/" ^ Xroute_support.Prng.choose prng names)
        | 2 ->
          xp
            (Xroute_support.Prng.choose prng names
            ^ "/" ^ Xroute_support.Prng.choose prng names)
        | _ ->
          xp
            ("/" ^ Xroute_support.Prng.choose prng names
            ^ "/" ^ Xroute_support.Prng.choose prng names))
  in
  let build indexed =
    let srt = Rtable.Srt.create ~indexed () in
    List.iter (fun (id, a, hop) -> ignore (Rtable.Srt.add srt id a hop)) advs;
    srt
  in
  let idx = build true and flat = build false in
  let compare_all label =
    List.iteri
      (fun i x ->
        check (Alcotest.list ep)
          (Printf.sprintf "%s: sub %d identical hops" label i)
          (Rtable.Srt.hops_for_sub flat x)
          (Rtable.Srt.hops_for_sub idx x))
      subs
  in
  let ops0_idx = Rtable.Srt.match_ops idx and ops0_flat = Rtable.Srt.match_ops flat in
  compare_all "full table";
  check cb "indexed does fewer ops" true
    (Rtable.Srt.match_ops idx - ops0_idx < Rtable.Srt.match_ops flat - ops0_flat);
  (* remove a third of the entries from both and re-compare *)
  List.iteri
    (fun i (id, _, _) ->
      if i mod 3 = 0 then begin
        ignore (Rtable.Srt.remove idx id);
        ignore (Rtable.Srt.remove flat id)
      end)
    advs;
  check ci "sizes agree after removal" (Rtable.Srt.size flat) (Rtable.Srt.size idx);
  compare_all "after removals"

(* ---------------- PRT ---------------- *)

let test_prt_ids_and_find () =
  let prt = Rtable.Prt.create () in
  let _ = Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1) in
  check cb "mem" true (Rtable.Prt.mem prt (sid 2 1));
  check cb "not mem" false (Rtable.Prt.mem prt (sid 2 2));
  (match Rtable.Prt.find prt (sid 2 1) with
  | Some (node, payload) ->
    check cb "node holds xpe" true (Xpe.equal (Sub_tree.node_xpe node) (xp "/a"));
    check cb "payload hop" true (Rtable.endpoint_equal payload.Rtable.Prt.hop (n 1))
  | None -> Alcotest.fail "find failed")

let test_prt_equal_xpes_one_node () =
  let prt = Rtable.Prt.create () in
  let n1, _ = Rtable.Prt.insert prt (sid 2 1) (xp "/a/b") (n 1) in
  let n2, _ = Rtable.Prt.insert prt (sid 3 1) (xp "/a/b") (n 2) in
  check cb "shared node" true (n1 == n2);
  check ci "size counts distinct XPEs" 1 (Rtable.Prt.size prt);
  check ci "payloads kept" 2 (Sub_tree.payload_count (Rtable.Prt.tree prt));
  (* publication matches both hops *)
  check ci "two payloads" 2 (List.length (Rtable.Prt.match_pub prt (pub "/a/b")))

let test_prt_remove_keeps_sharing () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  ignore (Rtable.Prt.insert prt (sid 3 1) (xp "/a") (n 2));
  (match Rtable.Prt.remove prt (sid 2 1) with
  | Some (_, _, was_sole, _) -> check cb "not sole payload" false was_sole
  | None -> Alcotest.fail "remove failed");
  check ci "node still present" 1 (Rtable.Prt.size prt);
  check ci "still matches" 1 (List.length (Rtable.Prt.match_pub prt (pub "/a/b")))

let test_prt_covering_queries () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  ignore (Rtable.Prt.insert prt (sid 2 2) (xp "/a/b") (n 2));
  check cb "covered" true (Rtable.Prt.is_covered prt (xp "/a/b/c"));
  check cb "not covered" false (Rtable.Prt.is_covered prt (xp "/z"));
  check ci "covered maximal" 1 (List.length (Rtable.Prt.covered_maximal prt (xp "/*")))

let test_prt_flat_mode () =
  let prt = Rtable.Prt.create ~flat:true () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  ignore (Rtable.Prt.insert prt (sid 2 2) (xp "/a/b") (n 2));
  check cb "flat: no covering" false (Rtable.Prt.is_covered prt (xp "/a/b"));
  check ci "flat: still matches" 2 (List.length (Rtable.Prt.match_pub prt (pub "/a/b")))

let test_prt_attr_matching () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a[@k='v']") (c 1));
  let p_ok =
    { (pub "/a/b") with Xroute_xml.Xml_paths.attrs = [| [ ("k", "v") ]; [] |] }
  in
  let p_bad =
    { (pub "/a/b") with Xroute_xml.Xml_paths.attrs = [| [ ("k", "w") ]; [] |] }
  in
  check ci "attr match" 1 (List.length (Rtable.Prt.match_pub prt p_ok));
  check ci "attr mismatch" 0 (List.length (Rtable.Prt.match_pub prt p_bad))

let test_prt_counters_move () =
  let prt = Rtable.Prt.create () in
  ignore (Rtable.Prt.insert prt (sid 2 1) (xp "/a") (n 1));
  let m0 = Rtable.Prt.match_checks prt in
  ignore (Rtable.Prt.match_pub prt (pub "/a/b"));
  check cb "match checks counted" true (Rtable.Prt.match_checks prt > m0)

let () =
  Alcotest.run "rtable"
    [
      ("endpoints", [ Alcotest.test_case "equality" `Quick test_endpoint_equal ]);
      ( "srt",
        [
          Alcotest.test_case "recursive advs" `Quick test_srt_recursive_advertisements;
          Alcotest.test_case "ids_from" `Quick test_srt_ids_from;
          Alcotest.test_case "match ops" `Quick test_srt_match_ops_counted;
          Alcotest.test_case "exact engine" `Quick test_srt_exact_engine;
          Alcotest.test_case "remove missing" `Quick test_srt_remove_missing;
          Alcotest.test_case "hop first-occurrence order" `Quick
            test_srt_hops_first_occurrence_order;
          Alcotest.test_case "index skips foreign buckets" `Quick
            test_srt_index_skips_foreign_buckets;
          Alcotest.test_case "indexed vs list differential" `Quick
            test_srt_indexed_vs_list_differential;
        ] );
      ( "prt",
        [
          Alcotest.test_case "ids and find" `Quick test_prt_ids_and_find;
          Alcotest.test_case "equal xpes share" `Quick test_prt_equal_xpes_one_node;
          Alcotest.test_case "remove sharing" `Quick test_prt_remove_keeps_sharing;
          Alcotest.test_case "covering queries" `Quick test_prt_covering_queries;
          Alcotest.test_case "flat mode" `Quick test_prt_flat_mode;
          Alcotest.test_case "attribute matching" `Quick test_prt_attr_matching;
          Alcotest.test_case "counters" `Quick test_prt_counters_move;
        ] );
    ]
