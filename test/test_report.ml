(* Validation gate for the committed machine-readable artifacts: every
   BENCH_<n>.json at the repo root must declare the xroute-bench/<n>
   schema matching its filename and be structurally sound, and the
   Chrome trace-event export must stay byte-stable (external tooling —
   Perfetto, chrome://tracing — parses it, so drift is an interface
   break). Tests run from _build/default/test, so the repo root is
   ../../.. unless XROUTE_ROOT overrides it. *)

open Xroute_obs
module Json = Xroute_support.Json

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

(* Walk up from the cwd to the checkout (dune runtest starts tests in
   _build/default/test; dune exec starts them wherever it was invoked). *)
let repo_root () =
  match Sys.getenv_opt "XROUTE_ROOT" with
  | Some r -> r
  | None ->
    let rec up dir n =
      if n = 0 then dir
      else if Sys.file_exists (Filename.concat dir ".git") then dir
      else up (Filename.dirname dir) (n - 1)
    in
    up (Sys.getcwd ()) 8

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* BENCH_<n>.json files committed at the repo root, sorted. *)
let bench_files () =
  let root = repo_root () in
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list
    |> List.filter (fun f ->
           String.length f > String.length "BENCH_.json"
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (fun f -> (f, Filename.concat root f))

let schema_number file =
  (* digits between BENCH_ and .json *)
  let core = Filename.remove_extension file in
  String.sub core 6 (String.length core - 6)

let test_bench_reports_validate () =
  let files = bench_files () in
  check cb "at least one committed BENCH_*.json" true (files <> []);
  List.iter
    (fun (file, path) ->
      match Json.parse (read_file path) with
      | Error e -> Alcotest.fail (file ^ " is not valid JSON: " ^ e)
      | Ok j ->
        let str k = Option.bind (Json.member k j) Json.to_str in
        check cs (file ^ ": schema matches filename")
          ("xroute-bench/" ^ schema_number file)
          (Option.value ~default:"<missing>" (str "schema"));
        check cb (file ^ ": positive scale") true
          (match Option.bind (Json.member "scale" j) Json.to_num with
          | Some s -> s > 0.0
          | None -> false);
        let experiments =
          match Option.bind (Json.member "experiments" j) Json.to_list with
          | Some l -> l
          | None -> Alcotest.fail (file ^ ": experiments array missing")
        in
        check cb (file ^ ": has experiment records") true (experiments <> []);
        List.iter
          (fun record ->
            match record with
            | Json.Obj fields ->
              let name =
                match List.assoc_opt "name" fields with
                | Some (Json.Str n) when n <> "" -> n
                | _ -> Alcotest.fail (file ^ ": record without a name")
              in
              List.iter
                (fun (k, v) ->
                  if k <> "name" then
                    check cb
                      (Printf.sprintf "%s: %s.%s is a scalar" file name k)
                      true
                      (match v with
                      | Json.Num _ | Json.Bool _ -> true
                      | _ -> false))
                fields
            | _ -> Alcotest.fail (file ^ ": experiment record is not an object"))
          experiments)
    (bench_files ())

(* The seeded latency-breakdown records are the committed face of this
   PR's tentpole; pin their presence and shape in BENCH_5.json. *)
let test_bench5_latency_breakdown () =
  match List.assoc_opt "BENCH_5.json" (bench_files ()) with
  | None -> Alcotest.fail "BENCH_5.json not committed at the repo root"
  | Some path -> (
    match Json.parse (read_file path) with
    | Error e -> Alcotest.fail ("BENCH_5.json: " ^ e)
    | Ok j ->
      let experiments =
        Option.value ~default:[]
          (Option.bind (Json.member "experiments" j) Json.to_list)
      in
      let record name =
        List.find_opt
          (fun r ->
            Option.bind (Json.member "name" r) Json.to_str = Some name)
          experiments
      in
      List.iter
        (fun strategy ->
          let name = "latency-breakdown-" ^ strategy in
          match record name with
          | None -> Alcotest.fail (name ^ " record missing")
          | Some r ->
            List.iter
              (fun field ->
                check cb (name ^ " has " ^ field) true
                  (match Option.bind (Json.member field r) Json.to_num with
                  | Some v -> v >= 0.0
                  | None -> false))
              [ "e2e_n"; "e2e_p50_ms"; "e2e_p95_ms"; "e2e_p99_ms";
                "prt_match_n"; "prt_match_p50_ms"; "transmit_p50_ms";
                "link_p50_ms"; "deliver_p50_ms" ])
        [ "no-Adv-no-Cov"; "with-Adv-with-Cov"; "with-Adv-with-CovPM" ])

(* The match-scaling records are the committed face of the PR-6
   tentpole: pin their presence and shape in BENCH_6.json, and gate the
   two claims the NFA promotion stands on — zero decision diffs, and an
   order-of-magnitude fewer entries examined than the flat scan at the
   largest table. *)
let test_bench6_match_scaling () =
  match List.assoc_opt "BENCH_6.json" (bench_files ()) with
  | None -> Alcotest.fail "BENCH_6.json not committed at the repo root"
  | Some path -> (
    match Json.parse (read_file path) with
    | Error e -> Alcotest.fail ("BENCH_6.json: " ^ e)
    | Ok j ->
      check cs "schema" "xroute-bench/6"
        (Option.value ~default:"<missing>"
           (Option.bind (Json.member "schema" j) Json.to_str));
      let experiments =
        Option.value ~default:[]
          (Option.bind (Json.member "experiments" j) Json.to_list)
      in
      let record name =
        List.find_opt
          (fun r -> Option.bind (Json.member "name" r) Json.to_str = Some name)
          experiments
      in
      List.iter
        (fun size ->
          let name = Printf.sprintf "match-scaling-%d" size in
          match record name with
          | None -> Alcotest.fail (name ^ " record missing")
          | Some r ->
            let num field = Option.bind (Json.member field r) Json.to_num in
            List.iter
              (fun field ->
                check cb (name ^ " has positive " ^ field) true
                  (match num field with Some v -> v > 0.0 | None -> false))
              [ "xpes_stored"; "publications"; "entries_per_pub_flat";
                "entries_per_pub_tree"; "entries_per_pub_nfa"; "nfa_states";
                "flat_over_nfa" ];
            check cb (name ^ ": zero decision diffs") true (num "decision_diffs" = Some 0.0);
            check cb (name ^ ": decisions_identical") true
              (Option.bind (Json.member "decisions_identical" r) (function
                 | Json.Bool b -> Some b
                 | _ -> None)
              = Some true);
            (* the NFA must examine no more than the flat scan anywhere *)
            check cb (name ^ ": nfa examines fewer entries") true
              (match (num "entries_per_pub_nfa", num "entries_per_pub_flat") with
              | Some n, Some f -> n <= f
              | _ -> false))
        [ 1000; 10000; 100000 ];
      (match record "match-scaling" with
      | None -> Alcotest.fail "match-scaling summary record missing"
      | Some r ->
        check cb "flat/nfa ratio at the largest table is >= 10x" true
          (match Option.bind (Json.member "flat_over_nfa_at_max" r) Json.to_num with
          | Some v -> v >= 10.0
          | None -> false)))

(* The BENCH_7 saturation pin: the sharded daemon's burst record must
   show the 10x end-to-end throughput gain over the BENCH_2 seed
   baseline at >= 4 domains, with zero decision diffs against the
   sequential run and no publication loss on either side. *)
let test_bench7_saturation () =
  match List.assoc_opt "BENCH_7.json" (bench_files ()) with
  | None -> Alcotest.fail "BENCH_7.json not committed at the repo root"
  | Some path -> (
    match Json.parse (read_file path) with
    | Error e -> Alcotest.fail ("BENCH_7.json: " ^ e)
    | Ok j ->
      check cs "schema" "xroute-bench/7"
        (Option.value ~default:"<missing>"
           (Option.bind (Json.member "schema" j) Json.to_str));
      let experiments =
        Option.value ~default:[]
          (Option.bind (Json.member "experiments" j) Json.to_list)
      in
      let record name =
        List.find_opt
          (fun r -> Option.bind (Json.member "name" r) Json.to_str = Some name)
          experiments
      in
      let get name =
        match record name with
        | Some r -> r
        | None -> Alcotest.fail (name ^ " record missing")
      in
      let seq = get "saturation-domains-1" in
      let sharded = get "saturation-domains-4" in
      List.iter
        (fun (label, r) ->
          let num field = Option.bind (Json.member field r) Json.to_num in
          List.iter
            (fun field ->
              check cb (label ^ " has positive " ^ field) true
                (match num field with Some v -> v > 0.0 | None -> false))
            [ "domains"; "roots"; "published"; "delivered"; "burst_wall_ms";
              "msgs_per_sec"; "p50_hop_ms"; "p99_hop_ms" ];
          (* the subscriber holds 3 of the 4 roots: no loss means
             delivered = 3/4 of published, on both runs *)
          check cb (label ^ ": no publication loss") true
            (match (num "published", num "delivered") with
            | Some p, Some d -> d = p *. 0.75
            | _ -> false))
        [ ("saturation-domains-1", seq); ("saturation-domains-4", sharded) ];
      let num field = Option.bind (Json.member field sharded) Json.to_num in
      check cb "sharded run used >= 4 domains" true
        (match num "domains" with Some v -> v >= 4.0 | None -> false);
      check cb "zero decision diffs vs the sequential daemon" true
        (num "decision_diffs" = Some 0.0);
      check cb "decisions_identical" true
        (Option.bind (Json.member "decisions_identical" sharded) (function
           | Json.Bool b -> Some b
           | _ -> None)
        = Some true);
      check cb "baseline is the BENCH_2 seed throughput" true
        (num "baseline_msgs_per_sec" = Some 1194.73);
      (* the acceptance gate: >= 10x the seed's burst throughput *)
      check cb "sharded burst is >= 10x the BENCH_2 baseline" true
        (match (num "msgs_per_sec", num "baseline_msgs_per_sec") with
        | Some m, Some b -> m >= 10.0 *. b
        | _ -> false);
      check cb "speedup_vs_baseline is consistent" true
        (match (num "speedup_vs_baseline", num "msgs_per_sec", num "baseline_msgs_per_sec")
         with
        | Some s, Some m, Some b -> Float.abs (s -. (m /. b)) < 0.01
        | _ -> false))

(* The BENCH_8 scenario-scale pin: the committed scale series must
   reach a million clients with positive throughput and RSS figures at
   >= 3 scale points, and every heap-vs-list differential record must
   show identical ledgers with zero diffs. *)
let test_bench8_scenario_scale () =
  match List.assoc_opt "BENCH_8.json" (bench_files ()) with
  | None -> Alcotest.fail "BENCH_8.json not committed at the repo root"
  | Some path -> (
    match Json.parse (read_file path) with
    | Error e -> Alcotest.fail ("BENCH_8.json: " ^ e)
    | Ok j ->
      check cs "schema" "xroute-bench/8"
        (Option.value ~default:"<missing>"
           (Option.bind (Json.member "schema" j) Json.to_str));
      let experiments =
        Option.value ~default:[]
          (Option.bind (Json.member "experiments" j) Json.to_list)
      in
      let named prefix =
        List.filter
          (fun r ->
            match Option.bind (Json.member "name" r) Json.to_str with
            | Some n ->
              String.length n >= String.length prefix
              && String.sub n 0 (String.length prefix) = prefix
            | None -> false)
          experiments
      in
      (* differential gate: all four kinds, identical ledgers, 0 diffs *)
      let diffs = named "scenario-differential-" in
      check ci "all four scenario kinds in the differential gate" 4 (List.length diffs);
      List.iter
        (fun r ->
          let name =
            Option.value ~default:"?" (Option.bind (Json.member "name" r) Json.to_str)
          in
          check cb (name ^ ": zero ledger diffs") true
            (Option.bind (Json.member "ledger_diffs" r) Json.to_num = Some 0.0);
          check cb (name ^ ": ledgers identical") true
            (Option.bind (Json.member "ledgers_identical" r) (function
               | Json.Bool b -> Some b
               | _ -> None)
            = Some true))
        diffs;
      (* scale series: >= 3 points, each with throughput and peak RSS *)
      let points = named "scenario-scale-" in
      check cb ">= 3 scale points" true (List.length points >= 3);
      List.iter
        (fun r ->
          let name =
            Option.value ~default:"?" (Option.bind (Json.member "name" r) Json.to_str)
          in
          List.iter
            (fun field ->
              check cb (name ^ " has positive " ^ field) true
                (match Option.bind (Json.member field r) Json.to_num with
                | Some v -> v > 0.0
                | None -> false))
            [ "clients"; "brokers"; "subs"; "deliveries"; "events";
              "events_per_sec"; "wall_s"; "peak_rss_bytes" ])
        points;
      check cb "the million-client point is present" true
        (List.exists
           (fun r -> Option.bind (Json.member "clients" r) Json.to_num = Some 1_000_000.0)
           points);
      (* summary record ties the two together *)
      let summary =
        List.find_opt
          (fun r -> Option.bind (Json.member "name" r) Json.to_str = Some "scenario-scale")
          experiments
      in
      match summary with
      | None -> Alcotest.fail "scenario-scale summary record missing"
      | Some r ->
        check cb "summary max_clients = 1000000" true
          (Option.bind (Json.member "max_clients" r) Json.to_num = Some 1_000_000.0);
        check cb "summary differential_gate" true
          (Option.bind (Json.member "differential_gate" r) (function
             | Json.Bool b -> Some b
             | _ -> None)
          = Some true))

(* The BENCH_9 concurrency pin: the committed conc-audit sweep must
   cover >= 1000 distinct schedules across >= 3 scenarios with zero
   races and zero divergences, and the tsync'd pool's re-run of the
   BENCH_7 sharded burst must land within noise of the committed
   BENCH_7 throughput (production instrumentation is free). *)
let test_bench9_conc () =
  match List.assoc_opt "BENCH_9.json" (bench_files ()) with
  | None -> Alcotest.fail "BENCH_9.json not committed at the repo root"
  | Some path -> (
    match Json.parse (read_file path) with
    | Error e -> Alcotest.fail ("BENCH_9.json: " ^ e)
    | Ok j ->
      check cs "schema" "xroute-bench/9"
        (Option.value ~default:"<missing>"
           (Option.bind (Json.member "schema" j) Json.to_str));
      let experiments =
        Option.value ~default:[]
          (Option.bind (Json.member "experiments" j) Json.to_list)
      in
      let record name =
        List.find_opt
          (fun r -> Option.bind (Json.member "name" r) Json.to_str = Some name)
          experiments
      in
      let get name =
        match record name with
        | Some r -> r
        | None -> Alcotest.fail (name ^ " record missing")
      in
      let audit = get "conc-audit" in
      let num r field = Option.bind (Json.member field r) Json.to_num in
      check cb ">= 3 scenarios swept" true
        (match num audit "scenarios" with Some v -> v >= 3.0 | None -> false);
      (* the acceptance floor: >= 1000 distinct schedules *)
      check cb ">= 1000 distinct schedules explored" true
        (match num audit "schedules_explored" with Some v -> v >= 1000.0 | None -> false);
      check cb "races_found = 0" true (num audit "races_found" = Some 0.0);
      check cb "divergences_found = 0" true (num audit "divergences_found" = Some 0.0);
      check cb "positive step count" true
        (match num audit "total_steps" with Some v -> v > 0.0 | None -> false);
      (* per-scenario records: clean and non-trivial *)
      List.iter
        (fun name ->
          let r = get name in
          check cb (name ^ ": schedules > 0") true
            (match num r "schedules" with Some v -> v > 0.0 | None -> false);
          check cb (name ^ ": clean") true
            (num r "races" = Some 0.0 && num r "divergences" = Some 0.0))
        [ "conc-spsc-ring-wrap"; "conc-pool-1worker"; "conc-pool-2worker" ];
      let overhead = get "tsync-overhead" in
      check cb "overhead run used >= 4 domains" true
        (match num overhead "domains" with Some v -> v >= 4.0 | None -> false);
      check cb "no publication loss" true
        (match (num overhead "published", num overhead "delivered") with
        | Some p, Some d -> d = p *. 0.75 (* 3 of 4 roots subscribed *)
        | _ -> false);
      check cb "compared against the committed BENCH_7 number" true
        (num overhead "bench7_msgs_per_sec" = Some 13908.8);
      (* within noise: generous both ways — machine variance between the
         BENCH_7 and BENCH_9 recording runs dominates any shim cost *)
      check cb "production tsync within noise of BENCH_7 (ratio in [0.7, 1.5])" true
        (match num overhead "ratio_vs_bench7" with
        | Some r -> r >= 0.7 && r <= 1.5
        | None -> false);
      check cb "ratio is consistent with the raw numbers" true
        (match
           (num overhead "ratio_vs_bench7", num overhead "msgs_per_sec",
            num overhead "bench7_msgs_per_sec")
         with
        | Some r, Some m, Some b -> Float.abs (r -. (m /. b)) < 0.01
        | _ -> false))

(* The BENCH_10 telemetry pin: the committed sketch-error records must
   sit within the advertised relative-error bound on every distribution,
   the FEDSTATS pull must have converged with zero merge diffs at every
   overlay size (all origins present, idempotent), and the telemetry-
   overhead re-run of the BENCH_7 burst must show the health summary
   costing at most 10% throughput (off/on ratio <= 1.1). *)
let test_bench10_obs () =
  match List.assoc_opt "BENCH_10.json" (bench_files ()) with
  | None -> Alcotest.fail "BENCH_10.json not committed at the repo root"
  | Some path -> (
    match Json.parse (read_file path) with
    | Error e -> Alcotest.fail ("BENCH_10.json: " ^ e)
    | Ok j ->
      check cs "schema" "xroute-bench/10"
        (Option.value ~default:"<missing>"
           (Option.bind (Json.member "schema" j) Json.to_str));
      let experiments =
        Option.value ~default:[]
          (Option.bind (Json.member "experiments" j) Json.to_list)
      in
      let record name =
        List.find_opt
          (fun r -> Option.bind (Json.member "name" r) Json.to_str = Some name)
          experiments
      in
      let get name =
        match record name with
        | Some r -> r
        | None -> Alcotest.fail (name ^ " record missing")
      in
      let num r field = Option.bind (Json.member field r) Json.to_num in
      let flag r field =
        Option.bind (Json.member field r) (function
          | Json.Bool b -> Some b
          | _ -> None)
      in
      (* sketch accuracy: every distribution within the advertised bound *)
      List.iter
        (fun dist ->
          let name = "sketch-error-" ^ dist in
          let r = get name in
          check cb (name ^ ": positive sample count") true
            (match num r "samples" with Some v -> v > 0.0 | None -> false);
          check cb (name ^ ": within_bound") true (flag r "within_bound" = Some true);
          check cb (name ^ ": max_rel_error <= alpha") true
            (match (num r "max_rel_error", num r "alpha") with
            | Some e, Some a -> a > 0.0 && e <= a +. 1e-9
            | _ -> false))
        [ "uniform"; "exponential"; "zipf"; "latency-mix" ];
      let summary = get "sketch-error" in
      check cb "sketch summary covers all four distributions" true
        (num summary "distributions" = Some 4.0);
      check cb "sketch summary within_bound" true
        (flag summary "within_bound" = Some true);
      (* federation convergence: all origins, zero diffs, idempotent *)
      List.iter
        (fun brokers ->
          let name = Printf.sprintf "fed-convergence-%d" brokers in
          let r = get name in
          check cb (name ^ ": every origin present") true
            (num r "origins" = Some (float_of_int brokers));
          check cb (name ^ ": zero merge diffs") true (num r "merge_diffs" = Some 0.0);
          check cb (name ^ ": traffic federated") true
            (match num r "pubs_federated" with Some v -> v > 0.0 | None -> false);
          check cb (name ^ ": idempotent") true (flag r "idempotent" = Some true))
        [ 3; 5; 7 ];
      (* telemetry overhead: the acceptance gate is ratio <= 1.1 *)
      let overhead = get "telemetry-overhead" in
      List.iter
        (fun field ->
          check cb ("telemetry-overhead has positive " ^ field) true
            (match num overhead field with Some v -> v > 0.0 | None -> false))
        [ "domains"; "published"; "msgs_per_sec_on"; "msgs_per_sec_off" ];
      check cb "compared against the committed BENCH_7 number" true
        (num overhead "bench7_msgs_per_sec" = Some 13908.8);
      check cb "within_gate" true (flag overhead "within_gate" = Some true);
      check cb "telemetry costs <= 10% (off/on ratio <= 1.1)" true
        (match num overhead "ratio_off_over_on" with
        | Some r -> r <= 1.1
        | None -> false);
      check cb "ratio is consistent with the raw numbers" true
        (match
           (num overhead "ratio_off_over_on", num overhead "msgs_per_sec_off",
            num overhead "msgs_per_sec_on")
         with
        | Some r, Some off, Some on -> Float.abs (r -. (off /. on)) < 0.01
        | _ -> false))

(* ---------------- Chrome trace-event golden ---------------- *)

(* Byte-exact golden: one recorded span, every field populated. *)
let test_chrome_export_golden () =
  let t = Span.create () in
  ignore
    (Span.record t ~trace:7 ~name:"hop" ~broker:2 ~meta:[ ("ops", "3") ] ~start:1.5
       ~stop:2.5 ());
  let expect =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":\"hop\",\"cat\":\"xroute\",\
     \"ph\":\"X\",\"ts\":1500.000,\"dur\":1000.000,\"pid\":2,\"tid\":7,\
     \"args\":{\"id\":\"1\",\"ops\":\"3\"}}]}"
  in
  check cs "chrome export byte-stable" expect (Span.to_chrome (Span.to_list t))

(* And structurally: a multi-span tree with hostile content must still
   parse as JSON with the trace-event fields Perfetto requires. *)
let test_chrome_export_parses () =
  let t = Span.create () in
  let root = Span.start_span t ~trace:7 ~name:"pub" ~broker:(-1) ~at:0.0 () in
  let hop =
    Span.start_span t ~parent:root.Span.id ~trace:7 ~name:"hop" ~broker:0 ~at:0.5 ()
  in
  ignore
    (Span.record t ~parent:hop.Span.id ~trace:7 ~name:"queue \"q\"\nnasty" ~broker:0
       ~meta:[ ("srt_ops", "3"); ("quote", "\"\\") ]
       ~start:0.5 ~stop:1.0 ());
  Span.finish hop ~at:2.0;
  Span.extend root ~at:2.0;
  match Json.parse (Span.to_chrome (Span.to_list t)) with
  | Error e -> Alcotest.fail ("chrome export is not valid JSON: " ^ e)
  | Ok j ->
    check cb "displayTimeUnit is ms" true
      (Option.bind (Json.member "displayTimeUnit" j) Json.to_str = Some "ms");
    let events =
      Option.value ~default:[] (Option.bind (Json.member "traceEvents" j) Json.to_list)
    in
    check ci "one event per span" 3 (List.length events);
    List.iter
      (fun e ->
        check cb "complete event" true
          (Option.bind (Json.member "ph" e) Json.to_str = Some "X");
        List.iter
          (fun k -> check cb (k ^ " is numeric") true
              (Option.bind (Json.member k e) Json.to_num <> None))
          [ "ts"; "dur"; "pid"; "tid" ];
        check cb "args object with the span id" true
          (match Json.member "args" e with
          | Some args -> Option.bind (Json.member "id" args) Json.to_str <> None
          | None -> false))
      events;
    (* microsecond timestamps: the hop [0.5, 2.0] ms is 500 .. 1500 us *)
    let hop_event =
      List.find
        (fun e -> Option.bind (Json.member "name" e) Json.to_str = Some "hop")
        events
    in
    check cb "ts in microseconds" true
      (Option.bind (Json.member "ts" hop_event) Json.to_num = Some 500.0);
    check cb "dur in microseconds" true
      (Option.bind (Json.member "dur" hop_event) Json.to_num = Some 1500.0)

let () =
  Alcotest.run "report"
    [
      ( "bench-json",
        [
          Alcotest.test_case "committed reports validate" `Quick
            test_bench_reports_validate;
          Alcotest.test_case "BENCH_5 latency breakdown" `Quick
            test_bench5_latency_breakdown;
          Alcotest.test_case "BENCH_6 match scaling" `Quick
            test_bench6_match_scaling;
          Alcotest.test_case "BENCH_7 saturation" `Quick
            test_bench7_saturation;
          Alcotest.test_case "BENCH_8 scenario scale" `Quick
            test_bench8_scenario_scale;
          Alcotest.test_case "BENCH_9 concurrency audit" `Quick
            test_bench9_conc;
          Alcotest.test_case "BENCH_10 telemetry federation" `Quick
            test_bench10_obs;
        ] );
      ( "chrome-export",
        [
          Alcotest.test_case "golden" `Quick test_chrome_export_golden;
          Alcotest.test_case "hostile content parses" `Quick test_chrome_export_parses;
        ] );
    ]
