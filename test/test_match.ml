(* Tests for Adv_match: the paper's subscription/advertisement matching
   algorithms, cross-checked against the exact automata oracle. *)

open Xroute_core
open Xroute_xpath

let check = Alcotest.check
let cb = Alcotest.bool

let xp = Xpe_parser.parse
let ad = Adv.parse

let sym s = Xpe.test_of_string s
let syms l = Array.of_list (List.map sym l)

(* ---------------- AbsExprAndAdv ---------------- *)

let abs_match xpe advsyms =
  let x = xp xpe in
  Xpe.length x <= Array.length advsyms && Adv_match.abs_expr_and_adv x.Xpe.steps advsyms

let test_abs_basic () =
  check cb "exact" true (abs_match "/a/b" (syms [ "a"; "b" ]));
  check cb "prefix of adv" true (abs_match "/a/b" (syms [ "a"; "b"; "c" ]));
  check cb "xpe longer" false (abs_match "/a/b/c" (syms [ "a"; "b" ]));
  check cb "mismatch" false (abs_match "/a/c" (syms [ "a"; "b" ]))

let test_abs_wildcards () =
  (* Fig. 2(b): wildcards on either side overlap. *)
  check cb "star in xpe" true (abs_match "/*/b" (syms [ "a"; "b" ]));
  check cb "star in adv" true (abs_match "/a/b" (syms [ "a"; "*" ]));
  check cb "stars both" true (abs_match "/*" (syms [ "*" ]));
  check cb "name clash" false (abs_match "/a/b" (syms [ "a"; "c" ]))

let test_abs_paper_example () =
  (* Sec. 3.2: a = /b/*/*/c/c/d, s = /*/c/*/b/c fails at i = 4. *)
  check cb "paper example" false
    (abs_match "/*/c/*/b/c" (syms [ "b"; "*"; "*"; "c"; "c"; "d" ]))

(* ---------------- RelExprAndAdv ---------------- *)

let rel_fast xpe advsyms = Adv_match.rel_expr_and_adv (xp xpe).Xpe.steps advsyms

let test_rel_basic () =
  check cb "at start" true (rel_fast "a/b" (syms [ "a"; "b"; "c" ]));
  check cb "in middle" true (rel_fast "b/c" (syms [ "a"; "b"; "c" ]));
  check cb "at end" true (rel_fast "c" (syms [ "a"; "b"; "c" ]));
  check cb "absent" false (rel_fast "d" (syms [ "a"; "b"; "c" ]));
  check cb "non contiguous" false (rel_fast "a/c" (syms [ "a"; "b"; "c" ]))

let test_rel_too_long () =
  check cb "longer than adv" false (rel_fast "a/b/c/d" (syms [ "a"; "b"; "c" ]))

let test_rel_wildcard_nontransitive () =
  (* Cases where textbook KMP borders mislead: wildcard borders. *)
  check cb "a*ab window" true (rel_fast "a/*/a/b" (syms [ "a"; "c"; "a"; "b" ]));
  check cb "star border" true (rel_fast "*/a" (syms [ "b"; "a" ]));
  check cb "overlapping windows" true (rel_fast "a/*/a" (syms [ "a"; "b"; "a"; "c"; "a" ]));
  check cb "shifted occurrence" true
    (rel_fast "a/a/b" (syms [ "a"; "a"; "a"; "b" ]))

let test_rel_fast_equals_naive_random () =
  (* Randomized cross-check on a tiny alphabet to stress borders. *)
  let prng = Xroute_support.Prng.create 4242 in
  let random_tests n =
    List.init n (fun _ ->
        match Xroute_support.Prng.int prng 3 with 0 -> "*" | 1 -> "a" | _ -> "b")
  in
  for _ = 1 to 3000 do
    let k = 1 + Xroute_support.Prng.int prng 4 in
    let n = 1 + Xroute_support.Prng.int prng 8 in
    let pattern = random_tests k in
    let advsyms = syms (random_tests n) in
    let steps = List.map (fun t -> Xpe.step Xpe.Child (sym t)) pattern in
    let naive = Adv_match.rel_expr_and_adv_naive steps advsyms in
    let fast = Adv_match.rel_expr_and_adv steps advsyms in
    if naive <> fast then
      Alcotest.failf "rel mismatch: pattern=%s adv=%s naive=%b fast=%b"
        (String.concat "/" pattern)
        (String.concat "/" (Array.to_list (Array.map Xpe.test_to_string advsyms)))
        naive fast
  done

(* ---------------- DesExprAndAdv ---------------- *)

let des xpe advsyms = Adv_match.des_expr_and_adv (xp xpe) advsyms

let test_des_paper_example () =
  (* Sec. 3.2: a = /a/*/e/*/d/*/c/b and s = * /a//d/*/c//b. *)
  check cb "paper example" true
    (des "*/a//d/*/c//b" (syms [ "a"; "*"; "e"; "*"; "d"; "*"; "c"; "b" ]))

let test_des_basic () =
  check cb "simple gap" true (des "/a//c" (syms [ "a"; "b"; "c" ]));
  check cb "zero gap" true (des "/a//b" (syms [ "a"; "b" ]));
  check cb "anchored fail" false (des "/b//c" (syms [ "a"; "b"; "c" ]));
  check cb "leading //" true (des "//c" (syms [ "a"; "b"; "c" ]));
  check cb "order matters" false (des "/c//a" (syms [ "a"; "b"; "c" ]))

let test_des_multi_segment () =
  check cb "three segments" true (des "/a//c/d//f" (syms [ "a"; "b"; "c"; "d"; "e"; "f" ]));
  check cb "segment must be contiguous" false (des "/a//c/e" (syms [ "a"; "b"; "c"; "d"; "e" ]))

(* ---------------- Recursive advertisements ---------------- *)

let test_rec_paper_example () =
  (* Sec. 3.3 worked example. *)
  check cb "simple recursive" true
    (Adv_match.overlaps_paper (xp "/*/a/c/*/d/e/d/*") (ad "/a/*/c(/e/d)+/*/c/e"))

let test_rec_basic () =
  check cb "one rep" true (Adv_match.overlaps_paper (xp "/a/b/c") (ad "/a(/b)+/c"));
  check cb "needs reps" true (Adv_match.overlaps_paper (xp "/a/b/b/b/b/c") (ad "/a(/b)+/c"));
  check cb "wrong tail" false (Adv_match.overlaps_paper (xp "/a/b/d/x") (ad "/a(/b)+/c"));
  check cb "series" true (Adv_match.overlaps_paper (xp "/a/b/b/c/c/d") (ad "/a(/b)+(/c)+/d"));
  check cb "embedded" true (Adv_match.overlaps_paper (xp "/r/a/b/b/a/b") (ad "/r(/a(/b)+)+"))

let test_rec_relative_and_desc () =
  check cb "relative vs recursive" true (Adv_match.overlaps_paper (xp "b/c") (ad "/a(/b)+/c"));
  check cb "descendant vs recursive" true (Adv_match.overlaps_paper (xp "/a//c") (ad "/a(/b)+/c"));
  check cb "descendant no fit" false (Adv_match.overlaps_paper (xp "/a//q") (ad "/a(/b)+/c"))

(* ---------------- Paper engine vs exact oracle ---------------- *)

let test_paper_engine_equals_oracle () =
  let prng = Xroute_support.Prng.create 777 in
  let alphabet = [| "a"; "b"; "c" |] in
  let random_xpe () =
    let len = 1 + Xroute_support.Prng.int prng 4 in
    let relative = Xroute_support.Prng.bernoulli prng 0.25 in
    let steps =
      List.init len (fun i ->
          let test =
            if Xroute_support.Prng.bernoulli prng 0.3 then Xpe.Star
            else Xpe.Name (Xroute_support.Symbol.intern (Xroute_support.Prng.choose prng alphabet))
          in
          let axis =
            if i = 0 && relative then Xpe.Child
            else if Xroute_support.Prng.bernoulli prng 0.25 then Xpe.Desc
            else Xpe.Child
          in
          Xpe.step axis test)
    in
    Xpe.make ~relative steps
  in
  let random_adv () =
    let seg () =
      let len = 1 + Xroute_support.Prng.int prng 2 in
      Adv.Lit
        (Array.init len (fun _ ->
             if Xroute_support.Prng.bernoulli prng 0.2 then Xpe.Star
             else Xpe.Name (Xroute_support.Symbol.intern (Xroute_support.Prng.choose prng alphabet))))
    in
    let parts =
      List.concat
        (List.init
           (1 + Xroute_support.Prng.int prng 2)
           (fun _ ->
             if Xroute_support.Prng.bernoulli prng 0.4 then [ Adv.Group [ seg () ] ]
             else [ seg () ]))
    in
    Adv.make parts
  in
  for _ = 1 to 1500 do
    let xpe = random_xpe () and adv = random_adv () in
    let paper = Adv_match.overlaps_paper xpe adv in
    let exact = Adv_match.overlaps_exact xpe adv in
    if paper <> exact then
      Alcotest.failf "engine mismatch: xpe=%s adv=%s paper=%b exact=%b" (Xpe.to_string xpe)
        (Adv.to_string adv) paper exact
  done

let test_overlaps_dispatcher () =
  check cb "default engine" true (Adv_match.overlaps (xp "/a") (ad "/a/b"));
  check cb "exact engine" true (Adv_match.overlaps ~engine:Adv_match.Exact (xp "/a") (ad "/a/b"))

let test_length_precondition () =
  (* Publications have exactly the advertisement's length, so a longer
     XPE can never match (Sec. 3.2 observation). *)
  check cb "longer xpe" false (Adv_match.overlaps_paper (xp "/a/b/c") (ad "/a/b"));
  check cb "equal ok" true (Adv_match.overlaps_paper (xp "/a/b") (ad "/a/b"))

let () =
  Alcotest.run "adv_match"
    [
      ( "abs",
        [
          Alcotest.test_case "basic" `Quick test_abs_basic;
          Alcotest.test_case "wildcards" `Quick test_abs_wildcards;
          Alcotest.test_case "paper example" `Quick test_abs_paper_example;
        ] );
      ( "rel",
        [
          Alcotest.test_case "basic" `Quick test_rel_basic;
          Alcotest.test_case "too long" `Quick test_rel_too_long;
          Alcotest.test_case "wildcard borders" `Quick test_rel_wildcard_nontransitive;
          Alcotest.test_case "fast = naive (random)" `Quick test_rel_fast_equals_naive_random;
        ] );
      ( "des",
        [
          Alcotest.test_case "paper example" `Quick test_des_paper_example;
          Alcotest.test_case "basic" `Quick test_des_basic;
          Alcotest.test_case "multi segment" `Quick test_des_multi_segment;
        ] );
      ( "recursive",
        [
          Alcotest.test_case "paper example" `Quick test_rec_paper_example;
          Alcotest.test_case "basic" `Quick test_rec_basic;
          Alcotest.test_case "relative and descendant" `Quick test_rec_relative_and_desc;
        ] );
      ( "engines",
        [
          Alcotest.test_case "paper = oracle (random)" `Slow test_paper_engine_equals_oracle;
          Alcotest.test_case "dispatcher" `Quick test_overlaps_dispatcher;
          Alcotest.test_case "length precondition" `Quick test_length_precondition;
        ] );
    ]
