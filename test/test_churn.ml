(* Seeded churn property test: interleaving subscribe/unsubscribe under
   subscription covering must leave the network delivering exactly what a
   freshly built network with only the surviving subscriptions delivers.

   This pins the unsubscription re-forwarding path (broker.ml): when a
   covering subscription is removed, the broker must re-forward the
   subscriptions it had absorbed, or survivors silently stop receiving
   documents. *)

open Xroute_overlay

let check = Alcotest.check
let ci = Alcotest.int

let xp = Xroute_xpath.Xpe_parser.parse

type op =
  | Sub of int * Xroute_xpath.Xpe.t * int  (* client index, xpe, tag *)
  | Unsub of int * int  (* client index, tag *)

(* A deterministic op script; tags identify subscriptions so the same
   script (or its surviving subset) can be replayed against a different
   network. *)
let gen_script ~seed ~nclients ~nops params =
  let prng = Xroute_support.Prng.create seed in
  let live = Array.make nclients [] in
  let tag = ref 0 in
  let ops = ref [] in
  for _ = 1 to nops do
    let c = Xroute_support.Prng.int prng nclients in
    if live.(c) <> [] && Xroute_support.Prng.bernoulli prng 0.4 then begin
      let k = Xroute_support.Prng.int prng (List.length live.(c)) in
      let victim = List.nth live.(c) k in
      live.(c) <- List.filteri (fun i _ -> i <> k) live.(c);
      ops := Unsub (c, victim) :: !ops
    end
    else begin
      let xpe = Xroute_workload.Xpath_gen.generate_one params prng in
      live.(c) <- live.(c) @ [ !tag ];
      ops := Sub (c, xpe, !tag) :: !ops;
      incr tag
    end
  done;
  (List.rev !ops, live)

(* Run [ops] (settling the network between operations), publish [docs],
   and return each subscriber's sorted delivered doc-id list. *)
let deliveries_with ?strategy ~seed ~advs ops docs =
  let strategy =
    match strategy with
    | Some s -> s
    | None -> Option.get (Xroute_core.Broker.strategy_of_name "with-Adv-with-Cov")
  in
  let net =
    Net.create ~config:{ Net.default_config with Net.strategy; seed } (Topology.line 3)
  in
  let publisher = Net.add_client net ~broker:0 in
  let subscribers = [| Net.add_client net ~broker:1; Net.add_client net ~broker:2 |] in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  let ids = Hashtbl.create 64 in
  List.iter
    (fun op ->
      (match op with
      | Sub (c, xpe, t) -> Hashtbl.replace ids t (Net.subscribe net subscribers.(c) xpe)
      | Unsub (c, t) -> Net.unsubscribe net subscribers.(c) (Hashtbl.find ids t));
      Net.run net)
    ops;
  List.iteri (fun i doc -> ignore (Net.publish_doc net publisher ~doc_id:i doc)) docs;
  Net.run net;
  Array.to_list subscribers
  |> List.map (fun (c : Net.client) ->
         List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) c.Net.delivered []))

let run_round seed =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let advs = Xroute_dtd.Dtd_paths.advertisements (Xroute_dtd.Dtd_graph.build dtd) in
  let params = Xroute_workload.Workload.set_a_params dtd in
  let ops, live = gen_script ~seed ~nclients:2 ~nops:40 params in
  let survivors =
    List.filter_map
      (function
        | Sub (c, xpe, t) when List.mem t live.(c) -> Some (Sub (c, xpe, t))
        | _ -> None)
      ops
  in
  let unsubs =
    List.length (List.filter (function Unsub _ -> true | Sub _ -> false) ops)
  in
  let docs = Xroute_workload.Workload.documents ~dtd ~count:12 ~seed:(seed + 1000) () in
  let churned = deliveries_with ~seed ~advs ops docs in
  let fresh = deliveries_with ~seed ~advs survivors docs in
  if churned <> fresh then
    Alcotest.failf "seed %d: churned deliveries differ from fresh-survivor deliveries" seed;
  unsubs

(* The NFA match engine must be invisible in delivery terms: under
   every strategy, a churned network routing publications through the
   automaton delivers byte-identically to one matching on the flat /
   covering tree. *)
let test_nfa_engine_all_strategies () =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let advs = Xroute_dtd.Dtd_paths.advertisements (Xroute_dtd.Dtd_graph.build dtd) in
  let params = Xroute_workload.Workload.set_a_params dtd in
  List.iter
    (fun name ->
      let base = Option.get (Xroute_core.Broker.strategy_of_name name) in
      let seed = 17 in
      let ops, _live = gen_script ~seed ~nclients:2 ~nops:30 params in
      let docs = Xroute_workload.Workload.documents ~dtd ~count:8 ~seed:(seed + 1000) () in
      let via_nfa =
        deliveries_with
          ~strategy:{ base with Xroute_core.Broker.match_engine = Xroute_core.Rtable.Prt.Nfa }
          ~seed ~advs ops docs
      in
      let via_tree =
        deliveries_with
          ~strategy:{ base with Xroute_core.Broker.match_engine = Xroute_core.Rtable.Prt.Tree }
          ~seed ~advs ops docs
      in
      if via_nfa <> via_tree then
        Alcotest.failf "strategy %s: NFA engine deliveries differ from tree engine" name)
    Xroute_core.Broker.strategy_names

let test_churn_equals_fresh () =
  let total_unsubs = ref 0 in
  for seed = 1 to 6 do
    total_unsubs := !total_unsubs + run_round seed
  done;
  (* the property is vacuous if the scripts never unsubscribe *)
  check Alcotest.bool "scripts exercised unsubscription" true (!total_unsubs > 0)

(* Deterministic core of the property: removing a covering subscription
   must re-forward the covered survivor upstream. *)
let test_reforward_after_cover_removal () =
  let strategy = Option.get (Xroute_core.Broker.strategy_of_name "with-Adv-with-Cov") in
  let net = Net.create ~config:{ Net.default_config with Net.strategy } (Topology.line 3) in
  let publisher = Net.add_client net ~broker:0 in
  let s = Net.add_client net ~broker:2 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/x/y"));
  Net.run net;
  let cover = Net.subscribe net s (xp "/x") in
  Net.run net;
  ignore (Net.subscribe net s (xp "/x/y"));
  Net.run net;
  Net.unsubscribe net s cover;
  Net.run net;
  ignore
    (Net.publish_doc net publisher ~doc_id:1 (Xroute_xml.Xml_parser.parse "<x><y/></x>"));
  Net.run net;
  check ci "covered survivor still delivered" 1 (Hashtbl.length s.Net.delivered)

let () =
  Alcotest.run "churn"
    [
      ( "covering churn",
        [
          Alcotest.test_case "re-forward after cover removal" `Quick
            test_reforward_after_cover_removal;
          Alcotest.test_case "interleaved equals fresh survivors" `Quick
            test_churn_equals_fresh;
          Alcotest.test_case "NFA engine identical under all strategies" `Quick
            test_nfa_engine_all_strategies;
        ] );
    ]
