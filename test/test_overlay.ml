(* Tests for the overlay simulator: topologies, the event engine, the
   latency models, and end-to-end delivery over small networks. *)

open Xroute_overlay

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let xp = Xroute_xpath.Xpe_parser.parse

(* ---------------- Topology ---------------- *)

let test_binary_tree_7 () =
  let t = Topology.binary_tree ~levels:3 in
  check ci "brokers" 7 (Topology.broker_count t);
  check ci "edges" 6 (List.length (Topology.edges t));
  check (Alcotest.list ci) "root neighbors" [ 1; 2 ] (Topology.neighbors t 0);
  check cb "connected" true (Topology.is_connected t);
  check (Alcotest.list ci) "leaves" [ 3; 4; 5; 6 ] (Topology.binary_tree_leaves ~levels:3)

let test_binary_tree_127 () =
  let t = Topology.binary_tree ~levels:7 in
  check ci "brokers" 127 (Topology.broker_count t);
  check ci "leaves" 64 (List.length (Topology.binary_tree_leaves ~levels:7));
  check cb "connected" true (Topology.is_connected t);
  check ci "leaf to leaf diameter" 12 (Topology.distance t 63 126)

let test_line_and_star () =
  let l = Topology.line 5 in
  check ci "line distance" 4 (Topology.distance l 0 4);
  check ci "line diameter" 4 (Topology.diameter l);
  let s = Topology.star 5 in
  check ci "star diameter" 2 (Topology.diameter s);
  check ci "hub degree" 4 (List.length (Topology.neighbors s 0))

let test_path () =
  let t = Topology.binary_tree ~levels:3 in
  check (Alcotest.list ci) "path 3 to 4" [ 3; 1; 4 ] (Topology.path t 3 4);
  check (Alcotest.list ci) "self" [ 2 ] (Topology.path t 2 2)

let test_random_tree_connected () =
  let prng = Xroute_support.Prng.create 11 in
  for _ = 1 to 10 do
    let t = Topology.random_tree prng 20 in
    check cb "connected" true (Topology.is_connected t);
    check ci "tree edges" 19 (List.length (Topology.edges t))
  done

let test_bad_edges_rejected () =
  Alcotest.check_raises "out of range" (Invalid_argument "Topology.build: edge out of range")
    (fun () -> ignore (Topology.build 2 [ (0, 5) ]))

(* ---------------- Sim ---------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log);
  Sim.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log);
  Sim.run sim;
  check (Alcotest.list ci) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last" 3.0 (Sim.now sim)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  check (Alcotest.list ci) "insertion order on ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_sim_cascading () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n = if n > 0 then Sim.schedule sim ~delay:1.0 (fun () -> incr count; chain (n - 1)) in
  chain 5;
  Sim.run sim;
  check ci "all ran" 5 !count;
  check (Alcotest.float 1e-9) "time accumulated" 5.0 (Sim.now sim)

let test_sim_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      Sim.schedule sim ~delay:(-1.0) ignore)

let test_sim_budget () =
  let sim = Sim.create () in
  let rec forever () = Sim.schedule sim ~delay:1.0 forever in
  forever ();
  (try
     Sim.run ~max_events:100 sim;
     Alcotest.fail "expected budget exhaustion"
   with Failure _ -> ())

(* ---------------- Latency ---------------- *)

let test_latency_models () =
  let prng = Xroute_support.Prng.create 3 in
  let topo = Topology.line 4 in
  let table = Latency.assign Latency.planetlab prng topo in
  List.iter
    (fun (a, b) ->
      let d = Latency.link_delay Latency.planetlab table prng a b in
      check cb "positive" true (d > 0.0);
      check cb "capped with jitter" true (d < 7.0))
    (Topology.edges topo);
  let const = Latency.constant 1.5 in
  let table' = Latency.assign const prng topo in
  check (Alcotest.float 1e-9) "constant" 1.5 (Latency.link_delay const table' prng 0 1)

(* ---------------- Net: end-to-end ---------------- *)

let simple_net strategy =
  let topo = Topology.line 3 in
  Net.create ~config:{ Net.default_config with Net.strategy } topo

let test_net_basic_delivery () =
  let net = simple_net Xroute_core.Broker.default_strategy in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:2 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/b"));
  Net.run net;
  ignore (Net.subscribe net subscriber (xp "/a"));
  Net.run net;
  let doc = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  ignore (Net.publish_doc net publisher ~doc_id:1 doc);
  Net.run net;
  check ci "delivered" 1 (Net.total_deliveries net);
  check cb "delay recorded" true (Net.mean_delivery_delay net > 0.0)

let test_net_no_delivery_without_match () =
  let net = simple_net Xroute_core.Broker.default_strategy in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:2 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/b"));
  Net.run net;
  ignore (Net.subscribe net subscriber (xp "/zzz"));
  Net.run net;
  ignore (Net.publish_doc net publisher ~doc_id:1 (Xroute_xml.Xml_parser.parse "<a><b/></a>"));
  Net.run net;
  check ci "nothing delivered" 0 (Net.total_deliveries net)

let test_net_publisher_not_self_notified () =
  let net = simple_net Xroute_core.Broker.default_strategy in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:0 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a"));
  ignore (Net.subscribe net subscriber (xp "/a"));
  Net.run net;
  ignore (Net.publish_doc net publisher ~doc_id:9 (Xroute_xml.Xml_parser.parse "<a/>"));
  Net.run net;
  check ci "one delivery (subscriber only)" 1 (Net.total_deliveries net)

let test_net_delay_grows_with_hops () =
  (* Same subscription at distance 1 vs distance 5 on a line. *)
  let topo = Topology.line 6 in
  let config = { Net.default_config with Net.latency = Latency.constant 1.0 } in
  let net = Net.create ~config topo in
  let publisher = Net.add_client net ~broker:0 in
  let near = Net.add_client net ~broker:1 in
  let far = Net.add_client net ~broker:5 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a"));
  Net.run net;
  ignore (Net.subscribe net near (xp "/a"));
  ignore (Net.subscribe net far (xp "/a"));
  Net.run net;
  ignore (Net.publish_doc net publisher ~doc_id:1 (Xroute_xml.Xml_parser.parse "<a/>"));
  Net.run net;
  let delays = Net.delivery_delays net in
  check ci "two deliveries" 2 (List.length delays);
  let delay_of cid =
    match List.find_opt (fun (c, _, _) -> c = cid) delays with
    | Some (_, _, d) -> d
    | None -> Alcotest.failf "no delay for client %d" cid
  in
  let (_ : Net.client) = near in
  check cb "far slower" true (delay_of 2 > delay_of 1 +. 3.0)

(* Cross-strategy delivery equivalence: every strategy must deliver the
   same documents to the same clients. *)
let test_strategies_equivalent_deliveries () =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.insurance in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let docs = Xroute_workload.Workload.documents ~dtd ~count:8 ~seed:77 () in
  let run_strategy name =
    let strategy = Option.get (Xroute_core.Broker.strategy_of_name name) in
    let topo = Topology.binary_tree ~levels:3 in
    let net = Net.create ~config:{ Net.default_config with Net.strategy } topo in
    let publisher = Net.add_client net ~broker:0 in
    let leaves = Topology.binary_tree_leaves ~levels:3 in
    let clients = List.map (fun b -> Net.add_client net ~broker:b) leaves in
    ignore (Net.advertise_dtd net publisher advs);
    Net.run net;
    let prng = Xroute_support.Prng.create 909 in
    let params = Xroute_workload.Xpath_gen.default_params dtd in
    List.iter
      (fun c ->
        List.iter
          (fun x -> ignore (Net.subscribe net c x))
          (Xroute_workload.Xpath_gen.generate params prng ~count:15))
      clients;
    Net.run net;
    Net.set_universe net (Xroute_dtd.Dtd_paths.enumerate_paths ~max_depth:10 ~max_count:3000 graph);
    Net.merge_all net;
    List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
    Net.run net;
    (* deliveries as a sorted (client, doc) list *)
    List.concat_map
      (fun (c : Net.client) ->
        Hashtbl.fold (fun doc _ acc -> (c.Net.cid, doc) :: acc) c.Net.delivered [])
      (Net.clients net)
    |> List.sort compare
  in
  let reference = run_strategy "no-Adv-no-Cov" in
  check cb "reference delivers something" true (reference <> []);
  List.iter
    (fun name ->
      let got = run_strategy name in
      if got <> reference then
        Alcotest.failf "strategy %s delivers differently (%d vs %d deliveries)" name
          (List.length got) (List.length reference))
    Xroute_core.Broker.strategy_names

let test_traffic_ordering () =
  (* Advertising and covering should not increase total traffic. *)
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.psd in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let traffic name =
    let strategy = Option.get (Xroute_core.Broker.strategy_of_name name) in
    let topo = Topology.binary_tree ~levels:3 in
    let net = Net.create ~config:{ Net.default_config with Net.strategy } topo in
    let publisher = Net.add_client net ~broker:0 in
    let leaves = Topology.binary_tree_leaves ~levels:3 in
    let clients = List.map (fun b -> Net.add_client net ~broker:b) leaves in
    ignore (Net.advertise_dtd net publisher advs);
    Net.run net;
    let prng = Xroute_support.Prng.create 4321 in
    let params = Xroute_workload.Workload.set_a_params dtd in
    List.iter
      (fun c ->
        List.iter
          (fun x -> ignore (Net.subscribe net c x))
          (Xroute_workload.Xpath_gen.generate params prng ~count:60))
      clients;
    Net.run net;
    let docs = Xroute_workload.Workload.documents ~dtd ~count:5 ~seed:1 () in
    List.iteri (fun i d -> ignore (Net.publish_doc net publisher ~doc_id:i d)) docs;
    Net.run net;
    Net.total_traffic net
  in
  let base = traffic "no-Adv-no-Cov" in
  let cov = traffic "no-Adv-with-Cov" in
  let adv_cov = traffic "with-Adv-with-Cov" in
  check cb "covering reduces traffic" true (cov < base);
  check cb "advertising+covering reduces traffic" true (adv_cov < base)

let test_dropped_pubs_with_merging () =
  (* Imperfect merging may push publications to brokers with no true
     match; those are counted, and clients see no false positives
     (delivery equivalence already guarantees that). *)
  let net = simple_net { Xroute_core.Broker.default_strategy with
                         Xroute_core.Broker.merging = Xroute_core.Broker.Imperfect 0.5;
                         use_adv = false } in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:2 in
  Net.set_universe net
    (List.map (fun s -> Array.of_list (String.split_on_char '/' s))
       [ "a/b"; "a/c"; "a/d" ]);
  ignore (Net.subscribe net subscriber (xp "/a/b"));
  ignore (Net.subscribe net subscriber (xp "/a/c"));
  Net.run net;
  Net.merge_all net;
  ignore (Net.publish_doc net publisher ~doc_id:1 (Xroute_xml.Xml_parser.parse "<a><d/></a>"));
  Net.run net;
  check ci "no client delivery of false positive" 0 (Net.total_deliveries net);
  check cb "dropped counted in network" true (Net.dropped_publications net >= 1)

(* ---------------- Net: link faults ---------------- *)

(* Duplicating and delaying links may deliver broker-to-broker copies
   twice and late, but the client-side accounting must not double-count:
   one [delivered] entry, one [total_deliveries] tick and one
   [delivery_delays] record per (client, document). *)
let test_dup_and_delay_no_double_count () =
  let module Plan = Xroute_fault.Plan in
  let config = { Net.default_config with Net.latency = Latency.constant 1.0 } in
  let net = Net.create ~config (Topology.line 3) in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:2 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/b"));
  Net.run net;
  ignore (Net.subscribe net subscriber (xp "/a"));
  Net.run net;
  (* both windows open from t=0 and outlast the whole run *)
  Net.install_plan net
    {
      Plan.seed = 0;
      horizon = 1e6;
      events =
        [
          Plan.Link_dup { a = 0; b = 1; at = 0.0; down_for = 1e6 };
          Plan.Link_delay { a = 1; b = 2; at = 0.0; down_for = 1e6; extra_ms = 5.0 };
        ];
    };
  Net.run net;
  let doc = Xroute_xml.Xml_parser.parse "<a><b/></a>" in
  for i = 1 to 3 do
    ignore (Net.publish_doc net publisher ~doc_id:i doc)
  done;
  Net.run net;
  let st = Net.fault_stats net in
  check cb "duplicates actually produced" true (st.Net.dup_deliveries > 0);
  check ci "one delivery per document" 3 (Net.total_deliveries net);
  check ci "client delivered set not inflated" 3 (Hashtbl.length subscriber.Net.delivered);
  check ci "one delay record per (client, doc)" 3 (List.length (Net.delivery_delays net));
  List.iter
    (fun (_, _, d) -> check cb "slow link delay applied" true (d >= 5.0))
    (Net.delivery_delays net)

(* Publications that die at a crashed broker are reported as dropped,
   not silently lost: exact counts pinned. *)
let test_crash_drop_accounting () =
  let config = { Net.default_config with Net.latency = Latency.constant 1.0 } in
  let net = Net.create ~config (Topology.line 3) in
  let publisher = Net.add_client net ~broker:0 in
  let subscriber = Net.add_client net ~broker:2 in
  ignore (Net.advertise net publisher (Xroute_xpath.Adv.parse "/a/b"));
  Net.run net;
  ignore (Net.subscribe net subscriber (xp "/a"));
  Net.run net;
  check ci "nothing dropped before the crash" 0 (Net.dropped_publications net);
  Net.crash_broker net 1;
  let paths =
    Net.publish_doc net publisher ~doc_id:1 (Xroute_xml.Xml_parser.parse "<a><b/></a>")
  in
  Net.run net;
  (* every path publication is forwarded by broker 0 and dies at dead
     broker 1; nothing reaches the subscriber *)
  check ci "no delivery through the dead broker" 0 (Net.total_deliveries net);
  let st = Net.fault_stats net in
  check ci "each path pub destroyed exactly once" paths st.Net.destroyed_pubs;
  check ci "destroyed counts only the path pubs" paths st.Net.destroyed;
  check ci "dropped_publications reports the crash losses" paths (Net.dropped_publications net);
  (* after recovery the same document goes through *)
  Net.restart_broker net 1;
  Net.run net;
  ignore (Net.publish_doc net publisher ~doc_id:2 (Xroute_xml.Xml_parser.parse "<a><b/></a>"));
  Net.run net;
  check ci "delivery resumes after restart" 1 (Net.total_deliveries net);
  check ci "dropped count unchanged by the healthy publish" paths (Net.dropped_publications net)

let () =
  Alcotest.run "overlay"
    [
      ( "topology",
        [
          Alcotest.test_case "binary tree 7" `Quick test_binary_tree_7;
          Alcotest.test_case "binary tree 127" `Quick test_binary_tree_127;
          Alcotest.test_case "line and star" `Quick test_line_and_star;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "random tree" `Quick test_random_tree_connected;
          Alcotest.test_case "bad edges" `Quick test_bad_edges_rejected;
        ] );
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "cascading" `Quick test_sim_cascading;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay;
          Alcotest.test_case "budget" `Quick test_sim_budget;
        ] );
      ("latency", [ Alcotest.test_case "models" `Quick test_latency_models ]);
      ( "net",
        [
          Alcotest.test_case "basic delivery" `Quick test_net_basic_delivery;
          Alcotest.test_case "no false delivery" `Quick test_net_no_delivery_without_match;
          Alcotest.test_case "publisher excluded" `Quick test_net_publisher_not_self_notified;
          Alcotest.test_case "delay grows with hops" `Quick test_net_delay_grows_with_hops;
          Alcotest.test_case "strategies deliver identically" `Slow test_strategies_equivalent_deliveries;
          Alcotest.test_case "traffic ordering" `Slow test_traffic_ordering;
          Alcotest.test_case "merging false positives" `Quick test_dropped_pubs_with_merging;
          Alcotest.test_case "dup/delay links don't double-count" `Quick
            test_dup_and_delay_no_double_count;
          Alcotest.test_case "crash drop accounting" `Quick test_crash_drop_accounting;
        ] );
    ]
