(* Tests for the hash-consed symbol table: interning properties, the
   two orderings, a seeded stress run, and determinism with respect to
   which thread created a symbol. The table is global and append-only,
   so the tests assert relations between symbols, never absolute ids. *)

open Xroute_support

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let test_intern_roundtrip () =
  let a = Symbol.intern "elem-roundtrip" in
  check cs "name inverts intern" "elem-roundtrip" (Symbol.name a);
  let b = Symbol.intern "elem-roundtrip" in
  check cb "same string, same symbol" true (Symbol.equal a b);
  check ci "same id" (Symbol.id a) (Symbol.id b);
  check ci "compare 0" 0 (Symbol.compare a b);
  check ci "compare_name 0" 0 (Symbol.compare_name a b)

let test_distinct_strings_distinct_symbols () =
  let a = Symbol.intern "distinct-one" in
  let b = Symbol.intern "distinct-two" in
  check cb "distinct symbols" false (Symbol.equal a b);
  check cb "distinct ids" false (Symbol.id a = Symbol.id b);
  check cb "hash of equal symbols agrees" true (Symbol.hash a = Symbol.hash (Symbol.intern "distinct-one"))

let test_find () =
  check cb "absent before intern" true (Symbol.find "never-interned-name" = None);
  let a = Symbol.intern "found-after-intern" in
  (match Symbol.find "found-after-intern" with
  | Some b -> check cb "find returns the interned symbol" true (Symbol.equal a b)
  | None -> Alcotest.fail "find lost an interned name")

(* compare_name must order by the original strings whatever order the
   symbols were created in — it is the ordering routing decisions are
   allowed to observe. *)
let test_compare_name_is_creation_order_free () =
  (* intern in reverse lexicographic order on purpose *)
  let z = Symbol.intern "order-zz" in
  let m = Symbol.intern "order-mm" in
  let a = Symbol.intern "order-aa" in
  check cb "aa < mm" true (Symbol.compare_name a m < 0);
  check cb "mm < zz" true (Symbol.compare_name m z < 0);
  check cb "aa < zz" true (Symbol.compare_name a z < 0);
  (* creation order says the opposite *)
  check cb "creation order differs" true (Symbol.compare z a < 0);
  let sorted = List.sort Symbol.compare_name [ z; a; m ] in
  check
    (Alcotest.list cs)
    "sort by compare_name = sort by String.compare"
    [ "order-aa"; "order-mm"; "order-zz" ]
    (List.map Symbol.name sorted)

let test_intern_path () =
  let path = [| "ip-a"; "ip-b"; "ip-a"; "ip-c" |] in
  let syms = Symbol.intern_path path in
  check ci "length preserved" (Array.length path) (Array.length syms);
  Array.iteri (fun i s -> check cs "elementwise round trip" path.(i) (Symbol.name s)) syms;
  check cb "repeats share the symbol" true (Symbol.equal syms.(0) syms.(2))

(* Seeded 10k-name stress: intern everything, then re-intern in a
   different order and confirm ids are stable, names round-trip, and
   distinct names stayed distinct. *)
let test_stress_10k () =
  let prng = Prng.create 987123 in
  let n = 10_000 in
  let names =
    Array.init n (fun i -> Printf.sprintf "stress-%d-%d" i (Prng.int prng 1_000_000))
  in
  let before = Symbol.count () in
  let syms = Array.map Symbol.intern names in
  check cb "count grew by at most n" true (Symbol.count () - before <= n);
  Array.iteri (fun i s -> if Symbol.name s <> names.(i) then Alcotest.failf "round trip lost %s" names.(i)) syms;
  (* re-intern in shuffled order: same symbols *)
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Prng.int prng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  Array.iter
    (fun i ->
      if not (Symbol.equal (Symbol.intern names.(i)) syms.(i)) then
        Alcotest.failf "re-intern moved %s" names.(i))
    order;
  (* distinctness: ids are a permutation-free injection *)
  let ids = Hashtbl.create n in
  let dup = ref 0 in
  let seen_name = Hashtbl.create n in
  Array.iteri
    (fun i s ->
      if not (Hashtbl.mem seen_name names.(i)) then begin
        Hashtbl.add seen_name names.(i) ();
        if Hashtbl.mem ids (Symbol.id s) then incr dup else Hashtbl.add ids (Symbol.id s) ()
      end)
    syms;
  check ci "no two distinct names share an id" 0 !dup

(* Four threads race to intern an overlapping name set, each in its own
   order. Whichever thread created a symbol, every thread must observe
   the same id for the same string, and [name] (lock-free) must answer
   correctly while interning is in flight. *)
let test_thread_determinism () =
  let n = 1_000 in
  let names = Array.init n (Printf.sprintf "thread-sym-%d") in
  let results = Array.init 4 (fun _ -> Array.make n (-1)) in
  let worker t =
    let prng = Prng.create (1000 + t) in
    let order = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Prng.int prng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun i ->
        let s = Symbol.intern names.(i) in
        (* lock-free read while other threads keep interning *)
        if Symbol.name s <> names.(i) then failwith "name raced";
        results.(t).(i) <- Symbol.id s)
      order
  in
  let threads = List.init 4 (fun t -> Thread.create worker t) in
  List.iter Thread.join threads;
  for i = 0 to n - 1 do
    for t = 1 to 3 do
      if results.(t).(i) <> results.(0).(i) then
        Alcotest.failf "threads disagree on %s: %d vs %d" names.(i) results.(0).(i)
          results.(t).(i)
    done
  done;
  (* and the table agrees with all of them *)
  for i = 0 to n - 1 do
    if Symbol.id (Symbol.intern names.(i)) <> results.(0).(i) then
      Alcotest.failf "main thread disagrees on %s" names.(i)
  done

let () =
  Alcotest.run "symbol"
    [
      ( "interning",
        [
          Alcotest.test_case "round trip" `Quick test_intern_roundtrip;
          Alcotest.test_case "distinct" `Quick test_distinct_strings_distinct_symbols;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "compare_name order" `Quick test_compare_name_is_creation_order_free;
          Alcotest.test_case "intern_path" `Quick test_intern_path;
        ] );
      ( "stress",
        [
          Alcotest.test_case "10k names" `Quick test_stress_10k;
          Alcotest.test_case "thread determinism" `Quick test_thread_determinism;
        ] );
    ]
