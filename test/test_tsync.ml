(* Unit tests of the Tsync shim and its cooperative scheduler: the
   production no-op path, deterministic replay, the vector-clock race
   detector (positive and negative), and the bounded-exhaustive +
   random exploration driver. *)

module Tsync = Xroute_support.Tsync
module Sched = Tsync.Sched

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---------------- production path ---------------- *)

(* With no runtime installed the shim is the raw operation. *)
let test_production_noop () =
  check cb "no runtime installed" true (!Tsync.runtime = None);
  let a = Tsync.Atomic.make ~name:"t" 0 in
  Tsync.Atomic.incr a;
  Tsync.Atomic.set a (Tsync.Atomic.get a + 2);
  check cb "cas" true (Tsync.Atomic.compare_and_set a 3 7);
  check ci "fetch_add" 7 (Tsync.Atomic.fetch_and_add a 5);
  check ci "atomic value" 12 (Tsync.Atomic.get a);
  let c = Tsync.Cell.make ~name:"c" "x" in
  Tsync.Cell.set c "y";
  check Alcotest.string "cell" "y" (Tsync.Cell.get c);
  let arr = Tsync.Cells.make ~name:"arr" 4 0 in
  Tsync.Cells.set arr 3 9;
  check ci "cells" 9 (Tsync.Cells.get arr 3);
  check ci "cells length" 4 (Tsync.Cells.length arr)

(* ---------------- scheduler determinism ---------------- *)

let two_counters () =
  let a = Tsync.Atomic.make ~name:"a" 0 in
  let b = Tsync.Atomic.make ~name:"b" 0 in
  [|
    (fun () ->
      for _ = 1 to 3 do
        Tsync.Atomic.incr a
      done);
    (fun () ->
      for _ = 1 to 3 do
        Tsync.Atomic.incr b
      done);
  |]

let test_run_deterministic () =
  let r1 = Sched.run (two_counters ()) in
  let r2 = Sched.run (two_counters ()) in
  check Alcotest.string "same schedule"
    (Sched.schedule_to_string r1.schedule)
    (Sched.schedule_to_string r2.schedule);
  check ci "same steps" r1.steps r2.steps;
  check cb "no error" true (r1.error = None);
  check ci "no races" 0 (List.length r1.races)

let test_run_prefix_respected () =
  (* Forcing thread 1 first must be visible in the decision trace. *)
  let r = Sched.run ~prefix:[ 1; 1; 1 ] (two_counters ()) in
  (match r.schedule with
  | 1 :: 1 :: 1 :: _ -> ()
  | s -> Alcotest.failf "prefix not honored: %s" (Sched.schedule_to_string s));
  check cb "completes" true (r.error = None)

(* ---------------- race detection ---------------- *)

(* Two threads bump one plain cell with no synchronization at all:
   every schedule has an unordered pair. *)
let racy () =
  let c = Tsync.Cell.make ~name:"racy.cell" 0 in
  [|
    (fun () -> Tsync.Cell.set c (Tsync.Cell.get c + 1));
    (fun () -> Tsync.Cell.set c (Tsync.Cell.get c + 1));
  |]

let test_race_detected () =
  let r = Sched.run (racy ()) in
  check cb "race reported" true (List.length r.races > 0);
  let race = List.hd r.races in
  check Alcotest.string "location named" "racy.cell" race.Sched.race_loc

(* Message-passing done right: A writes the cell, then releases via the
   atomic flag; B spins acquiring the flag, then reads the cell. The
   release/acquire edge orders the plain accesses in every schedule. *)
let flag_sync () =
  let c = Tsync.Cell.make ~name:"sync.cell" 0 in
  let flag = Tsync.Atomic.make ~name:"sync.flag" false in
  let got = ref (-1) in
  let check_inv () = if !got <> 42 then failwith "message lost" in
  ( [|
      (fun () ->
        Tsync.Cell.set c 42;
        Tsync.Atomic.set flag true);
      (fun () ->
        while not (Tsync.Atomic.get flag) do
          ()
        done;
        got := Tsync.Cell.get c);
    |],
    check_inv )

let test_sync_no_false_positive () =
  let e = Sched.explore ~depth:8 ~random:50 ~mk:flag_sync () in
  check ci "no race on any schedule" 0 (List.length e.Sched.race_witnesses);
  check ci "no failures" 0 (List.length e.Sched.failure_witnesses);
  check cb "explored more than one schedule" true (e.Sched.distinct > 1)

let test_explore_finds_race () =
  let e = Sched.explore ~depth:6 ~random:10 ~mk:(fun () -> (racy (), fun () -> ())) () in
  check cb "race witnessed" true (List.length e.Sched.race_witnesses > 0)

(* ---------------- failure capture ---------------- *)

let test_thread_exception_captured () =
  let r = Sched.run [| (fun () -> failwith "boom") |] in
  match r.error with
  | Some msg -> check cb "message kept" true (String.length msg > 0)
  | None -> Alcotest.fail "thread exception swallowed"

let test_invariant_failure_witnessed () =
  (* Witnesses are deduplicated by diagnosis: an invariant that always
     fails the same way yields exactly one witness, however many
     schedules reproduce it. *)
  let mk () = (two_counters (), fun () -> failwith "always") in
  let e = Sched.explore ~depth:3 ~random:0 ~mk () in
  check cb "several schedules explored" true (e.Sched.distinct >= 8);
  check ci "one witness for one diagnosis" 1 (List.length e.Sched.failure_witnesses)

(* ---------------- exploration accounting ---------------- *)

let test_explore_counts () =
  let e = Sched.explore ~depth:5 ~random:25 ~seed:7 ~mk:(fun () -> (two_counters (), fun () -> ())) () in
  (* 2 always-runnable threads, depth 5: the DFS alone covers 2^5
     distinct prefixes; randoms may add a few beyond-depth variants. *)
  check cb "DFS coverage" true (e.Sched.distinct >= 32);
  check cb "steps accumulate" true (e.Sched.total_steps > e.Sched.distinct);
  let e2 = Sched.explore ~depth:5 ~random:25 ~seed:7 ~mk:(fun () -> (two_counters (), fun () -> ())) () in
  check ci "exploration deterministic" e.Sched.distinct e2.Sched.distinct;
  check ci "steps deterministic" e.Sched.total_steps e2.Sched.total_steps

let () =
  Alcotest.run "tsync"
    [
      ( "tsync",
        [
          Alcotest.test_case "production ops are raw" `Quick test_production_noop;
          Alcotest.test_case "run is deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "prefix honored" `Quick test_run_prefix_respected;
          Alcotest.test_case "unsynced cell races" `Quick test_race_detected;
          Alcotest.test_case "release/acquire orders" `Quick test_sync_no_false_positive;
          Alcotest.test_case "explore finds the race" `Quick test_explore_finds_race;
          Alcotest.test_case "thread exception captured" `Quick test_thread_exception_captured;
          Alcotest.test_case "invariant failure witnessed" `Quick test_invariant_failure_witnessed;
          Alcotest.test_case "exploration accounting" `Quick test_explore_counts;
        ] );
    ]
