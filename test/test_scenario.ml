(* Scenario-engine regression: determinism (same seed + spec => same
   delivery ledger, fault accounting, and per-broker next-hop decisions
   across independent runs) and the heap-vs-list queue differential that
   backs the million-client numbers. Runs at smoke scale — correctness
   of the engine, not its throughput. *)

open Xroute_workload

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* Small but non-trivial: enough clients for batching to kick in (three
   generator rounds at batch=64). *)
let small kind =
  {
    Scenario.kind;
    clients = 160;
    docs = 6;
    levels = 3;
    xpes = 24;
    batch = 64;
    rounds = 2;
    channels = 4;
    dtd = "book";
    seed = 11;
    zipf = None;
  }

(* ---------------- spec parsing ---------------- *)

let test_spec_roundtrip () =
  List.iter
    (fun kind ->
      let spec = { (small kind) with Scenario.seed = 99 } in
      match Scenario.spec_of_string (Scenario.spec_to_string spec) with
      | Ok parsed -> check cb "spec round-trips" true (parsed = spec)
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    Scenario.all_kinds

let test_spec_parse_partial () =
  match Scenario.spec_of_string "kind=churn,clients=5000,seed=7" with
  | Ok s ->
    check cb "kind" true (s.Scenario.kind = Scenario.Churn);
    check ci "clients" 5000 s.Scenario.clients;
    check ci "seed" 7 s.Scenario.seed;
    check ci "docs defaulted" Scenario.default_spec.Scenario.docs s.Scenario.docs
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_spec_parse_errors () =
  let bad s =
    match Scenario.spec_of_string s with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" s
    | Error _ -> ()
  in
  bad "kind=tsunami";
  bad "clients=-1";
  bad "levels=1";
  bad "dtd=notadtd";
  bad "frobnicate=3";
  bad "clients";
  bad "zipf=-0.5";
  bad "zipf=17";
  bad "zipf=steep"

(* The zipf key: parses, round-trips through the spec string, and stays
   absent from specs that never set it (so pre-PR-9 spec strings are
   reproduced byte-identically). *)
let test_spec_zipf_key () =
  (match Scenario.spec_of_string "kind=diurnal,zipf=1.4" with
  | Ok s -> check cb "zipf parsed" true (s.Scenario.zipf = Some 1.4)
  | Error e -> Alcotest.failf "zipf=1.4 rejected: %s" e);
  check cb "default has no zipf" true (Scenario.default_spec.Scenario.zipf = None);
  let spec = { (small Scenario.Diurnal) with Scenario.zipf = Some 2.5 } in
  let printed = Scenario.spec_to_string spec in
  check cb "printed spec carries zipf" true
    (String.length printed > 8
    && String.sub printed (String.length printed - 8) 8 = "zipf=2.5");
  match Scenario.spec_of_string printed with
  | Ok parsed -> check cb "zipf round-trips" true (parsed = spec)
  | Error e -> Alcotest.failf "zipf round-trip failed: %s" e

(* ---------------- scenario sanity ---------------- *)

(* Every kind must actually exercise the network: subscriptions land,
   documents are published, deliveries happen. *)
let test_scenarios_deliver () =
  List.iter
    (fun kind ->
      let spec = small kind in
      let o = Scenario.run spec in
      let name = Scenario.kind_to_string kind in
      check ci (name ^ ": all subscriptions sent")
        (match kind with
        | Scenario.Churn ->
          (* every client subscribes once, churned ones once more *)
          spec.Scenario.clients + o.Scenario.unsubs_sent
        | _ -> spec.Scenario.clients)
        o.Scenario.subs_sent;
      (match kind with
      | Scenario.Churn -> check cb (name ^ ": unsubs happened") true (o.Scenario.unsubs_sent > 0)
      | _ -> check ci (name ^ ": no unsubs") 0 o.Scenario.unsubs_sent);
      check ci (name ^ ": all docs published") spec.Scenario.docs o.Scenario.docs_published;
      check cb (name ^ ": deliveries happened") true (o.Scenario.deliveries > 0);
      check cb (name ^ ": ledger rows captured") true
        (match o.Scenario.ledger with
        | Some a -> Xroute_support.Pool.Arena.length a = o.Scenario.deliveries
        | None -> false);
      check cb (name ^ ": decisions probed") true (o.Scenario.decisions <> []);
      check cb (name ^ ": PRT populated") true (o.Scenario.prt_total > 0))
    Scenario.all_kinds

(* Ledger digest must agree between Full (arena) and Digest (running)
   capture of the same run. *)
let test_ledger_digest_modes_agree () =
  let spec = small Scenario.Flash_crowd in
  let full = Scenario.run ~ledger:`Full spec in
  let digest = Scenario.run ~ledger:`Digest spec in
  check cb "full mode kept the arena" true (full.Scenario.ledger <> None);
  check cb "digest mode dropped the arena" true (digest.Scenario.ledger = None);
  check Alcotest.int64 "running digest = arena digest"
    (Xroute_support.Pool.Arena.digest (Option.get full.Scenario.ledger))
    digest.Scenario.ledger_digest;
  check Alcotest.int64 "outcome digests agree" full.Scenario.ledger_digest
    digest.Scenario.ledger_digest

(* ---------------- determinism ---------------- *)

let ledger_rows o =
  match o.Scenario.ledger with
  | None -> []
  | Some a ->
    let rows = ref [] in
    Xroute_support.Pool.Arena.iter a (fun cid doc time -> rows := (cid, doc, time) :: !rows);
    List.rev !rows

(* Two independent runs of the same spec: identical ledgers (row for
   row), fault stats, and per-broker next-hop decisions. *)
let test_same_seed_identical () =
  List.iter
    (fun kind ->
      let spec = small kind in
      let a = Scenario.run spec in
      let b = Scenario.run spec in
      let name = Scenario.kind_to_string kind in
      check cb (name ^ ": ledgers identical") true (Scenario.equal_ledgers a b);
      check cb (name ^ ": ledger rows identical") true (ledger_rows a = ledger_rows b);
      check cb (name ^ ": decisions identical") true (a.Scenario.decisions = b.Scenario.decisions);
      check Alcotest.string (name ^ ": fault stats identical") a.Scenario.fault_line
        b.Scenario.fault_line;
      check ci (name ^ ": events identical") a.Scenario.events b.Scenario.events)
    Scenario.all_kinds

(* The Zipf-skewed subscription pool is deterministic — same spec, same
   ledger, twice — and the exponent is actually load-bearing: a steep
   pool and the uniform pool must route differently. *)
let test_zipf_pool_determinism () =
  let steep = { (small Scenario.Diurnal) with Scenario.zipf = Some 3.0 } in
  let a = Scenario.run steep in
  let b = Scenario.run steep in
  check cb "steep pool deterministic" true (Scenario.equal_ledgers a b);
  check cb "steep rows identical" true (ledger_rows a = ledger_rows b);
  check cb "decisions identical" true (a.Scenario.decisions = b.Scenario.decisions);
  let uniform = Scenario.run { steep with Scenario.zipf = Some 0.0 } in
  check cb "exponent changes the run" false (Scenario.equal_ledgers a uniform);
  (* None reproduces the historical per-kind default (0.6 for diurnal) *)
  let default_run = Scenario.run (small Scenario.Diurnal) in
  let pinned = Scenario.run { (small Scenario.Diurnal) with Scenario.zipf = Some 0.6 } in
  check cb "None = explicit per-kind default" true
    (Scenario.equal_ledgers default_run pinned
    && ledger_rows default_run = ledger_rows pinned)

(* Different seeds must actually change the run (guards against the
   seed being ignored somewhere). *)
let test_seed_sensitivity () =
  let spec = small Scenario.Flash_crowd in
  let a = Scenario.run spec in
  let b = Scenario.run { spec with Scenario.seed = spec.Scenario.seed + 1 } in
  check cb "different seeds -> different ledgers" false (Scenario.equal_ledgers a b)

(* ---------------- heap vs list differential ---------------- *)

let test_queue_differential () =
  List.iter
    (fun kind ->
      let spec = small kind in
      let a, b, diffs = Scenario.differential spec in
      let name = Scenario.kind_to_string kind in
      if diffs <> [] then
        Alcotest.failf "%s: heap/list differential diffs: %s" name (String.concat ", " diffs);
      check cb (name ^ ": heap ran on heap queue") true (a.Scenario.queue = `Heap);
      check cb (name ^ ": list ran on list queue") true (b.Scenario.queue = `List);
      check cb (name ^ ": rows match") true (ledger_rows a = ledger_rows b))
    Scenario.all_kinds

(* The differential holds under an overlaid fault plan too: crashes and
   outages are virtual-time-deterministic, so both backends must agree
   on losses and recoveries, not just the happy path. *)
let test_queue_differential_with_faults () =
  let fspec =
    { Xroute_fault.Plan.default_spec with Xroute_fault.Plan.client_drops = 0 }
  in
  let spec = { (small Scenario.Churn) with Scenario.seed = 5 } in
  let a, b, diffs = Scenario.differential ~fault_spec:fspec spec in
  if diffs <> [] then
    Alcotest.failf "faulted differential diffs: %s" (String.concat ", " diffs);
  check cb "faults actually fired" true
    (a.Scenario.fault_line = b.Scenario.fault_line
    && a.Scenario.fault_line <> Scenario.(run (small Flash_crowd)).Scenario.fault_line
    || a.Scenario.fault_line <> "");
  (* the plan must have produced at least one crash for the gate to mean
     anything *)
  check cb "crashes in fault line" true
    (not (String.length a.Scenario.fault_line >= 9
          && String.sub a.Scenario.fault_line 0 9 = "crashes=0"))

let () =
  Alcotest.run "scenario"
    [
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "partial parse" `Quick test_spec_parse_partial;
          Alcotest.test_case "parse errors" `Quick test_spec_parse_errors;
          Alcotest.test_case "zipf key" `Quick test_spec_zipf_key;
        ] );
      ( "sanity",
        [
          Alcotest.test_case "all kinds deliver" `Quick test_scenarios_deliver;
          Alcotest.test_case "digest modes agree" `Quick test_ledger_digest_modes_agree;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed identical" `Quick test_same_seed_identical;
          Alcotest.test_case "zipf pool determinism" `Quick test_zipf_pool_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        ] );
      ( "differential",
        [
          Alcotest.test_case "heap vs list" `Quick test_queue_differential;
          Alcotest.test_case "heap vs list under faults" `Quick test_queue_differential_with_faults;
        ] );
    ]
