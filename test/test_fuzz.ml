(* Protocol fuzzing: random interleavings of advertise / subscribe /
   unsubscribe / publish over random topologies, for every routing
   strategy, checked against a centralized oracle.

   The oracle knows every active subscription directly; at quiescence,
   a client must have received exactly the documents that match at least
   one of the subscriptions it held when the document was published and
   whose publisher had advertised a covering advertisement set. *)

open Xroute_overlay

let check = Alcotest.check
let cb = Alcotest.bool

(* One fuzzing round. *)
let run_round ~seed ~strategy_name =
  let prng = Xroute_support.Prng.create seed in
  let dtd =
    Xroute_support.Prng.choose_list prng
      [ Lazy.force Xroute_dtd.Dtd_samples.book; Lazy.force Xroute_dtd.Dtd_samples.insurance ]
  in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let strategy = Option.get (Xroute_core.Broker.strategy_of_name strategy_name) in
  let topo =
    match Xroute_support.Prng.int prng 3 with
    | 0 -> Topology.binary_tree ~levels:3
    | 1 -> Topology.line (2 + Xroute_support.Prng.int prng 5)
    | _ -> Topology.random_tree prng (3 + Xroute_support.Prng.int prng 8)
  in
  let net = Net.create ~config:{ Net.default_config with Net.strategy; seed } topo in
  let n_brokers = Topology.broker_count topo in
  let publisher = Net.add_client net ~broker:(Xroute_support.Prng.int prng n_brokers) in
  ignore (Net.advertise_dtd net publisher advs);
  Net.run net;
  let clients =
    List.init 3 (fun _ -> Net.add_client net ~broker:(Xroute_support.Prng.int prng n_brokers))
  in
  let params = Xroute_workload.Xpath_gen.default_params dtd in
  (* oracle state: active subscriptions per client; expected deliveries *)
  let subs : (int * Xroute_core.Message.sub_id * Xroute_xpath.Xpe.t) list ref = ref [] in
  let expected : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let gen_prng = Xroute_support.Prng.create (seed + 1) in
  let doc_counter = ref 0 in
  for _ = 1 to 40 do
    (match Xroute_support.Prng.int prng 4 with
    | 0 | 1 ->
      (* subscribe a random client; sometimes duplicate an existing XPE
         (shared-node / survivor interplay) *)
      let c = Xroute_support.Prng.choose_list prng clients in
      let xpe =
        match !subs with
        | (_, _, existing) :: _ when Xroute_support.Prng.bernoulli prng 0.3 -> existing
        | _ -> Xroute_workload.Xpath_gen.generate_one params prng
      in
      let id = Net.subscribe net c xpe in
      subs := (c.Net.cid, id, xpe) :: !subs
    | 2 ->
      (* unsubscribe something, if any *)
      (match !subs with
      | [] -> ()
      | l ->
        let cid, id, _ = List.nth l (Xroute_support.Prng.int prng (List.length l)) in
        (match List.find_opt (fun (c : Net.client) -> c.Net.cid = cid) clients with
        | Some c -> Net.unsubscribe net c id
        | None -> ());
        subs := List.filter (fun (_, i, _) -> Xroute_core.Message.compare_sub_id i id <> 0) l)
    | _ ->
      (* publish a random document; record oracle expectations against
         the subscriptions active right now *)
      let doc =
        Xroute_workload.Xml_gen.generate (Xroute_workload.Xml_gen.default_params dtd) gen_prng
      in
      let doc_id = !doc_counter in
      incr doc_counter;
      List.iter
        (fun (cid, _, xpe) ->
          if
            Xroute_xpath.Xpe_eval.matches_document xpe doc
            && (match List.find_opt (fun (c : Net.client) -> c.Net.cid = cid) clients with
               | Some c -> c.Net.cid <> publisher.Net.cid || c.Net.home <> publisher.Net.home
               | None -> false)
          then Hashtbl.replace expected (cid, doc_id) ())
        !subs;
      ignore (Net.publish_doc net publisher ~doc_id doc));
    (* settle the network between operations so the oracle's notion of
       "active at publication time" matches the network's *)
    Net.run net
  done;
  Net.run net;
  (* compare *)
  let got : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (c : Net.client) ->
      Hashtbl.iter (fun doc _ -> Hashtbl.replace got (c.Net.cid, doc) ()) c.Net.delivered)
    clients;
  let missing = ref [] in
  Hashtbl.iter (fun k () -> if not (Hashtbl.mem got k) then missing := k :: !missing) expected;
  let spurious = ref [] in
  Hashtbl.iter (fun k () -> if not (Hashtbl.mem expected k) then spurious := k :: !spurious) got;
  (!missing, !spurious)

let test_strategy strategy_name () =
  for seed = 1 to 25 do
    let missing, spurious = run_round ~seed ~strategy_name in
    if missing <> [] then
      Alcotest.failf "seed %d: %d expected deliveries missing (e.g. client %d doc %d)" seed
        (List.length missing)
        (fst (List.hd missing))
        (snd (List.hd missing));
    if spurious <> [] then
      Alcotest.failf "seed %d: %d spurious deliveries (e.g. client %d doc %d)" seed
        (List.length spurious)
        (fst (List.hd spurious))
        (snd (List.hd spurious))
  done;
  check cb "ran" true true

(* ------------------------------------------------------------------ *)
(* Codec / daemon framing against scenario-shaped corpora               *)
(* ------------------------------------------------------------------ *)

(* A mass-churn wire corpus shaped like what Scenario.Churn pushes
   through a daemon link: advertisements first, then waves of
   subscribe/unsubscribe over a duplicate-heavy XPE pool, with
   publications (decomposed generated documents) interleaved. *)
let churn_corpus ~seed ~waves ~per_wave =
  let prng = Xroute_support.Prng.create seed in
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  let advs = Xroute_dtd.Dtd_paths.advertisements graph in
  let params = Xroute_workload.Xpath_gen.default_params dtd in
  let pool =
    Array.init 12 (fun _ -> Xroute_workload.Xpath_gen.generate_one params prng)
  in
  let msgs = ref [] in
  let push m = msgs := m :: !msgs in
  List.iteri
    (fun i adv -> push (Xroute_core.Message.Advertise { id = { origin = 1; seq = i }; adv }))
    (List.filteri (fun i _ -> i < 10) advs);
  let seq = ref 0 in
  for wave = 1 to waves do
    let wave_ids = ref [] in
    for _ = 1 to per_wave do
      incr seq;
      let id = { Xroute_core.Message.origin = 100 + (wave mod 3); seq = !seq } in
      let xpe = pool.(Xroute_support.Prng.int prng (Array.length pool)) in
      wave_ids := id :: !wave_ids;
      push (Xroute_core.Message.Subscribe { id; xpe })
    done;
    let doc =
      Xroute_workload.Xml_gen.generate (Xroute_workload.Xml_gen.default_params dtd) prng
    in
    List.iter
      (fun pub -> push (Xroute_core.Message.Publish { pub; trail = []; ctx = None }))
      (List.filteri
         (fun i _ -> i < 5)
         (Xroute_xml.Xml_paths.decompose ~doc_id:wave doc));
    (* the wave unsubscribes in FIFO order, as the scenario engine does *)
    List.iter
      (fun id -> push (Xroute_core.Message.Unsubscribe { id }))
      (List.rev !wave_ids)
  done;
  List.rev !msgs

(* Every corpus message survives encode -> chunked Linebuf reassembly ->
   decode, regardless of how the byte stream is sliced. *)
let test_corpus_through_linebuf () =
  List.iter
    (fun seed ->
      let msgs = churn_corpus ~seed ~waves:4 ~per_wave:12 in
      let wire = String.concat "" (List.map (fun m -> Xroute_core.Codec.encode m ^ "\n") msgs) in
      let prng = Xroute_support.Prng.create (seed * 31) in
      let buf = Xroute_daemon.Linebuf.create () in
      let out = ref [] in
      let n = String.length wire in
      let pos = ref 0 in
      while !pos < n do
        (* hostile chunking: 1-byte dribbles through big slabs *)
        let len = min (n - !pos) (1 + Xroute_support.Prng.int prng 97) in
        Xroute_daemon.Linebuf.add_string buf (String.sub wire !pos len);
        pos := !pos + len;
        let rec drain () =
          match Xroute_daemon.Linebuf.next_line buf with
          | Some line ->
            out := Xroute_core.Codec.decode_exn line :: !out;
            drain ()
          | None -> ()
        in
        drain ()
      done;
      let out = List.rev !out in
      if List.length out <> List.length msgs then
        Alcotest.failf "seed %d: %d messages in, %d out" seed (List.length msgs)
          (List.length out);
      List.iter2
        (fun a b ->
          check Alcotest.string "message survives framing" (Xroute_core.Message.to_string a)
            (Xroute_core.Message.to_string b))
        msgs out;
      check Alcotest.int "no residue in the buffer" 0 (Xroute_daemon.Linebuf.length buf))
    [ 3; 17; 23 ]

(* Truncations of valid wire lines must decode to Ok or Error, never
   raise — a peer dying mid-line is routine for the daemon. *)
let test_truncated_lines () =
  let msgs = churn_corpus ~seed:5 ~waves:2 ~per_wave:8 in
  let prng = Xroute_support.Prng.create 55 in
  List.iter
    (fun m ->
      let line = Xroute_core.Codec.encode m in
      for _ = 1 to 8 do
        let cut = Xroute_support.Prng.int prng (String.length line) in
        let t = String.sub line 0 cut in
        match Xroute_core.Codec.decode t with
        | Ok _ | Error _ -> ()
        | exception e ->
          Alcotest.failf "decode raised %s on truncation %S" (Printexc.to_string e) t
      done)
    msgs

(* Hostile input: random bytes, separator floods, broken escapes. The
   decoder must return Error (or a valid Ok) without raising, and the
   framing escape must stay reversible on arbitrary strings. *)
let test_hostile_lines () =
  let prng = Xroute_support.Prng.create 77 in
  for _ = 1 to 500 do
    let len = Xroute_support.Prng.int prng 40 in
    let hostile =
      String.init len (fun _ ->
          match Xroute_support.Prng.int prng 6 with
          | 0 -> '|'
          | 1 -> '%'
          | 2 -> '.'
          | 3 -> Char.chr (1 + Xroute_support.Prng.int prng 255)
          | _ -> Char.chr (32 + Xroute_support.Prng.int prng 95))
    in
    (match Xroute_core.Codec.decode hostile with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "decode raised %s on %S" (Printexc.to_string e) hostile);
    let esc = Xroute_daemon.Framing.escape hostile in
    check Alcotest.string "framing escape reversible" hostile
      (Xroute_daemon.Framing.unescape esc);
    check cb "escaped text is line-safe" false
      (String.exists (fun c -> c = '|' || c = '\n' || c = '\r') esc)
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "protocol vs oracle",
        List.map
          (fun name -> Alcotest.test_case name `Slow (test_strategy name))
          Xroute_core.Broker.strategy_names );
      ( "codec framing",
        [
          Alcotest.test_case "churn corpus through linebuf" `Quick test_corpus_through_linebuf;
          Alcotest.test_case "truncated lines" `Quick test_truncated_lines;
          Alcotest.test_case "hostile lines" `Quick test_hostile_lines;
        ] );
    ]
