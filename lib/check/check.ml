(* Workload analysis and routing-state audit.

   The workload pass inspects a subscription set against the advertised
   languages: a subscription disjoint from every advertisement draws
   nothing (dead), a step requiring one attribute equal to two different
   values matches nothing (contradictory), and a subscription covered by
   an earlier one from the same client adds no deliveries (shadowed).
   All are warnings: the system behaves correctly, the workload pays
   for subscriptions that cannot matter.

   The audit pass checks the invariants crash recovery and covering are
   supposed to maintain (lifted out of test_fault.ml into a reusable
   tool): no dangling SRT/PRT entry outside a live ledger, structural
   integrity of the SRT index and the PRT covering forest, last-hop and
   forwarded-target sanity, and covered-set consistency — every
   non-suppressed stored subscription must reach each of its required
   next hops either by its own forwarding or through a forwarded
   coverer/merger. A violation means publications are (or will be)
   silently lost, so audit findings are errors. *)

open Xroute_xpath
open Xroute_core
module Net = Xroute_overlay.Net

let sub_id_eq a b = Message.compare_sub_id a b = 0
let pp_id (id : Message.sub_id) = Printf.sprintf "(%d,%d)" id.origin id.seq

let pp_ep = function
  | Rtable.Neighbor b -> Printf.sprintf "broker:%d" b
  | Rtable.Client c -> Printf.sprintf "client:%d" c

(* ------------------------------------------------------------------ *)
(* Workload analysis                                                   *)
(* ------------------------------------------------------------------ *)

(* Same-attribute-different-value contradiction inside one step. *)
let contradictory_step (step : Xpe.step) =
  let rec find = function
    | [] -> None
    | (p : Xpe.predicate) :: rest -> (
      match
        List.find_opt (fun (q : Xpe.predicate) -> q.attr = p.attr && q.value <> p.value) rest
      with
      | Some q -> Some (p, q)
      | None -> find rest)
  in
  find step.preds

let contradiction xpe =
  List.find_map
    (fun (step : Xpe.step) ->
      Option.map (fun (p, q) -> (step, p, q)) (contradictory_step step))
    xpe.Xpe.steps

(* Name-language disjointness from one advertisement, via the product
   construction on the Thompson automata. *)
let overlaps_adv =
  let module Nfa = Xroute_automata.Nfa in
  let module Regex = Xroute_automata.Regex in
  fun xpe adv ->
    Nfa.intersect_nonempty
      (Nfa.of_regex (Regex.of_xpe xpe))
      (Nfa.of_regex (Regex.of_adv adv))

let analyze_workload ?(advs = []) ~subs () =
  let findings = ref [] in
  let add code subject witness =
    findings :=
      Finding.make ~severity:Finding.Warning ~family:"workload" ~code ~subject ~witness
      :: !findings
  in
  List.iteri
    (fun i (client, xpe) ->
      (* contradictory predicates *)
      (match contradiction xpe with
      | Some (step, p, q) ->
        add "contradictory-predicates"
          (Printf.sprintf "client %d subscription #%d %s can match nothing" client i
             (Xpe.to_string xpe))
          (Printf.sprintf "step %s%s requires @%s=%S and @%s=%S"
             (Xpe.test_to_string step.Xpe.test)
             (String.concat "" (List.map Xpe.pred_to_string step.Xpe.preds))
             p.Xpe.attr p.Xpe.value q.Xpe.attr q.Xpe.value)
      | None -> ());
      (* dead: name language disjoint from every advertised language *)
      if advs <> [] && not (List.exists (overlaps_adv xpe) advs) then
        add "dead-subscription"
          (Printf.sprintf "client %d subscription #%d %s overlaps no advertisement" client
             i (Xpe.to_string xpe))
          (Printf.sprintf "checked against %d advertisements" (List.length advs));
      (* shadowed: strictly covered by an earlier XPE of the same client *)
      let earlier = List.filteri (fun j _ -> j < i) subs in
      match
        List.find_opt
          (fun (c, prior) ->
            c = client
            && Cover.covers_exact prior xpe
            && not (Cover.covers_exact xpe prior))
          earlier
      with
      | Some (_, prior) ->
        add "shadowed-subscription"
          (Printf.sprintf "client %d subscription #%d %s is strictly covered" client i
             (Xpe.to_string xpe))
          (Printf.sprintf "earlier subscription %s of client %d already covers it"
             (Xpe.to_string prior) client)
      | None -> ())
    subs;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Routing-state audit                                                 *)
(* ------------------------------------------------------------------ *)

let audit_broker ?live_advs ?live_subs broker =
  let v = Broker.audit_view broker in
  let where = Printf.sprintf "broker %d" v.Broker.av_id in
  let findings = ref [] in
  let add code subject witness =
    findings :=
      Finding.make ~severity:Finding.Error ~family:"routing" ~code ~subject ~witness
      :: !findings
  in
  let mem_id id l = List.exists (sub_id_eq id) l in
  let is_merger id = List.exists (fun (m, _, _) -> sub_id_eq m id) v.Broker.av_mergers in
  let is_stored id = List.exists (fun (i, _, _) -> sub_id_eq i id) v.Broker.av_subs in
  let valid_neighbor = function
    | Rtable.Neighbor n -> List.mem n v.Broker.av_neighbors
    | Rtable.Client _ -> false
  in
  (* structural integrity of the tables *)
  List.iter
    (fun msg -> add "srt-integrity" (where ^ ": SRT index invariant violated") msg)
    v.Broker.av_srt_invariants;
  List.iter
    (fun msg -> add "prt-integrity" (where ^ ": PRT covering forest invariant violated") msg)
    v.Broker.av_prt_invariants;
  List.iter
    (fun msg -> add "nfa-integrity" (where ^ ": PRT match automaton invariant violated") msg)
    v.Broker.av_nfa_invariants;
  (* dangling entries vs the live ledgers *)
  (match live_advs with
  | Some live ->
    List.iter
      (fun (e : Rtable.Srt.entry) ->
        if not (mem_id e.id live) then
          add "dangling-srt-entry"
            (Printf.sprintf "%s: SRT entry %s outside every live ledger" where (pp_id e.id))
            (Printf.sprintf "%s from %s" (Adv.to_string e.adv) (pp_ep e.hop)))
      v.Broker.av_srt_entries
  | None -> ());
  (match live_subs with
  | Some live ->
    List.iter
      (fun (id, xpe, hop) ->
        if not (mem_id id live) then
          add "dangling-prt-entry"
            (Printf.sprintf "%s: PRT entry %s outside every live ledger" where (pp_id id))
            (Printf.sprintf "%s from %s" (Xpe.to_string xpe) (pp_ep hop)))
      v.Broker.av_subs
  | None -> ());
  (* last-hop rule: a neighbor hop must be an actual neighbor *)
  List.iter
    (fun (e : Rtable.Srt.entry) ->
      if (not (valid_neighbor e.hop)) && not (match e.hop with Rtable.Client _ -> true | _ -> false)
      then
        add "invalid-last-hop"
          (Printf.sprintf "%s: SRT entry %s has non-neighbor last hop %s" where (pp_id e.id)
             (pp_ep e.hop))
          (Adv.to_string e.adv))
    v.Broker.av_srt_entries;
  List.iter
    (fun (id, xpe, hop) ->
      if (not (valid_neighbor hop)) && not (match hop with Rtable.Client _ -> true | _ -> false)
      then
        add "invalid-last-hop"
          (Printf.sprintf "%s: PRT entry %s has non-neighbor last hop %s" where (pp_id id)
             (pp_ep hop))
          (Xpe.to_string xpe))
    v.Broker.av_subs;
  (* forwarded map: keys must exist, targets must be real neighbors and
     never the subscription's own last hop *)
  let own_hop id =
    List.find_map (fun (i, _, h) -> if sub_id_eq i id then Some h else None) v.Broker.av_subs
  in
  List.iter
    (fun (id, targets) ->
      if not (is_stored id || is_merger id) then
        add "dangling-forward"
          (Printf.sprintf "%s: forwarded record for unknown id %s" where (pp_id id))
          (String.concat ", " (List.map pp_ep targets));
      List.iter
        (fun ep ->
          if not (valid_neighbor ep) then
            add "invalid-forward-target"
              (Printf.sprintf "%s: %s forwarded to non-neighbor %s" where (pp_id id)
                 (pp_ep ep))
              "";
          match own_hop id with
          | Some h when Rtable.endpoint_equal h ep ->
            add "forward-to-last-hop"
              (Printf.sprintf "%s: %s forwarded back to its last hop %s" where (pp_id id)
                 (pp_ep ep))
              ""
          | _ -> ())
        targets)
    v.Broker.av_forwarded;
  (* covered-set consistency: each required next hop of a non-suppressed
     subscription must be served by its own forwarding or by a coverer's *)
  let forwarded id =
    match List.find_opt (fun (i, _) -> sub_id_eq i id) v.Broker.av_forwarded with
    | Some (_, targets) -> targets
    | None -> []
  in
  let served_endpoints self_id xpe =
    forwarded self_id
    @ List.concat_map
        (fun (qid, qx, _) ->
          if (not (sub_id_eq qid self_id)) && v.Broker.av_covers qx xpe then forwarded qid
          else [])
        v.Broker.av_subs
    @ List.concat_map
        (fun (mid, mx, _) ->
          if (not (sub_id_eq mid self_id)) && v.Broker.av_covers mx xpe then forwarded mid
          else [])
        v.Broker.av_mergers
  in
  let hole_check id xpe own =
    if not (mem_id id v.Broker.av_suppressed) then begin
      let required =
        List.filter
          (fun ep ->
            match own with Some h -> not (Rtable.endpoint_equal ep h) | None -> true)
          (v.Broker.av_required_targets xpe)
      in
      let served = served_endpoints id xpe in
      List.iter
        (fun ep ->
          if not (List.exists (Rtable.endpoint_equal ep) served) then
            add "covering-hole"
              (Printf.sprintf "%s: %s %s unserved at required hop %s" where (pp_id id)
                 (Xpe.to_string xpe) (pp_ep ep))
              (Printf.sprintf "forwarded to [%s], no forwarded coverer reaches %s"
                 (String.concat ", " (List.map pp_ep (forwarded id)))
                 (pp_ep ep)))
        required
    end
  in
  List.iter (fun (id, xpe, hop) -> hole_check id xpe (Some hop)) v.Broker.av_subs;
  List.iter (fun (mid, mx, _) -> hole_check mid mx None) v.Broker.av_mergers;
  (* merge bookkeeping: a suppressed id must be a member of some live
     merger, or its traffic is silenced with no merger speaking for it *)
  List.iter
    (fun id ->
      if
        not
          (List.exists (fun (_, _, members) -> mem_id id members) v.Broker.av_mergers)
      then
        add "suppressed-without-merger"
          (Printf.sprintf "%s: %s suppressed but no merger lists it as a member" where
             (pp_id id))
          (Printf.sprintf "%d mergers live" (List.length v.Broker.av_mergers)))
    v.Broker.av_suppressed;
  List.rev !findings

let audit_net net =
  let brokers =
    Array.to_list (Net.brokers net)
    |> List.filter (fun b -> Net.broker_alive net (Broker.id b))
  in
  let clients = Net.clients net in
  let live_advs =
    List.concat_map (fun (c : Net.client) -> List.map fst c.Net.adv_ledger) clients
  in
  let client_subs =
    List.concat_map (fun (c : Net.client) -> List.map fst c.Net.sub_ledger) clients
  in
  (* Mergers are broker-made subscriptions: a neighbor legitimately holds
     them in its PRT although no client ledger ever will. *)
  let merger_ids =
    List.concat_map
      (fun b -> List.map (fun (m, _, _) -> m) (Broker.audit_view b).Broker.av_mergers)
      brokers
  in
  let live_subs = merger_ids @ client_subs in
  List.concat_map (fun b -> audit_broker ~live_advs ~live_subs b) brokers

let audit_net_report net =
  let findings = audit_net net in
  let brokers = Array.length (Net.brokers net) in
  Finding.report
    ~stats:
      [
        ("brokers_audited", float_of_int brokers);
        ("routing_violations", float_of_int (List.length findings));
      ]
    findings

(* ------------------------------------------------------------------ *)
(* Shard-integrity audit (domain pool)                                 *)
(* ------------------------------------------------------------------ *)

type shard_view = {
  shv_domains : int;
  shv_entries : (int * (Message.sub_id * int) list) list;
  shv_subs : (Message.sub_id * int option) list;
  shv_shard_pubs : (int * int) list;
  shv_pool_pubs : int;
}

(* The shard partition is load-bearing for correctness, not just for
   throughput: a subscription missing from its owner shard silently
   loses every publication rooted at that element, so every violation
   here is an error-severity finding. The checks mirror the partition
   contract: an anchored subscription lives on exactly its owner shard,
   an unanchored one is replicated to every shard, no shard holds an
   entry the authoritative PRT does not, stamps are unique per shard
   (they order the merge), and the per-shard publication counters must
   sum to the pool's global gauge. *)
let audit_shards v =
  let findings = ref [] in
  let report code subject witness =
    findings :=
      Finding.make ~severity:Finding.Error ~family:"shard" ~code ~subject ~witness
      :: !findings
  in
  let shards_holding id =
    List.filter_map
      (fun (shard, entries) ->
        if List.exists (fun (i, _) -> sub_id_eq i id) entries then Some shard else None)
      v.shv_entries
  in
  List.iter
    (fun (id, owner) ->
      let holders = shards_holding id in
      match owner with
      | Some shard ->
        if holders <> [ shard ] then
          report "shard-ownership"
            (Printf.sprintf "subscription %s" (pp_id id))
            (Printf.sprintf "anchored entry must live on shard %d alone, found on [%s]"
               shard
               (String.concat "; " (List.map string_of_int holders)))
      | None ->
        if List.length holders <> v.shv_domains then
          report "shard-replication"
            (Printf.sprintf "subscription %s" (pp_id id))
            (Printf.sprintf
               "unanchored entry must be replicated to all %d shards, found on [%s]"
               v.shv_domains
               (String.concat "; " (List.map string_of_int holders))))
    v.shv_subs;
  List.iter
    (fun (shard, entries) ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (id, stamp) ->
          if not (List.exists (fun (i, _) -> sub_id_eq i id) v.shv_subs) then
            report "shard-orphan"
              (Printf.sprintf "shard %d" shard)
              (Printf.sprintf "holds subscription %s absent from the PRT" (pp_id id));
          match Hashtbl.find_opt seen stamp with
          | Some other ->
            report "shard-stamp"
              (Printf.sprintf "shard %d" shard)
              (Printf.sprintf "entries %s and %s share stamp %d" (pp_id other) (pp_id id)
                 stamp)
          | None -> Hashtbl.add seen stamp id)
        entries)
    v.shv_entries;
  let pub_sum = List.fold_left (fun acc (_, n) -> acc + n) 0 v.shv_shard_pubs in
  if pub_sum <> v.shv_pool_pubs then
    report "shard-counter-drift" "pool publication gauge"
      (Printf.sprintf "per-shard matched-publication counters sum to %d, pool routed %d"
         pub_sum v.shv_pool_pubs);
  List.rev !findings

let audit_shards_report v =
  let findings = audit_shards v in
  Finding.report
    ~stats:
      [
        ("shards_audited", float_of_int v.shv_domains);
        ("sharded_subscriptions", float_of_int (List.length v.shv_subs));
        ("shard_violations", float_of_int (List.length findings));
      ]
    findings

(* ------------------------------------------------------------------ *)
(* Scenario-integrity audit                                            *)
(* ------------------------------------------------------------------ *)

module Scenario = Xroute_workload.Scenario

(* The scenario engine is the scale harness the benchmarks and the
   regression gates stand on, so its own invariants get an audit
   family: the heap and list queue backends must produce byte-identical
   delivery ledgers (the differential gate), identical specs must
   reproduce identical digests across runs (determinism), and a
   scenario must actually exercise the network it claims to — nonzero
   deliveries, at least one subscription per client. [inject] replays the list leg of the differential one seed
   off; the audit must then report errors (the @scenario mutation
   rule). *)
let audit_scenario ?(inject = false) spec =
  let findings = ref [] in
  let where =
    Printf.sprintf "scenario %s (%d clients, seed %d)"
      (Scenario.kind_to_string spec.Scenario.kind)
      spec.Scenario.clients spec.Scenario.seed
  in
  let report code subject witness =
    findings :=
      Finding.make ~severity:Finding.Error ~family:"scenario" ~code ~subject ~witness
      :: !findings
  in
  let heap, _, diffs =
    if inject then begin
      let a = Scenario.run ~queue:`Heap spec in
      let b =
        Scenario.run ~queue:`List { spec with Scenario.seed = spec.Scenario.seed + 1 }
      in
      let d = ref [] in
      if not (Scenario.equal_ledgers a b) then d := "delivery ledgers differ" :: !d;
      if a.Scenario.deliveries <> b.Scenario.deliveries then
        d :=
          Printf.sprintf "deliveries %d vs %d" a.Scenario.deliveries
            b.Scenario.deliveries
          :: !d;
      if a.Scenario.events <> b.Scenario.events then
        d := Printf.sprintf "events %d vs %d" a.Scenario.events b.Scenario.events :: !d;
      (a, b, List.rev !d)
    end
    else Scenario.differential spec
  in
  List.iter
    (fun msg ->
      report "scenario-differential"
        (where ^ ": heap and list queue backends disagree")
        msg)
    diffs;
  let again = Scenario.run ~queue:`Heap spec in
  if not (Int64.equal again.Scenario.ledger_digest heap.Scenario.ledger_digest) then
    report "scenario-nondeterminism"
      (where ^ ": ledger digest changed between identical runs")
      (Printf.sprintf "%Ld vs %Ld" heap.Scenario.ledger_digest
         again.Scenario.ledger_digest);
  if not (Int64.equal again.Scenario.decision_digest heap.Scenario.decision_digest)
  then
    report "scenario-nondeterminism"
      (where ^ ": per-broker decision digest changed between identical runs")
      (Printf.sprintf "%Ld vs %Ld" heap.Scenario.decision_digest
         again.Scenario.decision_digest);
  if again.Scenario.fault_line <> heap.Scenario.fault_line then
    report "scenario-nondeterminism"
      (where ^ ": fault accounting changed between identical runs")
      (Printf.sprintf "%s vs %s" heap.Scenario.fault_line again.Scenario.fault_line);
  if spec.Scenario.docs > 0 && spec.Scenario.clients > 0 && heap.Scenario.deliveries = 0
  then
    report "scenario-dead" (where ^ ": published documents reached no subscriber")
      (Printf.sprintf "%d docs published, %d subscriptions sent"
         heap.Scenario.docs_published heap.Scenario.subs_sent);
  if heap.Scenario.subs_sent < spec.Scenario.clients then
    report "scenario-undersubscribed" (where ^ ": fewer subscriptions than clients")
      (Printf.sprintf "%d subs for %d clients" heap.Scenario.subs_sent
         spec.Scenario.clients);
  (List.rev !findings, heap)

let audit_scenario_report ?inject specs =
  let per = List.map (fun spec -> audit_scenario ?inject spec) specs in
  let findings = List.concat_map fst per in
  let sum g = List.fold_left (fun acc (_, o) -> acc + g o) 0 per in
  let f = float_of_int in
  Finding.report
    ~stats:
      [
        ("scenario_runs", f (List.length per));
        ("scenario_deliveries", f (sum (fun o -> o.Scenario.deliveries)));
        ("scenario_events", f (sum (fun o -> o.Scenario.events)));
        ("scenario_violations", f (List.length findings));
      ]
    findings
