(* Soundness audit of the paper's syntactic rules (Sec. 4.2 / 4.3)
   against the exact automata engine.

   The paper's covering and merging decisions are deliberately
   incomplete approximations of language containment; what they must
   never be is unsound, because an unsound decision suppresses a
   forwarding and silently loses publications. This pass generates
   seeded predicate-free corpora (the automata oracle decides name-level
   languages, which coincides with full XPE semantics exactly when no
   predicates are present), cross-checks every paper decision against
   the oracle, and reports:

   - unsound covering / advertisement-covering / merger claims as
     [Error] findings carrying the witness pair;
   - incompleteness (oracle says contains, rule says no) as one
     [Warning] per family with the counts, plus rates in the stats.

   The covering and advertisement-covering predicates are injectable so
   the CLI's mutation check can plant a deliberately unsound rule and
   prove the analyzer catches it. *)

open Xroute_xpath
open Xroute_core
module Prng = Xroute_support.Prng
module Lang = Xroute_automata.Lang

(* ---------------- corpus generators (predicate-free) ---------------- *)

let alphabet = [| "a"; "b"; "c"; "d" |]

let gen_test prng =
  if Prng.bernoulli prng 0.25 then Xpe.Star else Xpe.test_of_string (Prng.choose prng alphabet)

let gen_xpe prng =
  let len = 1 + Prng.int prng 5 in
  let relative = Prng.bernoulli prng 0.2 in
  let steps =
    List.init len (fun i ->
        let axis =
          if i = 0 && relative then Xpe.Child
          else if Prng.bernoulli prng 0.25 then Xpe.Desc
          else Xpe.Child
        in
        Xpe.step axis (gen_test prng))
  in
  Xpe.make ~relative steps

let gen_lit prng =
  let len = 1 + Prng.int prng 3 in
  Adv.Lit (Array.init len (fun _ -> gen_test prng))

let gen_adv prng =
  let n_parts = 1 + Prng.int prng 3 in
  let parts =
    List.init n_parts (fun _ ->
        if Prng.bernoulli prng 0.25 then Adv.Group [ gen_lit prng ] else gen_lit prng)
  in
  Adv.make parts

(* ---------------- the differential pass ---------------- *)

type family_totals = {
  mutable checked : int; (* ordered pairs compared *)
  mutable claimed : int; (* rule said "covers" *)
  mutable oracle : int; (* oracle said "contains" *)
  mutable unsound : int; (* rule yes, oracle no *)
  mutable incomplete : int; (* oracle yes, rule no *)
}

let fresh_totals () = { checked = 0; claimed = 0; oracle = 0; unsound = 0; incomplete = 0 }

let rate totals =
  if totals.oracle = 0 then 0.0
  else float_of_int totals.incomplete /. float_of_int totals.oracle

(* Cap the per-kind witness findings so a badly broken rule produces a
   readable report; the totals always carry the full counts. *)
let max_witnesses = 20

type ctx = {
  mutable findings : Finding.t list; (* reversed *)
  mutable witnesses_left : (string * int ref) list;
}

let add_finding ctx f = ctx.findings <- f :: ctx.findings

let add_witnessed ctx ~severity ~code ~subject ~witness =
  let left =
    match List.assoc_opt code ctx.witnesses_left with
    | Some r -> r
    | None ->
      let r = ref max_witnesses in
      ctx.witnesses_left <- (code, r) :: ctx.witnesses_left;
      r
  in
  if !left > 0 then begin
    decr left;
    add_finding ctx (Finding.make ~severity ~family:"soundness" ~code ~subject ~witness)
  end

(* Default pairs per seed: large enough for the sweeps to hit every
   covering rule, small enough to keep the runtest gate quick. *)
let default_pairs = 250

let run ?(covers = Cover.covers_paper) ?(adv_covers = Cover.adv_covers)
    ?(seeds = [ 1; 2; 3; 4 ]) ?(pairs_per_seed = default_pairs)
    ?(witness_incomplete = false) () =
  let ctx = { findings = []; witnesses_left = [] } in
  let cov = fresh_totals () in
  let advc = fresh_totals () in
  let merge = fresh_totals () in
  List.iter
    (fun seed ->
      let prng = Prng.create seed in
      (* XPE covering: rule claim vs exact containment. *)
      for _ = 1 to pairs_per_seed do
        let s1 = gen_xpe prng and s2 = gen_xpe prng in
        let claim = covers s1 s2 in
        let truth = Lang.xpe_contains s1 s2 in
        cov.checked <- cov.checked + 1;
        if claim then cov.claimed <- cov.claimed + 1;
        if truth then cov.oracle <- cov.oracle + 1;
        if claim && not truth then begin
          cov.unsound <- cov.unsound + 1;
          add_witnessed ctx ~severity:Finding.Error ~code:"unsound-cover"
            ~subject:
              (Printf.sprintf "covering rule claims %s covers %s" (Xpe.to_string s1)
                 (Xpe.to_string s2))
            ~witness:
              (Printf.sprintf "seed %d: L(%s) does not contain L(%s)" seed
                 (Xpe.to_string s1) (Xpe.to_string s2))
        end
        else if truth && not claim then begin
          cov.incomplete <- cov.incomplete + 1;
          if witness_incomplete then
            add_witnessed ctx ~severity:Finding.Info ~code:"cover-incomplete-pair"
              ~subject:
                (Printf.sprintf "oracle: %s contains %s; covering rule disagrees"
                   (Xpe.to_string s1) (Xpe.to_string s2))
              ~witness:(Printf.sprintf "seed %d" seed)
        end
      done;
      (* Advertisement covering: rule claim vs exact containment. *)
      for _ = 1 to pairs_per_seed / 2 do
        let a1 = gen_adv prng and a2 = gen_adv prng in
        let claim = adv_covers a1 a2 in
        let truth = Lang.adv_contains a1 a2 in
        advc.checked <- advc.checked + 1;
        if claim then advc.claimed <- advc.claimed + 1;
        if truth then advc.oracle <- advc.oracle + 1;
        if claim && not truth then begin
          advc.unsound <- advc.unsound + 1;
          add_witnessed ctx ~severity:Finding.Error ~code:"unsound-adv-cover"
            ~subject:
              (Printf.sprintf "advertisement covering claims %s covers %s"
                 (Adv.to_string a1) (Adv.to_string a2))
            ~witness:
              (Printf.sprintf "seed %d: P(%s) does not contain P(%s)" seed
                 (Adv.to_string a1) (Adv.to_string a2))
        end
        else if truth && not claim then begin
          advc.incomplete <- advc.incomplete + 1;
          if witness_incomplete then
            add_witnessed ctx ~severity:Finding.Info ~code:"adv-cover-incomplete-pair"
              ~subject:
                (Printf.sprintf "oracle: %s contains %s; advertisement covering disagrees"
                   (Adv.to_string a1) (Adv.to_string a2))
              ~witness:(Printf.sprintf "seed %d" seed)
        end
      done;
      (* Merging: every applied merger must contain each original's
         language, else the upstream replacement loses publications. *)
      let universe =
        (* all bare-name paths over the alphabet up to length 3: a
           deterministic universe for the imperfect degree *)
        let rec paths k =
          if k = 0 then [ [] ]
          else
            let shorter = paths (k - 1) in
            List.concat_map
              (fun p -> Array.to_list (Array.map (fun n -> n :: p) alphabet))
              shorter
        in
        List.concat_map (fun k -> List.map Array.of_list (paths k)) [ 1; 2; 3 ]
      in
      let xpes =
        List.init (max 8 (pairs_per_seed / 10)) (fun _ -> gen_xpe prng)
        |> List.sort_uniq Xpe.compare
      in
      let applied, _kept = Merge.merge_set ~max_degree:0.5 ~universe xpes in
      List.iter
        (fun (m : Merge.merger) ->
          List.iter
            (fun original ->
              merge.checked <- merge.checked + 1;
              merge.claimed <- merge.claimed + 1;
              let truth = Lang.xpe_contains m.xpe original in
              if truth then merge.oracle <- merge.oracle + 1
              else begin
                merge.unsound <- merge.unsound + 1;
                add_witnessed ctx ~severity:Finding.Error ~code:"unsound-merge"
                  ~subject:
                    (Printf.sprintf "merger %s fails to contain its original %s"
                       (Xpe.to_string m.xpe) (Xpe.to_string original))
                  ~witness:
                    (Printf.sprintf "seed %d: degree %g, %d originals" seed m.degree
                       (List.length m.originals))
              end)
            m.originals)
        applied)
    seeds;
  (* Incompleteness: expected of the paper rules, so a warning with the
     counts rather than per-pair noise. *)
  let incompleteness code totals what =
    if totals.incomplete > 0 then
      add_finding ctx
        (Finding.make ~severity:Finding.Warning ~family:"soundness" ~code
           ~subject:
             (Printf.sprintf "%s is incomplete on %d of %d contained pairs (rate %.4f)"
                what totals.incomplete totals.oracle (rate totals))
           ~witness:
             (Printf.sprintf "%d pairs checked over seeds [%s]" totals.checked
                (String.concat "; " (List.map string_of_int seeds))))
  in
  incompleteness "cover-incomplete" cov "covering rule";
  incompleteness "adv-cover-incomplete" advc "advertisement covering";
  let f = float_of_int in
  let stats =
    [
      ("seeds", f (List.length seeds));
      ("cover_pairs", f cov.checked);
      ("cover_claimed", f cov.claimed);
      ("cover_contained", f cov.oracle);
      ("cover_unsound", f cov.unsound);
      ("cover_incomplete", f cov.incomplete);
      ("cover_incomplete_rate", rate cov);
      ("adv_cover_pairs", f advc.checked);
      ("adv_cover_claimed", f advc.claimed);
      ("adv_cover_contained", f advc.oracle);
      ("adv_cover_unsound", f advc.unsound);
      ("adv_cover_incomplete", f advc.incomplete);
      ("adv_cover_incomplete_rate", rate advc);
      ("merge_members_checked", f merge.checked);
      ("merge_unsound", f merge.unsound);
    ]
  in
  Finding.report ~stats (List.rev ctx.findings)

(* A deliberately unsound covering rule for the mutation check: length
   comparison "covers" everything no longer than itself, which the
   sweeps refute within a handful of pairs. *)
let planted_unsound_covers s1 s2 = Xpe.length s2 >= Xpe.length s1
