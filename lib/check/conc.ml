(* Schedule-exploring concurrency audit (see conc.mli).

   The models below re-enact the shard pool's enqueue/match/drain logic
   with the *production* cross-domain structures — [Spsc] rings and the
   [Reorder] buffer, both built on [Tsync] — driven by model threads on
   the cooperative scheduler. What is modelled away is only the domain
   boundary and the payload semantics (keys stand in for root symbols,
   stamp lists for matched payloads); every synchronization edge the
   daemon relies on is the real code. [lib/daemon] depends on this
   library, so the audit deliberately lives below [Shard_pool]: the pool
   is the thin composition of exactly these verified pieces. *)

open Xroute_support

(* ------------------------------------------------------------------ *)
(* Pool model                                                          *)
(* ------------------------------------------------------------------ *)

(* Script op: the main thread's arrival stream. Keys stand in for
   advertisement roots; [owner] is the same mod-hash idea as the pool's. *)
type op = Sub of int | Pub of int

(* Worker command, as pushed through the ingress ring. *)
type cmd = CSub of int * int (* stamp, key *) | CPub of int * int (* seq, key *)

(* One emitted decision, in drain order. *)
type emit = E_control of int | E_pub of int * int * int list (* seq, key, stamps *)

let emit_to_string = function
  | E_control seq -> Printf.sprintf "C%d" seq
  | E_pub (seq, key, stamps) ->
    Printf.sprintf "P%d/k%d[%s]" seq key
      (String.concat "," (List.map string_of_int stamps))

let emits_to_string es = String.concat " " (List.map emit_to_string es)

(* What the sequential engine would emit for [script]: ops in arrival
   order, each publication matched against every earlier same-key
   subscription, stamps ascending. *)
let sequential script =
  List.mapi
    (fun seq op ->
      match op with
      | Sub _ -> E_control seq
      | Pub key ->
        let stamps =
          List.concat
            (List.mapi
               (fun j o ->
                 match o with Sub k when j < seq && k = key -> [ j ] | _ -> [])
               script)
        in
        E_pub (seq, key, stamps))
    script

let pool_model ~workers ~script ~inject () =
  let owner key = key mod workers in
  let ingress = Array.init workers (fun _ -> Spsc.create 2) in
  let results = Array.init workers (fun _ -> Spsc.create 2) in
  let shards =
    Array.init workers (fun _ -> Tsync.Cell.make ~name:"model.shard" [])
  in
  let processed =
    Array.init workers (fun _ -> Tsync.Atomic.make ~name:"model.processed" 0)
  in
  let stop = Tsync.Atomic.make ~name:"model.stop" false in
  let noise = Tsync.Cell.make ~name:"injected.race_counter" 0 in
  let reorder : (int, int list) Reorder.t = Reorder.create () in
  (* Main-domain-only bookkeeping: plain OCaml state, on purpose —
     never touched by workers, so it carries no synchronization. *)
  let emitted = ref [] in
  let submitted = Array.make workers 0 in
  let in_flight = ref 0 in
  let worker w () =
    let running = ref true in
    while !running do
      match Spsc.pop ingress.(w) with
      | Some (CSub (stamp, key)) ->
        Tsync.Cell.set shards.(w) ((stamp, key) :: Tsync.Cell.get shards.(w));
        Tsync.Atomic.incr processed.(w)
      | Some (CPub (seq, key)) ->
        let matched =
          Tsync.Cell.get shards.(w)
          |> List.filter (fun (_, k) -> k = key)
          |> List.map fst |> List.sort compare
        in
        while not (Spsc.push results.(w) (seq, matched)) do
          ()
        done;
        Tsync.Atomic.incr processed.(w);
        if inject then
          (* The planted bug: a plain counter bumped after the release
             chain (result push, processed incr), read by main with no
             acquire of it — unordered in every schedule. *)
          Tsync.Cell.set noise (Tsync.Cell.get noise + 1)
      | None -> if Tsync.Atomic.get stop then running := false
    done
  in
  let pump () =
    Array.iter
      (fun r ->
        let rec go () =
          match Spsc.pop r with
          | Some (seq, stamps) ->
            ignore (Reorder.complete reorder ~seq stamps);
            go ()
          | None -> ()
        in
        go ())
      results
  in
  let drain () =
    pump ();
    let rec emit () =
      match Reorder.pop_ready reorder with
      | `Wait -> ()
      | `Control thunk ->
        thunk ();
        emit ()
      | `Emit (seq, key, stamps) ->
        decr in_flight;
        emitted := E_pub (seq, key, stamps) :: !emitted;
        emit ()
    in
    emit ()
  in
  let push_blocking w c =
    while not (Spsc.push ingress.(w) c) do
      (* Backpressure: the ring is full; free results and retry, exactly
         the daemon's drain-and-retry loop. *)
      drain ()
    done;
    submitted.(w) <- submitted.(w) + 1
  in
  let main () =
    List.iteri
      (fun seq op ->
        match op with
        | Sub key ->
          push_blocking (owner key) (CSub (seq, key));
          Reorder.put_control reorder ~seq (fun () ->
              emitted := E_control seq :: !emitted)
        | Pub key ->
          Reorder.put_pending reorder ~seq key;
          incr in_flight;
          push_blocking (owner key) (CPub (seq, key)))
      script;
    while !in_flight > 0 do
      drain ()
    done;
    Tsync.Atomic.set stop true;
    (* quiesce: wait out the per-worker processed counters *)
    Array.iteri
      (fun w p ->
        while Tsync.Atomic.get p < submitted.(w) do
          ()
        done)
      processed;
    if inject then ignore (Tsync.Cell.get noise)
  in
  let check () =
    let got = List.rev !emitted in
    let want = sequential script in
    if got <> want then
      failwith
        (Printf.sprintf "emitted [%s], sequential engine says [%s]"
           (emits_to_string got) (emits_to_string want));
    if not (Reorder.is_empty reorder) then
      failwith
        (Printf.sprintf "%d reorder slots left at quiesce" (Reorder.pending reorder));
    if Reorder.next_emit reorder <> List.length script then
      failwith
        (Printf.sprintf "reorder cursor %d, expected %d" (Reorder.next_emit reorder)
           (List.length script));
    if !in_flight <> 0 then
      failwith (Printf.sprintf "%d publications still in flight" !in_flight);
    Array.iteri
      (fun w r ->
        if not (Spsc.is_empty r) then
          failwith (Printf.sprintf "ingress ring %d not empty" w))
      ingress;
    Array.iter
      (fun r -> if not (Spsc.is_empty r) then failwith "result ring not empty")
      results;
    Array.iteri
      (fun w p ->
        let n = Tsync.Atomic.get p in
        if n <> submitted.(w) then
          failwith
            (Printf.sprintf "worker %d processed %d of %d commands" w n submitted.(w)))
      processed;
    Array.iteri
      (fun w shard ->
        let subs_owned =
          List.length
            (List.filteri
               (fun _ o -> match o with Sub k -> owner k = w | Pub _ -> false)
               script)
        in
        let have = List.length (Tsync.Cell.get shard) in
        if have <> subs_owned then
          failwith
            (Printf.sprintf "shard %d holds %d subscriptions, expected %d" w have
               subs_owned))
      shards
  in
  (Array.init (workers + 1) (fun i -> if i = 0 then main else worker (i - 1)), check)

(* ------------------------------------------------------------------ *)
(* SPSC ring model: FIFO through wraparound at capacity 2.             *)
(* ------------------------------------------------------------------ *)

let spsc_model ~items ~cap () =
  let ring = Spsc.create cap in
  let got = ref [] in
  let producer () =
    for i = 1 to items do
      while not (Spsc.push ring i) do
        ()
      done
    done
  in
  let consumer () =
    let n = ref 0 in
    while !n < items do
      match Spsc.pop ring with
      | Some v ->
        got := v :: !got;
        incr n
      | None -> ()
    done
  in
  let check () =
    let want = List.init items (fun i -> i + 1) in
    let have = List.rev !got in
    if have <> want then
      failwith
        (Printf.sprintf "consumer saw [%s], producer sent [%s]"
           (String.concat "," (List.map string_of_int have))
           (String.concat "," (List.map string_of_int want)));
    if not (Spsc.is_empty ring) then failwith "ring not empty after full drain"
  in
  ([| producer; consumer |], check)

(* ------------------------------------------------------------------ *)
(* Scenario table and driver                                           *)
(* ------------------------------------------------------------------ *)

type scenario = {
  sc_name : string;
  sc_depth : int;  (** default bounded-exhaustive DFS depth *)
  sc_mk : inject:bool -> unit -> (unit -> unit) array * (unit -> unit);
}

let scenarios =
  [
    {
      sc_name = "spsc-ring-wrap";
      sc_depth = 10;
      sc_mk = (fun ~inject:_ () -> spsc_model ~items:5 ~cap:2 ());
    };
    {
      sc_name = "pool-1worker";
      sc_depth = 9;
      sc_mk =
        (fun ~inject () ->
          pool_model ~workers:1 ~script:[ Sub 0; Pub 0; Sub 0; Pub 0 ] ~inject ());
    };
    {
      sc_name = "pool-2worker";
      sc_depth = 6;
      sc_mk =
        (fun ~inject () ->
          pool_model ~workers:2
            ~script:[ Sub 0; Sub 1; Pub 0; Pub 1; Pub 0 ]
            ~inject ());
    };
  ]

let explore_scenarios ?depth ?(random = 250) ?(seed = 1) ?(inject = false) () =
  List.map
    (fun sc ->
      let depth = Option.value depth ~default:sc.sc_depth in
      ( sc.sc_name,
        Tsync.Sched.explore ~depth ~random ~seed ~mk:(sc.sc_mk ~inject) () ))
    scenarios

let stat_key name = String.map (fun c -> if c = '-' then '_' else c) name

let audit ?depth ?random ?seed ?(inject = false) () =
  let results = explore_scenarios ?depth ?random ?seed ~inject () in
  let findings = ref [] in
  let schedules = ref 0 and steps = ref 0 and races = ref 0 and divergences = ref 0 in
  List.iter
    (fun (name, (e : Tsync.Sched.exploration)) ->
      schedules := !schedules + e.distinct;
      steps := !steps + e.total_steps;
      races := !races + List.length e.race_witnesses;
      divergences := !divergences + List.length e.failure_witnesses;
      List.iter
        (fun (sched, diag) ->
          findings :=
            Finding.make ~severity:Error ~family:"conc" ~code:"conc-race"
              ~subject:(Printf.sprintf "data race in model %s: %s" name diag)
              ~witness:(Printf.sprintf "witness schedule [%s]" sched)
            :: !findings)
        e.race_witnesses;
      List.iter
        (fun (sched, diag) ->
          findings :=
            Finding.make ~severity:Error ~family:"conc" ~code:"conc-divergence"
              ~subject:
                (Printf.sprintf "model %s diverged from the sequential engine: %s"
                   name diag)
              ~witness:(Printf.sprintf "witness schedule [%s]" sched)
            :: !findings)
        e.failure_witnesses)
    results;
  let stats =
    [
      ("conc_scenarios", float_of_int (List.length results));
      ("conc_schedules", float_of_int !schedules);
      ("conc_steps", float_of_int !steps);
      ("conc_races", float_of_int !races);
      ("conc_divergences", float_of_int !divergences);
    ]
    @ List.map
        (fun (name, (e : Tsync.Sched.exploration)) ->
          ("conc_schedules_" ^ stat_key name, float_of_int e.distinct))
        results
  in
  Finding.report ~stats (List.rev !findings)
