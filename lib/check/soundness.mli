(** Differential soundness audit of the paper's covering and merging
    rules against the exact automata engine, over seeded predicate-free
    corpora (name-level languages coincide with full XPE semantics
    exactly when no predicates are present).

    Unsound decisions — the rule claims covering/containment the oracle
    refutes, which would make a broker silently drop publications — are
    [Error] findings with the witness pair. Incompleteness is one
    [Warning] per rule family, with counts and rates in the stats. *)

open Xroute_xpath

(** [run ()] sweeps the corpora and returns the report. [covers] and
    [adv_covers] default to the paper rules ({!Xroute_core.Cover}); pass
    a different predicate to audit another engine, or a broken one (see
    {!planted_unsound_covers}) for the mutation check. Statistics
    reported: per family, pairs checked / claimed / contained / unsound
    / incomplete and the incompleteness rate. With [witness_incomplete]
    each incomplete pair also becomes an [Info] finding (capped), the
    source of the pinned Paper-vs-Exact regression corpus. *)
val run :
  ?covers:(Xpe.t -> Xpe.t -> bool) ->
  ?adv_covers:(Adv.t -> Adv.t -> bool) ->
  ?seeds:int list ->
  ?pairs_per_seed:int ->
  ?witness_incomplete:bool ->
  unit ->
  Finding.report

(** Deterministic corpus generators, exposed for the regression tests. *)

val gen_xpe : Xroute_support.Prng.t -> Xpe.t

val gen_adv : Xroute_support.Prng.t -> Adv.t

(** A deliberately unsound covering rule ("covers anything no longer
    than itself") for the mutation check: running {!run} with it must
    produce errors, proving the analyzer catches planted unsoundness. *)
val planted_unsound_covers : Xpe.t -> Xpe.t -> bool
