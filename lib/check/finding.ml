(* Findings of the static analyzer: one record per detected problem,
   grouped into a report with the pass statistics (corpus sizes,
   incompleteness rates). Severities follow the traffic-loss rule: an
   [Error] means the system would silently drop publications (unsound
   covering/merging, a routing-state invariant violation); a [Warning]
   flags workload smells and rule incompleteness (extra traffic, never
   lost traffic); [Info] is commentary. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  family : string; (* "workload" | "soundness" | "routing" *)
  code : string; (* stable machine-readable finding kind *)
  subject : string; (* what the finding is about *)
  witness : string; (* the evidence: the offending pair / entry *)
}

type report = {
  findings : t list;
  stats : (string * float) list; (* corpus sizes, rates; report order *)
}

let make ~severity ~family ~code ~subject ~witness =
  { severity; family; code; subject; witness }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let empty = { findings = []; stats = [] }

let report ?(stats = []) findings = { findings; stats }

let concat reports =
  {
    findings = List.concat_map (fun r -> r.findings) reports;
    stats = List.concat_map (fun r -> r.stats) reports;
  }

let count severity r =
  List.length (List.filter (fun f -> f.severity = severity) r.findings)

let errors r = count Error r
let warnings r = count Warning r
let infos r = count Info r
let has_errors r = List.exists (fun f -> f.severity = Error) r.findings

(* Severity-ordered copy: errors first, stable within a severity. *)
let by_severity r =
  let rank = function Error -> 0 | Warning -> 1 | Info -> 2 in
  List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) r.findings

(* ---------------- text rendering ---------------- *)

let to_text r =
  let buf = Buffer.create 512 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s[%s/%s] %s\n" (severity_to_string f.severity) f.family f.code
           f.subject);
      if f.witness <> "" then
        Buffer.add_string buf (Printf.sprintf "    witness: %s\n" f.witness))
    (by_severity r);
  if r.stats <> [] then begin
    Buffer.add_string buf "stats:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "    %s = %g\n" k v))
      r.stats
  end;
  Buffer.add_string buf
    (Printf.sprintf "%d errors, %d warnings, %d infos\n" (errors r) (warnings r) (infos r));
  Buffer.contents buf

(* ---------------- JSON rendering ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Schema (DESIGN.md Sec. 10): counts at the top, then the pass stats as
   one flat object, then the findings, severity-ordered. *)
let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"errors\": %d, \"warnings\": %d, \"infos\": %d" (errors r)
       (warnings r) (infos r));
  Buffer.add_string buf ", \"stats\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\": %s" (json_escape k) (json_float v)))
    r.stats;
  Buffer.add_string buf "}, \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"severity\": \"%s\", \"family\": \"%s\", \"code\": \"%s\", \"subject\": \
            \"%s\", \"witness\": \"%s\"}"
           (severity_to_string f.severity) (json_escape f.family) (json_escape f.code)
           (json_escape f.subject) (json_escape f.witness)))
    (by_severity r);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Feed a finished report into the observability counters. *)
let record_meters meters r =
  Xroute_obs.Check_meters.record meters ~errors:(errors r) ~warnings:(warnings r)
    ~infos:(infos r)
