(* Observability audit (see obs.mli).

   The first two sections are pure: seeded distributions through the
   sketch against exact order statistics, and the algebraic laws the
   federation protocol leans on. The third drives a real 3-broker line
   overlay (the sim twin of the daemon deployment) so the counter
   monotonicity, gauge sanity, span/metric cross-consistency and
   federation checks all run against telemetry produced by the actual
   routing path, not synthetic fixtures. *)

open Xroute_support
module Sketch = Xroute_obs.Sketch
module Health = Xroute_obs.Health
module M = Xroute_obs.Metrics
module Timeseries = Xroute_obs.Timeseries
module Span = Xroute_obs.Span
module Net = Xroute_overlay.Net
module Sim = Xroute_overlay.Sim
module Topology = Xroute_overlay.Topology

let err code subject witness =
  Finding.make ~severity:Finding.Error ~family:"obs" ~code ~subject ~witness

(* ------------------------------------------------------------------ *)
(* Sketch accuracy: estimates vs exact order statistics                 *)
(* ------------------------------------------------------------------ *)

let quantile_points = [ 0.5; 0.9; 0.95; 0.99; 0.999 ]

(* Seeded distributions spanning the shapes the sketches actually see:
   flat (queue depths), heavy-tailed (hop latency under bursts), ranked
   (Zipf subscription popularity), and a bimodal latency mixture. All
   strictly positive, so relative error is well-defined. *)
let distributions ~samples ~seed =
  let prng = Prng.create seed in
  let zipf = Zipf.create ~n:1000 ~exponent:1.1 in
  let gen name f = (name, Array.init samples (fun _ -> f ())) in
  [
    gen "uniform" (fun () -> 1.0 +. Prng.float prng 1000.0);
    gen "exponential" (fun () -> -50.0 *. log (1.0 -. Prng.unit_float prng));
    gen "zipf" (fun () -> float_of_int (1 + Zipf.sample zipf prng));
    gen "latency-mix" (fun () ->
        if Prng.bernoulli prng 0.05 then 100.0 +. Prng.float prng 900.0
        else 0.5 +. Prng.float prng 4.5);
  ]

let sketch_accuracy ~samples ~seed =
  let findings = ref [] in
  let max_err = ref 0.0 in
  let dists = distributions ~samples ~seed in
  List.iter
    (fun (name, xs) ->
      let sk = Sketch.create () in
      Array.iter (fun v -> Sketch.observe sk v) xs;
      List.iter
        (fun q ->
          let exact = Stats.percentile xs q in
          let est = Sketch.quantile sk q in
          let rel = abs_float (est -. exact) /. abs_float exact in
          if rel > !max_err then max_err := rel;
          if rel > Sketch.alpha sk +. 1e-9 then
            findings :=
              err "obs-sketch-error"
                (Printf.sprintf "sketch quantile outside the advertised bound on %s" name)
                (Printf.sprintf "q=%g: sketch %g vs exact %g (rel %.5f > alpha %.5f)" q est
                   exact rel (Sketch.alpha sk))
              :: !findings)
        quantile_points)
    dists;
  (List.rev !findings, !max_err, List.length dists)

(* ------------------------------------------------------------------ *)
(* Merge algebra: the laws federation relies on                         *)
(* ------------------------------------------------------------------ *)

let merge_properties ~seed =
  let findings = ref [] in
  let prng = Prng.create ((seed * 31) + 17) in
  let chunk () =
    let s = Sketch.create () in
    for _ = 1 to 2000 do
      Sketch.observe s (0.1 +. Prng.float prng 500.0)
    done;
    s
  in
  let a = chunk () and b = chunk () and c = chunk () in
  if not (Sketch.equal (Sketch.merge a b) (Sketch.merge b a)) then
    findings :=
      err "obs-merge-noncommutative" "sketch merge is order-sensitive"
        (Printf.sprintf "encode(a+b) <> encode(b+a) for two %d-sample chunks" 2000)
      :: !findings;
  let left = Sketch.merge (Sketch.merge a b) c in
  let right = Sketch.merge a (Sketch.merge b c) in
  if Sketch.count left <> Sketch.count right then
    findings :=
      err "obs-merge-nonassociative" "sketch merge loses observations under regrouping"
        (Printf.sprintf "count (a+b)+c = %d, a+(b+c) = %d" (Sketch.count left)
           (Sketch.count right))
      :: !findings;
  List.iter
    (fun q ->
      let l = Sketch.quantile left q and r = Sketch.quantile right q in
      if l <> r then
        findings :=
          err "obs-merge-nonassociative" "sketch quantiles depend on merge grouping"
            (Printf.sprintf "q=%g: (a+b)+c says %g, a+(b+c) says %g" q l r)
          :: !findings)
    quantile_points;
  (match Sketch.decode (Sketch.encode left) with
  | Some s when Sketch.equal s left -> ()
  | Some _ ->
    findings :=
      err "obs-codec-roundtrip" "sketch decode(encode) is not the identity"
        (Sketch.encode left)
      :: !findings
  | None ->
    findings :=
      err "obs-codec-roundtrip" "sketch encoding does not decode" (Sketch.encode left)
      :: !findings);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Overlay harness: a 3-broker line under a book-DTD workload           *)
(* ------------------------------------------------------------------ *)

type harness = {
  net : Net.t;
  spans : Span.t;
  ts_samples : Timeseries.sample list;  (** one per publish round, plus a baseline *)
}

let overlay_harness ~seed =
  let dtd = Lazy.force Xroute_dtd.Dtd_samples.book in
  let spans = Span.create ~capacity:65536 () in
  let topo = Topology.line 3 in
  let net = Net.create ~config:{ Net.default_config with Net.seed } ~spans topo in
  let publisher = Net.add_client net ~broker:0 in
  let edge = List.map (fun b -> Net.add_client net ~broker:b) [ 1; 2 ] in
  let graph = Xroute_dtd.Dtd_graph.build dtd in
  ignore (Net.advertise_dtd net publisher (Xroute_dtd.Dtd_paths.advertisements graph));
  Net.run net;
  let params = Xroute_workload.Workload.set_b_params dtd in
  let xpes = Xroute_workload.Workload.xpes ~params ~count:24 ~seed () in
  List.iteri
    (fun i x -> ignore (Net.subscribe net (List.nth edge (i mod 2)) x))
    xpes;
  Net.run net;
  let ts = Timeseries.create (Net.metrics net) in
  Timeseries.snapshot ts ~at:(Sim.now (Net.sim net));
  let docs = Xroute_workload.Workload.documents ~dtd ~count:9 ~seed () in
  List.iteri
    (fun i doc ->
      ignore (Net.publish_doc net publisher ~doc_id:(i + 1) doc);
      (* One snapshot per 3-document round, so monotonicity has several
         consecutive deltas to look at. *)
      if (i + 1) mod 3 = 0 then begin
        Net.run net;
        Timeseries.snapshot ts ~at:(Sim.now (Net.sim net))
      end)
    docs;
  Net.run net;
  Net.refresh_metrics net;
  { net; spans; ts_samples = Timeseries.to_list ts }

(* The --inject-obs-drift plant: roll one counter of the final snapshot
   back to zero, the signature of a silently restarted (or wrongly
   re-registered) metric source. The monotonicity check must catch it. *)
let plant_drift samples =
  match List.rev samples with
  | [] -> samples
  | last :: earlier ->
    let values =
      List.map
        (fun (name, v) ->
          if name = "xroute_net_msgs_pub_total" then (name, 0.0) else (name, v))
        last.Timeseries.values
    in
    List.rev ({ last with Timeseries.values } :: earlier)

let check_monotonic samples =
  let findings = ref [] in
  let counters = ref 0 in
  let rec walk = function
    | ({ Timeseries.values = prev; at = t0 } : Timeseries.sample)
      :: ({ Timeseries.values = next; at = t1 } as s)
      :: rest ->
      List.iter
        (fun (name, v1) ->
          let is_counter =
            String.length name > 6
            && String.sub name (String.length name - 6) 6 = "_total"
          in
          if is_counter then begin
            incr counters;
            match List.assoc_opt name prev with
            | Some v0 when v1 < v0 ->
              findings :=
                err "obs-counter-regression"
                  (Printf.sprintf "counter %s moved backwards" name)
                  (Printf.sprintf "%g at t=%g, then %g at t=%g" v0 t0 v1 t1)
                :: !findings
            | _ -> ()
          end)
        next;
      walk (s :: rest)
    | _ -> ()
  in
  walk samples;
  (List.rev !findings, !counters)

let check_gauges registry =
  let findings = ref [] in
  let gauges = ref 0 in
  List.iter
    (fun (name, _, metric) ->
      match metric with
      | M.Gauge g ->
        incr gauges;
        let v = M.gauge_value g in
        if not (Float.is_finite v) then
          findings :=
            err "obs-gauge-nonfinite" (Printf.sprintf "gauge %s is not finite" name)
              (Printf.sprintf "value %h" v)
            :: !findings
      | M.Counter c ->
        if M.value c < 0 then
          findings :=
            err "obs-counter-regression" (Printf.sprintf "counter %s is negative" name)
              (Printf.sprintf "value %d" (M.value c))
            :: !findings
      | M.Histogram h ->
        let s = M.summary h in
        if s.Stats.count > 0 && not (Float.is_finite s.Stats.p99) then
          findings :=
            err "obs-gauge-nonfinite"
              (Printf.sprintf "histogram %s has a non-finite quantile" name)
              (Printf.sprintf "p99 %h over %d observations" s.Stats.p99 s.Stats.count)
            :: !findings)
    (M.metrics registry);
  (List.rev !findings, !gauges)

(* Three independent observers of the same events — the Publish-message
   counter, the per-visit hop spans, and the federated health pub
   counts — must agree exactly. *)
let check_cross_consistency h =
  let findings = ref [] in
  let pub_msgs =
    match M.scalar (Net.metrics h.net) "xroute_net_msgs_pub_total" with
    | Some v -> int_of_float v
    | None -> -1
  in
  let hop_spans =
    List.length (List.filter (fun s -> s.Span.name = "hop") (Span.to_list h.spans))
  in
  let view = Net.fedstats h.net ~root:0 () in
  let health_pubs = List.fold_left (fun acc (_, s) -> acc + Health.pubs s) 0 view in
  if pub_msgs <= 0 then
    findings :=
      err "obs-empty-harness" "the overlay harness produced no publish traffic"
        (Printf.sprintf "xroute_net_msgs_pub_total = %d" pub_msgs)
      :: !findings
  else if Span.length h.spans > Span.capacity h.spans then
    findings :=
      err "obs-empty-harness" "span ring overflowed; hop counts are incomparable"
        (Printf.sprintf "%d spans started, capacity %d" (Span.length h.spans)
           (Span.capacity h.spans))
      :: !findings
  else if hop_spans <> pub_msgs || health_pubs <> pub_msgs then
    findings :=
      err "obs-span-metric-mismatch"
        "publish counter, hop spans and health pub counts disagree"
        (Printf.sprintf "xroute_net_msgs_pub_total=%d, hop spans=%d, health pubs=%d"
           pub_msgs hop_spans health_pubs)
      :: !findings;
  (List.rev !findings, pub_msgs, hop_spans)

let check_federation h =
  let findings = ref [] in
  let brokers = Topology.broker_count (Net.topology h.net) in
  let full = Net.fedstats h.net ~root:0 () in
  let direct =
    Health.view_of (List.init brokers (fun b -> Net.health h.net b))
  in
  let merge_diffs =
    List.fold_left
      (fun acc (origin, s) ->
        match List.assoc_opt origin full with
        | Some s' when String.equal (Health.encode_summary s) (Health.encode_summary s')
          ->
          acc
        | _ -> acc + 1)
      (abs (List.length full - List.length direct))
      direct
  in
  if merge_diffs <> 0 then
    findings :=
      err "obs-fed-divergence"
        "the federated view differs from the union of per-broker summaries"
        (Printf.sprintf "%d per-origin diffs over %d brokers" merge_diffs brokers)
      :: !findings;
  if not (Health.view_equal (Health.merge_views full full) full) then
    findings :=
      err "obs-fed-idempotence" "merging the overlay view with itself changed it"
        (String.concat " / " (Health.encode_view full))
      :: !findings;
  List.iter
    (fun (ttl, want) ->
      let got = List.length (Net.fedstats h.net ~root:0 ~ttl ()) in
      if got <> want then
        findings :=
          err "obs-fed-divergence"
            (Printf.sprintf "ttl=%d pull returned the wrong origin set" ttl)
            (Printf.sprintf "%d origins, expected %d on a %d-broker line" got want brokers)
          :: !findings)
    [ (0, 1); (1, 2); (brokers - 1, brokers) ];
  (List.rev !findings, List.length full, merge_diffs)

(* ------------------------------------------------------------------ *)
(* The audit                                                            *)
(* ------------------------------------------------------------------ *)

let audit ?(seed = 1) ?(samples = 4000) ?(inject = false) () =
  let acc_findings, max_rel_err, dist_count = sketch_accuracy ~samples ~seed in
  let law_findings = merge_properties ~seed in
  let h = overlay_harness ~seed in
  let ts_samples = if inject then plant_drift h.ts_samples else h.ts_samples in
  let mono_findings, counters = check_monotonic ts_samples in
  let gauge_findings, gauges = check_gauges (Net.aggregate_metrics h.net) in
  let cross_findings, pub_msgs, hop_spans = check_cross_consistency h in
  let fed_findings, fed_origins, merge_diffs = check_federation h in
  let f = float_of_int in
  Finding.report
    ~stats:
      [
        ("obs_sketch_distributions", f dist_count);
        ("obs_sketch_samples", f samples);
        ("obs_sketch_max_rel_error", max_rel_err);
        ("obs_sketch_alpha", Sketch.default_alpha);
        ("obs_snapshots", f (List.length ts_samples));
        ("obs_counters_checked", f counters);
        ("obs_gauges_checked", f gauges);
        ("obs_pub_msgs", f pub_msgs);
        ("obs_hop_spans", f hop_spans);
        ("obs_fed_origins", f fed_origins);
        ("obs_fed_merge_diffs", f merge_diffs);
      ]
    (acc_findings @ law_findings @ mono_findings @ gauge_findings @ cross_findings
   @ fed_findings)
