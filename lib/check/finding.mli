(** Findings of the static analyzer.

    Severity follows the traffic-loss rule: {!Error} marks conditions
    under which the network silently loses publications (an unsound
    covering or merging decision, a routing-state invariant violation);
    {!Warning} marks workload smells and rule incompleteness, which cost
    extra traffic but never lose data; {!Info} is commentary. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  family : string;
      (** ["workload"] | ["soundness"] | ["routing"] | ["shard"] |
          ["scenario"] | ["conc"] | ["obs"] *)
  code : string;  (** stable machine-readable finding kind *)
  subject : string;  (** what the finding is about *)
  witness : string;  (** the evidence: the offending pair / entry *)
}

(** A pass result: findings plus named statistics (corpus sizes,
    incompleteness rates) that the JSON report carries verbatim. *)
type report = { findings : t list; stats : (string * float) list }

val make :
  severity:severity -> family:string -> code:string -> subject:string -> witness:string -> t

val severity_to_string : severity -> string
val empty : report
val report : ?stats:(string * float) list -> t list -> report
val concat : report list -> report
val errors : report -> int
val warnings : report -> int
val infos : report -> int
val has_errors : report -> bool

(** Findings errors-first (stable within a severity). *)
val by_severity : report -> t list

(** Human-readable rendering: one line per finding with an indented
    witness, then the stats and the severity totals. *)
val to_text : report -> string

(** Machine-readable rendering (see DESIGN.md Sec. 10): severity counts,
    a flat [stats] object, and the severity-ordered findings array. *)
val to_json : report -> string

(** Feed the report's severity totals into the observability counters. *)
val record_meters : Xroute_obs.Check_meters.t -> report -> unit
