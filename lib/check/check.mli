(** Workload analysis and routing-state audit (the reusable form of the
    invariant checks that used to live inline in [test_fault.ml]).

    Workload findings are warnings: the network behaves correctly, the
    workload pays for subscriptions that cannot matter. Audit findings
    are errors: a violated routing invariant silently loses
    publications. *)

open Xroute_xpath
open Xroute_core

(** [analyze_workload ~advs ~subs ()] inspects subscriptions (client id,
    XPE, in registration order) against the advertised languages:

    - [dead-subscription] — name language disjoint from every
      advertisement ([Nfa.intersect_nonempty] on the product);
    - [contradictory-predicates] — one step requires the same attribute
      equal to two different values, so the XPE matches nothing;
    - [shadowed-subscription] — strictly covered (exact engine) by an
      earlier subscription of the same client.

    Each finding carries the witness (the offending pair / predicate).
    With no advertisements, the dead-subscription check is skipped. *)
val analyze_workload :
  ?advs:Adv.t list -> subs:(int * Xpe.t) list -> unit -> Finding.t list

(** Audit one broker's routing state via {!Broker.audit_view}: SRT index
    and PRT covering-forest structural invariants, last-hop validity,
    forwarded-target sanity, and covered-set consistency (every
    non-suppressed stored subscription reaches each required next hop
    directly or through a forwarded coverer/merger — a "covering hole"
    means lost publications). When the live ledgers are supplied, SRT /
    PRT entries outside them are reported as dangling; [live_subs]
    should include merger ids when auditing a network (see
    {!audit_net}). *)
val audit_broker :
  ?live_advs:Message.sub_id list ->
  ?live_subs:Message.sub_id list ->
  Broker.t ->
  Finding.t list

(** Audit every live broker of a converged network against the client
    ledgers (merger ids collected from live brokers are considered
    live). Call after {!Xroute_overlay.Net.run} has quiesced. *)
val audit_net : Xroute_overlay.Net.t -> Finding.t list

(** {!audit_net} packaged as a report with audit statistics. *)
val audit_net_report : Xroute_overlay.Net.t -> Finding.report

(** {2 Shard-integrity audit}

    The domain pool partitions the PRT by advertisement-root symbol:
    an anchored subscription (absolute [/name] first step) lives on
    exactly the shard owning its root, an unanchored one is replicated
    to every shard. A violated partition silently loses publications —
    the pool matches each publication on one shard only — so every
    finding in this family is error-severity. *)

(** Plain-data snapshot of the pool, taken at quiescence (see
    [Xroute_daemon.Shard_pool.view]). *)
type shard_view = {
  shv_domains : int;  (** worker-domain count *)
  shv_entries : (int * (Message.sub_id * int) list) list;
      (** per shard: the (subscription id, arrival stamp) pairs stored *)
  shv_subs : (Message.sub_id * int option) list;
      (** authoritative PRT subscriptions; [Some shard] = anchored,
          owned by that shard, [None] = replicated to all *)
  shv_shard_pubs : (int * int) list;
      (** per shard: publications matched there *)
  shv_pool_pubs : int;  (** publications routed through the pool *)
}

(** Partition-integrity findings: anchored entries on exactly their
    owner shard, unanchored entries on all shards, no orphan shard
    entries, unique stamps per shard, per-shard publication counters
    summing to the pool gauge. Empty when healthy. *)
val audit_shards : shard_view -> Finding.t list

(** {!audit_shards} packaged as a report with shard statistics. *)
val audit_shards_report : shard_view -> Finding.report

(** {2 Scenario-integrity audit}

    The scale harness itself is audited: the simulator's heap and list
    queue backends must produce byte-identical delivery ledgers on the
    same scenario (the differential gate), identical specs must
    reproduce identical ledger/decision digests and fault accounting
    across runs, and a scenario must actually exercise the network —
    nonzero deliveries, at least one subscription per client. All error-severity: a broken harness
    silently invalidates every benchmark and regression gate built on
    it. *)

(** Audit one scenario spec (run it several times — keep specs at smoke
    scale). Returns the findings plus the heap-queue outcome the checks
    ran against. [inject] replays the list leg of the differential one
    seed off, so the gate provably fires (the @scenario mutation
    rule). *)
val audit_scenario :
  ?inject:bool ->
  Xroute_workload.Scenario.spec ->
  Finding.t list * Xroute_workload.Scenario.outcome

(** {!audit_scenario} over a spec list, packaged as a report with sweep
    statistics. *)
val audit_scenario_report :
  ?inject:bool -> Xroute_workload.Scenario.spec list -> Finding.report
