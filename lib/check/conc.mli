(** Concurrency audit of the shard pool's lock-free core.

    PR 7 made the broker multicore; its safety net until now was
    differential testing under whatever interleavings the OS produced.
    This family closes that gap the way cover/merge soundness is
    closed: systematically. The pool's cross-domain machinery — the
    SPSC ingress/result rings, the seq-keyed reorder buffer, the
    processed/stop counters — is built on [Xroute_support.Tsync], so
    the {e same code} that runs under the daemon is replayed here on a
    cooperative scheduler that context-switches at every instrumented
    access, exploring bounded-exhaustive plus seeded-random schedules.

    Each scenario models one slice of the pool's enqueue/match/drain
    logic (a producer/consumer ring at wraparound; a 1-worker and a
    2-worker pool fed interleaved subscribe/publish scripts). After
    every schedule the emitted decisions are compared against the
    sequential engine's and the pool invariants are re-checked: seqs
    emitted gap-free and monotone, rings empty, reorder buffer empty at
    quiesce, processed counters equal to submitted. Throughout, a
    vector-clock happens-before detector flags any pair of plain
    accesses to one location unordered by the release/acquire chains.

    Every finding is error-severity and carries the witness schedule —
    the decision trace that reproduces it. *)

open Xroute_support

(** Exploration of every scenario: name paired with the outcome. *)
val explore_scenarios :
  ?depth:int ->
  ?random:int ->
  ?seed:int ->
  ?inject:bool ->
  unit ->
  (string * Tsync.Sched.exploration) list
(** [depth] overrides each scenario's DFS depth bound (default:
    per-scenario, sized so the sweep stays in the hundreds of
    schedules per scenario); [random] adds seeded random walks per
    scenario (default 250). [inject] plants an unsynchronized plain
    counter between a worker and the main thread — the must-fail
    mutation proving the detector has teeth. *)

val audit :
  ?depth:int -> ?random:int -> ?seed:int -> ?inject:bool -> unit -> Finding.report
(** {!explore_scenarios} packaged as a report: [conc-race] /
    [conc-divergence] errors with witness schedules, plus the
    schedules/steps statistics the @conc gate and BENCH_9 pin. *)
