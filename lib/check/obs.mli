(** Observability audit: does the telemetry itself tell the truth?

    Every other family trusts the counters, spans and sketches it reads.
    This family closes the loop on that trust, in three layers:

    - {e sketch accuracy} — seeded distributions (uniform, exponential,
      Zipf ranks, a bimodal latency mixture) pushed through
      {!Xroute_obs.Sketch}, every estimated quantile compared against
      the exact order statistic; any relative error beyond the
      advertised [alpha] is an Error;
    - {e merge algebra} — the laws the [FEDSTATS] federation relies on:
      merge commutativity and associativity (exact, because bucket
      counts are integers), and encode/decode as the identity;
    - {e overlay telemetry} — a 3-broker line under a book-DTD workload,
      checked end to end: counter monotonicity across timeseries
      snapshots (the [_total] convention), gauge and quantile
      finiteness, span/metric/health cross-consistency (the Publish
      counter, the per-visit "hop" spans and the federated health pub
      counts must agree exactly), and the federation itself (the pulled
      view equals the union of per-broker summaries, merging a view
      with itself changes nothing, ttl bounds the origin set).

    Every finding is error-severity: a wrong number in the telemetry is
    a lie every dashboard and gate downstream repeats. *)

val audit : ?seed:int -> ?samples:int -> ?inject:bool -> unit -> Finding.report
(** [samples] sizes each seeded distribution (default 4000). [inject]
    plants a counter regression in the collected snapshot data (rolls
    one [_total] back to zero, a silently-restarted metric source) — the
    must-fail mutation behind [--inject-obs-drift]. *)
