(* Discrete-event simulation engine.

   Events are closures ordered by (virtual time, insertion sequence);
   the sequence number makes simultaneous events deterministic (FIFO
   for equal times). Virtual time is in milliseconds.

   Two queue backends implement the same ordering contract:

   - [`Heap] (default): {!Xroute_support.Equeue}, a 4-ary min-heap over
     parallel unboxed arrays — the production path, no per-event record
     allocation.
   - [`List]: a sorted insertion list. O(n) per schedule, kept as the
     obviously-correct reference; the scenario differential gate runs
     every scenario against both backends and requires byte-identical
     delivery ledgers. *)

type queue_kind = [ `Heap | `List ]

type list_queue = {
  (* Ascending (time, seq); head is the next event. *)
  mutable items : (float * int * (unit -> unit)) list;
  mutable next_seq : int;
}

type queue = Q_heap of Xroute_support.Equeue.t | Q_list of list_queue

type t = {
  queue : queue;
  mutable now : float;
  mutable executed : int;
}

let create ?(queue = `Heap) () =
  let queue =
    match queue with
    | `Heap -> Q_heap (Xroute_support.Equeue.create ~capacity:1024 ())
    | `List -> Q_list { items = []; next_seq = 0 }
  in
  { queue; now = 0.0; executed = 0 }

let queue_kind t = match t.queue with Q_heap _ -> `Heap | Q_list _ -> `List
let now t = t.now

let pending t =
  match t.queue with
  | Q_heap h -> Xroute_support.Equeue.length h
  | Q_list l -> List.length l.items

let executed t = t.executed

(* Schedule [action] to run [delay] ms from the current virtual time. *)
let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  let time = t.now +. delay in
  match t.queue with
  | Q_heap h -> Xroute_support.Equeue.push h ~time action
  | Q_list l ->
    let seq = l.next_seq in
    l.next_seq <- seq + 1;
    (* Stable insert: the new event goes after every existing entry with
       an equal time (its seq is the largest so far). *)
    let rec insert = function
      | [] -> [ (time, seq, action) ]
      | ((t0, _, _) as hd) :: tl when t0 <= time -> hd :: insert tl
      | rest -> (time, seq, action) :: rest
    in
    l.items <- insert l.items

(* Run until the queue drains (or [max_events] is hit, a runaway guard). *)
let run ?(max_events = 200_000_000) t =
  let budget = ref max_events in
  let exec time action =
    t.now <- (if time > t.now then time else t.now);
    t.executed <- t.executed + 1;
    action ()
  in
  match t.queue with
  | Q_heap h ->
    while
      if !budget <= 0 then
        failwith "Sim.run: event budget exhausted (runaway simulation?)"
      else Xroute_support.Equeue.pop_with h exec
    do
      decr budget
    done
  | Q_list l ->
    let continue = ref true in
    while !continue do
      match l.items with
      | [] -> continue := false
      | (time, _, action) :: rest ->
        if !budget <= 0 then
          failwith "Sim.run: event budget exhausted (runaway simulation?)";
        decr budget;
        l.items <- rest;
        exec time action
    done

(* Advance virtual time to at least [time] even with an empty queue. *)
let advance_to t time = if time > t.now then t.now <- time
