(** The dissemination network: brokers wired over a topology, clients at
    the edge, and a discrete-event simulation of message exchange.

    Each delivery costs link latency + per-byte transmission + the
    receiving broker's processing time, the latter proportional to the
    match/cover operations actually performed — so smaller routing
    tables mean lower notification delay, the mechanism behind the
    paper's Figures 10-11. *)

open Xroute_core

type config = {
  strategy : Broker.strategy;
  latency : Latency.model;
  per_match_cost : float;  (** ms per match/cover operation *)
  per_msg_cost : float;  (** fixed per-message processing, ms *)
  per_byte_cost : float;  (** transmission, ms per byte *)
  client_link : float;  (** client-to-home-broker latency, ms *)
  seed : int;
}

val default_config : config

type client = {
  cid : int;
  home : int;  (** broker id *)
  delivered : (int, float) Hashtbl.t;  (** doc_id -> first delivery time *)
  mutable path_messages : int;  (** path publications received *)
  mutable connected : bool;  (** false while a [Client_drop] fault is active *)
  mutable adv_ledger : (Message.sub_id * Xroute_xpath.Adv.t) list;
      (** client-side session ledger, newest first: replayed (original
          ids, idempotent) after a reconnect or home-broker restart *)
  mutable sub_ledger : (Message.sub_id * Xroute_xpath.Xpe.t) list;
}

type traffic = {
  mutable adv : int;
  mutable unadv : int;
  mutable sub : int;
  mutable unsub : int;
  mutable pub : int;
}

type t

(** [create ?trace ?spans ?recorder topo] — pass a [Xroute_obs.Trace.t]
    to record every broker visit (id, virtual time, queue depth, match
    ops charged); pass a [Xroute_obs.Span.t] collector to additionally
    build full causal span trees per publication (root "pub" span, one
    "hop" span per broker with per-stage leaves, "edge" spans for every
    link crossing); pass a [Xroute_obs.Recorder.t] to dump a flight
    record (final spans + metrics snapshot) when a fault-plan event
    fires. *)
val create :
  ?config:config ->
  ?queue:Sim.queue_kind ->
  ?trace:Xroute_obs.Trace.t ->
  ?spans:Xroute_obs.Span.t ->
  ?recorder:Xroute_obs.Recorder.t ->
  Topology.t ->
  t

val topology : t -> Topology.t
val sim : t -> Sim.t

(** The configuration the network was created with. *)
val config : t -> config
val broker : t -> int -> Broker.t
val brokers : t -> Broker.t array
val clients : t -> client list

val add_client : t -> broker:int -> client
val find_client : t -> int -> client option

(** {2 Virtual clients}

    The million-client path: subscribers addressed by bare client id,
    with no client record, ledger, or delivery table. Reserve an id
    block with {!alloc_cids}, subscribe with {!subscribe_virtual}, and
    receive deliveries through the {!set_edge_sink} callback — one call
    per path-publication delivery, in arrival order. *)

(** Reserve [n] contiguous client ids (disjoint from real clients);
    returns the first id of the block. *)
val alloc_cids : t -> int -> int

(** Install the sink for deliveries to non-materialized cids: called
    with (cid, doc_id, arrival time in virtual ms). *)
val set_edge_sink : t -> (int -> int -> float -> unit) -> unit

(** Path-publication deliveries that went to the edge sink. *)
val virtual_deliveries : t -> int

val subscribe_virtual : t -> broker:int -> cid:int -> Xroute_xpath.Xpe.t -> Message.sub_id
val unsubscribe_virtual : t -> broker:int -> Message.sub_id -> unit

(** Client operations; all enqueue work — call {!run} to execute. *)

val advertise : t -> client -> Xroute_xpath.Adv.t -> Message.sub_id
val advertise_dtd : t -> client -> Xroute_xpath.Adv.t list -> Message.sub_id list
val subscribe : t -> client -> Xroute_xpath.Xpe.t -> Message.sub_id
val unsubscribe : t -> client -> Message.sub_id -> unit
val unadvertise : t -> client -> Message.sub_id -> unit

(** Decompose a document at the edge and publish its paths; returns the
    number of path publications. *)
val publish_doc : t -> client -> doc_id:int -> Xroute_xml.Xml_tree.t -> int

(** Replay pre-extracted path publications. *)
val publish_paths : t -> client -> Xroute_xml.Xml_paths.publication list -> unit

(** Run the simulation to quiescence. *)
val run : t -> unit

(** Run a merging pass on every broker and deliver what it emits. *)
val merge_all : t -> unit

(** Hand the DTD-derived path universe to every broker (for merging);
    re-handed to brokers recreated by {!restart_broker}. *)
val set_universe : t -> string array list -> unit

(** {2 Fault injection}

    Deterministic failures executed inside the simulation (see
    [Xroute_fault.Plan]). A dead broker destroys arriving messages; on
    restart it comes back {e empty} and the survivors rebuild its state:
    each live neighbor purges everything learned through it
    ([Broker.neighbor_reset]) then re-sends what it needs
    ([Broker.resync_for]), and local clients replay their ledgers. Sends
    over a down link are requeued with capped exponential backoff
    (0.5 ms doubling to 16 ms); duplicated deliveries are harmless
    because the protocol deduplicates by id. *)

(** Cumulative fault accounting; [recovery_times] holds one entry
    (virtual ms of post-restart churn) per completed recovery episode,
    newest first. *)
type fault_stats = {
  mutable crashes : int;
  mutable restarts : int;
  mutable requeues : int;
  mutable dup_deliveries : int;
  mutable destroyed : int;
  mutable destroyed_pubs : int;
  mutable client_disconnects : int;
  mutable client_reconnects : int;
  mutable replayed : int;
  mutable recovery_times : float list;
}

val fault_stats : t -> fault_stats

(** Schedule every event of a fault plan (times relative to now). *)
val install_plan : t -> Xroute_fault.Plan.t -> unit

(** Immediate fault operations (the plan events call these). *)

val crash_broker : t -> int -> unit

val restart_broker : t -> int -> unit
val broker_alive : t -> int -> bool
val disconnect_client : t -> client -> unit

(** Reconcile (re-issue unsubscribes that were lost while away) and
    replay the ledger; with a dead home broker, recovery waits for the
    broker's restart instead. *)
val reconnect_client : t -> client -> unit

(** {2 Metrics} *)

(** Messages received by brokers, by kind. *)
val traffic : t -> traffic

val total_traffic : t -> int

(** (client, doc, delay-ms) per first delivery. *)
val delivery_delays : t -> (int * int * float) list

val mean_delivery_delay : t -> float
val total_prt_size : t -> int
val total_srt_size : t -> int

(** Distinct (client, document) deliveries. *)
val total_deliveries : t -> int

(** Publications that reached a broker and produced no output (the
    in-network false positives under imperfect merging), plus
    publications destroyed by an injected fault. *)
val dropped_publications : t -> int

(** Network-level metrics registry (traffic counters, per-hop latency
    and delivery-delay histograms); always live. *)
val metrics : t -> Xroute_obs.Metrics.t

(** The hop trace passed to {!create}, if any. *)
val trace : t -> Xroute_obs.Trace.t option

(** The span collector passed to {!create}, if any. *)
val spans : t -> Xroute_obs.Span.t option

(** The flight recorder passed to {!create}, if any. *)
val recorder : t -> Xroute_obs.Recorder.t option

(** Refresh every broker's derived gauges. *)
val refresh_metrics : t -> unit

(** {2 Health federation}

    Every broker maintains a {!Xroute_obs.Health} summary: hop-latency /
    queue-depth / backlog sketches, pub and drop counts, and per-link
    send rates and latency quantiles. Link EWMA rates fold and epochs
    bump when {!run} reaches quiescence. *)

(** Broker [b]'s live health summary. *)
val health : t -> int -> Xroute_obs.Health.t

(** [fedstats t ~root ?ttl ()] pulls summaries hop-bounded from [root]:
    a visited-set walk over the topology (loop suppression — safe on
    cyclic overlays) that stops at dead brokers, merged into one overlay
    view. [ttl] bounds the hop depth (default unbounded). The sim twin
    of the daemon's [FEDSTATS|] command. *)
val fedstats : t -> root:int -> ?ttl:int -> unit -> Xroute_obs.Health.view

(** One registry totalling the network registry and all (refreshed)
    broker registries. *)
val aggregate_metrics : t -> Xroute_obs.Metrics.t
