(** Discrete-event simulation engine: closures ordered by (virtual time,
    insertion sequence); time is in milliseconds.

    The queue backend is pluggable: [`Heap] (default) is the unboxed
    4-ary heap ({!Xroute_support.Equeue}); [`List] is a sorted-list
    reference implementation kept for the scenario differential gate.
    Both order events identically — (time, seq) with FIFO stability for
    equal times. *)

type t

type queue_kind = [ `Heap | `List ]

val create : ?queue:queue_kind -> unit -> t

val queue_kind : t -> queue_kind

(** Current virtual time (ms). *)
val now : t -> float

val pending : t -> int
val executed : t -> int

(** Schedule an action [delay] ms from now.
    @raise Invalid_argument on negative delays. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** Run until the queue drains.
    @raise Failure when [max_events] is exceeded (runaway guard). *)
val run : ?max_events:int -> t -> unit

(** Advance the clock without executing anything. *)
val advance_to : t -> float -> unit
