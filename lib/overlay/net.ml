(* The dissemination network: brokers wired over a topology, clients at
   the edge, and a discrete-event simulation of message exchange.

   Modeling (see DESIGN.md): each message delivery costs the link's
   latency (from the configured model), a per-byte transmission charge
   (so bigger documents travel slower) and the receiving broker's
   processing time, which is proportional to the number of match/cover
   operations the broker actually performed — the quantity covering
   optimizations reduce. Notification delay therefore shrinks when
   routing tables shrink, reproducing the mechanism behind the paper's
   Figures 10 and 11. *)

open Xroute_core

let log_src = Logs.Src.create "xroute.net" ~doc:"Dissemination network simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  strategy : Broker.strategy;
  latency : Latency.model;
  per_match_cost : float; (* ms per match/cover operation *)
  per_msg_cost : float; (* fixed per-message processing, ms *)
  per_byte_cost : float; (* transmission, ms per byte *)
  client_link : float; (* client <-> home broker latency, ms *)
  seed : int;
}

let default_config =
  {
    strategy = Broker.default_strategy;
    latency = Latency.cluster;
    per_match_cost = 0.0002;
    per_msg_cost = 0.005;
    per_byte_cost = 0.0001;
    client_link = 0.05;
    seed = 42;
  }

type client = {
  cid : int;
  home : int; (* broker id *)
  delivered : (int, float) Hashtbl.t; (* doc_id -> first delivery time *)
  mutable path_messages : int; (* path publications received *)
  mutable connected : bool; (* false while a Client_drop fault is active *)
  (* The client-side session ledger: what the client believes it has
     advertised/subscribed (newest first). Replayed with the original
     ids after its home broker restarts or after a reconnect — the
     broker deduplicates — and the ground truth the convergence tests
     compare a recovered network against. *)
  mutable adv_ledger : (Message.sub_id * Xroute_xpath.Adv.t) list;
  mutable sub_ledger : (Message.sub_id * Xroute_xpath.Xpe.t) list;
}

type traffic = {
  mutable adv : int;
  mutable unadv : int;
  mutable sub : int;
  mutable unsub : int;
  mutable pub : int;
}

module M = Xroute_obs.Metrics
module Trace = Xroute_obs.Trace
module Span = Xroute_obs.Span
module Recorder = Xroute_obs.Recorder

(* Network-level metric handles (the per-broker ones live in Broker). *)
type net_meters = {
  nm_adv : M.counter;
  nm_unadv : M.counter;
  nm_sub : M.counter;
  nm_unsub : M.counter;
  nm_pub : M.counter;
  nm_total : M.counter;
  nm_deliveries : M.counter;
  nm_hop_latency : M.histogram; (* full per-hop cost, ms *)
  nm_delivery_delay : M.histogram; (* emit-to-first-delivery, ms *)
}

let make_net_meters reg =
  {
    nm_adv = M.counter reg ~help:"Advertise messages received by brokers" "xroute_net_msgs_adv_total";
    nm_unadv =
      M.counter reg ~help:"Unadvertise messages received by brokers" "xroute_net_msgs_unadv_total";
    nm_sub = M.counter reg ~help:"Subscribe messages received by brokers" "xroute_net_msgs_sub_total";
    nm_unsub =
      M.counter reg ~help:"Unsubscribe messages received by brokers" "xroute_net_msgs_unsub_total";
    nm_pub = M.counter reg ~help:"Publish messages received by brokers" "xroute_net_msgs_pub_total";
    nm_total = M.counter reg ~help:"Messages received by brokers" "xroute_net_msgs_total";
    nm_deliveries =
      M.counter reg ~help:"First-time (client, doc) deliveries" "xroute_net_deliveries_total";
    nm_hop_latency =
      M.histogram reg ~help:"Per-hop cost: processing + transmission + link (ms)"
        "xroute_net_hop_latency_ms";
    nm_delivery_delay =
      M.histogram reg ~help:"Emit-to-first-delivery delay (ms)" "xroute_net_delivery_delay_ms";
  }

(* Active fault windows on one overlay edge (keyed (min, max)). *)
type link_fault = {
  mutable down_until : float; (* sends fail, requeued with backoff *)
  mutable slow_until : float; (* deliveries take [extra_ms] longer *)
  mutable extra_ms : float;
  mutable dup_until : float; (* every delivery arrives twice *)
}

(* One direction of an overlay edge. Like the TCP connection it models,
   the link is FIFO: deliveries commit in send order, even though
   per-message cost varies with size (a small revocation must never
   overtake the subscription it revokes). [tail] is the latest
   committed arrival; [blocked] queues messages sent while the edge is
   down, drained in order once a backoff probe finds it up again. *)
type dlink = {
  mutable tail : float;
  blocked : (float * Message.t) Queue.t; (* (cost, message), send order *)
  mutable probing : bool;
}

(* Plain-int fault accounting (the registry mirrors it via fault
   meters); [recovery_times] collects one entry per completed
   broker-restart recovery episode. *)
type fault_stats = {
  mutable crashes : int;
  mutable restarts : int;
  mutable requeues : int;
  mutable dup_deliveries : int;
  mutable destroyed : int; (* messages lost to a dead broker / dropped client *)
  mutable destroyed_pubs : int; (* publications among [destroyed] *)
  mutable client_disconnects : int;
  mutable client_reconnects : int;
  mutable replayed : int; (* ledger entries re-injected by recovery *)
  mutable recovery_times : float list; (* virtual ms, newest first *)
}

type t = {
  topo : Topology.t;
  config : config;
  sim : Sim.t;
  prng : Xroute_support.Prng.t;
  latency_table : (int * int, float) Hashtbl.t;
  brokers : Broker.t array;
  alive : bool array; (* false between an injected crash and its restart *)
  mutable clients : client list;
  client_index : (int, client) Hashtbl.t; (* cid -> client, O(1) on the delivery path *)
  (* Deliveries addressed to a cid with no materialized client record
     land here (virtual clients of the scenario engine): called with
     (cid, doc_id, arrival time) per path publication. *)
  mutable edge_sink : (int -> int -> float -> unit) option;
  mutable virtual_deliveries : int;
  mutable next_cid : int;
  mutable next_seq : int;
  traffic : traffic; (* messages received by brokers, by kind *)
  pub_emit : (int, float) Hashtbl.t; (* doc_id -> emit time *)
  mutable delivery_delays : (int * int * float) list; (* client, doc, delay *)
  metrics : M.t; (* network-level registry; brokers own theirs *)
  nm : net_meters;
  fm : Xroute_obs.Fault_meters.t;
  link_faults : (int * int, link_fault) Hashtbl.t;
  dlinks : (int * int, dlink) Hashtbl.t; (* keyed (src, dst), directed *)
  fstats : fault_stats;
  mutable universe : string array list; (* re-handed to restarted brokers *)
  (* Recovery episode being measured: opened at a broker restart, its
     end stamped by the last message processed, closed at the next fault
     or when the sim quiesces. *)
  mutable recovery_open : float option;
  mutable recovery_last : float;
  trace : Trace.t option; (* per-hop delivery traces when enabled *)
  spans : Span.t option; (* causal span collection when enabled *)
  recorder : Recorder.t option; (* flight-recorder dumps on fault events *)
  health : Xroute_obs.Health.t array; (* per-broker health summaries *)
}

(* Span context threaded from a hop to its outgoing transmissions, so
   the per-edge stage leaves land under the right hop span and the
   outgoing trace context points at it. *)
type hop_span = {
  hs_spans : Span.t;
  hs_hop : Span.span;
  hs_trace : int;
  hs_processing : float; (* this hop's processing time, ms *)
}

let create ?(config = default_config) ?queue ?trace ?spans ?recorder topo =
  let prng = Xroute_support.Prng.create config.seed in
  let latency_table = Latency.assign config.latency prng topo in
  let brokers =
    Array.init (Topology.broker_count topo) (fun b ->
        Broker.create ~strategy:config.strategy ~id:b ~neighbors:(Topology.neighbors topo b) ())
  in
  let metrics = M.create () in
  {
    topo;
    config;
    sim = Sim.create ?queue ();
    prng;
    latency_table;
    brokers;
    alive = Array.make (Topology.broker_count topo) true;
    clients = [];
    client_index = Hashtbl.create 64;
    edge_sink = None;
    virtual_deliveries = 0;
    next_cid = 0;
    next_seq = 0;
    traffic = { adv = 0; unadv = 0; sub = 0; unsub = 0; pub = 0 };
    pub_emit = Hashtbl.create 64;
    delivery_delays = [];
    metrics;
    nm = make_net_meters metrics;
    fm = Xroute_obs.Fault_meters.create metrics;
    link_faults = Hashtbl.create 8;
    dlinks = Hashtbl.create 16;
    fstats =
      {
        crashes = 0;
        restarts = 0;
        requeues = 0;
        dup_deliveries = 0;
        destroyed = 0;
        destroyed_pubs = 0;
        client_disconnects = 0;
        client_reconnects = 0;
        replayed = 0;
        recovery_times = [];
      };
    universe = [];
    recovery_open = None;
    recovery_last = 0.0;
    trace;
    spans;
    recorder;
    health = Array.init (Topology.broker_count topo) (fun b -> Xroute_obs.Health.create b);
  }

let topology t = t.topo
let sim t = t.sim
let config t = t.config
let broker t b = t.brokers.(b)
let brokers t = t.brokers
let clients t = t.clients

let fresh_sub_id t ~origin =
  t.next_seq <- t.next_seq + 1;
  { Message.origin; seq = t.next_seq }

let add_client t ~broker =
  if broker < 0 || broker >= Array.length t.brokers then invalid_arg "Net.add_client";
  let c =
    {
      cid = t.next_cid;
      home = broker;
      delivered = Hashtbl.create 16;
      path_messages = 0;
      connected = true;
      adv_ledger = [];
      sub_ledger = [];
    }
  in
  t.next_cid <- t.next_cid + 1;
  t.clients <- c :: t.clients;
  Hashtbl.replace t.client_index c.cid c;
  c

let find_client t cid = Hashtbl.find_opt t.client_index cid

(* Reserve [n] contiguous client ids (for virtual clients) without
   materializing client records; returns the first id of the block.
   Keeps virtual and real cids disjoint. *)
let alloc_cids t n =
  if n < 0 then invalid_arg "Net.alloc_cids";
  let first = t.next_cid in
  t.next_cid <- t.next_cid + n;
  first

let set_edge_sink t sink = t.edge_sink <- Some sink
let virtual_deliveries t = t.virtual_deliveries

let count_traffic t (msg : Message.t) =
  M.incr t.nm.nm_total;
  match msg with
  | Message.Advertise _ ->
    t.traffic.adv <- t.traffic.adv + 1;
    M.incr t.nm.nm_adv
  | Message.Unadvertise _ ->
    t.traffic.unadv <- t.traffic.unadv + 1;
    M.incr t.nm.nm_unadv
  | Message.Subscribe _ ->
    t.traffic.sub <- t.traffic.sub + 1;
    M.incr t.nm.nm_sub
  | Message.Unsubscribe _ ->
    t.traffic.unsub <- t.traffic.unsub + 1;
    M.incr t.nm.nm_unsub
  | Message.Publish _ ->
    t.traffic.pub <- t.traffic.pub + 1;
    M.incr t.nm.nm_pub

(* Trace correlation key and kind of a message. *)
let msg_kind (msg : Message.t) =
  match msg with
  | Message.Advertise _ -> "adv"
  | Message.Unadvertise _ -> "unadv"
  | Message.Subscribe _ -> "sub"
  | Message.Unsubscribe _ -> "unsub"
  | Message.Publish _ -> "pub"

let msg_key (msg : Message.t) =
  match msg with
  | Message.Publish { pub; _ } -> pub.doc_id
  | Message.Advertise { id; _ }
  | Message.Unadvertise { id }
  | Message.Subscribe { id; _ }
  | Message.Unsubscribe { id } ->
    Trace.key_of_id ~origin:id.origin ~seq:id.seq

let total_traffic t =
  t.traffic.adv + t.traffic.unadv + t.traffic.sub + t.traffic.unsub + t.traffic.pub

let traffic t = t.traffic

(* ------------------------------------------------------------------ *)
(* Fault bookkeeping                                                   *)
(* ------------------------------------------------------------------ *)

let link_key a b = if a < b then (a, b) else (b, a)

let link_fault t a b =
  let key = link_key a b in
  match Hashtbl.find_opt t.link_faults key with
  | Some lf -> lf
  | None ->
    let lf =
      { down_until = neg_infinity; slow_until = neg_infinity; extra_ms = 0.0; dup_until = neg_infinity }
    in
    Hashtbl.add t.link_faults key lf;
    lf

let link_fault_opt t a b = Hashtbl.find_opt t.link_faults (link_key a b)

let dlink t src dst =
  match Hashtbl.find_opt t.dlinks (src, dst) with
  | Some d -> d
  | None ->
    let d = { tail = neg_infinity; blocked = Queue.create (); probing = false } in
    Hashtbl.add t.dlinks (src, dst) d;
    d

(* Requeue backoff for sends over a down link: capped exponential, in
   virtual ms. Retrying always advances virtual time, so the loop
   terminates as soon as the (scheduled, finite) outage window ends. *)
let backoff_base_ms = 0.5
let backoff_cap_ms = 16.0

(* A message arrived at a dead broker or a disconnected client: it is
   gone. Publications among them feed [dropped_publications] so crash
   losses are reported, not silent. *)
let destroy t (msg : Message.t) =
  t.fstats.destroyed <- t.fstats.destroyed + 1;
  M.incr t.fm.destroyed;
  match msg with
  | Message.Publish _ -> t.fstats.destroyed_pubs <- t.fstats.destroyed_pubs + 1
  | Message.Advertise _ | Message.Unadvertise _ | Message.Subscribe _ | Message.Unsubscribe _ ->
    ()

(* Recovery-episode measurement: while an episode is open, every
   processed message pushes its end forward; the episode closes at the
   next fault event or when the sim quiesces, and its duration is the
   last activity seen — i.e. how long the network churned after the
   restart. *)
let touch_recovery t =
  match t.recovery_open with Some _ -> t.recovery_last <- Sim.now t.sim | None -> ()

let close_recovery t =
  match t.recovery_open with
  | None -> ()
  | Some started ->
    t.recovery_open <- None;
    let dur = Float.max 0.0 (t.recovery_last -. started) in
    t.fstats.recovery_times <- dur :: t.fstats.recovery_times;
    M.observe t.fm.recovery_ms dur

(* Client-side reception. *)
let client_receive t c (msg : Message.t) =
  touch_recovery t;
  match msg with
  | Message.Publish { pub; _ } ->
    c.path_messages <- c.path_messages + 1;
    if not (Hashtbl.mem c.delivered pub.doc_id) then begin
      let now = Sim.now t.sim in
      Hashtbl.replace c.delivered pub.doc_id now;
      M.incr t.nm.nm_deliveries;
      Log.debug (fun m -> m "client %d received doc %d at t=%.3fms" c.cid pub.doc_id now);
      match Hashtbl.find_opt t.pub_emit pub.doc_id with
      | Some emitted ->
        t.delivery_delays <- (c.cid, pub.doc_id, now -. emitted) :: t.delivery_delays;
        M.observe t.nm.nm_delivery_delay (now -. emitted)
      | None -> ()
    end
  | Message.Advertise _ | Message.Unadvertise _ | Message.Subscribe _ | Message.Unsubscribe _ ->
    () (* control messages are broker-internal *)

(* Deliver [msg] to broker [b]; schedule whatever it emits. A dead
   broker destroys the message (the sender learns nothing — recovery is
   the restart protocol's job, not a delivery guarantee). *)
let rec broker_receive t ~from b (msg : Message.t) =
  if not t.alive.(b) then begin
    destroy t msg;
    (* Attribute the loss to the link it arrived on, so the sender's
       health summary exposes the lossy edge. *)
    match from with
    | Rtable.Neighbor src ->
      Xroute_obs.Health.record_link_drop t.health.(src) ~peer:b;
      Xroute_obs.Health.record_drop t.health.(src)
    | Rtable.Client _ -> ()
  end
  else begin
    touch_recovery t;
    count_traffic t msg;
    let hb = t.health.(b) in
    Xroute_obs.Health.record_queue_depth hb (float_of_int (Sim.pending t.sim));
    (match msg with Message.Publish _ -> Xroute_obs.Health.record_pub hb | _ -> ());
    let broker = t.brokers.(b) in
    let w0 = Broker.work broker in
    let stage0 =
      match (t.spans, msg) with
      | Some _, Message.Publish _ -> Broker.stage_ops broker
      | _ -> (0, 0, 0)
    in
    let outs = Broker.handle broker ~from msg in
    let work = Broker.work broker - w0 in
    (match t.trace with
    | Some trace ->
      Trace.record trace ~kind:(msg_kind msg) ~key:(msg_key msg) ~broker:b
        ~time:(Sim.now t.sim) ~queue_depth:(Sim.pending t.sim) ~match_ops:work
    | None -> ());
    let processing =
      t.config.per_msg_cost +. (float_of_int work *. t.config.per_match_cost)
    in
    Xroute_obs.Health.record_hop_latency hb processing;
    (* One "hop" span per traced publication visit, with stage leaves
       tiling its processing interval: each matching stage is billed its
       op-count delta times the configured per-op cost, and the fixed
       per-message charge closes the tiling ("proc" ends exactly at
       processing end, absorbing float rounding) — so summing the leaf
       durations of a single-path trace reproduces the end-to-end delay
       bit-for-bit (the bench --smoke gate). *)
    let sp =
      match (t.spans, msg) with
      | Some sc, Message.Publish { pub; ctx; _ } ->
        let now = Sim.now t.sim in
        let trace = match ctx with Some c -> c.Message.trace | None -> pub.doc_id in
        let parent = Option.map (fun (c : Message.trace_ctx) -> c.parent_span) ctx in
        let hop = Span.start_span sc ?parent ~trace ~name:"hop" ~broker:b ~at:now () in
        let s0, m0, c0 = stage0 in
        let s1, m1, c1 = Broker.stage_ops broker in
        let cursor = ref now in
        let stage name ops =
          if ops > 0 then begin
            let stop = !cursor +. (float_of_int ops *. t.config.per_match_cost) in
            ignore
              (Span.record sc ~parent:hop.Span.id
                 ~meta:[ ("ops", string_of_int ops) ]
                 ~trace ~name ~broker:b ~start:!cursor ~stop ());
            cursor := stop
          end
        in
        stage "srt_match" (s1 - s0);
        stage "prt_match" (m1 - m0);
        stage "cover" (c1 - c0);
        let pend = now +. processing in
        ignore
          (Span.record sc ~parent:hop.Span.id ~trace ~name:"proc" ~broker:b ~start:!cursor
             ~stop:pend ());
        Span.finish hop ~at:pend;
        Some { hs_spans = sc; hs_hop = hop; hs_trace = trace; hs_processing = processing }
      | _ -> None
    in
    List.iter (fun (ep, m) -> send t ~src:b ~processing ?sp ep m) outs
  end

and send t ~src ~processing ?sp ep (msg : Message.t) =
  (* Forwarded publications chain to the hop span that emitted them:
     the broker copied the incoming context verbatim, the transport
     rewrites the parent here. *)
  let msg =
    match (sp, msg) with
    | Some s, Message.Publish { pub; trail; ctx = _ } ->
      Message.Publish
        { pub; trail; ctx = Some { Message.trace = s.hs_trace; parent_span = s.hs_hop.Span.id } }
    | _ -> msg
  in
  let size_cost = float_of_int (Message.wire_size msg) *. t.config.per_byte_cost in
  match ep with
  | Rtable.Neighbor n -> transmit t ~src ~dst:n ~cost:(processing +. size_cost) ?sp msg
  | Rtable.Client cid ->
    M.observe t.nm.nm_hop_latency (processing +. size_cost +. t.config.client_link);
    let delay = processing +. size_cost +. t.config.client_link in
    (match sp with
    | Some s ->
      let now = Sim.now t.sim in
      let edge =
        Span.record s.hs_spans ~parent:s.hs_hop.Span.id
          ~meta:[ ("to", "client:" ^ string_of_int cid) ]
          ~trace:s.hs_trace ~name:"edge" ~broker:src ~start:(now +. processing)
          ~stop:(now +. delay) ()
      in
      ignore
        (Span.record s.hs_spans ~parent:edge.Span.id ~trace:s.hs_trace ~name:"deliver"
           ~broker:src ~start:(now +. processing) ~stop:(now +. delay) ());
      Span.extend s.hs_hop ~at:(now +. delay);
      (match Span.root_for s.hs_spans ~trace:s.hs_trace with
      | Some root -> Span.extend root ~at:(now +. delay)
      | None -> ())
    | None -> ());
    Sim.schedule t.sim ~delay (fun () ->
        match find_client t cid with
        | Some c when c.connected -> client_receive t c msg
        | Some _ -> destroy t msg
        | None -> (
          (* No materialized record: a virtual client. Path publications
             feed the edge sink (one call per delivery, in arrival
             order); control messages are broker-internal, as above. *)
          match (t.edge_sink, msg) with
          | Some sink, Message.Publish { pub; _ } ->
            t.virtual_deliveries <- t.virtual_deliveries + 1;
            M.incr t.nm.nm_deliveries;
            sink cid pub.doc_id (Sim.now t.sim)
          | _ -> ()))

(* One transmission over the directed [src]->[dst] edge, honoring the
   edge's active fault windows: a down link queues the message (in send
   order) behind a capped-exponential-backoff probe; a slow link adds
   its extra delay; a duplicating link delivers a second copy just
   after the first (the protocol is idempotent: duplicate ids are
   deduplicated broker-side, repeat deliveries client-side). *)
and transmit t ~src ~dst ~cost ?sp msg =
  match link_fault_opt t src dst with
  | Some f when Sim.now t.sim < f.down_until ->
    (* The message keeps its (already rewritten) trace context, so the
       causal chain survives the outage; only this edge's timing leaves
       are lost — [sp] is not carried through the blocked queue. *)
    let d = dlink t src dst in
    Queue.push (cost, msg) d.blocked;
    Xroute_obs.Health.record_backlog t.health.(src) (float_of_int (Queue.length d.blocked));
    t.fstats.requeues <- t.fstats.requeues + 1;
    M.incr t.fm.requeues;
    if not d.probing then begin
      d.probing <- true;
      probe_link t src dst 0
    end
  | _ -> deliver_on_link t ~src ~dst ~cost ?sp msg

(* Retry loop for a down edge: probe with capped exponential backoff
   until the outage window ends, then drain the blocked queue in send
   order. Each probe that still finds the link down requeues every
   blocked message once more. Virtual time advances on every probe, so
   the loop ends as soon as the (finite, scheduled) window does. *)
and probe_link t src dst attempt =
  let delay = Float.min backoff_cap_ms (backoff_base_ms *. (2.0 ** float_of_int attempt)) in
  Sim.schedule t.sim ~delay (fun () ->
      let d = dlink t src dst in
      let down =
        match link_fault_opt t src dst with
        | Some f -> Sim.now t.sim < f.down_until
        | None -> false
      in
      if down then begin
        let n = Queue.length d.blocked in
        t.fstats.requeues <- t.fstats.requeues + n;
        for _ = 1 to n do
          M.incr t.fm.requeues
        done;
        probe_link t src dst (attempt + 1)
      end
      else begin
        d.probing <- false;
        while not (Queue.is_empty d.blocked) do
          let cost, msg = Queue.pop d.blocked in
          deliver_on_link t ~src ~dst ~cost msg
        done
      end)

(* Commit one delivery on a live edge. The edge is FIFO, like the TCP
   connection it stands for: the arrival is clamped to the previously
   committed one, so a cheap-to-transmit message never overtakes an
   expensive one sent before it (the event queue breaks equal-time ties
   by insertion order). Without the clamp, a covering-induced
   [Unsubscribe] could arrive before the [Subscribe] it revokes and
   invert into a permanently dangling routing entry. *)
and deliver_on_link t ~src ~dst ~cost ?sp msg =
  let lf = link_fault_opt t src dst in
  let now = Sim.now t.sim in
  let link = Latency.link_delay t.config.latency t.latency_table t.prng src dst in
  let extra = match lf with Some f when now < f.slow_until -> f.extra_ms | _ -> 0.0 in
  let d = dlink t src dst in
  let arrival = Float.max (now +. cost +. link +. extra) d.tail in
  d.tail <- arrival;
  M.observe t.nm.nm_hop_latency (arrival -. now);
  Xroute_obs.Health.record_send t.health.(src) ~peer:dst;
  Xroute_obs.Health.record_link_latency t.health.(src) ~peer:dst (arrival -. now);
  (* Per-edge stage leaves, grouped under an "edge" span so fanout
     edges never produce overlapping sibling leaves: transmit (the
     per-byte charge), link (propagation + slow-fault extra), and queue
     (FIFO-clamp wait behind an earlier in-flight message, if any). *)
  (match sp with
  | Some s ->
    let tx0 = now +. s.hs_processing in
    let tx1 = now +. cost in
    let l1 = tx1 +. link +. extra in
    let edge =
      Span.record s.hs_spans ~parent:s.hs_hop.Span.id
        ~meta:[ ("to", string_of_int dst) ]
        ~trace:s.hs_trace ~name:"edge" ~broker:src ~start:tx0 ~stop:arrival ()
    in
    ignore
      (Span.record s.hs_spans ~parent:edge.Span.id ~trace:s.hs_trace ~name:"transmit"
         ~broker:src ~start:tx0 ~stop:tx1 ());
    ignore
      (Span.record s.hs_spans ~parent:edge.Span.id ~trace:s.hs_trace ~name:"link" ~broker:src
         ~start:tx1 ~stop:l1 ());
    if arrival -. l1 > 0.0 then
      ignore
        (Span.record s.hs_spans ~parent:edge.Span.id ~trace:s.hs_trace ~name:"queue"
           ~broker:src ~start:l1 ~stop:arrival ());
    Span.extend s.hs_hop ~at:arrival
  | None -> ());
  Sim.schedule t.sim ~delay:(arrival -. now) (fun () ->
      broker_receive t ~from:(Rtable.Neighbor src) dst msg);
  match lf with
  | Some f when now < f.dup_until ->
    t.fstats.dup_deliveries <- t.fstats.dup_deliveries + 1;
    M.incr t.fm.dups;
    let arrival2 = Float.max (arrival +. 0.001) d.tail in
    d.tail <- arrival2;
    (* Keep the causal tree well-formed under duplication: the dup's
       hop span starts at [arrival2], which must not exceed its
       parent's stop. *)
    (match sp with Some s -> Span.extend s.hs_hop ~at:arrival2 | None -> ());
    Sim.schedule t.sim ~delay:(arrival2 -. now) (fun () ->
        broker_receive t ~from:(Rtable.Neighbor src) dst msg)
  | _ -> ()

(* Client-originated injection. A disconnected client cannot send at
   all (its ledger is replayed on reconnect); a connected client's
   message still travels and dies at a dead home broker, where
   [destroy] accounts for it. *)
let inject t (c : client) msg =
  if c.connected then
    Sim.schedule t.sim ~delay:t.config.client_link (fun () ->
        broker_receive t ~from:(Rtable.Client c.cid) c.home msg)

(* ------------------------------------------------------------------ *)
(* Client operations                                                   *)
(* ------------------------------------------------------------------ *)

let remove_ledger_id ledger id =
  List.filter (fun (i, _) -> Message.compare_sub_id i id <> 0) ledger

let advertise t c adv =
  let id = fresh_sub_id t ~origin:c.cid in
  c.adv_ledger <- (id, adv) :: c.adv_ledger;
  inject t c (Message.Advertise { id; adv });
  id

let advertise_dtd t c advs = List.map (fun adv -> advertise t c adv) advs

let subscribe t c xpe =
  let id = fresh_sub_id t ~origin:c.cid in
  c.sub_ledger <- (id, xpe) :: c.sub_ledger;
  inject t c (Message.Subscribe { id; xpe });
  id

let unsubscribe t c id =
  c.sub_ledger <- remove_ledger_id c.sub_ledger id;
  inject t c (Message.Unsubscribe { id })

let unadvertise t c id =
  c.adv_ledger <- remove_ledger_id c.adv_ledger id;
  inject t c (Message.Unadvertise { id })

(* Virtual-client operations: inject control messages from a bare cid
   (reserved via [alloc_cids]) without a client record or ledger. The
   scenario engine uses these so a million-subscriber run materializes
   no per-client state beyond the brokers' routing tables; deliveries
   come back through the edge sink. *)

let subscribe_virtual t ~broker ~cid xpe =
  if broker < 0 || broker >= Array.length t.brokers then
    invalid_arg "Net.subscribe_virtual";
  let id = fresh_sub_id t ~origin:cid in
  Sim.schedule t.sim ~delay:t.config.client_link (fun () ->
      broker_receive t ~from:(Rtable.Client cid) broker (Message.Subscribe { id; xpe }));
  id

let unsubscribe_virtual t ~broker (id : Message.sub_id) =
  if broker < 0 || broker >= Array.length t.brokers then
    invalid_arg "Net.unsubscribe_virtual";
  Sim.schedule t.sim ~delay:t.config.client_link (fun () ->
      broker_receive t ~from:(Rtable.Client id.Message.origin) broker
        (Message.Unsubscribe { id }))

(* When spans are on, anchor a trace for [doc_id]: a root "pub" span
   (emit → last delivery, extended as deliveries land) with an "inject"
   leaf for the publisher's client link. Returns the context the path
   publications carry; reuses the root when the doc already has one
   (multi-call replay). *)
let pub_ctx t ~doc_id =
  match t.spans with
  | None -> None
  | Some sc ->
    let root =
      match Span.root_for sc ~trace:doc_id with
      | Some r -> r
      | None ->
        let now = Sim.now t.sim in
        let r = Span.start_span sc ~trace:doc_id ~name:"pub" ~broker:(-1) ~at:now () in
        ignore
          (Span.record sc ~parent:r.Span.id ~trace:doc_id ~name:"inject" ~broker:(-1)
             ~start:now ~stop:(now +. t.config.client_link) ());
        Span.finish r ~at:(now +. t.config.client_link);
        r
    in
    Some { Message.trace = doc_id; parent_span = root.Span.id }

(* Publish a document: decompose into path publications at the edge. *)
let publish_doc t c ~doc_id root =
  Hashtbl.replace t.pub_emit doc_id (Sim.now t.sim);
  let pubs = Xroute_xml.Xml_paths.decompose ~doc_id root in
  let ctx = pub_ctx t ~doc_id in
  List.iter (fun pub -> inject t c (Message.Publish { pub; trail = []; ctx })) pubs;
  List.length pubs

(* Publish pre-extracted path publications (workload replay). *)
let publish_paths t c pubs =
  List.iter
    (fun (pub : Xroute_xml.Xml_paths.publication) ->
      if not (Hashtbl.mem t.pub_emit pub.doc_id) then
        Hashtbl.replace t.pub_emit pub.doc_id (Sim.now t.sim);
      inject t c (Message.Publish { pub; trail = []; ctx = pub_ctx t ~doc_id:pub.doc_id }))
    pubs

(* Run the simulation to quiescence. *)
let run t =
  Sim.run t.sim;
  close_recovery t;
  (* Fold this run's sends into the per-link EWMA rates and stamp a
     fresh epoch on every live broker's health summary. *)
  let now = Sim.now t.sim in
  Array.iteri (fun b h -> if t.alive.(b) then Xroute_obs.Health.tick h ~now) t.health

(* ------------------------------------------------------------------ *)
(* Faults and recovery                                                 *)
(* ------------------------------------------------------------------ *)

let broker_alive t b = t.alive.(b)

(* Replay the client's ledger with the original ids (in registration
   order): the receiving broker deduplicates, so replay is idempotent. *)
let replay_ledger t c =
  let count () =
    t.fstats.replayed <- t.fstats.replayed + 1;
    M.incr t.fm.replayed
  in
  List.iter
    (fun (id, adv) ->
      count ();
      inject t c (Message.Advertise { id; adv }))
    (List.rev c.adv_ledger);
  List.iter
    (fun (id, xpe) ->
      count ();
      inject t c (Message.Subscribe { id; xpe }))
    (List.rev c.sub_ledger)

(* Write a flight-recorder dump if a recorder is installed. [broker]
   restricts the embedded spans/hops to one victim and uses its registry
   (captured now — a restart replaces the broker object, losing it);
   without it the dump carries the network registry and everything
   retained. *)
let flight_dump t ~reason ?broker () =
  match t.recorder with
  | None -> ()
  | Some r ->
    let keep f l = match broker with Some b -> List.filter (f b) l | None -> l in
    let spans =
      match t.spans with
      | Some sc -> keep (fun b (s : Span.span) -> s.Span.broker = b) (Span.to_list sc)
      | None -> []
    in
    let hops =
      match t.trace with
      | Some tr -> keep (fun b (h : Trace.hop) -> h.Trace.broker = b) (Trace.to_list tr)
      | None -> []
    in
    let metrics =
      match broker with
      | Some b ->
        Broker.refresh_metrics t.brokers.(b);
        Broker.metrics t.brokers.(b)
      | None -> t.metrics
    in
    (match Recorder.trigger r ~reason ~at:(Sim.now t.sim) ~metrics ~spans ~hops () with
    | Ok path -> Log.info (fun m -> m "flight recorder: %s" path)
    | Error e -> Log.warn (fun m -> m "flight recorder failed (%s): %s" reason e))

let crash_broker t b =
  if t.alive.(b) then begin
    close_recovery t;
    t.alive.(b) <- false;
    t.fstats.crashes <- t.fstats.crashes + 1;
    M.incr t.fm.crashes;
    flight_dump t ~reason:(Printf.sprintf "broker %d crash" b) ~broker:b ();
    Log.info (fun m -> m "broker %d crashed at t=%.3fms" b (Sim.now t.sim))
  end

(* A crashed broker restarts as a fresh process: empty routing tables,
   zero counters. Recovery is anti-entropy from the survivors — each
   live neighbor purges what it learned through the dead process
   ([Broker.neighbor_reset]) and re-sends what the fresh one needs
   ([Broker.resync_for]); local clients replay their ledgers. Nothing
   is resurrected from the dead broker's own state. *)
let restart_broker t b =
  if not t.alive.(b) then begin
    close_recovery t;
    t.alive.(b) <- true;
    t.brokers.(b) <-
      Broker.create ~strategy:t.config.strategy ~id:b ~neighbors:(Topology.neighbors t.topo b) ();
    if t.universe <> [] then Broker.set_universe t.brokers.(b) t.universe;
    t.fstats.restarts <- t.fstats.restarts + 1;
    M.incr t.fm.restarts;
    t.recovery_open <- Some (Sim.now t.sim);
    t.recovery_last <- Sim.now t.sim;
    Log.info (fun m -> m "broker %d restarted at t=%.3fms" b (Sim.now t.sim));
    let live_neighbors = List.filter (fun n -> t.alive.(n)) (Topology.neighbors t.topo b) in
    (* Purges run for every neighbor before any resync message is
       computed, at the restart instant — link delays then keep every
       purge flood ahead of the re-advertisements on shared paths. *)
    List.iter
      (fun n ->
        let outs = Broker.neighbor_reset t.brokers.(n) ~ep:(Rtable.Neighbor b) in
        List.iter (fun (ep, m) -> send t ~src:n ~processing:0.0 ep m) outs)
      live_neighbors;
    List.iter
      (fun n ->
        let outs = Broker.resync_for t.brokers.(n) ~ep:(Rtable.Neighbor b) in
        List.iter (fun (ep, m) -> send t ~src:n ~processing:0.0 ep m) outs)
      live_neighbors;
    List.iter (fun c -> if c.home = b && c.connected then replay_ledger t c) t.clients
  end

let disconnect_client t c =
  if c.connected then begin
    c.connected <- false;
    t.fstats.client_disconnects <- t.fstats.client_disconnects + 1;
    M.incr t.fm.disconnects;
    Log.info (fun m -> m "client %d disconnected at t=%.3fms" c.cid (Sim.now t.sim))
  end

(* Reconnect = reconcile + replay: operations revoked while away
   (unsubscribes that never reached the broker) are re-issued against
   the broker's current per-client state, then the ledger is replayed.
   With a dead home broker both steps wait for its restart, which
   replays connected clients itself. *)
let reconnect_client t c =
  if not c.connected then begin
    c.connected <- true;
    t.fstats.client_reconnects <- t.fstats.client_reconnects + 1;
    M.incr t.fm.reconnects;
    Log.info (fun m -> m "client %d reconnected at t=%.3fms" c.cid (Sim.now t.sim));
    if t.alive.(c.home) then begin
      let b = t.brokers.(c.home) in
      let ep = Rtable.Client c.cid in
      let stale stored live =
        List.filter
          (fun id -> not (List.exists (fun (i, _) -> Message.compare_sub_id i id = 0) live))
          stored
      in
      List.iter
        (fun id -> inject t c (Message.Unadvertise { id }))
        (stale (Broker.srt_ids_from b ep) c.adv_ledger);
      List.iter
        (fun id -> inject t c (Message.Unsubscribe { id }))
        (stale (Broker.prt_ids_from b ep) c.sub_ledger);
      replay_ledger t c
    end
  end

let install_plan t (plan : Xroute_fault.Plan.t) =
  let module P = Xroute_fault.Plan in
  let on_client cid f =
    match find_client t cid with Some c -> f c | None -> ()
  in
  List.iter
    (fun ev ->
      match ev with
      | P.Broker_crash { broker = b; at; down_for } ->
        Sim.schedule t.sim ~delay:at (fun () -> crash_broker t b);
        Sim.schedule t.sim ~delay:(at +. down_for) (fun () -> restart_broker t b)
      | P.Link_down { a; b; at; down_for } ->
        Sim.schedule t.sim ~delay:at (fun () ->
            (link_fault t a b).down_until <- Sim.now t.sim +. down_for;
            flight_dump t ~reason:(Printf.sprintf "link %d-%d down" a b) ())
      | P.Link_delay { a; b; at; down_for; extra_ms } ->
        Sim.schedule t.sim ~delay:at (fun () ->
            let lf = link_fault t a b in
            lf.slow_until <- Sim.now t.sim +. down_for;
            lf.extra_ms <- extra_ms)
      | P.Link_dup { a; b; at; down_for } ->
        Sim.schedule t.sim ~delay:at (fun () ->
            (link_fault t a b).dup_until <- Sim.now t.sim +. down_for)
      | P.Client_drop { cid; at; down_for } ->
        Sim.schedule t.sim ~delay:at (fun () -> on_client cid (disconnect_client t));
        Sim.schedule t.sim ~delay:(at +. down_for) (fun () -> on_client cid (reconnect_client t)))
    plan.P.events

let fault_stats t = t.fstats

(* Run a merging pass on every broker and deliver what it emits. *)
let merge_all t =
  Array.iteri
    (fun b broker ->
      let outs = Broker.merge_pass broker in
      List.iter (fun (ep, m) -> send t ~src:b ~processing:0.0 ep m) outs)
    t.brokers;
  run t

let set_universe t universe =
  t.universe <- universe;
  Array.iter (fun b -> Broker.set_universe b universe) t.brokers

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* (client, doc, delay-ms) notifications recorded so far. *)
let delivery_delays t = t.delivery_delays

let mean_delivery_delay t =
  match t.delivery_delays with
  | [] -> 0.0
  | l ->
    List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 l /. float_of_int (List.length l)

(* Total routing table entries across brokers. *)
let total_prt_size t = Array.fold_left (fun acc b -> acc + Broker.prt_size b) 0 t.brokers
let total_srt_size t = Array.fold_left (fun acc b -> acc + Broker.srt_size b) 0 t.brokers

let total_deliveries t =
  List.fold_left (fun acc c -> acc + Hashtbl.length c.delivered) 0 t.clients

(* Publications that reached a broker with no matching subscription
   (with merging: the in-network false positives), plus publications
   destroyed by an injected fault — a crash takes its in-flight and
   queued publications with it, and those losses are reported here, not
   silently swallowed. *)
let dropped_publications t =
  Array.fold_left (fun acc b -> acc + (Broker.counters b).pubs_dropped) 0 t.brokers
  + t.fstats.destroyed_pubs

(* ------------------------------------------------------------------ *)
(* Registry and traces                                                 *)
(* ------------------------------------------------------------------ *)

let metrics t = t.metrics
let trace t = t.trace
let spans t = t.spans
let recorder t = t.recorder

(* Refresh every broker's gauges (the network registry is always live). *)
let refresh_metrics t = Array.iter Broker.refresh_metrics t.brokers

(* ------------------------------------------------------------------ *)
(* Health federation (sim side)                                        *)
(* ------------------------------------------------------------------ *)

let health t b =
  if b < 0 || b >= Array.length t.health then invalid_arg "Net.health";
  t.health.(b)

(* Pull health summaries hop-bounded from [root], the sim twin of the
   daemon's FEDSTATS: a breadth-limited walk over the topology with a
   visited set for loop suppression (safe on cyclic overlays), stopping
   at dead brokers — exactly what a wire pull would see, since a dead
   neighbor answers nothing and forwards nothing. *)
let fedstats t ~root ?(ttl = max_int) () =
  if root < 0 || root >= Array.length t.brokers then invalid_arg "Net.fedstats";
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit b depth =
    if (not (Hashtbl.mem seen b)) && t.alive.(b) then begin
      Hashtbl.add seen b ();
      acc := t.health.(b) :: !acc;
      if depth > 0 then List.iter (fun n -> visit n (depth - 1)) (Topology.neighbors t.topo b)
    end
  in
  visit root ttl;
  Xroute_obs.Health.view_of !acc

(* One registry totalling the network registry and all broker
   registries; refreshes broker gauges first. *)
let aggregate_metrics t =
  refresh_metrics t;
  M.aggregate (t.metrics :: Array.to_list (Array.map Broker.metrics t.brokers))
