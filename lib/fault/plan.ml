(* Seeded fault plans: a pre-computed schedule of broker, link and
   client failures for the overlay simulator to execute. All randomness
   comes from the repo's splitmix64 generator, so a plan is a pure
   function of its inputs and every run replays bit-for-bit. *)

module Prng = Xroute_support.Prng

type event =
  | Broker_crash of { broker : int; at : float; down_for : float }
  | Link_down of { a : int; b : int; at : float; down_for : float }
  | Link_delay of { a : int; b : int; at : float; down_for : float; extra_ms : float }
  | Link_dup of { a : int; b : int; at : float; down_for : float }
  | Client_drop of { cid : int; at : float; down_for : float }

type t = { seed : int; horizon : float; events : event list }

type spec = {
  crashes : int;
  link_downs : int;
  link_delays : int;
  link_dups : int;
  client_drops : int;
  mean_down_ms : float;
  gap_ms : float;
}

let default_spec =
  {
    crashes = 2;
    link_downs = 2;
    link_delays = 1;
    link_dups = 1;
    client_drops = 1;
    mean_down_ms = 80.0;
    gap_ms = 60.0;
  }

let spec_of_string s =
  let parse_field spec kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "bad fault-plan field %S (want key=value)" kv)
    | Some i -> (
      let key = String.sub kv 0 i in
      let value = String.sub kv (i + 1) (String.length kv - i - 1) in
      let int_of () =
        match int_of_string_opt value with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "bad count %S for %s" value key)
      in
      let float_of () =
        match float_of_string_opt value with
        | Some f when f > 0.0 -> Ok f
        | _ -> Error (Printf.sprintf "bad duration %S for %s" value key)
      in
      match key with
      | "crashes" -> Result.map (fun n -> { spec with crashes = n }) (int_of ())
      | "link-downs" -> Result.map (fun n -> { spec with link_downs = n }) (int_of ())
      | "link-delays" -> Result.map (fun n -> { spec with link_delays = n }) (int_of ())
      | "link-dups" -> Result.map (fun n -> { spec with link_dups = n }) (int_of ())
      | "client-drops" -> Result.map (fun n -> { spec with client_drops = n }) (int_of ())
      | "mean-down" -> Result.map (fun f -> { spec with mean_down_ms = f }) (float_of ())
      | "gap" -> Result.map (fun f -> { spec with gap_ms = f }) (float_of ())
      | _ -> Error (Printf.sprintf "unknown fault-plan key %S" key))
  in
  List.fold_left
    (fun acc kv -> Result.bind acc (fun spec -> parse_field spec kv))
    (Ok default_spec)
    (List.filter (fun f -> f <> "") (String.split_on_char ',' s))

(* A fault kind awaiting a time slot. *)
type proto = P_crash | P_down | P_delay | P_dup | P_drop

let generate ~seed ~brokers ~edges ~clients ?(spec = default_spec) () =
  if brokers <= 0 then invalid_arg "Plan.generate: brokers <= 0";
  let prng = Prng.create seed in
  let repeat n k = List.init (max 0 n) (fun _ -> k) in
  let protos =
    repeat (if brokers > 0 then spec.crashes else 0) P_crash
    @ repeat (if edges <> [] then spec.link_downs else 0) P_down
    @ repeat (if edges <> [] then spec.link_delays else 0) P_delay
    @ repeat (if edges <> [] then spec.link_dups else 0) P_dup
    @ repeat (if clients <> [] then spec.client_drops else 0) P_drop
  in
  let protos = Array.to_list (Prng.shuffle prng (Array.of_list protos)) in
  (* Sequential, disjoint windows separated by settle gaps: each fault's
     recovery finishes before the next one starts, so convergence holds
     not just at the end but at every gap. *)
  let cursor = ref spec.gap_ms in
  let events =
    List.map
      (fun proto ->
        let at = !cursor in
        let down_for = spec.mean_down_ms *. (0.5 +. Prng.unit_float prng) in
        cursor := at +. down_for +. spec.gap_ms;
        match proto with
        | P_crash -> Broker_crash { broker = Prng.int prng brokers; at; down_for }
        | P_down ->
          let a, b = Prng.choose_list prng edges in
          Link_down { a; b; at; down_for }
        | P_delay ->
          let a, b = Prng.choose_list prng edges in
          let extra_ms = 2.0 +. Prng.float prng 8.0 in
          Link_delay { a; b; at; down_for; extra_ms }
        | P_dup ->
          let a, b = Prng.choose_list prng edges in
          Link_dup { a; b; at; down_for }
        | P_drop ->
          Client_drop { cid = Prng.choose_list prng clients; at; down_for })
      protos
  in
  { seed; horizon = !cursor; events }

let pp_event ppf = function
  | Broker_crash { broker; at; down_for } ->
    Format.fprintf ppf "broker %d crashes at %.1fms for %.1fms" broker at down_for
  | Link_down { a; b; at; down_for } ->
    Format.fprintf ppf "link %d-%d down at %.1fms for %.1fms" a b at down_for
  | Link_delay { a; b; at; down_for; extra_ms } ->
    Format.fprintf ppf "link %d-%d +%.1fms at %.1fms for %.1fms" a b extra_ms at down_for
  | Link_dup { a; b; at; down_for } ->
    Format.fprintf ppf "link %d-%d duplicates at %.1fms for %.1fms" a b at down_for
  | Client_drop { cid; at; down_for } ->
    Format.fprintf ppf "client %d dropped at %.1fms for %.1fms" cid at down_for

let pp ppf t =
  Format.fprintf ppf "fault plan (seed %d, horizon %.1fms):" t.seed t.horizon;
  List.iter (fun e -> Format.fprintf ppf "@\n  %a" pp_event e) t.events
