(** Deterministic fault plans for the dissemination network.

    A plan is a seeded, pre-computed schedule of failure events —
    broker crash/restart, link outage/extra-delay/duplication, client
    disconnect/reconnect — that {!Xroute_overlay.Net.install_plan}
    executes inside the discrete-event simulation. Because the schedule
    is fixed up front and all randomness comes from the splitmix64
    generator, a (seed, topology, workload) triple replays bit-for-bit:
    the convergence suite (test/test_fault.ml) relies on this.

    Times are virtual milliseconds, relative to the moment the plan is
    installed. *)

type event =
  | Broker_crash of { broker : int; at : float; down_for : float }
      (** the broker dies at [at] losing all routing state, and restarts
          empty at [at +. down_for]; recovery is the network's job *)
  | Link_down of { a : int; b : int; at : float; down_for : float }
      (** sends over the edge fail during the window; the sender
          requeues with capped exponential backoff *)
  | Link_delay of { a : int; b : int; at : float; down_for : float; extra_ms : float }
      (** deliveries over the edge take [extra_ms] longer during the
          window *)
  | Link_dup of { a : int; b : int; at : float; down_for : float }
      (** every delivery over the edge during the window arrives twice *)
  | Client_drop of { cid : int; at : float; down_for : float }
      (** the client is unreachable during the window; on reconnect it
          reconciles and replays its subscription ledger *)

type t = {
  seed : int;
  horizon : float;  (** no event is active at or after this time *)
  events : event list;  (** in schedule order *)
}

(** How many faults of each kind to generate, and their shape. *)
type spec = {
  crashes : int;
  link_downs : int;
  link_delays : int;
  link_dups : int;
  client_drops : int;
  mean_down_ms : float;  (** mean outage duration *)
  gap_ms : float;  (** settle gap between consecutive fault windows *)
}

(** 2 crashes, 2 link outages, 1 delay window, 1 duplication window,
    1 client drop; 80 ms mean outage, 60 ms gaps. *)
val default_spec : spec

(** Parse a [k=v,k=v] spec string (keys [crashes], [link-downs],
    [link-delays], [link-dups], [client-drops], [mean-down], [gap];
    unmentioned keys keep {!default_spec} values), e.g.
    ["crashes=3,link-downs=0,mean-down=120"]. *)
val spec_of_string : string -> (spec, string) result

(** [generate ~seed ~brokers ~edges ~clients ()] draws a plan whose
    fault windows are disjoint in time (sequenced with settle gaps, in
    shuffled kind order), so each fault's recovery is observable in
    isolation. Kinds whose prerequisites are missing (no edges, no
    clients) are skipped. *)
val generate :
  seed:int ->
  brokers:int ->
  edges:(int * int) list ->
  clients:int list ->
  ?spec:spec ->
  unit ->
  t

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
