(* Regular expressions over element names with a wildcard letter.

   XPEs and advertisements both denote regular languages of element
   paths; this module is the shared syntax the automata are built from.
   The wildcard [Any] matches every element name (the alphabet is the
   infinite set of XML names, handled symbolically). *)

type label = Exact of string | Any

type t =
  | Eps  (* the empty string *)
  | Sym of label
  | Seq of t list
  | Alt of t list
  | Star of t
  | Plus of t

let eps = Eps
let sym label = Sym label
let exact name = Sym (Exact name)
let any = Sym Any

let seq = function [] -> Eps | [ r ] -> r | rs -> Seq rs
let alt = function [] -> invalid_arg "Regex.alt: empty alternation" | [ r ] -> r | rs -> Alt rs
let star r = Star r
let plus r = Plus r

(* Element names mentioned anywhere in the expression. *)
let names t =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Eps -> acc
    | Sym (Exact n) -> S.add n acc
    | Sym Any -> acc
    | Seq rs | Alt rs -> List.fold_left go acc rs
    | Star r | Plus r -> go acc r
  in
  S.elements (go S.empty t)

let label_to_string = function Exact n -> n | Any -> "."

let rec to_string = function
  | Eps -> "()"
  | Sym l -> label_to_string l
  | Seq rs -> String.concat " " (List.map atom_string rs)
  | Alt rs -> String.concat " | " (List.map atom_string rs)
  | Star r -> atom_string r ^ "*"
  | Plus r -> atom_string r ^ "+"

and atom_string r =
  match r with
  | Eps | Sym _ -> to_string r
  | Seq [ r' ] | Alt [ r' ] -> atom_string r'
  | _ -> "(" ^ to_string r ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* The path language of an XPE under publication-matching semantics:
   anchored at the root, each Child step consumes one name, each Desc step
   allows a gap, and a trailing gap accepts any continuation of the path
   below the selected node (prefix semantics). Attribute predicates are
   name-level invisible and ignored here. *)
let of_xpe xpe =
  let step_regex (s : Xroute_xpath.Xpe.step) =
    let symbol =
      match s.test with
      | Xroute_xpath.Xpe.Star -> any
      | Xroute_xpath.Xpe.Name n -> exact (Xroute_support.Symbol.name n)
    in
    match s.axis with
    | Xroute_xpath.Xpe.Child -> [ symbol ]
    | Xroute_xpath.Xpe.Desc -> [ star any; symbol ]
  in
  let body = List.concat_map step_regex (Xroute_xpath.Xpe.semantic_steps xpe) in
  seq (body @ [ star any ])

(* The path language of an advertisement: a full-length match, each
   [(...)+] group one or more times. *)
let of_adv adv =
  let rec part_regex = function
    | Xroute_xpath.Adv.Lit symbols ->
      seq
        (Array.to_list symbols
        |> List.map (function Xroute_xpath.Xpe.Star -> any | Xroute_xpath.Xpe.Name n -> exact (Xroute_support.Symbol.name n)))
    | Xroute_xpath.Adv.Group inner -> plus (seq (List.map part_regex inner))
  in
  seq (List.map part_regex (Xroute_xpath.Adv.parts adv))

(* A fixed path as a regex (for spot checks). *)
let of_path path = seq (Array.to_list path |> List.map exact)
