(** Metric handles for the static analyzer ([lib/check]): severity
    counters plus last-pass gauges, registered eagerly like
    {!Fault_meters}. The analyzer lives above this layer, so callers
    count their findings and feed the totals in. *)

type t = {
  runs : Metrics.counter;
  errors : Metrics.counter;
  warnings : Metrics.counter;
  infos : Metrics.counter;
  last_errors : Metrics.gauge;
  last_warnings : Metrics.gauge;
}

val create : Metrics.t -> t

(** Record one completed analysis pass. *)
val record : t -> errors:int -> warnings:int -> infos:int -> unit
