(** Mergeable quantile sketch with a bounded relative error (DDSketch
    family).

    Values are binned into exponential buckets indexed by
    [ceil(log_gamma v)] with [gamma = (1+alpha)/(1-alpha)]; the midpoint
    estimate of any bucket is within relative error [alpha] of every
    value it holds, so for any quantile [q] with true value [x],
    [|quantile t q - x| <= alpha * |x|]. Bucket counts are integers and
    merge by addition — the merge is exact, commutative and associative,
    which is what lets per-broker summaries federate into one overlay
    view without bias ({!Health}, DESIGN.md Sec. 16).

    Alongside the buckets the sketch tracks exact count, sum, min and
    max; quantile estimates are clamped into [[min, max]]. Values with
    magnitude below 1e-9 share a dedicated zero bucket (their estimate
    is exactly 0); negative values are mirrored, so any non-NaN float
    can be observed. *)

type t

(** The default relative-error bound (0.01). *)
val default_alpha : float

(** [create ?alpha ()] — [alpha] is the advertised relative-error bound
    (default {!default_alpha}). @raise Invalid_argument unless
    [0 < alpha < 1]. *)
val create : ?alpha:float -> unit -> t

val alpha : t -> float

(** @raise Invalid_argument on NaN. *)
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float

(** Exact extrema; [+inf]/[-inf] while empty. *)
val min_value : t -> float

val max_value : t -> float

(** Nearest-rank quantile estimate ([q] in [[0, 1]]), within relative
    error {!alpha} of the true value; [0.0] when empty.
    @raise Invalid_argument when [q] is outside [[0, 1]]. *)
val quantile : t -> float -> float

(** [merge a b] is a fresh sketch equal to observing both inputs'
    streams; [a] and [b] are unchanged. Exact: commutative, associative,
    and order-independent on the bucket counts.
    @raise Invalid_argument when the alphas differ. *)
val merge : t -> t -> t

(** In-place variant of {!merge}. *)
val merge_into : dst:t -> t -> unit

val copy : t -> t

(** Forget every observation (the configuration is kept). *)
val clear : t -> unit

(** Canonical single-line encoding (no ['|'], ['\n'] or spaces): equal
    sketches encode to equal strings on every platform (floats as hex
    literals), buckets ascending by index. *)
val encode : t -> string

(** Inverse of {!encode}; [None] on any malformed input. *)
val decode : string -> t option

(** Structural equality, via the canonical encoding. *)
val equal : t -> t -> bool
