(** Hop tracing: a bounded (ring-buffered) record of each message's path
    through the overlay — broker id, time, queue depth and the match
    work charged at every visit. *)

type hop = {
  seq : int;  (** global record order, 0-based *)
  kind : string;  (** "adv" | "unadv" | "sub" | "unsub" | "pub" *)
  key : int;  (** correlates the hops of one message *)
  broker : int;
  time : float;  (** ms, virtual (simulator) or wall (daemon) *)
  queue_depth : int;
  match_ops : int;
}

type t

(** Ring buffer of the newest [capacity] hops (default 4096).
    @raise Invalid_argument when [capacity <= 0]. *)
val create : ?capacity:int -> unit -> t

(** Hops ever recorded (may exceed the retained count). *)
val length : t -> int

val capacity : t -> int

val record :
  t -> kind:string -> key:int -> broker:int -> time:float -> queue_depth:int ->
  match_ops:int -> unit

(** Retained hops, oldest first. *)
val to_list : t -> hop list

(** Retained path of one message, oldest first. Served from a per-key
    bucket: cost is proportional to that message's retained hops, not to
    the ring size. *)
val hops_for : t -> key:int -> hop list

(** Hops examined by the most recent {!hops_for} — the lookup-cost probe
    the index test asserts on. *)
val last_lookup_cost : t -> int

val clear : t -> unit

(** Fold a subscription id [(origin, seq)] into a correlation key. *)
val key_of_id : origin:int -> seq:int -> int

val pp_hop : Format.formatter -> hop -> unit
