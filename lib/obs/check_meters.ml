(* Metric handles for the static analyzer (lib/check): registered
   eagerly so the xroute_check_* family appears in expositions even
   before a pass runs, and resolved once, following the fault_meters
   pattern. The analyzer itself cannot live here (obs sits below core),
   so the counters are keyed by severity and fed by the caller. *)

type t = {
  runs : Metrics.counter;
  errors : Metrics.counter;
  warnings : Metrics.counter;
  infos : Metrics.counter;
  last_errors : Metrics.gauge;
  last_warnings : Metrics.gauge;
}

let create reg =
  {
    runs = Metrics.counter reg ~help:"Analysis passes completed" "xroute_check_runs_total";
    errors =
      Metrics.counter reg ~help:"Error findings reported" "xroute_check_errors_total";
    warnings =
      Metrics.counter reg ~help:"Warning findings reported" "xroute_check_warnings_total";
    infos = Metrics.counter reg ~help:"Info findings reported" "xroute_check_infos_total";
    last_errors =
      Metrics.gauge reg ~help:"Error findings of the most recent pass"
        "xroute_check_last_errors";
    last_warnings =
      Metrics.gauge reg ~help:"Warning findings of the most recent pass"
        "xroute_check_last_warnings";
  }

(* Record one completed pass. *)
let record t ~errors ~warnings ~infos =
  Metrics.incr t.runs;
  Metrics.add t.errors errors;
  Metrics.add t.warnings warnings;
  Metrics.add t.infos infos;
  Metrics.set_int t.last_errors errors;
  Metrics.set_int t.last_warnings warnings
