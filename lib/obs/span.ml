(* Causal spans: see span.mli for the span-tree model. The collector
   mirrors Trace's bounded ring + per-key buckets: eviction is
   globally-oldest-first and buckets are in creation order, so the span
   evicted on overwrite is always the front of its trace bucket. *)

type span = {
  id : int;
  trace : int;
  parent : int option;
  name : string;
  broker : int;
  start : float;
  mutable stop : float;
  mutable meta : (string * string) list;
}

type t = {
  capacity : int;
  ring : span option array;
  mutable total : int; (* spans ever started *)
  mutable next_id : int;
  by_id : (int, span) Hashtbl.t;
  by_trace : (int, span Queue.t) Hashtbl.t;
  mutable last_lookup_cost : int;
}

let create ?(capacity = 8192) ?(id_base = 0) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity None;
    total = 0;
    next_id = id_base + 1;
    by_id = Hashtbl.create 256;
    by_trace = Hashtbl.create 64;
    last_lookup_cost = 0;
  }

let length t = t.total
let capacity t = t.capacity

let evict t s =
  Hashtbl.remove t.by_id s.id;
  match Hashtbl.find_opt t.by_trace s.trace with
  | None -> ()
  | Some q ->
    ignore (Queue.pop q);
    if Queue.is_empty q then Hashtbl.remove t.by_trace s.trace

let push t s =
  let slot = t.total mod t.capacity in
  (match t.ring.(slot) with Some old -> evict t old | None -> ());
  t.ring.(slot) <- Some s;
  t.total <- t.total + 1;
  Hashtbl.replace t.by_id s.id s;
  let q =
    match Hashtbl.find_opt t.by_trace s.trace with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.by_trace s.trace q;
      q
  in
  Queue.push s q

let start_span t ?parent ~trace ~name ~broker ~at () =
  let s =
    {
      id = t.next_id;
      trace;
      parent;
      name;
      broker;
      start = at;
      stop = at;
      meta = [];
    }
  in
  t.next_id <- t.next_id + 1;
  push t s;
  s

let finish s ~at = s.stop <- at
let extend s ~at = if at > s.stop then s.stop <- at

let record t ?parent ?(meta = []) ~trace ~name ~broker ~start ~stop () =
  let s = start_span t ?parent ~trace ~name ~broker ~at:start () in
  s.stop <- stop;
  s.meta <- meta;
  s

let add_meta s k v = s.meta <- s.meta @ [ (k, v) ]
let find t id = Hashtbl.find_opt t.by_id id

let spans_for t ~trace =
  match Hashtbl.find_opt t.by_trace trace with
  | None ->
    t.last_lookup_cost <- 0;
    []
  | Some q ->
    t.last_lookup_cost <- Queue.length q;
    List.rev (Queue.fold (fun acc s -> s :: acc) [] q)

let root_for t ~trace =
  List.find_opt (fun s -> s.parent = None) (spans_for t ~trace)

let last_lookup_cost t = t.last_lookup_cost

let to_list t =
  let n = min t.total t.capacity in
  let start = t.total - n in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  Hashtbl.reset t.by_id;
  Hashtbl.reset t.by_trace;
  t.total <- 0

let duration s = s.stop -. s.start

(* ---------------- renderers ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace-event JSON: complete ("ph":"X") events, ts/dur in
   microseconds. pid = broker so Perfetto lays traces out one row of
   stages per process; tid = trace id. *)
let to_chrome spans =
  let event s =
    let args =
      ("id", string_of_int s.id)
      :: (match s.parent with
         | Some p -> [ ("parent", string_of_int p) ]
         | None -> [])
      @ s.meta
    in
    let args_json =
      String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           args)
    in
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"xroute\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{%s}}"
      (json_escape s.name)
      (s.start *. 1000.0)
      (duration s *. 1000.0)
      s.broker s.trace args_json
  in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
  ^ String.concat "," (List.map event spans)
  ^ "]}"

let by_start a b = compare (a.start, a.id) (b.start, b.id)

(* Group a span list by trace, preserving first-appearance order. *)
let group_traces spans =
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt groups s.trace with
      | Some r -> r := s :: !r
      | None ->
        Hashtbl.add groups s.trace (ref [ s ]);
        order := s.trace :: !order)
    spans;
  List.rev_map (fun tid -> (tid, List.rev !(Hashtbl.find groups tid))) !order
  |> List.rev

let waterfall spans =
  let buf = Buffer.create 512 in
  List.iter
    (fun (tid, group) ->
      let ids = Hashtbl.create 16 in
      List.iter (fun s -> Hashtbl.replace ids s.id ()) group;
      let children = Hashtbl.create 16 in
      let roots =
        List.filter
          (fun s ->
            match s.parent with
            | Some p when Hashtbl.mem ids p ->
              Hashtbl.replace children p
                (s :: Option.value ~default:[] (Hashtbl.find_opt children p));
              false
            | _ -> true (* true root, or parent fell out of the ring *))
          group
      in
      let base = List.fold_left (fun acc s -> Float.min acc s.start) infinity group in
      let last = List.fold_left (fun acc s -> Float.max acc s.stop) neg_infinity group in
      Buffer.add_string buf
        (Printf.sprintf "trace %d — %d spans, %.3f ms\n" tid (List.length group)
           (last -. base));
      let rec render depth s =
        Buffer.add_string buf
          (Printf.sprintf "  %8.3f %8.3f  %s%s  [broker %d] #%d\n" (s.start -. base)
             (duration s)
             (String.make (2 * depth) ' ')
             s.name s.broker s.id);
        List.iter (render (depth + 1))
          (List.sort by_start (Option.value ~default:[] (Hashtbl.find_opt children s.id)))
      in
      List.iter (render 0) (List.sort by_start roots))
    (group_traces spans);
  Buffer.contents buf

(* ---------------- structural validation ---------------- *)

let eps = 1e-6

let check_tree spans =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match spans with
  | [] -> Error "no spans"
  | first :: _ -> (
    let by_id = Hashtbl.create 16 in
    let dup =
      List.find_opt
        (fun s ->
          if Hashtbl.mem by_id s.id then true
          else begin
            Hashtbl.replace by_id s.id s;
            false
          end)
        spans
    in
    match dup with
    | Some s -> err "duplicate span id #%d" s.id
    | None -> (
      match List.filter (fun s -> s.parent = None) spans with
      | [] -> Error "no root span"
      | _ :: _ :: _ as roots -> err "%d root spans" (List.length roots)
      | [ _root ] ->
        let has_child = Hashtbl.create 16 in
        List.iter
          (fun s ->
            match s.parent with
            | Some p -> Hashtbl.replace has_child p ()
            | None -> ())
          spans;
        let is_leaf s = not (Hashtbl.mem has_child s.id) in
        let problem =
          List.find_map
            (fun s ->
              if s.trace <> first.trace then
                Some (Printf.sprintf "span #%d belongs to trace %d, not %d" s.id s.trace first.trace)
              else if s.stop < s.start -. eps then
                Some (Printf.sprintf "span #%d (%s) ends before it starts" s.id s.name)
              else
                match s.parent with
                | None -> None
                | Some pid -> (
                  match Hashtbl.find_opt by_id pid with
                  | None -> Some (Printf.sprintf "span #%d (%s) has missing parent #%d" s.id s.name pid)
                  | Some p ->
                    if s.start < p.start -. eps then
                      Some
                        (Printf.sprintf "span #%d (%s) starts before its parent #%d (%s)"
                           s.id s.name p.id p.name)
                    else if is_leaf s && s.start > p.stop +. eps then
                      (* Only leaves must lie inside their parent: an
                         interior child (the next broker's hop) may
                         start after its parent closed — the message
                         was in flight, and across daemons no one can
                         extend the upstream process's span. *)
                      Some
                        (Printf.sprintf "leaf #%d (%s) starts after its parent #%d (%s) ended"
                           s.id s.name p.id p.name)
                    else if is_leaf s && s.stop > p.stop +. eps then
                      Some
                        (Printf.sprintf "leaf #%d (%s) escapes its parent #%d (%s)"
                           s.id s.name p.id p.name)
                    else None))
            spans
        in
        (match problem with
        | Some m -> Error m
        | None ->
          (* sibling leaves must not overlap: stage timers tile, never
             double-bill (per-edge leaves live under "edge" spans) *)
          let by_parent = Hashtbl.create 16 in
          List.iter
            (fun s ->
              match s.parent with
              | Some p when is_leaf s ->
                Hashtbl.replace by_parent p
                  (s :: Option.value ~default:[] (Hashtbl.find_opt by_parent p))
              | _ -> ())
            spans;
          let overlap =
            Hashtbl.fold
              (fun _p leaves acc ->
                match acc with
                | Some _ -> acc
                | None ->
                  let sorted = List.sort by_start leaves in
                  let rec scan = function
                    | a :: (b :: _ as rest) ->
                      if b.start < a.stop -. eps then
                        Some
                          (Printf.sprintf "sibling leaves #%d (%s) and #%d (%s) overlap"
                             a.id a.name b.id b.name)
                      else scan rest
                    | _ -> None
                  in
                  scan sorted)
              by_parent None
          in
          (match overlap with Some m -> Error m | None -> Ok ()))))

let stage_sum spans =
  let has_child = Hashtbl.create 16 in
  List.iter
    (fun s -> match s.parent with Some p -> Hashtbl.replace has_child p () | None -> ())
    spans;
  List.fold_left
    (fun acc s -> if Hashtbl.mem has_child s.id then acc else acc +. duration s)
    0.0 spans

(* ---------------- wire encoding ---------------- *)

(* Same idea as Codec's percent-escaping, scoped to this line format:
   fields are '|'-separated, meta entries ';'- and '='-separated. Floats
   travel as hex ("%h") so they round-trip bit-exactly. *)
let needs_escape c =
  c = '%' || c = '|' || c = ';' || c = '=' || c = '\n' || c = '\r'

let escape s =
  if String.exists needs_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape s =
  if not (String.contains s '%') then Some s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec loop i =
      if i >= n then Some (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 2 >= n then None
        else
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code when code >= 0 && code < 256 ->
            Buffer.add_char buf (Char.chr code);
            loop (i + 3)
          | _ -> None
      else begin
        Buffer.add_char buf s.[i];
        loop (i + 1)
      end
    in
    loop 0
  end

let to_wire_line s =
  let meta =
    String.concat ";"
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" (escape k) (escape v)) s.meta)
  in
  Printf.sprintf "%d|%d|%s|%d|%h|%h|%s|%s" s.id s.trace
    (match s.parent with Some p -> string_of_int p | None -> "-")
    s.broker s.start s.stop (escape s.name) meta

let of_wire_line line =
  match String.split_on_char '|' line with
  | [ id; trace; parent; broker; start; stop; name; meta ] -> (
    let ( let* ) = Option.bind in
    let* id = int_of_string_opt id in
    let* trace = int_of_string_opt trace in
    let* parent =
      if parent = "-" then Some None
      else match int_of_string_opt parent with Some p -> Some (Some p) | None -> None
    in
    let* broker = int_of_string_opt broker in
    let* start = float_of_string_opt start in
    let* stop = float_of_string_opt stop in
    let* name = unescape name in
    let* meta =
      if meta = "" then Some []
      else
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            match String.index_opt entry '=' with
            | None -> None
            | Some i ->
              let* k = unescape (String.sub entry 0 i) in
              let* v = unescape (String.sub entry (i + 1) (String.length entry - i - 1)) in
              Some ((k, v) :: acc))
          (Some [])
          (String.split_on_char ';' meta)
        |> Option.map List.rev
    in
    Some { id; trace; parent; name; broker; start; stop; meta })
  | _ -> None
