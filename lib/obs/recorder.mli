(** Flight recorder: post-mortem dumps for fault events.

    When something goes wrong — a fault-plan event fires in the
    simulator, or a live [AUDIT] reports an error-severity finding — the
    metrics and spans explaining it are about to be lost (crashed broker
    state is replaced; rings keep rolling). A recorder owns a directory
    and, on {!trigger}, writes one self-contained JSON file
    ([flight-<seq>-<reason>.json], schema [xroute-flight/1]) with the
    last N spans, the registry snapshot, recent hop records and rates.

    The ["spans"] field is itself a complete Chrome trace-event object,
    so it can be cut out and loaded in Perfetto directly.

    Dump failures are reported, never raised: a broken disk must not
    take the broker down with it. *)

type t

(** [create ~dir ()] records into [dir] (created if missing).
    [keep_spans] caps the spans embedded per dump (newest kept,
    default 512). *)
val create : ?keep_spans:int -> dir:string -> unit -> t

val dir : t -> string

(** Paths written so far, newest first. *)
val dumps : t -> string list

(** Write one dump. [at] is the trigger time in ms (virtual or wall,
    matching the spans). Returns the path written. *)
val trigger :
  t ->
  reason:string ->
  at:float ->
  ?metrics:Metrics.t ->
  ?spans:Span.span list ->
  ?hops:Trace.hop list ->
  ?rates:(string * float) list ->
  unit ->
  (string, string) result
