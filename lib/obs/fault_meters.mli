(** Metric handles for the fault-injection layer ([lib/fault] plans
    executed by [Xroute_overlay.Net]): crash/restart/requeue/duplicate
    counters and the recovery-time histogram, under the
    [xroute_fault_*] name family. Registered eagerly at {!create} so
    every name is present before any fault fires. *)

type t = {
  crashes : Metrics.counter;
  restarts : Metrics.counter;
  requeues : Metrics.counter;  (** sends requeued with backoff on a down link *)
  dups : Metrics.counter;  (** extra deliveries injected by duplicating links *)
  destroyed : Metrics.counter;
      (** messages destroyed at a dead broker or disconnected client *)
  disconnects : Metrics.counter;
  reconnects : Metrics.counter;
  replayed : Metrics.counter;  (** ledger entries re-injected by recovery *)
  recovery_ms : Metrics.histogram;
      (** virtual ms from broker restart until recovery traffic quiesced *)
}

val create : Metrics.t -> t
