(* Per-broker health summaries and their federation into an overlay
   view.

   Each broker (sim or daemon) owns one [t]: sketches for hop latency,
   queue depth and egress backlog, counters for publications and drops,
   and a per-link table with send/drop counts, a latency sketch, and a
   sliding-window EWMA send rate. Everything in a summary merges
   without bias: sketches by bucket addition, counters by addition —
   except that summaries themselves never merge with each other.
   Federation merges *views* (origin id -> summary), keyed by origin
   with the freshest epoch winning, so pulling the same broker through
   two overlay paths (a diamond, a cycle) contributes its summary once.
   That makes view merge idempotent — merging a view with itself is a
   no-op — which is the property the --obs-audit gate pins and the
   reason FEDSTATS is safe on future cyclic overlays.

   The wire encoding is one line per summary: '|'-separated k=v fields
   with links ascending by peer id and space-separated link subfields,
   deliberately disjoint from the {!Sketch} alphabet (';', ':', ',') so
   the sketch encodings nest verbatim. The whole line is then
   Framing-escaped on the wire. *)

type link = {
  l_peer : int;
  l_latency : Sketch.t; (* per-hop latency over this link, ms *)
  mutable l_sends : int;
  mutable l_drops : int;
  mutable l_rate : float; (* EWMA sends/s *)
}

type t = {
  origin : int;
  mutable epoch : int; (* bumped by [tick]; freshest wins in view merge *)
  hop_latency : Sketch.t; (* broker processing hop latency, ms *)
  queue_depth : Sketch.t;
  backlog : Sketch.t; (* egress backlog (bytes or queued events) *)
  mutable pubs : int;
  mutable drops : int;
  links : (int, link) Hashtbl.t;
  (* EWMA state: events since the last tick, per link, and the last
     tick's timestamp (ms). *)
  pending : (int, int) Hashtbl.t;
  mutable last_tick : float;
  window : float; (* EWMA window, ms *)
}

let default_window = 5000.0

let create ?(window = default_window) origin =
  {
    origin;
    epoch = 0;
    hop_latency = Sketch.create ();
    queue_depth = Sketch.create ();
    backlog = Sketch.create ();
    pubs = 0;
    drops = 0;
    links = Hashtbl.create 8;
    pending = Hashtbl.create 8;
    last_tick = nan;
    window;
  }

let origin t = t.origin
let epoch t = t.epoch
let hop_latency t = t.hop_latency
let queue_depth t = t.queue_depth
let backlog t = t.backlog
let pubs t = t.pubs
let drops t = t.drops

let link t peer =
  match Hashtbl.find_opt t.links peer with
  | Some l -> l
  | None ->
    let l =
      { l_peer = peer; l_latency = Sketch.create (); l_sends = 0; l_drops = 0; l_rate = 0.0 }
    in
    Hashtbl.add t.links peer l;
    l

let links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> compare a.l_peer b.l_peer)

(* ---------------- recording ---------------- *)

let record_pub t = t.pubs <- t.pubs + 1
let record_drop t = t.drops <- t.drops + 1
let record_hop_latency t ms = Sketch.observe t.hop_latency ms
let record_queue_depth t d = Sketch.observe t.queue_depth d
let record_backlog t b = Sketch.observe t.backlog b

let record_send t ~peer =
  let l = link t peer in
  l.l_sends <- l.l_sends + 1;
  Hashtbl.replace t.pending peer (1 + Option.value (Hashtbl.find_opt t.pending peer) ~default:0)

let record_link_drop t ~peer =
  let l = link t peer in
  l.l_drops <- l.l_drops + 1
let record_link_latency t ~peer ms = Sketch.observe (link t peer).l_latency ms

(* Fold the sends since the last tick into each link's EWMA rate:
   rate' = decay * rate + (1 - decay) * instantaneous, with
   decay = exp(-dt/window) — a sliding exponential window, deterministic
   given the same event sequence and tick times. Bumps the epoch. *)
let tick t ~now =
  t.epoch <- t.epoch + 1;
  if Float.is_nan t.last_tick then t.last_tick <- now
  else begin
    let dt = now -. t.last_tick in
    if dt > 0.0 then begin
      let decay = exp (-.dt /. t.window) in
      Hashtbl.iter
        (fun _ l ->
          let n = Option.value (Hashtbl.find_opt t.pending l.l_peer) ~default:0 in
          let inst = float_of_int n /. (dt /. 1000.0) in
          l.l_rate <- (decay *. l.l_rate) +. ((1.0 -. decay) *. inst))
        t.links;
      Hashtbl.reset t.pending;
      t.last_tick <- now
    end
  end

(* ---------------- wire encoding ---------------- *)

let fenc = Printf.sprintf "%h"

let encode_summary t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "hs1|o=%d|e=%d|p=%d|d=%d|hl=%s|qd=%s|eb=%s" t.origin t.epoch t.pubs
       t.drops
       (Sketch.encode t.hop_latency)
       (Sketch.encode t.queue_depth)
       (Sketch.encode t.backlog));
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "|l=%d %d %d %s %s" l.l_peer l.l_sends l.l_drops (fenc l.l_rate)
           (Sketch.encode l.l_latency)))
    (links t);
  Buffer.contents buf

let decode_summary s =
  let ( let* ) = Option.bind in
  match String.split_on_char '|' s with
  | "hs1" :: fields ->
    let kv f =
      match String.index_opt f '=' with
      | Some i -> Some (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
      | None -> None
    in
    let rec go t = function
      | [] -> t
      | f :: rest -> (
        match kv f with
        | None -> None
        | Some (k, v) -> (
          match (k, t) with
          | "o", None ->
            let* o = int_of_string_opt v in
            go (Some (create o)) rest
          | _, None -> None (* origin must come first *)
          | "e", Some t ->
            let* e = int_of_string_opt v in
            t.epoch <- e;
            go (Some t) rest
          | "p", Some t ->
            let* p = int_of_string_opt v in
            t.pubs <- p;
            go (Some t) rest
          | "d", Some t ->
            let* d = int_of_string_opt v in
            t.drops <- d;
            go (Some t) rest
          | "hl", Some t ->
            let* sk = Sketch.decode v in
            Sketch.merge_into ~dst:t.hop_latency sk;
            go (Some t) rest
          | "qd", Some t ->
            let* sk = Sketch.decode v in
            Sketch.merge_into ~dst:t.queue_depth sk;
            go (Some t) rest
          | "eb", Some t ->
            let* sk = Sketch.decode v in
            Sketch.merge_into ~dst:t.backlog sk;
            go (Some t) rest
          | "l", Some t -> (
            match String.split_on_char ' ' v with
            | [ peer; sends; drops; rate; sk ] ->
              let* peer = int_of_string_opt peer in
              let* sends = int_of_string_opt sends in
              let* drops = int_of_string_opt drops in
              let* rate = float_of_string_opt rate in
              let* sk = Sketch.decode sk in
              let l = link t peer in
              l.l_sends <- sends;
              l.l_drops <- drops;
              l.l_rate <- rate;
              Sketch.merge_into ~dst:l.l_latency sk;
              go (Some t) rest
            | _ -> None)
          | _, Some t -> go (Some t) rest (* unknown field: forward compat *)))
    in
    go None fields
  | _ -> None

(* ---------------- views ---------------- *)

(* An overlay view: origin id -> that broker's summary, sorted by
   origin. Merge is keyed by origin — the freshest epoch wins, ties
   resolved by the lexicographically smaller encoding so the merge is
   deterministic regardless of argument order — hence idempotent:
   [merge_views v v] = [v]. *)
type view = (int * t) list

let view_of ts = List.sort (fun (a, _) (b, _) -> compare a b) (List.map (fun t -> (t.origin, t)) ts)

let pick a b =
  if a.epoch > b.epoch then a
  else if b.epoch > a.epoch then b
  else if String.compare (encode_summary a) (encode_summary b) <= 0 then a
  else b

let merge_views (va : view) (vb : view) : view =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (o, s) -> Hashtbl.replace tbl o s) va;
  List.iter
    (fun (o, s) ->
      match Hashtbl.find_opt tbl o with
      | None -> Hashtbl.add tbl o s
      | Some prev -> Hashtbl.replace tbl o (pick prev s))
    vb;
  Hashtbl.fold (fun o s acc -> (o, s) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let encode_view (v : view) = List.map (fun (_, s) -> encode_summary s) v

let decode_view lines =
  let rec go acc = function
    | [] -> Some (merge_views (view_of (List.rev acc)) [])
    | line :: rest -> (
      match decode_summary line with
      | Some s -> go (s :: acc) rest
      | None -> None)
  in
  go [] lines

let view_equal (a : view) (b : view) =
  List.length a = List.length b
  && List.for_all2
       (fun (oa, sa) (ob, sb) ->
         oa = ob && String.equal (encode_summary sa) (encode_summary sb))
       a b

(* ---------------- rendering ---------------- *)

let fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let qline name sk =
  if Sketch.count sk = 0 then Printf.sprintf "%-12s (no samples)" name
  else
    Printf.sprintf "%-12s n=%d p50=%s p95=%s p99=%s max=%s" name (Sketch.count sk)
      (fmt (Sketch.quantile sk 0.5))
      (fmt (Sketch.quantile sk 0.95))
      (fmt (Sketch.quantile sk 0.99))
      (fmt (Sketch.max_value sk))

(* Single-shot text dashboard of an overlay view: one block per origin
   plus an overlay-wide rollup (sketches merged across origins). *)
let render_top (v : view) =
  let buf = Buffer.create 1024 in
  let rollup = Sketch.create () in
  let total_pubs = ref 0 and total_drops = ref 0 in
  List.iter
    (fun (o, s) ->
      Sketch.merge_into ~dst:rollup s.hop_latency;
      total_pubs := !total_pubs + s.pubs;
      total_drops := !total_drops + s.drops;
      Buffer.add_string buf
        (Printf.sprintf "broker %d  epoch=%d pubs=%d drops=%d\n" o s.epoch s.pubs s.drops);
      Buffer.add_string buf (Printf.sprintf "  %s\n" (qline "hop_ms" s.hop_latency));
      Buffer.add_string buf (Printf.sprintf "  %s\n" (qline "queue" s.queue_depth));
      Buffer.add_string buf (Printf.sprintf "  %s\n" (qline "backlog" s.backlog));
      List.iter
        (fun l ->
          Buffer.add_string buf
            (Printf.sprintf "  link ->%-4d sends=%d drops=%d rate=%s/s %s\n" l.l_peer
               l.l_sends l.l_drops (fmt l.l_rate) (qline "lat_ms" l.l_latency)))
        (links s))
    v;
  Buffer.add_string buf
    (Printf.sprintf "overlay  brokers=%d pubs=%d drops=%d\n  %s\n" (List.length v)
       !total_pubs !total_drops (qline "hop_ms" rollup));
  Buffer.contents buf

let sketch_json sk =
  Printf.sprintf "{\"count\":%d,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}"
    (Sketch.count sk)
    (fmt (Sketch.quantile sk 0.5))
    (fmt (Sketch.quantile sk 0.95))
    (fmt (Sketch.quantile sk 0.99))
    (fmt (if Sketch.count sk = 0 then 0.0 else Sketch.max_value sk))

let view_to_json (v : view) =
  let summary_json (o, s) =
    let links_json =
      links s
      |> List.map (fun l ->
             Printf.sprintf
               "{\"peer\":%d,\"sends\":%d,\"drops\":%d,\"rate\":%s,\"latency_ms\":%s}" l.l_peer
               l.l_sends l.l_drops (fmt l.l_rate) (sketch_json l.l_latency))
      |> String.concat ","
    in
    Printf.sprintf
      "{\"origin\":%d,\"epoch\":%d,\"pubs\":%d,\"drops\":%d,\"hop_latency_ms\":%s,\"queue_depth\":%s,\"backlog\":%s,\"links\":[%s]}"
      o s.epoch s.pubs s.drops (sketch_json s.hop_latency) (sketch_json s.queue_depth)
      (sketch_json s.backlog) links_json
  in
  "{\"brokers\":[" ^ String.concat "," (List.map summary_json v) ^ "]}"
