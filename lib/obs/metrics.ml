(* Metrics registry: named counters, gauges and histograms with
   Prometheus-style text and JSON exposition.

   The registry is the uniform surface behind every statistics feed in
   the system: each broker owns one, the overlay simulator owns one for
   network-level quantities, the daemon dumps one over the wire
   (STATS|), and the experiment harness aggregates them for reporting.

   Naming convention: [xroute_<subsystem>_<metric>], with [_total] for
   monotonic counters and [_ms] for millisecond-valued histograms.

   Histograms feed two stores per observation: a capped raw-sample
   array (see [histogram ~cap]) and an uncapped mergeable quantile
   sketch ({!Sketch}). While nothing has been dropped the summary is
   the exact [Stats.summarize] of the raw samples; once observations
   pass the cap the quantiles switch to the sketch — which keeps seeing
   every value, fixing the bias capped arrays had toward early samples —
   while count/sum/mean/stddev/min/max stay exact throughout (tracked
   as running scalars). Exported as a Prometheus summary (p50/p95/p99
   quantiles plus [_sum]/[_count]). *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_cap : int; (* retained-sample bound *)
  mutable h_samples : float array;
  mutable h_len : int;
  mutable h_sum : float;
  mutable h_sumsq : float;
  mutable h_min : float; (* exact over every observation; +inf when empty *)
  mutable h_max : float;
  mutable h_total : int; (* observations ever, including beyond the cap *)
  h_sketch : Sketch.t; (* every observation, never capped *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable items : (string * string * metric) list (* name, help, metric *) }

let create () = { items = [] }

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let find t name =
  List.find_map
    (fun (n, _, m) -> if String.equal n name then Some m else None)
    t.items

let metrics t =
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) t.items

let register t name help metric =
  t.items <- t.items @ [ (name, help, metric) ];
  metric

let counter t ?(help = "") name =
  match find t name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered with another type")
  | None -> (
    match register t name help (Counter { c_name = name; c_value = 0 }) with
    | Counter c -> c
    | _ -> assert false)

let gauge t ?(help = "") name =
  match find t name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another type")
  | None -> (
    match register t name help (Gauge { g_name = name; g_value = 0.0 }) with
    | Gauge g -> g
    | _ -> assert false)

let histogram t ?(help = "") ?(cap = 65536) name =
  match find t name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another type")
  | None -> (
    match
      register t name help
        (Histogram
           {
             h_name = name;
             h_cap = cap;
             h_samples = Array.make 64 0.0;
             h_len = 0;
             h_sum = 0.0;
             h_sumsq = 0.0;
             h_min = infinity;
             h_max = neg_infinity;
             h_total = 0;
             h_sketch = Sketch.create ();
           })
    with
    | Histogram h -> h
    | _ -> assert false)

(* ---------------- counters ---------------- *)

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.c_value <- c.c_value + n

(* Mirror a pre-existing cumulative source (e.g. [Srt.match_ops]) into a
   counter; never moves backwards, preserving monotonicity. *)
let counter_set c v = if v > c.c_value then c.c_value <- v
let value c = c.c_value

(* ---------------- gauges ---------------- *)

let set g v = g.g_value <- v
let set_int g v = g.g_value <- float_of_int v
let gauge_value g = g.g_value

(* ---------------- histograms ---------------- *)

let push_sample h v =
  if h.h_len < h.h_cap then begin
    if h.h_len = Array.length h.h_samples then begin
      let bigger =
        Array.make (min h.h_cap (2 * Array.length h.h_samples)) 0.0
      in
      Array.blit h.h_samples 0 bigger 0 h.h_len;
      h.h_samples <- bigger
    end;
    h.h_samples.(h.h_len) <- v;
    h.h_len <- h.h_len + 1
  end

let observe h v =
  h.h_sum <- h.h_sum +. v;
  h.h_sumsq <- h.h_sumsq +. (v *. v);
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  h.h_total <- h.h_total + 1;
  Sketch.observe h.h_sketch v;
  push_sample h v

let samples h = Array.sub h.h_samples 0 h.h_len
let sketch h = h.h_sketch

(* While no observation has been dropped the raw samples are the whole
   stream and the summary is exact. Past the cap (or after an
   [aggregate] that pooled more than fits) the quantiles come from the
   sketch — within its relative-error bound but unbiased — and the
   moments from the exact running scalars. *)
let summary h =
  if h.h_total <= h.h_len then Xroute_support.Stats.summarize (samples h)
  else begin
    let n = float_of_int h.h_total in
    let mean = h.h_sum /. n in
    let var =
      if h.h_total < 2 then 0.0
      else Float.max 0.0 ((h.h_sumsq -. (n *. mean *. mean)) /. (n -. 1.0))
    in
    {
      Xroute_support.Stats.count = h.h_total;
      mean;
      stddev = sqrt var;
      min = h.h_min;
      max = h.h_max;
      p50 = Sketch.quantile h.h_sketch 0.5;
      p95 = Sketch.quantile h.h_sketch 0.95;
      p99 = Sketch.quantile h.h_sketch 0.99;
    }
  end

let quantile h q =
  if h.h_total <= h.h_len then Xroute_support.Stats.percentile (samples h) q
  else Sketch.quantile h.h_sketch q

let observations h = h.h_total
let sum h = h.h_sum

(* ---------------- lookup helpers ---------------- *)

(* One scalar per metric: counter value, gauge value, or histogram
   observation count — the "did this hot path fire at all" view. *)
let scalar t name =
  match find t name with
  | Some (Counter c) -> Some (float_of_int c.c_value)
  | Some (Gauge g) -> Some g.g_value
  | Some (Histogram h) -> Some (float_of_int h.h_total)
  | None -> None

(* ---------------- aggregation ---------------- *)

(* Merge registries: counters and gauges sum, histograms pool their
   retained samples, merge their sketches, and combine their exact
   running scalars. Used to total per-broker registries network-wide. *)
let aggregate ts =
  let out = create () in
  List.iter
    (fun t ->
      List.iter
        (fun (name, help, m) ->
          match m with
          | Counter c ->
            let c' = counter out ~help name in
            c'.c_value <- c'.c_value + c.c_value
          | Gauge g ->
            let g' = gauge out ~help name in
            g'.g_value <- g'.g_value +. g.g_value
          | Histogram h ->
            let h' = histogram out ~help ~cap:h.h_cap name in
            for i = 0 to h.h_len - 1 do
              push_sample h' h.h_samples.(i)
            done;
            h'.h_total <- h'.h_total + h.h_total;
            h'.h_sum <- h'.h_sum +. h.h_sum;
            h'.h_sumsq <- h'.h_sumsq +. h.h_sumsq;
            if h.h_min < h'.h_min then h'.h_min <- h.h_min;
            if h.h_max > h'.h_max then h'.h_max <- h.h_max;
            Sketch.merge_into ~dst:h'.h_sketch h.h_sketch)
        t.items)
    ts;
  out

(* ---------------- exposition ---------------- *)

(* Stable float rendering: integers without a fraction, everything else
   with up to 6 significant digits (valid in both formats). *)
let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, help, m) ->
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      match m with
      | Counter c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name c.c_value)
      | Gauge g ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_float g.g_value))
      | Histogram h ->
        let s = summary h in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" name);
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" name (fmt_float s.p50));
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"0.95\"} %s\n" name (fmt_float s.p95));
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"0.99\"} %s\n" name (fmt_float s.p99));
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (fmt_float h.h_sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.h_total))
    (metrics t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let item (name, help, m) =
    let base = Printf.sprintf "\"name\":\"%s\",\"help\":\"%s\"" (json_escape name) (json_escape help) in
    match m with
    | Counter c -> Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" base c.c_value
    | Gauge g -> Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" base (fmt_float g.g_value)
    | Histogram h ->
      let s = summary h in
      Printf.sprintf
        "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"mean\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
        base h.h_total (fmt_float h.h_sum) (fmt_float s.mean) (fmt_float s.min)
        (fmt_float s.max) (fmt_float s.p50) (fmt_float s.p95) (fmt_float s.p99)
  in
  "{\"metrics\":[" ^ String.concat "," (List.map item (metrics t)) ^ "]}"
