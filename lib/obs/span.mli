(** Causal spans: hierarchical timed intervals that decompose one
    publication's end-to-end latency.

    A trace is the set of spans sharing a [trace] id (publications use
    their [doc_id]). Within a trace, spans form a tree via [parent]:

    - one root (the publication's lifetime, emit → last delivery),
    - one "hop" span per broker visit, parented on the span that caused
      it (the previous hop, or the root for the first broker),
    - leaf "stage" spans under each hop — the per-stage timers: queue
      wait, parse/decompose, SRT/PRT match, cover check, serialize,
      transmit, link, FIFO queueing, delivery. Stage leaves tile their
      parent's interval, so summing leaf durations along a single-path
      chain reproduces the measured end-to-end latency exactly (the
      [--smoke] gate in bench relies on this).
    - per-edge "edge" spans group the transmit/link/queue leaves of one
      outgoing link, so sibling leaves never overlap even under fanout.

    Times are milliseconds — virtual in the simulator, monotonic wall
    clock ({!Xroute_support.Mono}) in the daemon. A collector retains
    the newest [capacity] spans in a ring with a per-trace bucket index
    ({!spans_for} cost is independent of unrelated traffic). Daemons use
    disjoint [id_base]s so spans merged from several processes keep
    globally unique ids. *)

type span = {
  id : int;
  trace : int;  (** correlation key; [doc_id] for publications *)
  parent : int option;  (** parent span id; [None] for the trace root *)
  name : string;  (** "pub", "hop", "edge", or a stage name *)
  broker : int;  (** broker id; [-1] outside any broker *)
  start : float;  (** ms *)
  mutable stop : float;  (** ms; [= start] while open *)
  mutable meta : (string * string) list;
}

type t

(** Ring of the newest [capacity] spans (default 8192). [id_base] offsets
    allocated ids — give each daemon a disjoint base.
    @raise Invalid_argument when [capacity <= 0]. *)
val create : ?capacity:int -> ?id_base:int -> unit -> t

(** Spans ever started (may exceed the retained count). *)
val length : t -> int

val capacity : t -> int

(** Open a span at [at]; [stop] starts equal to [start]. *)
val start_span :
  t -> ?parent:int -> trace:int -> name:string -> broker:int -> at:float -> unit -> span

(** Record a closed span in one call. *)
val record :
  t ->
  ?parent:int ->
  ?meta:(string * string) list ->
  trace:int ->
  name:string ->
  broker:int ->
  start:float ->
  stop:float ->
  unit ->
  span

(** Close at [at] (unconditionally). *)
val finish : span -> at:float -> unit

(** Push [stop] forward to [at] if later; never moves it back. *)
val extend : span -> at:float -> unit

val add_meta : span -> string -> string -> unit

(** Retained span by id. O(1). *)
val find : t -> int -> span option

(** Retained spans of one trace, creation order. O(trace size). *)
val spans_for : t -> trace:int -> span list

(** The retained root (parent = None) of a trace, if any. *)
val root_for : t -> trace:int -> span option

(** Spans examined by the most recent {!spans_for}. *)
val last_lookup_cost : t -> int

(** Retained spans, oldest first. *)
val to_list : t -> span list

val clear : t -> unit
val duration : span -> float

(** {2 Renderers and checks} — pure functions over span lists, so spans
    fetched from several daemons can be merged before rendering. *)

(** Chrome trace-event JSON ({["traceEvents"]} of ["ph":"X"] complete
    events, [ts]/[dur] in microseconds, [pid] = broker, [tid] = trace);
    loads in Perfetto / chrome://tracing. *)
val to_chrome : span list -> string

(** JSON string-body escaping shared by the hand-rolled emitters. *)
val json_escape : string -> string

(** Indented text waterfall, one trace after another. *)
val waterfall : span list -> string

(** Structural validation of one trace's spans: exactly one root, every
    parent resolves, children start no earlier than their parent, leaf
    children lie inside their parent's interval, sibling leaves do not
    overlap, no span ends before it starts. An interior child may start
    after its parent ended (a hop chained across daemons: the message
    was in flight when the upstream hop closed). *)
val check_tree : span list -> (unit, string) result

(** Sum of leaf-span durations — the per-stage decomposition total. On a
    single-path trace this equals root end-to-end latency (see module
    doc). *)
val stage_sum : span list -> float

(** One-line wire encoding (fields [|]-separated, content escaped) and
    its inverse; used by the [TRACE|] daemon command. *)
val to_wire_line : span -> string

val of_wire_line : string -> span option
