type t = {
  dir : string;
  keep_spans : int;
  mutable seq : int;
  mutable dumps : string list; (* newest first *)
}

let create ?(keep_spans = 512) ~dir () = { dir; keep_spans; seq = 0; dumps = [] }
let dir t = t.dir
let dumps t = t.dumps

let slug reason =
  let b = Buffer.create (String.length reason) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | _ -> if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-' then Buffer.add_char b '-')
    reason;
  let s = Buffer.contents b in
  let s = if String.length s > 40 then String.sub s 0 40 else s in
  if s = "" then "event" else s

let json_escape = Span.json_escape

let last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let hop_json (h : Trace.hop) =
  Printf.sprintf
    "{\"seq\":%d,\"kind\":\"%s\",\"key\":%d,\"broker\":%d,\"time\":%.3f,\"queue_depth\":%d,\"match_ops\":%d}"
    h.Trace.seq (json_escape h.Trace.kind) h.Trace.key h.Trace.broker h.Trace.time
    h.Trace.queue_depth h.Trace.match_ops

let render t ~reason ~at ?metrics ?(spans = []) ?(hops = []) ?(rates = []) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"xroute-flight/1\",\"seq\":%d,\"reason\":\"%s\",\"at\":%.3f" t.seq
       (json_escape reason) at);
  Buffer.add_string buf ",\"metrics\":";
  Buffer.add_string buf
    (match metrics with Some m -> Metrics.to_json m | None -> "null");
  Buffer.add_string buf ",\"spans\":";
  Buffer.add_string buf (Span.to_chrome (last t.keep_spans spans));
  Buffer.add_string buf ",\"hops\":[";
  Buffer.add_string buf (String.concat "," (List.map hop_json (last t.keep_spans hops)));
  Buffer.add_string buf "],\"rates\":{";
  Buffer.add_string buf
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%.6g" (json_escape k) v) rates));
  Buffer.add_string buf "}}";
  Buffer.contents buf

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let trigger t ~reason ~at ?metrics ?spans ?hops ?rates () =
  let body = render t ~reason ~at ?metrics ?spans ?hops ?rates () in
  let path = Filename.concat t.dir (Printf.sprintf "flight-%03d-%s.json" t.seq (slug reason)) in
  t.seq <- t.seq + 1;
  try
    ensure_dir t.dir;
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc body);
    t.dumps <- path :: t.dumps;
    Ok path
  with Sys_error msg -> Error msg
