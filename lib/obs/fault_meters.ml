(* Metric handles for the fault-injection layer: registered eagerly so
   the xroute_fault_* family appears in expositions even before any
   fault fires, and resolved once so the simulator's hot paths never do
   a name lookup. *)

type t = {
  crashes : Metrics.counter;
  restarts : Metrics.counter;
  requeues : Metrics.counter;
  dups : Metrics.counter;
  destroyed : Metrics.counter;
  disconnects : Metrics.counter;
  reconnects : Metrics.counter;
  replayed : Metrics.counter;
  recovery_ms : Metrics.histogram;
}

let create reg =
  {
    crashes = Metrics.counter reg ~help:"Broker crashes injected" "xroute_fault_crashes_total";
    restarts = Metrics.counter reg ~help:"Broker restarts injected" "xroute_fault_restarts_total";
    requeues =
      Metrics.counter reg ~help:"Sends requeued with backoff while a link was down"
        "xroute_fault_requeues_total";
    dups =
      Metrics.counter reg ~help:"Extra deliveries injected by duplicating links"
        "xroute_fault_dup_deliveries_total";
    destroyed =
      Metrics.counter reg ~help:"Messages destroyed at a dead broker or disconnected client"
        "xroute_fault_msgs_destroyed_total";
    disconnects =
      Metrics.counter reg ~help:"Client disconnects injected" "xroute_fault_client_disconnects_total";
    reconnects =
      Metrics.counter reg ~help:"Client reconnects performed" "xroute_fault_client_reconnects_total";
    replayed =
      Metrics.counter reg ~help:"Ledger entries re-injected by recovery"
        "xroute_fault_replayed_total";
    recovery_ms =
      Metrics.histogram reg
        ~help:"Virtual ms from broker restart until recovery traffic quiesced"
        "xroute_fault_recovery_ms";
  }
