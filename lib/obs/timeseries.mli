(** Periodic registry snapshots in a ring, with deltas and rates.

    A {!Metrics.t} registry only ever shows "now"; this module samples
    the scalar view of every registered metric (counter value, gauge
    value, histogram observation count) at caller-chosen instants so the
    recent trajectory survives — the daemon snapshots once a second, and
    the flight recorder embeds the latest rates in its dump. *)

type sample = {
  at : float;  (** ms, same clock the caller stamps spans with *)
  values : (string * float) list;  (** metric name → scalar, sorted *)
}

type t

(** Ring of the newest [capacity] samples (default 128) over [registry].
    @raise Invalid_argument when [capacity <= 0]. *)
val create : ?capacity:int -> Metrics.t -> t

(** Sample every registered metric at time [at]. *)
val snapshot : t -> at:float -> unit

(** Snapshots ever taken. *)
val length : t -> int

val capacity : t -> int

(** Retained samples, oldest first. *)
val to_list : t -> sample list

val last : t -> sample option

(** Per-metric change between the last two snapshots (new metrics count
    from 0). Empty with fewer than two snapshots. *)
val deltas : t -> (string * float) list

(** {!deltas} divided by the elapsed time, per second. Empty when fewer
    than two snapshots or time has not advanced. *)
val rates : t -> (string * float) list
