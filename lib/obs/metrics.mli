(** Metrics registry: named counters, gauges and histograms with
    Prometheus-style text and JSON exposition.

    Naming convention: [xroute_<subsystem>_<metric>], with [_total] for
    monotonic counters and [_ms] for millisecond-valued histograms.
    Every broker owns a registry; {!aggregate} totals them. *)

type counter
type gauge
type histogram
type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(** A registry. *)
type t

val create : unit -> t

(** [counter t name] registers (or returns the already-registered)
    counter. @raise Invalid_argument when [name] exists with another
    type. Same contract for {!gauge} and {!histogram}. *)
val counter : t -> ?help:string -> string -> counter

val gauge : t -> ?help:string -> string -> gauge

(** [cap] bounds the retained raw samples (default 65536). Every
    observation additionally feeds an uncapped {!Sketch.t} and the exact
    running count/sum/sum-of-squares/min/max, so {!summary} stays
    unbiased past the cap (see {!summary} for the exact contract). *)
val histogram : t -> ?help:string -> ?cap:int -> string -> histogram

val incr : counter -> unit

(** Monotonic increment. @raise Invalid_argument on a negative amount. *)
val add : counter -> int -> unit

(** Mirror a pre-existing cumulative source into the counter; never
    moves the value backwards. *)
val counter_set : counter -> int -> unit

val value : counter -> int

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** Retained samples, oldest first — the whole stream while the
    observation count is within [cap], a biased prefix after. *)
val samples : histogram -> float array

(** The histogram's quantile sketch: every observation ever made,
    mergeable across brokers ({!Sketch.merge}). *)
val sketch : histogram -> Sketch.t

(** Contract: while no sample has been dropped (observations <= [cap]),
    this is exactly [Stats.summarize (samples h)]. Once the cap is
    exceeded, [count]/[sum]/[mean]/[stddev]/[min]/[max] remain exact
    (running scalars over the full stream) and the quantiles come from
    the sketch — unbiased, within its relative-error bound
    ({!Sketch.alpha}) — rather than from the truncated sample prefix. *)
val summary : histogram -> Xroute_support.Stats.summary

(** Arbitrary quantile ([q] in [[0, 1]]), same exact-then-sketch
    contract as {!summary}. *)
val quantile : histogram -> float -> float

(** Observations ever made (may exceed the retained count). *)
val observations : histogram -> int

val sum : histogram -> float

(** Registered metrics as [(name, help, metric)], sorted by name. *)
val metrics : t -> (string * string * metric) list

val metric_name : metric -> string
val find : t -> string -> metric option

(** One scalar per metric: counter value, gauge value, or histogram
    observation count. [None] when unregistered. *)
val scalar : t -> string -> float option

(** Merge registries: counters and gauges sum; histograms pool their
    retained samples, merge their sketches and combine their exact
    running scalars, so the aggregate's {!summary} obeys the same
    contract as a single histogram's. *)
val aggregate : t list -> t

(** Prometheus text exposition (counters, gauges, and histograms as
    summaries with p50/p95/p99 quantiles). *)
val to_prometheus : t -> string

(** Single-line JSON exposition. *)
val to_json : t -> string
