(* Hop tracing: a bounded record of each message's path through the
   overlay. Every broker visit appends one hop — broker id, time
   (virtual ms in the simulator, wall ms in the daemon), the event-queue
   depth at that moment and the match operations the visit charged — so
   a delivery can be replayed hop by hop when a delay number looks
   wrong.

   The buffer is a ring: with capacity [n], only the newest [n] hops are
   retained ([length] keeps counting). Messages are correlated by an
   integer [key]: publications use their [doc_id]; control messages fold
   their subscription id into one integer ({!key_of_id}).

   Retained hops are additionally bucketed by key, so [hops_for] walks
   only the hops of the requested message rather than the whole ring:
   lookup cost is independent of unrelated traffic. The ring evicts
   globally-oldest-first and every bucket is in record order, so the hop
   evicted on overwrite is always the front of its bucket. *)

type hop = {
  seq : int; (* global record order, 0-based *)
  kind : string; (* "adv" | "unadv" | "sub" | "unsub" | "pub" *)
  key : int; (* correlates the hops of one message *)
  broker : int;
  time : float; (* ms, virtual or wall *)
  queue_depth : int; (* pending events / connections backlog *)
  match_ops : int; (* match/cover operations this visit charged *)
}

type t = {
  capacity : int;
  ring : hop option array;
  mutable total : int; (* hops ever recorded *)
  by_key : (int, hop Queue.t) Hashtbl.t; (* retained hops per key, record order *)
  mutable last_lookup_cost : int; (* hops examined by the last [hops_for] *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity None;
    total = 0;
    by_key = Hashtbl.create 64;
    last_lookup_cost = 0;
  }

let length t = t.total
let capacity t = t.capacity

let bucket_drop t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> ()
  | Some q ->
    ignore (Queue.pop q);
    if Queue.is_empty q then Hashtbl.remove t.by_key key

let record t ~kind ~key ~broker ~time ~queue_depth ~match_ops =
  let hop = { seq = t.total; kind; key; broker; time; queue_depth; match_ops } in
  let slot = t.total mod t.capacity in
  (match t.ring.(slot) with
  | Some evicted -> bucket_drop t evicted.key
  | None -> ());
  t.ring.(slot) <- Some hop;
  t.total <- t.total + 1;
  let q =
    match Hashtbl.find_opt t.by_key key with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.by_key key q;
      q
  in
  Queue.push hop q

(* Retained hops, oldest first. *)
let to_list t =
  let n = min t.total t.capacity in
  let start = t.total - n in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some hop -> hop
      | None -> assert false)

(* The retained path of one message, oldest first. O(path length). *)
let hops_for t ~key =
  match Hashtbl.find_opt t.by_key key with
  | None ->
    t.last_lookup_cost <- 0;
    []
  | Some q ->
    t.last_lookup_cost <- Queue.length q;
    List.rev (Queue.fold (fun acc h -> h :: acc) [] q)

let last_lookup_cost t = t.last_lookup_cost

let clear t =
  Array.fill t.ring 0 t.capacity None;
  Hashtbl.reset t.by_key;
  t.total <- 0

(* Fold a subscription id (origin, seq) into a correlation key. *)
let key_of_id ~origin ~seq = (origin * 1_000_003) + seq

let pp_hop ppf h =
  Format.fprintf ppf "#%d %s key=%d broker=%d t=%.3fms q=%d ops=%d" h.seq h.kind
    h.key h.broker h.time h.queue_depth h.match_ops
