(** Per-broker health summaries and their federation into an overlay
    view (DESIGN.md Sec. 16).

    A summary holds {!Sketch} quantiles for hop latency, queue depth and
    egress backlog, publication/drop counters, and a per-link table
    (send/drop counts, latency sketch, sliding-window EWMA send rate).
    Summaries travel the wire as one canonical line each
    ({!encode_summary}) and federate as {e views} — origin id to
    summary — merged by origin with the freshest {!epoch} winning, so
    the merge is deterministic and idempotent: pulling the same broker
    through two overlay paths contributes its summary once, which is
    what makes [FEDSTATS] safe on cyclic overlays. *)

type t

type link = {
  l_peer : int;
  l_latency : Sketch.t;  (** per-hop latency over this link, ms *)
  mutable l_sends : int;
  mutable l_drops : int;
  mutable l_rate : float;  (** EWMA sends/s, updated by {!tick} *)
}

(** [create ?window origin] — [window] is the EWMA sliding window in ms
    (default 5000). *)
val create : ?window:float -> int -> t

val origin : t -> int

(** Bumped by every {!tick}; the freshest epoch wins in {!merge_views}. *)
val epoch : t -> int

val hop_latency : t -> Sketch.t
val queue_depth : t -> Sketch.t
val backlog : t -> Sketch.t
val pubs : t -> int
val drops : t -> int

(** The link record toward [peer], created on first use. *)
val link : t -> int -> link

(** All links, ascending by peer id. *)
val links : t -> link list

(** {2 Recording} *)

val record_pub : t -> unit
val record_drop : t -> unit
val record_hop_latency : t -> float -> unit
val record_queue_depth : t -> float -> unit
val record_backlog : t -> float -> unit
val record_send : t -> peer:int -> unit
val record_link_drop : t -> peer:int -> unit
val record_link_latency : t -> peer:int -> float -> unit

(** Fold the sends since the last tick into each link's EWMA rate
    ([rate' = decay·rate + (1-decay)·instantaneous],
    [decay = exp(-dt/window)]) and bump the epoch. [now] is in ms (any
    monotonic clock); the first tick only anchors the window. *)
val tick : t -> now:float -> unit

(** {2 Wire encoding} *)

(** One canonical line (no ['\n']; ['|']-separated fields nesting the
    {!Sketch} encoding verbatim). Equal summaries encode equally. *)
val encode_summary : t -> string

(** Inverse of {!encode_summary}; [None] on malformed input. Unknown
    fields are skipped (forward compatibility). *)
val decode_summary : string -> t option

(** {2 Views} *)

(** An overlay view: (origin id, summary), ascending by origin. *)
type view = (int * t) list

val view_of : t list -> view

(** Keyed by origin; freshest epoch wins, ties broken by the smaller
    encoding. Deterministic, commutative, associative, and idempotent:
    [merge_views v v] equals [v]. *)
val merge_views : view -> view -> view

(** One {!encode_summary} line per origin, ascending. *)
val encode_view : view -> string list

(** Decode and merge a batch of summary lines; [None] if any line is
    malformed. *)
val decode_view : string list -> view option

(** Structural equality via the canonical encodings. *)
val view_equal : view -> view -> bool

(** {2 Rendering} *)

(** Single-shot text dashboard: one block per origin (sketch quantiles,
    per-link rates) plus an overlay-wide rollup with the hop-latency
    sketches merged across origins. *)
val render_top : view -> string

val view_to_json : view -> string
