type sample = { at : float; values : (string * float) list }

type t = {
  capacity : int;
  ring : sample option array;
  mutable total : int;
  registry : Metrics.t;
}

let create ?(capacity = 128) registry =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; total = 0; registry }

let scalar_of = function
  | Metrics.Counter c -> float_of_int (Metrics.value c)
  | Metrics.Gauge g -> Metrics.gauge_value g
  | Metrics.Histogram h -> float_of_int (Metrics.observations h)

let snapshot t ~at =
  let values =
    List.map (fun (name, _help, m) -> (name, scalar_of m)) (Metrics.metrics t.registry)
  in
  t.ring.(t.total mod t.capacity) <- Some { at; values };
  t.total <- t.total + 1

let length t = t.total
let capacity t = t.capacity

let to_list t =
  let n = min t.total t.capacity in
  let start = t.total - n in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let last t =
  if t.total = 0 then None else t.ring.((t.total - 1) mod t.capacity)

let last_two t =
  if t.total < 2 then None
  else
    match (t.ring.((t.total - 2) mod t.capacity), t.ring.((t.total - 1) mod t.capacity)) with
    | Some prev, Some cur -> Some (prev, cur)
    | _ -> None

let deltas t =
  match last_two t with
  | None -> []
  | Some (prev, cur) ->
    List.map
      (fun (name, v) ->
        let before = Option.value ~default:0.0 (List.assoc_opt name prev.values) in
        (name, v -. before))
      cur.values

let rates t =
  match last_two t with
  | None -> []
  | Some (prev, cur) ->
    let dt_s = (cur.at -. prev.at) /. 1000.0 in
    if dt_s <= 0.0 then []
    else List.map (fun (name, d) -> (name, d /. dt_s)) (deltas t)
