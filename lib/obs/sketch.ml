(* Mergeable quantile sketch with a bounded relative error, in the
   DDSketch family: values are binned into exponentially-growing buckets
   indexed by ceil(log_gamma v) with gamma = (1+alpha)/(1-alpha), so the
   midpoint estimate 2*gamma^i/(gamma+1) of any bucket is within a
   relative error of alpha of every value the bucket holds. Bucket
   counts are integers and merge by addition, which makes the merge
   exact, commutative and associative — the property the capped
   raw-sample histograms lack and the reason federation routes all
   cross-broker quantiles through this module.

   Values below [tiny] (1e-9) in magnitude land in a dedicated zero
   bucket; negative values get a mirrored bucket table over their
   magnitude, so the sketch is total over floats (NaN is rejected).
   Alongside the buckets the sketch tracks exact count, sum, min and
   max, which quantile estimates are clamped into.

   The wire encoding is canonical: fields are ';'-separated, buckets
   ascending by index, floats rendered as hex float literals ("%h") so
   decode(encode s) reproduces s bit-for-bit on every platform. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  mutable count : int;
  mutable zero : int; (* observations with |v| <= tiny *)
  mutable sum : float;
  mutable lo : float; (* exact min; +inf when empty *)
  mutable hi : float; (* exact max; -inf when empty *)
  pos : (int, int) Hashtbl.t; (* bucket index -> count, v > tiny *)
  neg : (int, int) Hashtbl.t; (* bucket index over -v, v < -tiny *)
}

let tiny = 1e-9
let default_alpha = 0.01

let create ?(alpha = default_alpha) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    count = 0;
    zero = 0;
    sum = 0.0;
    lo = infinity;
    hi = neg_infinity;
    pos = Hashtbl.create 64;
    neg = Hashtbl.create 4;
  }

let alpha t = t.alpha
let count t = t.count
let sum t = t.sum
let min_value t = t.lo
let max_value t = t.hi

let bucket_incr tbl idx n =
  match Hashtbl.find_opt tbl idx with
  | Some c -> Hashtbl.replace tbl idx (c + n)
  | None -> Hashtbl.add tbl idx n

(* ceil(log_gamma v) as an int. The +1e-11 nudge keeps exact powers of
   gamma from straddling two buckets across platforms' libm rounding. *)
let index_of t v = int_of_float (Float.ceil ((log v /. t.log_gamma) -. 1e-11))

let observe t v =
  if Float.is_nan v then invalid_arg "Sketch.observe: nan";
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.lo then t.lo <- v;
  if v > t.hi then t.hi <- v;
  if Float.abs v <= tiny then t.zero <- t.zero + 1
  else if v > 0.0 then bucket_incr t.pos (index_of t v) 1
  else bucket_incr t.neg (index_of t (-.v)) 1

(* Midpoint (in log space) of bucket [idx]: within alpha relative error
   of every value binned there. *)
let estimate t idx = 2.0 *. exp (float_of_int idx *. t.log_gamma) /. (t.gamma +. 1.0)

let sorted_buckets tbl =
  Hashtbl.fold (fun idx n acc -> (idx, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Nearest-rank quantile (matching [Stats.percentile]): the value whose
   1-based rank is ceil(q * count) in ascending order. Estimates are
   clamped into the exact [lo, hi] envelope. *)
let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Sketch.quantile: q outside [0, 1]";
  if t.count = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let clamp v = Float.max t.lo (Float.min t.hi v) in
    (* Ascending order: negatives (largest magnitude first), zeros,
       positives (smallest index first). *)
    let neg_desc =
      sorted_buckets t.neg |> List.rev
      |> List.map (fun (idx, n) -> (`Neg idx, n))
    in
    let zero = if t.zero > 0 then [ (`Zero, t.zero) ] else [] in
    let pos = sorted_buckets t.pos |> List.map (fun (idx, n) -> (`Pos idx, n)) in
    let rec go seen = function
      | [] -> t.hi
      | (b, n) :: rest ->
        if seen + n >= rank then
          clamp
            (match b with
            | `Neg idx -> -.estimate t idx
            | `Zero -> 0.0
            | `Pos idx -> estimate t idx)
        else go (seen + n) rest
    in
    go 0 (neg_desc @ zero @ pos)
  end

let copy t =
  {
    t with
    pos = Hashtbl.copy t.pos;
    neg = Hashtbl.copy t.neg;
  }

let merge_into ~dst src =
  if dst.alpha <> src.alpha then invalid_arg "Sketch.merge: alpha mismatch";
  dst.count <- dst.count + src.count;
  dst.zero <- dst.zero + src.zero;
  dst.sum <- dst.sum +. src.sum;
  if src.lo < dst.lo then dst.lo <- src.lo;
  if src.hi > dst.hi then dst.hi <- src.hi;
  Hashtbl.iter (fun idx n -> bucket_incr dst.pos idx n) src.pos;
  Hashtbl.iter (fun idx n -> bucket_incr dst.neg idx n) src.neg

let merge a b =
  let out = copy a in
  merge_into ~dst:out b;
  out

let clear t =
  t.count <- 0;
  t.zero <- 0;
  t.sum <- 0.0;
  t.lo <- infinity;
  t.hi <- neg_infinity;
  Hashtbl.reset t.pos;
  Hashtbl.reset t.neg

(* ---------------- wire encoding ---------------- *)

(* Hex float literals round-trip exactly and render identically on every
   platform, making the encoding canonical: equal sketches encode to
   equal strings. *)
let fenc v = Printf.sprintf "%h" v
let fdec s = float_of_string_opt s

let buckets_enc tbl =
  sorted_buckets tbl
  |> List.map (fun (idx, n) -> Printf.sprintf "%d:%d" idx n)
  |> String.concat ","

let encode t =
  Printf.sprintf "sk1;%s;%d;%d;%s;%s;%s;%s;%s" (fenc t.alpha) t.count t.zero
    (fenc t.sum) (fenc t.lo) (fenc t.hi) (buckets_enc t.pos) (buckets_enc t.neg)

let buckets_dec tbl s =
  if String.equal s "" then true
  else
    String.split_on_char ',' s
    |> List.for_all (fun pair ->
           match String.split_on_char ':' pair with
           | [ idx; n ] -> (
             match (int_of_string_opt idx, int_of_string_opt n) with
             | Some idx, Some n when n > 0 ->
               bucket_incr tbl idx n;
               true
             | _ -> false)
           | _ -> false)

let decode s =
  match String.split_on_char ';' s with
  | [ "sk1"; a; n; z; sum; lo; hi; pos; neg ] -> (
    match (fdec a, int_of_string_opt n, int_of_string_opt z, fdec sum, fdec lo, fdec hi) with
    | Some alpha, Some count, Some zero, Some sum, Some lo, Some hi
      when alpha > 0.0 && alpha < 1.0 && count >= 0 && zero >= 0 ->
      let t = create ~alpha () in
      t.count <- count;
      t.zero <- zero;
      t.sum <- sum;
      t.lo <- lo;
      t.hi <- hi;
      if buckets_dec t.pos pos && buckets_dec t.neg neg then Some t else None
    | _ -> None)
  | _ -> None

let equal a b = String.equal (encode a) (encode b)
