(** Blocking TCP client for the broker daemon.

    The client keeps a session ledger and survives a [brokerd] restart:
    on a failed send or a closed connection it redials with capped
    exponential backoff, re-identifies, and replays its advertisements
    and subscriptions with their original ids (idempotent — the broker
    deduplicates). Publications are not journaled, so one in flight
    during the failure can be lost unless the caller retries. *)

open Xroute_core

type t

(** The broker stayed unreachable for the whole redial budget (or
    dropped the freshly-dialed connection): the clean failure surface of
    the reconnect path — callers never see a raw [Unix.Unix_error] from
    a send. The payload is a human-readable reason. *)
exception Unavailable of string

(** Connect and identify as [client_id]. *)
val connect : client_id:int -> host:string -> port:int -> t

(** Times the session was re-established after a connection failure. *)
val reconnects : t -> int

(** Total redial budget per connection failure (default 8 s). *)
val set_reconnect_wait : t -> float -> unit

val close : t -> unit

(** Send a raw protocol message. *)
val send : t -> Message.t -> unit

(** Send a raw protocol line (no trailing newline) — an escape hatch for
    protocol experiments and fault-injection tests, e.g. re-identifying
    the connection with a hand-written [HELLO|...]. *)
val send_line : t -> string -> unit

val advertise : t -> Xroute_xpath.Adv.t -> Message.sub_id
val subscribe : t -> Xroute_xpath.Xpe.t -> Message.sub_id
val unsubscribe : t -> Message.sub_id -> unit
val unadvertise : t -> Message.sub_id -> unit

(** Decompose a document and publish its paths; returns how many. *)
val publish_doc : t -> doc_id:int -> Xroute_xml.Xml_tree.t -> int

(** Next message, waiting up to [timeout] seconds. *)
val recv : ?timeout:float -> t -> Message.t option

(** Request the daemon's metrics exposition over the wire ([STATS|]);
    [None] on timeout. Routed messages arriving while the reply streams
    are discarded. *)
val stats : ?timeout:float -> ?format:[ `Prom | `Json ] -> t -> string option

(** Request the daemon's routing-state audit over the wire ([AUDIT|]):
    [(errors, warnings, findings)] with each finding as
    [(severity, code, subject, witness)]; [None] on timeout. Routed
    messages arriving while the reply streams are discarded. *)
val audit : ?timeout:float -> t -> (int * int * (string * string * string * string) list) option

(** Request the daemon's retained spans of one trace ([TRACE|<id>]);
    [None] on timeout. Merge the lists returned by several daemons to
    reassemble a cross-broker trace
    (e.g. [Xroute_obs.Span.waterfall], [check_tree]). *)
val trace : ?timeout:float -> t -> int -> Xroute_obs.Span.span list option

(** Request the federated overlay health view
    ([FEDSTATS|<reqid>|<ttl>|]): the broker's own summary merged with
    its neighbors', pulled hop-bounded by [ttl] (default 8) with
    origin-id loop suppression; [None] on timeout or a malformed reply.
    Routed messages arriving while the reply streams are discarded. *)
val fedstats : ?timeout:float -> ?ttl:int -> t -> Xroute_obs.Health.view option

(** Distinct delivered doc ids until [timeout] seconds pass quietly. *)
val drain_deliveries : ?timeout:float -> t -> int list
