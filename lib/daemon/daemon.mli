(** TCP deployment of a content-based XML router: one daemon hosts one
    {!Xroute_core.Broker} behind a listening socket with a single-
    threaded select loop. The wire protocol is line-oriented:
    [HELLO|broker|<id>] / [HELLO|client|<id>] identify a peer, then
    [M|<codec line>] carries routed messages. [STATS|prom] /
    [STATS|json] dump the broker's metrics registry, framed as
    [STATS|BEGIN|<fmt>], one [S|<line>] per exposition line, then
    [STATS|END]. [AUDIT] runs the routing-state audit
    ({!Xroute_check.Check.audit_broker}) on the hosted broker, framed as
    [AUDIT|BEGIN], one [A|<severity>|<code>|<subject>|<witness>] per
    finding, then [AUDIT|END|<errors>|<warnings>]. Lower-id brokers
    dial their higher-id neighbors,
    giving one TCP connection per overlay edge; dialing is retried, so
    start order does not matter. *)

type t

(** [create ~id ~port ~neighbors ()] binds the listening socket
    immediately ([port = 0] picks a free port; see {!port}). [neighbors]
    maps neighbor broker ids to their (host, port) addresses.
    [max_write_chunk] caps the bytes per [write] syscall on the queued
    output path (default unlimited) — set it to 1 to exercise the
    partial-write offset logic deterministically. *)
val create :
  ?strategy:Xroute_core.Broker.strategy ->
  ?max_write_chunk:int ->
  id:int ->
  port:int ->
  neighbors:(int * (string * int)) list ->
  unit ->
  t

(** The hosted broker (for inspection). *)
val broker : t -> Xroute_core.Broker.t

(** The bound port. *)
val port : t -> int

(** One event-loop iteration (dial, select, read, process, write). *)
val step : ?timeout:float -> t -> unit

(** Loop on {!step} until {!request_stop}, then close every socket. *)
val run : ?timeout:float -> t -> unit

(** Make {!run} return after its current iteration. Safe to call from
    another thread. *)
val request_stop : t -> unit
