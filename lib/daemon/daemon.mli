(** TCP deployment of a content-based XML router: one daemon hosts one
    {!Xroute_core.Broker} behind a listening socket with a single-
    threaded select loop. The wire protocol is line-oriented:
    [HELLO|broker|<id>] / [HELLO|client|<id>] identify a peer, then
    [M|<codec line>] carries routed messages. [STATS|prom] /
    [STATS|json] dump the broker's metrics registry, framed as
    [STATS|BEGIN|<fmt>], one [S|<line>] per exposition line, then
    [STATS|END]. [AUDIT] runs the routing-state audit
    ({!Xroute_check.Check.audit_broker}) on the hosted broker, framed as
    [AUDIT|BEGIN], one [A|<severity>|<code>|<subject>|<witness>] per
    finding (fields reversibly escaped, see {!Framing}), then
    [AUDIT|END|<errors>|<warnings>]. [TRACE|<id>] streams the retained
    causal spans of one trace, framed as [TRACE|BEGIN|<id>], one
    [T|<span wire line>] per span, then [TRACE|END|<count>].

    Every routed publication is traced: its hop through this broker
    becomes a "hop" span with stage leaves (queue wait, parse, match
    with SRT/PRT/cover op counts, serialize) stamped by a monotonic
    wall clock ({!Xroute_support.Mono}); outgoing copies carry the hop
    span's id as trace context, chaining the next broker's hop under
    it. A publication arriving without context (from a client) mints
    the context and a root "pub" span here.

    Lower-id brokers dial their higher-id neighbors,
    giving one TCP connection per overlay edge; dialing is retried, so
    start order does not matter. *)

type t

(** [create ~id ~port ~neighbors ()] binds the listening socket
    immediately ([port = 0] picks a free port; see {!port}). [neighbors]
    maps neighbor broker ids to their (host, port) addresses.
    [max_write_chunk] caps the bytes per [write] syscall on the queued
    output path (default unlimited) — set it to 1 to exercise the
    partial-write offset logic deterministically. [snapshot_period] is
    the interval (ms of wall clock, default 1000) between metrics
    snapshots into the {!timeseries} ring. [flight_dir] enables the
    flight recorder: when an [AUDIT] reports an error-severity finding,
    the span ring, registry and latest rates are dumped there
    ([Xroute_obs.Recorder]). [domains] (default 1) shards publication
    matching across that many worker domains ({!Shard_pool}); routing
    decisions and emitted bytes stay identical to [domains = 1].
    [telemetry] (default true) maintains the {!health} summary; [false]
    skips every health-recording call — the switch behind the
    telemetry-overhead experiment (BENCH_10).
    @raise Invalid_argument when [domains > 1] is combined with the tree
    match engine or trail routing (their match orders cannot be merged
    deterministically from per-shard results). *)
val create :
  ?strategy:Xroute_core.Broker.strategy ->
  ?max_write_chunk:int ->
  ?snapshot_period:float ->
  ?flight_dir:string ->
  ?domains:int ->
  ?telemetry:bool ->
  id:int ->
  port:int ->
  neighbors:(int * (string * int)) list ->
  unit ->
  t

(** The hosted broker (for inspection). *)
val broker : t -> Xroute_core.Broker.t

(** The domain pool, when [create] was given [domains > 1] (for
    inspection: shard audits, quiescent state checks). *)
val pool : t -> Shard_pool.t option

(** This broker's live health summary ({!Xroute_obs.Health}): hop
    latency / queue depth / egress backlog sketches, pub and drop
    counts, per-link send rates. Link EWMA rates fold and the epoch
    bumps on every registry snapshot ([snapshot_period]) and on every
    [FEDSTATS] pull. Pulled overlay-wide by the [FEDSTATS|] command:
    [FEDSTATS|<reqid>|<ttl>|<seen>] answers
    [FEDSTATS|BEGIN|<reqid>], one [F|<escaped summary line>] per origin
    broker, [FEDSTATS|END|<reqid>|<count>] — forwarding decremented-ttl
    sub-pulls to neighbors not in [<seen>] (origin-id loop suppression;
    safe on cyclic overlays) and merging their views by origin before
    replying. *)
val health : t -> Xroute_obs.Health.t

(** The daemon's span collector (ids offset by [broker id × 10⁹] so
    spans merged across daemons stay unique). *)
val spans : t -> Xroute_obs.Span.t

(** Periodic registry snapshots (one per [snapshot_period]). *)
val timeseries : t -> Xroute_obs.Timeseries.t

(** The flight recorder, when [create] was given a [flight_dir]. *)
val recorder : t -> Xroute_obs.Recorder.t option

(** The bound port. *)
val port : t -> int

(** One event-loop iteration (dial, select, read, process, write). *)
val step : ?timeout:float -> t -> unit

(** Loop on {!step} until {!request_stop}, then close every socket. *)
val run : ?timeout:float -> t -> unit

(** Make {!run} return after its current iteration. Safe to call from
    another thread. *)
val request_stop : t -> unit
